package native

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/cfg"
	"repro/internal/dyninst"
	"repro/internal/vm"
)

// Loop-coverage profiling written directly against the Dyninst API (the
// native equivalent of Figure 6): snippets at every loop's entry, exit
// and back-edge points maintain the live-loop set; a snippet at every
// basic-block entry counts executed blocks globally and per live loop.
func init() { register("dyninst", "loopcoverage", dyninstLoopCoverage) }

func dyninstLoopCoverage(prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error) {
	be, err := dyninst.OpenBinary(prog, dyninst.Config{Fuel: fuel})
	if err != nil {
		return nil, err
	}
	image := be.Image()
	live := make(map[int]bool)
	blocks := make(map[int]uint64)
	seen := make(map[int]bool)
	var order []int
	var totalBlocks uint64

	for _, fn := range image.Functions() {
		for _, loop := range fn.Loops() {
			id := loop.ID()
			enter := dyninst.FuncCallExpr{
				Fn: func([]uint64) {
					if !seen[id] {
						seen[id] = true
						order = append(order, id)
					}
					live[id] = true
				},
				Cost: 4 * stmtCost,
			}
			leave := dyninst.FuncCallExpr{
				Fn:   func([]uint64) { live[id] = false },
				Cost: 1 * stmtCost,
			}
			for _, pt := range loop.EntryPoints() {
				if err := be.InsertSnippet(enter, pt, dyninst.CallBefore); err != nil {
					return nil, err
				}
			}
			for _, pt := range loop.ExitPoints() {
				if err := be.InsertSnippet(leave, pt, dyninst.CallBefore); err != nil {
					return nil, err
				}
			}
		}
		countBlock := dyninst.FuncCallExpr{
			Fn: func([]uint64) {
				totalBlocks++
				for id, on := range live {
					if on {
						blocks[id]++
					}
				}
			},
			Cost: 7 * stmtCost,
		}
		for _, bb := range fn.Blocks() {
			if err := be.InsertSnippet(countBlock, bb.EntryPoint(), dyninst.CallBefore); err != nil {
				return nil, err
			}
		}
	}
	be.OnFini(func() {
		ids := append([]int(nil), order...)
		sort.Ints(ids)
		for _, id := range ids {
			fmt.Fprintf(out, "%d\n%d\n", id, blocks[id]*100/totalBlocks)
		}
	})
	return be.Run()
}
