package progs_test

import (
	"strings"
	"testing"

	"repro/internal/core/engine"
	"repro/internal/progs"
)

// The program table must be closed and consistent: every named constant
// appears in Names(), every name resolves to source, and unknown names
// fail loudly.
func TestProgramTableIntegrity(t *testing.T) {
	names := progs.Names()
	if len(names) == 0 {
		t.Fatal("no embedded programs")
	}
	set := map[string]bool{}
	for _, n := range names {
		if set[n] {
			t.Errorf("duplicate program name %q", n)
		}
		set[n] = true
	}
	for _, want := range []string{
		progs.InstCountBasic, progs.InstCountBB, progs.LoopCoverage,
		progs.UseAfterFree, progs.ShadowStack, progs.ForwardCFI, progs.OpcodeMix,
	} {
		if !set[want] {
			t.Errorf("named constant %q missing from Names()", want)
		}
	}
	if _, err := progs.Source("no_such_program"); err == nil {
		t.Error("Source on unknown name did not fail")
	}
}

// Every embedded case study must compile through the full front end —
// the table is the seed corpus for the examples, the conformance
// fuzzers and the Table I line counts, so a broken entry poisons all
// three.
func TestEveryProgramCompiles(t *testing.T) {
	for _, name := range progs.Names() {
		src, err := progs.Source(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if src != progs.MustSource(name) {
			t.Errorf("%s: Source and MustSource disagree", name)
		}
		if _, err := engine.Compile(src); err != nil {
			t.Errorf("%s does not compile: %v", name, err)
		}
	}
}

// CountLines is the paper's Table I metric: non-blank, non-comment
// lines. Pin it against a hand-counted fragment and sanity-bound the
// real programs.
func TestCountLines(t *testing.T) {
	src := "// comment\n\nuint64 n = 0;\nexit {\n  print(n);\n}\n"
	if got := progs.CountLines(src); got != 4 {
		t.Errorf("CountLines = %d, want 4", got)
	}
	for _, name := range progs.Names() {
		src := progs.MustSource(name)
		n := progs.CountLines(src)
		total := len(strings.Split(strings.TrimRight(src, "\n"), "\n"))
		if n <= 0 || n > total {
			t.Errorf("%s: CountLines = %d outside (0, %d]", name, n, total)
		}
	}
}
