// Use-after-free monitoring (the paper's Figure 7): track every malloc
// allocation, mark it on free, and flag loads or stores into freed
// memory. The buggy program reads through a dangling pointer and is
// caught; the fixed program runs silently.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/cinnamon"
)

const toolSrc = `
dict<addr,int> freed;
dict<addr,addr> base_table;
int size;

inst I where (I.opcode == Call && I.trgname == "malloc") {
  before I {
    size = I.arg1;
  }
  after I {
    addr base_addr = I.rtnval;
    for (addr i = base_addr; i < base_addr + size; i = i + 1) {
      base_table[i] = base_addr;
    }
    freed[base_addr] = 0;
  }
}
inst I where (I.opcode == Call && I.trgname == "free") {
  before I {
    addr ptr_addr = I.arg1;
    freed[ptr_addr] = 1;
  }
}
inst I where (I.opcode == Load || I.opcode == Store) {
  before I {
    addr acc_addr = I.memaddr;
    addr base_addr;
    if (base_table[acc_addr] != NULL) {
      base_addr = base_table[acc_addr];
      if (freed[base_addr] == 1) {
        print("ERROR: use after free access");
      }
    }
  }
}
`

const buggySrc = `
.module buggy
.executable
.entry main
.extern malloc
.extern free
.func main
  mov   r1, 64
  call  malloc
  mov   r5, r0
  mov   r2, 7
  store r2, [r5+8]      ; fine: the buffer is live
  mov   r1, r5
  call  free
  load  r4, [r5+8]      ; bug: reads freed memory
  halt
`

const fixedSrc = `
.module fixed
.executable
.entry main
.extern malloc
.extern free
.func main
  mov   r1, 64
  call  malloc
  mov   r5, r0
  mov   r2, 7
  store r2, [r5+8]
  load  r4, [r5+8]      ; read before freeing
  mov   r1, r5
  call  free
  halt
`

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	tool, err := cinnamon.Compile(toolSrc)
	if err != nil {
		return err
	}
	for _, app := range []struct{ name, src string }{
		{"buggy program", buggySrc},
		{"fixed program", fixedSrc},
	} {
		target, err := cinnamon.LoadAssembly(app.src)
		if err != nil {
			return err
		}
		for _, backend := range cinnamon.Backends() {
			report, err := tool.Run(target, backend, cinnamon.RunOptions{})
			if err != nil {
				return err
			}
			verdict := "clean"
			if report.ToolOutput != "" {
				verdict = trim(report.ToolOutput)
			}
			fmt.Fprintf(w, "%-14s on %-8s: %s\n", app.name, backend, verdict)
		}
	}
	return nil
}

func trim(s string) string {
	for len(s) > 0 && s[len(s)-1] == '\n' {
		s = s[:len(s)-1]
	}
	return s
}
