// Command fleetsmoke is the CI smoke test for the fleet daemon: it
// builds cinnamond, boots it on an ephemeral port, submits 8 sessions
// over the real POST /sessions API, waits for them to settle, scrapes
// /metrics and asserts the fleet rollups are exactly the sum of the
// per-session series, checks the lifecycle and readiness endpoints,
// asserts the shared artifact cache surfaced hits/misses in /metrics
// and cold/warm build sources in /sessions, and finally SIGTERMs the
// daemon and verifies it drains and exits cleanly.
// Like monitorsmoke, it exercises the operator path — real binary, real
// flags, real HTTP — so a wiring regression in cmd/cinnamond fails CI
// even if every package test passes.
//
// Run from the repository root (scripts/ci.sh does):
//
//	go run ./scripts/fleetsmoke
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

const sessions = 8

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "fleetsmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("fleetsmoke: OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "fleetsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "cinnamond")

	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/cinnamond").CombinedOutput(); err != nil {
		return fmt.Errorf("build cinnamond: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-listen=127.0.0.1:0", "-workers=4", "-interval=100ms", "-drain-timeout=10s")
	cmd.Stdout = io.Discard
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	defer cmd.Process.Kill()

	addr, err := scanAddr(stderr)
	if err != nil {
		return err
	}
	base := "http://" + addr

	if err := expectStatus(base+"/healthz/live", http.StatusOK); err != nil {
		return err
	}
	if err := expectStatus(base+"/healthz/ready", http.StatusOK); err != nil {
		return err
	}

	// Submit the sessions over the real API: a mix of tools, one
	// governed, all on the load-harness victim.
	tools := []string{"instcount_basic", "opcodemix", "loopcoverage"}
	for i := 0; i < sessions; i++ {
		job := fmt.Sprintf(`{"tool":"%s","victim":"spin","backend":"janus","loop":3000}`, tools[i%len(tools)])
		if i == sessions-1 {
			job = `{"tool":"instcount_basic","victim":"spin","loop":3000,"budget":"5%"}`
		}
		resp, err := http.Post(base+"/sessions", "application/json", strings.NewReader(job))
		if err != nil {
			return fmt.Errorf("POST /sessions: %w", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("POST /sessions: status %d: %s", resp.StatusCode, body)
		}
	}
	// A bad job must be rejected with a useful status.
	resp, err := http.Post(base+"/sessions", "application/json", strings.NewReader(`{"tool":"nope","victim":"spin"}`))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("bad job: status %d, want 400", resp.StatusCode)
	}

	// Wait for every session to settle done.
	deadline := time.Now().Add(60 * time.Second)
	for {
		infos, err := getSessions(base)
		if err != nil {
			return err
		}
		done := 0
		for _, info := range infos {
			switch info.State {
			case "done":
				done++
			case "failed", "canceled":
				return fmt.Errorf("session %s settled %s: %s", info.Session, info.State, info.Error)
			}
		}
		if len(infos) == sessions && done == sessions {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sessions never settled: %+v", infos)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Scrape and assert rollup exactness: the fleet counter must equal
	// the sum of the per-session series, to the digit.
	metrics, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	series := parseSamples(metrics)
	var sum float64
	nSess := 0
	for key, v := range series {
		if strings.HasPrefix(key, "cinnamon_session_fires_total{") {
			sum += v
			nSess++
		}
	}
	fleetTotal := series["cinnamon_fleet_fires_total"]
	if nSess != sessions {
		return fmt.Errorf("/metrics shows %d session series, want %d:\n%s", nSess, sessions, metrics)
	}
	if fleetTotal == 0 || math.Abs(fleetTotal-sum) > 0 {
		return fmt.Errorf("fleet rollup %v != session sum %v", fleetTotal, sum)
	}
	if !strings.Contains(metrics, `session="s1"`) || !strings.Contains(metrics, `victim="spin"`) {
		return fmt.Errorf("/metrics missing session labels:\n%s", metrics)
	}
	// The governed session exposes its budget.
	if series[`cinnamon_governor_budget{session="s8",tool="instcount_basic",victim="spin",backend="janus"}`] != 0.05 {
		return fmt.Errorf("governed session budget missing from /metrics")
	}
	// The shared artifact cache exposes its counters: the 8-session mix
	// over 3 tools must have recorded both misses (first builds) and
	// hits (reuse), and the cache must hold the tools it compiled.
	if series[`cinnamon_artifact_misses_total{kind="tool"}`] == 0 {
		return fmt.Errorf("cinnamon_artifact_misses_total{kind=\"tool\"} is zero after the churn:\n%s", metrics)
	}
	if series[`cinnamon_artifact_hits_total{kind="tool"}`] == 0 || series[`cinnamon_artifact_hits_total{kind="victim"}`] == 0 {
		return fmt.Errorf("cinnamon_artifact_hits_total shows no reuse after the churn:\n%s", metrics)
	}
	if series[`cinnamon_artifact_entries{kind="tool"}`] < 1 || series[`cinnamon_artifact_entries{kind="victim"}`] < 1 {
		return fmt.Errorf("cinnamon_artifact_entries families missing from /metrics:\n%s", metrics)
	}

	// Warm-start lifecycle: with every artifact now cached, a duplicate
	// of session s1 must report build_source "warm" in /sessions, while
	// s1 itself (first to build its tool) stays "cold".
	resp, err = http.Post(base+"/sessions", "application/json",
		strings.NewReader(`{"tool":"instcount_basic","victim":"spin","backend":"janus","loop":3000}`))
	if err != nil {
		return fmt.Errorf("POST /sessions (warm duplicate): %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("warm duplicate: status %d, want 202", resp.StatusCode)
	}
	deadline = time.Now().Add(60 * time.Second)
	for {
		infos, err := getSessions(base)
		if err != nil {
			return err
		}
		var s1, dup *sessionInfo
		for i := range infos {
			switch infos[i].Session {
			case "s1":
				s1 = &infos[i]
			case fmt.Sprintf("s%d", sessions+1):
				dup = &infos[i]
			}
		}
		if dup != nil && dup.State == "done" {
			if dup.BuildSource != "warm" {
				return fmt.Errorf("duplicate session build_source = %q, want \"warm\"", dup.BuildSource)
			}
			if s1 == nil || s1.BuildSource != "cold" {
				return fmt.Errorf("session s1 build_source = %+v, want \"cold\"", s1)
			}
			break
		}
		if dup != nil && (dup.State == "failed" || dup.State == "canceled") {
			return fmt.Errorf("duplicate session settled %s: %s", dup.State, dup.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("duplicate session never settled")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// SIGTERM: the daemon must flip readiness, drain and exit cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	waitDone := make(chan error, 1)
	go func() { waitDone <- cmd.Wait() }()
	select {
	case err := <-waitDone:
		if err != nil {
			return fmt.Errorf("cinnamond exited with: %v", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("cinnamond did not exit within 30s of SIGTERM")
	}
	return nil
}

type sessionInfo struct {
	Session     string `json:"session"`
	State       string `json:"state"`
	Error       string `json:"error"`
	BuildSource string `json:"build_source"`
}

func getSessions(base string) ([]sessionInfo, error) {
	body, err := get(base + "/sessions")
	if err != nil {
		return nil, err
	}
	var infos []sessionInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil {
		return nil, fmt.Errorf("GET /sessions: %v (%s)", err, body)
	}
	return infos, nil
}

// parseSamples extracts series -> value from text exposition (the same
// shape monitor.ParseSamples implements; duplicated here so the smoke
// binary stays a pure HTTP client of the daemon).
func parseSamples(text string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil {
			out[line[:i]] = v
		}
	}
	return out
}

// scanAddr reads the daemon's stderr until it announces its bound
// address.
func scanAddr(stderr io.Reader) (string, error) {
	const marker = "fleet monitor listening on http://"
	type res struct {
		addr string
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, marker); i >= 0 {
				ch <- res{addr: strings.TrimSpace(line[i+len(marker):])}
				// Keep draining so the daemon never blocks on stderr.
				for sc.Scan() {
				}
				return
			}
		}
		ch <- res{err: fmt.Errorf("fleet address never announced (stderr closed)")}
	}()
	select {
	case r := <-ch:
		return r.addr, r.err
	case <-time.After(30 * time.Second):
		return "", fmt.Errorf("timed out waiting for the fleet address")
	}
}

func get(url string) (string, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("GET %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(b), nil
}

func expectStatus(url string, want int) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("GET %s: %w", url, err)
	}
	resp.Body.Close()
	if resp.StatusCode != want {
		return fmt.Errorf("GET %s: status %d, want %d", url, resp.StatusCode, want)
	}
	return nil
}
