package vm

// Differential tests for the block-translation tier: every observable —
// Result fields, output, trap text, probe fire counts and contexts —
// must be byte-identical between ExecTranslated and ExecInterpreted.

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"repro/internal/cfg"
	"repro/internal/isa"
)

func TestParseExecMode(t *testing.T) {
	cases := []struct {
		in   string
		want ExecMode
		ok   bool
	}{
		{"", ExecTranslated, true},
		{"translated", ExecTranslated, true},
		{"interpreted", ExecInterpreted, true},
		{"interp", ExecInterpreted, true},
		{"jit", 0, false},
	}
	for _, c := range cases {
		got, err := ParseExecMode(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseExecMode(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseExecMode(%q) succeeded, want error", c.in)
		}
	}
	if ExecTranslated.String() != "translated" || ExecInterpreted.String() != "interpreted" {
		t.Errorf("String() = %q, %q", ExecTranslated.String(), ExecInterpreted.String())
	}
}

// modeRun executes prog in the given mode with setup installing probes,
// and returns everything observable about the run.
type modeRun struct {
	res    *Result
	err    string
	out    string
	cycles uint64
	fires  map[string]int
}

func runMode(t *testing.T, prog *cfg.Program, mode ExecMode, fuel uint64,
	setup func(v *VM, fires map[string]int)) modeRun {
	t.Helper()
	var out bytes.Buffer
	v := New(prog, Config{ExecMode: mode, AppOut: &out, Fuel: fuel})
	fires := map[string]int{}
	if setup != nil {
		setup(v, fires)
	}
	res, err := v.Run()
	mr := modeRun{out: out.String(), fires: fires, cycles: v.cycles}
	if err != nil {
		mr.err = err.Error()
	}
	mr.res = res
	return mr
}

func diffModes(t *testing.T, name string, a, b modeRun) {
	t.Helper()
	if a.err != b.err {
		t.Errorf("%s: error %q (translated) vs %q (interpreted)", name, a.err, b.err)
	}
	if a.out != b.out {
		t.Errorf("%s: output %q vs %q", name, a.out, b.out)
	}
	if a.cycles != b.cycles {
		t.Errorf("%s: cycles %d vs %d", name, a.cycles, b.cycles)
	}
	if (a.res == nil) != (b.res == nil) {
		t.Fatalf("%s: result nil mismatch", name)
	}
	if a.res != nil && *a.res != *b.res {
		t.Errorf("%s: result %+v vs %+v", name, *a.res, *b.res)
	}
	if len(a.fires) != len(b.fires) {
		t.Errorf("%s: fire keys %v vs %v", name, a.fires, b.fires)
	}
	for k, av := range a.fires {
		if bv := b.fires[k]; av != bv {
			t.Errorf("%s: fires[%s] %d vs %d", name, k, av, bv)
		}
	}
}

// findInst returns the nth instruction with the given opcode in the
// executable (address order), or nil.
func findInst(prog *cfg.Program, op isa.Op, n int) *isa.Inst {
	seen := 0
	for _, f := range prog.Modules[0].Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				if in.Op == op {
					if seen == n {
						return in
					}
					seen++
				}
			}
		}
	}
	return nil
}

// instByOp is findInst that fails the test when absent.
func instByOp(t *testing.T, prog *cfg.Program, op isa.Op, n int) *isa.Inst {
	t.Helper()
	in := findInst(prog, op, n)
	if in == nil {
		t.Fatalf("no instruction #%d with op %v", n, op)
	}
	return in
}

// blockOf returns the block containing addr in the executable.
func blockOf(t *testing.T, prog *cfg.Program, addr uint64) *cfg.Block {
	t.Helper()
	for _, f := range prog.Modules[0].Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				if in.Addr == addr {
					return b
				}
			}
		}
	}
	t.Fatalf("no block contains %#x", addr)
	return nil
}

const tierCallSrc = `
.module a.out
.executable
.entry main
.extern print
.func main
  mov r1, 0
  mov r2, 0
  mov r3, 8
head:
  mov r8, r2
  call bump
  add r1, r1, r8
  store r1, [sp-8]
  load r4, [sp-8]
  add r2, r2, 1
  blt r2, r3, head
  mov r1, r1
  call print
  halt
.func bump
  add r8, r8, 5
  mul r8, r8, 3
  ret
`

const tierTrapSrc = `
.module a.out
.executable
.entry main
.func main
  mov r1, 10
  mov r2, 3
div_l:
  div r3, r1, r2
  sub r2, r2, 1
  add r1, r1, r3
  b div_l
`

// TestExecModesBitIdentical runs programs covering loops, calls, probes
// of every kind, traps and fuel exhaustion under both tiers and demands
// byte-identical observables.
func TestExecModesBitIdentical(t *testing.T) {
	probeAll := func(prog *cfg.Program) func(v *VM, fires map[string]int) {
		add := instByOp(t, prog, isa.Add, 0)
		call := findInst(prog, isa.Call, 0)
		blk := blockOf(t, prog, add.Addr)
		return func(v *VM, fires map[string]int) {
			if err := v.AddBefore(add.Addr, 3, func(c *Ctx) { fires["before"]++ }); err != nil {
				t.Fatal(err)
			}
			if err := v.AddAfter(add.Addr, 2, func(c *Ctx) { fires["after"]++ }); err != nil {
				t.Fatal(err)
			}
			if call != nil {
				if err := v.AddAfter(call.Addr, 4, func(c *Ctx) { fires["call-after"]++ }); err != nil {
					t.Fatal(err)
				}
			}
			if err := v.AddBlockEntry(blk.Start, 1, func(c *Ctx) { fires["entry"]++ }); err != nil {
				t.Fatal(err)
			}
			for _, pred := range blk.Preds {
				pred := pred
				if err := v.AddEdge(pred.Start, blk.Start, 1, func(c *Ctx) {
					fires[fmt.Sprintf("edge-%x", pred.Start)]++
				}); err != nil {
					t.Fatal(err)
				}
			}
			v.OnStart(func(c *Ctx) { fires["start"]++ })
			v.OnEnd(func(c *Ctx) { fires["end"]++ })
		}
	}

	cases := []struct {
		name string
		src  string
		fuel uint64
	}{
		{"sum", sumSrc, 0},
		{"calls", tierCallSrc, 0},
		{"trap", tierTrapSrc, 0},
		{"fuel", tierCallSrc, 37},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, probed := range []bool{false, true} {
				prog := build(t, c.src)
				var setup func(v *VM, fires map[string]int)
				if probed {
					setup = probeAll(prog)
				}
				a := runMode(t, prog, ExecTranslated, c.fuel, setup)
				b := runMode(t, prog, ExecInterpreted, c.fuel, setup)
				diffModes(t, fmt.Sprintf("%s/probed=%v", c.name, probed), a, b)
			}
		})
	}
}

// TestFuelParityAcrossModes sweeps every fuel value through the point of
// exhaustion: the translated tier's hoisted accounting must trap after
// exactly the same instruction, with the same counters and error text,
// as the per-instruction loop.
func TestFuelParityAcrossModes(t *testing.T) {
	prog := build(t, tierCallSrc)
	full := runMode(t, prog, ExecInterpreted, 0, nil)
	if full.err != "" {
		t.Fatal(full.err)
	}
	for fuel := uint64(1); fuel <= full.res.Insts+1; fuel++ {
		a := runMode(t, prog, ExecTranslated, fuel, nil)
		b := runMode(t, prog, ExecInterpreted, fuel, nil)
		diffModes(t, fmt.Sprintf("fuel=%d", fuel), a, b)
	}
}

const invalidateSrc = `
.module a.out
.executable
.entry main
.func main
  mov r1, 0
  mov r3, 10
  mov r4, 5
head:
  add r1, r1, 1
  store r1, [sp-8]
  load r2, [sp-8]
  beq r1, r4, mid
  b cont
mid:
  nop
cont:
  blt r1, r3, head
  halt
`

// TestMidRunCacheInvalidation installs probes from the translator hook
// of a block that first executes halfway through the run (the nop
// block): into its own block, and — before/after/edge — into the loop
// head, which has already executed and been translated five times. The
// translated tier must invalidate the head's cached block program and
// fire identically to the interpreter for the remaining iterations.
func TestMidRunCacheInvalidation(t *testing.T) {
	prog := build(t, invalidateSrc)
	add := instByOp(t, prog, isa.Add, 0)
	nop := instByOp(t, prog, isa.Nop, 0)
	headBlk := blockOf(t, prog, add.Addr)
	nopBlk := blockOf(t, prog, nop.Addr)

	setup := func(v *VM, fires map[string]int) {
		err := v.SetTranslator(func(b *cfg.Block) {
			fires["translate"]++
			if b.Start != nopBlk.Start {
				return
			}
			// Own block: fused when this hook runs at block entry.
			if err := v.AddBefore(nop.Addr, 2, func(c *Ctx) { fires["own-before"]++ }); err != nil {
				t.Error(err)
			}
			// Already-executed, already-translated block: must be
			// invalidated and retranslated with the probes fused.
			if err := v.AddBefore(add.Addr, 3, func(c *Ctx) { fires["head-before"]++ }); err != nil {
				t.Error(err)
			}
			if err := v.AddAfter(add.Addr, 1, func(c *Ctx) { fires["head-after"]++ }); err != nil {
				t.Error(err)
			}
			for _, pred := range headBlk.Preds {
				pred := pred
				if err := v.AddEdge(pred.Start, headBlk.Start, 1, func(c *Ctx) { fires["head-edge"]++ }); err != nil {
					t.Error(err)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	a := runMode(t, prog, ExecTranslated, 0, setup)
	b := runMode(t, prog, ExecInterpreted, 0, setup)
	diffModes(t, "invalidate", a, b)

	// The loop runs r1 = 1..10; the nop block first executes at r1 == 5,
	// so the head probes cover iterations 6..10.
	want := map[string]int{"own-before": 1, "head-before": 5, "head-after": 5}
	for k, n := range want {
		if a.fires[k] != n {
			t.Errorf("fires[%s] = %d, want %d", k, a.fires[k], n)
		}
	}
	if a.fires["head-edge"] == 0 {
		t.Error("head edge probe never fired")
	}
}

// TestMidBlockProbeInstall installs a probe from a running probe body
// into a later instruction of the same, currently-executing block. The
// interpreter reads probe lists live, so the new probe fires in the
// same pass; the translated tier must invalidate its running block
// program and finish the block with identical semantics.
func TestMidBlockProbeInstall(t *testing.T) {
	prog := build(t, hotBlockSrc)
	mul := instByOp(t, prog, isa.Mul, 0)
	store := instByOp(t, prog, isa.Store, 0)

	setup := func(v *VM, fires map[string]int) {
		installed := false
		if err := v.AddBefore(mul.Addr, 2, func(c *Ctx) {
			fires["mul-before"]++
			if installed {
				return
			}
			installed = true
			if err := v.AddAfter(store.Addr, 1, func(c *Ctx) { fires["store-after"]++ }); err != nil {
				t.Error(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	a := runMode(t, prog, ExecTranslated, 0, setup)
	b := runMode(t, prog, ExecInterpreted, 0, setup)
	diffModes(t, "mid-block install", a, b)
	// The store-after probe is installed during the first pass over the
	// block, before the store executes, so it fires on every iteration.
	if a.fires["store-after"] != a.fires["mul-before"] {
		t.Errorf("store-after fired %d times, want %d (same pass as install)",
			a.fires["store-after"], a.fires["mul-before"])
	}
}

const ctxBlockSrc = `
.module a.out
.executable
.entry main
.func main
  mov r8, 1
  mov r9, 4
  call bump
back:
  add r8, r8, 1
  blt r8, r9, back
  halt
.func bump
  add r8, r8, 2
  ret
`

// TestCallAfterCtxBlock pins the fire-context save/restore fix: a
// call's after-probe fires at the fall-through, where dispatch has
// already moved Ctx.Block to the fall-through block; the probe must
// still observe the call's own block, and a nested block-entry fire in
// between must not clobber it.
func TestCallAfterCtxBlock(t *testing.T) {
	for _, mode := range []ExecMode{ExecTranslated, ExecInterpreted} {
		t.Run(mode.String(), func(t *testing.T) {
			prog := build(t, ctxBlockSrc)
			call := instByOp(t, prog, isa.Call, 0)
			callBlk := blockOf(t, prog, call.Addr)
			fallBlk := blockOf(t, prog, call.Next())
			if callBlk == fallBlk {
				t.Fatal("call fall-through must start a new block for this test")
			}
			v := New(prog, Config{ExecMode: mode})
			var got, entryBlk *cfg.Block
			if err := v.AddAfter(call.Addr, 1, func(c *Ctx) { got = c.Block() }); err != nil {
				t.Fatal(err)
			}
			// The fall-through block's entry fire runs in the same
			// dispatch as the pending call-after drain; neither context
			// may leak into the other.
			if err := v.AddBlockEntry(fallBlk.Start, 1, func(c *Ctx) { entryBlk = c.Block() }); err != nil {
				t.Fatal(err)
			}
			if _, err := v.Run(); err != nil {
				t.Fatal(err)
			}
			if got != callBlk {
				t.Errorf("call-after saw block %p, want call's block %p", got, callBlk)
			}
			if entryBlk != fallBlk {
				t.Errorf("block-entry saw block %p, want fall-through block %p", entryBlk, fallBlk)
			}
		})
	}
}

// TestTranslatedDispatchSpeedup is the perf regression gate for the
// block-translation tier: on the probe-free hot-block workload the
// translated tier must beat the interpreter by at least 1.5x (measured
// headroom is ~3x; the margin absorbs CI noise). Like the other perf
// gates it only runs when CINNAMON_PERF_GATE is set.
func TestTranslatedDispatchSpeedup(t *testing.T) {
	if os.Getenv("CINNAMON_PERF_GATE") == "" {
		t.Skip("set CINNAMON_PERF_GATE=1 to run the translation perf gate")
	}
	prog := buildTB(t, hotBlockSrc)
	bench := func(mode ExecMode) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := New(prog, Config{ExecMode: mode})
				if _, err := v.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	measure := func(f func(*testing.B)) float64 {
		best := 0.0
		for i := 0; i < 5; i++ {
			r := testing.Benchmark(f)
			nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
			if best == 0 || nsPerOp < best {
				best = nsPerOp
			}
		}
		return best
	}
	const want = 1.5
	var speedup float64
	for attempt := 0; attempt < 3; attempt++ {
		interp := measure(bench(ExecInterpreted))
		trans := measure(bench(ExecTranslated))
		speedup = interp / trans
		t.Logf("attempt %d: interpreted %.0f ns/op, translated %.0f ns/op, speedup %.2fx",
			attempt, interp, trans, speedup)
		if speedup >= want {
			return
		}
	}
	t.Errorf("translated tier is only %.2fx faster than interpreted (want >= %.1fx)", speedup, want)
}
