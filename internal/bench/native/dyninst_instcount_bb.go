package native

import (
	"fmt"
	"io"

	"repro/internal/cfg"
	"repro/internal/dyninst"
	"repro/internal/isa"
	"repro/internal/vm"
)

// Low-overhead instruction counting written directly against the Dyninst
// API (the Figure 13 baseline): count the loads of each basic block
// statically, then insert one snippet at the block's entry that adds the
// precomputed value.
func init() { register("dyninst", "instcount_bb", dyninstInstCountBB) }

func dyninstInstCountBB(prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error) {
	be, err := dyninst.OpenBinary(prog, dyninst.Config{Fuel: fuel})
	if err != nil {
		return nil, err
	}
	image := be.Image()
	var instCount uint64
	for _, fn := range image.Functions() {
		for _, bb := range fn.Blocks() {
			local := uint64(0)
			for _, in := range bb.Instructions() {
				if in.Op == isa.Load {
					local++
				}
			}
			if local == 0 {
				continue
			}
			localCount := local
			add := dyninst.FuncCallExpr{
				Fn:   func([]uint64) { instCount += localCount },
				Cost: 1 * stmtCost,
			}
			if err := be.InsertSnippet(add, bb.EntryPoint(), dyninst.CallBefore); err != nil {
				return nil, err
			}
		}
	}
	be.OnFini(func() {
		fmt.Fprintf(out, "%d\n", instCount)
	})
	return be.Run()
}
