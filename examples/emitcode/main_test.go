package main

import (
	"strings"
	"testing"
)

// The emitcode example's documented behaviour: one generated source
// bundle per backend — a Pin tool, a Dyninst mutator, and a Janus
// static pass with dynamic handlers — each using the real framework's
// API surface.
func TestEmitcodeOutput(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, marker := range []string{
		"pin_tool.cpp (pin backend)",
		"dyninst_mutator.cpp (dyninst backend)",
		"janus_static_pass.cpp (janus backend)",
		"janus_handlers.cpp (janus backend)",
		"cnm_runtime.h",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("missing generated file %q", marker)
		}
	}
	for _, api := range []string{"PIN_", "BPatch"} {
		if !strings.Contains(out, api) {
			t.Errorf("generated code never uses %s API", api)
		}
	}
}
