package native

import (
	"fmt"
	"io"

	"repro/internal/cfg"
	"repro/internal/pin"
	"repro/internal/vm"
)

// Instruction counting written directly against the Pin API (the native
// equivalent of Figure 5a): insert an inlinable analysis call before
// every load.
func init() { register("pin", "instcount", pinInstCount) }

func pinInstCount(prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error) {
	p := pin.New(prog, pin.Config{Fuel: fuel})
	var instCount uint64
	countLoad := pin.Routine{
		Fn:        func([]uint64) { instCount++ },
		Cost:      1 * stmtCost,
		Inlinable: true, // single increment: Pin inlines it
	}
	p.INSAddInstrumentFunction(func(ins pin.INS) {
		if ins.IsMemoryRead() {
			if err := ins.InsertCall(pin.IPointBefore, countLoad); err != nil {
				panic(err)
			}
		}
	})
	p.AddFiniFunction(func() {
		fmt.Fprintf(out, "%d\n", instCount)
	})
	return p.Run()
}
