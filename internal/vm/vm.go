// Package vm implements the execution substrate: an emulator for the
// synthetic ISA with a deterministic cycle model, a small runtime
// (malloc/free/print/exit intrinsics), and an instrumentation probe
// interface that the three binary frameworks build on.
//
// Probes come in four flavours, matching the trigger points that binary
// instrumentation frameworks expose:
//
//   - instruction before/after probes (after-probes on calls fire at the
//     call's fall-through, i.e. once the callee has returned, so the
//     return value is observable — Pin's IPOINT_AFTER semantics);
//   - block-entry probes, fired whenever execution enters a basic block;
//   - edge probes, fired when an intraprocedural CFG edge is traversed
//     (used to detect loop entry, iteration and exit);
//   - program start/end hooks for init/fini code.
//
// A translator hook is invoked the first time each basic block is about to
// execute; dynamic frameworks (Pin, Janus's DynamoRIO side) use it to
// instrument code just in time, paying a per-block translation cost.
//
// Every probe carries a dispatch cost in cycle units, charged when it
// fires; this is how the frameworks' differing instrumentation mechanisms
// (clean calls, inlined clean calls, trampoline snippets) are priced.
//
// Probes may additionally be tagged with an observability ID (the
// Add*Obs variants): when a Collector is attached via Config.Obs, every
// firing is attributed to its probe — count and cycles — on pre-sized
// slots. With no collector attached the dispatch loop pays exactly one
// predictable nil-check branch per probe batch.
package vm

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/obs"
)

// Runtime intrinsic pseudo-addresses.
const (
	addrMalloc = obj.IntrinsicBase + 0x00
	addrFree   = obj.IntrinsicBase + 0x10
	addrPrint  = obj.IntrinsicBase + 0x20
	addrExit   = obj.IntrinsicBase + 0x30
)

// RuntimeExterns returns the extern symbol table providing the VM runtime
// intrinsics; pass it to obj.Load.
func RuntimeExterns() map[string]uint64 {
	return map[string]uint64{
		"malloc": addrMalloc,
		"free":   addrFree,
		"print":  addrPrint,
		"exit":   addrExit,
	}
}

// ProbeFn is an instrumentation callback.
type ProbeFn func(*Ctx)

// ProbeSpec describes the inline-specialization surface of one installed
// probe. The inline tier (enabled on the translated tier unless
// Config.NoInline is set) may run Fn in place of the probe's generic
// callback from specialized thunks that skip fire-context bookkeeping,
// and may defer Counter-shaped probes entirely into a promoted
// accumulator that is flushed at the next observation point.
//
// The contract the installer vouches for:
//
//   - Fn is observably identical to the generic callback: same stores,
//     same output, same cost charges;
//   - Fn is pure with respect to the machine: it never installs probes,
//     never reads Cycles(), and depends on no Ctx state beyond what the
//     firing trigger defines (instruction, when);
//   - if Counter is true, n consecutive firings are equivalent — in
//     every observable — to a single Flush(n*Delta) call.
//
// A ProbeSpec must be used for exactly one probe installation: the VM
// owns its accumulator state.
type ProbeSpec struct {
	// Fn is the specialized callback (required unless Counter is set;
	// counter probes are dispatched through Flush and never call Fn).
	Fn ProbeFn
	// Counter marks a pure counter bump of Delta per firing; Flush(n)
	// applies n accumulated delta units to the underlying cell.
	Counter bool
	Delta   int64
	Flush   func(n int64)

	// acc is the promoted, not-yet-flushed delta sum (VM-owned).
	acc int64
}

type probe struct {
	fn   ProbeFn
	cost uint64
	// id attributes firings on the attached obs.Collector
	// (obs.NoProbe = untracked).
	id obs.ProbeID
	// spec, when non-nil, is the probe's inline specialization.
	spec *ProbeSpec
	// ctl, when non-nil, is the probe's adaptive control block: the
	// sampling countdown and the enable bit checked at fire time. Nil for
	// always-on probes, which pay nothing for the feature.
	ctl *probeCtl
	// shares, when non-nil, attribute each firing of this coalesced
	// probe to its constituent placements (cost is their sum).
	shares []Share
}

// TrapError reports a machine fault (invalid code address, division by
// zero, heap exhaustion, ...).
type TrapError struct {
	PC  uint64
	Msg string
}

func (e *TrapError) Error() string { return fmt.Sprintf("vm: trap at %#x: %s", e.PC, e.Msg) }

// Result summarizes a completed execution.
type Result struct {
	// Cycles is the total cost in units (application + instrumentation).
	Cycles uint64
	// Insts is the number of application instructions executed.
	Insts uint64
	// ExitCode is the value passed to the exit intrinsic (0 for Halt).
	ExitCode uint64
	// Allocs and Frees count malloc/free intrinsic calls.
	Allocs, Frees uint64
}

const (
	flagBefore = 1 << iota
	flagAfter
	flagBlockEntry
	flagEdgeTo
	flagTranslated
)

type modExec struct {
	base   uint64
	insts  []*isa.Inst  // indexed by addr-base; nil at non-instruction offsets
	blocks []*cfg.Block // indexed by addr-base; nil at non-block-start offsets
	flags  []uint8
	// probes holds the per-offset probe lists, allocated only at offsets
	// that have any. The flags byte is the hot-loop gate: a set probe bit
	// guarantees the corresponding list below is present, so dispatch is
	// a flag test plus two array indexes — no map lookups.
	probes []*offProbes
	// bstart/bidx map each instruction offset to its owning block's start
	// offset and its index within the block, so the translated tier can
	// enter a cached block program mid-block (call fall-throughs).
	bstart []uint32
	bidx   []int32
	// bprogs is the code cache of the translated tier, indexed by
	// block-start offset; nil until first entry or after invalidation.
	bprogs []*blockProg
}

// offProbes is the probe storage of one code offset: instruction
// before/after lists, the block-entry list, and the incoming-edge table
// (block-start offsets only).
type offProbes struct {
	before, after, entry []probe
	// edgeIn lists edge probes by predecessor block; the hot loop scans
	// it linearly (blocks rarely have more than two instrumented
	// predecessors) instead of hashing a [2]uint64 key.
	edgeIn []edgeProbes
}

type edgeProbes struct {
	from   uint64
	probes []probe
}

// probesAt returns the probe storage for the offset, allocating it on
// first use.
func (m *modExec) probesAt(off uint64) *offProbes {
	if p := m.probes[off]; p != nil {
		return p
	}
	p := &offProbes{}
	m.probes[off] = p
	return p
}

// Config parameterizes a VM.
type Config struct {
	// Fuel bounds the number of application instructions executed
	// (default 2e9). Exceeding it is a trap.
	Fuel uint64
	// AppOut receives the application's print output (default: discard).
	AppOut io.Writer
	// Obs, when non-nil, receives per-probe firing attribution (count,
	// cycles, trace events). Nil disables observability at the price of
	// one branch per probe dispatch batch.
	Obs *obs.Collector
	// ExecMode selects the execution tier: ExecTranslated (default) runs
	// cached block programs, ExecInterpreted the reference
	// per-instruction loop. Both are bit-identical in every observable:
	// Result fields, cycle totals, obs attribution, traps and output.
	ExecMode ExecMode
	// NoInline disables the translated tier's action-inlining layer
	// (specialized probe thunks, promoted counters, probe+op
	// superinstructions); an escape hatch for debugging and differential
	// testing. Inlining never changes observables, only host speed, so
	// the flag has no effect on results. Ignored on the interpreted tier,
	// which never inlines.
	NoInline bool
	// Adaptive attaches a control block to every installed probe so all
	// of them can be downsampled, disabled and re-armed mid-run (see
	// SetProbeStride/SetProbeEnabled). Without it only probes installed
	// with an explicit sampling stride carry a control block; everything
	// else keeps the zero-overhead always-on path.
	Adaptive bool
	// Stop, when non-nil, is a cooperative cancellation flag: any
	// goroutine may set it, and the machine checks it at block-start
	// dispatch (the same observation point the pace hook uses), returning
	// ErrStopped from Run with promoted counters flushed. Session
	// schedulers (internal/fleet) use it to cancel long-running sessions
	// on drain. Nil keeps the dispatch loop free of the check.
	Stop *atomic.Bool
}

// ErrStopped is returned by Run when the machine was cancelled through
// Config.Stop. The machine state behind it is consistent (promoted
// counters flushed, attribution reconciled up to the stop point).
var ErrStopped = errors.New("vm: stopped on request")

// VM is a single-use machine: create, instrument, Run once.
type VM struct {
	// Prog is the control-flow view of the loaded program.
	Prog *cfg.Program

	mem   *Memory
	regs  [isa.NumRegs]uint64
	pc    uint64
	mods  []*modExec
	lastM *modExec

	mode ExecMode
	// inline enables the action-inlining layer: specialized probe thunks
	// and promoted counters (translated tier only, see Config.NoInline).
	// Fixed for the whole run.
	inline bool
	// dirty lists counter specs with a nonzero promoted accumulator, in
	// first-bump order; flushCounters drains it at observation points.
	dirty []*ProbeSpec

	cycles   uint64
	insts    uint64
	fuel     uint64
	depth    int
	halted   bool
	exitCode uint64
	allocs   uint64
	frees    uint64
	heapNext uint64

	appOut io.Writer
	obsC   *obs.Collector

	translator           func(*cfg.Block)
	startHooks, endHooks []ProbeFn

	curBlock     uint64
	blockStack   []frameBlock
	suppressEdge bool
	pending      []pendingAfter

	// Adaptive-instrumentation state (see adaptive.go): the control
	// blocks of sampled/governable probes and the cycle-paced hook the
	// governor runs from.
	adaptive bool
	// anyCtl hoists the per-probe control-block check out of the fire
	// loop: a machine with no control blocks keeps the original lean
	// dispatch.
	anyCtl  bool
	ctls    []*probeCtl
	ctlByID map[obs.ProbeID]*probeCtl

	pacer     func()
	paceEvery uint64
	nextPace  uint64
	// stop is the cooperative cancellation flag (Config.Stop); checked
	// at block-start dispatch only when non-nil.
	stop *atomic.Bool

	ctx Ctx
}

type pendingAfter struct {
	fall   uint64
	depth  int
	probes []probe
	inst   *isa.Inst
	// block is the call's basic block, captured at push time so the
	// probe observes it at the fall-through even if the fall-through
	// starts a different block (or control returned somewhere odd).
	block *cfg.Block
}

type frameBlock struct {
	addr uint64
	blk  *cfg.Block
}

// New builds a VM for the program. The module images are copied into
// memory; registers are zeroed; sp is initialized to the stack top.
func New(prog *cfg.Program, cfgv Config) *VM {
	if cfgv.Fuel == 0 {
		cfgv.Fuel = 2_000_000_000
	}
	if cfgv.AppOut == nil {
		cfgv.AppOut = io.Discard
	}
	v := &VM{
		Prog:         prog,
		mem:          NewMemory(),
		mode:         cfgv.ExecMode,
		inline:       cfgv.ExecMode != ExecInterpreted && !cfgv.NoInline,
		fuel:         cfgv.Fuel,
		appOut:       cfgv.AppOut,
		obsC:         cfgv.Obs,
		heapNext:     obj.HeapBase,
		suppressEdge: true,
		adaptive:     cfgv.Adaptive,
		stop:         cfgv.Stop,
	}
	v.ctx.vm = v
	for _, m := range prog.Modules {
		l := m.Loaded
		me := &modExec{
			base:   l.Base,
			insts:  make([]*isa.Inst, len(l.Image)),
			blocks: make([]*cfg.Block, len(l.Image)),
			flags:  make([]uint8, len(l.Image)),
			probes: make([]*offProbes, len(l.Image)),
		}
		if v.mode != ExecInterpreted {
			// The block-index and code-cache arrays exist only for the
			// translated tier.
			me.bstart = make([]uint32, len(l.Image))
			me.bidx = make([]int32, len(l.Image))
			me.bprogs = make([]*blockProg, len(l.Image))
		}
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				me.blocks[b.Start-l.Base] = b
				for i, in := range b.Insts {
					off := in.Addr - l.Base
					me.insts[off] = in
					if me.bstart != nil {
						me.bstart[off] = uint32(b.Start - l.Base)
						me.bidx[off] = int32(i)
					}
				}
			}
		}
		v.mods = append(v.mods, me)
		v.mem.WriteBytes(l.Base, l.Image)
		v.mem.WriteBytes(l.DataBase, l.DataImage)
	}
	sort.Slice(v.mods, func(i, j int) bool { return v.mods[i].base < v.mods[j].base })
	v.regs[isa.SP] = obj.StackTop
	v.regs[isa.FP] = obj.StackTop
	v.pc = prog.Obj.Entry()
	return v
}

// modFor maps a code address to its module: an MRU hit for the common
// case (consecutive instructions share a module), then binary search over
// the base-sorted module list.
func (v *VM) modFor(addr uint64) *modExec {
	if m := v.lastM; m != nil && addr >= m.base && addr-m.base < uint64(len(m.insts)) {
		return m
	}
	i := sort.Search(len(v.mods), func(i int) bool { return v.mods[i].base > addr }) - 1
	if i >= 0 {
		if m := v.mods[i]; addr-m.base < uint64(len(m.insts)) {
			v.lastM = m
			return m
		}
	}
	return nil
}

// AddBefore installs a probe fired before the instruction at addr
// executes. cost is charged on each firing.
func (v *VM) AddBefore(addr uint64, cost uint64, fn ProbeFn) error {
	return v.AddBeforeObs(addr, cost, obs.NoProbe, fn)
}

// AddBeforeObs is AddBefore with an observability tag: firings are
// attributed to id on the collector attached via Config.Obs.
func (v *VM) AddBeforeObs(addr uint64, cost uint64, id obs.ProbeID, fn ProbeFn) error {
	return v.AddBeforeSpec(addr, cost, id, fn, nil)
}

// AddBeforeSpec is AddBeforeObs with an inline specialization (spec may
// be nil; see ProbeSpec for the contract).
func (v *VM) AddBeforeSpec(addr uint64, cost uint64, id obs.ProbeID, fn ProbeFn, spec *ProbeSpec) error {
	return v.AddBeforeSampled(addr, cost, id, fn, spec, 0)
}

// AddBeforeSampled is AddBeforeSpec with a sampling stride: the probe
// fires on every stride-th hit (0 and 1 mean every hit). A stride above 1
// — or Config.Adaptive — attaches a control block, making the probe
// governable (SetProbeStride/SetProbeEnabled).
func (v *VM) AddBeforeSampled(addr uint64, cost uint64, id obs.ProbeID, fn ProbeFn, spec *ProbeSpec, stride uint64) error {
	m := v.modFor(addr)
	if m == nil || m.insts[addr-m.base] == nil {
		return fmt.Errorf("vm: no instruction at %#x", addr)
	}
	p := m.probesAt(addr - m.base)
	ct := v.newCtl(id, stride)
	if ct != nil {
		ct.sites = append(ct.sites, ctlSite{m: m, off: addr - m.base})
	}
	p.before = append(p.before, probe{fn: fn, cost: cost, id: id, spec: spec, ctl: ct})
	m.flags[addr-m.base] |= flagBefore
	m.invalidate(addr - m.base)
	return nil
}

// AddAfter installs a probe fired after the instruction at addr executes.
// For calls the probe fires at the fall-through, once the callee returns.
// After-probes are invalid on branches, returns and halts (there is no
// well-defined "after" point), matching the restrictions real frameworks
// impose.
func (v *VM) AddAfter(addr uint64, cost uint64, fn ProbeFn) error {
	return v.AddAfterObs(addr, cost, obs.NoProbe, fn)
}

// AddAfterObs is AddAfter with an observability tag.
func (v *VM) AddAfterObs(addr uint64, cost uint64, id obs.ProbeID, fn ProbeFn) error {
	return v.AddAfterSpec(addr, cost, id, fn, nil)
}

// AddAfterSpec is AddAfterObs with an inline specialization (spec may be
// nil; see ProbeSpec for the contract).
func (v *VM) AddAfterSpec(addr uint64, cost uint64, id obs.ProbeID, fn ProbeFn, spec *ProbeSpec) error {
	return v.AddAfterSampled(addr, cost, id, fn, spec, 0)
}

// AddAfterSampled is AddAfterSpec with a sampling stride (see
// AddBeforeSampled).
func (v *VM) AddAfterSampled(addr uint64, cost uint64, id obs.ProbeID, fn ProbeFn, spec *ProbeSpec, stride uint64) error {
	m := v.modFor(addr)
	if m == nil || m.insts[addr-m.base] == nil {
		return fmt.Errorf("vm: no instruction at %#x", addr)
	}
	switch m.insts[addr-m.base].Op {
	case isa.Branch, isa.Return, isa.Halt:
		return fmt.Errorf("vm: after-probe invalid on %s at %#x", m.insts[addr-m.base].Op, addr)
	}
	p := m.probesAt(addr - m.base)
	ct := v.newCtl(id, stride)
	if ct != nil {
		ct.sites = append(ct.sites, ctlSite{m: m, off: addr - m.base})
	}
	p.after = append(p.after, probe{fn: fn, cost: cost, id: id, spec: spec, ctl: ct})
	m.flags[addr-m.base] |= flagAfter
	m.invalidate(addr - m.base)
	return nil
}

// AddBlockEntry installs a probe fired whenever execution enters the basic
// block starting at addr.
func (v *VM) AddBlockEntry(addr uint64, cost uint64, fn ProbeFn) error {
	return v.AddBlockEntryObs(addr, cost, obs.NoProbe, fn)
}

// AddBlockEntryObs is AddBlockEntry with an observability tag.
func (v *VM) AddBlockEntryObs(addr uint64, cost uint64, id obs.ProbeID, fn ProbeFn) error {
	return v.AddBlockEntrySpec(addr, cost, id, fn, nil)
}

// AddBlockEntrySpec is AddBlockEntryObs with an inline specialization
// (spec may be nil; see ProbeSpec for the contract).
func (v *VM) AddBlockEntrySpec(addr uint64, cost uint64, id obs.ProbeID, fn ProbeFn, spec *ProbeSpec) error {
	return v.AddBlockEntrySampled(addr, cost, id, fn, spec, 0)
}

// AddBlockEntrySampled is AddBlockEntrySpec with a sampling stride (see
// AddBeforeSampled). Entry lists are read live at dispatch, so control
// changes need no block invalidation.
func (v *VM) AddBlockEntrySampled(addr uint64, cost uint64, id obs.ProbeID, fn ProbeFn, spec *ProbeSpec, stride uint64) error {
	m := v.modFor(addr)
	if m == nil || m.blocks[addr-m.base] == nil {
		return fmt.Errorf("vm: no basic block starting at %#x", addr)
	}
	p := m.probesAt(addr - m.base)
	p.entry = append(p.entry, probe{fn: fn, cost: cost, id: id, spec: spec, ctl: v.newCtl(id, stride)})
	m.flags[addr-m.base] |= flagBlockEntry
	return nil
}

// AddEdge installs a probe fired when the intraprocedural edge from the
// block starting at `from` to the block starting at `to` is traversed.
func (v *VM) AddEdge(from, to uint64, cost uint64, fn ProbeFn) error {
	return v.AddEdgeObs(from, to, cost, obs.NoProbe, fn)
}

// AddEdgeObs is AddEdge with an observability tag.
func (v *VM) AddEdgeObs(from, to uint64, cost uint64, id obs.ProbeID, fn ProbeFn) error {
	return v.AddEdgeSpec(from, to, cost, id, fn, nil)
}

// AddEdgeSpec is AddEdgeObs with an inline specialization (spec may be
// nil; see ProbeSpec for the contract).
func (v *VM) AddEdgeSpec(from, to uint64, cost uint64, id obs.ProbeID, fn ProbeFn, spec *ProbeSpec) error {
	return v.AddEdgeSampled(from, to, cost, id, fn, spec, 0)
}

// AddEdgeSampled is AddEdgeSpec with a sampling stride (see
// AddBeforeSampled). Edge lists are read live at dispatch, so control
// changes need no block invalidation.
func (v *VM) AddEdgeSampled(from, to uint64, cost uint64, id obs.ProbeID, fn ProbeFn, spec *ProbeSpec, stride uint64) error {
	m := v.modFor(to)
	if m == nil || m.blocks[to-m.base] == nil {
		return fmt.Errorf("vm: no basic block starting at %#x", to)
	}
	if mf := v.modFor(from); mf == nil || mf.blocks[from-mf.base] == nil {
		return fmt.Errorf("vm: no basic block starting at %#x", from)
	}
	p := m.probesAt(to - m.base)
	np := probe{fn: fn, cost: cost, id: id, spec: spec, ctl: v.newCtl(id, stride)}
	for i := range p.edgeIn {
		if p.edgeIn[i].from == from {
			p.edgeIn[i].probes = append(p.edgeIn[i].probes, np)
			m.flags[to-m.base] |= flagEdgeTo
			return nil
		}
	}
	p.edgeIn = append(p.edgeIn, edgeProbes{from: from, probes: []probe{np}})
	m.flags[to-m.base] |= flagEdgeTo
	return nil
}

// SetTranslator installs the just-in-time translation hook, called once per
// basic block immediately before its first execution. Dynamic frameworks
// instrument blocks from this hook. Only one translator may be installed.
func (v *VM) SetTranslator(fn func(*cfg.Block)) error {
	if v.translator != nil {
		return fmt.Errorf("vm: translator already installed")
	}
	v.translator = fn
	return nil
}

// OnStart registers a hook run before the first instruction.
func (v *VM) OnStart(fn ProbeFn) { v.startHooks = append(v.startHooks, fn) }

// OnEnd registers a hook run after the program halts.
func (v *VM) OnEnd(fn ProbeFn) { v.endHooks = append(v.endHooks, fn) }

// Charge adds instrumentation cost (in units) to the cycle counter.
func (v *VM) Charge(units uint64) { v.cycles += units }

// Cycles returns the cycle-unit count so far.
func (v *VM) Cycles() uint64 { return v.cycles }

// Mem returns the machine memory (frameworks use it for snippet
// evaluation).
func (v *VM) Mem() *Memory { return v.mem }

// Reg returns the current value of a register.
func (v *VM) Reg(r isa.Reg) uint64 { return v.regs[r] }

// stopErr finalizes a cooperative cancellation: like a trap it is an
// observation point, so promoted counters flush before the error
// surfaces.
func (v *VM) stopErr() error {
	if len(v.dirty) > 0 {
		v.flushCounters()
	}
	return ErrStopped
}

func (v *VM) trap(format string, args ...any) error {
	// Traps are observation points: promoted counters flush so the
	// machine state behind the error matches the interpreter's exactly.
	if len(v.dirty) > 0 {
		v.flushCounters()
	}
	return &TrapError{PC: v.pc, Msg: fmt.Sprintf(format, args...)}
}

// flushCounters applies every promoted counter accumulator to its cell
// (see ProbeSpec.Flush) and empties the dirty list. Flushes are additive
// reads-modify-writes of independent accumulators, so drain order does
// not affect the result.
func (v *VM) flushCounters() {
	for _, sp := range v.dirty {
		sp.Flush(sp.acc)
		sp.acc = 0
	}
	v.dirty = v.dirty[:0]
}

func (v *VM) fire(ps []probe, in *isa.Inst, when When) {
	if v.inline {
		v.fireInline(ps, in, when)
		return
	}
	c := &v.ctx
	saveInst, saveWhen, saveBlock := c.inst, c.when, c.block
	c.inst, c.when = in, when
	// Two predictable branches decide the whole batch: a machine with no
	// control blocks and no collector runs the exact loop the VM always
	// ran, with zero per-probe overhead for either feature.
	if obsC := v.obsC; obsC != nil {
		if v.anyCtl {
			for i := range ps {
				p := &ps[i]
				if p.ctl != nil && !p.ctl.gate(v) {
					continue
				}
				v.cycles += p.cost
				p.fn(c)
				p.fireObs(obsC, v.pc)
			}
		} else {
			for i := range ps {
				p := &ps[i]
				v.cycles += p.cost
				p.fn(c)
				p.fireObs(obsC, v.pc)
			}
		}
	} else if v.anyCtl {
		for i := range ps {
			p := &ps[i]
			if p.ctl != nil && !p.ctl.gate(v) {
				continue
			}
			v.cycles += p.cost
			p.fn(c)
		}
	} else {
		for _, p := range ps {
			v.cycles += p.cost
			p.fn(c)
		}
	}
	c.inst, c.when, c.block = saveInst, saveWhen, saveBlock
}

// fireInline is the fire loop of the action-inlining layer: probes with
// an inline spec run their specialized callbacks — counter-shaped ones
// only bump their promoted accumulator — while unspecialized probes see
// every promoted counter flushed first (their bodies may read any cell,
// install probes, or observe Cycles, so they are full observation
// points). Cycle charges and obs attribution stay per-firing and in
// firing order, identical to the generic loop.
func (v *VM) fireInline(ps []probe, in *isa.Inst, when When) {
	c := &v.ctx
	saveInst, saveWhen, saveBlock := c.inst, c.when, c.block
	c.inst, c.when = in, when
	obsC := v.obsC
	anyCtl := v.anyCtl
	for i := range ps {
		p := &ps[i]
		if anyCtl && p.ctl != nil && !p.ctl.gate(v) {
			continue
		}
		if sp := p.spec; sp != nil {
			if sp.Counter {
				if sp.acc == 0 {
					v.dirty = append(v.dirty, sp)
				}
				sp.acc += sp.Delta
				v.cycles += p.cost
				if obsC != nil {
					p.fireObs(obsC, v.pc)
				}
				continue
			}
			if len(v.dirty) > 0 {
				v.flushCounters()
			}
			v.cycles += p.cost
			sp.Fn(c)
			if obsC != nil {
				p.fireObs(obsC, v.pc)
			}
			continue
		}
		if len(v.dirty) > 0 {
			v.flushCounters()
		}
		v.cycles += p.cost
		p.fn(c)
		if obsC != nil {
			p.fireObs(obsC, v.pc)
		}
	}
	c.inst, c.when, c.block = saveInst, saveWhen, saveBlock
}

// fireCallAfter fires a drained call-after batch at the call's
// fall-through. The probe observes the call's own basic block, captured
// when the pending entry was pushed — not whatever block the
// fall-through happens to start.
func (v *VM) fireCallAfter(top pendingAfter) {
	save := v.ctx.block
	v.ctx.block = top.block
	v.fire(top.probes, top.inst, AfterInst)
	v.ctx.block = save
}

// Run executes the program to completion and returns the execution
// summary. The execution tier is selected by Config.ExecMode; both
// tiers produce bit-identical results.
func (v *VM) Run() (*Result, error) {
	if v.halted {
		return nil, fmt.Errorf("vm: Run called twice")
	}
	for _, fn := range v.startHooks {
		v.ctx.when = AtStart
		fn(&v.ctx)
	}
	var err error
	if v.mode == ExecInterpreted {
		err = v.runInterp()
	} else {
		err = v.runTranslated()
	}
	if err != nil {
		return nil, err
	}
	// End hooks (and the caller's post-run reads) observe final tool
	// state: flush any still-promoted counters first.
	if len(v.dirty) > 0 {
		v.flushCounters()
	}
	for _, fn := range v.endHooks {
		v.ctx.when = AtEnd
		v.ctx.inst = nil
		fn(&v.ctx)
	}
	return &Result{
		Cycles:   v.cycles,
		Insts:    v.insts,
		ExitCode: v.exitCode,
		Allocs:   v.allocs,
		Frees:    v.frees,
	}, nil
}

// runInterp is the reference per-instruction interpreter loop: the
// semantic oracle the translated tier is checked against.
func (v *VM) runInterp() error {
	for !v.halted {
		if v.insts >= v.fuel {
			return v.trap("out of fuel after %d instructions", v.insts)
		}
		// Fire pending call-after probes whose fall-through we reached.
		for len(v.pending) > 0 {
			top := v.pending[len(v.pending)-1]
			if top.fall != v.pc || top.depth != v.depth {
				break
			}
			v.pending = v.pending[:len(v.pending)-1]
			v.fireCallAfter(top)
		}

		m := v.modFor(v.pc)
		if m == nil {
			return v.trap("execution outside code")
		}
		off := v.pc - m.base
		in := m.insts[off]
		if in == nil {
			return v.trap("not an instruction boundary")
		}

		if blk := m.blocks[off]; blk != nil {
			// The pace hook fires at block-start dispatch, the same point
			// the translated tier checks it, so governor decisions are
			// driven by an identical (cycles, block) sequence on both
			// tiers.
			if v.stop != nil && v.stop.Load() {
				return v.stopErr()
			}
			if v.pacer != nil && v.cycles >= v.nextPace {
				v.pace()
			}
			if v.translator != nil && m.flags[off]&flagTranslated == 0 {
				m.flags[off] |= flagTranslated
				v.ctx.block = blk
				v.translator(blk)
			}
			// Flags and probe storage are (re)read after translation: a
			// just-translated block may have installed probes at this very
			// offset, and they must fire on this first execution.
			flags := m.flags[off]
			op := m.probes[off]
			if !v.suppressEdge && flags&flagEdgeTo != 0 {
				for i := range op.edgeIn {
					if op.edgeIn[i].from == v.curBlock {
						v.ctx.block = blk
						v.fire(op.edgeIn[i].probes, in, AtEdge)
						break
					}
				}
			}
			v.curBlock = v.pc
			v.ctx.block = blk
			if flags&flagBlockEntry != 0 {
				v.fire(op.entry, in, AtBlockEntry)
			}
		}
		v.suppressEdge = false

		flags := m.flags[off]
		op := m.probes[off]
		if flags&flagBefore != 0 {
			v.fire(op.before, in, BeforeInst)
		}

		depthBefore := v.depth
		if err := v.exec(in); err != nil {
			return err
		}
		v.cycles += instCost(in.Op)
		v.insts++

		if flags&flagAfter != 0 {
			if in.Op == isa.Call {
				v.pending = append(v.pending, pendingAfter{
					fall: in.Next(), depth: depthBefore, probes: op.after,
					inst: in, block: v.ctx.block,
				})
			} else {
				v.fire(op.after, in, AfterInst)
			}
		}
	}
	return nil
}

func (v *VM) operandVal(op isa.Operand) uint64 {
	switch op.Kind {
	case isa.KindReg:
		return v.regs[op.Reg]
	case isa.KindImm:
		return uint64(op.Imm)
	case isa.KindMem:
		return v.mem.Read64(v.regs[op.Base] + uint64(op.Off))
	}
	return 0
}

func (v *VM) exec(in *isa.Inst) error {
	next := in.Next()
	switch in.Op {
	case isa.Nop:
		v.pc = next
	case isa.Mov:
		v.regs[in.Ops[0].Reg] = v.operandVal(in.Ops[1])
		v.pc = next
	case isa.Load:
		ea := v.regs[in.Ops[1].Base] + uint64(in.Ops[1].Off)
		v.regs[in.Ops[0].Reg] = v.mem.Read64(ea)
		v.pc = next
	case isa.Store:
		ea := v.regs[in.Ops[1].Base] + uint64(in.Ops[1].Off)
		v.mem.Write64(ea, v.regs[in.Ops[0].Reg])
		v.pc = next
	case isa.Add, isa.Sub, isa.Mul, isa.Div, isa.Rem, isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr:
		a := v.regs[in.Ops[1].Reg]
		b := v.operandVal(in.Ops[2])
		var r uint64
		switch in.Op {
		case isa.Add:
			r = a + b
		case isa.Sub:
			r = a - b
		case isa.Mul:
			r = a * b
		case isa.Div:
			if b == 0 {
				return v.trap("division by zero")
			}
			r = uint64(int64(a) / int64(b))
		case isa.Rem:
			if b == 0 {
				return v.trap("division by zero")
			}
			r = uint64(int64(a) % int64(b))
		case isa.And:
			r = a & b
		case isa.Or:
			r = a | b
		case isa.Xor:
			r = a ^ b
		case isa.Shl:
			r = a << (b & 63)
		case isa.Shr:
			r = a >> (b & 63)
		}
		v.regs[in.Ops[0].Reg] = r
		v.pc = next
	case isa.GetPtr:
		v.regs[in.Ops[0].Reg] = v.regs[in.Ops[1].Reg] + v.operandVal(in.Ops[2]) + uint64(in.Ops[3].Imm)
		v.pc = next
	case isa.Branch:
		taken := true
		var target uint64
		if in.Cond != isa.Always {
			taken = in.Cond.Holds(int64(v.regs[in.Ops[0].Reg]), int64(v.regs[in.Ops[1].Reg]))
			target = uint64(in.Ops[2].Imm)
		} else if in.Ops[0].Kind == isa.KindReg {
			target = v.regs[in.Ops[0].Reg]
		} else {
			target = uint64(in.Ops[0].Imm)
		}
		if taken {
			v.pc = target
		} else {
			v.pc = next
		}
	case isa.Call:
		var target uint64
		if in.Ops[0].Kind == isa.KindReg {
			target = v.regs[in.Ops[0].Reg]
		} else {
			target = uint64(in.Ops[0].Imm)
		}
		if obj.IsIntrinsic(target) {
			if err := v.intrinsic(target); err != nil {
				return err
			}
			v.pc = next
			return nil
		}
		sp := v.regs[isa.SP] - 8
		v.regs[isa.SP] = sp
		v.mem.Write64(sp, next)
		v.blockStack = append(v.blockStack, frameBlock{v.curBlock, v.ctx.block})
		v.depth++
		if v.depth > 100000 {
			return v.trap("call depth exceeded")
		}
		v.pc = target
		v.suppressEdge = true
	case isa.Return:
		sp := v.regs[isa.SP]
		v.pc = v.mem.Read64(sp)
		v.regs[isa.SP] = sp + 8
		if n := len(v.blockStack); n > 0 {
			v.curBlock = v.blockStack[n-1].addr
			v.ctx.block = v.blockStack[n-1].blk
			v.blockStack = v.blockStack[:n-1]
		} else {
			v.curBlock = 0
			v.ctx.block = nil
		}
		if v.depth > 0 {
			v.depth--
		}
	case isa.Halt:
		v.halted = true
	default:
		return v.trap("unimplemented opcode %s", in.Op)
	}
	return nil
}

func (v *VM) intrinsic(addr uint64) error {
	v.cycles += IntrinsicCost
	switch addr {
	case addrMalloc:
		size := v.regs[isa.R1]
		if size == 0 {
			size = 1
		}
		size = (size + 15) &^ 15
		if v.heapNext+size > obj.HeapLimit {
			return v.trap("heap exhausted")
		}
		v.regs[isa.R0] = v.heapNext
		v.heapNext += size
		v.allocs++
	case addrFree:
		v.frees++
	case addrPrint:
		fmt.Fprintf(v.appOut, "%d\n", int64(v.regs[isa.R1]))
	case addrExit:
		v.exitCode = v.regs[isa.R1]
		v.halted = true
	default:
		return v.trap("unknown intrinsic %#x", addr)
	}
	return nil
}
