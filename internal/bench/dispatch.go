package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/cfg"
	"repro/internal/core/backend"
	"repro/internal/core/engine"
	"repro/internal/obs"
	"repro/internal/progs"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Dispatch-tier trajectory: wall-clock throughput of the machine's two
// execution tiers (translated block programs vs the per-instruction
// reference loop) across the paper's five use cases plus a probe-free
// baseline. Cycle-unit results are identical across tiers by
// construction — the conformance oracle enforces it — so the rows
// report the one thing that differs: host nanoseconds per executed
// application instruction.

// DispatchRow is one (use case, VM tier) cell. The JSON form is what
// `experiments -exp=dispatch -json` writes to BENCH_dispatch.json.
type DispatchRow struct {
	UseCase string `json:"use_case"`
	// Mode is the VM execution tier ("translated" or "interpreted").
	Mode string `json:"vm_mode"`
	// Cycles and Insts are the deterministic run counters (identical
	// across tiers for the same cell).
	Cycles uint64 `json:"cycles"`
	Insts  uint64 `json:"insts"`
	// WallNs is the best-of-three wall time of the run.
	WallNs int64 `json:"wall_ns"`
	// NsPerInst is WallNs per executed application instruction.
	NsPerInst float64 `json:"ns_per_inst"`
	// CyclesPerSec is the cycle-unit throughput at that wall time.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// Fires is the total number of probe firings in the run (identical
	// across tiers, like the cycle counters; 0 for the probe-free
	// baseline). Measured on a separate observability-attached run so
	// the timed runs carry no collection overhead.
	Fires uint64 `json:"fires"`
	// AllocsPerFire is the fewest heap allocations any timed repetition
	// performed, divided by Fires (0 when Fires is 0) — the steady-state
	// allocation cost of one probe dispatch.
	AllocsPerFire float64 `json:"allocs_per_fire"`
}

// dispatchReps is the per-cell repetition count; the fastest run is
// reported, the standard defense against scheduler noise.
const dispatchReps = 3

// dispatchCases are the tools measured by Dispatch: the five Table I
// use cases plus the opcode-mix profiler — an action-heavy workload
// (four per-instruction counter probes over disjoint opcode classes)
// that exercises the translated tier's probe+op superinstructions.
var dispatchCases = func() []struct{ label, prog string } {
	cases := make([]struct{ label, prog string }, 0, len(table1Cases)+1)
	for _, c := range table1Cases {
		cases = append(cases, struct{ label, prog string }{c.label, c.prog})
	}
	return append(cases, struct{ label, prog string }{"Opcode mix", progs.OpcodeMix})
}()

// Dispatch measures both VM tiers on the named benchmark: a probe-free
// baseline (the headline block-translation case: no probes, pure
// dispatch) and the five Table I use cases under the Janus backend
// (executable-only, supports every trigger kind including loops). Cells
// run serially — this is a wall-clock measurement, so nothing else may
// share the machine with it.
func Dispatch(benchmark string, scale float64) ([]DispatchRow, error) {
	spec, ok := workload.ByName(benchmark)
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchmark)
	}
	prog, err := BuildBenchmark(spec, scale)
	if err != nil {
		return nil, err
	}
	modes := []vm.ExecMode{vm.ExecTranslated, vm.ExecInterpreted}

	var rows []DispatchRow
	for _, mode := range modes {
		row, _, err := timeCell("baseline (no tool)", mode, func() (*vm.Result, error) {
			return vm.New(prog, vm.Config{ExecMode: mode}).Run()
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for _, c := range dispatchCases {
		tool, err := compileTool(c.prog)
		if err != nil {
			return nil, err
		}
		fires, err := countToolFires(tool, prog)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", c.label, err)
		}
		for _, mode := range modes {
			row, mallocs, err := timeCell(c.label, mode, func() (*vm.Result, error) {
				return runToolCell(tool, prog, mode)
			})
			if err != nil {
				return nil, err
			}
			row.Fires = fires
			if fires > 0 {
				row.AllocsPerFire = float64(mallocs) / float64(fires)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runToolCell(tool *engine.CompiledTool, prog *cfg.Program, mode vm.ExecMode) (*vm.Result, error) {
	return backend.Run(tool, prog, backend.Janus, backend.Options{
		Out:    io.Discard,
		VMMode: mode,
	})
}

// countToolFires runs the cell once with a collector attached and
// totals probe firings. Firing counts, like the cycle counters, are
// deterministic and identical across tiers, so one untimed run serves
// every row of the cell.
func countToolFires(tool *engine.CompiledTool, prog *cfg.Program) (uint64, error) {
	col := obs.New(obs.Options{})
	_, err := backend.Run(tool, prog, backend.Janus, backend.Options{
		Out:    io.Discard,
		VMMode: vm.ExecTranslated,
		Obs:    col,
	})
	if err != nil {
		return 0, err
	}
	return col.Snapshot(backend.Janus).FiresWhere(func(obs.ProbeStats) bool { return true }), nil
}

func timeCell(label string, mode vm.ExecMode, run func() (*vm.Result, error)) (DispatchRow, uint64, error) {
	var res *vm.Result
	var ms runtime.MemStats
	best := int64(0)
	var bestMallocs uint64
	for i := 0; i < dispatchReps; i++ {
		runtime.ReadMemStats(&ms)
		before := ms.Mallocs
		start := time.Now()
		r, err := run()
		wall := time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&ms)
		mallocs := ms.Mallocs - before
		if err != nil {
			return DispatchRow{}, 0, fmt.Errorf("bench: %s (%s): %w", label, mode, err)
		}
		if res != nil && (res.Cycles != r.Cycles || res.Insts != r.Insts) {
			return DispatchRow{}, 0, fmt.Errorf("bench: %s (%s): nondeterministic counters", label, mode)
		}
		res = r
		if best == 0 || wall < best {
			best = wall
		}
		if i == 0 || mallocs < bestMallocs {
			bestMallocs = mallocs
		}
	}
	row := DispatchRow{
		UseCase: label,
		Mode:    mode.String(),
		Cycles:  res.Cycles,
		Insts:   res.Insts,
		WallNs:  best,
	}
	if res.Insts > 0 {
		row.NsPerInst = float64(best) / float64(res.Insts)
	}
	if best > 0 {
		row.CyclesPerSec = float64(res.Cycles) / (float64(best) / 1e9)
	}
	return row, bestMallocs, nil
}

// FormatDispatch renders the tier comparison, pairing each use case's
// translated and interpreted rows with the resulting speedup.
func FormatDispatch(w io.Writer, rows []DispatchRow) {
	fmt.Fprintf(w, "%-20s %-12s %14s %12s %12s %12s %12s %9s\n",
		"Use case", "VM tier", "cycles", "insts", "fires", "ns/inst", "allocs/fire", "speedup")
	byKey := map[string]DispatchRow{}
	for _, r := range rows {
		byKey[r.UseCase+"/"+r.Mode] = r
	}
	for _, r := range rows {
		speedup := "-"
		if r.Mode == vm.ExecTranslated.String() {
			if o, ok := byKey[r.UseCase+"/"+vm.ExecInterpreted.String()]; ok && r.WallNs > 0 {
				speedup = fmt.Sprintf("%.2fx", float64(o.WallNs)/float64(r.WallNs))
			}
		}
		fmt.Fprintf(w, "%-20s %-12s %14d %12d %12d %12.2f %12.3f %9s\n",
			r.UseCase, r.Mode, r.Cycles, r.Insts, r.Fires, r.NsPerInst, r.AllocsPerFire, speedup)
	}
}
