package ast

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core/token"
)

// Fprint renders a program back to Cinnamon source. The output is
// canonical: two-space indentation, one statement per line, and
// parentheses only where precedence requires them. Printing is a fixed
// point through the parser — parsing the printed source and printing it
// again yields byte-identical text — which is what lets the conformance
// generator and shrinker treat the AST as the single source of truth for
// generated programs.
func Fprint(w io.Writer, prog *Program) {
	p := &printer{w: w}
	for i, item := range prog.Items {
		if i > 0 {
			p.nl()
		}
		p.topItem(item)
	}
}

// Print renders a program to a string (see Fprint).
func Print(prog *Program) string {
	var sb strings.Builder
	Fprint(&sb, prog)
	return sb.String()
}

type printer struct {
	w      io.Writer
	indent int
}

func (p *printer) printf(format string, args ...any) {
	fmt.Fprintf(p.w, format, args...)
}

func (p *printer) line(format string, args ...any) {
	p.printf("%s", strings.Repeat("  ", p.indent))
	p.printf(format, args...)
	p.nl()
}

func (p *printer) nl() { p.printf("\n") }

func (p *printer) topItem(item TopItem) {
	switch it := item.(type) {
	case *VarDecl:
		p.line("%s", declString(it))
	case *InitBlock:
		p.block("init", it.Body)
	case *ExitBlock:
		p.block("exit", it.Body)
	case *Command:
		p.command(it)
	}
}

func (p *printer) block(kw string, body []Stmt) {
	p.line("%s {", kw)
	p.indent++
	p.stmts(body)
	p.indent--
	p.line("}")
}

func (p *printer) command(c *Command) {
	head := fmt.Sprintf("%s %s", c.EType, c.Var)
	if c.Where != nil {
		head += fmt.Sprintf(" where (%s)", ExprString(c.Where))
	}
	p.line("%s {", head)
	p.indent++
	for _, item := range c.Body {
		switch it := item.(type) {
		case *Command:
			p.command(it)
		case *Action:
			p.action(it)
		case Stmt:
			p.stmt(it)
		}
	}
	p.indent--
	p.line("}")
}

func (p *printer) action(a *Action) {
	head := fmt.Sprintf("%s %s", a.Trigger, a.Target)
	if a.Where != nil {
		head += fmt.Sprintf(" where (%s)", ExprString(a.Where))
	}
	if a.Sample > 0 {
		head += fmt.Sprintf(" sample %d", a.Sample)
	}
	p.line("%s {", head)
	p.indent++
	p.stmts(a.Body)
	p.indent--
	p.line("}")
}

func (p *printer) stmts(stmts []Stmt) {
	for _, s := range stmts {
		p.stmt(s)
	}
}

func (p *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *DeclStmt:
		p.line("%s", declString(st.Decl))
	case *AssignStmt:
		p.line("%s = %s;", ExprString(st.LHS), ExprString(st.RHS))
	case *ExprStmt:
		p.line("%s;", ExprString(st.X))
	case *IfStmt:
		p.line("if (%s) {", ExprString(st.Cond))
		p.indent++
		p.stmts(st.Then)
		p.indent--
		if len(st.Else) > 0 {
			p.line("} else {")
			p.indent++
			p.stmts(st.Else)
			p.indent--
		}
		p.line("}")
	case *ForStmt:
		init, cond, post := ";", "", ""
		if st.Init != nil {
			init = simpleStmtString(st.Init)
		}
		if st.Cond != nil {
			cond = ExprString(st.Cond)
		}
		if st.Post != nil {
			post = strings.TrimSuffix(simpleStmtString(st.Post), ";")
		}
		p.line("for (%s %s; %s) {", init, cond, post)
		p.indent++
		p.stmts(st.Body)
		p.indent--
		p.line("}")
	}
}

// simpleStmtString renders a for-clause statement (decl, assign or expr)
// inline, with its trailing semicolon.
func simpleStmtString(s Stmt) string {
	switch st := s.(type) {
	case *DeclStmt:
		return declString(st.Decl)
	case *AssignStmt:
		return fmt.Sprintf("%s = %s;", ExprString(st.LHS), ExprString(st.RHS))
	case *ExprStmt:
		return ExprString(st.X) + ";"
	}
	return ";"
}

func declString(d *VarDecl) string {
	s := typeString(d.Type) + " " + d.Name
	if d.Type.ArrayLen > 0 {
		s += fmt.Sprintf("[%d]", d.Type.ArrayLen)
	}
	if d.Init != nil {
		s += " = " + ExprString(d.Init)
	}
	if len(d.Args) > 0 {
		args := make([]string, len(d.Args))
		for i, a := range d.Args {
			args[i] = ExprString(a)
		}
		s += "(" + strings.Join(args, ", ") + ")"
	}
	return s + ";"
}

func typeString(t *TypeSpec) string {
	switch t.Kind {
	case token.TDICT:
		return fmt.Sprintf("dict<%s,%s>", typeString(t.Key), typeString(t.Elem))
	case token.TVECTOR:
		return fmt.Sprintf("vector<%s>", typeString(t.Elem))
	}
	return t.Kind.String()
}

// ExprString renders an expression with minimal parenthesization: a
// binary subexpression is parenthesized only when its precedence would
// otherwise bind it to the wrong operator on reparse.
func ExprString(e Expr) string {
	return exprPrec(e, 0)
}

// exprPrec renders e in a context of the given minimum precedence.
func exprPrec(e Expr, min int) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *IntLit:
		return fmt.Sprintf("%d", x.Val)
	case *StringLit:
		return quoteString(x.Val)
	case *CharLit:
		return quoteChar(x.Val)
	case *BoolLit:
		if x.Val {
			return "true"
		}
		return "false"
	case *NullLit:
		return "NULL"
	case *OpcodeLit:
		return x.Name
	case *FieldExpr:
		return exprPrec(x.X, maxPrec) + "." + x.Name
	case *IndexExpr:
		return exprPrec(x.X, maxPrec) + "[" + exprPrec(x.Index, 0) + "]"
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = exprPrec(a, 0)
		}
		return exprPrec(x.Fun, maxPrec) + "(" + strings.Join(args, ", ") + ")"
	case *UnaryExpr:
		return paren(x.Op.String()+exprPrec(x.X, maxPrec), min > unaryPrec)
	case *IsTypeExpr:
		prec := token.ISTYPE.Precedence()
		return paren(exprPrec(x.X, prec)+" IsType "+x.OpType.String(), prec < min)
	case *BinaryExpr:
		prec := x.Op.Precedence()
		// Left-associative: the right operand needs one level more.
		s := exprPrec(x.X, prec) + " " + x.Op.String() + " " + exprPrec(x.Y, prec+1)
		return paren(s, prec < min)
	}
	return "<?expr>"
}

// unaryPrec and maxPrec bracket the binary-operator precedence range
// (see token.Kind.Precedence): unary operators bind tighter than any
// binary operator, postfix expressions tighter still.
const (
	unaryPrec = 11
	maxPrec   = 12
)

func paren(s string, need bool) string {
	if need {
		return "(" + s + ")"
	}
	return s
}

// quoteString renders a string literal with exactly the escapes the
// lexer understands (\n, \t, \\, \").
func quoteString(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

func quoteChar(c byte) string {
	switch c {
	case '\n':
		return `'\n'`
	case '\t':
		return `'\t'`
	case '\\':
		return `'\\'`
	case '\'':
		return `'\''`
	}
	return "'" + string(c) + "'"
}
