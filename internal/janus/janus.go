// Package janus is a clean-room, Go reimplementation of the programming
// model of Janus, the hybrid static/dynamic binary modification framework
// built on DynamoRIO. It is one of the three backend substrates the
// Cinnamon compiler targets.
//
// Janus splits a tool into two halves:
//
//   - a *static analyzer* that walks the executable's recovered control
//     flow ahead of time and annotates instructions and basic blocks with
//     *rewrite rules* — compact records naming a dynamic handler and
//     carrying payload words of static analysis data;
//   - a *dynamic instrumenter* (DynamoRIO underneath) that translates the
//     binary one basic block at a time and, before a block first executes,
//     decodes its rewrite rules and inserts clean calls to the registered
//     handlers, passing the payload words as arguments.
//
// Fidelity notes, matching the paper:
//
//   - the static analyzer only sees the main executable, so rules (and
//     therefore instrumentation) never cover shared-library code — Janus's
//     counts match Dyninst's, not Pin's, in Figure 12;
//   - clean calls whose handler is simple enough are inlined by the
//     dynamic translator (as DynamoRIO does), which is why Janus sits
//     between Pin and Dyninst in the Figure 13 overhead ordering;
//   - static analysis data reaches handlers as rule payload words, the
//     exact mechanism Cinnamon uses to pass analysis results to actions.
package janus

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"repro/internal/cfg"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Dispatch cost model (cycle units).
const (
	// CleanCallCost is charged per non-inlined handler invocation
	// (DynamoRIO clean call: full context switch into the tool).
	CleanCallCost = 30
	// InlinedCallCost is charged when the dynamic translator can inline
	// the clean call (simple, branch-free handler).
	InlinedCallCost = 10
	// ArgCost is charged per payload word materialized for a handler.
	ArgCost = 2
	// BlockTranslationCost is the one-time cost of translating a basic
	// block and scanning its rewrite rules.
	BlockTranslationCost = 300
)

// Trigger says where, relative to the annotated location, the handler is
// invoked.
type Trigger uint8

// Rule triggers.
const (
	// TriggerBefore / TriggerAfter bracket a single instruction. After a
	// call instruction, TriggerAfter fires at the fall-through once the
	// callee returns.
	TriggerBefore Trigger = iota
	TriggerAfter
	// TriggerBlockEntry fires when the annotated basic block is entered.
	TriggerBlockEntry
	// TriggerEdge fires when the intraprocedural edge (Aux -> block) is
	// traversed; Aux holds the source block address.
	TriggerEdge
	// TriggerInit / TriggerFini fire before the first and after the last
	// application instruction.
	TriggerInit
	TriggerFini
)

// Rule is a rewrite rule: the static analyzer's annotation on a location
// in the binary, consumed by the dynamic instrumenter.
type Rule struct {
	// BlockAddr is the start address of the annotated basic block.
	BlockAddr uint64
	// InstAddr is the annotated instruction (for before/after triggers).
	InstAddr uint64
	// Aux is trigger-specific (source block address for TriggerEdge).
	Aux uint64
	// Trigger selects the invocation point.
	Trigger Trigger
	// Handler names the dynamic handler to invoke.
	Handler HandlerID
	// Data is the static-analysis payload passed to the handler.
	Data []uint64
}

// HandlerID names a registered dynamic handler.
type HandlerID uint16

// HandlerFn is a dynamic handler. It receives the machine context and the
// rule's payload words.
type HandlerFn func(c *vm.Ctx, data []uint64)

// Handler couples a handler function with its cost properties. Cost is
// the body's work in cycle units; Inlinable marks handlers simple enough
// for DynamoRIO's clean-call inlining.
type Handler struct {
	Fn        HandlerFn
	Cost      uint64
	Inlinable bool
	// Label identifies the handler in observability reports (optional;
	// the Cinnamon backend sets it to the originating action).
	Label string
	// FastFn, when non-nil, is a specialized variant of Fn with
	// identical observable behavior (same stores, same output, same
	// failures) that satisfies the vm.ProbeSpec purity contract: it
	// never installs rules or probes and never reads cycle counts. The
	// dynamic instrumenter hands it to the VM's action-inlining layer.
	FastFn HandlerFn
	// CounterFlush, when non-nil, asserts that every invocation of the
	// handler — for any rule payload — is equivalent in all observables
	// to CounterFlush(CounterDelta). Such handlers are promoted to
	// block-local accumulators by the inline tier.
	CounterDelta int64
	CounterFlush func(n int64)
	// Sample, when > 1, arms each rule applying the handler with a
	// sampling countdown: the handler fires on every Sample-th hit of
	// that placement; swallowed hits cost only the inlined gate (see
	// vm.SampleGateCost).
	Sample uint64
}

// spec builds the vm.ProbeSpec for one rule applying this handler (one
// spec per installation: the VM owns accumulator state). Returns nil
// when the handler has no inline surface.
func (h Handler) spec(data []uint64) *vm.ProbeSpec {
	if h.CounterFlush != nil {
		return &vm.ProbeSpec{Counter: true, Delta: h.CounterDelta, Flush: h.CounterFlush}
	}
	if h.FastFn == nil {
		return nil
	}
	fast := h.FastFn
	return &vm.ProbeSpec{Fn: func(c *vm.Ctx) { fast(c, data) }}
}

func (h Handler) mechanism() string {
	if h.Inlinable {
		return obs.MechInlinedCall
	}
	return obs.MechCleanCall
}

func (h Handler) dispatchCost(nargs int) uint64 {
	base := CleanCallCost
	if h.Inlinable {
		base = InlinedCallCost
	}
	return uint64(base) + uint64(nargs)*ArgCost + h.Cost
}

// StaticAnalyzer is the ahead-of-time half of a Janus run. Tools walk the
// executable's control flow through it and emit rewrite rules.
type StaticAnalyzer struct {
	prog  *cfg.Program
	rules []Rule
}

// Executable returns the main executable module — the only code the
// static analyzer can see.
func (sa *StaticAnalyzer) Executable() *cfg.Module { return sa.prog.Modules[0] }

// Program exposes the loaded program for address lookups.
func (sa *StaticAnalyzer) Program() *cfg.Program { return sa.prog }

// EmitRule appends a rewrite rule.
func (sa *StaticAnalyzer) EmitRule(r Rule) { sa.rules = append(sa.rules, r) }

// RuleTable is the static analyzer's output, indexed by basic block for
// the dynamic instrumenter.
type RuleTable struct {
	byBlock map[uint64][]Rule
	global  []Rule // init/fini rules
	n       int
}

// NumRules returns the total number of rules in the table.
func (rt *RuleTable) NumRules() int { return rt.n }

// RulesFor returns the rules annotated on the block starting at addr.
func (rt *RuleTable) RulesFor(addr uint64) []Rule { return rt.byBlock[addr] }

func buildTable(rules []Rule) *RuleTable {
	rt := &RuleTable{byBlock: make(map[uint64][]Rule), n: len(rules)}
	for _, r := range rules {
		switch r.Trigger {
		case TriggerInit, TriggerFini:
			rt.global = append(rt.global, r)
		default:
			rt.byBlock[r.BlockAddr] = append(rt.byBlock[r.BlockAddr], r)
		}
	}
	// Deterministic order within a block: by instruction address, then
	// emission order (stable sort).
	for _, rs := range rt.byBlock {
		sort.SliceStable(rs, func(i, j int) bool { return rs[i].InstAddr < rs[j].InstAddr })
	}
	return rt
}

// Tool is a complete Janus tool: a static pass plus dynamic handlers.
type Tool struct {
	// Name identifies the tool.
	Name string
	// StaticPass walks the binary and emits rewrite rules.
	StaticPass func(sa *StaticAnalyzer)
	// Handlers maps handler IDs to dynamic handlers.
	Handlers map[HandlerID]Handler
}

// Config parameterizes a Janus run.
type Config struct {
	// Fuel bounds application instructions (0 = default).
	Fuel uint64
	// AppOut receives the application's output (discarded if nil).
	AppOut io.Writer
	// Obs, when non-nil, collects per-probe attribution, rule counts and
	// translation statistics for the run.
	Obs *obs.Collector
	// ExecMode selects the underlying VM execution tier (see vm.Config).
	ExecMode vm.ExecMode
	// NoInline disables the VM's action-inlining layer (see vm.Config).
	NoInline bool
	// Adaptive allocates a control block for every applied rule so
	// probes can be sampled, ejected and re-armed mid-run (see
	// vm.Config.Adaptive).
	Adaptive bool
	// OnMachine, when non-nil, is called with the run's machine before
	// execution starts — the hook adaptive controllers (the overhead
	// governor) attach through.
	OnMachine func(*vm.VM)
	// Stop, when non-nil, is the cooperative cancellation flag handed to
	// the machine (see vm.Config.Stop).
	Stop *atomic.Bool
}

// Run executes the program under Janus: the tool's static pass runs
// first, producing the rule table; then the dynamic instrumenter executes
// the program, translating blocks on first execution and instrumenting
// them according to their rules.
func Run(prog *cfg.Program, tool *Tool, c Config) (*vm.Result, error) {
	sa := &StaticAnalyzer{prog: prog}
	if tool.StaticPass != nil {
		tool.StaticPass(sa)
	}
	rt := buildTable(sa.rules)
	if c.Obs != nil {
		c.Obs.MutateBuild(func(b *obs.BuildStats) { b.RulesEmitted = rt.NumRules() })
	}

	machine := vm.New(prog, vm.Config{Fuel: c.Fuel, AppOut: c.AppOut, Obs: c.Obs, ExecMode: c.ExecMode, NoInline: c.NoInline, Adaptive: c.Adaptive, Stop: c.Stop})
	if c.OnMachine != nil {
		c.OnMachine(machine)
	}
	// register records one applied rule with the attached collector (cold
	// path: block-translation time only).
	register := func(h Handler, r Rule, trigger string, addr, cost uint64) obs.ProbeID {
		if c.Obs == nil {
			return obs.NoProbe
		}
		c.Obs.MutateBuild(func(b *obs.BuildStats) {
			if h.Inlinable {
				b.InlinedCalls++
			} else {
				b.CleanCalls++
			}
		})
		return c.Obs.RegisterProbe(obs.ProbeMeta{
			Label:        h.Label,
			Trigger:      trigger,
			Mechanism:    h.mechanism(),
			Addr:         addr,
			DispatchCost: cost,
		})
	}
	// The dynamic instrumenter: translate one block at a time, decode the
	// block's rewrite rules, insert clean calls.
	err := machine.SetTranslator(func(b *cfg.Block) {
		machine.Charge(BlockTranslationCost)
		if c.Obs != nil {
			c.Obs.NoteTranslation(BlockTranslationCost)
		}
		for _, r := range rt.RulesFor(b.Start) {
			r := r
			h, ok := tool.Handlers[r.Handler]
			if !ok {
				// Unknown handler: rule is ignored (real Janus logs and
				// skips). Nothing to insert.
				continue
			}
			cost := h.dispatchCost(len(r.Data))
			fn := func(ctx *vm.Ctx) { h.Fn(ctx, r.Data) }
			spec := h.spec(r.Data)
			var ierr error
			switch r.Trigger {
			case TriggerBefore:
				ierr = machine.AddBeforeSampled(r.InstAddr, cost,
					register(h, r, obs.TriggerBefore, r.InstAddr, cost), fn, spec, h.Sample)
			case TriggerAfter:
				ierr = machine.AddAfterSampled(r.InstAddr, cost,
					register(h, r, obs.TriggerAfter, r.InstAddr, cost), fn, spec, h.Sample)
			case TriggerBlockEntry:
				ierr = machine.AddBlockEntrySampled(r.BlockAddr, cost,
					register(h, r, obs.TriggerBlockEntry, r.BlockAddr, cost), fn, spec, h.Sample)
			case TriggerEdge:
				ierr = machine.AddEdgeSampled(r.Aux, r.BlockAddr, cost,
					register(h, r, obs.TriggerEdge, r.BlockAddr, cost), fn, spec, h.Sample)
			}
			if ierr != nil {
				// Rules that cannot be applied are skipped, as the
				// dynamic side of real Janus does with stale rules.
				continue
			}
		}
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rt.global {
		r := r
		h, ok := tool.Handlers[r.Handler]
		if !ok {
			continue
		}
		switch r.Trigger {
		case TriggerInit:
			machine.OnStart(func(ctx *vm.Ctx) { h.Fn(ctx, r.Data) })
		case TriggerFini:
			machine.OnEnd(func(ctx *vm.Ctx) { h.Fn(ctx, r.Data) })
		}
	}
	res, err := machine.Run()
	if err != nil {
		return nil, fmt.Errorf("janus: %s: %w", tool.Name, err)
	}
	return res, nil
}

// AnalyzeOnly runs just the static pass and returns the rule table
// (useful for tests and for inspecting what a tool annotates).
func AnalyzeOnly(prog *cfg.Program, tool *Tool) *RuleTable {
	sa := &StaticAnalyzer{prog: prog}
	if tool.StaticPass != nil {
		tool.StaticPass(sa)
	}
	return buildTable(sa.rules)
}
