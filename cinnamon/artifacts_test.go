package cinnamon

import (
	"strings"
	"testing"

	"repro/internal/obj"
	"repro/internal/progs"
	"repro/internal/workload"
)

// The artifact cache must be invisible in results: for every case
// study × victim × backend cell, a cold run (empty process cache), a
// warm run (template replayed from the cache) and a cache-disabled run
// must agree byte for byte on tool output, machine counters and the
// per-probe stats table. This is the cold/warm differential gate for
// the shared-artifact fast path.
func TestArtifactCacheRunsBitIdentical(t *testing.T) {
	pairs := []struct {
		prog, victim string
		pinLoops     bool // loop commands need the Pin loop-detection extension
	}{
		{prog: "instcount_basic", victim: "spin"},
		{prog: "instcount_bb", victim: "loopy"},
		{prog: "opcodemix", victim: "spin"},
		{prog: "loopcoverage", victim: "loopy", pinLoops: true},
		{prog: "useafterfree", victim: "uaf_bug"},
		{prog: "shadowstack", victim: "stack_smash"},
		{prog: "forwardcfi", victim: "indirect_attack"},
	}
	for _, p := range pairs {
		src, err := progs.Source(p.prog)
		if err != nil {
			t.Fatalf("%s: %v", p.prog, err)
		}
		tool, err := Compile(src)
		if err != nil {
			t.Fatalf("%s: %v", p.prog, err)
		}
		m, err := workload.Victim(p.victim)
		if err != nil {
			t.Fatalf("%s: %v", p.victim, err)
		}
		target, err := LoadModules([]*obj.Module{m})
		if err != nil {
			t.Fatalf("%s: %v", p.victim, err)
		}
		for _, b := range Backends() {
			run := func(noCache bool) string {
				rep, err := tool.Run(target, b, RunOptions{
					Stats:            true,
					PinLoopDetection: p.pinLoops,
					NoArtifactCache:  noCache,
				})
				if err != nil {
					t.Fatalf("%s on %s via %s (cache=%v): %v", p.prog, p.victim, b, !noCache, err)
				}
				var sb strings.Builder
				sb.WriteString(rep.ToolOutput)
				sb.WriteString("|")
				rep.Stats.WriteTable(&sb)
				return sb.String()
			}
			ref := run(true)    // cache disabled: the plain build path
			cold := run(false)  // populates (or reuses) the shared cache
			warm1 := run(false) // replays the cached template
			warm2 := run(false)
			if cold != ref || warm1 != ref || warm2 != ref {
				t.Errorf("%s on %s via %s: cached runs diverge from the uncached reference\nref:\n%s\ncold:\n%s\nwarm:\n%s",
					p.prog, p.victim, b, ref, cold, warm1)
			}
		}
	}
}
