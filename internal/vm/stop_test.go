package vm

import (
	"errors"
	"sync/atomic"
	"testing"
)

// loopSrc spins long enough that a concurrent stop lands mid-run.
const stopLoopSrc = `
.module a.out
.executable
.entry main
.func main
  mov r1, 0
  mov r2, 50000000
head:
  add r1, r1, 1
  blt r1, r2, head
  halt
`

// A pre-set stop flag cancels the run at the first block dispatch, on
// both execution tiers, and the error is the ErrStopped sentinel.
func TestStopFlagCancelsRun(t *testing.T) {
	for _, mode := range []ExecMode{ExecTranslated, ExecInterpreted} {
		prog := build(t, stopLoopSrc)
		var stop atomic.Bool
		stop.Store(true)
		v := New(prog, Config{ExecMode: mode, Stop: &stop})
		_, err := v.Run()
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("mode %v: err = %v, want ErrStopped", mode, err)
		}
	}
}

// A stop raised from another goroutine lands while the loop is running:
// the run ends with ErrStopped well before the loop's full cost.
func TestStopFlagCancelsMidRun(t *testing.T) {
	prog := build(t, stopLoopSrc)
	var stop atomic.Bool
	v := New(prog, Config{Stop: &stop})
	done := make(chan error, 1)
	go func() {
		_, err := v.Run()
		done <- err
	}()
	stop.Store(true)
	if err := <-done; err != nil && !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want nil (already halted) or ErrStopped", err)
	}
}

// A nil Stop leaves runs unaffected.
func TestStopFlagNilIsNoop(t *testing.T) {
	prog := build(t, sumSrc)
	v := New(prog, Config{})
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
}
