package vm

import (
	"bytes"
	"testing"

	"repro/internal/isa"
	"repro/internal/obs"
)

// Differential tests for the adaptive layer: sampling countdowns and
// mid-run probe removal/re-arming must be bit-identical — fires, skips,
// cycles, output — across the translated tier (inlined and not) and the
// reference interpreter, including around pending call-after fires.

var adaptiveModes = []struct {
	name     string
	mode     ExecMode
	noInline bool
}{
	{"translated", ExecTranslated, false},
	{"noinline", ExecTranslated, true},
	{"interpreted", ExecInterpreted, false},
}

// TestSamplingStrideExactness: a stride-N probe fires on hits N, 2N, ...
// — exactly floor(hits/N) fires — and every swallowed hit is attributed
// as a skip at SampleGateCost, identically on every tier.
func TestSamplingStrideExactness(t *testing.T) {
	const dispatchCost = 26
	type result struct {
		fires, skips, cycles, total uint64
		out                         string
	}
	var results []result
	for _, m := range adaptiveModes {
		prog := build(t, sumSrc)
		col := obs.New(obs.Options{})
		var out bytes.Buffer
		v := New(prog, Config{AppOut: &out, Obs: col, ExecMode: m.mode, NoInline: m.noInline})
		// The loop-head add executes 10 times.
		addr := instByOp(t, prog, isa.Add, 0).Addr
		id := col.RegisterProbe(obs.ProbeMeta{Label: "sampled", Trigger: obs.TriggerBefore, DispatchCost: dispatchCost})
		fires := uint64(0)
		if err := v.AddBeforeSampled(addr, dispatchCost, id, func(c *Ctx) { fires++ }, nil, 3); err != nil {
			t.Fatal(err)
		}
		res, err := v.Run()
		if err != nil {
			t.Fatal(err)
		}
		s := col.Snapshot("")
		p := s.Probes[0]
		if fires != 3 || p.Fires != 3 {
			t.Errorf("%s: fires = %d (obs %d), want floor(10/3) = 3", m.name, fires, p.Fires)
		}
		if p.Skips != 7 {
			t.Errorf("%s: skips = %d, want 7", m.name, p.Skips)
		}
		if want := uint64(3*dispatchCost + 7*SampleGateCost); p.Cycles != want {
			t.Errorf("%s: probe cycles = %d, want %d (fires x dispatch + skips x gate)", m.name, p.Cycles, want)
		}
		results = append(results, result{p.Fires, p.Skips, p.Cycles, res.Cycles, out.String()})
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Errorf("%s diverges from %s: %+v vs %+v",
				adaptiveModes[i].name, adaptiveModes[0].name, results[i], results[0])
		}
	}
}

const callLoopSrc = `
.module a.out
.executable
.entry main
.func main
  mov r2, 0
  mov r3, 6
head:
  call work
  add r2, r2, 1
  blt r2, r3, head
  halt
.func work
  mov r0, 7
  ret
`

// TestSampledCallAfter: the sampling gate of an after-call probe is
// evaluated when the pending fire resolves at the fall-through, so a
// stride-2 probe on a call executed 6 times fires exactly 3 times on
// every tier.
func TestSampledCallAfter(t *testing.T) {
	var prev *obs.Stats
	var prevCycles uint64
	for _, m := range adaptiveModes {
		prog := build(t, callLoopSrc)
		col := obs.New(obs.Options{})
		v := New(prog, Config{Obs: col, ExecMode: m.mode, NoInline: m.noInline})
		addr := instByOp(t, prog, isa.Call, 0).Addr
		id := col.RegisterProbe(obs.ProbeMeta{Label: "after-call", Trigger: obs.TriggerAfter, DispatchCost: 30})
		fires := uint64(0)
		if err := v.AddAfterSampled(addr, 30, id, func(c *Ctx) {
			fires++
			if c.RetVal() != 7 {
				t.Errorf("%s: retval = %d, want 7", m.name, c.RetVal())
			}
		}, nil, 2); err != nil {
			t.Fatal(err)
		}
		res, err := v.Run()
		if err != nil {
			t.Fatal(err)
		}
		if fires != 3 {
			t.Errorf("%s: fires = %d, want 3", m.name, fires)
		}
		s := col.Snapshot("")
		if p := s.Probes[0]; p.Fires != 3 || p.Skips != 3 {
			t.Errorf("%s: obs fires/skips = %d/%d, want 3/3", m.name, p.Fires, p.Skips)
		}
		if prev != nil {
			if s.ProbeCycles != prev.ProbeCycles || res.Cycles != prevCycles {
				t.Errorf("%s: cycles diverge: probe %d/%d total %d/%d",
					m.name, s.ProbeCycles, prev.ProbeCycles, res.Cycles, prevCycles)
			}
		}
		prev, prevCycles = s, res.Cycles
	}
}

const callOnceSrc = `
.module a.out
.executable
.entry main
.func main
  call mid
  halt
.func mid
  mov r0, 1
  ret
`

// TestDisableSuppressesPendingCallAfter: a probe removed while its
// call-after fire is pending (pushed at the call, resolved at the
// fall-through) is suppressed — the fire is neither lost nor duplicated
// — and a probe removed and re-armed while pending fires exactly once.
// Identical on every tier.
func TestDisableSuppressesPendingCallAfter(t *testing.T) {
	for _, rearm := range []bool{false, true} {
		want := uint64(0)
		if rearm {
			want = 1
		}
		for _, m := range adaptiveModes {
			prog := build(t, callOnceSrc)
			col := obs.New(obs.Options{})
			v := New(prog, Config{Obs: col, ExecMode: m.mode, NoInline: m.noInline, Adaptive: true})
			callAddr := instByOp(t, prog, isa.Call, 0).Addr
			movAddr := instByOp(t, prog, isa.Mov, 0).Addr // inside mid: runs between push and fall-through
			retAddr := instByOp(t, prog, isa.Return, 0).Addr
			id := col.RegisterProbe(obs.ProbeMeta{Label: "after-call", Trigger: obs.TriggerAfter, DispatchCost: 30})
			fires := uint64(0)
			if err := v.AddAfterSampled(callAddr, 30, id, func(c *Ctx) { fires++ }, nil, 0); err != nil {
				t.Fatal(err)
			}
			if err := v.AddBefore(movAddr, 0, func(c *Ctx) {
				if !v.SetProbeEnabled(id, false) {
					t.Errorf("%s: after-call probe not adaptive", m.name)
				}
			}); err != nil {
				t.Fatal(err)
			}
			if rearm {
				if err := v.AddBefore(retAddr, 0, func(c *Ctx) {
					v.SetProbeEnabled(id, true)
				}); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := v.Run(); err != nil {
				t.Fatal(err)
			}
			if fires != want {
				t.Errorf("%s (rearm=%v): pending call-after fired %d times, want %d",
					m.name, rearm, fires, want)
			}
			if p := col.Snapshot("").Probes[0]; p.Fires != want {
				t.Errorf("%s (rearm=%v): obs fires = %d, want %d", m.name, rearm, p.Fires, want)
			}
		}
	}
}

// TestMidRunEjectAndRearmInLoop: removal and re-arming driven from probe
// bodies inside a hot loop — the removal invalidates the very block
// being executed on the translated tier — keeps fire counts and cycle
// accounting identical across tiers.
func TestMidRunEjectAndRearmInLoop(t *testing.T) {
	type result struct {
		fires, probeCycles, total uint64
		out                       string
	}
	var results []result
	for _, m := range adaptiveModes {
		prog := build(t, sumSrc)
		col := obs.New(obs.Options{})
		var out bytes.Buffer
		v := New(prog, Config{AppOut: &out, Obs: col, ExecMode: m.mode, NoInline: m.noInline, Adaptive: true})
		target := instByOp(t, prog, isa.Add, 0).Addr // loop head: 10 hits
		ctl := instByOp(t, prog, isa.Add, 1).Addr    // same block, after target
		id := col.RegisterProbe(obs.ProbeMeta{Label: "target", Trigger: obs.TriggerBefore, DispatchCost: 26})
		fires := uint64(0)
		if err := v.AddBeforeSampled(target, 26, id, func(c *Ctx) { fires++ }, nil, 0); err != nil {
			t.Fatal(err)
		}
		iter := 0
		if err := v.AddBefore(ctl, 0, func(c *Ctx) {
			iter++
			switch iter {
			case 3:
				v.SetProbeEnabled(id, false)
			case 7:
				v.SetProbeEnabled(id, true)
			}
		}); err != nil {
			t.Fatal(err)
		}
		res, err := v.Run()
		if err != nil {
			t.Fatal(err)
		}
		// Enabled for iterations 1-3 (the target precedes the controller
		// in the block) and 8-10 after the re-arm at iteration 7.
		if fires != 6 {
			t.Errorf("%s: fires = %d, want 6 (iters 1-3 and 8-10)", m.name, fires)
		}
		s := col.Snapshot("")
		results = append(results, result{s.Probes[0].Fires, s.ProbeCycles, res.Cycles, out.String()})
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Errorf("%s diverges from %s: %+v vs %+v",
				adaptiveModes[i].name, adaptiveModes[0].name, results[i], results[0])
		}
	}
}

// TestAdaptiveProbesAndStrideControl covers the introspection and
// control API: AdaptiveProbes listing, stride override and restore.
func TestAdaptiveProbesAndStrideControl(t *testing.T) {
	prog := build(t, sumSrc)
	col := obs.New(obs.Options{})
	v := New(prog, Config{Obs: col})
	addr := instByOp(t, prog, isa.Add, 0).Addr
	id := col.RegisterProbe(obs.ProbeMeta{Label: "p", DispatchCost: 26})
	fires := 0
	if err := v.AddBeforeSampled(addr, 26, id, func(c *Ctx) { fires++ }, nil, 4); err != nil {
		t.Fatal(err)
	}
	infos := v.AdaptiveProbes()
	if len(infos) != 1 {
		t.Fatalf("AdaptiveProbes = %d entries, want 1", len(infos))
	}
	if in := infos[0]; in.ID != id || in.Stride != 4 || in.BaseStride != 4 || !in.Enabled {
		t.Errorf("ProbeInfo = %+v", in)
	}
	if !v.SetProbeStride(id, 2) {
		t.Fatal("SetProbeStride: probe not found")
	}
	if in := v.AdaptiveProbes()[0]; in.Stride != 2 || in.BaseStride != 4 {
		t.Errorf("after override: %+v", in)
	}
	if !v.SetProbeStride(id, 0) {
		t.Fatal("SetProbeStride(0): probe not found")
	}
	if in := v.AdaptiveProbes()[0]; in.Stride != 4 {
		t.Errorf("stride restore: %+v", in)
	}
	if v.SetProbeStride(obs.ProbeID(999), 2) {
		t.Error("SetProbeStride on unknown id reported success")
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if fires != 2 { // 10 hits at stride 4 -> hits 4 and 8
		t.Errorf("fires = %d, want 2", fires)
	}
}
