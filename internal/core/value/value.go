// Package value implements the Cinnamon runtime value model used by both
// the analysis stage (instrumentation-time evaluation) and the execution
// stage (instrumented actions): numbers, booleans, strings/lines, opcode
// and operand handles, NULL, dicts, vectors, static arrays, file handles,
// and control-flow-element references.
package value

import (
	"fmt"
	"strconv"

	"repro/internal/cfg"
	"repro/internal/core/ast"
	"repro/internal/isa"
)

// Kind classifies a runtime value.
type Kind int

// Value kinds.
const (
	KNull Kind = iota
	KInt       // all numeric types share one representation
	KBool
	KString // strings and lines
	KOpcode
	KOperand
	KDict
	KVector
	KArray
	KFile
	KCFE
)

// Value is a Cinnamon runtime value.
type Value struct {
	Kind Kind
	Int  int64
	Bool bool
	Str  string
	Op   isa.Op
	Opnd isa.Operand
	Dict *DictVal
	Vec  *VectorVal
	Arr  *ArrayVal
	File *FileVal
	CFE  *CFERef
}

// Null is the NULL value.
var Null = Value{Kind: KNull}

// IntVal returns a numeric value.
func IntVal(v int64) Value { return Value{Kind: KInt, Int: v} }

// UintVal returns a numeric value from an unsigned word.
func UintVal(v uint64) Value { return Value{Kind: KInt, Int: int64(v)} }

// BoolVal returns a boolean value.
func BoolVal(b bool) Value { return Value{Kind: KBool, Bool: b} }

// StrVal returns a string value.
func StrVal(s string) Value { return Value{Kind: KString, Str: s} }

// OpcodeVal returns an opcode value.
func OpcodeVal(op isa.Op) Value { return Value{Kind: KOpcode, Op: op} }

// OperandVal returns an operand-handle value.
func OperandVal(op isa.Operand) Value { return Value{Kind: KOperand, Opnd: op} }

// AsInt coerces the value to an integer: numbers are themselves, bools are
// 0/1, NULL is 0, and strings/lines parse as decimal or hex (0 if
// unparseable — loose, like the paper's examples that feed file lines into
// address vectors).
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KInt:
		return v.Int
	case KBool:
		if v.Bool {
			return 1
		}
		return 0
	case KString:
		n, err := strconv.ParseInt(v.Str, 0, 64)
		if err != nil {
			return 0
		}
		return n
	case KOpcode:
		return int64(v.Op)
	}
	return 0
}

// AsBool coerces the value to a condition: booleans are themselves,
// numbers are non-zero, NULL is false, strings are non-empty.
func (v Value) AsBool() bool {
	switch v.Kind {
	case KBool:
		return v.Bool
	case KInt:
		return v.Int != 0
	case KString:
		return v.Str != ""
	case KNull:
		return false
	}
	return true
}

// String renders the value for print().
func (v Value) String() string {
	switch v.Kind {
	case KNull:
		return "NULL"
	case KInt:
		return strconv.FormatInt(v.Int, 10)
	case KBool:
		return strconv.FormatBool(v.Bool)
	case KString:
		return v.Str
	case KOpcode:
		return v.Op.String()
	case KOperand:
		return v.Opnd.String()
	case KDict:
		return fmt.Sprintf("dict(%d entries)", v.Dict.Len())
	case KVector:
		return fmt.Sprintf("vector(%d elements)", len(v.Vec.Elems))
	case KArray:
		return fmt.Sprintf("array[%d]", len(v.Arr.Elems))
	case KFile:
		return fmt.Sprintf("file(%s)", v.File.Name)
	case KCFE:
		return v.CFE.String()
	}
	return "<invalid>"
}

// Equal implements == for Cinnamon values. NULL equals NULL, numeric
// zero, and the empty string (so `dictlookup != NULL` detects missing
// entries, as Figure 7 relies on).
func Equal(a, b Value) bool {
	if a.Kind == KNull || b.Kind == KNull {
		x := a
		if a.Kind == KNull {
			x = b
		}
		switch x.Kind {
		case KNull:
			return true
		case KInt:
			return x.Int == 0
		case KString:
			return x.Str == ""
		case KBool:
			return !x.Bool
		}
		return false
	}
	switch {
	case a.Kind == KOpcode && b.Kind == KOpcode:
		return a.Op == b.Op
	case a.Kind == KString && b.Kind == KString:
		return a.Str == b.Str
	case a.Kind == KBool && b.Kind == KBool:
		return a.Bool == b.Bool
	default:
		return a.AsInt() == b.AsInt()
	}
}

// DictKey is a comparable dict key.
type DictKey struct {
	I     int64
	S     string
	IsStr bool
}

// KeyOf converts a value into a dict key.
func KeyOf(v Value) DictKey {
	if v.Kind == KString {
		return DictKey{S: v.Str, IsStr: true}
	}
	return DictKey{I: v.AsInt()}
}

// DictVal is a dictionary. Lookups of missing keys return the zero value
// of the element type (NULL-comparable), matching the paper's usage.
type DictVal struct {
	M map[DictKey]Value
	// ElemZero is returned for missing keys.
	ElemZero Value
}

// NewDict returns an empty dict whose missing-key value is zero.
func NewDict(elemZero Value) *DictVal {
	return &DictVal{M: make(map[DictKey]Value), ElemZero: elemZero}
}

// Get returns the value for the key (zero element if missing).
func (d *DictVal) Get(k Value) Value {
	if v, ok := d.M[KeyOf(k)]; ok {
		return v
	}
	return d.ElemZero
}

// Set stores a value under the key.
func (d *DictVal) Set(k, v Value) { d.M[KeyOf(k)] = v }

// Has reports whether the key is present.
func (d *DictVal) Has(k Value) bool { _, ok := d.M[KeyOf(k)]; return ok }

// Len returns the entry count.
func (d *DictVal) Len() int { return len(d.M) }

// VectorVal is a growable vector.
type VectorVal struct {
	Elems []Value
}

// Add appends an element.
func (v *VectorVal) Add(e Value) { v.Elems = append(v.Elems, e) }

// Has reports whether an equal element is present.
func (v *VectorVal) Has(e Value) bool {
	for _, x := range v.Elems {
		if Equal(x, e) {
			return true
		}
	}
	return false
}

// Get returns element i (NULL if out of range).
func (v *VectorVal) Get(i int64) Value {
	if i < 0 || i >= int64(len(v.Elems)) {
		return Null
	}
	return v.Elems[i]
}

// ArrayVal is a fixed-size array.
type ArrayVal struct {
	Elems []Value
}

// FileVal is an open tool file. Writes append lines; reads consume lines
// sequentially. A single handle is shared across the analysis and
// execution stages, which is how Figure 9's analysis output becomes the
// init block's input.
type FileVal struct {
	Name    string
	Lines   []string
	ReadPos int
}

// WriteLine appends one line.
func (f *FileVal) WriteLine(s string) { f.Lines = append(f.Lines, s) }

// GetLine reads the next line, or NULL at end of file.
func (f *FileVal) GetLine() Value {
	if f.ReadPos >= len(f.Lines) {
		return Null
	}
	s := f.Lines[f.ReadPos]
	f.ReadPos++
	return Value{Kind: KString, Str: s}
}

// CFERef is a bound control-flow element: the value of a command's CFE
// variable. Static attributes are computed from the referenced CFG
// structures; dynamic attributes are materialized per probe invocation by
// the backend.
type CFERef struct {
	Kind   ast.EType
	Inst   *isa.Inst
	Block  *cfg.Block
	Func   *cfg.Func
	Loop   *cfg.Loop
	Module *cfg.Module
	Prog   *cfg.Program
}

func (r *CFERef) String() string {
	switch r.Kind {
	case ast.Inst:
		return fmt.Sprintf("inst@%#x", r.Inst.Addr)
	case ast.BasicBlock:
		return fmt.Sprintf("basicblock@%#x", r.Block.Start)
	case ast.Func:
		return fmt.Sprintf("func %s", r.Func.Name)
	case ast.Loop:
		return fmt.Sprintf("loop %d", r.Loop.ID)
	case ast.Module:
		return fmt.Sprintf("module %s", r.Module.Name())
	}
	return "cfe?"
}

// CFEVal wraps a CFE reference as a value.
func CFEVal(r *CFERef) Value { return Value{Kind: KCFE, CFE: r} }

// Copy returns a value-snapshot of v: containers are deep-copied so that
// action closures capture analysis data by value (the paper's "static
// data passed as arguments to callbacks"), while files stay shared.
func Copy(v Value) Value {
	switch v.Kind {
	case KDict:
		nd := NewDict(v.Dict.ElemZero)
		for k, e := range v.Dict.M {
			nd.M[k] = e
		}
		return Value{Kind: KDict, Dict: nd}
	case KVector:
		nv := &VectorVal{Elems: append([]Value(nil), v.Vec.Elems...)}
		return Value{Kind: KVector, Vec: nv}
	case KArray:
		na := &ArrayVal{Elems: append([]Value(nil), v.Arr.Elems...)}
		return Value{Kind: KArray, Arr: na}
	default:
		return v
	}
}
