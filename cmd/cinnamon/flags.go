package main

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"
)

// The flag registry: every flag is declared through one of the typed
// helpers below, which record (group, name, argument, default, help) in
// declaration order. The grouped -help output and docs/CLI.md are both
// rendered from this table, and a test regenerates the document and
// compares it to the committed copy, so the reference cannot rot.

const (
	groupExecution     = "Execution"
	groupObservability = "Observability"
	groupMonitoring    = "Monitoring"
	groupGovernor      = "Governor"
)

var flagGroups = []string{groupExecution, groupObservability, groupMonitoring, groupGovernor}

type flagDef struct {
	Group   string
	Name    string
	Arg     string // argument placeholder; empty for booleans
	Default string
	Help    string
}

var flagDefs []flagDef

// cli is the driver's flag set. Flags live on a dedicated set (not
// flag.CommandLine) and are declared as package variables, so the
// registry is populated for tests without parsing anything.
var cli = flag.NewFlagSet("cinnamon", flag.ExitOnError)

func record(group, name, arg, def, help string) {
	flagDefs = append(flagDefs, flagDef{Group: group, Name: name, Arg: arg, Default: def, Help: help})
}

func stringFlag(group, name, def, arg, help string) *string {
	record(group, name, arg, def, help)
	return cli.String(name, def, help)
}

func boolFlag(group, name string, def bool, help string) *bool {
	d := ""
	if def {
		d = "true"
	}
	record(group, name, "", d, help)
	return cli.Bool(name, def, help)
}

func intFlag(group, name string, def int, arg, help string) *int {
	d := ""
	if def != 0 {
		d = fmt.Sprintf("%d", def)
	}
	record(group, name, arg, d, help)
	return cli.Int(name, def, help)
}

func float64Flag(group, name string, def float64, arg, help string) *float64 {
	record(group, name, arg, fmt.Sprintf("%g", def), help)
	return cli.Float64(name, def, help)
}

func uint64Flag(group, name string, def uint64, arg, help string) *uint64 {
	d := ""
	if def != 0 {
		d = fmt.Sprintf("%d", def)
	}
	record(group, name, arg, d, help)
	return cli.Uint64(name, def, help)
}

func durationFlag(group, name string, def time.Duration, arg, help string) *time.Duration {
	record(group, name, arg, def.String(), help)
	return cli.Duration(name, def, help)
}

// The flags, grouped. Declaration order is presentation order within
// each group (in -help and docs/CLI.md).
var (
	backendName = stringFlag(groupExecution, "backend", "pin", "<name>", "backend: pin, dyninst, janus")
	target      = stringFlag(groupExecution, "target", "", "<spec>", "victim:<name>, suite:<name>, or an assembly file path")
	emit        = stringFlag(groupExecution, "emit", "", "<name>", "emit generated C/C++ for this backend instead of running")
	scale       = float64Flag(groupExecution, "scale", 0.2, "<f>", "workload scale for suite targets")
	loop        = intFlag(groupExecution, "loop", 0, "<n>", "loop a victim target this many times (long-running session; default 500000 with -listen)")
	list        = boolFlag(groupExecution, "list-programs", false, "list built-in case-study programs and exit")
	pinLoops    = boolFlag(groupExecution, "pin-loops", false, "enable the Pin loop-detection extension (paper section VI-E)")
	vmMode      = stringFlag(groupExecution, "vm-mode", "", "<tier>", "VM execution tier: translated (default) or interpreted; both are bit-identical")
	vmInline    = boolFlag(groupExecution, "vm-inline", true, "inline compiled actions into translated blocks (bit-identical; disable to measure or bisect)")

	stats     = boolFlag(groupObservability, "stats", false, "print the observability report (per-probe firing and cycle attribution) to stderr")
	statsJSON = boolFlag(groupObservability, "stats-json", false, "print the observability report as JSON to stdout")
	trace     = intFlag(groupObservability, "trace", 0, "<n>", "record the last N probe firings in the report's trace ring (implies -stats)")

	listen   = stringFlag(groupMonitoring, "listen", "", "<addr>", "serve live monitoring on this address (host:port; :0 picks a port): /metrics, /stats, /series, /trace (SSE), /governor, /healthz")
	interval = durationFlag(groupMonitoring, "interval", time.Second, "<dur>", "monitor time-series sampling period (with -listen)")

	budget    = stringFlag(groupGovernor, "budget", "", "<frac>", "attach the overhead governor with this probe-overhead budget (\"5%\" or \"0.05\"); it downsamples and ejects the most expensive probes to stay under it (implies -stats; see docs/ADAPTIVE.md)")
	govWindow = uint64Flag(groupGovernor, "governor-window", 0, "<cycles>", "governor evaluation cadence in machine cycle units (default: the governor's built-in window; with -budget)")
)

// usage prints the grouped flag reference (the custom flag.Usage).
func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: cinnamon [flags] <tool.cin | @case-study>")
	for _, g := range flagGroups {
		fmt.Fprintf(w, "\n%s:\n", g)
		for _, d := range flagDefs {
			if d.Group != g {
				continue
			}
			head := "-" + d.Name
			if d.Arg != "" {
				head += " " + d.Arg
			}
			fmt.Fprintf(w, "  %-24s %s", head, d.Help)
			if d.Default != "" {
				fmt.Fprintf(w, " (default %s)", d.Default)
			}
			fmt.Fprintln(w)
		}
	}
}

// renderCLIMD renders docs/CLI.md from the flag registry. The committed
// document must match byte for byte (TestCLIDocCurrent).
func renderCLIMD() string {
	var b strings.Builder
	b.WriteString(`<!-- Generated from the flag table in cmd/cinnamon/flags.go.
     Do not edit by hand: run go test ./cmd/cinnamon -update-cli-doc. -->

# cinnamon CLI reference

` + "```" + `
cinnamon [flags] <tool.cin | @case-study>
` + "```" + `

Compiles a Cinnamon program and runs it on a binary under one of the
three backends, or emits the framework-specific C/C++ sources
(` + "`-emit`" + `). Tool arguments starting with ` + "`@`" + ` name a built-in case
study (` + "`-list-programs`" + ` enumerates them).

Targets (` + "`-target`" + `): ` + "`victim:<name>`" + ` (built-in monitoring victims),
` + "`suite:<name>`" + ` (synthetic SPEC CPU 2017 benchmark), or a path to an
assembly file.
`)
	for _, g := range flagGroups {
		fmt.Fprintf(&b, "\n## %s flags\n\n", g)
		b.WriteString("| Flag | Default | Description |\n|---|---|---|\n")
		for _, d := range flagDefs {
			if d.Group != g {
				continue
			}
			head := "`-" + d.Name
			if d.Arg != "" {
				head += " " + d.Arg
			}
			head += "`"
			def := d.Default
			if def != "" {
				def = "`" + def + "`"
			}
			fmt.Fprintf(&b, "| %s | %s | %s |\n", head, def, d.Help)
		}
	}
	b.WriteString(`
## Examples

` + "```sh" + `
cinnamon -backend=pin -target=victim:uaf_bug @useafterfree
cinnamon -backend=janus -target=suite:mcf -scale=0.5 tool.cin
cinnamon -emit=dyninst tool.cin
cinnamon -backend=janus -target=suite:mcf -stats -budget 5% @instcount_basic
cinnamon -backend=pin -target=victim:uaf_bug -listen :9090 @useafterfree
` + "```" + `

See [ADAPTIVE.md](ADAPTIVE.md) for sampling probes and the overhead
governor, [OBSERVABILITY.md](OBSERVABILITY.md) for the stats/monitoring
endpoints, and [LANGUAGE.md](LANGUAGE.md) for the Cinnamon language.
`)
	return b.String()
}
