package conformance

import (
	"embed"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core/parser"
)

// The regression corpus: every divergence the harness ever found (plus
// seed entries covering each oracle class) is checked in as a
// .cinpair file and replayed by ordinary `go test` (see corpus_test.go)
// and by the CI gate. The format is line-oriented:
//
//	# optional comment lines
//	-- tool --
//	<Cinnamon source>
//	-- victim --
//	<assembly source, executable module>
//	-- victim --
//	<assembly source, additional module>
//
// Traits (multi-module, unrecoverable control flow, loop commands) are
// re-derived at replay time, never stored, so an entry cannot go stale
// against the oracle.

//go:embed corpus/*.cinpair
var corpusFS embed.FS

const (
	toolMarker   = "-- tool --"
	victimMarker = "-- victim --"
)

// CorpusPair is one checked-in regression entry.
type CorpusPair struct {
	Name   string
	Tool   string
	Victim []string
}

// FormatPair renders a tool/victim pair in corpus file format.
func FormatPair(tool string, victims []string) string {
	var b strings.Builder
	b.WriteString(toolMarker + "\n")
	b.WriteString(strings.TrimRight(tool, "\n") + "\n")
	for _, v := range victims {
		b.WriteString(victimMarker + "\n")
		b.WriteString(strings.TrimRight(v, "\n") + "\n")
	}
	return b.String()
}

// ParsePair parses corpus file content.
func ParsePair(name, content string) (*CorpusPair, error) {
	p := &CorpusPair{Name: name}
	var cur *strings.Builder
	flush := func() {
		if cur == nil {
			return
		}
		text := strings.TrimRight(cur.String(), "\n") + "\n"
		if p.Tool == "" {
			p.Tool = text
		} else {
			p.Victim = append(p.Victim, text)
		}
	}
	inTool := false
	for _, line := range strings.Split(content, "\n") {
		switch strings.TrimSpace(line) {
		case toolMarker:
			if inTool || p.Tool != "" {
				return nil, fmt.Errorf("corpus %s: duplicate %s section", name, toolMarker)
			}
			cur = &strings.Builder{}
			inTool = true
			continue
		case victimMarker:
			flush()
			if p.Tool == "" {
				return nil, fmt.Errorf("corpus %s: %s before %s", name, victimMarker, toolMarker)
			}
			cur = &strings.Builder{}
			inTool = false
			continue
		}
		if cur == nil {
			if s := strings.TrimSpace(line); s != "" && !strings.HasPrefix(s, "#") {
				return nil, fmt.Errorf("corpus %s: content before %s", name, toolMarker)
			}
			continue
		}
		cur.WriteString(line + "\n")
	}
	flush()
	if p.Tool == "" || len(p.Victim) == 0 {
		return nil, fmt.Errorf("corpus %s: needs one %s and at least one %s section", name, toolMarker, victimMarker)
	}
	return p, nil
}

// CorpusPairs loads every checked-in regression entry, sorted by name.
func CorpusPairs() ([]*CorpusPair, error) {
	entries, err := corpusFS.ReadDir("corpus")
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	pairs := make([]*CorpusPair, 0, len(names))
	for _, n := range names {
		b, err := corpusFS.ReadFile("corpus/" + n)
		if err != nil {
			return nil, err
		}
		p, err := ParsePair(strings.TrimSuffix(n, ".cinpair"), string(b))
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, p)
	}
	return pairs, nil
}

// ReplayPair runs one corpus entry through the differential matrix.
func ReplayPair(p *CorpusPair) (*PairResult, error) {
	return RunPair(
		&Program{Source: p.Tool, UsesLoops: toolUsesLoops(p.Tool)},
		&Victim{Srcs: p.Victim},
	)
}

// toolUsesLoops reparses the source for the loop-command trait (the
// Program field is advisory; RunPair re-derives traits itself).
func toolUsesLoops(src string) bool {
	prog, err := parser.Parse(src)
	if err != nil {
		return false
	}
	return usesLoops(prog.Items)
}
