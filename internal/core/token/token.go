// Package token defines the lexical vocabulary of the Cinnamon language:
// token kinds, source positions, keyword tables, and operator precedence.
//
// The vocabulary follows the grammar in Figure 3 of the paper: C-style
// identifiers, literals and operators; control-flow-element keywords
// (inst, basicblock, func, loop, module); trigger points (before, after,
// entry, exit, iter, init); opcode keywords (Call, Mov, Load, ...);
// storage-type keywords (mem, reg, const) and the IsType builtin.
package token

import "fmt"

// Kind identifies a token class.
type Kind int

// Token kinds.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT  // inst_count
	INT    // 42, 0x1f
	STRING // "fAddr.txt"
	CHAR   // 'a'

	// Operators and delimiters.
	ASSIGN    // =
	PLUS      // +
	MINUS     // -
	STAR      // *
	SLASH     // /
	PERCENT   // %
	AMP       // &
	PIPE      // |
	CARET     // ^
	SHL       // <<
	SHR       // >>
	LAND      // &&
	LOR       // ||
	NOT       // !
	EQ        // ==
	NEQ       // !=
	LT        // <
	LE        // <=
	GT        // >
	GE        // >=
	LPAREN    // (
	RPAREN    // )
	LBRACE    // {
	RBRACE    // }
	LBRACKET  // [
	RBRACKET  // ]
	COMMA     // ,
	SEMICOLON // ;
	DOT       // .

	// Keywords: control flow elements.
	INST
	BASICBLOCK
	FUNC
	LOOP
	MODULE

	// Keywords: trigger points and program blocks.
	BEFORE
	AFTER
	ENTRY
	EXIT
	ITER
	INIT

	// Keywords: statements and constraints.
	IF
	ELSE
	FOR
	WHERE
	SAMPLE

	// Keywords: types.
	TINT
	TUINT64
	TCHAR
	TBOOL
	TADDR
	TSTRING
	TLINE
	TDICT
	TVECTOR
	TFILE

	// Keywords: special expressions.
	ISTYPE
	KMEM
	KREG
	KCONST
	NULL
	TRUE
	FALSE

	// Keywords: opcodes.
	OPCODE // one token kind; the literal carries which opcode

	numKinds
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "identifier", INT: "integer",
	STRING: "string", CHAR: "char",
	ASSIGN: "=", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	AMP: "&", PIPE: "|", CARET: "^", SHL: "<<", SHR: ">>",
	LAND: "&&", LOR: "||", NOT: "!",
	EQ: "==", NEQ: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]", COMMA: ",", SEMICOLON: ";", DOT: ".",
	INST: "inst", BASICBLOCK: "basicblock", FUNC: "func", LOOP: "loop", MODULE: "module",
	BEFORE: "before", AFTER: "after", ENTRY: "entry", EXIT: "exit", ITER: "iter", INIT: "init",
	IF: "if", ELSE: "else", FOR: "for", WHERE: "where", SAMPLE: "sample",
	TINT: "int", TUINT64: "uint64", TCHAR: "char", TBOOL: "bool", TADDR: "addr",
	TSTRING: "string", TLINE: "line", TDICT: "dict", TVECTOR: "vector", TFILE: "file",
	ISTYPE: "IsType", KMEM: "mem", KREG: "reg", KCONST: "const",
	NULL: "NULL", TRUE: "true", FALSE: "false",
	OPCODE: "opcode",
}

// String returns a printable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Keywords maps keyword spellings to kinds. Opcode keywords are handled
// separately (see Opcodes).
var Keywords = map[string]Kind{
	"inst": INST, "basicblock": BASICBLOCK, "func": FUNC, "loop": LOOP, "module": MODULE,
	"before": BEFORE, "after": AFTER, "entry": ENTRY, "exit": EXIT, "iter": ITER, "init": INIT,
	"if": IF, "else": ELSE, "for": FOR, "where": WHERE, "sample": SAMPLE,
	"int": TINT, "uint64": TUINT64, "char": TCHAR, "bool": TBOOL, "addr": TADDR,
	"string": TSTRING, "line": TLINE, "dict": TDICT, "vector": TVECTOR, "file": TFILE,
	"IsType": ISTYPE, "mem": KMEM, "reg": KREG, "const": KCONST,
	"NULL": NULL, "true": TRUE, "false": FALSE,
}

// Opcodes is the set of opcode keywords, spelled capitalized as in the
// paper's grammar. The lexer produces an OPCODE token whose literal is
// the spelling.
var Opcodes = map[string]bool{
	"Call": true, "Mov": true, "Load": true, "Store": true, "Branch": true,
	"Return": true, "Add": true, "Sub": true, "Mul": true, "Div": true,
	"GetPtr": true, "Nop": true, "Halt": true,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Lit  string // raw literal for IDENT/INT/STRING/CHAR/OPCODE
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, STRING, CHAR, OPCODE:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}

// Precedence returns the binary-operator precedence of the kind (higher
// binds tighter), or 0 if the kind is not a binary operator. IsType binds
// like a comparison.
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case PIPE:
		return 3
	case CARET:
		return 4
	case AMP:
		return 5
	case EQ, NEQ:
		return 6
	case LT, LE, GT, GE, ISTYPE:
		return 7
	case SHL, SHR:
		return 8
	case PLUS, MINUS:
		return 9
	case STAR, SLASH, PERCENT:
		return 10
	}
	return 0
}

// IsTypeKeyword reports whether the kind starts a type specification.
func (k Kind) IsTypeKeyword() bool {
	switch k {
	case TINT, TUINT64, TCHAR, TBOOL, TADDR, TSTRING, TLINE, TDICT, TVECTOR, TFILE:
		return true
	}
	return false
}

// IsCFEKeyword reports whether the kind names a control-flow element.
func (k Kind) IsCFEKeyword() bool {
	switch k {
	case INST, BASICBLOCK, FUNC, LOOP, MODULE:
		return true
	}
	return false
}

// IsTriggerKeyword reports whether the kind names an action trigger point.
func (k Kind) IsTriggerKeyword() bool {
	switch k {
	case BEFORE, AFTER, ENTRY, EXIT, ITER:
		return true
	}
	return false
}
