package native

import (
	"fmt"
	"io"

	"repro/internal/cfg"
	"repro/internal/pin"
	"repro/internal/vm"
)

// Shadow-stack backward-edge CFI written directly against the Pin API
// (the native equivalent of Figure 8): push every call's fall-through
// address; before every return, the popped target must match.
func init() { register("pin", "shadowstack", pinShadowStack) }

func pinShadowStack(prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error) {
	p := pin.New(prog, pin.Config{Fuel: fuel})
	var shadow []uint64

	push := pin.Routine{
		Fn:   func(args []uint64) { shadow = append(shadow, args[0]) },
		Cost: 3 * stmtCost,
	}
	check := pin.Routine{
		Fn: func(args []uint64) {
			if len(shadow) > 0 && shadow[len(shadow)-1] == args[0] {
				shadow = shadow[:len(shadow)-1]
			} else {
				fmt.Fprintln(out, "ERROR")
			}
		},
		Cost: 3 * stmtCost,
	}

	p.INSAddInstrumentFunction(func(ins pin.INS) {
		switch {
		case ins.IsCall():
			must(ins.InsertCall(pin.IPointBefore, push, pin.Fallthrough()))
		case ins.IsRet():
			must(ins.InsertCall(pin.IPointBefore, check, pin.BranchTarget()))
		}
	})
	return p.Run()
}
