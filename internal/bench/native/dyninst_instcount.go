package native

import (
	"fmt"
	"io"

	"repro/internal/cfg"
	"repro/internal/dyninst"
	"repro/internal/isa"
	"repro/internal/vm"
)

// Instruction counting written directly against the Dyninst API: open the
// binary for editing, walk every function's basic blocks, and insert a
// counting snippet before each load instruction.
func init() { register("dyninst", "instcount", dyninstInstCount) }

func dyninstInstCount(prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error) {
	be, err := dyninst.OpenBinary(prog, dyninst.Config{Fuel: fuel})
	if err != nil {
		return nil, err
	}
	image := be.Image()
	var instCount uint64
	countSnippet := dyninst.FuncCallExpr{
		Fn:   func([]uint64) { instCount++ },
		Cost: 1 * stmtCost,
	}
	for _, fn := range image.Functions() {
		for _, bb := range fn.Blocks() {
			points := bb.InstPoints()
			for n, in := range bb.Instructions() {
				if in.Op != isa.Load {
					continue
				}
				if err := be.InsertSnippet(countSnippet, points[n], dyninst.CallBefore); err != nil {
					return nil, err
				}
			}
		}
	}
	be.OnFini(func() {
		fmt.Fprintf(out, "%d\n", instCount)
	})
	return be.Run()
}
