package sem

import (
	"strings"
	"testing"

	"repro/internal/core/ast"
	"repro/internal/core/parser"
	"repro/internal/core/types"
	"repro/internal/progs"
)

func check(t *testing.T, src string) *Info {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func checkErr(t *testing.T, src, wantSub string) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Check(prog)
	if err == nil {
		t.Fatalf("Check succeeded, want error containing %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

func TestCheckAllCaseStudies(t *testing.T) {
	for _, name := range progs.Names() {
		prog, err := parser.Parse(progs.MustSource(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := Check(prog); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestActionInfoForUAF(t *testing.T) {
	info := check(t, progs.MustSource(progs.UseAfterFree))
	if len(info.Commands) != 3 || len(info.Globals) != 3 {
		t.Fatalf("commands=%d globals=%d", len(info.Commands), len(info.Globals))
	}
	// First command (malloc) has two actions: before uses arg1, after
	// uses rtnval.
	var acts []*ast.Action
	for _, item := range info.Commands[0].Body {
		if a, ok := item.(*ast.Action); ok {
			acts = append(acts, a)
		}
	}
	if len(acts) != 2 {
		t.Fatalf("actions = %d", len(acts))
	}
	before := info.Actions[acts[0]]
	if before.Canonical != ast.Before || len(before.DynAttrs) != 1 || before.DynAttrs[0] != (DynAttr{Var: "I", Attr: "arg1"}) {
		t.Errorf("before info = %+v", before)
	}
	after := info.Actions[acts[1]]
	if after.Canonical != ast.After || len(after.DynAttrs) != 1 || after.DynAttrs[0] != (DynAttr{Var: "I", Attr: "rtnval"}) {
		t.Errorf("after info = %+v", after)
	}
	if after.Simple {
		t.Error("after action (with loop) should not be simple")
	}
	if after.Cost != 6*StmtCost {
		t.Errorf("after cost = %d, want %d", after.Cost, 6*StmtCost)
	}
	// Third command's before action uses memaddr.
	var memAct *ast.Action
	for _, item := range info.Commands[2].Body {
		if a, ok := item.(*ast.Action); ok {
			memAct = a
		}
	}
	mi := info.Actions[memAct]
	if len(mi.DynAttrs) != 1 || mi.DynAttrs[0].Attr != "memaddr" {
		t.Errorf("mem action dyn attrs = %+v", mi.DynAttrs)
	}
}

func TestBBCountActionIsSimpleWithStaticWhere(t *testing.T) {
	info := check(t, progs.MustSource(progs.InstCountBB))
	for a, ai := range info.Actions {
		if ai.TargetEType != ast.BasicBlock {
			continue
		}
		if !ai.Simple {
			t.Error("bb-count action should be simple (inlinable)")
		}
		if ai.WhereDynamic {
			t.Error("local_inst_count constraint should be static")
		}
		if ai.Canonical != ast.Entry {
			t.Errorf("before B should canonicalize to entry, got %v", ai.Canonical)
		}
		if a.Where == nil {
			t.Error("where missing")
		}
		if len(ai.DynAttrs) != 0 {
			t.Errorf("dyn attrs = %v", ai.DynAttrs)
		}
	}
}

func TestCaseInsensitiveAttributes(t *testing.T) {
	check(t, `
file outfile("x.txt");
func F {
  writeToFile(outfile, F.startAddr);
}
`)
	// Both spellings must resolve.
	check(t, `
uint64 a = 0;
func F {
  entry F { a = F.startaddr; }
}
`)
}

func TestAttrTable(t *testing.T) {
	a, ok := LookupAttr(ast.Inst, "MemAddr")
	if !ok || !a.Dynamic || a.Type.Kind != types.Addr {
		t.Errorf("memaddr = %+v, %v", a, ok)
	}
	if _, ok := LookupAttr(ast.Inst, "bogus"); ok {
		t.Error("bogus attr resolved")
	}
	r, ok := LookupAttr(ast.Inst, "rtnval")
	if !ok || !r.AfterOnly {
		t.Errorf("rtnval = %+v", r)
	}
	if len(Attrs(ast.Loop)) == 0 {
		t.Error("loop attrs empty")
	}
	if DescribeDynAttr(DynAttr{Var: "I", Attr: "memaddr"}) != "I.memaddr" {
		t.Error("DescribeDynAttr wrong")
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"undefined var", `inst I { before I { x = 1; } }`, "undefined: x"},
		{"dup global", "int x = 0;\nint x = 1;", "redeclared"},
		{"bad nesting", `inst I { basicblock B { } }`, "strictly finer"},
		{"same-level nesting", `inst I { inst J { } }`, "strictly finer"},
		{"dynamic in analysis", `uint64 a = 0; inst I { a = I.memaddr; }`, "only available inside actions"},
		{"dynamic in command where", `inst I where (I.memaddr > 0) { }`, "only available inside actions"},
		{"dynamic in init", `init { print(1); } inst I { before I { print(I.memaddr); } }`, ""},
		{"rtnval in before", `inst I { before I { print(I.rtnval); } }`, "after-actions"},
		{"bad attr", `inst I { before I { print(I.frobnicate); } }`, "no attribute"},
		{"iter on inst", `inst I { iter I { } }`, "invalid for instructions"},
		{"iter on bb", `basicblock B { iter B { } }`, "invalid for basicblock"},
		{"action on module", `module M { entry M { } }`, "cannot target modules"},
		{"unknown action target", `inst I { before J { } }`, "not a control-flow element"},
		{"assign to attr", `inst I { before I { I.addr = 1; } }`, "read-only"},
		{"assign to cfe", `inst I { before I { I = 1; } }`, "cannot assign to control-flow element"},
		{"bad where type", `inst I where (I.addr) { }`, "must be bool"},
		{"bool op on int", `int x = 1 && 2;`, "invalid operation"},
		{"compare opcode int", `bool b = Load == 3;`, "invalid operation"},
		{"order strings", `bool b = "a" < 1;`, "invalid operation"},
		{"bad unary", `bool b = !3;`, "requires bool"},
		{"neg string", `int x = -"a";`, "requires a number"},
		{"unknown function", `init { frob(1); }`, "unknown function"},
		{"print no args", `init { print(); }`, "at least one argument"},
		{"writeToFile bad file", `init { writeToFile(1, 2); }`, "must be a file"},
		{"vector bad method", `vector<int> v; init { v.frob(1); }`, "no method"},
		{"vector add arity", `vector<int> v; init { v.add(); }`, "requires one"},
		{"dict bad key", `dict<int,int> d; init { d["x"] = 1; }`, "dict key must be int"},
		{"index non-container", `int x; init { x[0] = 1; }`, "not indexable"},
		{"istype non-operand", `inst I where (I.addr IsType mem) { }`, "requires an instruction operand"},
		{"file local", `inst I { file f("x"); }`, "global scope"},
		{"file no args", `file f;`, "requires a name argument"},
		{"file bad arg", `file f(3);`, "must be a string"},
		{"int ctor args", `int x(3);`, "no constructor arguments"},
		{"dict of files", `dict<int,file> d;`, "invalid dict value"},
		{"dict key file", `dict<file,int> d;`, "invalid dict key"},
		{"assign mismatched", `vector<int> v; init { v = 3; }`, "cannot assign"},
		{"if cond type", `init { if (1) { } }`, "must be bool"},
		{"for cond type", `init { for (int i = 0; i; ) { } }`, "must be bool"},
		{"call attr", `inst I { before I { I.addr(); } }`, "cannot be called"},
		{"attr on non-cfe", `int x; init { print(x.addr); }`, "no attributes"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if c.name == "dynamic in init" {
				// Positive control: dynamic attr in an action is fine.
				check(t, c.src)
				return
			}
			checkErr(t, c.src, c.wantSub)
		})
	}
}

func TestWhereDynamicClassification(t *testing.T) {
	info := check(t, `
inst I where (I.opcode == Load) {
  before I where (I.memaddr > 4096) {
    print(I.memaddr);
  }
}
`)
	for _, ai := range info.Actions {
		if !ai.WhereDynamic {
			t.Error("dynamic constraint not classified as dynamic")
		}
		if len(ai.DynAttrs) != 1 {
			t.Errorf("dyn attrs = %v (should deduplicate)", ai.DynAttrs)
		}
	}
}

func TestShadowingInNestedScopes(t *testing.T) {
	check(t, `
int x = 1;
inst I {
  before I {
    int x = 2;
    if (x > 1) {
      int x = 3;
      print(x);
    }
  }
}
`)
	checkErr(t, `init { int y = 1; int y = 2; }`, "redeclared")
}

func TestLineCoercions(t *testing.T) {
	check(t, `
vector<addr> vtable;
file f("x.txt");
init {
  line l = f.getline();
  for (; l != NULL; ) {
    vtable.add(l);
    l = f.getline();
  }
  addr a = l;
}
`)
}

func TestAddrArithmeticKeepsAddr(t *testing.T) {
	info := check(t, `
inst I {
  before I {
    addr a = I.addr + 8;
    print(a);
  }
}
`)
	found := false
	for e, ty := range info.Types {
		if be, ok := e.(*ast.BinaryExpr); ok && be != nil && ty.Kind == types.Addr {
			found = true
		}
	}
	if !found {
		t.Error("addr + int did not stay addr")
	}
}
