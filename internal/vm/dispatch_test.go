package vm

// Tests and benchmarks for the dispatch fast paths: module lookup with
// more than two modules (MRU + binary search) and the per-offset probe
// storage the Run loop indexes instead of hash maps.

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/obj"
)

func buildTB(tb testing.TB, srcs ...string) *cfg.Program {
	tb.Helper()
	mods := make([]*obj.Module, 0, len(srcs))
	for _, s := range srcs {
		m, err := asm.Assemble(s)
		if err != nil {
			tb.Fatal(err)
		}
		mods = append(mods, m)
	}
	p, err := obj.Load(mods, RuntimeExterns())
	if err != nil {
		tb.Fatal(err)
	}
	prog, err := cfg.Build(p)
	if err != nil {
		tb.Fatal(err)
	}
	return prog
}

func TestModForManyModules(t *testing.T) {
	// Four modules: execution bounces across all of them, and probes are
	// installed in every module, so both the Run loop and the Add*
	// installers exercise modFor beyond the two-module case the MRU cache
	// alone would cover.
	lib := func(name, fn string, inc int) string {
		return fmt.Sprintf(`
.module %s
.global %s
.func %s
  add r0, r1, %d
  ret
`, name, fn, fn, inc)
	}
	main := `
.module a.out
.executable
.entry main
.extern f1
.extern f2
.extern f3
.extern print
.func main
  mov r9, 0
  mov r10, 3
head:
  mov r1, r9
  call f1
  mov r1, r0
  call f2
  mov r1, r0
  call f3
  mov r9, r0
  add r10, r10, 0
  sub r10, r10, 1
  mov r11, 0
  blt r11, r10, head
  mov r1, r9
  call print
  halt
`
	prog := buildTB(t, main, lib("liba", "f1", 1), lib("libb", "f2", 10), lib("libc", "f3", 100))
	if len(prog.Modules) != 4 {
		t.Fatalf("modules = %d, want 4", len(prog.Modules))
	}
	v := New(prog, Config{})

	// modFor resolves every module's address range, regardless of lookup
	// order (defeating the MRU cache between queries).
	for i := len(v.mods) - 1; i >= 0; i-- {
		m := v.mods[i]
		v.lastM = v.mods[(i+1)%len(v.mods)]
		if got := v.modFor(m.base); got != m {
			t.Errorf("modFor(%#x) = %+v, want module with that base", m.base, got)
		}
		if got := v.modFor(m.base + uint64(len(m.insts)) - 1); got != m {
			t.Errorf("modFor(end of %#x) missed", m.base)
		}
	}
	if got := v.modFor(0); got != nil {
		t.Errorf("modFor(0) = %+v, want nil", got)
	}
	if got := v.modFor(^uint64(0)); got != nil {
		t.Errorf("modFor(max) = %+v, want nil", got)
	}

	// One before-probe on each module's first instruction; each must fire.
	fired := make(map[string]int)
	for _, mod := range prog.Modules {
		mod := mod
		in := mod.Funcs[0].Blocks[0].Insts[0]
		if err := v.AddBefore(in.Addr, 0, func(*Ctx) { fired[mod.Name()]++ }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if fired["a.out"] != 1 {
		t.Errorf("a.out entry probe fired %d times, want 1", fired["a.out"])
	}
	for _, name := range []string{"liba", "libb", "libc"} {
		if fired[name] != 3 {
			t.Errorf("%s probe fired %d times, want 3", name, fired[name])
		}
	}
}

// dispatchBenchSrc runs a tight counted loop: three hot instructions per
// iteration plus the backward branch.
const dispatchBenchSrc = `
.module a.out
.executable
.entry main
.func main
  mov r1, 0
  mov r2, 0
  mov r3, 1000
head:
  add r1, r1, r2
  add r2, r2, 1
  blt r2, r3, head
  halt
`

// BenchmarkVMDispatch measures the raw Run loop on an uninstrumented
// program: module lookup, flag checks, instruction execution.
func BenchmarkVMDispatch(b *testing.B) {
	prog := buildTB(b, dispatchBenchSrc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := New(prog, Config{})
		if _, err := v.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// hotBlockSrc runs a loop whose body is one large straight-line block
// (sixteen ALU/memory instructions plus the backward branch): the shape
// block translation is built for, with per-instruction dispatch overhead
// amortized over the whole block.
const hotBlockSrc = `
.module a.out
.executable
.entry main
.func main
  mov r1, 0
  mov r2, 0
  mov r3, 2000
  mov r4, 7
head:
  add r1, r1, r2
  xor r5, r1, r4
  add r5, r5, 3
  mul r6, r5, r4
  sub r6, r6, r1
  and r7, r6, 255
  or  r7, r7, 1
  shl r8, r7, 2
  shr r8, r8, 1
  add r1, r1, r8
  store r1, [sp-8]
  load r9, [sp-8]
  add r1, r1, r9
  getptr r10, r2, r5, 4
  add r1, r1, r10
  add r2, r2, 1
  blt r2, r3, head
  halt
`

// BenchmarkDispatch is the headline probe-free dispatch benchmark: the
// same workloads under both execution tiers. "tight" is a three-
// instruction loop body (worst case for block dispatch: boundary work
// every three instructions); "hot" is a sixteen-instruction block.
func BenchmarkDispatch(b *testing.B) {
	for _, c := range []struct{ name, src string }{
		{"tight", dispatchBenchSrc},
		{"hot", hotBlockSrc},
	} {
		prog := buildTB(b, c.src)
		for _, mode := range []ExecMode{ExecTranslated, ExecInterpreted} {
			b.Run(c.name+"/"+mode.String(), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					v := New(prog, Config{ExecMode: mode})
					if _, err := v.Run(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkProbeFire measures probe dispatch: the same loop with a
// before-probe on each hot instruction, so every executed instruction
// pays the probe-storage access and callback invocation.
func BenchmarkProbeFire(b *testing.B) {
	prog := buildTB(b, dispatchBenchSrc)
	var addrs []uint64
	for _, blk := range prog.FuncByName("main").Blocks {
		for _, in := range blk.Insts {
			if in.Op == isa.Add {
				addrs = append(addrs, in.Addr)
			}
		}
	}
	if len(addrs) == 0 {
		b.Fatal("no add instructions found")
	}
	b.ReportAllocs()
	b.ResetTimer()
	var count uint64
	for i := 0; i < b.N; i++ {
		v := New(prog, Config{})
		for _, a := range addrs {
			if err := v.AddBefore(a, 1, func(*Ctx) { count++ }); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := v.Run(); err != nil {
			b.Fatal(err)
		}
	}
	_ = count
}
