package placement

import (
	"repro/internal/cfg"
	"repro/internal/core/value"
	"repro/internal/isa"
	"repro/internal/obs"
)

// Config steers the optimization passes for one instrumentation run.
type Config struct {
	// Optimize enables the rewriting passes (counter promotion and
	// probe coalescing). Deferred where groups are resolved either
	// way — a rule must never lower with its where clause undecided.
	Optimize bool
	// Adaptive disables coalescing: the governor controls probes
	// individually, and a merged probe has no per-placement stride
	// state to pace.
	Adaptive bool
	// Obs, when non-nil, receives pass-effect counts in the build
	// stats (the attribution table itself stays per-placement, so
	// residual is unaffected).
	Obs *obs.Collector
}

// Apply runs the optimization passes over the table in place:
// where-clause hoisting, counter promotion, then redundant-probe
// coalescing. Apply is idempotent — a second run is a fixpoint — and
// observability-neutral: the rewritten table lowers to bit-identical
// fires, cycles, skips and output.
func Apply(rs *RuleSet, cfg Config) error {
	if err := hoist(rs, cfg.Obs); err != nil {
		return err
	}
	if !cfg.Optimize {
		return nil
	}
	promote(rs, cfg.Obs)
	if !cfg.Adaptive {
		coalesce(rs, cfg.Obs)
	}
	return nil
}

// hoist resolves every deferred static where clause once per action
// instance: a group that evaluates false drops all its rules (the
// probe is never placed); one that evaluates true leaves them
// unconditional. Group predicates close over by-value CFE snapshots
// taken at emission time, so the outcome is exactly what eager
// evaluation would have produced.
func hoist(rs *RuleSet, o *obs.Collector) error {
	var hoisted, placed, filtered int
	kept := rs.rules[:0]
	for _, r := range rs.rules {
		g := r.Group
		if g == nil {
			kept = append(kept, r)
			continue
		}
		if !g.resolved {
			ok, err := g.Eval()
			if err != nil {
				return err
			}
			g.resolved, g.keep = true, ok
			hoisted++
			if ok {
				placed++
			} else {
				filtered++
			}
		}
		if g.keep {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(rs.rules); i++ {
		rs.rules[i] = nil
	}
	rs.rules = kept
	rs.byBlock = nil
	if o != nil && hoisted > 0 {
		o.MutateBuild(func(b *obs.BuildStats) {
			b.WheresHoisted += hoisted
			b.ActionsPlaced += placed
			b.StaticFiltered += filtered
		})
	}
	return nil
}

// promote sets each rule's dispatch mechanism from its action's fast
// lowering: a compiled fast thunk upgrades to MechFast, and a pure
// counter bump with no dynamic attributes to MechCounter. This feeds
// the VM's existing InlineInfo fast path from the IR instead of
// per-backend plumbing.
func promote(rs *RuleSet, o *obs.Collector) {
	promoted := 0
	for _, r := range rs.rules {
		if len(r.Merged) > 0 || r.Action == nil {
			continue
		}
		il := r.Action.Inline
		if il == nil {
			continue
		}
		want := MechFast
		if il.Counter && len(r.Action.DynAttrs) == 0 {
			want = MechCounter
		}
		if want != r.Mechanism {
			r.Mechanism = want
			if want == MechCounter {
				promoted++
			}
		}
	}
	if o != nil && promoted > 0 {
		o.MutateBuild(func(b *obs.BuildStats) { b.CountersPromoted += promoted })
	}
}

// siteKey identifies one concrete trigger point: rules merge only
// when they fire at exactly the same place for exactly the same
// reason.
type siteKey struct {
	trig  Trigger
	inst  *isa.Inst
	block *cfg.Block
	from  *cfg.Block
}

// coalesce merges maximal same-site runs of adjacent unsampled
// counter rules into one probe per run. Adjacency is judged within
// the site's own subsequence of the table — rules at other sites
// between two constituents are irrelevant, but a non-eligible rule at
// the same site breaks the run, because merging across it would
// reorder that site's observable execution.
//
// The merged probe attributes per-constituent through vm.Share rows,
// so the report is row-for-row identical to the unmerged table. When
// every constituent bumps the same storage cell the merged probe
// keeps a Counter spec with the summed delta; otherwise it falls back
// to a pure Fn spec applying each constituent's flush in order.
func coalesce(rs *RuleSet, o *obs.Collector) {
	open := make(map[siteKey][]int)
	var runs [][]int
	closeRun := func(k siteKey) {
		if run := open[k]; len(run) >= 2 {
			runs = append(runs, run)
		}
		delete(open, k)
	}
	for i, r := range rs.rules {
		if r.Block == nil {
			continue
		}
		k := siteKey{r.Trigger, r.Inst, r.Block, r.From}
		if coalescable(r) {
			open[k] = append(open[k], i)
		} else {
			closeRun(k)
		}
	}
	for k := range open {
		closeRun(k)
	}
	if len(runs) == 0 {
		return
	}

	merged := 0
	drop := make(map[int]bool)
	for _, run := range runs {
		parts := make([]*Rule, len(run))
		for j, idx := range run {
			parts[j] = rs.rules[idx]
			if j > 0 {
				drop[idx] = true
			}
		}
		rs.rules[run[0]] = MergeRun(parts)
		merged += len(run) - 1
	}
	kept := rs.rules[:0]
	for i, r := range rs.rules {
		if !drop[i] {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(rs.rules); i++ {
		rs.rules[i] = nil
	}
	rs.rules = kept
	rs.byBlock = nil
	if o != nil {
		o.MutateBuild(func(b *obs.BuildStats) { b.ProbesCoalesced += merged })
	}
}

// coalescable reports whether a rule may join a merged run: an
// unmerged, unsampled pure counter.
func coalescable(r *Rule) bool {
	return len(r.Merged) == 0 &&
		r.Mechanism == MechCounter &&
		r.Action != nil &&
		r.Action.Sample <= 1 &&
		r.Action.Inline != nil &&
		r.Action.Inline.Counter &&
		r.Action.Inline.Flush != nil
}

// MergeRun fuses a same-site run into one rule whose execution is the
// constituents' executions in order. Exported for the engine's rule
// templates, which re-fuse a recorded merged rule after rebinding its
// constituents to a new session's cells.
func MergeRun(parts []*Rule) *Rule {
	first := parts[0]
	fulls := make([]func(), len(parts))
	flushes := make([]func(int64), len(parts))
	deltas := make([]int64, len(parts))
	var cost uint64
	sameCell := first.Action.Inline.Cell != nil
	cell := first.Action.Inline.Cell
	for i, p := range parts {
		exec := p.Action.Exec
		fulls[i] = func() { exec(nil) }
		flushes[i] = p.Action.Inline.Flush
		deltas[i] = p.Action.Inline.Delta
		cost += p.Action.Cost
		if p.Action.Inline.Cell == nil || p.Action.Inline.Cell != cell {
			sameCell = false
		}
	}
	fused := func(dyn []value.Value) {
		for _, f := range fulls {
			f()
		}
	}
	fastFused := func(dyn []value.Value) {
		for i, f := range flushes {
			f(deltas[i])
		}
	}
	il := &InlineInfo{Exec: fastFused}
	mech := MechFast
	if sameCell {
		var delta int64
		for _, d := range deltas {
			delta += d
		}
		il.Counter, il.Delta, il.Flush, il.Cell = true, delta, first.Action.Inline.Flush, cell
		mech = MechCounter
	}
	return &Rule{
		Trigger: first.Trigger,
		Inst:    first.Inst,
		Block:   first.Block,
		From:    first.From,
		Action: &Action{
			Label:  first.Action.Label,
			Cost:   cost,
			Simple: first.Action.Simple,
			Exec:   fused,
			Inline: il,
		},
		Mechanism: mech,
		Merged:    parts,
	}
}
