package monitor

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// FleetConfig parameterizes a FleetServer.
type FleetConfig struct {
	// Fleet is the session registry being served. Required.
	Fleet *Fleet
	// Ready reports whether the session scheduler is accepting work;
	// /healthz/ready turns 503 when it returns false (the drain window).
	// nil means always ready.
	Ready func() bool
	// Submit handles a POST /sessions job body and returns the
	// JSON-encodable response (the scheduler injects itself here so
	// monitor never imports internal/fleet). nil disables submission:
	// POST answers 405.
	Submit func(body []byte) (any, error)
	// Heartbeat is the SSE keep-alive period (default 1s). The /trace
	// multiplexer also discovers newly registered sessions on this tick.
	Heartbeat time.Duration
	// TraceBuf is the per-tap and merged-stream channel depth (default
	// 256). Events beyond a slow consumer are dropped and accounted.
	TraceBuf int
	// Artifacts, when non-nil, supplies the scheduler's artifact-cache
	// counters; /metrics then appends the cinnamon_artifact_* families
	// after the fleet document. nil omits them.
	Artifacts func() ArtifactStats
}

// FleetServer serves the aggregated fleet view over HTTP:
//
//	GET  /metrics        per-session-labelled exposition + fleet rollups
//	GET  /series         every session's interval series + merged last rates
//	GET  /sessions       lifecycle of every session (?session=ID for one)
//	POST /sessions       submit a job to the scheduler
//	GET  /trace          multiplexed SSE of all sessions' firing events,
//	                     each tagged with its session label
//	GET  /healthz        liveness (alias of /healthz/live)
//	GET  /healthz/live   liveness
//	GET  /healthz/ready  readiness: 503 while draining
type FleetServer struct {
	cfg  FleetConfig
	srv  *http.Server
	ln   net.Listener
	quit chan struct{}
}

// NewFleetServer creates the aggregation server over the registry.
func NewFleetServer(cfg FleetConfig) *FleetServer {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.TraceBuf <= 0 {
		cfg.TraceBuf = 256
	}
	return &FleetServer{cfg: cfg, quit: make(chan struct{})}
}

// Handler returns the fleet endpoint mux.
func (s *FleetServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/series", s.handleSeries)
	mux.HandleFunc("/sessions", s.handleSessions)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/healthz", s.handleLive)
	mux.HandleFunc("/healthz/live", s.handleLive)
	mux.HandleFunc("/healthz/ready", s.handleReady)
	return mux
}

// Start binds addr (host:port; port 0 picks a free one) and serves in a
// background goroutine, returning the bound address. Shutdown must be
// called to stop.
func (s *FleetServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("monitor: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown stops the server: streaming handlers are released and
// in-flight requests drain, bounded by ctx. Only valid after Start.
func (s *FleetServer) Shutdown(ctx context.Context) error {
	close(s.quit)
	return s.srv.Shutdown(ctx)
}

func (s *FleetServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeFleetMetrics(w, s.cfg.Fleet)
	if s.cfg.Artifacts != nil {
		writeArtifactMetrics(w, s.cfg.Artifacts())
	}
}

// SessionSeries is one session's interval series in the fleet /series
// document.
type SessionSeries struct {
	SessionLabels
	State  SessionState    `json:"state"`
	Series *obs.SeriesDump `json:"series"`
}

// FleetSeriesDump is the fleet /series document: every session's dump
// plus the merged most-recent rates.
type FleetSeriesDump struct {
	Sessions []SessionSeries `json:"sessions"`
	// Last sums the most recent point of every session's series: the
	// fleet's current aggregate rates.
	Last obs.Rate `json:"last"`
}

func (s *FleetServer) handleSeries(w http.ResponseWriter, r *http.Request) {
	dump := FleetSeriesDump{Sessions: []SessionSeries{}}
	for _, sess := range s.cfg.Fleet.Sessions() {
		ser := sess.Series()
		if ser == nil {
			continue
		}
		dump.Sessions = append(dump.Sessions, SessionSeries{
			SessionLabels: sess.Labels(),
			State:         sess.State(),
			Series:        ser.Dump(),
		})
		if p, ok := ser.Last(); ok {
			dump.Last.Fires += p.Total.Fires
			dump.Last.Cycles += p.Total.Cycles
			dump.Last.FiresPerSec += p.Total.FiresPerSec
			dump.Last.CyclesPerSec += p.Total.CyclesPerSec
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(dump)
}

// handleSessions serves the lifecycle view (GET; ?session=ID narrows to
// one) and job submission (POST, delegated to the scheduler).
func (s *FleetServer) handleSessions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id := r.URL.Query().Get("session"); id != "" {
			sess, ok := s.cfg.Fleet.Get(id)
			if !ok {
				http.Error(w, fmt.Sprintf("no session %q", id), http.StatusNotFound)
				return
			}
			_ = enc.Encode(sess.Info())
			return
		}
		infos := []SessionInfo{}
		for _, sess := range s.cfg.Fleet.Sessions() {
			infos = append(infos, sess.Info())
		}
		_ = enc.Encode(infos)
	case http.MethodPost:
		if s.cfg.Submit == nil {
			http.Error(w, "session submission disabled", http.StatusMethodNotAllowed)
			return
		}
		if s.cfg.Ready != nil && !s.cfg.Ready() {
			http.Error(w, "draining: not accepting sessions", http.StatusServiceUnavailable)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, fmt.Sprintf("bad body: %v", err), http.StatusBadRequest)
			return
		}
		resp, err := s.cfg.Submit(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *FleetServer) handleLive(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *FleetServer) handleReady(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	ready := true
	select {
	case <-s.quit:
		ready = false
	default:
		if s.cfg.Ready != nil {
			ready = s.cfg.Ready()
		}
	}
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// FleetTraceEvent is one multiplexed /trace event: the firing plus the
// session it came from.
type FleetTraceEvent struct {
	Session string `json:"session"`
	obs.TraceEvent
}

// fleetHeartbeat rides on the multiplexed stream's keep-alives: how
// many sessions are tapped and how many events this subscriber has
// missed — collector-side tap overflow plus merge-channel overflow,
// monotone for the life of the stream.
type fleetHeartbeat struct {
	Sessions int    `json:"sessions"`
	Dropped  uint64 `json:"dropped"`
}

// handleTrace multiplexes every session's firing stream into one SSE
// stream. Each session gets a bounded tap (obs.Subscribe) pumped into a
// shared merge channel; events carry the session label. Sessions
// registered after the stream opened are tapped at the next heartbeat
// tick. A slow client loses events — tap- and merge-side drops are
// counted and reported on every heartbeat — but never stalls a run.
func (s *FleetServer) handleTrace(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}

	type tap struct {
		col *obs.Collector
		sub *obs.Subscription
		ch  chan obs.TraceEvent
	}
	merged := make(chan FleetTraceEvent, s.cfg.TraceBuf)
	var mergeDrops atomic.Uint64
	stop := make(chan struct{})
	taps := map[string]*tap{} // touched only by this handler goroutine

	attach := func() {
		for _, sess := range s.cfg.Fleet.Sessions() {
			id := sess.Labels().Session
			if _, seen := taps[id]; seen {
				continue
			}
			t := &tap{col: sess.Collector(), ch: make(chan obs.TraceEvent, s.cfg.TraceBuf)}
			t.sub = t.col.Subscribe(t.ch)
			taps[id] = t
			go func(id string, t *tap) {
				for {
					select {
					case <-stop:
						return
					case ev := <-t.ch:
						select {
						case merged <- FleetTraceEvent{Session: id, TraceEvent: ev}:
						default:
							mergeDrops.Add(1)
						}
					}
				}
			}(id, t)
		}
	}
	defer func() {
		close(stop)
		for _, t := range taps {
			t.col.Unsubscribe(t.sub)
		}
	}()
	attach()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	tick := time.NewTicker(s.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-r.Context().Done():
			return
		case ev := <-merged:
			data, _ := json.Marshal(ev)
			fmt.Fprintf(w, "event: fire\ndata: %s\n\n", data)
			flusher.Flush()
		case <-tick.C:
			attach()
			dropped := mergeDrops.Load()
			for _, t := range taps {
				dropped += t.sub.Dropped()
			}
			data, _ := json.Marshal(fleetHeartbeat{Sessions: len(taps), Dropped: dropped})
			fmt.Fprintf(w, "event: heartbeat\ndata: %s\n\n", data)
			flusher.Flush()
		}
	}
}
