package vm

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/obs"
)

// Share attributes one constituent placement of a coalesced probe: a
// merged probe fires once but reports one row per constituent, each
// with its own dispatch cost, so the attribution table is row-for-row
// identical to installing the constituents separately. The probe's
// total cycle charge is the sum of its shares' costs.
type Share struct {
	ID   obs.ProbeID
	Cost uint64
}

// fireObs attributes one firing: per-share for coalesced probes, a
// single row otherwise. The nil check keeps uncoalesced dispatch on
// the exact pre-existing path.
func (p *probe) fireObs(o *obs.Collector, pc uint64) {
	if p.shares == nil {
		o.Fire(p.id, p.cost, pc)
		return
	}
	for _, s := range p.shares {
		o.Fire(s.ID, s.Cost, pc)
	}
}

// coalescedProbe builds the merged probe: cost is the share sum, the
// primary id is the first share (used only when no collector is
// attached), and there is no control block — coalesced probes are
// always-on by construction (unsampled constituents, adaptive mode
// rejected at install).
func coalescedProbe(shares []Share, fn ProbeFn, spec *ProbeSpec) probe {
	var cost uint64
	for _, s := range shares {
		cost += s.Cost
	}
	id := obs.NoProbe
	if len(shares) > 0 {
		id = shares[0].ID
	}
	return probe{fn: fn, cost: cost, id: id, spec: spec, shares: shares}
}

func (v *VM) coalescedOK(shares []Share) error {
	if len(shares) == 0 {
		return errors.New("vm: coalesced probe needs at least one share")
	}
	if v.adaptive {
		return errors.New("vm: coalesced probes have no control block and cannot run in adaptive mode")
	}
	return nil
}

// AddBeforeCoalesced installs one merged probe before the instruction
// at addr, attributing each firing across shares (see Share).
func (v *VM) AddBeforeCoalesced(addr uint64, shares []Share, fn ProbeFn, spec *ProbeSpec) error {
	if err := v.coalescedOK(shares); err != nil {
		return err
	}
	m := v.modFor(addr)
	if m == nil || m.insts[addr-m.base] == nil {
		return fmt.Errorf("vm: no instruction at %#x", addr)
	}
	p := m.probesAt(addr - m.base)
	p.before = append(p.before, coalescedProbe(shares, fn, spec))
	m.flags[addr-m.base] |= flagBefore
	m.invalidate(addr - m.base)
	return nil
}

// AddAfterCoalesced installs one merged after-probe at addr (invalid
// on branches, returns and halts, as for AddAfterSampled).
func (v *VM) AddAfterCoalesced(addr uint64, shares []Share, fn ProbeFn, spec *ProbeSpec) error {
	if err := v.coalescedOK(shares); err != nil {
		return err
	}
	m := v.modFor(addr)
	if m == nil || m.insts[addr-m.base] == nil {
		return fmt.Errorf("vm: no instruction at %#x", addr)
	}
	switch m.insts[addr-m.base].Op {
	case isa.Branch, isa.Return, isa.Halt:
		return fmt.Errorf("vm: after-probe invalid on %s at %#x", m.insts[addr-m.base].Op, addr)
	}
	p := m.probesAt(addr - m.base)
	p.after = append(p.after, coalescedProbe(shares, fn, spec))
	m.flags[addr-m.base] |= flagAfter
	m.invalidate(addr - m.base)
	return nil
}

// AddBlockEntryCoalesced installs one merged probe at the entry of the
// basic block starting at addr.
func (v *VM) AddBlockEntryCoalesced(addr uint64, shares []Share, fn ProbeFn, spec *ProbeSpec) error {
	if err := v.coalescedOK(shares); err != nil {
		return err
	}
	m := v.modFor(addr)
	if m == nil || m.blocks[addr-m.base] == nil {
		return fmt.Errorf("vm: no basic block starting at %#x", addr)
	}
	p := m.probesAt(addr - m.base)
	p.entry = append(p.entry, coalescedProbe(shares, fn, spec))
	m.flags[addr-m.base] |= flagBlockEntry
	return nil
}

// AddEdgeCoalesced installs one merged probe on the from→to edge.
func (v *VM) AddEdgeCoalesced(from, to uint64, shares []Share, fn ProbeFn, spec *ProbeSpec) error {
	if err := v.coalescedOK(shares); err != nil {
		return err
	}
	m := v.modFor(to)
	if m == nil || m.blocks[to-m.base] == nil {
		return fmt.Errorf("vm: no basic block starting at %#x", to)
	}
	if mf := v.modFor(from); mf == nil || mf.blocks[from-mf.base] == nil {
		return fmt.Errorf("vm: no basic block starting at %#x", from)
	}
	p := m.probesAt(to - m.base)
	np := coalescedProbe(shares, fn, spec)
	for i := range p.edgeIn {
		if p.edgeIn[i].from == from {
			p.edgeIn[i].probes = append(p.edgeIn[i].probes, np)
			m.flags[to-m.base] |= flagEdgeTo
			return nil
		}
	}
	p.edgeIn = append(p.edgeIn, edgeProbes{from: from, probes: []probe{np}})
	m.flags[to-m.base] |= flagEdgeTo
	return nil
}
