package vm

// This file implements the VM's block-translation execution tier: the
// same just-in-time strategy the binary frameworks it models use
// (DynamoRIO fragments, Pin traces). On first entry to a basic block the
// block is compiled into a cached blockProg — a pre-decoded straight-line
// array of operation thunks with the block's instruction probe schedule
// fused inline at its exact trigger points and the static cycle cost
// pre-summed — and every subsequent entry runs the cached program.
// modFor, flag loads, probe-table lookups and the fuel check move from
// per-instruction to per-block frequency.
//
// The tier is required to be bit-identical to the reference interpreter
// (runInterp): cycle totals, Result fields, obs attribution, trace
// events, trap text and print output. The conformance oracle treats any
// tier divergence as illegal, so every accounting shortcut below is
// paired with a mechanism that restores exactness at each observation
// point (probe firings, traps, dispatcher entries):
//
//   - batched cycle/instruction accounting is flushed from the pre-summed
//     suffix-cost array before any probe fires, so a probe body reading
//     Cycles() sees exactly the interpreter's value;
//   - when the remaining fuel cannot cover a whole block, a precise
//     per-step tail runs so an out-of-fuel trap reports the exact same
//     instruction count and PC as the interpreter;
//   - installing a probe into an already-translated block invalidates its
//     cached program (translators install probes mid-run); a running
//     program notices the invalidation at its next probe boundary,
//     finishes the current instruction with interpreter semantics and
//     exits to the dispatcher for retranslation.
//
// Pending call-after probes need draining only at dispatcher entries:
// straight-line flow cannot reach a call's fall-through without executing
// the call itself (the fall-through is the very next instruction), and
// every control transfer exits to the dispatcher.

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/obj"
)

// ExecMode selects the VM execution tier.
type ExecMode uint8

const (
	// ExecTranslated runs cached block programs (the default): blocks are
	// compiled on first entry and re-executed from the code cache.
	ExecTranslated ExecMode = iota
	// ExecInterpreted runs the reference per-instruction loop.
	ExecInterpreted
)

// String returns the mode's command-line spelling.
func (m ExecMode) String() string {
	switch m {
	case ExecTranslated:
		return "translated"
	case ExecInterpreted:
		return "interpreted"
	}
	return fmt.Sprintf("execmode?%d", uint8(m))
}

// ParseExecMode parses a command-line exec-mode string. The empty string
// selects the default (translated) tier.
func ParseExecMode(s string) (ExecMode, error) {
	switch s {
	case "", "translated":
		return ExecTranslated, nil
	case "interpreted", "interp":
		return ExecInterpreted, nil
	}
	return 0, fmt.Errorf("vm: unknown exec mode %q (want translated or interpreted)", s)
}

// stepRes is a thunk's control-flow outcome.
type stepRes uint8

const (
	// stepNext falls through to the following step of the block program.
	stepNext stepRes = iota
	// stepJump exits the block program; v.pc holds the next address.
	stepJump
)

// step is one pre-decoded instruction of a block program.
type step struct {
	run  func(*VM) (stepRes, error)
	in   *isa.Inst
	cost uint64
	// before/after are the instruction's probe lists fused at translation
	// time. They are exactly the live lists as long as the program is
	// valid: any install into the block invalidates it.
	before, after []probe
	isCall        bool
}

// blockProg is a translated basic block: the unit of the code cache.
type blockProg struct {
	steps []step
	// sufCost[i] holds the summed instruction cost of steps[i:], so the
	// cost of any executed run [i,k) is one subtraction.
	sufCost []uint64
	// endPC is the fall-through address past the last instruction.
	endPC uint64
	// valid is cleared when a probe is installed into the block; the
	// running program checks it after every probe boundary.
	valid bool
	// probed is set if any step carries instruction probes; probe-free
	// programs run a leaner loop with no per-step probe checks.
	probed bool
}

// translate compiles the basic block starting at offset so of module m
// into a blockProg and caches it. Callers must ensure m.blocks[so] != nil.
//
// When the inlining layer is on, probe lists whose members all carry an
// inline spec are fused into the operation thunk as superinstructions
// (see fuseBefore/fuseAfter): the step then runs fires and operation in
// one indirect call, and a block whose every probe fuses drops its
// probed bit entirely, running on the lean probe-free loop.
func (v *VM) translate(m *modExec, so uint64) *blockProg {
	insts := m.blocks[so].Insts
	bp := &blockProg{
		steps:   make([]step, len(insts)),
		sufCost: make([]uint64, len(insts)+1),
		endPC:   insts[len(insts)-1].Next(),
		valid:   true,
	}
	for i, in := range insts {
		st := &bp.steps[i]
		st.in = in
		st.cost = instCost(in.Op)
		st.isCall = in.Op == isa.Call
		st.run = compileStep(in)
		off := in.Addr - m.base
		if f := m.flags[off]; f&(flagBefore|flagAfter) != 0 {
			p := m.probes[off]
			if f&flagBefore != 0 {
				st.before = liveProbes(p.before)
			}
			if f&flagAfter != 0 {
				if st.isCall {
					// Call after-fires resolve at the fall-through via the
					// pending mechanism: push the live list, so a probe
					// re-armed while the callee runs still fires there,
					// exactly as in the interpreter (the fire-time gate
					// suppresses disabled ones).
					st.after = p.after
				} else {
					st.after = liveProbes(p.after)
				}
			}
		}
		if v.inline {
			if st.before != nil && allSpecs(st.before) {
				st.run = v.fuseBefore(st.before, in, st.run)
				st.before = nil
			}
			// After-fires fuse only when no generic before-probe remains
			// on the step: a generic before-body may install an
			// after-probe on its own instruction, which must fire on this
			// very execution (finishStepSlow re-reads the live list), and
			// a fused after list would miss it. Spec'd probes never
			// install, so a fused or empty before side is safe. Call
			// after-fires stay generic: they fire at the fall-through via
			// the pending mechanism, not here.
			if st.after != nil && st.before == nil && !st.isCall && allSpecs(st.after) {
				st.run = v.fuseAfter(st.after, in, st.run)
				st.after = nil
			}
		}
		if st.before != nil || st.after != nil {
			bp.probed = true
		}
	}
	for i := len(insts) - 1; i >= 0; i-- {
		bp.sufCost[i] = bp.sufCost[i+1] + bp.steps[i].cost
	}
	m.bprogs[so] = bp
	return bp
}

// allSpecs reports whether every probe of the list carries an inline
// spec (lists fuse whole or not at all).
func allSpecs(ps []probe) bool {
	for i := range ps {
		if ps[i].spec == nil {
			return false
		}
	}
	return true
}

// liveProbes filters logically-removed probes out of a list at
// translation time — the steady-state form of mid-run removal: the
// ejected probe vanishes from the cached block until re-arming
// invalidates it back in. Returns the original slice when nothing is
// disabled, nil when everything is.
func liveProbes(ps []probe) []probe {
	for i := range ps {
		if ct := ps[i].ctl; ct != nil && !ct.enabled {
			live := append([]probe(nil), ps[:i]...)
			for j := i + 1; j < len(ps); j++ {
				if ct := ps[j].ctl; ct != nil && !ct.enabled {
					continue
				}
				live = append(live, ps[j])
			}
			if len(live) == 0 {
				return nil
			}
			return live
		}
	}
	return ps
}

// fusedFire builds the specialized thunk for one spec'd probe firing:
// trigger constants (instruction, when, attribution PC) and the obs
// branch are pre-folded at translation time, and counter-shaped probes
// reduce to an accumulator bump. Before any non-counter body runs,
// promoted counters flush — the body may read the cells they cover.
// The fire sets the ctx trigger fields but does not restore them:
// every observation of ctx (a fire, a hook) re-establishes them first.
// Adaptive probes get the sampling gate folded in front of the fire,
// reading the shared control block live — the same decision sequence
// the interpreter's fire loop makes.
func (v *VM) fusedFire(p *probe, in *isa.Inst, when When, pc uint64) func(*VM) {
	inner := v.fusedFireAlways(p, in, when, pc)
	if ct := p.ctl; ct != nil {
		return func(v *VM) {
			if ct.gate(v) {
				inner(v)
			}
		}
	}
	return inner
}

// fusedFireAlways is the unconditional fire thunk fusedFire gates.
// Coalesced probes (p.shares non-nil) branch to share-attributing
// variants at compile time; uncoalesced probes keep the exact
// single-row closures.
func (v *VM) fusedFireAlways(p *probe, in *isa.Inst, when When, pc uint64) func(*VM) {
	sp := p.spec
	cost, id := p.cost, p.id
	shares := p.shares
	if sp.Counter {
		if obsC := v.obsC; obsC != nil {
			if shares != nil {
				return func(v *VM) {
					if sp.acc == 0 {
						v.dirty = append(v.dirty, sp)
					}
					sp.acc += sp.Delta
					v.cycles += cost
					for _, s := range shares {
						obsC.Fire(s.ID, s.Cost, pc)
					}
				}
			}
			return func(v *VM) {
				if sp.acc == 0 {
					v.dirty = append(v.dirty, sp)
				}
				sp.acc += sp.Delta
				v.cycles += cost
				obsC.Fire(id, cost, pc)
			}
		}
		return func(v *VM) {
			if sp.acc == 0 {
				v.dirty = append(v.dirty, sp)
			}
			sp.acc += sp.Delta
			v.cycles += cost
		}
	}
	fn := sp.Fn
	if obsC := v.obsC; obsC != nil {
		if shares != nil {
			return func(v *VM) {
				if len(v.dirty) > 0 {
					v.flushCounters()
				}
				c := &v.ctx
				c.inst, c.when = in, when
				v.cycles += cost
				fn(c)
				for _, s := range shares {
					obsC.Fire(s.ID, s.Cost, pc)
				}
			}
		}
		return func(v *VM) {
			if len(v.dirty) > 0 {
				v.flushCounters()
			}
			c := &v.ctx
			c.inst, c.when = in, when
			v.cycles += cost
			fn(c)
			obsC.Fire(id, cost, pc)
		}
	}
	return func(v *VM) {
		if len(v.dirty) > 0 {
			v.flushCounters()
		}
		c := &v.ctx
		c.inst, c.when = in, when
		v.cycles += cost
		fn(c)
	}
}

// fuseBefore chains spec'd before-fires ahead of the operation thunk:
// the probe+op superinstruction. Attribution PC is the instruction's own
// address, exactly what runSteps would set before a generic fire.
func (v *VM) fuseBefore(ps []probe, in *isa.Inst, op func(*VM) (stepRes, error)) func(*VM) (stepRes, error) {
	if len(ps) == 1 {
		f := v.fusedFire(&ps[0], in, BeforeInst, in.Addr)
		return func(v *VM) (stepRes, error) {
			f(v)
			return op(v)
		}
	}
	fires := make([]func(*VM), len(ps))
	for i := range ps {
		fires[i] = v.fusedFire(&ps[i], in, BeforeInst, in.Addr)
	}
	return func(v *VM) (stepRes, error) {
		for _, f := range fires {
			f(v)
		}
		return op(v)
	}
}

// fuseAfter chains spec'd after-fires behind the operation thunk: the
// op+probe superinstruction. Fires run only when the operation succeeds
// (an erroring step never reaches its after-probes) and before the
// step-result branch, matching the generic order. Attribution PC is the
// fall-through address, what runSteps sets before a generic after-fire.
func (v *VM) fuseAfter(ps []probe, in *isa.Inst, op func(*VM) (stepRes, error)) func(*VM) (stepRes, error) {
	next := in.Next()
	if len(ps) == 1 {
		f := v.fusedFire(&ps[0], in, AfterInst, next)
		return func(v *VM) (stepRes, error) {
			res, err := op(v)
			if err != nil {
				return res, err
			}
			f(v)
			return res, nil
		}
	}
	fires := make([]func(*VM), len(ps))
	for i := range ps {
		fires[i] = v.fusedFire(&ps[i], in, AfterInst, next)
	}
	return func(v *VM) (stepRes, error) {
		res, err := op(v)
		if err != nil {
			return res, err
		}
		for _, f := range fires {
			f(v)
		}
		return res, nil
	}
}

// invalidate drops the cached program of the block owning the
// instruction at off. A currently-running copy notices the cleared valid
// bit at its next probe boundary and exits for retranslation.
func (m *modExec) invalidate(off uint64) {
	if m.bprogs == nil {
		return // interpreted tier: no code cache
	}
	so := uint64(m.bstart[off])
	if bp := m.bprogs[so]; bp != nil {
		bp.valid = false
		m.bprogs[so] = nil
	}
}

// runTranslated is the block-dispatch loop of the translated tier. Block
// boundary work (pending call-after drain, module lookup, translator
// hook, edge/entry probes, fuel check) happens once per dispatch; the
// block body runs from the code cache.
func (v *VM) runTranslated() error {
	for !v.halted {
		if v.insts >= v.fuel {
			return v.trap("out of fuel after %d instructions", v.insts)
		}
		// Fire pending call-after probes whose fall-through we reached.
		for len(v.pending) > 0 {
			top := v.pending[len(v.pending)-1]
			if top.fall != v.pc || top.depth != v.depth {
				break
			}
			v.pending = v.pending[:len(v.pending)-1]
			v.fireCallAfter(top)
		}

		// Inlined modFor MRU hit: consecutive blocks almost always share a
		// module (the unsigned subtraction also rejects pc < base).
		m := v.lastM
		if m == nil || v.pc-m.base >= uint64(len(m.insts)) {
			m = v.modFor(v.pc)
			if m == nil {
				return v.trap("execution outside code")
			}
		}
		off := v.pc - m.base
		so, idx := off, 0
		if blk := m.blocks[off]; blk != nil {
			// The pace hook fires at block-start dispatch, mirroring the
			// interpreter's check at the same machine state: pending fires
			// drained, previous block's accounting flushed, code cache not
			// yet resolved (so anything the hook invalidates retranslates
			// on this very dispatch).
			if v.stop != nil && v.stop.Load() {
				return v.stopErr()
			}
			if v.pacer != nil && v.cycles >= v.nextPace {
				v.pace()
			}
			if v.translator != nil && m.flags[off]&flagTranslated == 0 {
				m.flags[off] |= flagTranslated
				// The hook is an observation point (it may read tool
				// state and installs probes): flush promoted counters.
				if len(v.dirty) > 0 {
					v.flushCounters()
				}
				v.ctx.block = blk
				v.translator(blk)
			}
			// Flags and probe storage are (re)read after translation, as in
			// the interpreter: a just-translated block may have installed
			// probes at this very offset.
			if flags := m.flags[off]; flags&(flagEdgeTo|flagBlockEntry) != 0 {
				op := m.probes[off]
				in := m.insts[off]
				if !v.suppressEdge && flags&flagEdgeTo != 0 {
					for i := range op.edgeIn {
						if op.edgeIn[i].from == v.curBlock {
							v.ctx.block = blk
							v.fire(op.edgeIn[i].probes, in, AtEdge)
							break
						}
					}
				}
				v.curBlock = v.pc
				v.ctx.block = blk
				if flags&flagBlockEntry != 0 {
					v.fire(op.entry, in, AtBlockEntry)
				}
			} else {
				v.curBlock = v.pc
				v.ctx.block = blk
			}
		} else {
			// Mid-block entry (a call fall-through, or a return to the
			// middle of a block): run the owning program from the right
			// step, with no block-boundary work — exactly the
			// interpreter's behaviour at a non-block-start address.
			if m.insts[off] == nil {
				return v.trap("not an instruction boundary")
			}
			so, idx = uint64(m.bstart[off]), int(m.bidx[off])
		}
		v.suppressEdge = false

		// Resolve the cached program only after the translator hook and
		// entry/edge probes ran: anything they installed is fused.
		bp := m.bprogs[so]
		if bp == nil || !bp.valid {
			bp = v.translate(m, so)
		}

		var err error
		switch {
		case v.insts+uint64(len(bp.steps)-idx) > v.fuel:
			err = v.runStepsPrecise(bp, idx)
		case bp.probed:
			err = v.runSteps(bp, idx)
		default:
			err = v.runStepsClean(bp, idx)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// runStepsClean executes a probe-free block program: the hot path of
// uninstrumented code, with no per-step probe checks at all.
func (v *VM) runStepsClean(bp *blockProg, idx int) error {
	steps := bp.steps
	for k := idx; k < len(steps); k++ {
		res, err := steps[k].run(v)
		if err != nil {
			v.flushAcc(bp, idx, k)
			return err
		}
		if res == stepJump {
			v.flushAcc(bp, idx, k+1)
			return nil
		}
	}
	v.flushAcc(bp, idx, len(steps))
	v.pc = bp.endPC
	return nil
}

// flushAcc credits the batched cycle/instruction accounting of steps
// [base, k) of the program.
func (v *VM) flushAcc(bp *blockProg, base, k int) {
	v.cycles += bp.sufCost[base] - bp.sufCost[k]
	v.insts += uint64(k - base)
}

// runSteps executes the block program from step idx with accounting
// batched between probe boundaries. The caller has verified the fuel
// covers every remaining step.
func (v *VM) runSteps(bp *blockProg, idx int) error {
	steps := bp.steps
	base := idx
	for k := idx; k < len(steps); k++ {
		st := &steps[k]
		if st.before != nil {
			// Sync accounting and PC so the probe observes exactly the
			// interpreter's state.
			v.flushAcc(bp, base, k)
			base = k
			v.pc = st.in.Addr
			v.fire(st.before, st.in, BeforeInst)
			if !bp.valid {
				return v.finishStepSlow(st)
			}
		}
		depthBefore := v.depth
		res, err := st.run(v)
		if err != nil {
			v.flushAcc(bp, base, k)
			return err
		}
		if st.after != nil {
			v.flushAcc(bp, base, k+1)
			base = k + 1
			if st.isCall {
				// Call-after probes fire at the fall-through, once the
				// callee has returned; the dispatcher drains them.
				v.pending = append(v.pending, pendingAfter{
					fall: st.in.Next(), depth: depthBefore,
					probes: st.after, inst: st.in, block: v.ctx.block,
				})
				return nil
			}
			v.pc = st.in.Next()
			v.fire(st.after, st.in, AfterInst)
			if !bp.valid {
				return nil
			}
		}
		if res == stepJump {
			v.flushAcc(bp, base, k+1)
			return nil
		}
	}
	v.flushAcc(bp, base, len(steps))
	v.pc = bp.endPC
	return nil
}

// runStepsPrecise is the exact tail used when the remaining fuel may not
// cover the block: per-step fuel checks and accounting reproduce the
// interpreter's out-of-fuel trap bit for bit.
func (v *VM) runStepsPrecise(bp *blockProg, idx int) error {
	steps := bp.steps
	for k := idx; k < len(steps); k++ {
		st := &steps[k]
		if v.insts >= v.fuel {
			v.pc = st.in.Addr
			return v.trap("out of fuel after %d instructions", v.insts)
		}
		if st.before != nil {
			v.pc = st.in.Addr
			v.fire(st.before, st.in, BeforeInst)
			if !bp.valid {
				return v.finishStepSlow(st)
			}
		}
		depthBefore := v.depth
		res, err := st.run(v)
		if err != nil {
			return err
		}
		v.cycles += st.cost
		v.insts++
		if st.after != nil {
			if st.isCall {
				v.pending = append(v.pending, pendingAfter{
					fall: st.in.Next(), depth: depthBefore,
					probes: st.after, inst: st.in, block: v.ctx.block,
				})
				return nil
			}
			v.pc = st.in.Next()
			v.fire(st.after, st.in, AfterInst)
			if !bp.valid {
				return nil
			}
		}
		if res == stepJump {
			return nil
		}
	}
	v.pc = bp.endPC
	return nil
}

// finishStepSlow completes one step whose block program was invalidated
// by its own before-probe: the instruction runs with per-step accounting
// and a fresh read of the after list (the interpreter re-reads the list
// at fire time), then execution exits to the dispatcher to retranslate.
func (v *VM) finishStepSlow(st *step) error {
	depthBefore := v.depth
	res, err := st.run(v)
	if err != nil {
		return err
	}
	v.cycles += st.cost
	v.insts++
	if st.after != nil {
		after := st.after
		if m := v.modFor(st.in.Addr); m != nil {
			if p := m.probes[st.in.Addr-m.base]; p != nil {
				after = p.after
			}
		}
		if st.isCall {
			v.pending = append(v.pending, pendingAfter{
				fall: st.in.Next(), depth: depthBefore,
				probes: after, inst: st.in, block: v.ctx.block,
			})
			return nil
		}
		v.pc = st.in.Next()
		v.fire(after, st.in, AfterInst)
	}
	if res == stepNext {
		v.pc = st.in.Next()
	}
	return nil
}

func stepNop(*VM) (stepRes, error) { return stepNext, nil }

// compileStep translates one instruction into an operation thunk with
// operands pre-resolved. Thunks replicate exec() exactly, including trap
// PC fidelity: any thunk that can trap restores v.pc to the
// instruction's address first, because the interpreter traps with the
// current instruction's PC.
func compileStep(in *isa.Inst) func(*VM) (stepRes, error) {
	addr := in.Addr
	next := in.Next()
	switch in.Op {
	case isa.Nop:
		return stepNop
	case isa.Mov:
		d := in.Ops[0].Reg
		switch in.Ops[1].Kind {
		case isa.KindReg:
			s := in.Ops[1].Reg
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[s]; return stepNext, nil }
		case isa.KindImm:
			c := uint64(in.Ops[1].Imm)
			return func(v *VM) (stepRes, error) { v.regs[d] = c; return stepNext, nil }
		}
	case isa.Load:
		d, b, o := in.Ops[0].Reg, in.Ops[1].Base, uint64(in.Ops[1].Off)
		return func(v *VM) (stepRes, error) { v.regs[d] = v.mem.Read64(v.regs[b] + o); return stepNext, nil }
	case isa.Store:
		s, b, o := in.Ops[0].Reg, in.Ops[1].Base, uint64(in.Ops[1].Off)
		return func(v *VM) (stepRes, error) { v.mem.Write64(v.regs[b]+o, v.regs[s]); return stepNext, nil }
	case isa.Add, isa.Sub, isa.Mul, isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr:
		if f := compileALU(in); f != nil {
			return f
		}
	case isa.Div, isa.Rem:
		if f := compileDivRem(in); f != nil {
			return f
		}
	case isa.GetPtr:
		d, b := in.Ops[0].Reg, in.Ops[1].Reg
		disp := uint64(in.Ops[3].Imm)
		switch in.Ops[2].Kind {
		case isa.KindReg:
			i := in.Ops[2].Reg
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[b] + v.regs[i] + disp; return stepNext, nil }
		case isa.KindImm:
			k := uint64(in.Ops[2].Imm) + disp
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[b] + k; return stepNext, nil }
		}
	case isa.Branch:
		if in.Cond != isa.Always {
			cond := in.Cond
			r0, r1 := in.Ops[0].Reg, in.Ops[1].Reg
			tgt := uint64(in.Ops[2].Imm)
			return func(v *VM) (stepRes, error) {
				if cond.Holds(int64(v.regs[r0]), int64(v.regs[r1])) {
					v.pc = tgt
				} else {
					v.pc = next
				}
				return stepJump, nil
			}
		}
		if in.Ops[0].Kind == isa.KindReg {
			r := in.Ops[0].Reg
			return func(v *VM) (stepRes, error) { v.pc = v.regs[r]; return stepJump, nil }
		}
		tgt := uint64(in.Ops[0].Imm)
		return func(v *VM) (stepRes, error) { v.pc = tgt; return stepJump, nil }
	case isa.Call:
		if in.Ops[0].Kind == isa.KindReg {
			r := in.Ops[0].Reg
			return func(v *VM) (stepRes, error) { return v.stepCall(addr, next, v.regs[r]) }
		}
		tgt := uint64(in.Ops[0].Imm)
		return func(v *VM) (stepRes, error) { return v.stepCall(addr, next, tgt) }
	case isa.Return:
		return func(v *VM) (stepRes, error) {
			sp := v.regs[isa.SP]
			v.pc = v.mem.Read64(sp)
			v.regs[isa.SP] = sp + 8
			if n := len(v.blockStack); n > 0 {
				v.curBlock = v.blockStack[n-1].addr
				v.ctx.block = v.blockStack[n-1].blk
				v.blockStack = v.blockStack[:n-1]
			} else {
				v.curBlock = 0
				v.ctx.block = nil
			}
			if v.depth > 0 {
				v.depth--
			}
			return stepJump, nil
		}
	case isa.Halt:
		return func(v *VM) (stepRes, error) {
			v.pc = addr
			v.halted = true
			return stepJump, nil
		}
	}
	// Fallback for operand shapes with no specialized thunk: run the
	// instruction through the reference interpreter step, which sets
	// v.pc itself (so the thunk always reports a jump).
	return func(v *VM) (stepRes, error) {
		v.pc = addr
		if err := v.exec(in); err != nil {
			return stepJump, err
		}
		return stepJump, nil
	}
}

// stepCall is the shared body of call thunks: intrinsic dispatch, stack
// push, depth accounting and edge suppression, as in exec().
func (v *VM) stepCall(addr, next, target uint64) (stepRes, error) {
	v.pc = addr
	if obj.IsIntrinsic(target) {
		if err := v.intrinsic(target); err != nil {
			return stepJump, err
		}
		v.pc = next
		return stepJump, nil
	}
	sp := v.regs[isa.SP] - 8
	v.regs[isa.SP] = sp
	v.mem.Write64(sp, next)
	v.blockStack = append(v.blockStack, frameBlock{v.curBlock, v.ctx.block})
	v.depth++
	if v.depth > 100000 {
		return stepJump, v.trap("call depth exceeded")
	}
	v.pc = target
	v.suppressEdge = true
	return stepJump, nil
}

// compileALU specializes the non-trapping ALU opcodes on the right-hand
// operand kind; it returns nil for shapes the generic fallback handles.
func compileALU(in *isa.Inst) func(*VM) (stepRes, error) {
	d, a := in.Ops[0].Reg, in.Ops[1].Reg
	switch in.Ops[2].Kind {
	case isa.KindReg:
		b := in.Ops[2].Reg
		switch in.Op {
		case isa.Add:
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[a] + v.regs[b]; return stepNext, nil }
		case isa.Sub:
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[a] - v.regs[b]; return stepNext, nil }
		case isa.Mul:
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[a] * v.regs[b]; return stepNext, nil }
		case isa.And:
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[a] & v.regs[b]; return stepNext, nil }
		case isa.Or:
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[a] | v.regs[b]; return stepNext, nil }
		case isa.Xor:
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[a] ^ v.regs[b]; return stepNext, nil }
		case isa.Shl:
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[a] << (v.regs[b] & 63); return stepNext, nil }
		case isa.Shr:
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[a] >> (v.regs[b] & 63); return stepNext, nil }
		}
	case isa.KindImm:
		c := uint64(in.Ops[2].Imm)
		switch in.Op {
		case isa.Add:
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[a] + c; return stepNext, nil }
		case isa.Sub:
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[a] - c; return stepNext, nil }
		case isa.Mul:
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[a] * c; return stepNext, nil }
		case isa.And:
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[a] & c; return stepNext, nil }
		case isa.Or:
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[a] | c; return stepNext, nil }
		case isa.Xor:
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[a] ^ c; return stepNext, nil }
		case isa.Shl:
			sh := c & 63
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[a] << sh; return stepNext, nil }
		case isa.Shr:
			sh := c & 63
			return func(v *VM) (stepRes, error) { v.regs[d] = v.regs[a] >> sh; return stepNext, nil }
		}
	}
	return nil
}

// compileDivRem specializes Div and Rem, which trap on a zero divisor
// with the instruction's own PC, as the interpreter does.
func compileDivRem(in *isa.Inst) func(*VM) (stepRes, error) {
	addr := in.Addr
	d, a := in.Ops[0].Reg, in.Ops[1].Reg
	isRem := in.Op == isa.Rem
	var divisor func(*VM) uint64
	switch in.Ops[2].Kind {
	case isa.KindReg:
		r := in.Ops[2].Reg
		divisor = func(v *VM) uint64 { return v.regs[r] }
	case isa.KindImm:
		c := uint64(in.Ops[2].Imm)
		divisor = func(*VM) uint64 { return c }
	default:
		return nil
	}
	return func(v *VM) (stepRes, error) {
		b := divisor(v)
		if b == 0 {
			v.pc = addr
			return stepJump, v.trap("division by zero")
		}
		if isRem {
			v.regs[d] = uint64(int64(v.regs[a]) % int64(b))
		} else {
			v.regs[d] = uint64(int64(v.regs[a]) / int64(b))
		}
		return stepNext, nil
	}
}
