package compile

// The lowering pass: every AST statement and expression becomes one
// pre-bound closure. Lowering mirrors the tree-walking interpreter
// (internal/core/interp) exactly — same evaluation order, same coercions,
// same runtime error messages and positions — so that switching a tool
// between execution paths is unobservable. Where the interpreter resolves
// a name or a declared type per evaluation, lowering resolves it once and
// bakes the slot index or *types.Type into the closure.

import (
	"fmt"
	"strings"

	"repro/internal/core/ast"
	"repro/internal/core/interp"
	"repro/internal/core/token"
	"repro/internal/core/types"
	"repro/internal/core/value"
	"repro/internal/isa"
)

func errf(pos token.Pos, format string, args ...any) error {
	return &interp.RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *compiler) compileStmts(stmts []ast.Stmt) []stmtFn {
	out := make([]stmtFn, 0, len(stmts))
	for _, s := range stmts {
		out = append(out, c.compileStmt(s))
	}
	return out
}

func (c *compiler) compileStmt(s ast.Stmt) stmtFn {
	switch st := s.(type) {
	case *ast.DeclStmt:
		return c.compileDecl(st.Decl)
	case *ast.AssignStmt:
		return c.compileAssign(st)
	case *ast.ExprStmt:
		x := c.compileExpr(st.X)
		return func(fr *frame) error {
			_, err := x(fr)
			return err
		}
	case *ast.IfStmt:
		cond := c.compileExpr(st.Cond)
		c.pushScope()
		then := c.compileStmts(st.Then)
		c.popScope()
		c.pushScope()
		els := c.compileStmts(st.Else)
		c.popScope()
		return func(fr *frame) error {
			v, err := cond(fr)
			if err != nil {
				return err
			}
			branch := then
			if !v.AsBool() {
				branch = els
			}
			for _, f := range branch {
				if err := f(fr); err != nil {
					return err
				}
			}
			return nil
		}
	case *ast.ForStmt:
		// The for header lives in its own scope; the body opens another
		// one per iteration (re-declarations re-initialize their slots).
		c.pushScope()
		var init stmtFn
		if st.Init != nil {
			init = c.compileStmt(st.Init)
		}
		var cond exprFn
		if st.Cond != nil {
			cond = c.compileExpr(st.Cond)
		}
		c.pushScope()
		body := c.compileStmts(st.Body)
		c.popScope()
		var post stmtFn
		if st.Post != nil {
			post = c.compileStmt(st.Post)
		}
		c.popScope()
		pos := st.P
		return func(fr *frame) error {
			if init != nil {
				if err := init(fr); err != nil {
					return err
				}
			}
			for iters := 0; ; iters++ {
				if iters >= interp.MaxLoopIters {
					return errf(pos, "for statement exceeded %d iterations", interp.MaxLoopIters)
				}
				if cond != nil {
					v, err := cond(fr)
					if err != nil {
						return err
					}
					if !v.AsBool() {
						return nil
					}
				}
				for _, f := range body {
					if err := f(fr); err != nil {
						return err
					}
				}
				if post != nil {
					if err := post(fr); err != nil {
						return err
					}
				}
			}
		}
	}
	pos := s.Pos()
	return func(*frame) error { return errf(pos, "invalid statement") }
}

func (c *compiler) compileDecl(d *ast.VarDecl) stmtFn {
	t := c.info.DeclTypes[d]
	if t == nil {
		pos, name := d.P, d.Name
		return func(*frame) error {
			return errf(pos, "internal: declaration %s has no type", name)
		}
	}
	// The initializer is compiled before the name is defined: a
	// declaration cannot reference itself, it sees the outer binding.
	if d.Init != nil && t.IsNumeric() {
		if ifn := c.compileIntExpr(d.Init); ifn != nil {
			idx := c.defineLocal(d.Name)
			return func(fr *frame) error {
				n, err := ifn(fr)
				if err != nil {
					return err
				}
				fr.locals[idx] = value.Value{Kind: value.KInt, Int: n}
				return nil
			}
		}
	}
	var initFn exprFn
	if d.Init != nil {
		initFn = c.compileExpr(d.Init)
	}
	idx := c.defineLocal(d.Name)
	if initFn == nil {
		return func(fr *frame) error {
			fr.locals[idx] = interp.ZeroValue(t)
			return nil
		}
	}
	return func(fr *frame) error {
		iv, err := initFn(fr)
		if err != nil {
			return err
		}
		fr.locals[idx] = interp.Convert(iv, t)
		return nil
	}
}

func (c *compiler) compileAssign(st *ast.AssignStmt) stmtFn {
	// Numeric-typed scalar assignment is the hot statement of every
	// counting tool; when the RHS lowers to the scalar tier, Convert
	// (IntVal of AsInt for numeric types) collapses into boxing the
	// already-coerced int64 straight into the slot.
	if lhs, ok := st.LHS.(*ast.Ident); ok {
		if t := c.info.Types[st.LHS]; t != nil && t.IsNumeric() {
			if sl, ok := c.resolve(lhs.Name); ok {
				if ifn := c.compileIntExpr(st.RHS); ifn != nil {
					idx := sl.idx
					if sl.local {
						return func(fr *frame) error {
							n, err := ifn(fr)
							if err != nil {
								return err
							}
							fr.locals[idx] = value.Value{Kind: value.KInt, Int: n}
							return nil
						}
					}
					return func(fr *frame) error {
						n, err := ifn(fr)
						if err != nil {
							return err
						}
						*fr.cells[idx] = value.Value{Kind: value.KInt, Int: n}
						return nil
					}
				}
			}
		}
	}
	// The RHS evaluates before the target resolves, as in the interpreter.
	rhs := c.compileExpr(st.RHS)
	switch lhs := st.LHS.(type) {
	case *ast.Ident:
		t := c.info.Types[st.LHS]
		sl, ok := c.resolve(lhs.Name)
		if !ok {
			pos, name := lhs.P, lhs.Name
			return func(fr *frame) error {
				if _, err := rhs(fr); err != nil {
					return err
				}
				return errf(pos, "undefined: %s", name)
			}
		}
		idx := sl.idx
		switch {
		case sl.local && t != nil:
			return func(fr *frame) error {
				v, err := rhs(fr)
				if err != nil {
					return err
				}
				fr.locals[idx] = interp.Convert(v, t)
				return nil
			}
		case sl.local:
			return func(fr *frame) error {
				v, err := rhs(fr)
				if err != nil {
					return err
				}
				fr.locals[idx] = v
				return nil
			}
		case t != nil:
			return func(fr *frame) error {
				v, err := rhs(fr)
				if err != nil {
					return err
				}
				*fr.cells[idx] = interp.Convert(v, t)
				return nil
			}
		default:
			return func(fr *frame) error {
				v, err := rhs(fr)
				if err != nil {
					return err
				}
				*fr.cells[idx] = v
				return nil
			}
		}
	case *ast.IndexExpr:
		base := c.compileExpr(lhs.X)
		index := c.compileExpr(lhs.Index)
		elemT := c.elemTypeOf(lhs.X)
		pos := lhs.P
		return func(fr *frame) error {
			rv, err := rhs(fr)
			if err != nil {
				return err
			}
			bv, err := base(fr)
			if err != nil {
				return err
			}
			iv, err := index(fr)
			if err != nil {
				return err
			}
			switch bv.Kind {
			case value.KDict:
				bv.Dict.Set(iv, interp.Convert(rv, elemT))
				return nil
			case value.KArray:
				i := iv.AsInt()
				if i < 0 || i >= int64(len(bv.Arr.Elems)) {
					return errf(pos, "array index %d out of range [0,%d)", i, len(bv.Arr.Elems))
				}
				bv.Arr.Elems[i] = interp.Convert(rv, elemT)
				return nil
			case value.KVector:
				i := iv.AsInt()
				if i < 0 || i >= int64(len(bv.Vec.Elems)) {
					return errf(pos, "vector index %d out of range [0,%d)", i, len(bv.Vec.Elems))
				}
				bv.Vec.Elems[i] = interp.Convert(rv, elemT)
				return nil
			}
			return errf(pos, "value is not indexable")
		}
	}
	pos := st.P
	return func(fr *frame) error {
		if _, err := rhs(fr); err != nil {
			return err
		}
		return errf(pos, "invalid assignment target")
	}
}

func (c *compiler) elemTypeOf(base ast.Expr) *types.Type {
	if t := c.info.Types[base]; t != nil && t.Elem != nil {
		return t.Elem
	}
	return types.Basic(types.Int)
}

func constFn(v value.Value) exprFn {
	return func(*frame) (value.Value, error) { return v, nil }
}

func errFn(pos token.Pos, format string, args ...any) exprFn {
	err := errf(pos, format, args...)
	return func(*frame) (value.Value, error) { return value.Null, err }
}

func (c *compiler) compileExpr(e ast.Expr) exprFn {
	switch x := e.(type) {
	case *ast.IntLit:
		return constFn(value.IntVal(x.Val))
	case *ast.StringLit:
		return constFn(value.StrVal(x.Val))
	case *ast.CharLit:
		return constFn(value.IntVal(int64(x.Val)))
	case *ast.BoolLit:
		return constFn(value.BoolVal(x.Val))
	case *ast.NullLit:
		return constFn(value.Null)
	case *ast.OpcodeLit:
		op, ok := interp.OpcodeFromName(x.Name)
		if !ok {
			return errFn(x.P, "unknown opcode %s", x.Name)
		}
		return constFn(value.OpcodeVal(op))
	case *ast.Ident:
		sl, ok := c.resolve(x.Name)
		if !ok {
			return errFn(x.P, "undefined: %s", x.Name)
		}
		idx := sl.idx
		if sl.local {
			return func(fr *frame) (value.Value, error) { return fr.locals[idx], nil }
		}
		return func(fr *frame) (value.Value, error) { return *fr.cells[idx], nil }
	case *ast.FieldExpr:
		return c.compileField(x)
	case *ast.IndexExpr:
		base := c.compileExpr(x.X)
		index := c.compileExpr(x.Index)
		pos := x.P
		return func(fr *frame) (value.Value, error) {
			bv, err := base(fr)
			if err != nil {
				return value.Null, err
			}
			iv, err := index(fr)
			if err != nil {
				return value.Null, err
			}
			switch bv.Kind {
			case value.KDict:
				return bv.Dict.Get(iv), nil
			case value.KVector:
				return bv.Vec.Get(iv.AsInt()), nil
			case value.KArray:
				i := iv.AsInt()
				if i < 0 || i >= int64(len(bv.Arr.Elems)) {
					return value.Null, errf(pos, "array index %d out of range [0,%d)", i, len(bv.Arr.Elems))
				}
				return bv.Arr.Elems[i], nil
			}
			return value.Null, errf(pos, "value is not indexable")
		}
	case *ast.CallExpr:
		return c.compileCall(x)
	case *ast.IsTypeExpr:
		sub := c.compileExpr(x.X)
		var want isa.OperandKind
		switch x.OpType {
		case token.KMEM:
			want = isa.KindMem
		case token.KREG:
			want = isa.KindReg
		case token.KCONST:
			want = isa.KindImm
		}
		pos := x.P
		return func(fr *frame) (value.Value, error) {
			v, err := sub(fr)
			if err != nil {
				return value.Null, err
			}
			if v.Kind != value.KOperand {
				return value.Null, errf(pos, "IsType requires an operand")
			}
			return value.BoolVal(v.Opnd.Kind == want), nil
		}
	case *ast.UnaryExpr:
		sub := c.compileExpr(x.X)
		switch x.Op {
		case token.NOT:
			return func(fr *frame) (value.Value, error) {
				v, err := sub(fr)
				if err != nil {
					return value.Null, err
				}
				return value.BoolVal(!v.AsBool()), nil
			}
		case token.MINUS:
			return func(fr *frame) (value.Value, error) {
				v, err := sub(fr)
				if err != nil {
					return value.Null, err
				}
				return value.IntVal(-v.AsInt()), nil
			}
		}
		pos := x.P
		return func(fr *frame) (value.Value, error) {
			if _, err := sub(fr); err != nil {
				return value.Null, err
			}
			return value.Null, errf(pos, "invalid unary operator")
		}
	case *ast.BinaryExpr:
		return c.compileBinary(x)
	}
	return errFn(e.Pos(), "invalid expression")
}

func (c *compiler) compileField(x *ast.FieldExpr) exprFn {
	if c.info.DynamicExprs[x] {
		id, ok := x.X.(*ast.Ident)
		if !ok {
			return errFn(x.P, "internal: dynamic attribute on non-identifier")
		}
		attr := strings.ToLower(x.Name)
		key := id.Name + "." + attr
		idx, ok := c.dynSlot(id.Name, attr)
		if !ok {
			// No slot: the body has no probe context for this attribute
			// (an init/exit block, or a mismatched CFE variable).
			return errFn(x.P, "dynamic attribute %s not materialized (is this running outside a probe?)", key)
		}
		pos := x.P
		return func(fr *frame) (value.Value, error) {
			if idx >= len(fr.dyn) {
				return value.Null, errf(pos, "dynamic attribute %s not materialized (is this running outside a probe?)", key)
			}
			return fr.dyn[idx], nil
		}
	}
	base := c.compileExpr(x.X)
	pos, name := x.P, x.Name
	return func(fr *frame) (value.Value, error) {
		bv, err := base(fr)
		if err != nil {
			return value.Null, err
		}
		if bv.Kind != value.KCFE {
			return value.Null, errf(pos, "value has no attributes")
		}
		return interp.StaticAttr(bv.CFE, name)
	}
}

func (c *compiler) compileCall(x *ast.CallExpr) exprFn {
	switch fun := x.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "print":
			args := make([]exprFn, len(x.Args))
			for i, a := range x.Args {
				args[i] = c.compileExpr(a)
			}
			return func(fr *frame) (value.Value, error) {
				parts := make([]string, 0, len(args))
				for _, a := range args {
					v, err := a(fr)
					if err != nil {
						return value.Null, err
					}
					parts = append(parts, v.String())
				}
				fmt.Fprintln(fr.out, strings.Join(parts, " "))
				return value.Value{}, nil
			}
		case "writeToFile":
			file := c.compileExpr(x.Args[0])
			val := c.compileExpr(x.Args[1])
			pos := x.P
			return func(fr *frame) (value.Value, error) {
				fv, err := file(fr)
				if err != nil {
					return value.Null, err
				}
				vv, err := val(fr)
				if err != nil {
					return value.Null, err
				}
				if fv.Kind != value.KFile {
					return value.Null, errf(pos, "writeToFile requires a file")
				}
				fv.File.WriteLine(vv.String())
				return value.Value{}, nil
			}
		}
		return errFn(x.P, "unknown function %q", fun.Name)
	case *ast.FieldExpr:
		return c.compileMethod(x, fun)
	}
	return errFn(x.P, "invalid call")
}

// compileMethod lowers recv.method(args). The method name is static, so
// each name gets its own closure; the receiver's kind stays a runtime
// dispatch, as in the interpreter.
func (c *compiler) compileMethod(x *ast.CallExpr, fun *ast.FieldExpr) exprFn {
	recv := c.compileExpr(fun.X)
	pos, name := x.P, fun.Name
	var arg0 exprFn
	if len(x.Args) > 0 {
		arg0 = c.compileExpr(x.Args[0])
	}
	elemT := c.elemTypeOf(fun.X)
	switch name {
	case "add":
		return func(fr *frame) (value.Value, error) {
			rv, err := recv(fr)
			if err != nil {
				return value.Null, err
			}
			if rv.Kind != value.KVector {
				return value.Null, errf(pos, "invalid method %q", name)
			}
			v, err := arg0(fr)
			if err != nil {
				return value.Null, err
			}
			rv.Vec.Add(interp.Convert(v, elemT))
			return value.Value{}, nil
		}
	case "has":
		return func(fr *frame) (value.Value, error) {
			rv, err := recv(fr)
			if err != nil {
				return value.Null, err
			}
			switch rv.Kind {
			case value.KVector:
				v, err := arg0(fr)
				if err != nil {
					return value.Null, err
				}
				return value.BoolVal(rv.Vec.Has(interp.Convert(v, elemT))), nil
			case value.KDict:
				v, err := arg0(fr)
				if err != nil {
					return value.Null, err
				}
				return value.BoolVal(rv.Dict.Has(v)), nil
			}
			return value.Null, errf(pos, "invalid method %q", name)
		}
	case "size":
		return func(fr *frame) (value.Value, error) {
			rv, err := recv(fr)
			if err != nil {
				return value.Null, err
			}
			switch rv.Kind {
			case value.KVector:
				return value.IntVal(int64(len(rv.Vec.Elems))), nil
			case value.KDict:
				return value.IntVal(int64(rv.Dict.Len())), nil
			}
			return value.Null, errf(pos, "invalid method %q", name)
		}
	case "getline":
		return func(fr *frame) (value.Value, error) {
			rv, err := recv(fr)
			if err != nil {
				return value.Null, err
			}
			if rv.Kind != value.KFile {
				return value.Null, errf(pos, "invalid method %q", name)
			}
			return rv.File.GetLine(), nil
		}
	}
	return func(fr *frame) (value.Value, error) {
		if _, err := recv(fr); err != nil {
			return value.Null, err
		}
		return value.Null, errf(pos, "invalid method %q", name)
	}
}

func (c *compiler) compileBinary(x *ast.BinaryExpr) exprFn {
	// Arithmetic results are IntVal(f(l.AsInt(), r.AsInt())) by
	// definition, so when the whole subtree lowers to the scalar tier the
	// generic consumer just boxes the final int64 (one Value instead of
	// one per closure boundary).
	if ifn := c.compileIntExpr(x); ifn != nil {
		return func(fr *frame) (value.Value, error) {
			n, err := ifn(fr)
			if err != nil {
				return value.Null, err
			}
			return value.IntVal(n), nil
		}
	}
	l := c.compileExpr(x.X)
	// Short-circuit logical operators compile the right operand but only
	// evaluate it when the left doesn't decide.
	if x.Op == token.LAND || x.Op == token.LOR {
		r := c.compileExpr(x.Y)
		if x.Op == token.LAND {
			return func(fr *frame) (value.Value, error) {
				lv, err := l(fr)
				if err != nil {
					return value.Null, err
				}
				if !lv.AsBool() {
					return value.BoolVal(false), nil
				}
				rv, err := r(fr)
				if err != nil {
					return value.Null, err
				}
				return value.BoolVal(rv.AsBool()), nil
			}
		}
		return func(fr *frame) (value.Value, error) {
			lv, err := l(fr)
			if err != nil {
				return value.Null, err
			}
			if lv.AsBool() {
				return value.BoolVal(true), nil
			}
			rv, err := r(fr)
			if err != nil {
				return value.Null, err
			}
			return value.BoolVal(rv.AsBool()), nil
		}
	}
	r := c.compileExpr(x.Y)
	pos := x.P
	switch x.Op {
	case token.EQ:
		return func(fr *frame) (value.Value, error) {
			lv, rv, err := evalPair(fr, l, r)
			if err != nil {
				return value.Null, err
			}
			return value.BoolVal(value.Equal(lv, rv)), nil
		}
	case token.NEQ:
		return func(fr *frame) (value.Value, error) {
			lv, rv, err := evalPair(fr, l, r)
			if err != nil {
				return value.Null, err
			}
			return value.BoolVal(!value.Equal(lv, rv)), nil
		}
	case token.LT, token.LE, token.GT, token.GE:
		op := x.Op
		return func(fr *frame) (value.Value, error) {
			lv, rv, err := evalPair(fr, l, r)
			if err != nil {
				return value.Null, err
			}
			if lv.Kind == value.KString && rv.Kind == value.KString {
				return value.BoolVal(orderedCmp(op, strings.Compare(lv.Str, rv.Str))), nil
			}
			a, b := lv.AsInt(), rv.AsInt()
			switch {
			case a < b:
				return value.BoolVal(orderedCmp(op, -1)), nil
			case a > b:
				return value.BoolVal(orderedCmp(op, 1)), nil
			default:
				return value.BoolVal(orderedCmp(op, 0)), nil
			}
		}
	case token.PLUS:
		return intBinOp(l, r, func(a, b int64) value.Value { return value.IntVal(a + b) })
	case token.MINUS:
		return intBinOp(l, r, func(a, b int64) value.Value { return value.IntVal(a - b) })
	case token.STAR:
		return intBinOp(l, r, func(a, b int64) value.Value { return value.IntVal(a * b) })
	case token.AMP:
		return intBinOp(l, r, func(a, b int64) value.Value { return value.IntVal(a & b) })
	case token.PIPE:
		return intBinOp(l, r, func(a, b int64) value.Value { return value.IntVal(a | b) })
	case token.CARET:
		return intBinOp(l, r, func(a, b int64) value.Value { return value.IntVal(a ^ b) })
	case token.SHL:
		return intBinOp(l, r, func(a, b int64) value.Value { return value.IntVal(a << (uint64(b) & 63)) })
	case token.SHR:
		return intBinOp(l, r, func(a, b int64) value.Value { return value.IntVal(int64(uint64(a) >> (uint64(b) & 63))) })
	case token.SLASH:
		return func(fr *frame) (value.Value, error) {
			lv, rv, err := evalPair(fr, l, r)
			if err != nil {
				return value.Null, err
			}
			a, b := lv.AsInt(), rv.AsInt()
			if b == 0 {
				return value.Null, errf(pos, "division by zero")
			}
			return value.IntVal(a / b), nil
		}
	case token.PERCENT:
		return func(fr *frame) (value.Value, error) {
			lv, rv, err := evalPair(fr, l, r)
			if err != nil {
				return value.Null, err
			}
			a, b := lv.AsInt(), rv.AsInt()
			if b == 0 {
				return value.Null, errf(pos, "division by zero")
			}
			return value.IntVal(a % b), nil
		}
	}
	return func(fr *frame) (value.Value, error) {
		if _, _, err := evalPair(fr, l, r); err != nil {
			return value.Null, err
		}
		return value.Null, errf(pos, "invalid operator")
	}
}

func evalPair(fr *frame, l, r exprFn) (value.Value, value.Value, error) {
	lv, err := l(fr)
	if err != nil {
		return value.Null, value.Null, err
	}
	rv, err := r(fr)
	if err != nil {
		return value.Null, value.Null, err
	}
	return lv, rv, nil
}

func intBinOp(l, r exprFn, op func(a, b int64) value.Value) exprFn {
	return func(fr *frame) (value.Value, error) {
		lv, rv, err := evalPair(fr, l, r)
		if err != nil {
			return value.Null, err
		}
		return op(lv.AsInt(), rv.AsInt()), nil
	}
}

func orderedCmp(op token.Kind, cmp int) bool {
	switch op {
	case token.LT:
		return cmp < 0
	case token.LE:
		return cmp <= 0
	case token.GT:
		return cmp > 0
	case token.GE:
		return cmp >= 0
	}
	return false
}
