// Package placement defines the backend-neutral probe-placement rule IR.
//
// engine.Instrument compiles a Cinnamon tool into a RuleSet — one Rule
// per concrete (trigger point, action instance) placement — and every
// backend lowers that same table onto its substrate through the
// engine.Placer Lower method. The IR is where cross-backend
// optimization lives: the passes in this package (where-clause
// hoisting, counter promotion, redundant-probe coalescing; see Apply)
// are written once and run identically for janus, dyninst and pin,
// with their effects measured per-backend through the existing
// attribution table.
//
// The IR is observability-neutral by construction: a pass may only
// rewrite the table into a form whose execution is bit-identical in
// every observable (fires, cycles, skips, output, per-row attribution)
// to the unoptimized table; wins land in host wall-clock only. Merged
// probes keep per-constituent attribution via vm.Share rows, and
// deferred where clauses evaluate against by-value CFE snapshots so
// later analysis-time mutation cannot change the outcome.
package placement

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cfg"
	"repro/internal/core/ast"
	"repro/internal/core/sem"
	"repro/internal/core/value"
	"repro/internal/isa"
	"repro/internal/vm"
)

// Trigger says when a rule's probe fires relative to its site.
type Trigger uint8

const (
	// Before fires ahead of one instruction (Rule.Inst).
	Before Trigger = iota
	// After fires behind one instruction, on the fallthrough edge.
	After
	// BlockEntry fires when control enters a basic block.
	BlockEntry
	// Edge fires when control crosses one CFG edge (Rule.From →
	// Rule.Block).
	Edge
)

func (t Trigger) String() string {
	switch t {
	case Before:
		return "before"
	case After:
		return "after"
	case BlockEntry:
		return "block-entry"
	case Edge:
		return "edge"
	}
	return fmt.Sprintf("trigger(%d)", uint8(t))
}

// Mechanism is the dispatch tier a rule has been promoted to. The
// zero value is the fully generic clean-call path; the passes upgrade
// rules whose actions expose a fast lowering. Backends must treat the
// mechanism as a ceiling, not a demand: lowering a Counter rule
// through the generic path is always observably correct.
type Mechanism uint8

const (
	// MechGeneric dispatches through the action's full executor.
	MechGeneric Mechanism = iota
	// MechFast dispatches through the compiled fast thunk.
	MechFast
	// MechCounter is a pure counter bump: each firing is equivalent,
	// in every observable, to Flush(Delta), so the VM may accumulate
	// block-locally and flush at observation points.
	MechCounter
)

func (m Mechanism) String() string {
	switch m {
	case MechGeneric:
		return "generic"
	case MechFast:
		return "fast"
	case MechCounter:
		return "counter"
	}
	return fmt.Sprintf("mechanism(%d)", uint8(m))
}

// InlineInfo describes an action's compiled fast path (see
// internal/core/compile's whole-body fast tier).
type InlineInfo struct {
	// Exec is the specialized executor: observably identical to
	// Action.Exec — same stores, same output, same error recording.
	Exec func(dyn []value.Value)
	// RawFast is a pre-bound native fast path (janus native tools
	// supply it; Cinnamon actions leave it nil and Exec is wrapped).
	RawFast vm.ProbeFn
	// Counter marks a pure counter-bump body: each firing is
	// equivalent, in every observable, to Flush(Delta). Counter
	// actions read no dynamic attributes and cannot fail.
	Counter bool
	Delta   int64
	Flush   func(n int64)
	// Cell identifies the counter's storage when the bump targets a
	// shared global slot (nil for captured-local counters, which are
	// private per placement). Two rules with the same non-nil Cell
	// bump the same storage, which is what lets the coalescing pass
	// merge them into one accumulated Counter spec.
	Cell *value.Value
}

// Action is a compiled action instance ready for placement: an
// executable closure over the captured analysis data, plus the
// metadata a backend needs to price and marshal it. Cost is the body
// cost only — backends add their own call-glue constant when pricing
// a dispatch, so one Action lowers onto every substrate.
type Action struct {
	// Label identifies the action in observability reports: canonical
	// trigger, target CFE type and source position, e.g. "before inst
	// @7:3". Stable across backends so attribution tables line up.
	Label string
	// Cost is the modeled body cost in cycles (no dispatch glue).
	Cost uint64
	// Simple marks bodies cheap enough for inlined dispatch on
	// frameworks that price the two tiers differently (janus).
	Simple bool
	// Sample is the language-level sampling stride (0 or 1 = every
	// firing).
	Sample uint64
	// DynAttrs are the dynamic attributes the body reads, one
	// argument slot each, in order.
	DynAttrs []sem.DynAttr
	// NumCaptured is the number of scalar analysis values captured
	// into the closure (the data a real backend would pass as
	// callback arguments).
	NumCaptured int
	// Exec runs the action body with the materialized dynamic
	// attribute values, one slot per DynAttrs entry in that order
	// (nil when the action reads no dynamic attributes).
	Exec func(dyn []value.Value)
	// Raw, when non-nil, is a pre-bound machine-context executor and
	// takes precedence over Exec (janus native tools dispatch through
	// it; Cinnamon actions leave it nil).
	Raw vm.ProbeFn
	// Inline, when non-nil, describes the fast-lowering surface.
	Inline *InlineInfo
}

// CtxExec adapts the action to a machine-context probe function,
// materializing dynamic attributes through ResolveDynAttr into a
// per-placement buffer reused across firings.
func (a *Action) CtxExec() vm.ProbeFn {
	if a.Raw != nil {
		return a.Raw
	}
	exec := a.Exec
	if len(a.DynAttrs) == 0 {
		return func(c *vm.Ctx) { exec(nil) }
	}
	attrs := a.DynAttrs
	buf := make([]value.Value, len(attrs))
	return func(c *vm.Ctx) {
		for i, da := range attrs {
			buf[i] = value.UintVal(ResolveDynAttr(c, da.Attr))
		}
		exec(buf)
	}
}

// fastCtx adapts the action's fast thunk to a machine-context probe
// function (the vm.ProbeSpec callback).
func (a *Action) fastCtx() vm.ProbeFn {
	il := a.Inline
	if il.RawFast != nil {
		return il.RawFast
	}
	exec := il.Exec
	if len(a.DynAttrs) == 0 {
		return func(c *vm.Ctx) { exec(nil) }
	}
	attrs := a.DynAttrs
	buf := make([]value.Value, len(attrs))
	return func(c *vm.Ctx) {
		for i, da := range attrs {
			buf[i] = value.UintVal(ResolveDynAttr(c, da.Attr))
		}
		exec(buf)
	}
}

// ResolveDynAttr materializes a dynamic attribute value from the
// machine context: the framework-independent accessor behind
// Cinnamon's uniform dot-operator interface.
func ResolveDynAttr(c *vm.Ctx, attr string) uint64 {
	switch attr {
	case "memaddr", "srcaddr", "dstaddr":
		v, _ := c.MemAddr()
		return v
	case "rtnval":
		return c.RetVal()
	case "trgaddr":
		v, _ := c.Target()
		return v
	}
	if strings.HasPrefix(attr, "arg") {
		if n, err := strconv.Atoi(attr[3:]); err == nil && n >= 1 && n <= isa.MaxArgRegs {
			return c.CallArg(n)
		}
	}
	return 0
}

// WhereGroup is one action instance's deferred static where clause,
// shared by every rule that instance emitted. The predicate closure
// evaluates against a by-value snapshot of the CFE variables it
// references, taken at emission time, so analysis-time mutation after
// emission cannot change the outcome: hoisting is observably
// identical to eager evaluation.
type WhereGroup struct {
	// Eval runs the predicate once; the hoisting pass caches the
	// outcome for the whole group.
	Eval func() (bool, error)

	resolved bool
	keep     bool
}

// Rule is one concrete probe placement: a trigger point in the victim
// CFG plus the action instance to run there. A merged rule (from the
// coalescing pass) carries its constituents in Merged and has a nil
// Group; its Action describes the fused execution while observability
// attribution stays per-constituent.
type Rule struct {
	Trigger Trigger
	// Inst is the site instruction (Before/After); nil for
	// BlockEntry and Edge rules.
	Inst *isa.Inst
	// Block is the site block: the containing block for Before/After,
	// the entered block for BlockEntry, the destination for Edge.
	Block *cfg.Block
	// From is the source block of an Edge rule (nil otherwise).
	From *cfg.Block
	// Action is the compiled action instance to dispatch.
	Action *Action
	// Mechanism is the dispatch tier (set by the promotion pass;
	// MechGeneric when the passes have not run).
	Mechanism Mechanism
	// Where is the deferred static where expression (printer only;
	// nil when the clause was evaluated eagerly or absent).
	Where ast.Expr
	// Group resolves the deferred where clause for this rule's action
	// instance (nil when none).
	Group *WhereGroup
	// Merged holds the constituent rules of a coalesced probe, in
	// execution order. Non-nil only on rules produced by the
	// coalescing pass.
	Merged []*Rule
}

// Spec builds a fresh vm.ProbeSpec for one installation of the rule,
// or nil for generic dispatch. Fresh per call: the VM owns each
// spec's accumulator state, so a spec must never be shared between
// installations.
func (r *Rule) Spec() *vm.ProbeSpec {
	switch r.Mechanism {
	case MechCounter:
		il := r.Action.Inline
		return &vm.ProbeSpec{Counter: true, Delta: il.Delta, Flush: il.Flush}
	case MechFast:
		return &vm.ProbeSpec{Fn: r.Action.fastCtx()}
	}
	return nil
}

// InstAddr returns the rule's instruction address, or 0 for rules not
// anchored to an instruction (BlockEntry, Edge). Used to order rules
// within a block: entry rules sort first, instruction rules follow in
// address order.
func (r *Rule) InstAddr() uint64 {
	if r.Inst != nil {
		return r.Inst.Addr
	}
	return 0
}

// SiteAddr returns the address a backend installs the rule at.
func (r *Rule) SiteAddr() uint64 {
	if r.Inst != nil {
		return r.Inst.Addr
	}
	if r.Block != nil {
		return r.Block.Start
	}
	return 0
}

// RuleSet is the placement table for one instrumentation run: rules
// in emission order plus program start/end code.
type RuleSet struct {
	rules []*Rule
	// Inits and Finis run at program start/end, in order.
	Inits []func()
	Finis []func()

	byBlock map[*cfg.Block][]*Rule
}

// Add appends a rule in emission order.
func (rs *RuleSet) Add(r *Rule) {
	rs.rules = append(rs.rules, r)
	rs.byBlock = nil
}

// Rules returns the table in emission order. Backends must lower in
// this order (or in ByBlock order, which preserves it site-locally)
// so probe installation — and with it attribution-row order and
// same-site execution order — matches across optimization settings.
func (rs *RuleSet) Rules() []*Rule { return rs.rules }

// NumPlacements counts concrete placements: merged rules count each
// constituent, so the total is invariant under coalescing.
func (rs *RuleSet) NumPlacements() int {
	n := 0
	for _, r := range rs.rules {
		if len(r.Merged) > 0 {
			n += len(r.Merged)
		} else {
			n++
		}
	}
	return n
}

// ByBlock returns the rules sited in b, ordered by instruction
// address (block-entry rules first), ties in emission order. Built
// lazily and cached; Add invalidates the cache.
func (rs *RuleSet) ByBlock(b *cfg.Block) []*Rule {
	if rs.byBlock == nil {
		rs.byBlock = make(map[*cfg.Block][]*Rule)
		for _, r := range rs.rules {
			if r.Block != nil {
				rs.byBlock[r.Block] = append(rs.byBlock[r.Block], r)
			}
		}
		for _, list := range rs.byBlock {
			sort.SliceStable(list, func(i, j int) bool {
				return list[i].InstAddr() < list[j].InstAddr()
			})
		}
	}
	return rs.byBlock[b]
}

// RulesAt returns the rules sited at block address addr within mod.
// Keying by (module, address) — not bare address — is what keeps
// same-address blocks in distinct shared-library modules from
// colliding.
func (rs *RuleSet) RulesAt(mod *cfg.Module, addr uint64) []*Rule {
	var out []*Rule
	for _, r := range rs.rules {
		if r.Block == nil || r.Block.Start != addr {
			continue
		}
		if f := r.Block.Func; f == nil || f.Module != mod {
			continue
		}
		out = append(out, r)
	}
	return out
}
