package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// The interval aggregator: periodic delta snapshots of a live Collector
// folded into a bounded time-series. Where Snapshot answers "what has
// happened so far", the series answers "what is happening *now*" —
// fires/sec and cycles/sec per probe and per dispatch mechanism over
// the last sampling interval — which is what a monitoring dashboard
// plots and what the /series endpoint of internal/monitor serves.

// Rate is one interval's activity: raw deltas plus per-second rates.
type Rate struct {
	// Fires and Cycles are the interval's deltas (not cumulative).
	Fires  uint64 `json:"fires"`
	Cycles uint64 `json:"cycles"`
	// FiresPerSec and CyclesPerSec normalize the deltas by the
	// interval's measured length.
	FiresPerSec  float64 `json:"fires_per_sec"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// ProbeRate is one probe's activity within an interval. Only probes
// that fired during the interval appear in a point.
type ProbeRate struct {
	// ID is the probe's 1-based slot index (Stats.Probes[ID-1]).
	ID ProbeID `json:"id"`
	// Label and Mechanism identify the probe (see ProbeMeta).
	Label     string `json:"label"`
	Mechanism string `json:"mechanism"`
	Rate
}

// Point is one sampling interval of the series.
type Point struct {
	// Seq numbers points from 0; it keeps increasing even after old
	// points are evicted from the bounded window.
	Seq int `json:"seq"`
	// ElapsedSec is the time since the series started, measured at the
	// end of the interval; IntervalSec is the interval's actual length
	// (ticker jitter makes it differ slightly from the configured one).
	ElapsedSec  float64 `json:"elapsed_sec"`
	IntervalSec float64 `json:"interval_sec"`
	// Total aggregates every firing of the interval, untracked included.
	Total Rate `json:"total"`
	// ByMechanism splits the interval by dispatch mechanism
	// ("clean-call", "inlined-call", "snippet", and "untracked" for the
	// untracked bucket). Mechanisms with no activity are omitted.
	ByMechanism map[string]Rate `json:"by_mechanism,omitempty"`
	// ByProbe lists the probes active in the interval, in slot order.
	ByProbe []ProbeRate `json:"by_probe,omitempty"`
}

// SeriesOptions parameterizes a Series.
type SeriesOptions struct {
	// Interval is the sampling period (default 1s).
	Interval time.Duration
	// Cap bounds the retained window (default 600 points); older points
	// are evicted, Dropped counts them.
	Cap int
}

// SeriesDump is the exported form of the series, served by /series.
type SeriesDump struct {
	// Backend names the framework of the monitored run.
	Backend string `json:"backend"`
	// IntervalSec is the configured sampling period.
	IntervalSec float64 `json:"interval_sec"`
	// Cap is the retained-window bound and Dropped the points evicted
	// from it; Points[0].Seq == Dropped always holds.
	Cap     int `json:"cap"`
	Dropped int `json:"dropped"`
	// Points is the retained window, oldest first.
	Points []Point `json:"points"`
}

// Series samples a Collector at a fixed interval into a bounded
// time-series of rate points. Start launches the sampling goroutine;
// tests can instead drive Sample directly. Safe for concurrent use:
// readers (Dump, Points) may run while the sampler appends.
type Series struct {
	col      *Collector
	backend  string
	interval time.Duration
	cap      int

	mu      sync.Mutex
	points  []Point
	dropped int
	seq     int
	// prev is the previous sample's cumulative state, the baseline the
	// next delta is computed against.
	prevFires   []uint64
	prevCycles  []uint64
	prevUnFires uint64
	prevUnCyc   uint64
	prevElapsed float64

	stop chan struct{}
	done chan struct{}
}

// NewSeries creates a Series over the collector. The series does not
// sample until Start (or Sample) is called.
func NewSeries(c *Collector, backendName string, o SeriesOptions) *Series {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.Cap <= 0 {
		o.Cap = 600
	}
	return &Series{
		col:      c,
		backend:  backendName,
		interval: o.Interval,
		cap:      o.Cap,
	}
}

// Interval returns the configured sampling period.
func (s *Series) Interval() time.Duration { return s.interval }

// Start launches the sampling goroutine. Stop must be called exactly
// once afterwards.
func (s *Series) Start() {
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	start := time.Now()
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.interval)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				// One final sample so the tail of the run is not lost.
				s.Sample(time.Since(start))
				return
			case <-tick.C:
				s.Sample(time.Since(start))
			}
		}
	}()
}

// Stop halts the sampling goroutine (taking one last sample) and waits
// for it to exit. Only valid after Start.
func (s *Series) Stop() {
	close(s.stop)
	<-s.done
}

// Sample takes one delta snapshot at the given elapsed time since the
// series began and appends a Point. Called by the Start goroutine;
// exposed so tests and manual drivers can sample deterministically.
func (s *Series) Sample(elapsed time.Duration) {
	snap := s.col.Snapshot(s.backend)

	s.mu.Lock()
	defer s.mu.Unlock()

	el := elapsed.Seconds()
	dt := el - s.prevElapsed
	if dt <= 0 {
		// A zero-length interval has no meaningful rate; fall back to
		// the configured period so rates stay finite.
		dt = s.interval.Seconds()
	}

	p := Point{
		Seq:         s.seq,
		ElapsedSec:  el,
		IntervalSec: dt,
		ByMechanism: map[string]Rate{},
	}
	addRate := func(r *Rate, fires, cycles uint64) {
		r.Fires += fires
		r.Cycles += cycles
		r.FiresPerSec = float64(r.Fires) / dt
		r.CyclesPerSec = float64(r.Cycles) / dt
	}

	// Grow the baseline for probes registered since the last sample.
	for len(s.prevFires) < len(snap.Probes) {
		s.prevFires = append(s.prevFires, 0)
		s.prevCycles = append(s.prevCycles, 0)
	}
	for i, pr := range snap.Probes {
		df := pr.Fires - s.prevFires[i]
		dc := pr.Cycles - s.prevCycles[i]
		s.prevFires[i], s.prevCycles[i] = pr.Fires, pr.Cycles
		if df == 0 && dc == 0 {
			continue
		}
		addRate(&p.Total, df, dc)
		mech := p.ByMechanism[pr.Mechanism]
		addRate(&mech, df, dc)
		p.ByMechanism[pr.Mechanism] = mech
		row := ProbeRate{ID: pr.ID, Label: pr.Label, Mechanism: pr.Mechanism}
		addRate(&row.Rate, df, dc)
		p.ByProbe = append(p.ByProbe, row)
	}
	duf := snap.UntrackedFires - s.prevUnFires
	duc := snap.UntrackedCycles - s.prevUnCyc
	s.prevUnFires, s.prevUnCyc = snap.UntrackedFires, snap.UntrackedCycles
	if duf != 0 || duc != 0 {
		addRate(&p.Total, duf, duc)
		mech := p.ByMechanism["untracked"]
		addRate(&mech, duf, duc)
		p.ByMechanism["untracked"] = mech
	}
	if len(p.ByMechanism) == 0 {
		p.ByMechanism = nil
	}

	s.prevElapsed = el
	s.seq++
	s.points = append(s.points, p)
	if over := len(s.points) - s.cap; over > 0 {
		s.points = append(s.points[:0], s.points[over:]...)
		s.dropped += over
	}
}

// Points returns a copy of the retained window, oldest first. Safe from
// any goroutine.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Last returns the most recent point, if any — the cheap current-rate
// read the fleet /series rollup and the load harness use instead of
// copying the whole window. Safe from any goroutine.
func (s *Series) Last() (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// Dump exports the series. Safe from any goroutine.
func (s *Series) Dump() *SeriesDump {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return &SeriesDump{
		Backend:     s.backend,
		IntervalSec: s.interval.Seconds(),
		Cap:         s.cap,
		Dropped:     s.dropped,
		Points:      out,
	}
}

// WriteJSON writes the series dump as indented JSON.
func (d *SeriesDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
