package bench

import (
	"fmt"
	"io"

	"repro/internal/core/backend"
	"repro/internal/core/engine"
	"repro/internal/progs"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Ablation studies beyond the paper's figures, quantifying the design
// choices DESIGN.md calls out:
//
//   - per-instruction (Figure 5a) versus per-basic-block (Figure 5b)
//     counting — the paper's motivation for precomputed block counts;
//   - constraint filtering — what the `where` clause saves;
//   - framework base cost — what an *empty* tool costs on each backend
//     (JIT translation versus static rewriting).

// AblationRow is one benchmark's overhead (%) over the uninstrumented
// baseline for two variants of a tool.
type AblationRow struct {
	Benchmark string
	// A and B are overhead percentages of the two variants.
	A, B float64
}

// ablationBenchmarks is the subset of the suite used for ablations (kept
// small: the comparisons are per-benchmark, not suite-wide statistics).
var ablationBenchmarks = []string{"mcf", "xz", "leela", "namd", "imagick"}

// AblationCounting compares Figure 5a (per-load action) with Figure 5b
// (per-block precomputed action) on the given backend: overhead over the
// uninstrumented run.
func AblationCounting(backendName string, scale float64) ([]AblationRow, error) {
	toolA, err := compileTool(progs.InstCountBasic)
	if err != nil {
		return nil, err
	}
	toolB, err := compileTool(progs.InstCountBB)
	if err != nil {
		return nil, err
	}
	return ablationRows(toolA, toolB, backendName, scale)
}

// ablationRows measures two tool variants against the uninstrumented
// baseline on every ablation benchmark, one worker-pool task per
// benchmark.
func ablationRows(toolA, toolB *engine.CompiledTool, backendName string, scale float64) ([]AblationRow, error) {
	return parMap(ablationBenchmarks, func(name string) (AblationRow, error) {
		spec, _ := workload.ByName(name)
		prog, err := BuildBenchmark(spec, scale)
		if err != nil {
			return AblationRow{}, err
		}
		base, err := vm.New(prog, vm.Config{}).Run()
		if err != nil {
			return AblationRow{}, err
		}
		resA, err := backend.Run(toolA, prog, backendName, backend.Options{Out: io.Discard})
		if err != nil {
			return AblationRow{}, err
		}
		resB, err := backend.Run(toolB, prog, backendName, backend.Options{Out: io.Discard})
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{
			Benchmark: name,
			A:         overheadPct(resA.Cycles, base.Cycles),
			B:         overheadPct(resB.Cycles, base.Cycles),
		}, nil
	})
}

// filteredSrc selects loads with a static constraint, evaluated once at
// instrumentation time; dynamicWhereSrc adds an (always-true) dynamic
// constraint that must compile into a run-time guard with a materialized
// attribute. The gap is what Section III-B6's static constraint
// evaluation saves.
const filteredSrc = `
uint64 n = 0;
inst I where (I.opcode == Load) {
  before I {
    n = n + 1;
  }
}
exit { print(n); }
`

const unfilteredSrc = `
uint64 n = 0;
inst I where (I.opcode == Load) {
  before I where (I.memaddr + 1 > 0) {
    n = n + 1;
  }
}
exit { print(n); }
`

// AblationConstraints compares a statically filtered action against one
// whose constraint is dynamic (evaluated on every invocation): overhead
// over the uninstrumented run on the given backend. The counts are
// identical; the dispatch cost is not.
func AblationConstraints(backendName string, scale float64) ([]AblationRow, error) {
	toolF, err := engineCompile(filteredSrc)
	if err != nil {
		return nil, err
	}
	toolU, err := engineCompile(unfilteredSrc)
	if err != nil {
		return nil, err
	}
	return ablationRows(toolF, toolU, backendName, scale)
}

// AblationBaseCost measures what an empty tool (no commands at all)
// costs on each backend relative to the uninstrumented run: the
// framework's own price — JIT translation for the dynamic frameworks,
// nearly nothing for the static rewriter.
func AblationBaseCost(scale float64) (map[string]float64, error) {
	empty, err := engineCompile("init { }\n")
	if err != nil {
		return nil, err
	}
	// One task per (framework, benchmark) cell, framework-major; folded
	// back into per-framework means below.
	type task struct {
		fw   string
		name string
	}
	tasks := make([]task, 0, len(Frameworks)*len(ablationBenchmarks))
	for _, fw := range Frameworks {
		for _, name := range ablationBenchmarks {
			tasks = append(tasks, task{fw: fw, name: name})
		}
	}
	vals, err := parMap(tasks, func(t task) (float64, error) {
		spec, _ := workload.ByName(t.name)
		prog, err := BuildBenchmark(spec, scale)
		if err != nil {
			return 0, err
		}
		base, err := vm.New(prog, vm.Config{}).Run()
		if err != nil {
			return 0, err
		}
		res, err := backend.Run(empty, prog, t.fw, backend.Options{Out: io.Discard})
		if err != nil {
			return 0, err
		}
		return overheadPct(res.Cycles, base.Cycles), nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for i, fw := range Frameworks {
		var sum float64
		for _, v := range vals[i*len(ablationBenchmarks) : (i+1)*len(ablationBenchmarks)] {
			sum += v
		}
		out[fw] = sum / float64(len(ablationBenchmarks))
	}
	return out, nil
}

// FormatAblation renders two-variant ablation rows.
func FormatAblation(w io.Writer, labelA, labelB string, rows []AblationRow) {
	fmt.Fprintf(w, "%-12s %14s %14s\n", "Benchmark", labelA, labelB)
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %13.2f%% %13.2f%%\n", r.Benchmark, r.A, r.B)
	}
}
