// Package conformance implements the differential conformance harness:
// a seeded, deterministic generator of valid Cinnamon programs and of
// victim workloads, a differential runner that executes every generated
// (program, victim) pair through all three backends and both execution
// tiers, and a structured oracle that encodes the paper's legal
// divergences (Figure 12) — Pin sees shared libraries, Dyninst skips
// binaries with unrecoverable control flow — instead of blind equality.
// Mismatches shrink to a minimal reproducing program and are persisted
// to a checked-in regression corpus replayed by ordinary `go test`.
package conformance

import (
	"fmt"
	"math/rand"

	"repro/internal/core/ast"
	"repro/internal/core/token"
)

// Program is a generated Cinnamon tool program.
type Program struct {
	// Seed reproduces the program: GenProgram(Seed) returns identical
	// source on every run.
	Seed uint64
	// Source is the canonical .cin text (rendered with ast.Print, so
	// reparsing and reprinting is a fixed point).
	Source string
	// UsesLoops reports whether the program contains a loop command —
	// plain Pin must refuse it (no notion of loops), and the runner adds
	// PinLoopDetection cells for it.
	UsesLoops bool
}

// GenProgram deterministically generates a valid Cinnamon program from
// the seed. The sampling space covers every CFE kind, trigger point,
// static and dynamic where-constraints, analysis code (including
// block-local counters captured into actions), containers, init/exit
// blocks, and nested commands.
func GenProgram(seed uint64) *Program {
	g := &progGen{r: rand.New(rand.NewSource(int64(seed)))}
	g.genDecls()
	if g.r.Intn(100) < 40 {
		g.genInit()
	}
	n := 2 + g.r.Intn(3) // 2-4 commands
	for i := 0; i < n; i++ {
		g.genCommand()
	}
	g.genExit()
	prog := &ast.Program{Items: g.items}
	return &Program{Seed: seed, Source: ast.Print(prog), UsesLoops: g.usesLoops}
}

type progGen struct {
	r *rand.Rand

	items []ast.TopItem

	counters []string // uint64 globals
	dicts    []string // dict<int,int>
	vectors  []string // vector<int>
	arrays   []string // int name[16]

	nCFE      int // unique CFE variable names
	usesLoops bool
}

// Terse AST constructors. Positions are zero: generated programs are
// always rendered to source and reparsed before compilation, so real
// positions (and with them unique action labels) come from the parser.

func vid(name string) ast.Expr  { return &ast.Ident{Name: name} }
func num(v int64) ast.Expr      { return &ast.IntLit{Val: v} }
func str(s string) ast.Expr     { return &ast.StringLit{Val: s} }
func opcode(n string) ast.Expr  { return &ast.OpcodeLit{Name: n} }
func cfeAttr(v, a string) ast.Expr {
	return &ast.FieldExpr{X: vid(v), Name: a}
}

func bin(op token.Kind, x, y ast.Expr) ast.Expr {
	return &ast.BinaryExpr{Op: op, X: x, Y: y}
}

func assign(lhs, rhs ast.Expr) ast.Stmt {
	return &ast.AssignStmt{LHS: lhs, RHS: rhs}
}

func callStmt(fun ast.Expr, args ...ast.Expr) ast.Stmt {
	return &ast.ExprStmt{X: &ast.CallExpr{Fun: fun, Args: args}}
}

func printStmt(args ...ast.Expr) ast.Stmt {
	return callStmt(vid("print"), args...)
}

func methodCall(recv, method string, args ...ast.Expr) ast.Expr {
	return &ast.CallExpr{Fun: &ast.FieldExpr{X: vid(recv), Name: method}, Args: args}
}

func index(name string, i ast.Expr) ast.Expr {
	return &ast.IndexExpr{X: vid(name), Index: i}
}

// incBy builds `name = name + delta;`.
func incBy(name string, delta ast.Expr) ast.Stmt {
	return assign(vid(name), bin(token.PLUS, vid(name), delta))
}

const arrayLen = 16

func (g *progGen) genDecls() {
	nc := 2 + g.r.Intn(3)
	for i := 0; i < nc; i++ {
		name := fmt.Sprintf("c%d", i)
		g.counters = append(g.counters, name)
		g.items = append(g.items, &ast.VarDecl{
			Type: &ast.TypeSpec{Kind: token.TUINT64},
			Name: name,
			Init: num(int64(g.r.Intn(3))),
		})
	}
	if g.r.Intn(100) < 50 {
		g.dicts = append(g.dicts, "d0")
		g.items = append(g.items, &ast.VarDecl{
			Type: &ast.TypeSpec{
				Kind: token.TDICT,
				Key:  &ast.TypeSpec{Kind: token.TINT},
				Elem: &ast.TypeSpec{Kind: token.TINT},
			},
			Name: "d0",
		})
	}
	if g.r.Intn(100) < 40 {
		g.vectors = append(g.vectors, "v0")
		g.items = append(g.items, &ast.VarDecl{
			Type: &ast.TypeSpec{Kind: token.TVECTOR, Elem: &ast.TypeSpec{Kind: token.TINT}},
			Name: "v0",
		})
	}
	if g.r.Intn(100) < 40 {
		g.arrays = append(g.arrays, "a0")
		g.items = append(g.items, &ast.VarDecl{
			Type: &ast.TypeSpec{Kind: token.TINT, ArrayLen: arrayLen},
			Name: "a0",
		})
	}
}

func (g *progGen) genInit() {
	body := []ast.Stmt{assign(vid(g.counter()), num(int64(1+g.r.Intn(5))))}
	if g.r.Intn(100) < 50 {
		body = append(body, printStmt(str("init")))
	}
	g.items = append(g.items, &ast.InitBlock{Body: body})
}

// genExit prints every accumulator so the differential oracle compares
// final analysis state, not just per-probe fire counts.
func (g *progGen) genExit() {
	var body []ast.Stmt
	for _, c := range g.counters {
		body = append(body, printStmt(str(c), vid(c)))
	}
	for _, d := range g.dicts {
		body = append(body, printStmt(str(d), methodCall(d, "size")))
	}
	for _, v := range g.vectors {
		body = append(body, printStmt(str(v), methodCall(v, "size")))
	}
	for _, a := range g.arrays {
		i := int64(g.r.Intn(arrayLen))
		body = append(body, printStmt(str(a), index(a, num(i))))
		body = append(body, &ast.ForStmt{
			Init: &ast.DeclStmt{Decl: &ast.VarDecl{
				Type: &ast.TypeSpec{Kind: token.TINT}, Name: "i", Init: num(0),
			}},
			Cond: bin(token.LT, vid("i"), num(arrayLen)),
			Post: assign(vid("i"), bin(token.PLUS, vid("i"), num(1))),
			Body: []ast.Stmt{incBy(g.counters[0], index(a, vid("i")))},
		})
	}
	g.items = append(g.items, &ast.ExitBlock{Body: body})
}

func (g *progGen) counter() string {
	return g.counters[g.r.Intn(len(g.counters))]
}

func (g *progGen) freshVar(prefix string) string {
	g.nCFE++
	return fmt.Sprintf("%s%d", prefix, g.nCFE)
}

func (g *progGen) genCommand() {
	switch g.r.Intn(10) {
	case 0, 1, 2:
		g.items = append(g.items, g.instCmd())
	case 3, 4:
		g.items = append(g.items, g.blockCmd())
	case 5, 6:
		g.items = append(g.items, g.funcCmd())
	case 7:
		g.items = append(g.items, g.loopCmd())
	case 8:
		g.items = append(g.items, g.moduleCmd())
	case 9:
		g.items = append(g.items, g.nestedCmd())
	}
}

// maybeSample attaches a `sample N` clause (N in {2, 4, 8}) to the
// action with low probability. The differential runner then checks the
// per-placement every-Nth arithmetic against the program's unsampled
// twin (ClassSampling) in addition to the regular cross-backend matrix.
func (g *progGen) maybeSample(a *ast.Action) {
	if g.r.Intn(100) < 25 {
		a.Sample = int64(2 << g.r.Intn(3))
	}
}

// afterSafe lists opcodes on which an `after` trigger is legal on every
// backend (after a control transfer is rejected by Janus and priced
// differently elsewhere, so the generator never emits it).
var afterSafe = []string{"Load", "Store", "Mov", "Add", "Sub", "Mul", "Call"}

// whereOpcodes adds Branch/Return for before-only constraints.
var whereOpcodes = append([]string{"Branch", "Return"}, afterSafe...)

// instCmd builds `inst I where (I.opcode == Op [&& ...]) { trigger I { body } }`.
func (g *progGen) instCmd() *ast.Command {
	v := g.freshVar("I")
	after := g.r.Intn(100) < 40
	var op string
	if after {
		op = afterSafe[g.r.Intn(len(afterSafe))]
	} else {
		op = whereOpcodes[g.r.Intn(len(whereOpcodes))]
	}
	where := bin(token.EQ, cfeAttr(v, "opcode"), opcode(op))
	if g.r.Intn(100) < 30 {
		where = bin(token.LAND, where, bin(token.GE, cfeAttr(v, "size"), num(1)))
	}
	trigger := ast.Before
	if after {
		trigger = ast.After
	}
	act := &ast.Action{Trigger: trigger, Target: v, Body: g.instBody(v, op, after)}
	// Dynamic action constraint: a runtime guard over a dynamic
	// attribute, compiled into the probe body.
	if g.r.Intn(100) < 25 {
		switch op {
		case "Load":
			act.Where = bin(token.EQ, bin(token.PERCENT, cfeAttr(v, "memaddr"), num(2)), num(0))
		case "Call":
			act.Where = bin(token.GE, cfeAttr(v, "trgaddr"), num(1))
		}
	}
	g.maybeSample(act)
	return &ast.Command{EType: ast.Inst, Var: v, Where: where, Body: []ast.CmdItem{act}}
}

// instBody samples 1-2 action statements valid for the instruction
// constraint: counters, containers, static attrs, and opcode-gated
// dynamic attrs (memaddr for loads, dstaddr for stores, arg/rtnval for
// calls).
func (g *progGen) instBody(v, op string, after bool) []ast.Stmt {
	var pool []func() ast.Stmt
	pool = append(pool,
		func() ast.Stmt { return incBy(g.counter(), num(int64(1+g.r.Intn(3)))) },
		func() ast.Stmt { return incBy(g.counter(), cfeAttr(v, "size")) },
		func() ast.Stmt { return g.condInc() },
	)
	if len(g.dicts) > 0 {
		pool = append(pool, func() ast.Stmt {
			key := cfeAttr(v, "addr")
			return assign(index("d0", key), bin(token.PLUS, index("d0", key), num(1)))
		})
	}
	if len(g.vectors) > 0 {
		pool = append(pool, func() ast.Stmt {
			has := methodCall("v0", "has", cfeAttr(v, "addr"))
			return &ast.IfStmt{
				Cond: &ast.UnaryExpr{Op: token.NOT, X: has},
				Then: []ast.Stmt{callStmt(&ast.FieldExpr{X: vid("v0"), Name: "add"}, cfeAttr(v, "addr"))},
			}
		})
	}
	if len(g.arrays) > 0 {
		pool = append(pool, func() ast.Stmt {
			i := bin(token.PERCENT, cfeAttr(v, "id"), num(arrayLen))
			return assign(index("a0", i), bin(token.PLUS, index("a0", i), num(1)))
		})
	}
	switch op {
	case "Load":
		pool = append(pool, func() ast.Stmt {
			return incBy(g.counter(), bin(token.PERCENT, cfeAttr(v, "memaddr"), num(7)))
		})
	case "Store":
		pool = append(pool, func() ast.Stmt {
			return incBy(g.counter(), bin(token.PERCENT, cfeAttr(v, "dstaddr"), num(5)))
		})
	case "Call":
		pool = append(pool, func() ast.Stmt {
			return incBy(g.counter(), bin(token.PERCENT, cfeAttr(v, "arg1"), num(9)))
		})
		if after {
			pool = append(pool, func() ast.Stmt {
				return incBy(g.counter(), bin(token.PERCENT, cfeAttr(v, "rtnval"), num(3)))
			})
		}
	}
	n := 1 + g.r.Intn(2)
	body := make([]ast.Stmt, 0, n)
	for i := 0; i < n; i++ {
		body = append(body, pool[g.r.Intn(len(pool))]())
	}
	return body
}

// condInc builds `if (cA % k == 0) { cB = cB + 1; } else { cB = cB + 2; }`.
func (g *progGen) condInc() ast.Stmt {
	ca, cb := g.counter(), g.counter()
	k := int64(2 + g.r.Intn(3))
	return &ast.IfStmt{
		Cond: bin(token.EQ, bin(token.PERCENT, vid(ca), num(k)), num(0)),
		Then: []ast.Stmt{incBy(cb, num(1))},
		Else: []ast.Stmt{incBy(cb, num(2))},
	}
}

func (g *progGen) blockCmd() *ast.Command {
	v := g.freshVar("B")
	cmd := &ast.Command{EType: ast.BasicBlock, Var: v}
	if g.r.Intn(100) < 40 {
		cmd.Where = bin(token.GE, cfeAttr(v, "ninsts"), num(int64(1+g.r.Intn(2))))
	}
	trigger := ast.Entry
	if g.r.Intn(100) < 30 {
		trigger = ast.Exit
	}
	act := &ast.Action{Trigger: trigger, Target: v, Body: []ast.Stmt{
		incBy(g.counter(), num(1)),
	}}
	if g.r.Intn(100) < 30 {
		act.Body = append(act.Body, incBy(g.counter(), cfeAttr(v, "ninsts")))
	}
	if g.r.Intn(100) < 30 {
		// Static action constraint, filtered at instrumentation time.
		act.Where = bin(token.LE, cfeAttr(v, "ninsts"), num(64))
	}
	g.maybeSample(act)
	cmd.Body = []ast.CmdItem{act}
	return cmd
}

func (g *progGen) funcCmd() *ast.Command {
	v := g.freshVar("F")
	cmd := &ast.Command{EType: ast.Func, Var: v}
	if g.r.Intn(100) < 40 {
		cmd.Where = bin(token.GE, cfeAttr(v, "nblocks"), num(1))
	}
	entry := &ast.Action{Trigger: ast.Entry, Target: v, Body: []ast.Stmt{
		incBy(g.counter(), num(1)),
	}}
	if g.r.Intn(100) < 25 {
		entry.Body = append(entry.Body, printStmt(str("fn"), cfeAttr(v, "name")))
	}
	g.maybeSample(entry)
	cmd.Body = []ast.CmdItem{entry}
	if g.r.Intn(100) < 60 {
		exit := &ast.Action{Trigger: ast.Exit, Target: v, Body: []ast.Stmt{
			incBy(g.counter(), num(2)),
		}}
		g.maybeSample(exit)
		cmd.Body = append(cmd.Body, exit)
	}
	return cmd
}

// loopCmd builds a loop command (nested in a func command half the
// time, mirroring both forms the case studies use). Plain Pin has no
// notion of loops, so generating one marks the program UsesLoops.
func (g *progGen) loopCmd() ast.TopItem {
	g.usesLoops = true
	lv := g.freshVar("L")
	var body []ast.CmdItem
	triggers := []ast.Trigger{ast.Entry}
	if g.r.Intn(100) < 60 {
		triggers = append(triggers, ast.Iter)
	}
	if g.r.Intn(100) < 60 {
		triggers = append(triggers, ast.Exit)
	}
	for _, tr := range triggers {
		act := &ast.Action{Trigger: tr, Target: lv, Body: []ast.Stmt{
			incBy(g.counter(), num(1)),
		}}
		g.maybeSample(act)
		body = append(body, act)
	}
	loop := &ast.Command{EType: ast.Loop, Var: lv, Body: body}
	if g.r.Intn(100) < 50 {
		fv := g.freshVar("F")
		return &ast.Command{EType: ast.Func, Var: fv, Body: []ast.CmdItem{loop}}
	}
	return loop
}

// moduleCmd is analysis-only: module commands run at instrumentation
// time, once per module the backend sees — which is itself a documented
// divergence source (Pin sees shared libraries).
func (g *progGen) moduleCmd() *ast.Command {
	v := g.freshVar("M")
	return &ast.Command{EType: ast.Module, Var: v, Body: []ast.CmdItem{
		ast.Stmt(printStmt(str("mod"), cfeAttr(v, "name"))),
		ast.Stmt(incBy(g.counter(), num(1))),
	}}
}

// nestedCmd mirrors the Figure 5b idiom: a block-local analysis counter
// accumulated by a nested inst command and captured into the block's
// entry action (exercising closure capture, NumCaptured, and static
// action constraints over analysis state).
func (g *progGen) nestedCmd() *ast.Command {
	bv := g.freshVar("B")
	iv := g.freshVar("I")
	op := whereOpcodes[g.r.Intn(len(whereOpcodes))]
	local := fmt.Sprintf("n%s", bv)
	inner := &ast.Command{
		EType: ast.Inst, Var: iv,
		Where: bin(token.EQ, cfeAttr(iv, "opcode"), opcode(op)),
		Body:  []ast.CmdItem{ast.Stmt(incBy(local, num(1)))},
	}
	act := &ast.Action{
		Trigger: ast.Entry, Target: bv,
		Where: bin(token.GE, vid(local), num(1)),
		Body:  []ast.Stmt{incBy(g.counter(), vid(local))},
	}
	g.maybeSample(act)
	return &ast.Command{EType: ast.BasicBlock, Var: bv, Body: []ast.CmdItem{
		ast.Stmt(&ast.DeclStmt{Decl: &ast.VarDecl{
			Type: &ast.TypeSpec{Kind: token.TUINT64}, Name: local, Init: num(0),
		}}),
		inner,
		act,
	}}
}
