package janus

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/vm"
)

func build(t *testing.T, srcs ...string) *cfg.Program {
	t.Helper()
	mods := make([]*obj.Module, 0, len(srcs))
	for _, s := range srcs {
		m, err := asm.Assemble(s)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	p, err := obj.Load(mods, vm.RuntimeExterns())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

const loadsSrc = `
.module a.out
.executable
.entry main
.func main
  mov  r5, @buf
  load r4, [r5]
  mov  r2, 0
  mov  r3, 10
head:
  load r4, [r5+8]
  add  r2, r2, 1
  blt  r2, r3, head
  halt
.data
buf: .quad 1, 2
`

const hCount HandlerID = 1

// loadCounter builds the canonical Janus tool: the static pass annotates
// every load with a rewrite rule; the dynamic handler increments a
// counter.
func loadCounter(count *uint64) *Tool {
	return &Tool{
		Name: "loadcount",
		StaticPass: func(sa *StaticAnalyzer) {
			for _, f := range sa.Executable().Funcs {
				for _, b := range f.Blocks {
					for _, in := range b.Insts {
						if in.Op == isa.Load {
							sa.EmitRule(Rule{
								BlockAddr: b.Start,
								InstAddr:  in.Addr,
								Trigger:   TriggerBefore,
								Handler:   hCount,
							})
						}
					}
				}
			}
		},
		Handlers: map[HandlerID]Handler{
			hCount: {Fn: func(*vm.Ctx, []uint64) { *count++ }, Cost: 10, Inlinable: true},
		},
	}
}

func TestLoadCounting(t *testing.T) {
	prog := build(t, loadsSrc)
	var count uint64
	res, err := Run(prog, loadCounter(&count), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if count != 11 {
		t.Errorf("load count = %d, want 11", count)
	}
	if res.Insts == 0 {
		t.Error("no instructions")
	}
}

func TestStaticAnalyzerSeesOnlyExecutable(t *testing.T) {
	lib := `
.module libshared
.global libfn
.func libfn
  mov  r12, @lbuf
  load r13, [r12]
  ret
.data
lbuf: .quad 9
`
	main := `
.module a.out
.executable
.entry main
.extern libfn
.func main
  mov  r5, @buf
  load r4, [r5]
  call libfn
  call libfn
  halt
.data
buf: .quad 1
`
	prog := build(t, main, lib)
	var count uint64
	tool := loadCounter(&count)
	rt := AnalyzeOnly(prog, tool)
	if rt.NumPlacements() != 1 {
		t.Errorf("rules = %d, want 1 (main-module load only)", rt.NumPlacements())
	}
	if _, err := Run(prog, tool, Config{}); err != nil {
		t.Fatal(err)
	}
	// The two shared-library loads execute uninstrumented.
	if count != 1 {
		t.Errorf("count = %d, want 1 (shared-library loads invisible)", count)
	}
}

func TestRulePayloadReachesHandler(t *testing.T) {
	prog := build(t, loadsSrc)
	const hData HandlerID = 7
	var got []uint64
	tool := &Tool{
		Name: "payload",
		StaticPass: func(sa *StaticAnalyzer) {
			f := sa.Executable().Funcs[0]
			b := f.Blocks[0]
			// Static analysis data: the block's ID and instruction count.
			sa.EmitRule(Rule{
				BlockAddr: b.Start,
				Trigger:   TriggerBlockEntry,
				Handler:   hData,
				Data:      []uint64{uint64(b.ID), uint64(len(b.Insts))},
			})
		},
		Handlers: map[HandlerID]Handler{
			hData: {Fn: func(_ *vm.Ctx, data []uint64) { got = append([]uint64(nil), data...) }},
		},
	}
	if _, err := Run(prog, tool, Config{}); err != nil {
		t.Fatal(err)
	}
	f := prog.Modules[0].Funcs[0]
	if len(got) != 2 || got[0] != uint64(f.Blocks[0].ID) || got[1] != uint64(len(f.Blocks[0].Insts)) {
		t.Errorf("payload = %v", got)
	}
}

func TestTriggers(t *testing.T) {
	prog := build(t, loadsSrc)
	f := prog.Modules[0].Funcs[0]
	if len(f.Loops) != 1 {
		t.Fatalf("loops = %d", len(f.Loops))
	}
	loop := f.Loops[0]
	const (
		hEntry HandlerID = iota + 1
		hIter
		hInit
		hFini
		hAfter
	)
	var entries, iters, afters int
	var initRan, finiRan bool
	tool := &Tool{
		Name: "triggers",
		StaticPass: func(sa *StaticAnalyzer) {
			for _, e := range loop.Entries {
				sa.EmitRule(Rule{BlockAddr: e.To.Start, Aux: e.From.Start, Trigger: TriggerEdge, Handler: hEntry})
			}
			for _, e := range loop.Backs {
				sa.EmitRule(Rule{BlockAddr: e.To.Start, Aux: e.From.Start, Trigger: TriggerEdge, Handler: hIter})
			}
			// After-trigger on the first load.
			for _, b := range f.Blocks {
				for _, in := range b.Insts {
					if in.Op == isa.Load {
						sa.EmitRule(Rule{BlockAddr: b.Start, InstAddr: in.Addr, Trigger: TriggerAfter, Handler: hAfter})
						return
					}
				}
			}
		},
		Handlers: map[HandlerID]Handler{
			hEntry: {Fn: func(*vm.Ctx, []uint64) { entries++ }},
			hIter:  {Fn: func(*vm.Ctx, []uint64) { iters++ }},
			hInit:  {Fn: func(*vm.Ctx, []uint64) { initRan = true }},
			hFini:  {Fn: func(*vm.Ctx, []uint64) { finiRan = true }},
			hAfter: {Fn: func(*vm.Ctx, []uint64) { afters++ }},
		},
	}
	// Init/fini rules are global.
	inner := tool.StaticPass
	tool.StaticPass = func(sa *StaticAnalyzer) {
		sa.EmitRule(Rule{Trigger: TriggerInit, Handler: hInit})
		sa.EmitRule(Rule{Trigger: TriggerFini, Handler: hFini})
		inner(sa)
	}
	if _, err := Run(prog, tool, Config{}); err != nil {
		t.Fatal(err)
	}
	if entries != 1 || iters != 9 {
		t.Errorf("entries=%d iters=%d, want 1, 9", entries, iters)
	}
	if afters != 1 {
		t.Errorf("afters = %d, want 1", afters)
	}
	if !initRan || !finiRan {
		t.Error("init/fini rules did not fire")
	}
}

func TestUnknownHandlerIgnored(t *testing.T) {
	prog := build(t, loadsSrc)
	tool := &Tool{
		Name: "bad",
		StaticPass: func(sa *StaticAnalyzer) {
			f := sa.Executable().Funcs[0]
			sa.EmitRule(Rule{BlockAddr: f.Blocks[0].Start, Trigger: TriggerBlockEntry, Handler: 99})
		},
		Handlers: map[HandlerID]Handler{},
	}
	if _, err := Run(prog, tool, Config{}); err != nil {
		t.Fatalf("unknown handler should be skipped, got %v", err)
	}
}

func TestInliningCostOrdering(t *testing.T) {
	costOf := func(inlinable bool) uint64 {
		prog := build(t, loadsSrc)
		var count uint64
		tool := loadCounter(&count)
		h := tool.Handlers[hCount]
		h.Inlinable = inlinable
		tool.Handlers[hCount] = h
		res, err := Run(prog, tool, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	clean, inlined := costOf(false), costOf(true)
	if clean-inlined != 11*(CleanCallCost-InlinedCallCost) {
		t.Errorf("cost delta = %d, want %d", clean-inlined, 11*(CleanCallCost-InlinedCallCost))
	}
}

func TestDynamicContextInHandler(t *testing.T) {
	prog := build(t, loadsSrc)
	const hEA HandlerID = 3
	var eas []uint64
	tool := &Tool{
		Name: "ea",
		StaticPass: func(sa *StaticAnalyzer) {
			for _, f := range sa.Executable().Funcs {
				for _, b := range f.Blocks {
					for _, in := range b.Insts {
						if in.Op == isa.Load {
							sa.EmitRule(Rule{BlockAddr: b.Start, InstAddr: in.Addr, Trigger: TriggerBefore, Handler: hEA})
						}
					}
				}
			}
		},
		Handlers: map[HandlerID]Handler{
			hEA: {Fn: func(c *vm.Ctx, _ []uint64) {
				if ea, ok := c.MemAddr(); ok {
					eas = append(eas, ea)
				}
			}},
		},
	}
	if _, err := Run(prog, tool, Config{}); err != nil {
		t.Fatal(err)
	}
	if len(eas) != 11 {
		t.Fatalf("EAs = %d, want 11", len(eas))
	}
	buf, _ := prog.Modules[0].Loaded.SymAddr("buf")
	if eas[0] != buf || eas[1] != buf+8 {
		t.Errorf("EAs = %#x, %#x; want %#x, %#x", eas[0], eas[1], buf, buf+8)
	}
}
