// Package obj defines the binary object format of the synthetic machine:
// modules with code and data sections, symbols, relocations and imports,
// a byte-level serialization of that format, and a loader that maps a main
// executable plus its shared-library modules into a single address space.
//
// A module corresponds to the Cinnamon `module` control-flow element: the
// executable is one module, and every shared library it links against is a
// separate module. This distinction matters for reproducing Figure 12 of
// the paper, where the dynamic (Pin-style) backend observes instructions in
// shared libraries that the static backends never instrument.
package obj

import (
	"fmt"
	"sort"
)

// SymKind classifies a symbol.
type SymKind uint8

// Symbol kinds.
const (
	// SymFunc marks a function entry point in the code section.
	SymFunc SymKind = iota
	// SymData marks an object in the data section.
	SymData
)

func (k SymKind) String() string {
	switch k {
	case SymFunc:
		return "func"
	case SymData:
		return "data"
	}
	return fmt.Sprintf("symkind?%d", uint8(k))
}

// Symbol is a named location in a module.
type Symbol struct {
	Name string
	Kind SymKind
	// Off is the section-relative offset (code section for SymFunc, data
	// section for SymData).
	Off uint64
	// Size is the extent of the symbol in bytes. For functions this spans
	// the function body; CFG recovery uses it to bound disassembly.
	Size uint64
	// Global marks the symbol as visible to other modules (exported).
	Global bool
}

// RelocKind classifies a relocation.
type RelocKind uint8

// Relocation kinds. All relocations patch an 8-byte little-endian word in
// the code or data section.
const (
	// RelocCode patches an immediate operand inside an instruction in the
	// code section with the absolute address of the target symbol.
	RelocCode RelocKind = iota
	// RelocData patches an 8-byte word in the data section with the
	// absolute address of the target symbol.
	RelocData
)

func (k RelocKind) String() string {
	switch k {
	case RelocCode:
		return "code"
	case RelocData:
		return "data"
	}
	return fmt.Sprintf("relockind?%d", uint8(k))
}

// Reloc records that the 8 bytes at Off (relative to the section selected
// by Kind) must be patched with the absolute address of Sym (plus Addend)
// once the module and its dependencies are loaded.
type Reloc struct {
	Kind RelocKind
	Off  uint64
	// Sym is the target symbol name. It may be local to the module or
	// imported from another module (or from the runtime, e.g. "malloc").
	Sym    string
	Addend int64
}

// JumpTable describes a table of code addresses in the data section used by
// an indirect branch. Real binary frameworks recover jump tables through
// heuristic analysis that sometimes fails; this repository models that by
// letting the workload generator mark some tables as unrecoverable, which
// the Dyninst-style static backend refuses (reproducing the benchmarks the
// paper could not run under Dyninst).
type JumpTable struct {
	// DataOff is the offset of the table in the data section.
	DataOff uint64
	// Count is the number of 8-byte entries.
	Count int
	// BranchOff is the code-section offset of the indirect branch that
	// consumes the table.
	BranchOff uint64
	// Recoverable reports whether static analysis is assumed able to
	// recover the table's targets.
	Recoverable bool
}

// Module is a relocatable binary object: one executable or shared library.
type Module struct {
	// Name identifies the module ("a.out", "libshared", ...).
	Name string
	// Executable marks the main program module (as opposed to a shared
	// library). Exactly one module of a loaded program is executable.
	Executable bool
	// Entry is the code-section offset of the program entry point
	// (meaningful only for executable modules).
	Entry uint64
	// Code and Data are the section images, relative to offset zero.
	Code []byte
	Data []byte
	// Syms lists the module's symbols (functions and data objects).
	Syms []Symbol
	// Relocs lists the relocations to apply at load time.
	Relocs []Reloc
	// Imports names the external symbols the module references; each must
	// be resolved from another module's global symbols or from the
	// runtime at load time.
	Imports []string
	// JumpTables lists the module's indirect-branch tables.
	JumpTables []JumpTable
}

// Sym returns the module's symbol with the given name.
func (m *Module) Sym(name string) (Symbol, bool) {
	for _, s := range m.Syms {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// Funcs returns the module's function symbols sorted by code offset.
func (m *Module) Funcs() []Symbol {
	var fns []Symbol
	for _, s := range m.Syms {
		if s.Kind == SymFunc {
			fns = append(fns, s)
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Off < fns[j].Off })
	return fns
}

// Validate performs structural checks on the module: symbols and
// relocations must lie within their sections and symbol names must be
// unique.
func (m *Module) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("obj: module has no name")
	}
	seen := make(map[string]bool, len(m.Syms))
	for _, s := range m.Syms {
		if s.Name == "" {
			return fmt.Errorf("obj: %s: unnamed symbol", m.Name)
		}
		if seen[s.Name] {
			return fmt.Errorf("obj: %s: duplicate symbol %q", m.Name, s.Name)
		}
		seen[s.Name] = true
		limit := uint64(len(m.Code))
		if s.Kind == SymData {
			limit = uint64(len(m.Data))
		}
		if s.Off > limit || s.Off+s.Size > limit {
			return fmt.Errorf("obj: %s: symbol %q [%#x,+%d) outside section (size %d)", m.Name, s.Name, s.Off, s.Size, limit)
		}
	}
	for _, r := range m.Relocs {
		limit := uint64(len(m.Code))
		if r.Kind == RelocData {
			limit = uint64(len(m.Data))
		}
		if r.Off+8 > limit {
			return fmt.Errorf("obj: %s: relocation at %#x outside %s section", m.Name, r.Off, r.Kind)
		}
		if r.Sym == "" {
			return fmt.Errorf("obj: %s: relocation at %#x has no symbol", m.Name, r.Off)
		}
	}
	for _, jt := range m.JumpTables {
		if jt.DataOff+uint64(jt.Count)*8 > uint64(len(m.Data)) {
			return fmt.Errorf("obj: %s: jump table at %#x outside data section", m.Name, jt.DataOff)
		}
	}
	if m.Executable && m.Entry >= uint64(len(m.Code)) && len(m.Code) > 0 {
		return fmt.Errorf("obj: %s: entry %#x outside code section", m.Name, m.Entry)
	}
	return nil
}

// HasUnrecoverableControlFlow reports whether the module contains an
// indirect-branch jump table that static analysis cannot recover.
func (m *Module) HasUnrecoverableControlFlow() bool {
	for _, jt := range m.JumpTables {
		if !jt.Recoverable {
			return true
		}
	}
	return false
}
