package native

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/obj"
	"repro/internal/vm"
	"repro/internal/workload"
)

func loadVictim(t *testing.T, name string) *cfg.Program {
	t.Helper()
	m, err := workload.Victim(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := obj.Load([]*obj.Module{m}, vm.RuntimeExterns())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func run(t *testing.T, framework, usecase string, prog *cfg.Program) string {
	t.Helper()
	var out bytes.Buffer
	if _, err := Run(framework, usecase, prog, &out, 0); err != nil {
		t.Fatalf("%s/%s: %v", framework, usecase, err)
	}
	return out.String()
}

func TestRegistry(t *testing.T) {
	// Every framework implements every use case except loop coverage on
	// Pin ("Pin does not have a notion of loops").
	for _, fw := range []string{"pin", "dyninst", "janus"} {
		for _, uc := range UseCases() {
			want := !(fw == "pin" && uc == "loopcoverage")
			if got := Supported(fw, uc); got != want {
				t.Errorf("Supported(%s, %s) = %v, want %v", fw, uc, got, want)
			}
		}
	}
	if _, err := Run("valgrind", "instcount", nil, nil, 0); err == nil {
		t.Error("unknown framework accepted")
	}
	// 3 frameworks x 6 use cases - 1 = 17 implementations.
	if got := len(Implementations()); got != 17 {
		t.Errorf("implementations = %d, want 17", got)
	}
}

func TestSourcesEmbedded(t *testing.T) {
	for _, impl := range Implementations() {
		parts := strings.SplitN(impl, "/", 2)
		src, err := Source(parts[0], parts[1])
		if err != nil {
			t.Errorf("%s: %v", impl, err)
			continue
		}
		if !strings.Contains(src, "func init() { register(") {
			t.Errorf("%s: source does not look like a tool", impl)
		}
	}
	if _, err := Source("pin", "loopcoverage"); err == nil {
		t.Error("source for unimplemented tool found")
	}
}

func TestInstCountToolsAgree(t *testing.T) {
	// All native instruction counters agree on a victim program without
	// shared libraries.
	prog := loadVictim(t, "loopy")
	var counts []string
	for _, fw := range []string{"pin", "dyninst", "janus"} {
		for _, uc := range []string{"instcount", "instcount_bb"} {
			counts = append(counts, strings.TrimSpace(run(t, fw, uc, prog)))
		}
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Fatalf("counts disagree: %v", counts)
		}
	}
	if counts[0] == "0" {
		t.Fatal("no loads counted")
	}
}

func TestUAFDetection(t *testing.T) {
	for _, fw := range []string{"pin", "dyninst", "janus"} {
		out := run(t, fw, "useafterfree", loadVictim(t, "uaf_bug"))
		if n := strings.Count(out, "ERROR"); n != 1 {
			t.Errorf("%s: errors = %d, want 1 (%q)", fw, n, out)
		}
		out = run(t, fw, "useafterfree", loadVictim(t, "uaf_clean"))
		if out != "" {
			t.Errorf("%s: false positive: %q", fw, out)
		}
	}
}

func TestShadowStackDetection(t *testing.T) {
	for _, fw := range []string{"pin", "dyninst", "janus"} {
		out := run(t, fw, "shadowstack", loadVictim(t, "stack_smash"))
		if !strings.Contains(out, "ERROR") {
			t.Errorf("%s: attack not detected", fw)
		}
		out = run(t, fw, "shadowstack", loadVictim(t, "stack_clean"))
		if out != "" {
			t.Errorf("%s: false positive: %q", fw, out)
		}
	}
}

func TestForwardCFIDetection(t *testing.T) {
	for _, fw := range []string{"pin", "dyninst", "janus"} {
		out := run(t, fw, "forwardcfi", loadVictim(t, "indirect_attack"))
		if n := strings.Count(out, "ERROR"); n != 1 {
			t.Errorf("%s: errors = %d, want 1 (%q)", fw, n, out)
		}
		out = run(t, fw, "forwardcfi", loadVictim(t, "indirect_clean"))
		if out != "" {
			t.Errorf("%s: false positive: %q", fw, out)
		}
	}
}

func TestLoopCoverage(t *testing.T) {
	for _, fw := range []string{"dyninst", "janus"} {
		out := run(t, fw, "loopcoverage", loadVictim(t, "loopy"))
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if len(lines) != 4 {
			t.Fatalf("%s: output = %q", fw, out)
		}
	}
}

func TestNativeCheaperThanGeneratedWouldBe(t *testing.T) {
	// The instcount_bb native tools must run; Figure 13 compares their
	// cycles against the Cinnamon-generated equivalents (see
	// internal/bench). Here we only require determinism.
	s, _ := workload.ByName("xz")
	mods, err := s.Build(0.05)
	if err != nil {
		t.Fatal(err)
	}
	load := func() *cfg.Program {
		p, err := obj.Load(mods, vm.RuntimeExterns())
		if err != nil {
			t.Fatal(err)
		}
		prog, err := cfg.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}
	for _, fw := range []string{"pin", "dyninst", "janus"} {
		var out1, out2 bytes.Buffer
		r1, err := Run(fw, "instcount_bb", load(), &out1, 0)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(fw, "instcount_bb", load(), &out2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Cycles != r2.Cycles || out1.String() != out2.String() {
			t.Errorf("%s: nondeterministic native run", fw)
		}
	}
}
