// Package fleet is cinnamond's session scheduler: it admits victim×tool
// jobs (from the /sessions API or a boot manifest), runs each as one
// instrumented session on a bounded worker pool, and registers every
// session with a monitor.Fleet so the aggregation endpoints can serve
// the live fleet view.
//
// Isolation comes from sharding, not locking: every session gets its own
// obs.Collector (whose generation-tagged ProbeIDs make a stray firing
// from any other collector land in the untracked bucket, never in a
// foreign slot), its own interval Series, and — when the job asks for a
// budget — its own overhead governor. The scheduler only touches
// lifecycle state; the hot firing paths never cross sessions.
//
// Failed attempts restart up to the job's restart bound. Drain stops
// admission, cancels still-queued sessions, lets running ones finish
// until the deadline, and then cancels the stragglers through the VM's
// cooperative stop flag (vm.Config.Stop), which takes effect at the
// next block dispatch.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cfg"
	"repro/internal/core/artifacts"
	"repro/internal/core/backend"
	"repro/internal/core/engine"
	"repro/internal/governor"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/progs"
	"repro/internal/vm"
)

// JobSpec is one submitted job: which tool to run on which victim under
// which backend. It is the JSON body of POST /sessions and the element
// type of a boot manifest.
type JobSpec struct {
	// Tool names a built-in case-study program (progs.Names). Exactly
	// one of Tool and ToolSrc must be set.
	Tool string `json:"tool,omitempty"`
	// ToolSrc is inline Cinnamon source, for jobs not covered by a
	// built-in program. The session's tool label becomes "inline".
	ToolSrc string `json:"tool_src,omitempty"`
	// Victim names a loopable monitoring victim (workload.LoopableVictims).
	Victim string `json:"victim"`
	// Backend is the instrumentation framework (default "janus").
	Backend string `json:"backend,omitempty"`
	// Loop is the victim loop count — how many times the victim's
	// behaviour re-runs before the session completes (default: the
	// scheduler's DefaultLoop).
	Loop int `json:"loop,omitempty"`
	// Budget, when set ("5%" or "0.05"), attaches an overhead governor
	// with that probe-overhead budget to the session.
	Budget string `json:"budget,omitempty"`
	// Restarts bounds restart-on-failure: a session whose run errors is
	// re-queued up to this many times before it settles failed.
	Restarts int `json:"restarts,omitempty"`
	// Fuel bounds the session's instruction count (0 = the VM default).
	Fuel uint64 `json:"fuel,omitempty"`
}

// Manifest is the boot-manifest document: the jobs cinnamond submits
// before it starts serving.
type Manifest struct {
	Sessions []JobSpec `json:"sessions"`
}

// ParseManifest parses a manifest: either a bare JSON array of job
// specs or a {"sessions":[...]} document.
func ParseManifest(data []byte) ([]JobSpec, error) {
	var specs []JobSpec
	if err := json.Unmarshal(data, &specs); err == nil {
		return specs, nil
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("fleet: bad manifest: %v", err)
	}
	return m.Sessions, nil
}

// Config parameterizes a Scheduler.
type Config struct {
	// Workers is the bounded worker pool size (default 4): how many
	// sessions run concurrently.
	Workers int
	// Queue bounds admitted-but-not-running sessions (default 256);
	// submissions beyond it are rejected.
	Queue int
	// Interval is each session's time-series sampling period (default 1s).
	Interval time.Duration
	// SeriesCap bounds each session's retained series window (default 600).
	SeriesCap int
	// DefaultLoop is the victim loop count for jobs that do not set one
	// (default 50000).
	DefaultLoop int
	// TraceCap is each session's trace-ring capacity (default: the
	// collector default).
	TraceCap int
	// Artifacts overrides the scheduler's shared artifact cache (a
	// private one is created by default). Sessions share compiled tools,
	// built victims and instrumentation-build templates through it; see
	// internal/core/artifacts.
	Artifacts *artifacts.Cache
	// NoArtifactCache disables cross-session artifact sharing: every
	// session builds from scratch. Restart attempts of one session still
	// reuse that session's own build through a private per-task cache.
	NoArtifactCache bool
}

// ErrDraining rejects submissions once Drain has begun.
var ErrDraining = errors.New("fleet: draining, not accepting sessions")

// task is one admitted job: the session plus everything pre-built at
// admission (compiled tool, victim program) and its cancellation flag.
type task struct {
	spec JobSpec
	sess *monitor.FleetSession
	tool *engine.CompiledTool
	prog *cfg.Program
	// cache is the artifact cache the task's attempts run through: the
	// scheduler's shared cache, or a private per-task cache when sharing
	// is disabled (so restart attempts still reuse the first attempt's
	// instrumentation build instead of re-walking the CFE hierarchy).
	cache *artifacts.Cache
	// stop is the session's cooperative cancel flag, shared with the VM.
	stop atomic.Bool
	// restarts counts failed attempts already re-queued.
	restarts int
}

// Scheduler admits jobs and runs them over the worker pool.
type Scheduler struct {
	cfg   Config
	fleet *monitor.Fleet
	// artifacts is the cross-session cache (nil when disabled).
	artifacts *artifacts.Cache

	mu        sync.Mutex
	accepting bool
	nextID    int
	tasks     []*task
	queue     chan *task

	wg sync.WaitGroup
}

// NewScheduler creates a scheduler and starts its workers. Submissions
// are accepted immediately; Drain stops them.
func NewScheduler(cfg Config) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 256
	}
	if cfg.DefaultLoop <= 0 {
		cfg.DefaultLoop = 50000
	}
	s := &Scheduler{
		cfg:       cfg,
		fleet:     monitor.NewFleet(),
		artifacts: cfg.Artifacts,
		accepting: true,
		queue:     make(chan *task, cfg.Queue),
	}
	if s.artifacts == nil && !cfg.NoArtifactCache {
		s.artifacts = artifacts.New(artifacts.Options{})
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Fleet returns the session registry the scheduler populates (the
// FleetServer serves it).
func (s *Scheduler) Fleet() *monitor.Fleet { return s.fleet }

// Artifacts returns the scheduler's cross-session artifact cache (nil
// when sharing is disabled).
func (s *Scheduler) Artifacts() *artifacts.Cache { return s.artifacts }

// ArtifactStats adapts the cache counters to the monitor's exposition
// view — the FleetServer's Artifacts hook. Zero-valued when sharing is
// disabled (per-task caches are not aggregated).
func (s *Scheduler) ArtifactStats() monitor.ArtifactStats {
	if s.artifacts == nil {
		return monitor.ArtifactStats{}
	}
	st := s.artifacts.Stats()
	return monitor.ArtifactStats{
		Kinds: []monitor.ArtifactKindStats{
			{Kind: "tool", Hits: st.ToolHits, Misses: st.ToolMisses, Entries: st.Tools},
			{Kind: "victim", Hits: st.VictimHits, Misses: st.VictimMisses, Entries: st.Victims},
			{Kind: "template", Hits: st.TemplateHits, Misses: st.TemplateMisses, Entries: st.Templates},
		},
		Evictions: st.Evictions,
	}
}

// Accepting reports whether Submit admits new jobs — the readiness
// probe (false once Drain has begun).
func (s *Scheduler) Accepting() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accepting
}

// Submit validates, compiles and admits one job, returning its session.
// The tool compile and victim build happen here, synchronously, so a
// bad job is rejected with a useful error instead of failing later on a
// worker.
func (s *Scheduler) Submit(spec JobSpec) (*monitor.FleetSession, error) {
	if spec.Backend == "" {
		spec.Backend = backend.Janus
	}
	switch spec.Backend {
	case backend.Pin, backend.Dyninst, backend.Janus:
	default:
		return nil, fmt.Errorf("fleet: unknown backend %q", spec.Backend)
	}
	if spec.Loop <= 0 {
		spec.Loop = s.cfg.DefaultLoop
	}
	if spec.Restarts < 0 {
		return nil, fmt.Errorf("fleet: negative restart bound")
	}

	toolLabel := spec.Tool
	var src string
	switch {
	case spec.Tool != "" && spec.ToolSrc != "":
		return nil, fmt.Errorf("fleet: set tool or tool_src, not both")
	case spec.Tool != "":
		var err error
		if src, err = progs.Source(spec.Tool); err != nil {
			return nil, fmt.Errorf("fleet: %v", err)
		}
	case spec.ToolSrc != "":
		src = spec.ToolSrc
		toolLabel = "inline"
	default:
		return nil, fmt.Errorf("fleet: job names no tool")
	}
	// The session's collector exists before any build so cache
	// consultations land in its build stats (the per-session cold/warm
	// provenance on /sessions). The session is not running yet, so
	// mutating build stats here is race-free.
	col := obs.New(obs.Options{TraceCap: s.cfg.TraceCap})
	record := func(lk artifacts.Lookup) {
		col.MutateBuild(func(b *obs.BuildStats) {
			if lk.Hit {
				b.ArtifactHits++
			} else {
				b.ArtifactMisses++
			}
			b.ArtifactEvictions += lk.Evicted
		})
	}
	cache := s.artifacts
	if cache == nil {
		// Sharing disabled: a private per-task cache still lets restart
		// attempts reuse this session's own build.
		cache = artifacts.New(artifacts.Options{})
	}

	tool, lk, err := cache.Tool(src)
	if err != nil {
		return nil, fmt.Errorf("fleet: compile tool: %v", err)
	}
	record(lk)
	victim, lk, err := cache.Victim(spec.Victim, spec.Loop)
	if err != nil {
		return nil, err
	}
	record(lk)
	prog := victim.Prog

	if spec.Budget != "" {
		if _, err := governor.ParseBudget(spec.Budget); err != nil {
			return nil, fmt.Errorf("fleet: %v", err)
		}
	}

	series := obs.NewSeries(col, spec.Backend, obs.SeriesOptions{
		Interval: s.cfg.Interval,
		Cap:      s.cfg.SeriesCap,
	})

	s.mu.Lock()
	if !s.accepting {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	labels := monitor.SessionLabels{Session: id, Tool: toolLabel, Victim: spec.Victim, Backend: spec.Backend}
	sess, err := s.fleet.Add(labels, col, series)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	t := &task{spec: spec, sess: sess, tool: tool, prog: prog, cache: cache}
	select {
	case s.queue <- t:
	default:
		s.mu.Unlock()
		sess.Finish(monitor.SessionFailed, 0, 0, "queue full")
		return sess, fmt.Errorf("fleet: queue full (%d queued)", s.cfg.Queue)
	}
	s.tasks = append(s.tasks, t)
	s.mu.Unlock()
	series.Start()
	return sess, nil
}

// SubmitJSON adapts Submit to the FleetServer's POST /sessions hook:
// the body is one JobSpec; the response names the admitted session.
func (s *Scheduler) SubmitJSON(body []byte) (any, error) {
	var spec JobSpec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("fleet: bad job: %v", err)
	}
	sess, err := s.Submit(spec)
	if err != nil {
		return nil, err
	}
	return map[string]string{
		"session": sess.Labels().Session,
		"state":   string(sess.State()),
	}, nil
}

// worker claims queued tasks and runs them to a terminal state.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		if t.stop.Load() {
			s.settle(t, monitor.SessionCanceled, nil, "canceled before start")
			continue
		}
		t.sess.Start()
		res, err := s.runOnce(t)
		switch {
		case err == nil:
			s.settle(t, monitor.SessionDone, res, "")
		case errors.Is(err, vm.ErrStopped):
			s.settle(t, monitor.SessionCanceled, nil, err.Error())
		default:
			if t.restarts < t.spec.Restarts && s.requeue(t, err) {
				continue
			}
			s.settle(t, monitor.SessionFailed, nil, err.Error())
		}
	}
}

// settle moves a task to a terminal state and stops its sampler (after
// a final point, so the series covers the whole run).
func (s *Scheduler) settle(t *task, state monitor.SessionState, res *vm.Result, msg string) {
	var cycles, insts uint64
	if res != nil {
		cycles, insts = res.Cycles, res.Insts
	}
	t.sess.Finish(state, cycles, insts, msg)
	t.sess.Series().Stop()
}

// requeue returns a failed attempt to the queue (restart-on-failure).
// It fails when the scheduler is draining or the queue is full; the
// caller then settles the task failed.
func (s *Scheduler) requeue(t *task, cause error) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.accepting {
		return false
	}
	select {
	case s.queue <- t:
		t.restarts++
		t.sess.Requeue(cause.Error())
		return true
	default:
		return false
	}
}

// runOnce performs one attempt of the task's session.
func (s *Scheduler) runOnce(t *task) (*vm.Result, error) {
	opts := backend.Options{
		Out:       io.Discard,
		AppOut:    io.Discard,
		Obs:       t.sess.Collector(),
		Fuel:      t.spec.Fuel,
		Stop:      &t.stop,
		Artifacts: t.cache,
	}
	if t.spec.Budget != "" {
		frac, err := governor.ParseBudget(t.spec.Budget)
		if err != nil {
			return nil, err
		}
		gov, err := governor.New(governor.Config{Budget: frac, Collector: t.sess.Collector()})
		if err != nil {
			return nil, err
		}
		opts.Adaptive = true
		opts.OnMachine = gov.Attach
		t.sess.SetGovernor(gov)
	}
	return backend.Run(t.tool, t.prog, t.spec.Backend, opts)
}

// Drain shuts the scheduler down gracefully: admission stops, queued
// sessions are canceled, running sessions finish naturally until ctx's
// deadline and are cooperatively canceled past it. Drain returns when
// every worker has exited; the returned error is ctx's when the
// deadline forced cancellation.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.accepting {
		s.mu.Unlock()
		return errors.New("fleet: already draining")
	}
	s.accepting = false
	// Queued-but-unstarted tasks cancel immediately: workers see the
	// flag before starting them. Running tasks keep going for now.
	for _, t := range s.tasks {
		if t.sess.State() == monitor.SessionQueued {
			t.stop.Store(true)
		}
	}
	// Safe: Submit checks accepting under mu before sending.
	close(s.queue)
	tasks := make([]*task, len(s.tasks))
	copy(tasks, s.tasks)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Deadline: cancel the stragglers. The VM honours the flag at
		// its next block dispatch, so this wait is prompt.
		for _, t := range tasks {
			t.stop.Store(true)
		}
		<-done
		return ctx.Err()
	}
}

// Wait blocks until every admitted session has reached a terminal
// state, polling the registry (tests and the load harness use it; the
// daemon itself drains instead).
func (s *Scheduler) Wait(ctx context.Context) error {
	for {
		settled := true
		for _, sess := range s.fleet.Sessions() {
			switch sess.State() {
			case monitor.SessionDone, monitor.SessionFailed, monitor.SessionCanceled:
			default:
				settled = false
			}
		}
		if settled {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}
