package bench

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/workload"
)

// The evaluation sweeps are embarrassingly parallel: every (benchmark,
// framework) measurement builds its own workload program and runs it on
// its own VM, so nothing is shared between cells beyond the read-only
// compiled tool. parMap fans the cells out over a bounded worker pool
// and writes each result into its input slot, which keeps every table
// in the paper's row/column order no matter how the pool schedules the
// work.

// parMap applies fn to every item on at most GOMAXPROCS workers and
// returns the results in input order. If any application fails, the
// error of the smallest failing index is returned — the same error a
// sequential loop over items would have surfaced first.
func parMap[T, R any](items []T, fn func(T) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	errs := make([]error, len(items))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(items) {
		workers = len(items)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				results[i], errs[i] = fn(items[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// fwTask is one cell of a suite-wide sweep: a benchmark under one
// framework.
type fwTask struct {
	spec workload.Spec
	fw   string
}

// fwTasks enumerates the full (benchmark × framework) grid in
// benchmark-major order, matching the nesting of the former sequential
// loops: task i*len(Frameworks)+j is benchmark i under framework j.
func fwTasks() []fwTask {
	specs := workload.SPEC2017()
	tasks := make([]fwTask, 0, len(specs)*len(Frameworks))
	for _, spec := range specs {
		for _, fw := range Frameworks {
			tasks = append(tasks, fwTask{spec: spec, fw: fw})
		}
	}
	return tasks
}
