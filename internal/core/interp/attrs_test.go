package interp

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/core/ast"
	"repro/internal/core/value"
	"repro/internal/obj"
	"repro/internal/vm"
)

func buildRefs(t *testing.T) (*cfg.Program, map[ast.EType]*value.CFERef) {
	t.Helper()
	src := `
.module refapp
.executable
.entry main
.extern print
.func main
  mov r8, 0
head:
  add r8, r8, 1
  mov r7, 3
  blt r8, r7, head
  call print
  halt
`
	m, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := obj.Load([]*obj.Module{m}, vm.RuntimeExterns())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	mod := prog.Modules[0]
	f := mod.Funcs[0]
	refs := map[ast.EType]*value.CFERef{
		ast.Module:     {Kind: ast.Module, Module: mod, Prog: prog},
		ast.Func:       {Kind: ast.Func, Func: f, Prog: prog},
		ast.Loop:       {Kind: ast.Loop, Loop: f.Loops[0], Func: f, Prog: prog},
		ast.BasicBlock: {Kind: ast.BasicBlock, Block: f.Blocks[0], Func: f, Prog: prog},
		ast.Inst:       {Kind: ast.Inst, Inst: f.Blocks[0].Insts[0], Block: f.Blocks[0], Func: f, Prog: prog},
	}
	return prog, refs
}

func TestStaticAttrAllCFEs(t *testing.T) {
	prog, refs := buildRefs(t)
	f := prog.Modules[0].Funcs[0]

	cases := []struct {
		et   ast.EType
		attr string
		want int64
	}{
		{ast.Module, "id", 0},
		{ast.Module, "nfuncs", 1},
		{ast.Func, "id", int64(f.ID)},
		{ast.Func, "startaddr", int64(f.Entry)},
		{ast.Func, "endaddr", int64(f.End)},
		{ast.Func, "nblocks", int64(len(f.Blocks))},
		{ast.Func, "nloops", 1},
		{ast.Func, "ninsts", int64(f.NumInsts())},
		{ast.Loop, "id", int64(f.Loops[0].ID)},
		{ast.Loop, "depth", 1},
		{ast.Loop, "nblocks", int64(len(f.Loops[0].Blocks))},
		{ast.Loop, "startaddr", int64(f.Loops[0].Header.Start)},
		{ast.BasicBlock, "id", int64(f.Blocks[0].ID)},
		{ast.BasicBlock, "startaddr", int64(f.Blocks[0].Start)},
		{ast.BasicBlock, "endaddr", int64(f.Blocks[0].End)},
		{ast.BasicBlock, "ninsts", int64(len(f.Blocks[0].Insts))},
	}
	for _, c := range cases {
		v, err := StaticAttr(refs[c.et], c.attr)
		if err != nil {
			t.Errorf("%s.%s: %v", c.et, c.attr, err)
			continue
		}
		if v.AsInt() != c.want {
			t.Errorf("%s.%s = %d, want %d", c.et, c.attr, v.AsInt(), c.want)
		}
	}
	// String-valued attributes.
	if v, _ := StaticAttr(refs[ast.Func], "name"); v.Str != "main" {
		t.Errorf("func name = %q", v.Str)
	}
	if v, _ := StaticAttr(refs[ast.Module], "name"); v.Str != "refapp" {
		t.Errorf("module name = %q", v.Str)
	}
	if v, _ := StaticAttr(refs[ast.Module], "isexecutable"); !v.Bool {
		t.Error("module not executable")
	}
	// trgname resolves call targets through the symbol table.
	var call *value.CFERef
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if in.Op.String() == "call" {
				call = &value.CFERef{Kind: ast.Inst, Inst: in, Prog: prog}
			}
		}
	}
	if v, err := StaticAttr(call, "trgname"); err != nil || v.Str != "print" {
		t.Errorf("trgname = %q, %v", v.Str, err)
	}
	// Unknown attributes fail for every CFE kind.
	for et, ref := range refs {
		if _, err := StaticAttr(ref, "zorp"); err == nil {
			t.Errorf("%s.zorp resolved", et)
		}
	}
	// CFE refs render readably (used in diagnostics).
	for _, ref := range refs {
		if value.CFEVal(ref).String() == "" {
			t.Error("empty CFE rendering")
		}
	}
}

func TestFSNamesAndSharing(t *testing.T) {
	fs := NewFS()
	f1 := fs.Open("b.txt")
	f2 := fs.Open("a.txt")
	f3 := fs.Open("b.txt")
	if f1 != f3 {
		t.Error("same name returned different handles")
	}
	f1.WriteLine("x")
	if got := f3.GetLine(); got.Str != "x" {
		t.Errorf("shared handle read = %v", got)
	}
	names := fs.Names()
	if len(names) != 2 || names[0] != "a.txt" || names[1] != "b.txt" {
		t.Errorf("names = %v", names)
	}
	_ = f2
}

func TestVectorIndexAssignment(t *testing.T) {
	out := runProgram(t, `
vector<int> v;
init {
  v.add(1);
  v.add(2);
  v[0] = 10;
  print(v[0], v[1]);
}
`)
	if out != "10 2\n" {
		t.Errorf("out = %q", out)
	}
	if _, err := tryRunProgram(`vector<int> v; init { v[0] = 1; }`); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("vector OOB write err = %v", err)
	}
	if _, err := tryRunProgram(`vector<int> v; init { print(v[3]); }`); err != nil {
		t.Errorf("vector OOB read should yield NULL, got %v", err)
	}
}

func TestNullPrintsAndShortCircuit(t *testing.T) {
	out := runProgram(t, `
int zero = 0;
init {
  line l;
  print(l == NULL);
  // Short-circuit must protect the division.
  if (zero != 0 && 1 / zero > 0) {
    print("bad");
  }
  if (zero == 0 || 1 / zero > 0) {
    print("guarded");
  }
}
`)
	if out != "true\nguarded\n" {
		t.Errorf("out = %q", out)
	}
}
