package monitor

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/governor"
	"repro/internal/obs"
)

// The Prometheus text-exposition writer. Hand-rolled (format version
// 0.0.4) so the repo stays dependency-free: HELP/TYPE headers precede
// each family's samples, label values are escaped per the spec, counter
// families end in _total, and every value is derived from one
// obs.Snapshot so a scrape is internally consistent and monotone across
// scrapes.

// escapeLabel escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// family emits one metric family: HELP, TYPE, then samples.
type family struct {
	name, help, typ string
	samples         []sample
}

type sample struct {
	labels string // rendered `{...}` body, may be empty
	value  string
}

func (f *family) add(labels, value string) {
	f.samples = append(f.samples, sample{labels: labels, value: value})
}

func (f *family) write(w io.Writer) {
	if len(f.samples) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	for _, s := range f.samples {
		if s.labels == "" {
			fmt.Fprintf(w, "%s %s\n", f.name, s.value)
		} else {
			fmt.Fprintf(w, "%s{%s} %s\n", f.name, s.labels, s.value)
		}
	}
}

// probeKey aggregates per-probe samples the same way Stats.WriteTable
// groups its rows: one series per (label, trigger, mechanism) — a
// multi-site action is one series, not one per placement site.
type probeKey struct {
	label, trigger, mech string
}

// writeMetrics renders the snapshot as Prometheus text exposition. The
// collector supplies the subscriber gauges, which are not part of the
// snapshot.
func writeMetrics(w io.Writer, snap *obs.Stats, col *obs.Collector) {
	// escapeLabel already renders exposition escaping, so values are
	// wrapped in plain quotes (%q would escape a second time).
	base := fmt.Sprintf(`backend="%s"`, escapeLabel(snap.Backend))

	probeLabels := func(k probeKey) string {
		return fmt.Sprintf(`%s,probe="%s",trigger="%s",mechanism="%s"`,
			base, escapeLabel(k.label), escapeLabel(k.trigger), escapeLabel(k.mech))
	}

	type agg struct{ fires, skips, cycles uint64 }
	byKey := map[probeKey]*agg{}
	var keys []probeKey
	for _, p := range snap.Probes {
		k := probeKey{p.Label, p.Trigger, p.Mechanism}
		a, ok := byKey[k]
		if !ok {
			a = &agg{}
			byKey[k] = a
			keys = append(keys, k)
		}
		a.fires += p.Fires
		a.skips += p.Skips
		a.cycles += p.Cycles
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.label != b.label {
			return a.label < b.label
		}
		if a.trigger != b.trigger {
			return a.trigger < b.trigger
		}
		return a.mech < b.mech
	})

	fires := family{name: "cinnamon_probe_fires_total",
		help: "Probe firings, by probe label, trigger and dispatch mechanism.", typ: "counter"}
	skips := family{name: "cinnamon_probe_skips_total",
		help: "Sampled-probe hits swallowed by the sampling gate.", typ: "counter"}
	cycles := family{name: "cinnamon_probe_cycles_total",
		help: "Instrumentation cycle units attributed to probe firings.", typ: "counter"}
	for _, k := range keys {
		a := byKey[k]
		fires.add(probeLabels(k), fmt.Sprintf("%d", a.fires))
		skips.add(probeLabels(k), fmt.Sprintf("%d", a.skips))
		cycles.add(probeLabels(k), fmt.Sprintf("%d", a.cycles))
	}
	fires.write(w)
	skips.write(w)
	cycles.write(w)

	unFires := family{name: "cinnamon_untracked_fires_total",
		help: "Firings of probes not registered with the collector.", typ: "counter"}
	unFires.add(base, fmt.Sprintf("%d", snap.UntrackedFires))
	unFires.write(w)
	unCycles := family{name: "cinnamon_untracked_cycles_total",
		help: "Cycle units of untracked firings.", typ: "counter"}
	unCycles.add(base, fmt.Sprintf("%d", snap.UntrackedCycles))
	unCycles.write(w)
	unSkips := family{name: "cinnamon_untracked_skips_total",
		help: "Sampling-gate skips of untracked probes.", typ: "counter"}
	unSkips.add(base, fmt.Sprintf("%d", snap.UntrackedSkips))
	unSkips.write(w)

	b := snap.Build
	for _, g := range []struct {
		name, help string
		value      int
	}{
		{"cinnamon_build_actions_placed", "Compiled actions handed to the backend placer.", b.ActionsPlaced},
		{"cinnamon_build_static_filtered", "Placements skipped by static where-constraints.", b.StaticFiltered},
		{"cinnamon_build_rules_emitted", "Janus rewrite rules produced by the static analyzer.", b.RulesEmitted},
		{"cinnamon_build_clean_calls", "Clean-call insertions by the dynamic frameworks.", b.CleanCalls},
		{"cinnamon_build_inlined_calls", "Inlined-call insertions by the dynamic frameworks.", b.InlinedCalls},
		{"cinnamon_build_snippets", "Dyninst snippet insertions.", b.Snippets},
	} {
		f := family{name: g.name, help: g.help, typ: "gauge"}
		f.add(base, fmt.Sprintf("%d", g.value))
		f.write(w)
	}
	blocks := family{name: "cinnamon_translated_blocks_total",
		help: "Just-in-time block translations.", typ: "counter"}
	blocks.add(base, fmt.Sprintf("%d", b.BlocksTranslated))
	blocks.write(w)
	transCyc := family{name: "cinnamon_translation_cycles_total",
		help: "Cycle units charged to just-in-time block translation.", typ: "counter"}
	transCyc.add(base, fmt.Sprintf("%d", b.TranslationCycles))
	transCyc.write(w)

	trDropped := family{name: "cinnamon_trace_dropped_total",
		help: "Trace-ring events overwritten by wraparound.", typ: "counter"}
	trDropped.add(base, fmt.Sprintf("%d", col.TraceDropped()))
	trDropped.write(w)
	subs := family{name: "cinnamon_trace_subscribers",
		help: "Live SSE/trace subscriptions on the collector.", typ: "gauge"}
	subs.add(base, fmt.Sprintf("%d", col.Subscribers()))
	subs.write(w)
	subDropped := family{name: "cinnamon_trace_subscriber_dropped_total",
		help: "Events dropped across all trace subscriptions (live and retired).", typ: "counter"}
	subDropped.add(base, fmt.Sprintf("%d", col.SubscriberDrops()))
	subDropped.write(w)
}

// writeGovernorMetrics renders the overhead governor's state as
// exposition families (appended to a /metrics scrape when a governor is
// attached).
func writeGovernorMetrics(w io.Writer, backend string, st governor.State) {
	base := fmt.Sprintf(`backend="%s"`, escapeLabel(backend))
	budget := family{name: "cinnamon_governor_budget",
		help: "Configured probe-overhead budget (fraction of machine cycles).", typ: "gauge"}
	budget.add(base, fmt.Sprintf("%g", st.Budget))
	budget.write(w)
	paces := family{name: "cinnamon_governor_paces_total",
		help: "Governor evaluation points so far.", typ: "counter"}
	paces.add(base, fmt.Sprintf("%d", st.Paces))
	paces.write(w)
	over := family{name: "cinnamon_governor_overhead",
		help: "Attributed probe overhead of the most recent governor window.", typ: "gauge"}
	over.add(base, fmt.Sprintf("%g", st.LastOverhead))
	over.write(w)
	cum := family{name: "cinnamon_governor_cum_overhead",
		help: "Attributed probe overhead of the run so far.", typ: "gauge"}
	cum.add(base, fmt.Sprintf("%g", st.CumOverhead))
	cum.write(w)
	decisions := family{name: "cinnamon_governor_decisions_total",
		help: "Control decisions taken (downsample, eject, rearm, stride).", typ: "counter"}
	decisions.add(base, fmt.Sprintf("%d", len(st.Decisions)))
	decisions.write(w)
	var ejected int
	for _, p := range st.Probes {
		if !p.Enabled {
			ejected++
		}
	}
	ej := family{name: "cinnamon_governor_ejected_probes",
		help: "Probes currently ejected by the governor.", typ: "gauge"}
	ej.add(base, fmt.Sprintf("%d", ejected))
	ej.write(w)
}
