package monitor

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Fleet exposition: the per-probe, untracked, trace and governor
// families of the single-run writer, re-rendered with session/tool/
// victim/backend labels for every registered session, plus the
// cinnamon_fleet_* rollups. The rollups are computed from the very same
// per-session snapshots the labelled series are rendered from — one
// snapshot per session per scrape — so the fleet totals are exactly the
// sum of the per-session series, never an approximation from a second
// read.

// sessionBase renders the identifying label set of a session.
func sessionBase(l SessionLabels) string {
	return fmt.Sprintf(`session="%s",tool="%s",victim="%s",backend="%s"`,
		escapeLabel(l.Session), escapeLabel(l.Tool), escapeLabel(l.Victim), escapeLabel(l.Backend))
}

// WriteFleetMetrics renders the whole fleet as one exposition document
// — the body of the fleet /metrics endpoint, exported so the scheduler's
// soak tests and the load harness can render scrapes without a listener.
func WriteFleetMetrics(w io.Writer, f *Fleet) { writeFleetMetrics(w, f) }

// writeFleetMetrics renders the whole fleet as one exposition document.
func writeFleetMetrics(w io.Writer, f *Fleet) {
	sessions := f.Sessions()

	// One snapshot per session; every family below reads from these.
	type sessSnap struct {
		s    *FleetSession
		base string
		snap *obs.Stats
	}
	snaps := make([]sessSnap, 0, len(sessions))
	for _, s := range sessions {
		l := s.Labels()
		snaps = append(snaps, sessSnap{s: s, base: sessionBase(l), snap: s.Collector().Snapshot(l.Backend)})
	}

	fires := family{name: "cinnamon_probe_fires_total",
		help: "Probe firings, by session, probe label, trigger and dispatch mechanism.", typ: "counter"}
	skips := family{name: "cinnamon_probe_skips_total",
		help: "Sampled-probe hits swallowed by the sampling gate.", typ: "counter"}
	cycles := family{name: "cinnamon_probe_cycles_total",
		help: "Instrumentation cycle units attributed to probe firings.", typ: "counter"}
	unFires := family{name: "cinnamon_untracked_fires_total",
		help: "Firings of probes not registered with the session's collector.", typ: "counter"}
	unCycles := family{name: "cinnamon_untracked_cycles_total",
		help: "Cycle units of untracked firings.", typ: "counter"}
	unSkips := family{name: "cinnamon_untracked_skips_total",
		help: "Sampling-gate skips of untracked probes.", typ: "counter"}
	sessFires := family{name: "cinnamon_session_fires_total",
		help: "All probe firings of the session, untracked included.", typ: "counter"}
	sessSkips := family{name: "cinnamon_session_skips_total",
		help: "All sampling-gate skips of the session, untracked included.", typ: "counter"}
	sessCycles := family{name: "cinnamon_session_cycles_total",
		help: "All instrumentation cycle units of the session, untracked included.", typ: "counter"}
	sessAttempts := family{name: "cinnamon_session_attempts_total",
		help: "Scheduler attempts of the session (restarts count).", typ: "counter"}
	trDropped := family{name: "cinnamon_trace_dropped_total",
		help: "Trace-ring events overwritten by wraparound.", typ: "counter"}
	subs := family{name: "cinnamon_trace_subscribers",
		help: "Live SSE/trace subscriptions on the session's collector.", typ: "gauge"}
	subDropped := family{name: "cinnamon_trace_subscriber_dropped_total",
		help: "Events dropped across the session's trace subscriptions (live and retired).", typ: "counter"}

	// Fleet rollups, accumulated while the labelled families render.
	var fleetFires, fleetSkips, fleetCycles uint64
	var fleetProbes int

	for _, ss := range snaps {
		snap := ss.snap

		type agg struct{ fires, skips, cycles uint64 }
		byKey := map[probeKey]*agg{}
		var keys []probeKey
		for _, p := range snap.Probes {
			k := probeKey{p.Label, p.Trigger, p.Mechanism}
			a, ok := byKey[k]
			if !ok {
				a = &agg{}
				byKey[k] = a
				keys = append(keys, k)
			}
			a.fires += p.Fires
			a.skips += p.Skips
			a.cycles += p.Cycles
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.label != b.label {
				return a.label < b.label
			}
			if a.trigger != b.trigger {
				return a.trigger < b.trigger
			}
			return a.mech < b.mech
		})
		for _, k := range keys {
			a := byKey[k]
			labels := fmt.Sprintf(`%s,probe="%s",trigger="%s",mechanism="%s"`,
				ss.base, escapeLabel(k.label), escapeLabel(k.trigger), escapeLabel(k.mech))
			fires.add(labels, fmt.Sprintf("%d", a.fires))
			skips.add(labels, fmt.Sprintf("%d", a.skips))
			cycles.add(labels, fmt.Sprintf("%d", a.cycles))
		}

		unFires.add(ss.base, fmt.Sprintf("%d", snap.UntrackedFires))
		unCycles.add(ss.base, fmt.Sprintf("%d", snap.UntrackedCycles))
		unSkips.add(ss.base, fmt.Sprintf("%d", snap.UntrackedSkips))

		// Per-session totals from the same snapshot: the series the
		// fleet rollups must equal the sum of.
		sessFires.add(ss.base, fmt.Sprintf("%d", snap.TotalFires))
		sessSkips.add(ss.base, fmt.Sprintf("%d", snap.TotalSkips))
		sessCycles.add(ss.base, fmt.Sprintf("%d", snap.ProbeCycles))

		info := ss.s.Info()
		sessAttempts.add(ss.base, fmt.Sprintf("%d", info.Attempts))

		col := ss.s.Collector()
		trDropped.add(ss.base, fmt.Sprintf("%d", col.TraceDropped()))
		subs.add(ss.base, fmt.Sprintf("%d", col.Subscribers()))
		subDropped.add(ss.base, fmt.Sprintf("%d", col.SubscriberDrops()))

		fleetFires += snap.TotalFires
		fleetSkips += snap.TotalSkips
		fleetCycles += snap.ProbeCycles
		fleetProbes += len(snap.Probes)
	}

	for _, fam := range []*family{
		&fires, &skips, &cycles,
		&unFires, &unCycles, &unSkips,
		&sessFires, &sessSkips, &sessCycles, &sessAttempts,
		&trDropped, &subs, &subDropped,
	} {
		fam.write(w)
	}

	// Rollups. Emitted even for an empty fleet (zero-valued), so a
	// scraper always sees the fleet families.
	for _, g := range []struct {
		name, help, typ string
		value           string
	}{
		{"cinnamon_fleet_fires_total", "All probe firings across the fleet (sum of cinnamon_session_fires_total).", "counter", fmt.Sprintf("%d", fleetFires)},
		{"cinnamon_fleet_skips_total", "All sampling-gate skips across the fleet (sum of cinnamon_session_skips_total).", "counter", fmt.Sprintf("%d", fleetSkips)},
		{"cinnamon_fleet_cycles_total", "All instrumentation cycle units across the fleet (sum of cinnamon_session_cycles_total).", "counter", fmt.Sprintf("%d", fleetCycles)},
		{"cinnamon_fleet_probes", "Registered probes across the fleet.", "gauge", fmt.Sprintf("%d", fleetProbes)},
	} {
		fam := family{name: g.name, help: g.help, typ: g.typ}
		fam.add("", g.value)
		fam.write(w)
	}

	states := family{name: "cinnamon_fleet_sessions",
		help: "Sessions by lifecycle state.", typ: "gauge"}
	counts := map[SessionState]int{}
	for _, ss := range snaps {
		counts[ss.s.State()]++
	}
	for _, st := range SessionStates() {
		states.add(fmt.Sprintf(`state="%s"`, st), fmt.Sprintf("%d", counts[st]))
	}
	states.write(w)

	// Governor families, for governed sessions. The per-session subset
	// of writeGovernorMetrics: budget, cumulative overhead, ejections
	// (full decision history stays on the per-run /governor endpoint).
	budgetF := family{name: "cinnamon_governor_budget",
		help: "Configured probe-overhead budget (fraction of machine cycles).", typ: "gauge"}
	overF := family{name: "cinnamon_governor_cum_overhead",
		help: "Attributed probe overhead of the run so far.", typ: "gauge"}
	ejF := family{name: "cinnamon_governor_ejected_probes",
		help: "Probes currently ejected by the governor.", typ: "gauge"}
	for _, ss := range snaps {
		g := ss.s.Governor()
		if g == nil {
			continue
		}
		st := g.State()
		budgetF.add(ss.base, fmt.Sprintf("%g", st.Budget))
		overF.add(ss.base, fmt.Sprintf("%g", st.CumOverhead))
		var ejected int
		for _, p := range st.Probes {
			if !p.Enabled {
				ejected++
			}
		}
		ejF.add(ss.base, fmt.Sprintf("%d", ejected))
	}
	budgetF.write(w)
	overF.write(w)
	ejF.write(w)
}

// ParseSamples parses a text-exposition document into a series→value
// map, keyed by the full sample line head ("name{labels}"). Comment and
// blank lines are skipped. The load harness (internal/bench) and the
// fleet smoke script use it to assert rollup consistency against a live
// /metrics scrape.
func ParseSamples(text string) map[string]float64 {
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value follows the last space outside braces; label values
		// may themselves contain spaces.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}
