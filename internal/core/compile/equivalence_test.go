package compile_test

// Observational-equivalence tests for the closure-compiled execution
// path: every case-study tool, on every backend, must behave identically
// under Options.Interpret (the tree-walking reference) and under the
// compiled closures — same tool output, same cycle and instruction
// counts, and the same recorded runtime-error state.

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/core/backend"
	"repro/internal/core/engine"
	"repro/internal/obj"
	"repro/internal/progs"
	"repro/internal/vm"
	"repro/internal/workload"
)

// loadsTarget is a small executable with loads both straight-line and
// inside a loop, so counting tools and per-block actions all fire.
const loadsTarget = `
.module a.out
.executable
.entry main
.func main
  mov  r5, @buf
  load r4, [r5]
  mov  r2, 0
  mov  r3, 10
head:
  load r4, [r5+8]
  add  r2, r2, 1
  blt  r2, r3, head
  halt
.data
buf: .quad 1, 2
`

// equivTargets maps every case-study tool to the programs it runs
// against. Victim names come from workload.Victims; "src:" entries are
// inline assembly. Cases where a backend rejects the tool (loop coverage
// on Pin) or the tool reports errors (the *_bug victims) are included on
// purpose: failure state must match between the two execution paths too.
var equivTargets = map[string][]string{
	progs.InstCountBasic: {"src:loads", "loopy"},
	progs.InstCountBB:    {"src:loads", "loopy"},
	progs.OpcodeMix:      {"src:loads", "loopy"},
	progs.LoopCoverage:   {"loopy"},
	progs.UseAfterFree:   {"uaf_bug", "uaf_clean"},
	progs.ShadowStack:    {"stack_smash", "stack_clean"},
	progs.ForwardCFI:     {"indirect_attack", "indirect_clean"},
}

func buildTargetTB(tb testing.TB, target string) *cfg.Program {
	tb.Helper()
	var mods []*obj.Module
	if target == "src:loads" {
		m, err := asm.Assemble(loadsTarget)
		if err != nil {
			tb.Fatal(err)
		}
		mods = []*obj.Module{m}
	} else {
		m, err := workload.Victim(target)
		if err != nil {
			tb.Fatal(err)
		}
		mods = []*obj.Module{m}
	}
	p, err := obj.Load(mods, vm.RuntimeExterns())
	if err != nil {
		tb.Fatal(err)
	}
	prog, err := cfg.Build(p)
	if err != nil {
		tb.Fatal(err)
	}
	return prog
}

// runMode runs a tool on a freshly built target under one backend and
// execution mode, returning everything observable about the run.
func runMode(t *testing.T, toolName, target, backendName string, interpret bool) (string, *vm.Result, error) {
	t.Helper()
	tool, err := engine.Compile(progs.MustSource(toolName))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	res, err := backend.Run(tool, buildTargetTB(t, target), backendName, backend.Options{
		Out:       &out,
		Interpret: interpret,
	})
	return out.String(), res, err
}

func TestInterpCompiledEquivalence(t *testing.T) {
	for _, toolName := range progs.Names() {
		targets, ok := equivTargets[toolName]
		if !ok {
			t.Fatalf("tool %s has no equivalence targets; add it to equivTargets", toolName)
		}
		for _, target := range targets {
			for _, bk := range backend.Backends() {
				iOut, iRes, iErr := runMode(t, toolName, target, bk, true)
				cOut, cRes, cErr := runMode(t, toolName, target, bk, false)
				name := toolName + "/" + target + "/" + bk
				if iOut != cOut {
					t.Errorf("%s: output diverged:\ninterp:   %q\ncompiled: %q", name, iOut, cOut)
				}
				if (iErr == nil) != (cErr == nil) {
					t.Errorf("%s: error state diverged: interp=%v compiled=%v", name, iErr, cErr)
					continue
				}
				if iErr != nil {
					if iErr.Error() != cErr.Error() {
						t.Errorf("%s: error text diverged:\ninterp:   %v\ncompiled: %v", name, iErr, cErr)
					}
					continue
				}
				if iRes.Cycles != cRes.Cycles {
					t.Errorf("%s: cycles diverged: interp=%d compiled=%d", name, iRes.Cycles, cRes.Cycles)
				}
				if iRes.Insts != cRes.Insts {
					t.Errorf("%s: instruction counts diverged: interp=%d compiled=%d", name, iRes.Insts, cRes.Insts)
				}
			}
		}
	}
}

// faultySrc divides by zero on the first load: both execution paths must
// record the same runtime error (message and position) on the Instance.
const faultySrc = `
uint64 n = 0;
inst I where (I.opcode == Load) {
  before I {
    n = n / (I.memaddr - I.memaddr);
  }
}
exit { print(n); }
`

func TestRuntimeErrorEquivalence(t *testing.T) {
	run := func(interpret bool) (string, error) {
		tool, err := engine.Compile(faultySrc)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		_, err = backend.Run(tool, buildTargetTB(t, "src:loads"), backend.Pin, backend.Options{
			Out:       &out,
			Interpret: interpret,
		})
		return out.String(), err
	}
	iOut, iErr := run(true)
	cOut, cErr := run(false)
	if iErr == nil || cErr == nil {
		t.Fatalf("both modes must fail: interp=%v compiled=%v", iErr, cErr)
	}
	if iErr.Error() != cErr.Error() {
		t.Errorf("error text diverged:\ninterp:   %v\ncompiled: %v", iErr, cErr)
	}
	if iOut != cOut {
		t.Errorf("output diverged: interp=%q compiled=%q", iOut, cOut)
	}
}
