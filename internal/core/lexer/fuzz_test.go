package lexer

import (
	"testing"

	"repro/internal/progs"
)

// FuzzLexer: the tokenizer must return tokens or a positioned error on
// any byte sequence — never panic, never loop. Seeded with the real
// case-study sources plus inputs aimed at the literal scanners.
func FuzzLexer(f *testing.F) {
	for _, name := range progs.Names() {
		f.Add(progs.MustSource(name))
	}
	for _, s := range []string{
		"", `"unterminated`, `'c`, `'\`, `"\x"`, "0x", "// comment only",
		"/* unterminated block", "a.b.c[0](1,2)", "dict<int,dict<int,int>>",
		"\xff\xfe", "9999999999999999999999999999",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Tokenize(src)
		if err == nil && len(toks) == 0 {
			t.Fatal("no tokens and no error")
		}
	})
}
