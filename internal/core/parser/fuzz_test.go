package parser

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/progs"
)

// FuzzParser is the native-fuzzing upgrade of the soup tests below: the
// corpus starts from the real case-study programs and the token-soup
// vocabulary, and the mutation engine takes it from there. The
// invariant is the same — a program or an error, never a panic or hang.
func FuzzParser(f *testing.F) {
	for _, name := range progs.Names() {
		f.Add(progs.MustSource(name))
	}
	f.Add(strings.Join(soupWords, " "))
	f.Add("inst I where (I.opcode == Load) { before I { n = n + 1; } }")
	f.Add("for (;;) {}")
	f.Add("dict<int,dict<int,int>> d;")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Fatal("nil program and nil error")
		}
	})
}

// TestQuickParserNeverPanics feeds the parser random byte soup and
// random token-shaped soup: it must always return a program or an error,
// never panic or hang.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Parse(string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

// words that commonly appear in Cinnamon programs; random sequences of
// them reach much deeper into the parser than raw bytes.
var soupWords = []string{
	"inst", "basicblock", "func", "loop", "module", "before", "after",
	"entry", "exit", "iter", "init", "where", "if", "else", "for",
	"int", "uint64", "addr", "bool", "dict", "vector", "file", "line",
	"IsType", "mem", "reg", "const", "NULL", "true", "false",
	"Load", "Call", "I", "B", "x", "y", "print",
	"{", "}", "(", ")", "[", "]", ";", ",", ".", "=", "==", "!=",
	"<", ">", "&&", "||", "+", "-", "*", "/", "%", "!",
	"0", "1", "42", `"s"`, "'c'",
}

func TestTokenSoupNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		n := 1 + r.Intn(40)
		var b strings.Builder
		for k := 0; k < n; k++ {
			b.WriteString(soupWords[r.Intn(len(soupWords))])
			b.WriteByte(' ')
		}
		_, _ = Parse(b.String())
	}
}

// TestMutatedCaseStudiesNeverPanic mutates valid programs byte by byte;
// every mutation must parse or fail cleanly.
func TestMutatedCaseStudiesNeverPanic(t *testing.T) {
	base := `
uint64 n = 0;
inst I where (I.opcode == Load) {
  before I { n = n + 1; }
}
exit { print(n); }
`
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		mut := []byte(base)
		for k := 0; k < 1+r.Intn(3); k++ {
			mut[r.Intn(len(mut))] = byte(32 + r.Intn(95))
		}
		_, _ = Parse(string(mut))
	}
}
