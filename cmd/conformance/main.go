// Command conformance runs the differential conformance sweep: seeded
// generated Cinnamon programs and victims cross-checked over all three
// backends and both execution tiers, with the paper's legal divergences
// (Pin sees shared libraries, Dyninst CFG-skip, Pin has no loops)
// classified by the structured oracle rather than masked.
//
// Usage:
//
//	conformance -seeds 200 [-start 0] [-budget 30s] [-save dir] [-v]
//
// On an illegal divergence it shrinks the tool program to a minimal
// reproducer, prints the .cin source and the seed, optionally persists
// the pair into the regression corpus, and exits nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/conformance"
)

func main() {
	var (
		seeds  = flag.Uint64("seeds", 100, "number of seeds to sweep")
		start  = flag.Uint64("start", 0, "first seed")
		budget = flag.Duration("budget", 30*time.Second, "wall-clock budget (0 = unlimited)")
		save   = flag.String("save", "", "directory to persist shrunk failures as .cinpair corpus entries")
		v      = flag.Bool("v", false, "print every legal divergence as it is classified")
	)
	flag.Parse()

	var deadline time.Time
	if *budget > 0 {
		deadline = time.Now().Add(*budget)
	}

	res := conformance.Sweep(*start, *seeds, deadline)

	if *v {
		for seed := *start; seed < *start+uint64(res.Seeds); seed++ {
			pr, err := conformance.CheckSeed(seed)
			if err != nil {
				continue
			}
			for _, d := range pr.Divergences {
				if d.Legal {
					fmt.Printf("seed %d: %s\n", seed, d)
				}
			}
		}
	}

	fail := false
	for _, err := range res.Errors {
		fail = true
		fmt.Fprintf(os.Stderr, "generator error: %v\n", err)
	}
	for _, pr := range res.Failures {
		fail = true
		shrunk := conformance.ShrinkFailure(pr)
		fmt.Fprint(os.Stderr, conformance.DescribeFailure(pr, shrunk))
		if *save != "" {
			name := filepath.Join(*save, fmt.Sprintf("seed_%d.cinpair", pr.Program.Seed))
			entry := conformance.FormatPair(shrunk, pr.Victim.Srcs)
			if err := os.WriteFile(name, []byte(entry), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "save %s: %v\n", name, err)
			} else {
				fmt.Fprintf(os.Stderr, "saved %s\n", name)
			}
		}
	}
	if res.TimedOut {
		fmt.Fprintln(os.Stderr, "warning: budget expired before the sweep finished")
	}
	fmt.Print(res.Summary())
	if fail {
		os.Exit(1)
	}
}
