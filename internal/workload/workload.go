// Package workload generates the benchmark programs used by the
// experiments. It provides a deterministic, seeded generator of synthetic
// benchmarks named after the SPEC CPU 2017 suite — the workloads of the
// paper's Figures 12 and 13 — plus the hand-written "victim" programs that
// the monitoring case studies (use-after-free, shadow stack, forward CFI)
// are demonstrated on.
//
// The SPEC substitution is documented in DESIGN.md: the experiments need
// workloads with varied instruction mixes, loop and call structure,
// shared-library usage (Pin observes shared libraries, static frameworks
// do not) and control-flow-recovery hazards (benchmarks with unrecoverable
// jump tables cannot be processed by the Dyninst-style backend). The
// generator's per-benchmark parameters produce exactly those axes of
// variation, and the same seed always generates the same program, so every
// measured number is reproducible.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/asm"
	"repro/internal/obj"
)

// Spec parameterizes one synthetic benchmark.
type Spec struct {
	// Name is the benchmark name (SPEC CPU 2017 vocabulary).
	Name string
	// Seed drives the deterministic program generator.
	Seed int64
	// Funcs is the number of generated worker functions.
	Funcs int
	// BodyOps is the approximate straight-line operation count per loop
	// body; larger values mean longer basic blocks.
	BodyOps int
	// MaxLoopDepth bounds loop nesting (1..3).
	MaxLoopDepth int
	// MemRatio is the fraction of body operations that access memory
	// (half loads, half stores).
	MemRatio float64
	// DivRatio is the fraction of body operations that are expensive
	// divisions.
	DivRatio float64
	// CallRatio is the per-body-op probability of a call to another
	// generated function or to the shared library.
	CallRatio float64
	// SharedLibFrac is the fraction of calls routed to libshared; the
	// benchmark links against the library iff this is positive. Shared
	// library code is visible only to dynamic instrumentation, which is
	// what separates Pin's counts in Figure 12.
	SharedLibFrac float64
	// JumpTables makes some functions dispatch through indirect-branch
	// jump tables.
	JumpTables bool
	// Unrecoverable marks the jump tables as unresolvable by static
	// analysis; the Dyninst-style backend refuses such binaries
	// (reproducing the benchmarks the paper could not run under Dyninst).
	Unrecoverable bool
	// IndirectCalls makes some functions call through a function-pointer
	// table (exercised by the forward-CFI case study).
	IndirectCalls bool
	// Iterations is the driver-loop trip count at scale 1.0.
	Iterations int
}

// SPEC2017 returns the 23-benchmark suite with per-benchmark parameters.
// Four benchmarks (omnetpp, exchange2, bwaves, fotonik3d) lean on the
// shared library, and five (perlbench, gcc, wrf, blender, cam4) contain
// unrecoverable control flow, matching the anomalies visible in the
// paper's Figures 12 and 13.
func SPEC2017() []Spec {
	return []Spec{
		{Name: "perlbench", Seed: 101, Funcs: 10, BodyOps: 10, MaxLoopDepth: 2, MemRatio: 0.30, DivRatio: 0.02, CallRatio: 0.10, JumpTables: true, Unrecoverable: true, IndirectCalls: true, Iterations: 40},
		{Name: "gcc", Seed: 102, Funcs: 14, BodyOps: 12, MaxLoopDepth: 2, MemRatio: 0.28, DivRatio: 0.02, CallRatio: 0.12, JumpTables: true, Unrecoverable: true, IndirectCalls: true, Iterations: 30},
		{Name: "mcf", Seed: 103, Funcs: 6, BodyOps: 8, MaxLoopDepth: 2, MemRatio: 0.42, DivRatio: 0.01, CallRatio: 0.05, Iterations: 60},
		{Name: "omnetpp", Seed: 104, Funcs: 10, BodyOps: 9, MaxLoopDepth: 2, MemRatio: 0.35, DivRatio: 0.01, CallRatio: 0.18, SharedLibFrac: 0.60, IndirectCalls: true, Iterations: 40},
		{Name: "xalancbmk", Seed: 105, Funcs: 12, BodyOps: 10, MaxLoopDepth: 2, MemRatio: 0.33, DivRatio: 0.01, CallRatio: 0.14, Iterations: 35},
		{Name: "x264", Seed: 106, Funcs: 8, BodyOps: 22, MaxLoopDepth: 3, MemRatio: 0.30, DivRatio: 0.01, CallRatio: 0.06, Iterations: 35},
		{Name: "deepsjeng", Seed: 107, Funcs: 9, BodyOps: 12, MaxLoopDepth: 2, MemRatio: 0.25, DivRatio: 0.03, CallRatio: 0.10, JumpTables: true, Iterations: 40},
		{Name: "leela", Seed: 108, Funcs: 8, BodyOps: 10, MaxLoopDepth: 2, MemRatio: 0.22, DivRatio: 0.04, CallRatio: 0.12, Iterations: 45},
		{Name: "exchange2", Seed: 109, Funcs: 7, BodyOps: 11, MaxLoopDepth: 3, MemRatio: 0.20, DivRatio: 0.01, CallRatio: 0.16, SharedLibFrac: 0.55, Iterations: 40},
		{Name: "xz", Seed: 110, Funcs: 6, BodyOps: 14, MaxLoopDepth: 2, MemRatio: 0.38, DivRatio: 0.01, CallRatio: 0.04, Iterations: 55},
		{Name: "bwaves", Seed: 111, Funcs: 7, BodyOps: 24, MaxLoopDepth: 3, MemRatio: 0.40, DivRatio: 0.05, CallRatio: 0.12, SharedLibFrac: 0.50, Iterations: 30},
		{Name: "cactuBSSN", Seed: 112, Funcs: 9, BodyOps: 26, MaxLoopDepth: 3, MemRatio: 0.36, DivRatio: 0.06, CallRatio: 0.04, Iterations: 25},
		{Name: "namd", Seed: 113, Funcs: 7, BodyOps: 20, MaxLoopDepth: 2, MemRatio: 0.34, DivRatio: 0.04, CallRatio: 0.05, Iterations: 35},
		{Name: "parest", Seed: 114, Funcs: 11, BodyOps: 16, MaxLoopDepth: 3, MemRatio: 0.32, DivRatio: 0.05, CallRatio: 0.08, Iterations: 25},
		{Name: "povray", Seed: 115, Funcs: 10, BodyOps: 12, MaxLoopDepth: 2, MemRatio: 0.26, DivRatio: 0.07, CallRatio: 0.14, Iterations: 30},
		{Name: "lbm", Seed: 116, Funcs: 5, BodyOps: 28, MaxLoopDepth: 3, MemRatio: 0.44, DivRatio: 0.02, CallRatio: 0.02, Iterations: 30},
		{Name: "wrf", Seed: 117, Funcs: 13, BodyOps: 18, MaxLoopDepth: 3, MemRatio: 0.34, DivRatio: 0.05, CallRatio: 0.07, JumpTables: true, Unrecoverable: true, Iterations: 22},
		{Name: "blender", Seed: 118, Funcs: 12, BodyOps: 14, MaxLoopDepth: 2, MemRatio: 0.28, DivRatio: 0.04, CallRatio: 0.12, JumpTables: true, Unrecoverable: true, IndirectCalls: true, Iterations: 28},
		{Name: "cam4", Seed: 119, Funcs: 12, BodyOps: 16, MaxLoopDepth: 3, MemRatio: 0.31, DivRatio: 0.05, CallRatio: 0.08, JumpTables: true, Unrecoverable: true, Iterations: 24},
		{Name: "imagick", Seed: 120, Funcs: 8, BodyOps: 20, MaxLoopDepth: 3, MemRatio: 0.29, DivRatio: 0.06, CallRatio: 0.05, Iterations: 30},
		{Name: "nab", Seed: 121, Funcs: 7, BodyOps: 15, MaxLoopDepth: 2, MemRatio: 0.27, DivRatio: 0.08, CallRatio: 0.06, Iterations: 35},
		{Name: "fotonik3d", Seed: 122, Funcs: 8, BodyOps: 22, MaxLoopDepth: 3, MemRatio: 0.41, DivRatio: 0.04, CallRatio: 0.11, SharedLibFrac: 0.50, Iterations: 28},
		{Name: "roms", Seed: 123, Funcs: 9, BodyOps: 24, MaxLoopDepth: 3, MemRatio: 0.37, DivRatio: 0.05, CallRatio: 0.05, Iterations: 26},
	}
}

// ByName returns the suite benchmark with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range SPEC2017() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Build generates the benchmark's modules: the executable, plus libshared
// when the benchmark uses it. scale multiplies the driver-loop iteration
// count (1.0 = the paper-equivalent "test" input; tests use smaller
// scales).
func (s Spec) Build(scale float64) ([]*obj.Module, error) {
	iters := int(float64(s.Iterations) * scale)
	if iters < 1 {
		iters = 1
	}
	g := &generator{spec: s, rng: rand.New(rand.NewSource(s.Seed)), iters: iters}
	src := g.program()
	mod, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w\n%s", s.Name, err, numbered(src))
	}
	mods := []*obj.Module{mod}
	if s.SharedLibFrac > 0 {
		lib, err := SharedLib()
		if err != nil {
			return nil, err
		}
		mods = append(mods, lib)
	}
	return mods, nil
}

func numbered(src string) string {
	lines := strings.Split(src, "\n")
	var b strings.Builder
	for i, l := range lines {
		fmt.Fprintf(&b, "%4d  %s\n", i+1, l)
	}
	return b.String()
}

// SharedLibFuncs is the number of functions exported by libshared.
const SharedLibFuncs = 6

// SharedLib generates the shared-library module linked by the benchmarks
// that use dynamic linkage. It is deterministic and identical across
// benchmarks.
func SharedLib() (*obj.Module, error) {
	var b strings.Builder
	b.WriteString(".module libshared\n")
	rng := rand.New(rand.NewSource(7777))
	for i := 0; i < SharedLibFuncs; i++ {
		fmt.Fprintf(&b, ".global lib%d\n", i)
	}
	b.WriteString("\n")
	for i := 0; i < SharedLibFuncs; i++ {
		// Leaf functions: a small loop of loads/stores/arithmetic over a
		// private buffer, using only scratch registers (r12..r15, r7) so
		// no callee saving is needed.
		n := 4 + rng.Intn(8)
		body := 3 + rng.Intn(5)
		fmt.Fprintf(&b, ".func lib%d\n", i)
		fmt.Fprintf(&b, "  mov r12, 0\n")
		fmt.Fprintf(&b, "lib%d_top:\n", i)
		fmt.Fprintf(&b, "  mov r14, @libbuf%d\n", i)
		for k := 0; k < body; k++ {
			switch rng.Intn(3) {
			case 0:
				fmt.Fprintf(&b, "  load r15, [r14+%d]\n", rng.Intn(24)*8)
			case 1:
				fmt.Fprintf(&b, "  store r15, [r14+%d]\n", rng.Intn(24)*8)
			default:
				fmt.Fprintf(&b, "  add r15, r15, %d\n", 1+rng.Intn(100))
			}
		}
		fmt.Fprintf(&b, "  add r12, r12, 1\n")
		fmt.Fprintf(&b, "  mov r13, %d\n", n)
		fmt.Fprintf(&b, "  blt r12, r13, lib%d_top\n", i)
		fmt.Fprintf(&b, "  ret\n\n")
	}
	b.WriteString(".data\n")
	for i := 0; i < SharedLibFuncs; i++ {
		fmt.Fprintf(&b, "libbuf%d: .space 192\n", i)
	}
	m, err := asm.Assemble(b.String())
	if err != nil {
		return nil, fmt.Errorf("workload: libshared: %w", err)
	}
	return m, nil
}

type generator struct {
	spec  Spec
	rng   *rand.Rand
	iters int

	b     strings.Builder
	label int
}

func (g *generator) newLabel(prefix string) string {
	g.label++
	return fmt.Sprintf("%s%d", prefix, g.label)
}

func (g *generator) emit(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

// program emits the whole benchmark: a driver main plus Funcs worker
// functions, each with its own data buffer.
func (g *generator) program() string {
	s := g.spec
	g.emit(".module %s", s.Name)
	g.emit(".executable")
	g.emit(".entry main")
	if s.SharedLibFrac > 0 {
		for i := 0; i < SharedLibFuncs; i++ {
			g.emit(".extern lib%d", i)
		}
	}
	g.emit("")

	// Driver: call every worker function, Iterations times. The counter
	// lives in r8, which workers save and restore.
	g.emit(".func main")
	g.emit("  mov r8, 0")
	g.emit("drive:")
	for i := 0; i < s.Funcs; i++ {
		g.emit("  call f%d", i)
	}
	g.emit("  add r8, r8, 1")
	g.emit("  mov r7, %d", g.iters)
	g.emit("  blt r8, r7, drive")
	g.emit("  halt")
	g.emit("")

	var jts []string
	for i := 0; i < s.Funcs; i++ {
		jts = append(jts, g.workerFunc(i)...)
	}
	g.tinyFuncsSection()

	g.emit(".data")
	for i := 0; i < s.Funcs; i++ {
		g.emit("buf%d: .space 256", i)
	}
	if s.IndirectCalls {
		// Function-pointer table over the leaf workers (the last two
		// functions never call anyone, so indirect calls cannot recurse).
		g.emit("fptab: .addr f%d, f%d", s.Funcs-1, s.Funcs-2)
	}
	for _, jt := range jts {
		g.emit("%s", jt)
	}
	return g.b.String()
}

// tinyFuncs is the number of tiny leaf helpers per benchmark.
const tinyFuncs = 2

// tinyFuncsSection emits the tiny leaf helpers: short straight-line
// functions using only scratch registers, callable from any loop depth.
func (g *generator) tinyFuncsSection() {
	for i := 0; i < tinyFuncs; i++ {
		g.emit(".func tiny%d", i)
		n := 3 + g.rng.Intn(4)
		for k := 0; k < n; k++ {
			g.emit("  add r15, r15, %d", 1+g.rng.Intn(9))
		}
		g.emit("  ret")
		g.emit("")
	}
}

// workerFunc emits function fi and returns any jump-table data directives
// to append to the data section.
func (g *generator) workerFunc(i int) []string {
	s := g.spec
	g.emit(".func f%d", i)
	// Callee-save the loop-counter registers r8..r11.
	g.emit("  sub sp, sp, 32")
	g.emit("  store r8, [sp]")
	g.emit("  store r9, [sp+8]")
	g.emit("  store r10, [sp+16]")
	g.emit("  store r11, [sp+24]")

	depth := 1 + g.rng.Intn(s.MaxLoopDepth)
	var jts []string
	// Benchmarks with jump tables are guaranteed at least one dispatch
	// per early worker, so the (un)recoverability property always holds
	// regardless of how the random mix falls out.
	if s.JumpTables && i < 2 {
		g.emitSwitch(i, &jts)
	}
	g.loopNest(i, 0, depth, &jts)

	g.emit("  load r8, [sp]")
	g.emit("  load r9, [sp+8]")
	g.emit("  load r10, [sp+16]")
	g.emit("  load r11, [sp+24]")
	g.emit("  add sp, sp, 32")
	g.emit("  ret")
	g.emit("")
	return jts
}

// loopNest emits a counted loop at the given nesting depth whose body is
// either another loop or a straight-line operation mix.
func (g *generator) loopNest(fi, depth, maxDepth int, jts *[]string) {
	counter := fmt.Sprintf("r%d", 8+depth) // r8..r10
	top := g.newLabel("loop")
	trip := 3 + g.rng.Intn(8)
	g.emit("  mov %s, 0", counter)
	g.emit("%s:", top)
	if depth+1 < maxDepth {
		g.body(fi, depth, jts, g.spec.BodyOps/3+1)
		g.loopNest(fi, depth+1, maxDepth, jts)
	} else {
		g.body(fi, depth, jts, g.spec.BodyOps)
	}
	g.emit("  add %s, %s, 1", counter, counter)
	g.emit("  mov r7, %d", trip)
	g.emit("  blt %s, r7, %s", counter, top)
}

// body emits n straight-line operations drawn from the benchmark's mix:
// loads/stores on the function's buffer, arithmetic, the occasional
// division, call, conditional diamond, jump-table switch, or indirect
// call.
func (g *generator) body(fi, depth int, jts *[]string, n int) {
	s := g.spec
	for k := 0; k < n; k++ {
		r := g.rng.Float64()
		switch {
		case r < s.MemRatio/2:
			g.emit("  mov r12, @buf%d", fi)
			g.emit("  load r13, [r12+%d]", g.rng.Intn(31)*8)
		case r < s.MemRatio:
			g.emit("  mov r12, @buf%d", fi)
			g.emit("  store r13, [r12+%d]", g.rng.Intn(31)*8)
		case r < s.MemRatio+s.DivRatio:
			g.emit("  div r13, r13, %d", 2+g.rng.Intn(9))
		case r < s.MemRatio+s.DivRatio+s.CallRatio && depth == 0:
			// Worker-to-worker calls only from the outermost loop body,
			// and only down the two-tier call graph (mid-tier workers
			// call leaf workers), so the dynamic call tree stays
			// polynomial in the loop trip counts instead of exploding
			// exponentially.
			g.emitCall(fi)
		case r < s.MemRatio+s.DivRatio+s.CallRatio && depth > 0:
			// Inside loops, calls go to tiny straight-line helpers; this
			// keeps the dynamic call frequency realistic (SPEC codes
			// call constantly) without blowing up the instruction count.
			// Shared-library-heavy benchmarks route depth-1 calls into
			// libshared, so a large share of their dynamic instructions
			// is only visible to dynamic instrumentation (Figure 12).
			if depth == 1 && s.SharedLibFrac > 0 && g.rng.Float64() < s.SharedLibFrac {
				g.emit("  call lib%d", g.rng.Intn(SharedLibFuncs))
			} else {
				g.emit("  call tiny%d", g.rng.Intn(tinyFuncs))
			}
		case r < s.MemRatio+s.DivRatio+s.CallRatio+0.05:
			// Conditional diamond.
			els := g.newLabel("else")
			end := g.newLabel("end")
			g.emit("  beq r13, r14, %s", els)
			g.emit("  add r13, r13, 3")
			g.emit("  b %s", end)
			g.emit("%s:", els)
			g.emit("  sub r13, r13, 1")
			g.emit("%s:", end)
		case r < s.MemRatio+s.DivRatio+s.CallRatio+0.07 && s.JumpTables && depth == 0:
			g.emitSwitch(fi, jts)
		case r < s.MemRatio+s.DivRatio+s.CallRatio+0.09 && s.IndirectCalls && fi < s.Funcs-2 && depth == 0:
			g.emit("  mov r12, @fptab+%d", g.rng.Intn(2)*8)
			g.emit("  load r12, [r12]")
			g.emit("  call r12")
		default:
			ops := []string{"add", "sub", "xor", "and", "or", "mul", "shl", "shr"}
			op := ops[g.rng.Intn(len(ops))]
			g.emit("  %s r%d, r%d, %d", op, 13+g.rng.Intn(3), 13+g.rng.Intn(3), 1+g.rng.Intn(31))
		}
	}
}

// emitCall emits a call to a leaf-tier worker or to libshared. Workers in
// the first half of the function list are the mid tier; the second half
// are leaves that never call other workers.
func (g *generator) emitCall(fi int) {
	s := g.spec
	if s.SharedLibFrac > 0 && g.rng.Float64() < s.SharedLibFrac {
		g.emit("  call lib%d", g.rng.Intn(SharedLibFuncs))
		return
	}
	leafStart := s.Funcs / 2
	if fi >= leafStart {
		// Leaf function: substitute arithmetic to keep the mix stable.
		g.emit("  add r13, r13, 7")
		return
	}
	g.emit("  call f%d", leafStart+g.rng.Intn(s.Funcs-leafStart))
}

// emitSwitch emits a jump-table dispatch with 3 cases and returns the
// table's data directives via jts.
func (g *generator) emitSwitch(fi int, jts *[]string) {
	id := g.newLabel("sw")
	const cases = 3
	g.emit("  rem r12, r8, %d", cases)
	g.emit("  mul r12, r12, 8")
	g.emit("  mov r13, @jt_%s", id)
	g.emit("  add r13, r13, r12")
	g.emit("  load r14, [r13]")
	g.emit("%s_br:", id)
	g.emit("  b r14")
	var targets []string
	for c := 0; c < cases; c++ {
		label := fmt.Sprintf("%s_case%d", id, c)
		targets = append(targets, label)
		g.emit("%s:", label)
		g.emit("  add r15, r15, %d", c+1)
		g.emit("  b %s_end", id)
	}
	g.emit("%s_end:", id)
	g.emit("  nop")
	recover := "recoverable"
	if g.spec.Unrecoverable {
		recover = "unrecoverable"
	}
	*jts = append(*jts,
		fmt.Sprintf("jt_%s: .addr %s", id, strings.Join(targets, ", ")),
		fmt.Sprintf(".jumptable jt_%s, %d, %s_br, %s", id, cases, id, recover),
	)
}
