#!/bin/sh
# Tier-1 gate: everything must pass before a change lands.
#
#   vet        static checks
#   build      every package compiles
#   race test  full suite under the race detector (the bench sweeps run
#              their (benchmark x framework) cells on a worker pool, so
#              this also exercises the parallel harness for races)
#   bench      one smoke iteration of every table/figure benchmark at a
#              reduced workload scale
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> bench smoke (CINNAMON_SCALE=0.1)"
CINNAMON_SCALE=0.1 go test -run '^$' -bench . -benchtime 1x .

echo "CI OK"
