package native

import (
	"fmt"
	"io"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/janus"
	"repro/internal/vm"
)

// Shadow-stack backward-edge CFI written directly against the Janus API:
// rules annotate every call and return in the executable; the push
// handler records the fall-through address, the check handler compares
// the return target against the shadow top.
func init() { register("janus", "shadowstack", janusShadowStack) }

func janusShadowStack(prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error) {
	const (
		hPush janus.HandlerID = iota + 1
		hCheck
	)
	var shadow []uint64
	tool := &janus.Tool{
		Name: "shadowstack",
		StaticPass: func(sa *janus.StaticAnalyzer) {
			for _, f := range sa.Executable().Funcs {
				for _, b := range f.Blocks {
					for _, in := range b.Insts {
						switch in.Op {
						case isa.Call:
							sa.EmitRule(janus.Rule{
								BlockAddr: b.Start, InstAddr: in.Addr,
								Trigger: janus.TriggerBefore, Handler: hPush,
								Data: []uint64{in.Next()}, // static fall-through
							})
						case isa.Return:
							sa.EmitRule(janus.Rule{
								BlockAddr: b.Start, InstAddr: in.Addr,
								Trigger: janus.TriggerBefore, Handler: hCheck,
							})
						}
					}
				}
			}
		},
		Handlers: map[janus.HandlerID]janus.Handler{
			hPush: {
				Fn:   func(_ *vm.Ctx, data []uint64) { shadow = append(shadow, data[0]) },
				Cost: 3 * stmtCost,
			},
			hCheck: {
				Fn: func(c *vm.Ctx, _ []uint64) {
					tgt, _ := c.Target()
					if len(shadow) > 0 && shadow[len(shadow)-1] == tgt {
						shadow = shadow[:len(shadow)-1]
					} else {
						fmt.Fprintln(out, "ERROR")
					}
				},
				Cost: 3 * stmtCost,
			},
		},
	}
	return janus.Run(prog, tool, janus.Config{Fuel: fuel})
}
