// Package cfg recovers control-flow structure from loaded binaries: it
// disassembles each module, discovers basic blocks and intraprocedural
// edges, computes dominator trees, and identifies natural loops with their
// nesting. The resulting module → function → loop → basic block →
// instruction hierarchy is exactly the control-flow-element (CFE) hierarchy
// that the Cinnamon language exposes, and all three instrumentation
// frameworks consume it.
//
// Indirect branches are resolved through jump-table metadata when the table
// is marked recoverable; otherwise the function is marked imprecise, which
// models the control-flow-recovery failures that real static frameworks
// (notably Dyninst in the paper's evaluation) exhibit.
package cfg

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/obj"
)

// Program is the control-flow view of a loaded program.
type Program struct {
	// Obj is the underlying loaded address space.
	Obj *obj.Program
	// Modules mirrors Obj.Modules (executable first).
	Modules []*Module

	instIndex  map[uint64]*isa.Inst
	blockIndex map[uint64]*Block // keyed by start address
}

// Module is the CFE view of one loaded module.
type Module struct {
	// Loaded is the underlying mapped module.
	Loaded *obj.Loaded
	// ID is the program-wide module identifier (0 = executable).
	ID int
	// Funcs lists the module's functions in address order.
	Funcs []*Func
	// Program is the enclosing program.
	Program *Program
}

// Name returns the module name.
func (m *Module) Name() string { return m.Loaded.Name }

// Func is a recovered function.
type Func struct {
	// ID is the program-wide function identifier.
	ID int
	// Name is the symbol name.
	Name string
	// Entry and End bound the function's code, [Entry, End).
	Entry, End uint64
	// Blocks lists the function's basic blocks in address order.
	Blocks []*Block
	// Loops lists the function's natural loops (outermost first, then by
	// header address).
	Loops []*Loop
	// Imprecise reports that control-flow recovery was incomplete: the
	// function contains an indirect branch whose targets could not be
	// resolved statically.
	Imprecise bool
	// Module is the enclosing module.
	Module *Module
}

// NumInsts returns the total instruction count of the function.
func (f *Func) NumInsts() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Insts)
	}
	return n
}

// Block is a basic block: a maximal single-entry, single-exit straight-line
// instruction sequence.
type Block struct {
	// ID is the program-wide block identifier.
	ID int
	// Start and End bound the block's code, [Start, End).
	Start, End uint64
	// Insts are the block's instructions in address order.
	Insts []*isa.Inst
	// Succs and Preds are the intraprocedural CFG edges.
	Succs, Preds []*Block
	// Func is the enclosing function.
	Func *Func

	// idom is the immediate dominator (nil for the entry block).
	idom *Block
	// rpo is the reverse-postorder number used by the dominance
	// computation (-1 for unreachable blocks).
	rpo int
}

// Last returns the block's final instruction.
func (b *Block) Last() *isa.Inst { return b.Insts[len(b.Insts)-1] }

// Idom returns the block's immediate dominator (nil for the function entry
// and for unreachable blocks).
func (b *Block) Idom() *Block { return b.idom }

// Dominates reports whether b dominates o (reflexively).
func (b *Block) Dominates(o *Block) bool {
	for n := o; n != nil; n = n.idom {
		if n == b {
			return true
		}
	}
	return false
}

// Edge is a directed intraprocedural CFG edge.
type Edge struct {
	From, To *Block
}

// Loop is a natural loop.
type Loop struct {
	// ID is the program-wide loop identifier.
	ID int
	// Header is the loop header block (the target of the back edges).
	Header *Block
	// Blocks is the loop body including the header, in address order.
	Blocks []*Block
	// Parent is the innermost enclosing loop, if any.
	Parent *Loop
	// Depth is the nesting depth (1 = outermost).
	Depth int
	// Entries are edges from outside the loop to the header.
	Entries []Edge
	// Backs are the back edges (from inside the loop to the header).
	Backs []Edge
	// Exits are edges from inside the loop to blocks outside it.
	Exits []Edge
	// Func is the enclosing function.
	Func *Func

	blockSet map[*Block]bool
}

// Contains reports whether the block belongs to the loop body.
func (l *Loop) Contains(b *Block) bool { return l.blockSet[b] }

// Build recovers control flow for every module of a loaded program.
func Build(p *obj.Program) (*Program, error) {
	prog := &Program{
		Obj:        p,
		instIndex:  make(map[uint64]*isa.Inst),
		blockIndex: make(map[uint64]*Block),
	}
	var funcID, blockID, loopID int
	for modID, l := range p.Modules {
		m := &Module{Loaded: l, ID: modID, Program: prog}
		for _, sym := range l.Funcs() {
			f, err := buildFunc(prog, m, l, sym, &blockID, &loopID)
			if err != nil {
				return nil, err
			}
			f.ID = funcID
			funcID++
			m.Funcs = append(m.Funcs, f)
		}
		prog.Modules = append(prog.Modules, m)
	}
	return prog, nil
}

// InstAt returns the decoded instruction starting at addr, or nil.
func (p *Program) InstAt(addr uint64) *isa.Inst { return p.instIndex[addr] }

// BlockStarting returns the basic block whose first instruction is at addr,
// or nil.
func (p *Program) BlockStarting(addr uint64) *Block { return p.blockIndex[addr] }

// FuncContaining returns the function whose extent contains addr, or nil.
func (p *Program) FuncContaining(addr uint64) *Func {
	for _, m := range p.Modules {
		if !m.Loaded.ContainsCode(addr) {
			continue
		}
		i := sort.Search(len(m.Funcs), func(i int) bool { return m.Funcs[i].Entry > addr })
		if i == 0 {
			return nil
		}
		f := m.Funcs[i-1]
		if addr >= f.Entry && addr < f.End {
			return f
		}
	}
	return nil
}

// FuncByName returns the named function, searching modules in load order.
func (p *Program) FuncByName(name string) *Func {
	for _, m := range p.Modules {
		for _, f := range m.Funcs {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// BlockContaining returns the basic block whose extent contains addr, or
// nil.
func (p *Program) BlockContaining(addr uint64) *Block {
	f := p.FuncContaining(addr)
	if f == nil {
		return nil
	}
	i := sort.Search(len(f.Blocks), func(i int) bool { return f.Blocks[i].Start > addr })
	if i == 0 {
		return nil
	}
	b := f.Blocks[i-1]
	if addr >= b.Start && addr < b.End {
		return b
	}
	return nil
}

func buildFunc(prog *Program, m *Module, l *obj.Loaded, sym obj.Symbol, blockID, loopID *int) (*Func, error) {
	f := &Func{
		Name:   sym.Name,
		Entry:  l.Base + sym.Off,
		End:    l.Base + sym.Off + sym.Size,
		Module: m,
	}
	code := l.Image[sym.Off : sym.Off+sym.Size]
	insts, err := isa.DecodeAll(code, f.Entry)
	if err != nil {
		return nil, fmt.Errorf("cfg: %s/%s: %w", l.Name, sym.Name, err)
	}
	if len(insts) == 0 {
		return f, nil
	}
	for _, in := range insts {
		prog.instIndex[in.Addr] = in
	}

	// Resolve jump tables belonging to this function's indirect branches.
	jtTargets := make(map[uint64][]uint64) // branch addr -> targets
	for _, jt := range l.JumpTables {
		braddr := l.Base + jt.BranchOff
		if braddr < f.Entry || braddr >= f.End {
			continue
		}
		if !jt.Recoverable {
			f.Imprecise = true
			continue
		}
		var targets []uint64
		for i := 0; i < jt.Count; i++ {
			off := jt.DataOff + uint64(i)*8
			var v uint64
			for k := 0; k < 8; k++ {
				v |= uint64(l.DataImage[off+uint64(k)]) << (8 * k)
			}
			targets = append(targets, v)
		}
		jtTargets[braddr] = targets
	}

	// Leaders: function entry, branch targets within the function, and
	// instructions following block-ending instructions.
	leaders := map[uint64]bool{f.Entry: true}
	for _, in := range insts {
		if tgt, ok := in.IsDirectTarget(); ok && in.Op == isa.Branch {
			if tgt >= f.Entry && tgt < f.End {
				leaders[tgt] = true
			}
		}
		if in.Op == isa.Branch && in.IsIndirect() {
			if targets, ok := jtTargets[in.Addr]; ok {
				for _, t := range targets {
					if t >= f.Entry && t < f.End {
						leaders[t] = true
					}
				}
			} else {
				f.Imprecise = true
			}
		}
		if in.EndsBlock() {
			if next := in.Next(); next < f.End {
				leaders[next] = true
			}
		}
	}

	// Carve blocks.
	byStart := make(map[uint64]*Block)
	var cur *Block
	for _, in := range insts {
		if leaders[in.Addr] || cur == nil {
			cur = &Block{ID: *blockID, Start: in.Addr, Func: f}
			*blockID++
			f.Blocks = append(f.Blocks, cur)
			byStart[in.Addr] = cur
			prog.blockIndex[in.Addr] = cur
		}
		cur.Insts = append(cur.Insts, in)
		cur.End = in.Next()
		if in.EndsBlock() {
			cur = nil
		}
	}

	// Wire edges.
	addEdge := func(from, to *Block) {
		from.Succs = append(from.Succs, to)
		to.Preds = append(to.Preds, from)
	}
	for _, b := range f.Blocks {
		last := b.Last()
		switch {
		case last.Op == isa.Branch && last.IsIndirect():
			for _, t := range jtTargets[last.Addr] {
				if tb := byStart[t]; tb != nil {
					addEdge(b, tb)
				}
			}
		case last.Op == isa.Branch:
			tgt, _ := last.IsDirectTarget()
			if tb := byStart[tgt]; tb != nil {
				addEdge(b, tb)
			}
			if last.IsConditional() {
				if fb := byStart[last.Next()]; fb != nil {
					addEdge(b, fb)
				}
			}
		case last.Op == isa.Return || last.Op == isa.Halt:
			// No intraprocedural successor.
		default:
			// Fallthrough into the next block.
			if fb := byStart[last.Next()]; fb != nil {
				addEdge(b, fb)
			}
		}
	}

	computeDominators(f)
	findLoops(f, loopID)
	return f, nil
}

// computeDominators fills in immediate dominators using the iterative
// algorithm of Cooper, Harvey and Kennedy over a reverse-postorder
// numbering.
func computeDominators(f *Func) {
	if len(f.Blocks) == 0 {
		return
	}
	entry := f.Blocks[0]
	for _, b := range f.Blocks {
		b.rpo = -1
		b.idom = nil
	}
	// Postorder DFS from the entry.
	var order []*Block
	seen := make(map[*Block]bool, len(f.Blocks))
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(entry)
	// Reverse postorder numbering.
	rpo := make([]*Block, len(order))
	for i, b := range order {
		n := len(order) - 1 - i
		b.rpo = n
		rpo[n] = b
	}

	intersect := func(a, b *Block) *Block {
		for a != b {
			for a.rpo > b.rpo {
				a = a.idom
			}
			for b.rpo > a.rpo {
				b = b.idom
			}
		}
		return a
	}

	entry.idom = entry
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *Block
			for _, p := range b.Preds {
				if p.rpo < 0 || p.idom == nil {
					continue // unreachable or unprocessed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && b.idom != newIdom {
				b.idom = newIdom
				changed = true
			}
		}
	}
	entry.idom = nil // by convention the entry has no immediate dominator
}

// findLoops identifies natural loops from back edges (t→h where h
// dominates t), merging loops that share a header, and computes nesting.
func findLoops(f *Func, loopID *int) {
	type rawLoop struct {
		header *Block
		blocks map[*Block]bool
		backs  []Edge
	}
	byHeader := make(map[*Block]*rawLoop)
	var headers []*Block
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if s.rpo >= 0 && b.rpo >= 0 && s.Dominates(b) {
				// b→s is a back edge with header s.
				rl := byHeader[s]
				if rl == nil {
					rl = &rawLoop{header: s, blocks: map[*Block]bool{s: true}}
					byHeader[s] = rl
					headers = append(headers, s)
				}
				rl.backs = append(rl.backs, Edge{From: b, To: s})
				// Collect the natural loop body: all blocks that reach
				// b without passing through s.
				stack := []*Block{b}
				for len(stack) > 0 {
					n := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if rl.blocks[n] {
						continue
					}
					rl.blocks[n] = true
					stack = append(stack, n.Preds...)
				}
			}
		}
	}
	sort.Slice(headers, func(i, j int) bool { return headers[i].Start < headers[j].Start })

	loops := make([]*Loop, 0, len(headers))
	for _, h := range headers {
		rl := byHeader[h]
		l := &Loop{Header: h, Func: f, Backs: rl.backs, blockSet: rl.blocks}
		for b := range rl.blocks {
			l.Blocks = append(l.Blocks, b)
		}
		sort.Slice(l.Blocks, func(i, j int) bool { return l.Blocks[i].Start < l.Blocks[j].Start })
		// Entry edges: predecessors of the header from outside the loop.
		for _, p := range h.Preds {
			if !rl.blocks[p] {
				l.Entries = append(l.Entries, Edge{From: p, To: h})
			}
		}
		// Exit edges: successors outside the loop.
		for _, b := range l.Blocks {
			for _, s := range b.Succs {
				if !rl.blocks[s] {
					l.Exits = append(l.Exits, Edge{From: b, To: s})
				}
			}
		}
		loops = append(loops, l)
	}

	// Nesting: the parent of loop L is the smallest loop that strictly
	// contains L's header and is not L itself.
	for _, l := range loops {
		var parent *Loop
		for _, o := range loops {
			if o == l || !o.blockSet[l.Header] {
				continue
			}
			// o contains l's header; prefer the smallest such loop.
			if o.blockSet[l.Header] && len(o.Blocks) > len(l.Blocks) {
				if parent == nil || len(o.Blocks) < len(parent.Blocks) {
					parent = o
				}
			}
		}
		l.Parent = parent
	}
	var depth func(*Loop) int
	depth = func(l *Loop) int {
		if l.Parent == nil {
			return 1
		}
		return depth(l.Parent) + 1
	}
	// Sort outermost-first, then by header address, and assign IDs.
	for _, l := range loops {
		l.Depth = depth(l)
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Depth != loops[j].Depth {
			return loops[i].Depth < loops[j].Depth
		}
		return loops[i].Header.Start < loops[j].Header.Start
	})
	for _, l := range loops {
		l.ID = *loopID
		*loopID++
	}
	f.Loops = loops
}
