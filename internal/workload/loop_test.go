package workload

import (
	"sort"
	"testing"

	"repro/internal/obj"
)

func TestLoopableVictimsSet(t *testing.T) {
	names := LoopableVictims()
	sort.Strings(names)
	want := []string{"indirect_attack", "indirect_clean", "loopy", "spin", "stack_clean", "uaf_bug", "uaf_clean"}
	if len(names) != len(want) {
		t.Fatalf("loopable = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("loopable = %v, want %v", names, want)
		}
	}
}

func TestLoopedVictimRejectsUnloopable(t *testing.T) {
	// stack_smash halts inside evil(), not main: the driver loop could
	// never regain control.
	if _, err := LoopedVictim("stack_smash", 10); err == nil {
		t.Fatal("stack_smash accepted")
	}
	if _, err := LoopedVictim("uaf_bug", 0); err == nil {
		t.Fatal("zero iterations accepted")
	}
	if _, err := LoopedVictim("nope", 10); err == nil {
		t.Fatal("unknown victim accepted")
	}
}

func TestLoopedVictimMultipliesBehaviour(t *testing.T) {
	// One plain run establishes the per-iteration work; the looped
	// variant must do exactly iters times as many allocs/frees.
	const iters = 25
	for _, name := range []string{"uaf_bug", "uaf_clean"} {
		m, err := LoopedVictim(name, iters)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_, res := buildAndRun(t, []*obj.Module{m}, 10_000_000)
		if res.Allocs != iters || res.Frees != iters {
			t.Errorf("%s looped x%d: allocs=%d frees=%d", name, iters, res.Allocs, res.Frees)
		}
	}

	// Every loopable victim assembles, runs and halts cleanly.
	for _, name := range LoopableVictims() {
		m, err := LoopedVictim(name, 3)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		_, res := buildAndRun(t, []*obj.Module{m}, 10_000_000)
		if res.ExitCode != 0 {
			t.Errorf("%s looped exit = %d", name, res.ExitCode)
		}
	}

	// The loop body really scales the run: 10x iterations is ~10x the
	// instruction count.
	m3, err := LoopedVictim("loopy", 3)
	if err != nil {
		t.Fatal(err)
	}
	_, res3 := buildAndRun(t, []*obj.Module{m3}, 50_000_000)
	m30, err := LoopedVictim("loopy", 30)
	if err != nil {
		t.Fatal(err)
	}
	_, res30 := buildAndRun(t, []*obj.Module{m30}, 50_000_000)
	if res30.Insts < 9*res3.Insts {
		t.Errorf("30 iters ran %d insts vs %d for 3 — loop not scaling", res30.Insts, res3.Insts)
	}
}
