package native

import (
	"fmt"
	"io"

	"repro/internal/cfg"
	"repro/internal/pin"
	"repro/internal/vm"
)

// Forward-edge CFI written directly against the Pin API (the native
// equivalent of Figure 9). Pin's routine mode provides the valid function
// entries ahead of time; the check is a set-membership test against a
// pre-built table, short and branch-light enough for Pin to inline —
// the hand-tuned trick the generated tool's generic vtable lookup cannot
// match, which is why the paper measures forward CFI among the costlier
// Cinnamon/Pin gaps.
func init() { register("pin", "forwardcfi", pinForwardCFI) }

func pinForwardCFI(prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error) {
	p := pin.New(prog, pin.Config{Fuel: fuel})
	valid := make(map[uint64]bool)
	p.RTNAddInstrumentFunction(func(r pin.RTN) {
		valid[r.Address()] = true
	})
	check := pin.Routine{
		Fn: func(args []uint64) {
			if !valid[args[0]] {
				fmt.Fprintln(out, "ERROR")
			}
		},
		Cost:      2 * stmtCost,
		Inlinable: true, // single hash probe + conditional report
	}
	p.INSAddInstrumentFunction(func(ins pin.INS) {
		if ins.IsCall() {
			must(ins.InsertCall(pin.IPointBefore, check, pin.BranchTarget()))
		}
	})
	return p.Run()
}
