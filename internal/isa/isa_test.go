package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := []struct {
		reg  Reg
		name string
	}{
		{R0, "r0"}, {R7, "r7"}, {R15, "r15"}, {SP, "sp"}, {FP, "fp"},
	}
	for _, c := range cases {
		if got := c.reg.String(); got != c.name {
			t.Errorf("%d.String() = %q, want %q", c.reg, got, c.name)
		}
		r, ok := RegByName(c.name)
		if !ok || r != c.reg {
			t.Errorf("RegByName(%q) = %v, %v; want %v, true", c.name, r, ok, c.reg)
		}
	}
	if _, ok := RegByName("r99"); ok {
		t.Error("RegByName(r99) succeeded, want failure")
	}
	if Reg(200).Valid() {
		t.Error("Reg(200).Valid() = true")
	}
}

func TestArgReg(t *testing.T) {
	for i := 1; i <= MaxArgRegs; i++ {
		if got := ArgReg(i); got != Reg(i) {
			t.Errorf("ArgReg(%d) = %v, want r%d", i, got, i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ArgReg(7) did not panic")
		}
	}()
	ArgReg(7)
}

func TestOpNames(t *testing.T) {
	for op := Nop; op < numOps; op++ {
		name := op.String()
		got, ok := OpByName(name)
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v; want %v, true", name, got, ok, op)
		}
	}
	if _, ok := OpByName("frobnicate"); ok {
		t.Error("OpByName(frobnicate) succeeded")
	}
}

func TestOpClassification(t *testing.T) {
	if !Branch.IsControlFlow() || !Call.IsControlFlow() || !Return.IsControlFlow() || !Halt.IsControlFlow() {
		t.Error("control-flow opcodes not classified as such")
	}
	if Add.IsControlFlow() || Load.IsControlFlow() {
		t.Error("non-control-flow opcode classified as control flow")
	}
	if !Load.IsMemAccess() || !Store.IsMemAccess() || Add.IsMemAccess() {
		t.Error("IsMemAccess misclassifies")
	}
	if !Add.IsArith() || !GetPtr.IsArith() || !Mov.IsArith() || Load.IsArith() {
		t.Error("IsArith misclassifies")
	}
}

func TestCondHolds(t *testing.T) {
	cases := []struct {
		cond Cond
		a, b int64
		want bool
	}{
		{Always, 0, 0, true},
		{EQ, 3, 3, true}, {EQ, 3, 4, false},
		{NE, 3, 4, true}, {NE, 3, 3, false},
		{LT, -1, 0, true}, {LT, 0, 0, false},
		{LE, 0, 0, true}, {LE, 1, 0, false},
		{GT, 1, 0, true}, {GT, 0, 0, false},
		{GE, 0, 0, true}, {GE, -1, 0, false},
	}
	for _, c := range cases {
		if got := c.cond.Holds(c.a, c.b); got != c.want {
			t.Errorf("%v.Holds(%d, %d) = %v, want %v", c.cond, c.a, c.b, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	valid := []*Inst{
		{Op: Nop},
		{Op: Mov, Ops: []Operand{RegOp(R1), ImmOp(42)}},
		{Op: Mov, Ops: []Operand{RegOp(R1), RegOp(R2)}},
		{Op: Load, Ops: []Operand{RegOp(R1), MemOp(SP, 8)}},
		{Op: Store, Ops: []Operand{RegOp(R1), MemOp(FP, -8)}},
		{Op: Add, Ops: []Operand{RegOp(R1), RegOp(R2), RegOp(R3)}},
		{Op: Add, Ops: []Operand{RegOp(R1), RegOp(R2), ImmOp(1)}},
		{Op: GetPtr, Ops: []Operand{RegOp(R1), RegOp(R2), RegOp(R3), ImmOp(16)}},
		{Op: GetPtr, Ops: []Operand{RegOp(R1), RegOp(R2), ImmOp(8), ImmOp(16)}},
		{Op: Branch, Ops: []Operand{ImmOp(0x1000)}},
		{Op: Branch, Ops: []Operand{RegOp(R5)}},
		{Op: Branch, Cond: LT, Ops: []Operand{RegOp(R1), RegOp(R2), ImmOp(0x1000)}},
		{Op: Call, Ops: []Operand{ImmOp(0x2000)}},
		{Op: Call, Ops: []Operand{RegOp(R9)}},
		{Op: Return},
		{Op: Halt},
	}
	for _, in := range valid {
		if err := in.Validate(); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", in, err)
		}
	}
	invalid := []*Inst{
		{Op: Op(99)},
		{Op: Mov, Ops: []Operand{RegOp(R1)}},
		{Op: Mov, Ops: []Operand{ImmOp(1), RegOp(R1)}},
		{Op: Load, Ops: []Operand{RegOp(R1), RegOp(R2)}},
		{Op: Add, Cond: EQ, Ops: []Operand{RegOp(R1), RegOp(R2), RegOp(R3)}},
		{Op: Branch, Cond: LT, Ops: []Operand{ImmOp(0x1000)}},
		{Op: Call, Ops: []Operand{MemOp(R1, 0)}},
		{Op: Return, Ops: []Operand{RegOp(R0)}},
		{Op: Mov, Ops: []Operand{RegOp(Reg(77)), ImmOp(0)}},
		{Op: Load, Ops: []Operand{RegOp(R1), MemOp(Reg(77), 0)}},
	}
	for _, in := range invalid {
		if err := in.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", in)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	insts := []*Inst{
		{Op: Nop},
		{Op: Mov, Ops: []Operand{RegOp(R1), ImmOp(-42)}},
		{Op: Load, Ops: []Operand{RegOp(R3), MemOp(SP, 1<<40)}},
		{Op: Store, Ops: []Operand{RegOp(R3), MemOp(FP, -(1 << 40))}},
		{Op: Div, Ops: []Operand{RegOp(R1), RegOp(R2), ImmOp(7)}},
		{Op: Branch, Cond: GE, Ops: []Operand{RegOp(R1), RegOp(R2), ImmOp(0x10_0000)}},
		{Op: Call, Ops: []Operand{ImmOp(0xdead_beef)}},
		{Op: Return},
	}
	var code []byte
	var err error
	for _, in := range insts {
		code, err = Encode(code, in)
		if err != nil {
			t.Fatalf("Encode(%s): %v", in, err)
		}
	}
	got, err := DecodeAll(code, 0x4000)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(got) != len(insts) {
		t.Fatalf("decoded %d instructions, want %d", len(got), len(insts))
	}
	addr := uint64(0x4000)
	for n, in := range insts {
		g := got[n]
		if g.Op != in.Op || g.Cond != in.Cond || len(g.Ops) != len(in.Ops) {
			t.Errorf("inst %d: decoded %s, want %s", n, g, in)
		}
		for k := range in.Ops {
			if g.Ops[k] != in.Ops[k] {
				t.Errorf("inst %d operand %d: decoded %+v, want %+v", n, k, g.Ops[k], in.Ops[k])
			}
		}
		if g.Addr != addr {
			t.Errorf("inst %d: addr %#x, want %#x", n, g.Addr, addr)
		}
		if g.Size != EncodedSize(in) {
			t.Errorf("inst %d: size %d, want %d", n, g.Size, EncodedSize(in))
		}
		addr += uint64(g.Size)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		code []byte
	}{
		{"empty", nil},
		{"short header", []byte{byte(Mov)}},
		{"bad opcode", []byte{0xff, 0}},
		{"bad cond", []byte{byte(Branch), 0xf1, byte(KindImm), 0, 0, 0, 0, 0, 0, 0, 0}},
		{"bad operand count", []byte{byte(Mov), 0x0f}},
		{"truncated reg", []byte{byte(Mov), 2, byte(KindReg)}},
		{"truncated imm", []byte{byte(Mov), 2, byte(KindReg), 1, byte(KindImm), 0, 0}},
		{"bad kind", []byte{byte(Mov), 2, 0x09, 1}},
		{"shape mismatch", []byte{byte(Return), 1, byte(KindReg), 0}},
	}
	for _, c := range cases {
		if _, _, err := Decode(c.code, 0); err == nil {
			t.Errorf("%s: Decode succeeded, want error", c.name)
		}
	}
}

// randInst produces a random valid instruction for property testing.
func randInst(r *rand.Rand) *Inst {
	reg := func() Operand { return RegOp(Reg(r.Intn(NumRegs))) }
	imm := func() Operand { return ImmOp(int64(r.Uint64())) }
	mem := func() Operand { return MemOp(Reg(r.Intn(NumRegs)), int64(r.Uint64())) }
	switch r.Intn(10) {
	case 0:
		return &Inst{Op: Nop}
	case 1:
		if r.Intn(2) == 0 {
			return &Inst{Op: Mov, Ops: []Operand{reg(), reg()}}
		}
		return &Inst{Op: Mov, Ops: []Operand{reg(), imm()}}
	case 2:
		return &Inst{Op: Load, Ops: []Operand{reg(), mem()}}
	case 3:
		return &Inst{Op: Store, Ops: []Operand{reg(), mem()}}
	case 4:
		ops := []Op{Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr}
		third := reg()
		if r.Intn(2) == 0 {
			third = imm()
		}
		return &Inst{Op: ops[r.Intn(len(ops))], Ops: []Operand{reg(), reg(), third}}
	case 5:
		return &Inst{Op: GetPtr, Ops: []Operand{reg(), reg(), reg(), imm()}}
	case 6:
		switch r.Intn(3) {
		case 0:
			return &Inst{Op: Branch, Ops: []Operand{imm()}}
		case 1:
			return &Inst{Op: Branch, Ops: []Operand{reg()}}
		default:
			return &Inst{Op: Branch, Cond: Cond(1 + r.Intn(int(numConds)-1)), Ops: []Operand{reg(), reg(), imm()}}
		}
	case 7:
		if r.Intn(2) == 0 {
			return &Inst{Op: Call, Ops: []Operand{imm()}}
		}
		return &Inst{Op: Call, Ops: []Operand{reg()}}
	case 8:
		return &Inst{Op: Return}
	default:
		return &Inst{Op: Halt}
	}
}

func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64, addr uint64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInst(r)
		code, err := Encode(nil, in)
		if err != nil {
			t.Logf("Encode(%s): %v", in, err)
			return false
		}
		if uint32(len(code)) != EncodedSize(in) {
			t.Logf("EncodedSize mismatch for %s: %d vs %d", in, len(code), EncodedSize(in))
			return false
		}
		out, n, err := Decode(code, addr)
		if err != nil || n != uint32(len(code)) {
			t.Logf("Decode(%s): n=%d err=%v", in, n, err)
			return false
		}
		if out.Op != in.Op || out.Cond != in.Cond || len(out.Ops) != len(in.Ops) {
			return false
		}
		for k := range in.Ops {
			if out.Ops[k] != in.Ops[k] {
				return false
			}
		}
		return out.Addr == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestImmOffset(t *testing.T) {
	in := &Inst{Op: Branch, Cond: LT, Ops: []Operand{RegOp(R1), RegOp(R2), ImmOp(0)}}
	off, err := ImmOffset(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	// header(2) + reg(2) + reg(2) + kind byte(1) = 7
	if off != 7 {
		t.Errorf("ImmOffset = %d, want 7", off)
	}
	if _, err := ImmOffset(in, 0); err == nil {
		t.Error("ImmOffset on register operand succeeded")
	}
	if _, err := ImmOffset(in, 9); err == nil {
		t.Error("ImmOffset out of range succeeded")
	}
	ld := &Inst{Op: Load, Ops: []Operand{RegOp(R1), MemOp(SP, 0)}}
	off, err = ImmOffset(ld, 1)
	if err != nil {
		t.Fatal(err)
	}
	// header(2) + reg(2) + kind(1) + base(1) = 6
	if off != 6 {
		t.Errorf("ImmOffset(mem) = %d, want 6", off)
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   *Inst
		want string
	}{
		{&Inst{Op: Mov, Ops: []Operand{RegOp(R1), ImmOp(5)}}, "mov r1, 5"},
		{&Inst{Op: Load, Ops: []Operand{RegOp(R2), MemOp(SP, 16)}}, "load r2, [sp+16]"},
		{&Inst{Op: Load, Ops: []Operand{RegOp(R2), MemOp(SP, 0)}}, "load r2, [sp]"},
		{&Inst{Op: Branch, Cond: LT, Ops: []Operand{RegOp(R1), RegOp(R2), ImmOp(64)}}, "blt r1, r2, 64"},
		{&Inst{Op: Call, Ops: []Operand{ImmOp(64)}, TargetSym: "malloc"}, "call malloc"},
		{&Inst{Op: Return}, "ret"},
		{&Inst{Op: Branch, Ops: []Operand{RegOp(R3)}}, "b r3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestHelpers(t *testing.T) {
	call := &Inst{Op: Call, Ops: []Operand{ImmOp(0x100)}}
	if tgt, ok := call.IsDirectTarget(); !ok || tgt != 0x100 {
		t.Errorf("IsDirectTarget(call) = %#x, %v", tgt, ok)
	}
	icall := &Inst{Op: Call, Ops: []Operand{RegOp(R1)}}
	if !icall.IsIndirect() {
		t.Error("indirect call not detected")
	}
	if _, ok := icall.IsDirectTarget(); ok {
		t.Error("indirect call reported direct target")
	}
	cb := &Inst{Op: Branch, Cond: EQ, Ops: []Operand{RegOp(R1), RegOp(R2), ImmOp(0x80)}}
	if tgt, ok := cb.IsDirectTarget(); !ok || tgt != 0x80 {
		t.Errorf("IsDirectTarget(cond branch) = %#x, %v", tgt, ok)
	}
	if !cb.IsConditional() {
		t.Error("conditional branch not detected")
	}
	if !cb.EndsBlock() {
		t.Error("branch should end block")
	}
	if call.EndsBlock() {
		t.Error("call should not end block")
	}
	ld := &Inst{Op: Load, Ops: []Operand{RegOp(R1), MemOp(SP, 4)}}
	if op, ok := ld.MemOperand(); !ok || op.Base != SP || op.Off != 4 {
		t.Errorf("MemOperand = %+v, %v", op, ok)
	}
	if _, ok := call.MemOperand(); ok {
		t.Error("call reported mem operand")
	}
	ld.Addr, ld.Size = 100, 12
	if ld.Next() != 112 {
		t.Errorf("Next = %d, want 112", ld.Next())
	}
	if got := ld.Operand(0); got.Kind != KindReg {
		t.Errorf("Operand(0) = %+v", got)
	}
	if got := ld.Operand(5); got.Kind != KindNone {
		t.Errorf("Operand(5) = %+v, want none", got)
	}
	if ld.NumOps() != 2 {
		t.Errorf("NumOps = %d", ld.NumOps())
	}
}

func TestOperandString(t *testing.T) {
	if got := (Operand{}).String(); !strings.Contains(got, "none") {
		t.Errorf("zero operand string = %q", got)
	}
}
