package backend

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core/engine"
	"repro/internal/progs"
)

// Full-pipeline tests of language features the case studies do not
// exercise: IsType, operand attributes, static arrays, runtime action
// ordering, instruction attributes, and cross-command communication.

func runSrc(t *testing.T, toolSrc, appSrc, backendName string) string {
	t.Helper()
	tool, err := engine.Compile(toolSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog := loadSrc(t, appSrc)
	var out bytes.Buffer
	if _, err := Run(tool, prog, backendName, Options{Out: &out}); err != nil {
		t.Fatalf("%s: %v", backendName, err)
	}
	return out.String()
}

const mixedApp = `
.module app
.executable
.entry main
.func main
  mov   r1, 7
  mov   r2, r1
  mov   r5, @buf
  load  r3, [r5]
  store r3, [r5+8]
  add   r4, r3, 1
  halt
.data
buf: .quad 11, 0
`

func TestIsTypeOperands(t *testing.T) {
	// Classify mov operands: `mov r1, 7` has reg+const, `mov r2, r1` has
	// reg+reg; loads have a mem second operand.
	src := `
uint64 movimm = 0;
uint64 movreg = 0;
uint64 memops = 0;
inst I where (I.opcode == Mov) {
  if (I.op2 IsType const) {
    movimm = movimm + 1;
  }
  if (I.op2 IsType reg) {
    movreg = movreg + 1;
  }
}
inst I where (I.op2 IsType mem) {
  memops = memops + 1;
}
exit {
  print(movimm, movreg, memops);
}
`
	for _, b := range Backends() {
		out := runSrc(t, src, mixedApp, b)
		// mov r1,7 and mov r5,@buf are mov-with-immediate; mov r2,r1 is
		// reg; load+store have mem second operands.
		if out != "2 1 2\n" {
			t.Errorf("%s: output = %q, want \"2 1 2\"", b, out)
		}
	}
}

func TestStaticArrays(t *testing.T) {
	// Histogram instruction sizes into a static array at analysis time.
	src := `
int sizes[40];
int maxsize = 0;
inst I {
  sizes[I.size] = sizes[I.size] + 1;
  if (I.size > maxsize) {
    maxsize = I.size;
  }
}
exit {
  print(maxsize, sizes[maxsize]);
}
`
	out := runSrc(t, src, mixedApp, Janus)
	if !strings.Contains(out, " ") || strings.HasPrefix(out, "0") {
		t.Errorf("histogram output = %q", out)
	}
}

func TestActionOrderingAtRuntime(t *testing.T) {
	// Two actions at the same trigger point execute in program order
	// (Section III-B7).
	src := `
inst I where (I.opcode == Load) {
  before I {
    print("first");
  }
  before I {
    print("second");
  }
}
`
	for _, b := range Backends() {
		out := runSrc(t, src, mixedApp, b)
		if out != "first\nsecond\n" {
			t.Errorf("%s: order = %q", b, out)
		}
	}
}

func TestCommandOrderingAtRuntime(t *testing.T) {
	// Actions from different commands on the same instruction also keep
	// program order.
	src := `
inst I where (I.opcode == Load) {
  before I { print("cmd1"); }
}
inst J where (J.opcode == Load) {
  before J { print("cmd2"); }
}
`
	for _, b := range Backends() {
		out := runSrc(t, src, mixedApp, b)
		if out != "cmd1\ncmd2\n" {
			t.Errorf("%s: order = %q", b, out)
		}
	}
}

func TestInstructionAttributes(t *testing.T) {
	src := `
inst I where (I.opcode == Load) {
  before I {
    print(I.addr, I.size, I.nextaddr, I.numops);
  }
}
`
	prog := loadSrc(t, mixedApp)
	var load = func() (addr, size, next uint64) {
		for _, f := range prog.Modules[0].Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Insts {
					if in.Op.String() == "load" {
						return in.Addr, uint64(in.Size), in.Next()
					}
				}
			}
		}
		return 0, 0, 0
	}
	a, s, n := load()
	out := runSrc(t, src, mixedApp, Pin)
	fields := strings.Fields(strings.TrimSpace(out))
	if len(fields) != 4 {
		t.Fatalf("output = %q", out)
	}
	wants := []uint64{a, s, n, 2}
	for i, w := range wants {
		if fields[i] != trimUint(w) {
			t.Errorf("attr %d = %s, want %d", i, fields[i], w)
		}
	}
}

func trimUint(v uint64) string {
	var buf [20]byte
	i := len(buf)
	if v == 0 {
		return "0"
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestMemAddrDistinguishesLoadStore(t *testing.T) {
	// srcaddr on loads and dstaddr on stores both resolve to the mem
	// operand's effective address.
	src := `
inst I where (I.opcode == Load) {
  before I { print("load", I.srcaddr); }
}
inst I where (I.opcode == Store) {
  before I { print("store", I.dstaddr); }
}
`
	prog := loadSrc(t, mixedApp)
	buf, ok := prog.Modules[0].Loaded.SymAddr("buf")
	if !ok {
		t.Fatal("buf missing")
	}
	for _, b := range Backends() {
		out := runSrc(t, src, mixedApp, b)
		want := "load " + trimUint(buf) + "\nstore " + trimUint(buf+8) + "\n"
		if out != want {
			t.Errorf("%s: output = %q, want %q", b, out, want)
		}
	}
}

func TestGlobalsCommunicateAcrossCommands(t *testing.T) {
	// One command's action writes a global that another command's action
	// reads at run time.
	src := `
uint64 loads = 0;
inst I where (I.opcode == Load) {
  before I { loads = loads + 1; }
}
inst I where (I.opcode == Store) {
  before I { print("loads-before-store", loads); }
}
`
	for _, b := range Backends() {
		out := runSrc(t, src, mixedApp, b)
		if out != "loads-before-store 1\n" {
			t.Errorf("%s: output = %q", b, out)
		}
	}
}

func TestAnalysisStageIO(t *testing.T) {
	// Analysis writes to a file; the exit block reads it back — the
	// producer/consumer pattern of Section III-B7 across stages.
	src := `
file f("funcs.txt");
func F {
  writeToFile(f, F.name);
}
exit {
  line l = f.getline();
  for (; l != NULL; ) {
    print(l);
    l = f.getline();
  }
}
`
	out := runSrc(t, src, mixedApp, Dyninst)
	if strings.TrimSpace(out) != "main" {
		t.Errorf("output = %q, want main", out)
	}
}

func TestInitBlockRunsBeforeActions(t *testing.T) {
	src := `
uint64 armed = 0;
init { armed = 1; }
inst I where (I.opcode == Load) {
  before I {
    if (armed == 1) { print("armed"); }
  }
}
`
	for _, b := range Backends() {
		out := runSrc(t, src, mixedApp, b)
		if strings.TrimSpace(out) != "armed" {
			t.Errorf("%s: output = %q", b, out)
		}
	}
}

func TestCharAndStringOps(t *testing.T) {
	src := `
string name = "";
func F {
  name = F.name;
}
exit {
  if (name == "main") { print("found-main"); }
  char c = 'x';
  print(c + 1);
}
`
	out := runSrc(t, src, mixedApp, Janus)
	if out != "found-main\n121\n" {
		t.Errorf("output = %q", out)
	}
}

func TestFuncAndBlockAttributes(t *testing.T) {
	src := `
func F {
  print(F.name, F.nblocks, F.nloops, F.ninsts);
}
basicblock B where (B.id == 0) {
  print("b0", B.startaddr, B.endaddr, B.ninsts);
}
`
	out := runSrc(t, src, mixedApp, Pin)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("output = %q", out)
	}
	if !strings.HasPrefix(lines[0], "main 1 0 7") {
		t.Errorf("func attrs = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "b0 ") {
		t.Errorf("block attrs = %q", lines[1])
	}
}

func TestOpcodeMixTool(t *testing.T) {
	// The extra opcode-histogram case study classifies every executed
	// mem/call-ret/branch/arith instruction; the class counts must match
	// ground truth computed from a raw run.
	prog := loadSrc(t, mixedApp)
	tool := compile(t, progs.OpcodeMix)
	for _, b := range Backends() {
		var out bytes.Buffer
		if _, err := Run(tool, prog, b, Options{Out: &out}); err != nil {
			t.Fatal(err)
		}
		want := "mem 2\ncallret 0\nbranch 0\narith 1\nclassified 3\n"
		if out.String() != want {
			t.Errorf("%s: output = %q, want %q", b, out.String(), want)
		}
	}
}

func TestPinLoopDetectionExtension(t *testing.T) {
	// The paper's Section VI-E: "integrating loop detection techniques
	// in Pin could make it transparent to the programmer." With the
	// extension off, loop commands are rejected; with it on, the loop
	// coverage tool runs on Pin and reports the same coverage as the
	// loop-aware backends.
	tool := compile(t, progs.LoopCoverage)
	prog := loadVictim(t, "loopy")
	if _, err := Run(tool, prog, Pin, Options{}); err == nil {
		t.Fatal("loop command accepted without loop detection")
	}
	var pinOut, janusOut bytes.Buffer
	if _, err := Run(tool, prog, Pin, Options{Out: &pinOut, PinLoopDetection: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(tool, prog, Janus, Options{Out: &janusOut}); err != nil {
		t.Fatal(err)
	}
	if pinOut.String() != janusOut.String() || pinOut.Len() == 0 {
		t.Errorf("pin loop coverage = %q, janus = %q", pinOut.String(), janusOut.String())
	}
}

func TestLoopIterTrigger(t *testing.T) {
	// iter fires once per back-edge traversal: a 5-iteration loop takes
	// its back edge 4 times.
	src := `
uint64 iters = 0;
loop L {
  iter L { iters = iters + 1; }
}
exit { print(iters); }
`
	app := `
.module app
.executable
.entry main
.func main
  mov r8, 0
  mov r9, 5
head:
  add r8, r8, 1
  blt r8, r9, head
  halt
`
	for _, b := range []string{Dyninst, Janus} {
		out := runSrc(t, src, app, b)
		if strings.TrimSpace(out) != "4" {
			t.Errorf("%s: iters = %q, want 4", b, out)
		}
	}
}

func TestNestedLoopDepthAttribute(t *testing.T) {
	src := `
loop L where (L.depth == 2) {
  print("inner", L.nblocks);
}
loop L where (L.depth == 1) {
  print("outer", L.nblocks);
}
`
	app := `
.module app
.executable
.entry main
.func main
  mov r8, 0
outer:
  mov r9, 0
inner:
  add r9, r9, 1
  mov r7, 3
  blt r9, r7, inner
  add r8, r8, 1
  mov r7, 3
  blt r8, r7, outer
  halt
`
	out := runSrc(t, src, app, Janus)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "inner") || !strings.HasPrefix(lines[1], "outer") {
		t.Errorf("output = %q", out)
	}
}

func TestAfterOnBranchSurfacesPlacementError(t *testing.T) {
	// The type system allows `after I` in general, but frameworks cannot
	// instrument after a branch; the placement error must surface
	// cleanly rather than being dropped.
	src := `
inst I where (I.opcode == Branch) {
  after I { print(1); }
}
`
	tool, err := engine.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	app := `
.module app
.executable
.entry main
.func main
  mov r8, 0
head:
  add r8, r8, 1
  mov r7, 2
  blt r8, r7, head
  halt
`
	for _, b := range Backends() {
		prog := loadSrc(t, app)
		if _, err := Run(tool, prog, b, Options{}); err == nil {
			t.Errorf("%s: after-on-branch placement accepted", b)
		}
	}
}

func TestModuleCommandOnAllBackends(t *testing.T) {
	src := `
uint64 mods = 0;
module M {
  mods = mods + 1;
  print(M.name);
}
exit { print(mods); }
`
	app := `
.module solo
.executable
.entry main
.func main
  halt
`
	for _, b := range Backends() {
		out := runSrc(t, src, app, b)
		if out != "solo\n1\n" {
			t.Errorf("%s: output = %q", b, out)
		}
	}
}
