// Package backend maps compiled Cinnamon tools onto the three
// instrumentation frameworks — Pin, Dyninst and Janus — implementing the
// engine.Placer interface for each. This is the code-generator half of
// the Cinnamon compiler in executable form: each placer realizes actions
// with the target framework's native mechanism (analysis calls, snippets,
// rewrite rules + clean calls) and its cost model.
//
// The cost asymmetries measured in the paper's Figure 13 live here:
//
//   - Pin: Cinnamon encapsulates every action in a callback invoked by a
//     clean call (never inlined), while hand-written Pin tools register
//     short analysis routines that Pin inlines.
//   - Janus: DynamoRIO inlines clean calls whose callback is simple
//     enough, which Cinnamon's generated callbacks often are; only the
//     rule-decoding glue and payload marshalling remain.
//   - Dyninst: both Cinnamon and native tools insert snippets; Cinnamon
//     pays only a small generic-marshalling surcharge.
package backend

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/cfg"
	"repro/internal/core/engine"
	"repro/internal/core/interp"
	"repro/internal/core/sem"
	"repro/internal/core/value"
	"repro/internal/dyninst"
	"repro/internal/isa"
	"repro/internal/janus"
	"repro/internal/obs"
	"repro/internal/pin"
	"repro/internal/vm"
)

// Per-backend glue costs (cycle units): the extra work of Cinnamon's
// generated callback encapsulation compared to a hand-written tool —
// argument unpacking, generic marshalling, rule decoding.
const (
	PinGlue     = 2
	DyninstGlue = 2
	JanusGlue   = 4
)

// Names of the supported backends.
const (
	Pin     = "pin"
	Dyninst = "dyninst"
	Janus   = "janus"
)

// Backends lists the supported backend names.
func Backends() []string { return []string{Pin, Dyninst, Janus} }

// Options configures a tool run.
type Options struct {
	// Out receives the tool's print() output.
	Out io.Writer
	// FS is the tool's file system (fresh in-memory FS if nil).
	FS *interp.FS
	// Fuel bounds application instructions (0 = default).
	Fuel uint64
	// AppOut receives the application's output (discarded if nil).
	AppOut io.Writer
	// PinLoopDetection enables the extension suggested in the paper's
	// Section VI-E: integrate a loop-detection technique into the Pin
	// backend so loop commands become mappable. Loop trigger points are
	// realized as edge instrumentation derived from the detected loops,
	// at clean-call cost plus a per-firing detection surcharge.
	PinLoopDetection bool
	// Interpret runs action bodies with the tree-walking interpreter
	// instead of the closure-compiled path (see engine.Options).
	Interpret bool
	// Obs, when non-nil, collects per-probe firing attribution and
	// instrumentation-time statistics across the engine, the framework
	// and the machine (see internal/obs).
	Obs *obs.Collector
	// VMMode selects the machine's execution tier: vm.ExecTranslated
	// (default) runs cached block programs, vm.ExecInterpreted the
	// reference per-instruction loop. The tiers are bit-identical in
	// every observable; the conformance harness cross-checks them.
	VMMode vm.ExecMode
	// VMNoInline disables the machine's action-inlining layer
	// (specialized thunks, promoted counters, probe+op fusion) on the
	// translated tier. The layer is bit-identical in every observable;
	// this is the escape hatch (and the baseline for perf comparisons).
	VMNoInline bool
	// Adaptive allocates an adaptive control block for every placed
	// probe, so probes can be ejected and re-armed mid-run even when no
	// action carries a `sample` clause (the overhead governor needs
	// this). Sampled actions get control blocks regardless.
	Adaptive bool
	// OnMachine, when non-nil, receives the framework's underlying
	// machine before execution starts — the attachment point for
	// adaptive controllers such as internal/governor.
	OnMachine func(*vm.VM)
	// Stop, when non-nil, is a cooperative cancellation flag polled by
	// the machine at block-start dispatch: setting it from any goroutine
	// makes the run fail with vm.ErrStopped. Session schedulers
	// (internal/fleet) use it to cancel sessions on drain.
	Stop *atomic.Bool
}

// PinLoopDetectCost is the extra per-firing price of the Pin loop
// detection extension (maintaining the block-trace state a dynamic
// loop detector needs).
const PinLoopDetectCost = 6

// Run compiles the tool onto the named backend, executes the program
// under it, and returns the machine result.
func Run(tool *engine.CompiledTool, prog *cfg.Program, backendName string, opts Options) (*vm.Result, error) {
	switch backendName {
	case Pin:
		return runPin(tool, prog, opts)
	case Dyninst:
		return runDyninst(tool, prog, opts)
	case Janus:
		return runJanus(tool, prog, opts)
	}
	return nil, fmt.Errorf("cinnamon: unknown backend %q (have %s)", backendName, strings.Join(Backends(), ", "))
}

// ResolveDynAttr materializes a dynamic attribute value from the machine
// context: the framework-independent accessor behind Cinnamon's uniform
// dot-operator interface.
func ResolveDynAttr(c *vm.Ctx, attr string) uint64 {
	switch attr {
	case "memaddr", "srcaddr", "dstaddr":
		v, _ := c.MemAddr()
		return v
	case "rtnval":
		return c.RetVal()
	case "trgaddr":
		v, _ := c.Target()
		return v
	}
	if strings.HasPrefix(attr, "arg") {
		if n, err := strconv.Atoi(attr[3:]); err == nil && n >= 1 && n <= isa.MaxArgRegs {
			return c.CallArg(n)
		}
	}
	return 0
}

// dynSlots fills the pre-sized attribute slot buffer from raw
// materialized words. The buffer is allocated once per placement and
// reused across firings (probes of one machine fire sequentially), so
// marshalling attribute values allocates nothing in steady state.
func dynSlots(buf []value.Value, words []uint64) []value.Value {
	for i, w := range words {
		buf[i] = value.UintVal(w)
	}
	return buf
}

// ---------------------------------------------------------------------------
// Pin backend

type pinPlacer struct {
	p    *pin.Pin
	prog *cfg.Program
	// loopDetection enables the Section VI-E extension (see
	// Options.PinLoopDetection).
	loopDetection bool

	before, after map[uint64][]pinPlacement
	blocks        map[uint64][]pinPlacement
	edges         []pinEdge
}

type pinEdge struct {
	from, to uint64
	p        pinPlacement
}

type pinPlacement struct {
	routine pin.Routine
	args    []pin.Arg
}

func (pl *pinPlacer) Name() string           { return Pin }
func (pl *pinPlacer) Modules() []*cfg.Module { return pl.prog.Modules }
func (pl *pinPlacer) SupportsLoops() bool    { return pl.loopDetection }
func (pl *pinPlacer) PlaceInit(fn func())    { pl.p.VM().OnStart(func(*vm.Ctx) { fn() }) }
func (pl *pinPlacer) PlaceFini(fn func())    { pl.p.AddFiniFunction(fn) }

// pinArgs maps the action's dynamic attributes to IARG descriptors — the
// interface between the static and dynamic contexts for this framework.
func pinArgs(attrs []sem.DynAttr) ([]pin.Arg, error) {
	args := make([]pin.Arg, 0, len(attrs))
	for _, a := range attrs {
		switch {
		case a.Attr == "memaddr" || a.Attr == "srcaddr" || a.Attr == "dstaddr":
			args = append(args, pin.MemoryEA())
		case a.Attr == "rtnval":
			args = append(args, pin.RetVal())
		case a.Attr == "trgaddr":
			args = append(args, pin.BranchTarget())
		case strings.HasPrefix(a.Attr, "arg"):
			n, err := strconv.Atoi(a.Attr[3:])
			if err != nil {
				return nil, fmt.Errorf("cinnamon: bad call-argument attribute %q", a.Attr)
			}
			args = append(args, pin.FuncArg(n))
		default:
			return nil, fmt.Errorf("cinnamon: no Pin IARG mapping for dynamic attribute %q", a.Attr)
		}
	}
	return args, nil
}

func (pl *pinPlacer) placement(a *engine.Action) (pinPlacement, error) {
	args, err := pinArgs(a.Info.DynAttrs)
	if err != nil {
		return pinPlacement{}, err
	}
	buf := make([]value.Value, len(a.Info.DynAttrs))
	exec := a.Exec
	routine := pin.Routine{
		Fn:   func(words []uint64) { exec(dynSlots(buf, words)) },
		Cost: a.Info.Cost + PinGlue,
		// Cinnamon's generated callbacks are generic encapsulations;
		// Pin's automatic inlining never applies to them.
		Inlinable: false,
		Label:     a.Label,
		Sample:    a.Info.Sample,
	}
	if il := a.Inline; il != nil {
		fbuf := make([]value.Value, len(a.Info.DynAttrs))
		fast := il.Exec
		routine.FastFn = func(words []uint64) { fast(dynSlots(fbuf, words)) }
		if il.Counter && len(a.Info.DynAttrs) == 0 {
			routine.CounterDelta, routine.CounterFlush = il.Delta, il.Flush
		}
	}
	return pinPlacement{routine: routine, args: args}, nil
}

func (pl *pinPlacer) PlaceInstBefore(in *isa.Inst, a *engine.Action) error {
	p, err := pl.placement(a)
	if err != nil {
		return err
	}
	pl.before[in.Addr] = append(pl.before[in.Addr], p)
	return nil
}

func (pl *pinPlacer) PlaceInstAfter(in *isa.Inst, a *engine.Action) error {
	p, err := pl.placement(a)
	if err != nil {
		return err
	}
	pl.after[in.Addr] = append(pl.after[in.Addr], p)
	return nil
}

func (pl *pinPlacer) PlaceBlockEntry(b *cfg.Block, a *engine.Action) error {
	p, err := pl.placement(a)
	if err != nil {
		return err
	}
	pl.blocks[b.Start] = append(pl.blocks[b.Start], p)
	return nil
}

func (pl *pinPlacer) PlaceEdge(from, to *cfg.Block, a *engine.Action) error {
	if !pl.loopDetection {
		return fmt.Errorf("cinnamon: pin backend cannot instrument CFG edges (no loop support)")
	}
	p, err := pl.placement(a)
	if err != nil {
		return err
	}
	// The detection surcharge models the run-time bookkeeping a dynamic
	// loop detector performs on top of the clean call.
	p.routine.Cost += PinLoopDetectCost
	pl.edges = append(pl.edges, pinEdge{from.Start, to.Start, p})
	return nil
}

func runPin(tool *engine.CompiledTool, prog *cfg.Program, opts Options) (*vm.Result, error) {
	p := pin.New(prog, pin.Config{Fuel: opts.Fuel, AppOut: opts.AppOut, Obs: opts.Obs, ExecMode: opts.VMMode, NoInline: opts.VMNoInline, Adaptive: opts.Adaptive, OnMachine: opts.OnMachine, Stop: opts.Stop})
	pl := &pinPlacer{
		p: p, prog: prog,
		loopDetection: opts.PinLoopDetection,
		before:        make(map[uint64][]pinPlacement),
		after:         make(map[uint64][]pinPlacement),
		blocks:        make(map[uint64][]pinPlacement),
	}
	inst, err := engine.Instrument(tool, prog, pl, engine.Options{Out: opts.Out, FS: opts.FS, Interpret: opts.Interpret, Obs: opts.Obs})
	if err != nil {
		return nil, err
	}
	// The generated Pin tool: one instruction-mode callback that looks up
	// the placements computed by the analysis stage, plus a trace-mode
	// callback for block-entry actions.
	var cbErr error
	record := func(err error) {
		if err != nil && cbErr == nil {
			cbErr = err
		}
	}
	p.INSAddInstrumentFunction(func(ins pin.INS) {
		for _, plc := range pl.before[ins.Address()] {
			record(ins.InsertCall(pin.IPointBefore, plc.routine, plc.args...))
		}
		for _, plc := range pl.after[ins.Address()] {
			record(ins.InsertCall(pin.IPointAfter, plc.routine, plc.args...))
		}
	})
	p.TraceAddInstrumentFunction(func(tr pin.TRACE) {
		for _, bbl := range tr.BBLs() {
			for _, plc := range pl.blocks[bbl.Address()] {
				record(bbl.InsertCall(plc.routine, plc.args...))
			}
		}
	})
	// The loop-detection extension realizes loop trigger points through
	// edge instrumentation on the machine underneath Pin.
	for _, e := range pl.edges {
		e := e
		cost := pin.CleanCallCost + e.p.routine.Cost + uint64(len(e.p.args))*pin.ArgCost
		words := make([]uint64, len(e.p.args))
		id := obs.NoProbe
		if opts.Obs != nil {
			opts.Obs.MutateBuild(func(b *obs.BuildStats) { b.CleanCalls++ })
			id = opts.Obs.RegisterProbe(obs.ProbeMeta{
				Label:        e.p.routine.Label,
				Trigger:      obs.TriggerEdge,
				Mechanism:    obs.MechCleanCall,
				Addr:         e.to,
				DispatchCost: cost,
			})
		}
		var spec *vm.ProbeSpec
		if r := e.p.routine; r.CounterFlush != nil {
			spec = &vm.ProbeSpec{Counter: true, Delta: r.CounterDelta, Flush: r.CounterFlush}
		} else if r.FastFn != nil {
			fast := r.FastFn
			spec = &vm.ProbeSpec{Fn: func(c *vm.Ctx) { fast(words) }}
		}
		record(p.VM().AddEdgeSampled(e.from, e.to, cost, id, func(c *vm.Ctx) {
			e.p.routine.Fn(words)
		}, spec, e.p.routine.Sample))
	}
	res, err := p.Run()
	if err != nil {
		return nil, err
	}
	if cbErr != nil {
		return nil, cbErr
	}
	if err := inst.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Dyninst backend

type dyninstPlacer struct {
	be   *dyninst.BinaryEdit
	prog *cfg.Program
}

func (pl *dyninstPlacer) Name() string        { return Dyninst }
func (pl *dyninstPlacer) SupportsLoops() bool { return true }
func (pl *dyninstPlacer) PlaceInit(fn func()) { pl.be.OnInit(fn) }
func (pl *dyninstPlacer) PlaceFini(fn func()) { pl.be.OnFini(fn) }

// Modules returns only the executable: the static rewriter does not touch
// shared libraries.
func (pl *dyninstPlacer) Modules() []*cfg.Module { return pl.prog.Modules[:1] }

// dyninstSnippet builds the snippet call for an action: dynamic
// attributes become snippet argument expressions.
func dyninstSnippet(a *engine.Action) (dyninst.Snippet, error) {
	args := make([]dyninst.Snippet, 0, len(a.Info.DynAttrs))
	for _, da := range a.Info.DynAttrs {
		switch {
		case da.Attr == "memaddr" || da.Attr == "srcaddr" || da.Attr == "dstaddr":
			args = append(args, dyninst.EffectiveAddressExpr{})
		case da.Attr == "rtnval":
			args = append(args, dyninst.RetExpr{})
		case da.Attr == "trgaddr":
			args = append(args, dyninst.BranchTargetExpr{})
		case strings.HasPrefix(da.Attr, "arg"):
			n, err := strconv.Atoi(da.Attr[3:])
			if err != nil {
				return nil, fmt.Errorf("cinnamon: bad call-argument attribute %q", da.Attr)
			}
			args = append(args, dyninst.ParamExpr{N: n})
		default:
			return nil, fmt.Errorf("cinnamon: no Dyninst snippet mapping for dynamic attribute %q", da.Attr)
		}
	}
	buf := make([]value.Value, len(a.Info.DynAttrs))
	exec := a.Exec
	call := dyninst.FuncCallExpr{
		Fn:     func(words []uint64) { exec(dynSlots(buf, words)) },
		Args:   args,
		Cost:   a.Info.Cost + DyninstGlue,
		Label:  a.Label,
		Sample: a.Info.Sample,
	}
	if il := a.Inline; il != nil {
		fbuf := make([]value.Value, len(a.Info.DynAttrs))
		fast := il.Exec
		call.FastFn = func(words []uint64) { fast(dynSlots(fbuf, words)) }
		if il.Counter && len(a.Info.DynAttrs) == 0 {
			call.CounterDelta, call.CounterFlush = il.Delta, il.Flush
		}
	}
	return call, nil
}

func (pl *dyninstPlacer) PlaceInstBefore(in *isa.Inst, a *engine.Action) error {
	return pl.placeInst(in, a, dyninst.CallBefore)
}

func (pl *dyninstPlacer) PlaceInstAfter(in *isa.Inst, a *engine.Action) error {
	return pl.placeInst(in, a, dyninst.CallAfter)
}

func (pl *dyninstPlacer) placeInst(in *isa.Inst, a *engine.Action, when dyninst.CallWhen) error {
	s, err := dyninstSnippet(a)
	if err != nil {
		return err
	}
	pt, err := pl.be.Image().InstPoint(in.Addr)
	if err != nil {
		return err
	}
	return pl.be.InsertSnippet(s, pt, when)
}

func (pl *dyninstPlacer) PlaceBlockEntry(b *cfg.Block, a *engine.Action) error {
	s, err := dyninstSnippet(a)
	if err != nil {
		return err
	}
	pt, err := pl.be.Image().BlockEntryPoint(b.Start)
	if err != nil {
		return err
	}
	return pl.be.InsertSnippet(s, pt, dyninst.CallBefore)
}

func (pl *dyninstPlacer) PlaceEdge(from, to *cfg.Block, a *engine.Action) error {
	s, err := dyninstSnippet(a)
	if err != nil {
		return err
	}
	pt, err := pl.be.Image().EdgePoint(from.Start, to.Start)
	if err != nil {
		return err
	}
	return pl.be.InsertSnippet(s, pt, dyninst.CallBefore)
}

func runDyninst(tool *engine.CompiledTool, prog *cfg.Program, opts Options) (*vm.Result, error) {
	be, err := dyninst.OpenBinary(prog, dyninst.Config{Fuel: opts.Fuel, AppOut: opts.AppOut, Obs: opts.Obs, ExecMode: opts.VMMode, NoInline: opts.VMNoInline, Adaptive: opts.Adaptive, OnMachine: opts.OnMachine, Stop: opts.Stop})
	if err != nil {
		return nil, err
	}
	pl := &dyninstPlacer{be: be, prog: prog}
	inst, err := engine.Instrument(tool, prog, pl, engine.Options{Out: opts.Out, FS: opts.FS, Interpret: opts.Interpret, Obs: opts.Obs})
	if err != nil {
		return nil, err
	}
	res, err := be.Run()
	if err != nil {
		return nil, err
	}
	if err := inst.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Janus backend

type janusPlacer struct {
	prog     *cfg.Program
	rules    []janus.Rule
	handlers map[janus.HandlerID]janus.Handler
	next     janus.HandlerID
	initFns  []func()
	finiFns  []func()
}

func (pl *janusPlacer) Name() string        { return Janus }
func (pl *janusPlacer) SupportsLoops() bool { return true }
func (pl *janusPlacer) PlaceInit(fn func()) { pl.initFns = append(pl.initFns, fn) }
func (pl *janusPlacer) PlaceFini(fn func()) { pl.finiFns = append(pl.finiFns, fn) }

// Modules returns only the executable: the Janus static analyzer only
// annotates the main binary, so shared-library code is never
// instrumented.
func (pl *janusPlacer) Modules() []*cfg.Module { return pl.prog.Modules[:1] }

// register encapsulates the action as a dynamic handler and returns its
// rewrite-rule payload. The payload carries one word per captured
// analysis value (the data a rewrite rule transports to its handler);
// dynamic attributes are read from the machine context by the handler
// itself.
func (pl *janusPlacer) register(a *engine.Action) (janus.HandlerID, []uint64) {
	id := pl.next
	pl.next++
	attrs := a.Info.DynAttrs
	buf := make([]value.Value, len(attrs))
	exec := a.Exec
	h := janus.Handler{
		Fn: func(c *vm.Ctx, _ []uint64) {
			for i, da := range attrs {
				buf[i] = value.UintVal(ResolveDynAttr(c, da.Attr))
			}
			exec(buf)
		},
		Cost: a.Info.Cost + JanusGlue,
		// DynamoRIO inlines clean calls with simple callbacks.
		Inlinable: a.Info.Simple,
		Label:     a.Label,
		Sample:    a.Info.Sample,
	}
	if il := a.Inline; il != nil {
		fbuf := make([]value.Value, len(attrs))
		fast := il.Exec
		h.FastFn = func(c *vm.Ctx, _ []uint64) {
			for i, da := range attrs {
				fbuf[i] = value.UintVal(ResolveDynAttr(c, da.Attr))
			}
			fast(fbuf)
		}
		if il.Counter && len(attrs) == 0 {
			h.CounterDelta, h.CounterFlush = il.Delta, il.Flush
		}
	}
	pl.handlers[id] = h
	return id, make([]uint64, a.NumCaptured)
}

func (pl *janusPlacer) blockOf(addr uint64) uint64 {
	if b := pl.prog.BlockContaining(addr); b != nil {
		return b.Start
	}
	return addr
}

func (pl *janusPlacer) PlaceInstBefore(in *isa.Inst, a *engine.Action) error {
	id, data := pl.register(a)
	pl.rules = append(pl.rules, janus.Rule{
		BlockAddr: pl.blockOf(in.Addr), InstAddr: in.Addr,
		Trigger: janus.TriggerBefore, Handler: id, Data: data,
	})
	return nil
}

func (pl *janusPlacer) PlaceInstAfter(in *isa.Inst, a *engine.Action) error {
	switch in.Op {
	case isa.Branch, isa.Return, isa.Halt:
		// The compiler backend validates trigger points eagerly
		// (Section III-B6: "throw an error if not"); the dynamic side
		// would otherwise silently skip the rule.
		return fmt.Errorf("cinnamon: after-trigger invalid on %s at %#x", in.Op, in.Addr)
	}
	id, data := pl.register(a)
	pl.rules = append(pl.rules, janus.Rule{
		BlockAddr: pl.blockOf(in.Addr), InstAddr: in.Addr,
		Trigger: janus.TriggerAfter, Handler: id, Data: data,
	})
	return nil
}

func (pl *janusPlacer) PlaceBlockEntry(b *cfg.Block, a *engine.Action) error {
	id, data := pl.register(a)
	pl.rules = append(pl.rules, janus.Rule{
		BlockAddr: b.Start, Trigger: janus.TriggerBlockEntry, Handler: id, Data: data,
	})
	return nil
}

func (pl *janusPlacer) PlaceEdge(from, to *cfg.Block, a *engine.Action) error {
	id, data := pl.register(a)
	pl.rules = append(pl.rules, janus.Rule{
		BlockAddr: to.Start, Aux: from.Start,
		Trigger: janus.TriggerEdge, Handler: id, Data: data,
	})
	return nil
}

func runJanus(tool *engine.CompiledTool, prog *cfg.Program, opts Options) (*vm.Result, error) {
	pl := &janusPlacer{prog: prog, handlers: make(map[janus.HandlerID]janus.Handler), next: 1}
	inst, err := engine.Instrument(tool, prog, pl, engine.Options{Out: opts.Out, FS: opts.FS, Interpret: opts.Interpret, Obs: opts.Obs})
	if err != nil {
		return nil, err
	}
	const (
		hInit janus.HandlerID = 60000 + iota
		hFini
	)
	initFns, finiFns := pl.initFns, pl.finiFns
	pl.handlers[hInit] = janus.Handler{Fn: func(*vm.Ctx, []uint64) {
		for _, fn := range initFns {
			fn()
		}
	}}
	pl.handlers[hFini] = janus.Handler{Fn: func(*vm.Ctx, []uint64) {
		for _, fn := range finiFns {
			fn()
		}
	}}
	rules := append([]janus.Rule{}, pl.rules...)
	if len(initFns) > 0 {
		rules = append(rules, janus.Rule{Trigger: janus.TriggerInit, Handler: hInit})
	}
	if len(finiFns) > 0 {
		rules = append(rules, janus.Rule{Trigger: janus.TriggerFini, Handler: hFini})
	}
	jt := &janus.Tool{
		Name: "cinnamon",
		StaticPass: func(sa *janus.StaticAnalyzer) {
			for _, r := range rules {
				sa.EmitRule(r)
			}
		},
		Handlers: pl.handlers,
	}
	res, err := janus.Run(prog, jt, janus.Config{Fuel: opts.Fuel, AppOut: opts.AppOut, Obs: opts.Obs, ExecMode: opts.VMMode, NoInline: opts.VMNoInline, Adaptive: opts.Adaptive, OnMachine: opts.OnMachine, Stop: opts.Stop})
	if err != nil {
		return nil, err
	}
	if err := inst.Err(); err != nil {
		return nil, err
	}
	return res, nil
}
