// Package asm implements a two-pass assembler from textual assembly to
// obj.Module objects. All binaries in this repository — the SPEC-like
// workload suite and the monitoring victim programs — are authored in this
// assembly language.
//
// Syntax overview (comments start with ';' or '#'):
//
//	.module a.out          ; module name
//	.executable            ; mark as the main program
//	.entry main            ; program entry symbol
//	.extern malloc         ; imported symbol
//	.global main           ; export a symbol
//
//	.func main             ; begin a function (ends at the next directive)
//	  mov   r1, 64
//	  call  malloc
//	  mov   r5, r0
//	loop:                  ; function-local label
//	  store r2, [r5+8]
//	  add   r2, r2, 1
//	  blt   r2, r3, loop   ; conditional branch (beq/bne/blt/ble/bgt/bge)
//	  b     done           ; unconditional branch; "b r3" is indirect
//	done:
//	  ret
//
//	.data                  ; switch to the data section
//	counts: .quad 0, 1, 2  ; 8-byte words
//	table:  .addr f1, f2   ; address words (relocated)
//	buf:    .space 64      ; zero bytes
//	.jumptable table, 2, switch_br, recoverable
//
// Immediate operands may reference symbols as `@sym` or `@sym+N`, which the
// assembler lowers to relocations patched by the loader.
package asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/obj"
)

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// Assemble translates source text into a module.
func Assemble(src string) (*obj.Module, error) {
	a := &assembler{
		mod:       &obj.Module{},
		labels:    make(map[string]labelDef),
		externs:   make(map[string]bool),
		globals:   make(map[string]bool),
		funcStart: -1,
	}
	if err := a.run(src); err != nil {
		return nil, err
	}
	return a.mod, nil
}

// MustAssemble is Assemble for known-good sources (tests, generators); it
// panics on error.
func MustAssemble(src string) *obj.Module {
	m, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return m
}

type labelDef struct {
	kind obj.SymKind
	off  uint64
	fn   string // enclosing function for code labels ("" for functions themselves)
}

type pendingInst struct {
	line int
	inst *isa.Inst
	// refs maps operand index -> symbolic reference to patch via reloc.
	refs map[int]symRef
}

type pendingData struct {
	line int
	off  uint64
	ref  symRef
}

type symRef struct {
	name   string
	addend int64
}

type jumpTableDecl struct {
	line                    int
	table, branch, recoverS string
	count                   int
}

type assembler struct {
	mod     *obj.Module
	labels  map[string]labelDef
	externs map[string]bool
	globals map[string]bool

	insts     []pendingInst
	dataRefs  []pendingData
	jts       []jumpTableDecl
	entrySym  string
	entryLine int

	curFunc   string
	funcStart int64 // code offset where current function began, -1 if none
	inData    bool
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) run(src string) error {
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		line := i + 1
		text := stripComment(raw)
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		// Labels: one or more "name:" prefixes.
		for {
			idx := strings.Index(text, ":")
			if idx < 0 {
				break
			}
			head := strings.TrimSpace(text[:idx])
			if !isIdent(head) {
				break
			}
			if err := a.defineLabel(line, head); err != nil {
				return err
			}
			text = strings.TrimSpace(text[idx+1:])
		}
		if text == "" {
			continue
		}
		var err error
		if strings.HasPrefix(text, ".") {
			err = a.directive(line, text)
		} else if a.inData {
			err = a.errf(line, "instruction %q in data section", text)
		} else {
			err = a.instruction(line, text)
		}
		if err != nil {
			return err
		}
	}
	a.endFunc()
	return a.finish()
}

func stripComment(s string) string {
	for _, c := range []string{";", "#"} {
		if i := strings.Index(s, c); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) defineLabel(line int, name string) error {
	if _, dup := a.labels[name]; dup {
		return a.errf(line, "duplicate label %q", name)
	}
	if a.inData {
		a.labels[name] = labelDef{kind: obj.SymData, off: uint64(len(a.mod.Data))}
		a.mod.Syms = append(a.mod.Syms, obj.Symbol{Name: name, Kind: obj.SymData, Off: uint64(len(a.mod.Data))})
		return nil
	}
	if a.curFunc == "" {
		return a.errf(line, "code label %q outside function", name)
	}
	a.labels[name] = labelDef{kind: obj.SymFunc, off: uint64(len(a.mod.Code)), fn: a.curFunc}
	return nil
}

func (a *assembler) directive(line int, text string) error {
	fields := strings.SplitN(text, " ", 2)
	dir := fields[0]
	arg := ""
	if len(fields) == 2 {
		arg = strings.TrimSpace(fields[1])
	}
	switch dir {
	case ".module":
		if arg == "" {
			return a.errf(line, ".module requires a name")
		}
		a.mod.Name = arg
	case ".executable":
		a.mod.Executable = true
	case ".entry":
		if !isIdent(arg) {
			return a.errf(line, ".entry requires a symbol")
		}
		a.entrySym, a.entryLine = arg, line
	case ".extern":
		if !isIdent(arg) {
			return a.errf(line, ".extern requires a symbol")
		}
		a.externs[arg] = true
	case ".global":
		if !isIdent(arg) {
			return a.errf(line, ".global requires a symbol")
		}
		a.globals[arg] = true
	case ".func":
		if !isIdent(arg) {
			return a.errf(line, ".func requires a name")
		}
		a.endFunc()
		a.inData = false
		if _, dup := a.labels[arg]; dup {
			return a.errf(line, "duplicate symbol %q", arg)
		}
		a.curFunc = arg
		a.funcStart = int64(len(a.mod.Code))
		a.labels[arg] = labelDef{kind: obj.SymFunc, off: uint64(len(a.mod.Code))}
	case ".data":
		a.endFunc()
		a.inData = true
	case ".quad":
		return a.dataWords(line, arg)
	case ".addr":
		return a.dataAddrs(line, arg)
	case ".space":
		n, err := parseInt(arg)
		if err != nil || n < 0 {
			return a.errf(line, "bad .space size %q", arg)
		}
		a.mod.Data = append(a.mod.Data, make([]byte, n)...)
	case ".jumptable":
		parts := splitArgs(arg)
		if len(parts) != 4 {
			return a.errf(line, ".jumptable wants table, count, branch, recoverable|unrecoverable")
		}
		count, err := parseInt(parts[1])
		if err != nil || count <= 0 {
			return a.errf(line, "bad jump table count %q", parts[1])
		}
		a.jts = append(a.jts, jumpTableDecl{line: line, table: parts[0], count: int(count), branch: parts[2], recoverS: parts[3]})
	default:
		return a.errf(line, "unknown directive %q", dir)
	}
	return nil
}

func (a *assembler) endFunc() {
	if a.curFunc == "" {
		return
	}
	size := uint64(len(a.mod.Code)) - uint64(a.funcStart)
	a.mod.Syms = append(a.mod.Syms, obj.Symbol{
		Name: a.curFunc, Kind: obj.SymFunc, Off: uint64(a.funcStart), Size: size,
	})
	a.curFunc, a.funcStart = "", -1
}

func (a *assembler) dataWords(line int, arg string) error {
	if !a.inData {
		return a.errf(line, ".quad outside data section")
	}
	for _, f := range splitArgs(arg) {
		v, err := parseInt(f)
		if err != nil {
			return a.errf(line, "bad .quad value %q", f)
		}
		a.appendWord(uint64(v))
	}
	return nil
}

func (a *assembler) dataAddrs(line int, arg string) error {
	if !a.inData {
		return a.errf(line, ".addr outside data section")
	}
	for _, f := range splitArgs(arg) {
		ref, err := parseSymRef(f)
		if err != nil {
			return a.errf(line, "bad .addr target %q: %v", f, err)
		}
		a.dataRefs = append(a.dataRefs, pendingData{line: line, off: uint64(len(a.mod.Data)), ref: ref})
		a.appendWord(0)
	}
	return nil
}

func (a *assembler) appendWord(v uint64) {
	for i := 0; i < 8; i++ {
		a.mod.Data = append(a.mod.Data, byte(v>>(8*i)))
	}
}

// condMnemonics maps branch mnemonics to their condition.
var condMnemonics = map[string]isa.Cond{
	"beq": isa.EQ, "bne": isa.NE, "blt": isa.LT, "ble": isa.LE, "bgt": isa.GT, "bge": isa.GE,
}

func (a *assembler) instruction(line int, text string) error {
	if a.curFunc == "" {
		return a.errf(line, "instruction outside function")
	}
	mnem := text
	rest := ""
	if i := strings.IndexAny(text, " \t"); i >= 0 {
		mnem, rest = text[:i], strings.TrimSpace(text[i+1:])
	}
	args := splitArgs(rest)

	in := &isa.Inst{}
	refs := make(map[int]symRef)

	addOperand := func(s string) error {
		op, ref, err := parseOperand(s)
		if err != nil {
			return err
		}
		if ref != nil {
			refs[len(in.Ops)] = *ref
		}
		in.Ops = append(in.Ops, op)
		return nil
	}
	addAll := func() error {
		for _, s := range args {
			if err := addOperand(s); err != nil {
				return a.errf(line, "%v", err)
			}
		}
		return nil
	}

	switch {
	case mnem == "b":
		in.Op = isa.Branch
		if len(args) != 1 {
			return a.errf(line, "b wants one target")
		}
		if r, ok := isa.RegByName(args[0]); ok {
			in.Ops = append(in.Ops, isa.RegOp(r))
		} else {
			ref, err := parseSymRef(args[0])
			if err != nil {
				return a.errf(line, "bad branch target %q", args[0])
			}
			refs[0] = ref
			in.Ops = append(in.Ops, isa.ImmOp(0))
			in.TargetSym = ref.name
		}
	case condMnemonics[mnem] != 0:
		in.Op = isa.Branch
		in.Cond = condMnemonics[mnem]
		if len(args) != 3 {
			return a.errf(line, "%s wants rs, rt, target", mnem)
		}
		for i := 0; i < 2; i++ {
			r, ok := isa.RegByName(args[i])
			if !ok {
				return a.errf(line, "bad register %q", args[i])
			}
			in.Ops = append(in.Ops, isa.RegOp(r))
		}
		ref, err := parseSymRef(args[2])
		if err != nil {
			return a.errf(line, "bad branch target %q", args[2])
		}
		refs[2] = ref
		in.Ops = append(in.Ops, isa.ImmOp(0))
		in.TargetSym = ref.name
	case mnem == "call":
		in.Op = isa.Call
		if len(args) != 1 {
			return a.errf(line, "call wants one target")
		}
		if r, ok := isa.RegByName(args[0]); ok {
			in.Ops = append(in.Ops, isa.RegOp(r))
		} else {
			ref, err := parseSymRef(args[0])
			if err != nil {
				return a.errf(line, "bad call target %q", args[0])
			}
			refs[0] = ref
			in.Ops = append(in.Ops, isa.ImmOp(0))
			in.TargetSym = ref.name
		}
	default:
		op, ok := isa.OpByName(mnem)
		if !ok {
			return a.errf(line, "unknown mnemonic %q", mnem)
		}
		in.Op = op
		if err := addAll(); err != nil {
			return err
		}
	}

	if err := in.Validate(); err != nil {
		return a.errf(line, "%v", err)
	}
	a.insts = append(a.insts, pendingInst{line: line, inst: in, refs: refs})

	encoded, err := isa.Encode(a.mod.Code, in)
	if err != nil {
		return a.errf(line, "%v", err)
	}
	in.Addr = uint64(len(a.mod.Code)) // module-relative for now
	in.Size = isa.EncodedSize(in)
	a.mod.Code = encoded
	return nil
}

// parseOperand parses a register, memory or immediate operand. Immediates
// may be `@sym` or `@sym±N` references, returned as a symRef for the caller
// to record.
func parseOperand(s string) (isa.Operand, *symRef, error) {
	if r, ok := isa.RegByName(s); ok {
		return isa.RegOp(r), nil, nil
	}
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		inner := s[1 : len(s)-1]
		base := inner
		off := int64(0)
		if i := strings.IndexAny(inner, "+-"); i > 0 {
			base = inner[:i]
			v, err := parseInt(inner[i:])
			if err != nil {
				return isa.Operand{}, nil, fmt.Errorf("bad memory offset in %q", s)
			}
			off = v
		}
		r, ok := isa.RegByName(strings.TrimSpace(base))
		if !ok {
			return isa.Operand{}, nil, fmt.Errorf("bad base register in %q", s)
		}
		return isa.MemOp(r, off), nil, nil
	}
	if strings.HasPrefix(s, "@") {
		ref, err := parseSymRef(s[1:])
		if err != nil {
			return isa.Operand{}, nil, err
		}
		return isa.ImmOp(0), &ref, nil
	}
	v, err := parseInt(s)
	if err != nil {
		return isa.Operand{}, nil, fmt.Errorf("bad operand %q", s)
	}
	return isa.ImmOp(v), nil, nil
}

func parseSymRef(s string) (symRef, error) {
	name := s
	addend := int64(0)
	if i := strings.IndexAny(s, "+-"); i > 0 {
		name = s[:i]
		v, err := parseInt(s[i:])
		if err != nil {
			return symRef{}, fmt.Errorf("bad addend in %q", s)
		}
		addend = v
	}
	if !isIdent(name) {
		return symRef{}, fmt.Errorf("bad symbol %q", name)
	}
	return symRef{name: name, addend: addend}, nil
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "+") {
		s = s[1:]
	} else if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

// finish resolves symbolic references into relocations and finalizes the
// module.
func (a *assembler) finish() error {
	if a.mod.Name == "" {
		a.mod.Name = "a.out"
	}
	for name := range a.globals {
		found := false
		for i := range a.mod.Syms {
			if a.mod.Syms[i].Name == name {
				a.mod.Syms[i].Global = true
				found = true
			}
		}
		if !found {
			return a.errf(0, ".global %q: no such symbol", name)
		}
	}
	if a.entrySym != "" {
		def, ok := a.labels[a.entrySym]
		if !ok || def.kind != obj.SymFunc {
			return a.errf(a.entryLine, ".entry %q: no such function", a.entrySym)
		}
		a.mod.Entry = def.off
	}

	// resolveRef maps a symbolic reference to a relocation target: a local
	// label becomes (enclosing-function, addend), a module symbol or
	// extern stays by name.
	resolveRef := func(line int, ref symRef) (sym string, addend int64, err error) {
		if def, ok := a.labels[ref.name]; ok {
			if def.fn != "" {
				// Function-local label: relocate against the function
				// symbol with the intra-function offset as addend.
				fnDef := a.labels[def.fn]
				return def.fn, int64(def.off-fnDef.off) + ref.addend, nil
			}
			return ref.name, ref.addend, nil
		}
		if a.externs[ref.name] {
			return ref.name, ref.addend, nil
		}
		return "", 0, a.errf(line, "undefined symbol %q", ref.name)
	}

	for _, pi := range a.insts {
		for opIdx, ref := range pi.refs {
			sym, addend, err := resolveRef(pi.line, ref)
			if err != nil {
				return err
			}
			immOff, err := isa.ImmOffset(pi.inst, opIdx)
			if err != nil {
				return a.errf(pi.line, "internal: %v", err)
			}
			a.mod.Relocs = append(a.mod.Relocs, obj.Reloc{
				Kind:   obj.RelocCode,
				Off:    pi.inst.Addr + uint64(immOff),
				Sym:    sym,
				Addend: addend,
			})
		}
	}
	for _, pd := range a.dataRefs {
		sym, addend, err := resolveRef(pd.line, pd.ref)
		if err != nil {
			return err
		}
		a.mod.Relocs = append(a.mod.Relocs, obj.Reloc{Kind: obj.RelocData, Off: pd.off, Sym: sym, Addend: addend})
	}
	for name := range a.externs {
		a.mod.Imports = append(a.mod.Imports, name)
	}
	sort.Strings(a.mod.Imports)

	for _, jt := range a.jts {
		tdef, ok := a.labels[jt.table]
		if !ok || tdef.kind != obj.SymData {
			return a.errf(jt.line, ".jumptable: %q is not a data label", jt.table)
		}
		bdef, ok := a.labels[jt.branch]
		if !ok || bdef.kind != obj.SymFunc {
			return a.errf(jt.line, ".jumptable: %q is not a code label", jt.branch)
		}
		var recoverable bool
		switch jt.recoverS {
		case "recoverable":
			recoverable = true
		case "unrecoverable":
			recoverable = false
		default:
			return a.errf(jt.line, ".jumptable: want recoverable|unrecoverable, got %q", jt.recoverS)
		}
		a.mod.JumpTables = append(a.mod.JumpTables, obj.JumpTable{
			DataOff:     tdef.off,
			Count:       jt.count,
			BranchOff:   bdef.off,
			Recoverable: recoverable,
		})
	}

	return a.mod.Validate()
}
