package main

import (
	"strings"
	"testing"
)

// Documented behaviour: Janus and Dyninst both report the hot loop
// dominating coverage; Pin rejects the loop commands ("no notion of
// loops"), matching Section VI-B.
func TestLoopCoverageOutput(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, backend := range []string{"janus:", "dyninst:"} {
		if !strings.Contains(out, backend+"\nloop 0 coverage 96\nloop 1 coverage 1\n") {
			t.Errorf("%s coverage table missing or changed:\n%s", backend, out)
		}
	}
	if !strings.Contains(out, "pin:") || !strings.Contains(out, "no notion of loops") {
		t.Errorf("pin loop rejection not reported:\n%s", out)
	}
}
