package ast_test

import (
	"strings"
	"testing"

	"repro/internal/core/ast"
	"repro/internal/core/parser"
	"repro/internal/core/token"
	"repro/internal/progs"
)

// The canonical printer must be a fixed point through the parser: for
// any program, print(parse(src)) printed again after a reparse is
// byte-identical. The conformance generator and shrinker rely on this
// to compare programs as strings.
func TestPrintParseFixpoint(t *testing.T) {
	for _, name := range progs.Names() {
		src := progs.MustSource(name)
		p1, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		once := ast.Print(p1)
		p2, err := parser.Parse(once)
		if err != nil {
			t.Fatalf("%s: printed source does not reparse: %v\n%s", name, err, once)
		}
		twice := ast.Print(p2)
		if once != twice {
			t.Errorf("%s: print/parse not a fixed point:\n--- once ---\n%s\n--- twice ---\n%s", name, once, twice)
		}
	}
}

// Printing must preserve semantics-bearing shape: statement counts and
// the expression structure survive the round trip.
func TestPrintPreservesStatementCounts(t *testing.T) {
	for _, name := range progs.Names() {
		src := progs.MustSource(name)
		orig, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		re, err := parser.Parse(ast.Print(orig))
		if err != nil {
			t.Fatal(err)
		}
		if a, b := countAllStmts(orig), countAllStmts(re); a != b {
			t.Errorf("%s: statement count changed across print/parse: %d -> %d", name, a, b)
		}
	}
}

func countAllStmts(p *ast.Program) int {
	n := 0
	var cmd func(c *ast.Command)
	cmd = func(c *ast.Command) {
		for _, item := range c.Body {
			switch it := item.(type) {
			case *ast.Command:
				cmd(it)
			case *ast.Action:
				n += ast.CountStmts(it.Body)
			case ast.Stmt:
				n += ast.CountStmts([]ast.Stmt{it})
			}
		}
	}
	for _, item := range p.Items {
		switch it := item.(type) {
		case *ast.Command:
			cmd(it)
		case *ast.InitBlock:
			n += ast.CountStmts(it.Body)
		case *ast.ExitBlock:
			n += ast.CountStmts(it.Body)
		}
	}
	return n
}

// ExprString must emit minimal parentheses while preserving the parse:
// reparsing the rendered expression yields the same rendering.
func TestExprStringMinimalParens(t *testing.T) {
	cases := []struct{ src, want string }{
		{"exit { x = a + b * c; }", "a + b * c"},
		{"exit { x = (a + b) * c; }", "(a + b) * c"},
		{"exit { x = a - (b - c); }", "a - (b - c)"},
		{"exit { x = a - b - c; }", "a - b - c"},
		{"exit { x = !(a && b); }", "!(a && b)"},
		{"exit { x = -a + b; }", "-a + b"},
		{"exit { x = a % 2 == 0 && b < 3; }", "a % 2 == 0 && b < 3"},
		{"exit { x = d[k] + v.size(); }", "d[k] + v.size()"},
		{"exit { x = (a + b) % 16; }", "(a + b) % 16"},
	}
	for _, c := range cases {
		prog, err := parser.Parse(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		ex := prog.Items[0].(*ast.ExitBlock)
		got := ast.ExprString(ex.Body[0].(*ast.AssignStmt).RHS)
		if got != c.want {
			t.Errorf("ExprString(%s) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestPrintQuotesEscapes(t *testing.T) {
	src := "exit {\n  print(\"a\\n\\t\\\\\\\"b\");\n}\n"
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := ast.Print(prog); got != src {
		t.Errorf("escape round trip:\n%q\nvs\n%q", got, src)
	}
}

func TestWalkVisitsEveryExprNode(t *testing.T) {
	prog, err := parser.Parse("exit { x = a + d[k] * f(b, !c); }")
	if err != nil {
		t.Fatal(err)
	}
	rhs := prog.Items[0].(*ast.ExitBlock).Body[0].(*ast.AssignStmt).RHS
	kinds := map[string]int{}
	ast.Walk(rhs, func(e ast.Expr) {
		switch e.(type) {
		case *ast.BinaryExpr:
			kinds["binary"]++
		case *ast.UnaryExpr:
			kinds["unary"]++
		case *ast.IndexExpr:
			kinds["index"]++
		case *ast.CallExpr:
			kinds["call"]++
		case *ast.Ident:
			kinds["ident"]++
		}
	})
	want := map[string]int{"binary": 2, "unary": 1, "index": 1, "call": 1, "ident": 6}
	for k, n := range want {
		if kinds[k] != n {
			t.Errorf("Walk saw %d %s nodes, want %d (%v)", kinds[k], k, n, kinds)
		}
	}
}

func TestWalkStmtsAndCountStmts(t *testing.T) {
	src := `
exit {
  int n = 0;
  for (int i = 0; i < 4; i = i + 1) {
    if (i % 2 == 0) {
      n = n + 1;
    } else {
      n = n + 2;
    }
  }
  print(n);
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Items[0].(*ast.ExitBlock).Body
	// decl, for, for-init, for-post, if, 2 assigns in branches, print.
	if got := ast.CountStmts(body); got != 8 {
		t.Errorf("CountStmts = %d, want 8", got)
	}
	exprs := 0
	ast.WalkStmts(body, nil, func(ast.Expr) { exprs++ })
	if exprs == 0 {
		t.Error("WalkStmts visited no expressions")
	}
}

func TestETypeAndTriggerNames(t *testing.T) {
	for e, want := range map[ast.EType]string{
		ast.Module: "module", ast.Func: "func", ast.Loop: "loop",
		ast.BasicBlock: "basicblock", ast.Inst: "inst",
	} {
		if e.String() != want {
			t.Errorf("EType(%d).String() = %q, want %q", e, e.String(), want)
		}
	}
	if ast.Module.Level() >= ast.Inst.Level() {
		t.Error("module must be outermost (lowest level)")
	}
	for tr, want := range map[ast.Trigger]string{
		ast.Before: "before", ast.After: "after", ast.Entry: "entry",
		ast.Exit: "exit", ast.Iter: "iter",
	} {
		if tr.String() != want {
			t.Errorf("Trigger(%d).String() = %q, want %q", tr, tr.String(), want)
		}
	}
}

// The printer renders every statement form the grammar has; spot-check
// the trickier ones (for-clause omission, dict types, constructor
// declarations) against exact expected text.
func TestPrintStatementForms(t *testing.T) {
	cases := []struct{ src, want string }{
		{"exit { for (; x < 3; ) { x = x + 1; } }", "for (; x < 3; ) {"},
		{"dict<addr,int> shadow;", "dict<addr,int> shadow;"},
		{"int hits[16];", "int hits[16];"},
		{"file f(\"out.txt\");", "file f(\"out.txt\");"},
		{"exit { x = c IsType mem; }", "x = c IsType mem;"},
	}
	for _, c := range cases {
		prog, err := parser.Parse(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		out := ast.Print(prog)
		if !strings.Contains(out, c.want) {
			t.Errorf("Print(%q) = %q, missing %q", c.src, out, c.want)
		}
		if _, err := parser.Parse(out); err != nil {
			t.Errorf("Print(%q) output does not reparse: %v", c.src, err)
		}
	}
}

func TestTokenPrecedenceOrdering(t *testing.T) {
	// The printer's minimal-paren logic assumes multiplicative binds
	// tighter than additive binds tighter than comparison binds tighter
	// than logical; pin that ordering.
	if !(token.STAR.Precedence() > token.PLUS.Precedence() &&
		token.PLUS.Precedence() > token.EQ.Precedence() &&
		token.EQ.Precedence() > token.LAND.Precedence() &&
		token.LAND.Precedence() > token.LOR.Precedence()) {
		t.Error("operator precedence ordering changed; ast printer parenthesization is stale")
	}
}
