package placement

import (
	"fmt"
	"strings"

	"repro/internal/core/ast"
)

// String renders the table in a canonical, golden-friendly form: one
// line per rule in emission order, merged constituents indented under
// their fused probe. Addresses and labels are deterministic for a
// given (tool, victim) pair, so checked-in goldens make placement
// changes visible in review.
func (rs *RuleSet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ruleset: %d rules, %d placements, %d inits, %d finis\n",
		len(rs.rules), rs.NumPlacements(), len(rs.Inits), len(rs.Finis))
	for _, r := range rs.rules {
		b.WriteString(r.line())
		b.WriteByte('\n')
		for _, p := range r.Merged {
			b.WriteString("  + ")
			b.WriteString(p.line())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// line renders one rule; merged fusions summarize their shape and
// leave per-constituent detail to the indented lines.
func (r *Rule) line() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %#06x", r.Trigger, r.SiteAddr())
	if r.Trigger == Edge && r.From != nil {
		fmt.Fprintf(&b, " from=%#06x", r.From.Start)
	}
	if r.Block != nil && r.Block.Func != nil && r.Block.Func.Module != nil {
		fmt.Fprintf(&b, " [%s]", r.Block.Func.Module.Name())
	}
	fmt.Fprintf(&b, " mech=%s", r.Mechanism)
	if len(r.Merged) > 0 {
		fmt.Fprintf(&b, " merged=%d", len(r.Merged))
		if r.Action != nil && r.Action.Inline != nil && r.Action.Inline.Counter {
			fmt.Fprintf(&b, " delta=%d", r.Action.Inline.Delta)
		}
		return b.String()
	}
	if a := r.Action; a != nil {
		fmt.Fprintf(&b, " cost=%d", a.Cost)
		if a.Simple {
			b.WriteString(" simple")
		}
		if a.Sample > 1 {
			fmt.Fprintf(&b, " sample=%d", a.Sample)
		}
		if a.NumCaptured > 0 {
			fmt.Fprintf(&b, " captured=%d", a.NumCaptured)
		}
		if len(a.DynAttrs) > 0 {
			attrs := make([]string, len(a.DynAttrs))
			for i, da := range a.DynAttrs {
				attrs[i] = da.Var + "." + da.Attr
			}
			fmt.Fprintf(&b, " dyn=[%s]", strings.Join(attrs, ","))
		}
		if a.Inline != nil && a.Inline.Counter {
			fmt.Fprintf(&b, " delta=%d", a.Inline.Delta)
		}
		fmt.Fprintf(&b, " %q", a.Label)
	}
	if r.Where != nil {
		fmt.Fprintf(&b, " where=(%s)", ast.ExprString(r.Where))
	}
	return b.String()
}
