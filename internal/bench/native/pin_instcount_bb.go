package native

import (
	"fmt"
	"io"

	"repro/internal/cfg"
	"repro/internal/pin"
	"repro/internal/vm"
)

// Low-overhead instruction counting written directly against the Pin API
// (the native equivalent of Figure 5b, the Figure 13 baseline): at trace
// instrumentation time, count the loads in each basic block; insert one
// inlinable analysis call per block that adds the precomputed count.
func init() { register("pin", "instcount_bb", pinInstCountBB) }

func pinInstCountBB(prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error) {
	p := pin.New(prog, pin.Config{Fuel: fuel})
	var instCount uint64
	p.TraceAddInstrumentFunction(func(tr pin.TRACE) {
		for _, bbl := range tr.BBLs() {
			local := uint64(0)
			for _, ins := range bbl.Ins() {
				if ins.IsMemoryRead() {
					local++
				}
			}
			if local == 0 {
				continue
			}
			localCount := local
			add := pin.Routine{
				Fn:        func([]uint64) { instCount += localCount },
				Cost:      1 * stmtCost,
				Inlinable: true, // single add of a constant: inlined
			}
			if err := bbl.InsertCall(add); err != nil {
				panic(err)
			}
		}
	})
	p.AddFiniFunction(func() {
		fmt.Fprintf(out, "%d\n", instCount)
	})
	return p.Run()
}
