package main

import (
	"strings"
	"testing"
)

// The quickstart's documented behaviour: the same tool reports the same
// load count (10 — one per loop iteration) on every backend.
func TestQuickstartOutput(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "load counts reported by the same Cinnamon program on each backend:") {
		t.Errorf("missing header:\n%s", out)
	}
	for _, backend := range []string{"pin", "dyninst", "janus"} {
		found := false
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, backend) && strings.Contains(line, "-> 10 ") {
				found = true
			}
		}
		if !found {
			t.Errorf("backend %s did not report 10 loads:\n%s", backend, out)
		}
	}
}
