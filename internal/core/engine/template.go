package engine

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/cfg"
	"repro/internal/core/ast"
	"repro/internal/core/compile"
	"repro/internal/core/interp"
	"repro/internal/core/placement"
	"repro/internal/core/value"
	"repro/internal/isa"
	"repro/internal/obs"
)

// The rule template: the session-independent half of an instrumentation
// build, recorded once and instantiated per session.
//
// BuildRules is deterministic for a given (tool, program, placer,
// engine options) — the walk enumerates CFEs in a fixed order, static
// where clauses resolve from by-value snapshots, and the optimization
// passes are pure table rewrites. What makes a built RuleSet
// session-bound is only the *binding*: action closures write to the
// session's output, mutate the session's global and captured cells, and
// record errors into the session's Instance. A Template therefore
// records the structure (post-pass rule list, mechanisms, merge runs)
// plus immutable snapshots of everything the bindings consumed (final
// global values, per-action captured values, analysis-time output,
// build-stat deltas), and Instantiate replays the binding step — fresh
// cells, fresh closures, fresh Instance — in a fraction of the full
// walk's cost. Per-session mutable state (probe IDs, counters, VM
// memory) lives in the collector and VM exactly as on the cold path.
//
// Not every build is shareable: the interpreter path, caller-provided
// file systems, analysis code that touches the tool FS, and captured or
// global values whose one-level copy would alias nested mutable state
// (nested containers, file handles) all disable recording. BuildTemplate
// then returns a nil Template and the build is simply not cached.

// templateRec accumulates recording state during one buildRules walk.
type templateRec struct {
	// col is a private collector: the walk and the passes bump their
	// build stats here so the template knows the exact deltas to replay
	// per instantiation (the caller's collector gets them merged in
	// afterwards).
	col *obs.Collector
	// analysisOut tees the analysis-time tool output.
	analysisOut bytes.Buffer
	// actions maps each placed Action to its AST node and captured
	// values.
	actions map[*placement.Action]*actionRec
}

// actionRec is one placed action's rebind record.
type actionRec struct {
	act *ast.Action
	// caps holds the non-global free variables of the compiled body,
	// by name, snapshotted at the cold bind. Never handed out directly:
	// Instantiate copies per session.
	caps map[string]value.Value
}

// ruleRec is one post-pass rule in table order. A merged rule records
// its constituents and is re-fused at instantiation so the fused
// closures bind to the new session's cells.
type ruleRec struct {
	trigger placement.Trigger
	inst    *isa.Inst
	block   *cfg.Block
	from    *cfg.Block
	action  *placement.Action // proto action (metadata key into Template.actions)
	mech    placement.Mechanism
	where   ast.Expr
	group   *placement.WhereGroup
	merged  []ruleRec
}

// globalRec is one global's final analysis-time value.
type globalRec struct {
	name string
	val  value.Value
}

// Template is a recorded instrumentation build, shareable read-only
// across sessions. Instantiate may be called concurrently.
type Template struct {
	tool    *CompiledTool
	prog    *cfg.Program
	globals []globalRec
	out     []byte
	stats   obs.BuildStats
	actions map[*placement.Action]*actionRec
	rules   []ruleRec
}

// BuildTemplate runs BuildRules while recording a reusable Template.
// It returns the cold build's own RuleSet and Instance — identical to
// what BuildRules would have produced — plus the Template, or a nil
// Template when the build is not shareable (interpreter path, external
// or touched file system, unshareable captured values). The RuleSet
// must still be lowered and used by the calling session as usual.
func BuildTemplate(tool *CompiledTool, prog *cfg.Program, placer Placer, opts Options) (*Template, *placement.RuleSet, *Instance, error) {
	if opts.Interpret || tool.Code == nil || opts.FS != nil {
		rs, inst, err := buildRules(tool, prog, placer, opts, nil)
		return nil, rs, inst, err
	}
	rec := &templateRec{
		col:     obs.New(obs.Options{}),
		actions: make(map[*placement.Action]*actionRec),
	}
	rs, inst, err := buildRules(tool, prog, placer, opts, rec)
	if err != nil {
		return nil, nil, nil, err
	}
	// The walk and passes bumped only the recorder's collector; merge
	// the deltas into the session's so the cold report is unchanged.
	stats := rec.col.Snapshot("").Build
	if opts.Obs != nil {
		opts.Obs.MutateBuild(func(b *obs.BuildStats) { addBuildDeltas(b, stats) })
	}
	return finalizeTemplate(tool, prog, rec, rs, inst, stats), rs, inst, nil
}

// addBuildDeltas adds the instrumentation-stage build stats a template
// replays (the lowering-stage fields are bumped live per session).
func addBuildDeltas(b *obs.BuildStats, d obs.BuildStats) {
	b.ActionsPlaced += d.ActionsPlaced
	b.StaticFiltered += d.StaticFiltered
	b.WheresHoisted += d.WheresHoisted
	b.CountersPromoted += d.CountersPromoted
	b.ProbesCoalesced += d.ProbesCoalesced
}

// finalizeTemplate checks shareability and freezes the recording, or
// returns nil when the build must stay session-private.
func finalizeTemplate(tool *CompiledTool, prog *cfg.Program, rec *templateRec, rs *placement.RuleSet, inst *Instance, stats obs.BuildStats) *Template {
	// Analysis code that touched the tool file system wrote state a
	// later session would not rebuild (file contents, read cursors).
	if len(inst.interp.FS.Names()) > 0 {
		return nil
	}
	t := &Template{
		tool:    tool,
		prog:    prog,
		out:     rec.analysisOut.Bytes(),
		stats:   stats,
		actions: rec.actions,
	}
	for _, d := range tool.Info.Globals {
		slot := inst.globals.Lookup(d.Name)
		if slot == nil || !shareableValue(*slot) {
			return nil
		}
		t.globals = append(t.globals, globalRec{name: d.Name, val: value.Copy(*slot)})
	}
	for _, ar := range rec.actions {
		for _, v := range ar.caps {
			if !shareableValue(v) {
				return nil
			}
		}
	}
	for _, r := range rs.Rules() {
		rr, ok := recordRule(r, rec)
		if !ok {
			return nil
		}
		t.rules = append(t.rules, rr)
	}
	return t
}

// recordRule freezes one post-pass rule (recursing one level into the
// constituents of a merged rule).
func recordRule(r *placement.Rule, rec *templateRec) (ruleRec, bool) {
	rr := ruleRec{
		trigger: r.Trigger, inst: r.Inst, block: r.Block, from: r.From,
		mech: r.Mechanism, where: r.Where, group: r.Group,
	}
	if parts := r.Merged; len(parts) > 0 {
		for _, p := range parts {
			pr, ok := recordRule(p, rec)
			if !ok || len(pr.merged) > 0 {
				return ruleRec{}, false
			}
			rr.merged = append(rr.merged, pr)
		}
		return rr, true
	}
	if r.Action == nil || rec.actions[r.Action] == nil {
		// An action the walk did not record (native/raw placements).
		return ruleRec{}, false
	}
	rr.action = r.Action
	return rr, true
}

// shareableValue reports whether a snapshot of v is safely private
// after one value.Copy: scalars, strings, opcodes and CFE references
// are immutable or read-only shared; flat containers copy; nested
// containers and file handles would alias mutable state across
// sessions.
func shareableValue(v value.Value) bool {
	deep := func(e value.Value) bool {
		switch e.Kind {
		case value.KDict, value.KVector, value.KArray, value.KFile:
			return false
		}
		return true
	}
	switch v.Kind {
	case value.KFile:
		return false
	case value.KDict:
		for _, e := range v.Dict.M {
			if !deep(e) {
				return false
			}
		}
	case value.KVector:
		for _, e := range v.Vec.Elems {
			if !deep(e) {
				return false
			}
		}
	case value.KArray:
		for _, e := range v.Arr.Elems {
			if !deep(e) {
				return false
			}
		}
	}
	return true
}

// Instantiate rebinds the template for one session: fresh global and
// captured cells initialized from the recorded snapshots, fresh action
// closures writing to opts.Out and recording into a fresh Instance,
// recorded analysis output replayed, and the recorded build-stat deltas
// credited to opts.Obs. The returned RuleSet is private to the caller
// and ready for Placer.Lower; runtime options (Out, Obs) are honoured,
// build options (Interpret, NoIROpt, Adaptive) must match the ones the
// template was built with — callers key their cache on them.
func (t *Template) Instantiate(opts Options) (*placement.RuleSet, *Instance, error) {
	out := opts.Out
	if out == nil {
		out = io.Discard
	}
	it := interp.New(t.tool.Info, out, opts.FS)
	glob := interp.NewEnv(nil)
	for _, g := range t.globals {
		glob.Define(g.name, value.Copy(g.val))
	}
	inst := &Instance{interp: it, globals: glob}
	if len(t.out) > 0 {
		if _, err := out.Write(t.out); err != nil {
			return nil, nil, err
		}
	}
	if opts.Obs != nil {
		stats := t.stats
		opts.Obs.MutateBuild(func(b *obs.BuildStats) { addBuildDeltas(b, stats) })
	}

	bound := make(map[*placement.Action]*placement.Action, len(t.actions))
	for proto, ar := range t.actions {
		na, err := t.bindAction(proto, ar, glob, out, inst)
		if err != nil {
			return nil, nil, err
		}
		bound[proto] = na
	}

	rs := &placement.RuleSet{}
	for _, rr := range t.rules {
		if len(rr.merged) > 0 {
			parts := make([]*placement.Rule, len(rr.merged))
			for i, pr := range rr.merged {
				parts[i] = pr.build(bound)
			}
			rs.Add(placement.MergeRun(parts))
			continue
		}
		rs.Add(rr.build(bound))
	}

	resolveGlobal := func(ref compile.CellRef) (*value.Value, error) {
		if v := glob.Lookup(ref.Name); v != nil {
			return v, nil
		}
		return nil, fmt.Errorf("cinnamon: internal: unresolved global %q", ref.Name)
	}
	for _, body := range t.tool.Code.Inits {
		b, err := body.Bind(resolveGlobal, out)
		if err != nil {
			return nil, nil, err
		}
		rs.Inits = append(rs.Inits, func() { inst.record(b.Exec(nil)) })
	}
	for _, body := range t.tool.Code.Exits {
		b, err := body.Bind(resolveGlobal, out)
		if err != nil {
			return nil, nil, err
		}
		rs.Finis = append(rs.Finis, func() { inst.record(b.Exec(nil)) })
	}
	return rs, inst, nil
}

// build materializes one recorded rule against the session's rebound
// actions.
func (rr ruleRec) build(bound map[*placement.Action]*placement.Action) *placement.Rule {
	return &placement.Rule{
		Trigger: rr.trigger, Inst: rr.inst, Block: rr.block, From: rr.from,
		Action: bound[rr.action], Mechanism: rr.mech,
		Where: rr.where, Group: rr.group,
	}
}

// bindAction replays compiledExec for one recorded action: same body,
// equal captured values in fresh cells, globals resolved to the new
// session's shared slots.
func (t *Template) bindAction(proto *placement.Action, ar *actionRec, glob *interp.Env, out io.Writer, inst *Instance) (*placement.Action, error) {
	body := t.tool.Code.Actions[ar.act]
	if body == nil {
		return nil, fmt.Errorf("cinnamon: internal: uncompiled action at %s", ar.act.Pos())
	}
	resolve := func(ref compile.CellRef) (*value.Value, error) {
		if ref.Global {
			if v := glob.Lookup(ref.Name); v != nil {
				return v, nil
			}
			return nil, fmt.Errorf("cinnamon: internal: unresolved global %q", ref.Name)
		}
		v, ok := ar.caps[ref.Name]
		if !ok {
			return nil, fmt.Errorf("cinnamon: internal: unrecorded capture %q at %s", ref.Name, ar.act.Pos())
		}
		cell := new(value.Value)
		*cell = value.Copy(v)
		return cell, nil
	}
	b, err := body.Bind(resolve, out)
	if err != nil {
		return nil, err
	}
	a := &placement.Action{
		Label:       proto.Label,
		Cost:        proto.Cost,
		Simple:      proto.Simple,
		Sample:      proto.Sample,
		DynAttrs:    proto.DynAttrs,
		NumCaptured: proto.NumCaptured,
	}
	if fast := b.FastExec(); fast != nil {
		a.Inline = &placement.InlineInfo{Exec: func(dyn []value.Value) {
			if err := fast(dyn); err != nil {
				inst.record(err)
			}
		}}
		if delta, flush, ok := b.CounterShape(); ok {
			a.Inline.Counter, a.Inline.Delta, a.Inline.Flush = true, delta, flush
			a.Inline.Cell = b.CounterCell()
		}
	}
	a.Exec = func(dyn []value.Value) {
		if err := b.Exec(dyn); err != nil {
			inst.record(err)
		}
	}
	return a, nil
}
