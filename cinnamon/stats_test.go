package cinnamon

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunStats(t *testing.T) {
	tool, err := Compile(countTool)
	if err != nil {
		t.Fatal(err)
	}
	target, err := LoadAssembly(app)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range Backends() {
		rep, err := tool.Run(target, b, RunOptions{Stats: true})
		if err != nil {
			t.Fatal(err)
		}
		s := rep.Stats
		if s == nil {
			t.Fatalf("%s: Stats nil with RunOptions.Stats set", b)
		}
		if s.Backend != b {
			t.Errorf("%s: stats backend = %q", b, s.Backend)
		}
		// The tool counts 5 loads; its one probe fires once per load.
		if s.TotalFires != 5 {
			t.Errorf("%s: total fires = %d, want 5", b, s.TotalFires)
		}
		if s.Trace != nil {
			t.Errorf("%s: trace recorded without RunOptions.Trace", b)
		}
		if s.ProbeCycles == 0 || len(s.Probes) == 0 {
			t.Errorf("%s: empty attribution: %+v", b, s)
		}

		var tbl bytes.Buffer
		s.WriteTable(&tbl)
		if !strings.Contains(tbl.String(), "before inst") {
			t.Errorf("%s: table missing probe row:\n%s", b, tbl.String())
		}
		var js bytes.Buffer
		if err := s.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		var decoded map[string]any
		if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
			t.Fatalf("%s: invalid stats JSON: %v", b, err)
		}
		if decoded["backend"] != b {
			t.Errorf("%s: JSON backend = %v", b, decoded["backend"])
		}
	}
}

func TestRunTraceImpliesStats(t *testing.T) {
	tool, err := Compile(countTool)
	if err != nil {
		t.Fatal(err)
	}
	target, err := LoadAssembly(app)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tool.Run(target, Janus, RunOptions{Trace: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats == nil || rep.Stats.Trace == nil {
		t.Fatal("Trace > 0 did not enable stats + trace")
	}
	tr := rep.Stats.Trace
	if len(tr.Events) != 3 || tr.Dropped != rep.Stats.TotalFires-3 {
		t.Errorf("trace = %d events, %d dropped (total fires %d)",
			len(tr.Events), tr.Dropped, rep.Stats.TotalFires)
	}
}

func TestRunStatsOffByDefault(t *testing.T) {
	tool, err := Compile(countTool)
	if err != nil {
		t.Fatal(err)
	}
	target, err := LoadAssembly(app)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tool.Run(target, Pin, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats != nil {
		t.Errorf("Stats = %+v, want nil when not requested", rep.Stats)
	}
	// And enabling them does not change the measured run.
	rep2, err := tool.Run(target, Pin, RunOptions{Stats: true, Trace: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != rep2.Cycles || rep.Insts != rep2.Insts || rep.ToolOutput != rep2.ToolOutput {
		t.Errorf("stats perturbed run: (%d,%d,%q) vs (%d,%d,%q)",
			rep.Cycles, rep.Insts, rep.ToolOutput, rep2.Cycles, rep2.Insts, rep2.ToolOutput)
	}
}
