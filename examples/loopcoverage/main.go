// Loop-coverage profiling (the paper's Figure 6): find the hot loops of
// an application by measuring what share of all executed basic blocks
// runs inside each loop. Loop-level instrumentation needs a framework
// with a notion of loops, so this tool maps to the Janus and Dyninst
// backends — and, exactly as the paper reports, fails on Pin.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/cinnamon"
)

const toolSrc = `
dict<int,int> live;
dict<int,int> loop_blocks;
dict<int,int> seen;
vector<int> loop_ids;
uint64 total_blocks = 0;

loop L {
  entry L {
    if (seen[L.id] == 0) {
      seen[L.id] = 1;
      loop_ids.add(L.id);
    }
    live[L.id] = 1;
  }
  exit L {
    live[L.id] = 0;
  }
}
basicblock B {
  entry B {
    total_blocks = total_blocks + 1;
    for (int i = 0; i < loop_ids.size(); i = i + 1) {
      int id = loop_ids[i];
      if (live[id] == 1) {
        loop_blocks[id] = loop_blocks[id] + 1;
      }
    }
  }
}
exit {
  for (int i = 0; i < loop_ids.size(); i = i + 1) {
    int id = loop_ids[i];
    print("loop", id, "coverage", loop_blocks[id] * 100 / total_blocks);
  }
}
`

// An application with one hot loop (200 iterations) and one cold loop
// (3 iterations) in a helper function.
const appSrc = `
.module loopy
.executable
.entry main
.func main
  mov  r8, 0
hot:
  mov  r12, @cells
  load r13, [r12+8]
  add  r13, r13, 1
  store r13, [r12+8]
  add  r8, r8, 1
  mov  r7, 200
  blt  r8, r7, hot
  call coldfn
  halt
.func coldfn
  sub  sp, sp, 8
  store r8, [sp]
  mov  r8, 0
cold:
  add  r14, r14, 1
  add  r8, r8, 1
  mov  r7, 3
  blt  r8, r7, cold
  load r8, [sp]
  add  sp, sp, 8
  ret
.data
cells: .space 64
`

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	tool, err := cinnamon.Compile(toolSrc)
	if err != nil {
		return err
	}
	target, err := cinnamon.LoadAssembly(appSrc)
	if err != nil {
		return err
	}
	for _, backend := range []string{cinnamon.Janus, cinnamon.Dyninst} {
		report, err := tool.Run(target, backend, cinnamon.RunOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s:\n%s", backend, report.ToolOutput)
	}
	// Pin has no notion of loops; the mapping is rejected at compile
	// time, matching Section VI-B of the paper.
	if _, err := tool.Run(target, cinnamon.Pin, cinnamon.RunOptions{}); err != nil {
		fmt.Fprintf(w, "pin: %v\n", err)
	}
	return nil
}
