package backend

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/progs"
)

// TestStatsReconcileInstCount checks the core reconciliation invariant on
// every backend: the instruction-counting tool's own printed count equals
// the collector's total probe firings (the tool's only action fires once
// per counted load, and nothing else is instrumented).
func TestStatsReconcileInstCount(t *testing.T) {
	for _, b := range Backends() {
		t.Run(b, func(t *testing.T) {
			prog := loadSrc(t, loadsSrc)
			col := obs.New(obs.Options{})
			var out strings.Builder
			if _, err := Run(compile(t, progs.InstCountBasic), prog, b, Options{Out: &out, Obs: col}); err != nil {
				t.Fatal(err)
			}
			var printed uint64
			if _, err := fmt.Sscanf(out.String(), "%d", &printed); err != nil {
				t.Fatalf("unparseable tool output %q: %v", out.String(), err)
			}
			s := col.Snapshot(b)
			if s.TotalFires != printed {
				t.Errorf("total fires = %d, tool printed %d", s.TotalFires, printed)
			}
			if s.UntrackedFires != 0 {
				t.Errorf("untracked fires = %d, want 0 (every probe is registered)", s.UntrackedFires)
			}
			if s.Build.ActionsPlaced == 0 {
				t.Error("no actions placed recorded")
			}
			// The tool's static `where (I.opcode == Load)` constraint
			// filters non-load instructions at instrumentation time.
			if s.Build.StaticFiltered == 0 {
				t.Error("static-where filtering not recorded")
			}
		})
	}
}

// TestStatsReconcileUAF cross-checks probe firing counts against the
// machine's own allocation accounting: the use-after-free monitor's
// malloc-after action fires exactly once per malloc, and its free-before
// action once per free.
func TestStatsReconcileUAF(t *testing.T) {
	for _, b := range Backends() {
		t.Run(b, func(t *testing.T) {
			prog := loadVictim(t, "uaf_bug")
			col := obs.New(obs.Options{})
			var out strings.Builder
			res, err := Run(compile(t, progs.UseAfterFree), prog, b, Options{Out: &out, Obs: col})
			if err != nil {
				t.Fatal(err)
			}
			if res.Allocs == 0 || res.Frees == 0 {
				t.Fatalf("victim did not allocate/free (allocs=%d frees=%d)", res.Allocs, res.Frees)
			}
			s := col.Snapshot(b)
			// The only after-trigger action is the malloc epilogue
			// (Figure 7's `after I` on the malloc call).
			afterFires := s.FiresWhere(func(p obs.ProbeStats) bool { return p.Trigger == obs.TriggerAfter })
			if afterFires != res.Allocs {
				t.Errorf("malloc-after fires = %d, machine counted %d allocs", afterFires, res.Allocs)
			}
			// The free command's before-action (source line 21) fires once
			// per free intrinsic call.
			freeFires := s.FiresWhere(func(p obs.ProbeStats) bool {
				return strings.Contains(p.Label, "@21:") && p.Trigger == obs.TriggerBefore
			})
			if freeFires != res.Frees {
				t.Errorf("free-before fires = %d, machine counted %d frees", freeFires, res.Frees)
			}
		})
	}
}

// TestStatsNeverPerturbsRun is the bit-identical gate: attaching a
// collector (with or without tracing) must not change the deterministic
// cost model's outputs — cycles, instruction count, or tool output.
func TestStatsNeverPerturbsRun(t *testing.T) {
	for _, b := range Backends() {
		t.Run(b, func(t *testing.T) {
			for _, toolName := range []string{progs.InstCountBasic, progs.InstCountBB} {
				prog := loadSrc(t, loadsSrc)
				var plain strings.Builder
				resPlain, err := Run(compile(t, toolName), prog, b, Options{Out: &plain})
				if err != nil {
					t.Fatal(err)
				}
				prog2 := loadSrc(t, loadsSrc)
				var observed strings.Builder
				resObs, err := Run(compile(t, toolName), prog2, b, Options{
					Out: &observed, Obs: obs.New(obs.Options{TraceCap: 16}),
				})
				if err != nil {
					t.Fatal(err)
				}
				if resPlain.Cycles != resObs.Cycles || resPlain.Insts != resObs.Insts {
					t.Errorf("%s: stats perturbed the run: cycles %d vs %d, insts %d vs %d",
						toolName, resPlain.Cycles, resObs.Cycles, resPlain.Insts, resObs.Insts)
				}
				if plain.String() != observed.String() {
					t.Errorf("%s: tool output differs with stats on: %q vs %q",
						toolName, plain.String(), observed.String())
				}
			}
		})
	}
}

// TestTraceWraparoundEndToEnd drives the bounded trace ring through a
// real instrumented run that fires more probes than the ring holds.
func TestTraceWraparoundEndToEnd(t *testing.T) {
	const cap = 4
	prog := loadSrc(t, loadsSrc)
	col := obs.New(obs.Options{TraceCap: cap})
	var out strings.Builder
	if _, err := Run(compile(t, progs.InstCountBasic), prog, Janus, Options{Out: &out, Obs: col}); err != nil {
		t.Fatal(err)
	}
	s := col.Snapshot(Janus)
	tr := s.Trace
	if tr == nil {
		t.Fatal("no trace recorded")
	}
	if s.TotalFires <= cap {
		t.Fatalf("test needs more than %d fires to wrap, got %d", cap, s.TotalFires)
	}
	if tr.Dropped != s.TotalFires-cap {
		t.Errorf("dropped = %d, want %d", tr.Dropped, s.TotalFires-cap)
	}
	if len(tr.Events) != cap {
		t.Fatalf("events = %d, want the last %d", len(tr.Events), cap)
	}
	for i, e := range tr.Events {
		if want := tr.Dropped + uint64(i); e.Seq != want {
			t.Errorf("event %d seq = %d, want %d (contiguous window)", i, e.Seq, want)
		}
	}
}

// TestStatsPinLoopDetectionEdges checks that the Pin loop-detection
// extension's edge instrumentation is attributed like any other probe.
func TestStatsPinLoopDetectionEdges(t *testing.T) {
	prog := loadVictim(t, "loopy")
	col := obs.New(obs.Options{})
	if _, err := Run(compile(t, progs.LoopCoverage), prog, Pin, Options{
		Out: io.Discard, Obs: col, PinLoopDetection: true,
	}); err != nil {
		t.Fatal(err)
	}
	s := col.Snapshot(Pin)
	edgeFires := s.FiresWhere(func(p obs.ProbeStats) bool { return p.Trigger == obs.TriggerEdge })
	if edgeFires == 0 {
		t.Error("loop-detection edge probes fired 0 times")
	}
	if s.UntrackedFires != 0 {
		t.Errorf("untracked fires = %d, want 0", s.UntrackedFires)
	}
}
