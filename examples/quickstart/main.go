// Quickstart: compile a Cinnamon instruction-counting tool (the paper's
// Figure 5a) and run it on a small binary under all three backends. The
// counts agree — the same Cinnamon program is portable across frameworks
// without modification.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/cinnamon"
)

// The Cinnamon tool: count every executed load instruction.
const toolSrc = `
uint64 inst_count = 0;
inst I where (I.opcode == Load) {
  before I {
    inst_count = inst_count + 1;
  }
}
exit {
  print(inst_count);
}
`

// The application under observation, in the synthetic machine's assembly:
// a loop summing 10 values from a table.
const appSrc = `
.module quickstart
.executable
.entry main
.extern print
.func main
  mov  r5, @table
  mov  r1, 0
  mov  r2, 0
  mov  r3, 10
head:
  mul  r6, r2, 8
  add  r7, r5, r6
  load r6, [r7]          ; one load per iteration
  add  r1, r1, r6
  add  r2, r2, 1
  blt  r2, r3, head
  call print             ; prints the sum (550)
  halt
.data
table: .quad 10, 20, 30, 40, 50, 60, 70, 80, 90, 100
`

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	tool, err := cinnamon.Compile(toolSrc)
	if err != nil {
		return err
	}
	target, err := cinnamon.LoadAssembly(appSrc)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "load counts reported by the same Cinnamon program on each backend:")
	for _, backend := range cinnamon.Backends() {
		report, err := tool.Run(target, backend, cinnamon.RunOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-8s -> %s    (%d app instructions, %d cycle units)\n",
			backend, trimNL(report.ToolOutput), report.Insts, report.Cycles)
	}
	return nil
}

func trimNL(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}
