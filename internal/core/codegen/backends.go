package codegen

import (
	"fmt"
	"strings"

	"repro/internal/core/ast"
	"repro/internal/core/sem"
)

// ---------------------------------------------------------------------------
// Pin

// pinIARG maps a dynamic attribute to its IARG descriptor list.
func pinIARG(da sem.DynAttr) string {
	switch {
	case da.Attr == "memaddr" || da.Attr == "srcaddr":
		return "IARG_MEMORYREAD_EA"
	case da.Attr == "dstaddr":
		return "IARG_MEMORYWRITE_EA"
	case da.Attr == "rtnval":
		return "IARG_FUNCRET_EXITPOINT_VALUE"
	case da.Attr == "trgaddr":
		return "IARG_BRANCH_TARGET_ADDR"
	case strings.HasPrefix(da.Attr, "arg"):
		return fmt.Sprintf("IARG_FUNCARG_ENTRYPOINT_VALUE, %s", da.Attr[3:])
	}
	return "IARG_INVALID"
}

// insertArgs renders the IARG list for an action call site.
func (g *generator) insertArgs(u actionUnit) string {
	var parts []string
	for _, name := range g.capturedVars(u) {
		// Captured analysis values: either a command-scope variable or a
		// static attribute spelled var_attr.
		expr := name
		if i := strings.IndexByte(name, '_'); i > 0 && g.isCFEVar(u, name[:i]) {
			expr = fmt.Sprintf("cnm::%s(%s)", name[i+1:], name[:i])
		}
		parts = append(parts, "IARG_UINT64, "+expr)
	}
	for _, da := range u.info.DynAttrs {
		parts = append(parts, pinIARG(da))
	}
	parts = append(parts, "IARG_END")
	return strings.Join(parts, ", ")
}

func (g *generator) isCFEVar(u actionUnit, name string) bool {
	// The CFE variables in scope are the enclosing command chain's; a
	// conservative check against all command variables suffices for
	// rendering.
	found := false
	var scan func(c *ast.Command)
	scan = func(c *ast.Command) {
		if c.Var == name {
			found = true
		}
		for _, item := range c.Body {
			if nc, ok := item.(*ast.Command); ok {
				scan(nc)
			}
		}
	}
	for _, c := range g.info.Commands {
		scan(c)
	}
	return found
}

func (g *generator) pin() (map[string]string, error) {
	w := &writer{}
	g.header(w, "Pin tool (dynamic instrumentation).", []string{"\"pin.H\"", "<cstdint>", "<map>", "<vector>", "<string>"})
	g.globals(w)
	g.actionFunctions(w)
	g.initExitFunctions(w)

	var instCmds, bbCmds, funcCmds, modCmds []*ast.Command
	for _, cmd := range g.info.Commands {
		switch cmd.EType {
		case ast.Inst:
			instCmds = append(instCmds, cmd)
		case ast.BasicBlock:
			bbCmds = append(bbCmds, cmd)
		case ast.Func:
			funcCmds = append(funcCmds, cmd)
		case ast.Loop:
			return nil, fmt.Errorf("codegen: pin has no notion of loops; loop command %q cannot be mapped", cmd.Var)
		case ast.Module:
			modCmds = append(modCmds, cmd)
		}
	}

	if len(instCmds) > 0 {
		w.line("// Instruction-mode instrumentation (one callback for all inst commands).")
		w.line("VOID InstrumentINS(INS %s_raw, VOID*) {", instCmds[0].Var)
		w.indent++
		for _, cmd := range instCmds {
			w.line("{")
			w.indent++
			w.line("INS %s = %s_raw;", cmd.Var, instCmds[0].Var)
			g.pinCmdBody(w, cmd)
			w.indent--
			w.line("}")
		}
		w.indent--
		w.line("}")
		w.blank()
	}
	if len(bbCmds) > 0 {
		w.line("// Trace-mode instrumentation (basic-block commands).")
		w.line("VOID InstrumentTRACE(TRACE trace, VOID*) {")
		w.indent++
		for _, cmd := range bbCmds {
			w.line("for (BBL %s = TRACE_BblHead(trace); BBL_Valid(%s); %s = BBL_Next(%s)) {",
				cmd.Var, cmd.Var, cmd.Var, cmd.Var)
			w.indent++
			g.pinCmdBody(w, cmd)
			w.indent--
			w.line("}")
		}
		w.indent--
		w.line("}")
		w.blank()
	}
	if len(funcCmds) > 0 {
		w.line("// Routine-mode instrumentation (function commands; needs symbols).")
		w.line("VOID InstrumentRTN(RTN %s, VOID*) {", funcCmds[0].Var)
		w.indent++
		w.line("RTN_Open(%s);", funcCmds[0].Var)
		for _, cmd := range funcCmds {
			if cmd.Var != funcCmds[0].Var {
				w.line("RTN %s = %s;", cmd.Var, funcCmds[0].Var)
			}
			g.pinCmdBody(w, cmd)
		}
		w.line("RTN_Close(%s);", funcCmds[0].Var)
		w.indent--
		w.line("}")
		w.blank()
	}
	if len(modCmds) > 0 {
		w.line("// Image-mode instrumentation (module commands).")
		w.line("VOID InstrumentIMG(IMG %s, VOID*) {", modCmds[0].Var)
		w.indent++
		for _, cmd := range modCmds {
			g.pinCmdBody(w, cmd)
		}
		w.indent--
		w.line("}")
		w.blank()
	}

	w.line("VOID Fini(INT32 code, VOID*) {")
	w.indent++
	for i := range g.info.Exits {
		w.line("cnm_exit_%d();", i+1)
	}
	w.indent--
	w.line("}")
	w.blank()
	w.line("int main(int argc, char* argv[]) {")
	w.indent++
	w.line("PIN_InitSymbols();")
	w.line("if (PIN_Init(argc, argv)) return 1;")
	if len(instCmds) > 0 {
		w.line("INS_AddInstrumentFunction(InstrumentINS, 0);")
	}
	if len(bbCmds) > 0 {
		w.line("TRACE_AddInstrumentFunction(InstrumentTRACE, 0);")
	}
	if len(funcCmds) > 0 {
		w.line("RTN_AddInstrumentFunction(InstrumentRTN, 0);")
	}
	if len(modCmds) > 0 {
		w.line("IMG_AddInstrumentFunction(InstrumentIMG, 0);")
	}
	for i := range g.info.Inits {
		w.line("cnm_init_%d();", i+1)
	}
	w.line("PIN_AddFiniFunction(Fini, 0);")
	w.line("PIN_StartProgram();")
	w.line("return 0;")
	w.indent--
	w.line("}")
	return map[string]string{"pin_tool.cpp": w.b.String()}, nil
}

// pinCmdBody emits a command's constraint guard, analysis statements,
// nested commands and insert-call sites inside the Pin instrumentation
// callback for its granularity.
func (g *generator) pinCmdBody(w *writer, cmd *ast.Command) {
	close := 0
	if cmd.Where != nil {
		w.line("if (%s) {", g.expr(cmd.Where, exprCtx{}))
		w.indent++
		close++
	}
	for _, item := range cmd.Body {
		switch it := item.(type) {
		case *ast.Command:
			// Nested command: iterate the sub-elements of the current
			// CFE (instructions of a block or routine).
			iter := fmt.Sprintf("for (INS %s = BBL_InsHead(%s); INS_Valid(%s); %s = INS_Next(%s)) {",
				it.Var, cmd.Var, it.Var, it.Var, it.Var)
			if cmd.EType == ast.Func {
				iter = fmt.Sprintf("for (INS %s = RTN_InsHead(%s); INS_Valid(%s); %s = INS_Next(%s)) {",
					it.Var, cmd.Var, it.Var, it.Var, it.Var)
			}
			w.line("%s", iter)
			w.indent++
			g.pinCmdBody(w, it)
			w.indent--
			w.line("}")
		case *ast.Action:
			g.pinInsert(w, it)
		case ast.Stmt:
			g.stmt(w, it, exprCtx{})
		}
	}
	for ; close > 0; close-- {
		w.indent--
		w.line("}")
	}
}

func (g *generator) pinInsert(w *writer, act *ast.Action) {
	u := g.unitOf(act)
	close := 0
	if act.Where != nil && !u.info.WhereDynamic {
		w.line("if (%s) {", g.expr(act.Where, exprCtx{}))
		w.indent++
		close++
	}
	args := g.insertArgs(u)
	switch u.info.TargetEType {
	case ast.Inst:
		point := "IPOINT_BEFORE"
		if u.info.Canonical == ast.After {
			point = "IPOINT_AFTER"
		}
		w.line("INS_InsertCall(%s, %s, (AFUNPTR)cnm_action_%d, %s);", act.Target, point, u.id, args)
	case ast.BasicBlock:
		if u.info.Canonical == ast.Entry {
			w.line("BBL_InsertCall(%s, IPOINT_BEFORE, (AFUNPTR)cnm_action_%d, %s);", act.Target, u.id, args)
		} else {
			w.line("INS_InsertCall(BBL_InsTail(%s), IPOINT_BEFORE, (AFUNPTR)cnm_action_%d, %s);", act.Target, u.id, args)
		}
	case ast.Func:
		point := "IPOINT_BEFORE"
		where := "RTN_InsHead(" + act.Target + ")"
		if u.info.Canonical == ast.Exit {
			where = "RTN_InsTail(" + act.Target + ")"
		}
		w.line("INS_InsertCall(%s, %s, (AFUNPTR)cnm_action_%d, %s);", where, point, u.id, args)
	}
	for ; close > 0; close-- {
		w.indent--
		w.line("}")
	}
}

func (g *generator) unitOf(act *ast.Action) actionUnit {
	for _, u := range g.actions {
		if u.act == act {
			return u
		}
	}
	return actionUnit{}
}

// ---------------------------------------------------------------------------
// Dyninst

func dyninstArgExpr(da sem.DynAttr) string {
	switch {
	case da.Attr == "memaddr" || da.Attr == "srcaddr" || da.Attr == "dstaddr":
		return "new BPatch_effectiveAddressExpr()"
	case da.Attr == "rtnval":
		return "new BPatch_retExpr()"
	case da.Attr == "trgaddr":
		return "new BPatch_dynamicTargetExpr()"
	case strings.HasPrefix(da.Attr, "arg"):
		return fmt.Sprintf("new BPatch_paramExpr(%s)", da.Attr[3:])
	}
	return "nullptr"
}

func (g *generator) dyninst() (map[string]string, error) {
	w := &writer{}
	g.header(w, "Dyninst mutator (static binary rewriting).", []string{
		"\"BPatch.h\"", "\"BPatch_binaryEdit.h\"", "\"BPatch_function.h\"",
		"\"BPatch_point.h\"", "\"BPatch_flowGraph.h\"", "<cstdint>", "<map>", "<vector>", "<string>",
	})
	g.globals(w)
	g.actionFunctions(w)
	g.initExitFunctions(w)

	w.line("static BPatch bpatch;")
	w.blank()
	w.line("// insert_action wires one callback call at a point, with its arguments.")
	w.line("static void insert_action(BPatch_binaryEdit* app, const char* fn,")
	w.line("                          std::vector<BPatch_snippet*>& args,")
	w.line("                          BPatch_point* point, BPatch_callWhen when) {")
	w.indent++
	w.line("std::vector<BPatch_function*> fs;")
	w.line("app->getImage()->findFunction(fn, fs);")
	w.line("BPatch_funcCallExpr call(*fs[0], args);")
	w.line("app->insertSnippet(call, *point, when);")
	w.indent--
	w.line("}")
	w.blank()

	w.line("int main(int argc, char* argv[]) {")
	w.indent++
	w.line("BPatch_binaryEdit* app = bpatch.openBinary(argv[1]);")
	w.line("BPatch_image* image = app->getImage();")
	w.line("std::vector<BPatch_function*>* funcs = image->getProcedures();")
	for i := range g.info.Inits {
		w.line("cnm_init_%d(); // instrumented into _init of the rewritten binary", i+1)
	}
	w.blank()
	for _, cmd := range g.info.Commands {
		g.dyninstCmd(w, cmd, "")
		w.blank()
	}
	for i := range g.info.Exits {
		w.line("cnm_exit_%d(); // instrumented into _fini of the rewritten binary", i+1)
	}
	w.line("app->writeFile(argv[2]);")
	w.line("return 0;")
	w.indent--
	w.line("}")
	return map[string]string{"dyninst_mutator.cpp": w.b.String()}, nil
}

// dyninstCmd emits the iteration code for one command. parent names the
// enclosing CFE variable ("" at top level).
func (g *generator) dyninstCmd(w *writer, cmd *ast.Command, parent string) {
	var open int
	enter := func(format string, args ...any) {
		w.line(format, args...)
		w.indent++
		open++
	}
	switch cmd.EType {
	case ast.Module:
		enter("{ BPatch_module* %s = image->getModules()->at(0); // executable module", cmd.Var)
	case ast.Func:
		enter("for (BPatch_function* %s : *funcs) {", cmd.Var)
	case ast.Loop:
		if parent == "" {
			enter("for (BPatch_function* f_ : *funcs) {")
			enter("for (BPatch_basicBlockLoop* %s : *f_->getCFG()->getLoops()) {", cmd.Var)
		} else {
			enter("for (BPatch_basicBlockLoop* %s : *%s->getCFG()->getLoops()) {", cmd.Var, parent)
		}
	case ast.BasicBlock:
		if parent == "" {
			enter("for (BPatch_function* f_ : *funcs) {")
			enter("for (BPatch_basicBlock* %s : f_->getCFG()->getAllBasicBlocks()) {", cmd.Var)
		} else {
			enter("for (BPatch_basicBlock* %s : %s_blocks()) {", cmd.Var, parent)
		}
	case ast.Inst:
		if parent == "" {
			enter("for (BPatch_function* f_ : *funcs) {")
			enter("for (BPatch_instruction* %s : cnm::instructions(f_)) {", cmd.Var)
		} else {
			enter("for (BPatch_instruction* %s : cnm::instructions(%s)) {", cmd.Var, parent)
		}
	}
	if cmd.Where != nil {
		enter("if (%s) {", g.expr(cmd.Where, exprCtx{}))
	}
	for _, item := range cmd.Body {
		switch it := item.(type) {
		case *ast.Command:
			g.dyninstCmd(w, it, cmd.Var)
		case *ast.Action:
			g.dyninstInsert(w, it)
		case ast.Stmt:
			g.stmt(w, it, exprCtx{})
		}
	}
	for ; open > 0; open-- {
		w.indent--
		w.line("}")
	}
}

func (g *generator) dyninstInsert(w *writer, act *ast.Action) {
	u := g.unitOf(act)
	close := 0
	if act.Where != nil && !u.info.WhereDynamic {
		w.line("if (%s) {", g.expr(act.Where, exprCtx{}))
		w.indent++
		close++
	}
	w.line("{")
	w.indent++
	w.line("std::vector<BPatch_snippet*> args;")
	for _, name := range g.capturedVars(u) {
		expr := name
		if i := strings.IndexByte(name, '_'); i > 0 && g.isCFEVar(u, name[:i]) {
			expr = fmt.Sprintf("cnm::%s(%s)", name[i+1:], name[:i])
		}
		w.line("args.push_back(new BPatch_constExpr((uint64_t)(%s)));", expr)
	}
	for _, da := range u.info.DynAttrs {
		w.line("args.push_back(%s);", dyninstArgExpr(da))
	}
	var point, when string
	switch u.info.TargetEType {
	case ast.Inst:
		point = fmt.Sprintf("cnm::point_at(%s)", act.Target)
		when = "BPatch_callBefore"
		if u.info.Canonical == ast.After {
			when = "BPatch_callAfter"
		}
	case ast.BasicBlock:
		if u.info.Canonical == ast.Entry {
			point = fmt.Sprintf("%s->findEntryPoint()", act.Target)
		} else {
			point = fmt.Sprintf("%s->findExitPoint()", act.Target)
		}
		when = "BPatch_callBefore"
	case ast.Func:
		loc := "BPatch_entry"
		if u.info.Canonical == ast.Exit {
			loc = "BPatch_exit"
		}
		point = fmt.Sprintf("(*%s->findPoint(%s))[0]", act.Target, loc)
		when = "BPatch_callBefore"
	case ast.Loop:
		loc := map[ast.Trigger]string{ast.Entry: "loopEntry", ast.Exit: "loopExit", ast.Iter: "loopBackEdge"}[u.info.Canonical]
		point = fmt.Sprintf("cnm::loop_points(%s, %s)", act.Target, loc)
		when = "BPatch_callBefore"
	}
	w.line("insert_action(app, \"cnm_action_%d\", args, %s, %s);", u.id, point, when)
	w.indent--
	w.line("}")
	for ; close > 0; close-- {
		w.indent--
		w.line("}")
	}
}

// ---------------------------------------------------------------------------
// Janus

func (g *generator) janus() (map[string]string, error) {
	// Static pass: walks the CFG and emits rewrite rules. Handlers:
	// decode rules and run the actions as clean calls.
	sp := &writer{}
	g.header(sp, "Janus static analyzer pass (emits rewrite rules).", []string{"\"janus.h\"", "\"IO.h\"", "\"Analysis.h\"", "<cstdint>"})
	sp.line("// Rule opcodes: one per Cinnamon action.")
	for _, u := range g.actions {
		sp.line("static const RuleOp CNM_RULE_%d = (RuleOp)(CUSTOM_RULE_START + %d);", u.id, u.id)
	}
	sp.blank()
	sp.line("void cnm_static_pass(JanusContext* jc) {")
	sp.indent++
	for _, cmd := range g.info.Commands {
		g.janusCmd(sp, cmd, "")
	}
	sp.indent--
	sp.line("}")

	h := &writer{}
	g.header(h, "Janus dynamic handlers (clean calls inserted at block translation).", []string{"\"janus_api.h\"", "<cstdint>", "<map>", "<vector>", "<string>"})
	g.globals(h)
	g.actionFunctions(h)
	g.initExitFunctions(h)
	h.line("// Handler table: decode each rewrite rule and insert a clean call.")
	h.line("void cnm_handle_rule(JANUS_CONTEXT) {")
	h.indent++
	h.line("RRule* rule = get_rule(janus_context);")
	h.line("instr_t* trigger = get_trigger_instruction(bb, rule);")
	h.line("switch (rule->opcode) {")
	for _, u := range g.actions {
		h.line("case CNM_RULE_%d:", u.id)
		h.indent++
		var args []string
		for i := range g.capturedVars(u) {
			args = append(args, fmt.Sprintf("OPND_CREATE_INT64(rule->data[%d])", i))
		}
		for _, da := range u.info.DynAttrs {
			args = append(args, fmt.Sprintf("cnm::dynamic_opnd_%s(drcontext, trigger)", da.Attr))
		}
		argStr := ""
		if len(args) > 0 {
			argStr = ", " + strings.Join(args, ", ")
		}
		h.line("dr_insert_clean_call(drcontext, bb, trigger, (void*)cnm_action_%d, false, %d%s);",
			u.id, len(args), argStr)
		h.line("break;")
		h.indent--
	}
	h.line("}")
	h.indent--
	h.line("}")
	return map[string]string{
		"janus_static_pass.cpp": sp.b.String(),
		"janus_handlers.cpp":    h.b.String(),
	}, nil
}

func (g *generator) janusCmd(w *writer, cmd *ast.Command, parent string) {
	var open int
	enter := func(format string, args ...any) {
		w.line(format, args...)
		w.indent++
		open++
	}
	switch cmd.EType {
	case ast.Module:
		enter("{ JanusModule* %s = &jc->program; // main binary", cmd.Var)
	case ast.Func:
		if parent == "" {
			enter("for (Function& %s : jc->functions) {", cmd.Var)
		} else {
			enter("for (Function& %s : %s.functions) {", cmd.Var, parent)
		}
	case ast.Loop:
		if parent == "" {
			enter("for (Loop& %s : jc->loops) {", cmd.Var)
		} else {
			enter("for (Loop& %s : %s.loops) {", cmd.Var, parent)
		}
	case ast.BasicBlock:
		if parent == "" {
			enter("for (Function& f_ : jc->functions) {")
			enter("for (BasicBlock& %s : f_.blocks) {", cmd.Var)
		} else {
			enter("for (BasicBlock& %s : %s.blocks) {", cmd.Var, parent)
		}
	case ast.Inst:
		if parent == "" {
			enter("for (Function& f_ : jc->functions) {")
			enter("for (BasicBlock& b_ : f_.blocks) {")
			enter("for (Instruction& %s : b_.instrs) {", cmd.Var)
		} else {
			enter("for (Instruction& %s : %s.instrs) {", cmd.Var, parent)
		}
	}
	if cmd.Where != nil {
		enter("if (%s) {", g.expr(cmd.Where, exprCtx{}))
	}
	for _, item := range cmd.Body {
		switch it := item.(type) {
		case *ast.Command:
			g.janusCmd(w, it, cmd.Var)
		case *ast.Action:
			g.janusEmitRule(w, it)
		case ast.Stmt:
			g.stmt(w, it, exprCtx{})
		}
	}
	for ; open > 0; open-- {
		w.indent--
		w.line("}")
	}
}

func (g *generator) janusEmitRule(w *writer, act *ast.Action) {
	u := g.unitOf(act)
	close := 0
	if act.Where != nil && !u.info.WhereDynamic {
		w.line("if (%s) {", g.expr(act.Where, exprCtx{}))
		w.indent++
		close++
	}
	trigger := map[ast.Trigger]string{
		ast.Before: "PRE_INSERT", ast.After: "POST_INSERT",
		ast.Entry: "BLOCK_ENTRY", ast.Exit: "BLOCK_EXIT", ast.Iter: "LOOP_ITER",
	}[u.info.Canonical]
	var data []string
	for _, name := range g.capturedVars(u) {
		expr := name
		if i := strings.IndexByte(name, '_'); i > 0 && g.isCFEVar(u, name[:i]) {
			expr = fmt.Sprintf("cnm::%s(%s)", name[i+1:], name[:i])
		}
		data = append(data, fmt.Sprintf("(uint64_t)(%s)", expr))
	}
	dataStr := ""
	if len(data) > 0 {
		dataStr = ", {" + strings.Join(data, ", ") + "}"
	}
	w.line("cnm::emit_rule(jc, CNM_RULE_%d, %s, %s%s);", u.id, trigger, u.act.Target, dataStr)
	for ; close > 0; close-- {
		w.indent--
		w.line("}")
	}
}
