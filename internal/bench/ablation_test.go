package bench

import (
	"strings"
	"testing"

	"repro/internal/core/backend"
	"repro/internal/workload"
)

func TestAblationCounting(t *testing.T) {
	// The paper's Figure 5b exists because per-block counting is cheaper
	// than per-instruction counting: the precomputed-count variant must
	// win on every backend and every benchmark.
	for _, fw := range Frameworks {
		rows, err := AblationCounting(fw, testScale)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.B >= r.A {
				t.Errorf("%s/%s: per-block (%.2f%%) not cheaper than per-inst (%.2f%%)", fw, r.Benchmark, r.B, r.A)
			}
			if r.A <= 0 || r.B <= 0 {
				t.Errorf("%s/%s: non-positive overheads %.2f/%.2f", fw, r.Benchmark, r.A, r.B)
			}
		}
	}
}

func TestAblationConstraints(t *testing.T) {
	// A static constraint is evaluated once at instrumentation time; a
	// dynamic constraint becomes a per-invocation guard and costs
	// strictly more.
	for _, fw := range Frameworks {
		rows, err := AblationConstraints(fw, testScale)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.A >= r.B {
				t.Errorf("%s/%s: filtered (%.2f%%) not cheaper than unfiltered (%.2f%%)", fw, r.Benchmark, r.A, r.B)
			}
		}
		var buf strings.Builder
		FormatAblation(&buf, "static-where", "dynamic-where", rows)
		if !strings.Contains(buf.String(), "static-where") {
			t.Error("format lost labels")
		}
	}
}

func TestAblationBaseCost(t *testing.T) {
	costs, err := AblationBaseCost(testScale)
	if err != nil {
		t.Fatal(err)
	}
	// The static rewriter adds no run-time cost with an empty tool; the
	// dynamic frameworks pay JIT translation.
	if costs[backend.Dyninst] != 0 {
		t.Errorf("dyninst base cost = %.3f%%, want 0", costs[backend.Dyninst])
	}
	if costs[backend.Pin] <= 0 || costs[backend.Janus] <= 0 {
		t.Errorf("dynamic base costs = pin %.3f%%, janus %.3f%%; want > 0", costs[backend.Pin], costs[backend.Janus])
	}
	// Pin translates per trace with a bigger price than Janus's
	// rule-scanning translator in this model.
	if costs[backend.Pin] <= costs[backend.Janus] {
		t.Errorf("pin base (%.3f%%) not above janus base (%.3f%%)", costs[backend.Pin], costs[backend.Janus])
	}
}

func TestConstraintVariantsCountTheSame(t *testing.T) {
	// Both ablation tools must report identical counts — they differ
	// only in where the filtering happens.
	toolF, err := engineCompile(filteredSrc)
	if err != nil {
		t.Fatal(err)
	}
	toolU, err := engineCompile(unfilteredSrc)
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("mcf missing")
	}
	prog, err := BuildBenchmark(spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	var outF, outU strings.Builder
	if _, err := backend.Run(toolF, prog, backend.Pin, backend.Options{Out: &outF}); err != nil {
		t.Fatal(err)
	}
	if _, err := backend.Run(toolU, prog, backend.Pin, backend.Options{Out: &outU}); err != nil {
		t.Fatal(err)
	}
	if outF.String() != outU.String() || outF.String() == "" {
		t.Errorf("counts differ: %q vs %q", outF.String(), outU.String())
	}
}
