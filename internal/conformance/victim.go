package conformance

import (
	"fmt"
	"math/rand"
	"strings"
)

// Victim is a generated workload: one executable module and optionally
// a shared-library module (the shape that makes Pin's
// sees-all-modules scope observable). Structural properties that the
// oracle needs (multi-module, unrecoverable control flow, loops) are
// derived from the loaded binary by the runner, not recorded here, so
// corpus entries and generated victims are classified identically.
type Victim struct {
	// Seed reproduces the victim: GenVictim(Seed) returns identical
	// sources on every run.
	Seed uint64
	// Srcs are the assembly sources, executable first.
	Srcs []string
}

// GenVictim deterministically generates a victim workload from the
// seed: a main function with straight-line arithmetic, counted and
// nested loops over a scratch buffer, branch diamonds, direct and
// indirect calls through a worker-function chain, optional malloc/free
// traffic, an optional jump-table dispatcher (recoverable or
// unrecoverable — the latter makes Dyninst refuse the binary), and an
// optional shared-library module.
func GenVictim(seed uint64) *Victim {
	r := rand.New(rand.NewSource(int64(seed) ^ 0x636e6d6e)) // decorrelate from GenProgram
	g := &victimGen{r: r, seed: seed}
	return g.generate()
}

type victimGen struct {
	r    *rand.Rand
	seed uint64

	nLabel int
}

func (g *victimGen) label(fn string) string {
	g.nLabel++
	return fmt.Sprintf("%s_l%d", fn, g.nLabel)
}

func (g *victimGen) generate() *Victim {
	nWorkers := 1 + g.r.Intn(3)
	hasLib := g.r.Intn(100) < 35
	hasDispatch := g.r.Intn(100) < 35
	unrecoverable := hasDispatch && g.r.Intn(100) < 50
	hasMalloc := g.r.Intn(100) < 30
	hasIndirectCall := nWorkers > 1 && g.r.Intn(100) < 25

	var b strings.Builder
	fmt.Fprintf(&b, ".module gen%d\n.executable\n.entry main\n", g.seed)
	if hasMalloc {
		b.WriteString(".extern malloc\n.extern free\n")
	}
	if hasLib {
		b.WriteString(".extern libfn\n")
	}

	// main: features, then the worker-call chain, then halt.
	b.WriteString(".func main\n")
	g.straight(&b, 1+g.r.Intn(3))
	if g.r.Intn(100) < 70 {
		g.countedLoop(&b, "main")
	}
	if hasMalloc {
		g.mallocFree(&b)
	}
	for i := 0; i < nWorkers; i++ {
		fmt.Fprintf(&b, "  call f%d\n", i)
	}
	if hasIndirectCall {
		b.WriteString("  mov r8, @fptrs\n  load r9, [r8]\n  call r9\n")
	}
	if hasDispatch {
		b.WriteString("  call dispatch\n")
	}
	if hasLib {
		b.WriteString("  call libfn\n")
	}
	g.straight(&b, 1)
	b.WriteString("  halt\n")

	// Workers: callee-saved discipline over r8-r14, one or two
	// features, optionally a call to the next worker (no recursion).
	for i := 0; i < nWorkers; i++ {
		fn := fmt.Sprintf("f%d", i)
		fmt.Fprintf(&b, ".func %s\n", fn)
		g.prologue(&b)
		nf := 1 + g.r.Intn(2)
		for j := 0; j < nf; j++ {
			g.feature(&b, fn)
		}
		if i+1 < nWorkers && g.r.Intn(100) < 50 {
			fmt.Fprintf(&b, "  call f%d\n", i+1)
		}
		g.epilogue(&b)
		b.WriteString("  ret\n")
	}

	if hasDispatch {
		g.dispatch(&b)
	}

	b.WriteString(".data\nscratch: .space 128\n")
	if hasIndirectCall {
		b.WriteString("fptrs: .addr f1\n")
	}
	if hasDispatch {
		b.WriteString("jtab: .addr jcase0, jcase1\n")
		mode := "recoverable"
		if unrecoverable {
			mode = "unrecoverable"
		}
		fmt.Fprintf(&b, ".jumptable jtab, 2, jsw, %s\n", mode)
	}

	srcs := []string{b.String()}
	if hasLib {
		srcs = append(srcs, g.libModule())
	}
	return &Victim{Seed: g.seed, Srcs: srcs}
}

// prologue/epilogue save and restore r8-r14, so every worker preserves
// the registers main's own loops live in.
func (g *victimGen) prologue(b *strings.Builder) {
	b.WriteString("  sub sp, sp, 56\n")
	for i := 0; i < 7; i++ {
		fmt.Fprintf(b, "  store r%d, [sp+%d]\n", 8+i, i*8)
	}
}

func (g *victimGen) epilogue(b *strings.Builder) {
	for i := 0; i < 7; i++ {
		fmt.Fprintf(b, "  load r%d, [sp+%d]\n", 8+i, i*8)
	}
	b.WriteString("  add sp, sp, 56\n")
}

func (g *victimGen) feature(b *strings.Builder, fn string) {
	switch g.r.Intn(5) {
	case 0:
		g.straight(b, 2+g.r.Intn(3))
	case 1:
		g.countedLoop(b, fn)
	case 2:
		g.nestedLoop(b, fn)
	case 3:
		g.diamond(b, fn)
	case 4:
		g.storeLoad(b)
	}
}

func (g *victimGen) straight(b *strings.Builder, n int) {
	ops := []string{
		"  add r8, r8, 3\n",
		"  mov r9, 7\n",
		"  mul r10, r9, 2\n",
		"  sub r8, r8, 1\n",
		"  add r10, r10, r9\n",
	}
	for i := 0; i < n; i++ {
		b.WriteString(ops[g.r.Intn(len(ops))])
	}
}

// countedLoop walks the first n words of scratch, read-modify-write.
func (g *victimGen) countedLoop(b *strings.Builder, fn string) {
	l := g.label(fn)
	n := 2 + g.r.Intn(5) // 2-6 iterations; scratch holds 16 words
	b.WriteString("  mov r8, 0\n")
	fmt.Fprintf(b, "%s:\n", l)
	b.WriteString("  mov r9, @scratch\n  mul r10, r8, 8\n  add r9, r9, r10\n")
	b.WriteString("  load r11, [r9]\n  add r11, r11, r8\n  store r11, [r9]\n")
	b.WriteString("  add r8, r8, 1\n")
	fmt.Fprintf(b, "  mov r12, %d\n  blt r8, r12, %s\n", n, l)
}

func (g *victimGen) nestedLoop(b *strings.Builder, fn string) {
	lo, li := g.label(fn), g.label(fn)
	no, ni := 2+g.r.Intn(2), 2+g.r.Intn(3)
	b.WriteString("  mov r13, 0\n")
	fmt.Fprintf(b, "%s:\n", lo)
	b.WriteString("  mov r8, 0\n")
	fmt.Fprintf(b, "%s:\n", li)
	b.WriteString("  mov r9, @scratch\n  mul r10, r8, 8\n  add r9, r9, r10\n")
	b.WriteString("  load r11, [r9]\n  add r11, r11, r13\n  store r11, [r9]\n")
	b.WriteString("  add r8, r8, 1\n")
	fmt.Fprintf(b, "  mov r12, %d\n  blt r8, r12, %s\n", ni, li)
	b.WriteString("  add r13, r13, 1\n")
	fmt.Fprintf(b, "  mov r12, %d\n  blt r13, r12, %s\n", no, lo)
}

func (g *victimGen) diamond(b *strings.Builder, fn string) {
	small, join := g.label(fn), g.label(fn)
	k := g.r.Intn(4)
	fmt.Fprintf(b, "  mov r8, %d\n  mov r9, 2\n", k)
	fmt.Fprintf(b, "  blt r8, r9, %s\n", small)
	b.WriteString("  add r10, r10, 5\n")
	fmt.Fprintf(b, "  b %s\n", join)
	fmt.Fprintf(b, "%s:\n", small)
	b.WriteString("  add r10, r10, 9\n")
	fmt.Fprintf(b, "%s:\n", join)
	b.WriteString("  add r10, r10, 1\n")
}

func (g *victimGen) storeLoad(b *strings.Builder) {
	k := 40 + g.r.Intn(17)
	fmt.Fprintf(b, "  mov r8, @scratch\n  mov r9, %d\n", k)
	b.WriteString("  store r9, [r8]\n  load r10, [r8]\n")
	b.WriteString("  add r10, r10, 1\n  store r10, [r8+8]\n")
}

func (g *victimGen) mallocFree(b *strings.Builder) {
	b.WriteString("  mov r1, 64\n  call malloc\n  mov r8, r0\n")
	b.WriteString("  mov r9, 7\n  store r9, [r8]\n  load r10, [r8]\n")
	b.WriteString("  mov r1, r8\n  call free\n")
}

// dispatch is the jump-table function: an indirect branch through a
// declared table. With the table marked unrecoverable, control-flow
// recovery marks the function imprecise and Dyninst refuses the binary;
// the dynamic backends run it regardless and must still agree.
func (g *victimGen) dispatch(b *strings.Builder) {
	idx := g.r.Intn(2)
	b.WriteString(".func dispatch\n")
	g.prologue(b)
	fmt.Fprintf(b, "  mov r8, @jtab\n  mov r9, %d\n", idx)
	b.WriteString("  mul r10, r9, 8\n  add r8, r8, r10\n  load r11, [r8]\n")
	b.WriteString("jsw:\n  b r11\n")
	b.WriteString("jcase0:\n  add r12, r12, 1\n  b jdone\n")
	b.WriteString("jcase1:\n  add r12, r12, 2\n")
	b.WriteString("jdone:\n")
	g.epilogue(b)
	b.WriteString("  ret\n")
}

func (g *victimGen) libModule() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".module lib%d\n.global libfn\n.func libfn\n", g.seed)
	g.prologue(&b)
	b.WriteString("  mov r8, @libbuf\n  load r9, [r8]\n  add r9, r9, 1\n  store r9, [r8]\n")
	if g.r.Intn(100) < 50 {
		l := g.label("libfn")
		n := 2 + g.r.Intn(3)
		b.WriteString("  mov r10, 0\n")
		fmt.Fprintf(&b, "%s:\n", l)
		b.WriteString("  add r9, r9, r10\n  add r10, r10, 1\n")
		fmt.Fprintf(&b, "  mov r11, %d\n  blt r10, r11, %s\n", n, l)
	}
	g.epilogue(&b)
	b.WriteString("  ret\n.data\nlibbuf: .quad 3\n")
	return b.String()
}
