package compile

// The whole-body fast tier. lower_int.go removes Value copies from
// individual scalar subtrees; this file goes further and lowers entire
// action bodies — statements included — into closures that keep every
// intermediate value an unboxed int64, boxing only at stores. The VM's
// inline tier (internal/vm) invokes these bodies from specialized probe
// thunks, so the whole fire costs a few direct calls instead of a chain
// of Value-copying closure boundaries.
//
// The contract mirrors lower_int.go's, strengthened in one way: a fast
// lowering of expression e returns AsInt() (or AsBool()) of the value the
// generic lowering would produce, with identical evaluation order, side
// effects, runtime error messages and positions, AND the generic value is
// guaranteed to be integer-shaped (KInt or KNull) wherever the result
// feeds a dict key, a comparison, or a truth test — which is what makes
// the unboxed comparisons and int-keyed map accesses below bit-identical
// to the generic path (value.Equal and value.KeyOf coincide with plain
// int64 semantics on such values). compileFastBody returns nil whenever
// any construct in the body cannot meet that bar, and the caller keeps
// only the generic lowering.
//
// The fast pass also classifies the single most common body shape — a
// lone `x = x + k` bump of a captured or global counter — so the VM can
// promote the counter to an accumulator and flush it additively (see
// Bound.CounterShape and internal/vm's register-promoted counters).

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core/ast"
	"repro/internal/core/interp"
	"repro/internal/core/sem"
	"repro/internal/core/token"
	"repro/internal/core/types"
	"repro/internal/core/value"
)

// fastStmt executes one fast-lowered statement.
type fastStmt func(fr *frame) error

// fastBool evaluates an expression to its truth coercion.
type fastBool func(fr *frame) (bool, error)

// fastStr renders one print() argument exactly as Value.String would.
type fastStr func(fr *frame) (string, error)

// fastBody is the whole-body fast lowering of one action, with its own
// frame layout (the fast pass re-resolves slots independently of the
// generic pass; Bind aliases both frames onto the same cells).
type fastBody struct {
	cells   []CellRef
	nLocals int
	guard   fastBool
	stmts   []fastStmt

	// counter-shape classification: body is exactly one `x = x ± k`
	// bump of cell counterCell with constant nonzero delta.
	counter      bool
	counterCell  int
	counterDelta int64
}

// compileFastBody attempts the whole-body fast lowering; nil means some
// construct has no fast path and the body stays generic-only.
func compileFastBody(info *sem.Info, dyn []sem.DynAttr, body []ast.Stmt, guard ast.Expr, outer *outerScope) *fastBody {
	c := &compiler{info: info, outer: outer, cellIdx: make(map[string]int), dyn: dyn}
	c.pushScope()
	fb := &fastBody{}
	if guard != nil {
		if fb.guard = c.fastBoolExpr(guard); fb.guard == nil {
			return nil
		}
	}
	stmts, ok := c.fastStmts(body)
	if !ok {
		return nil
	}
	fb.stmts = stmts
	fb.cells = c.cells
	fb.nLocals = c.nLocals
	c.classifyCounter(fb, body, guard)
	return fb
}

// loadSlot resolves a slot to a pointer accessor, avoiding the Value copy
// of the generic Ident lowering.
func loadSlot(sl slot) func(fr *frame) *value.Value {
	idx := sl.idx
	if sl.local {
		return func(fr *frame) *value.Value { return &fr.locals[idx] }
	}
	return func(fr *frame) *value.Value { return fr.cells[idx] }
}

func litInt(e ast.Expr) (int64, bool) {
	if l, ok := e.(*ast.IntLit); ok {
		return l.Val, true
	}
	return 0, false
}

func identNamed(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

// classifyCounter recognizes the pure counter bump: no guard, exactly one
// statement, `x = x + k` / `x = k + x` / `x = x - k` on a non-local
// numeric cell with constant nonzero delta. The VM relies on the
// classified shape being exactly additive: n generic firings from any
// start value leave the cell at KInt(AsInt(start) + n*delta), which is
// what a single Flush(n*delta) produces.
func (c *compiler) classifyCounter(fb *fastBody, body []ast.Stmt, guard ast.Expr) {
	if guard != nil || len(body) != 1 {
		return
	}
	as, ok := body[0].(*ast.AssignStmt)
	if !ok {
		return
	}
	lhs, ok := as.LHS.(*ast.Ident)
	if !ok {
		return
	}
	bin, ok := as.RHS.(*ast.BinaryExpr)
	if !ok {
		return
	}
	var delta int64
	if k, ok := litInt(bin.Y); ok && identNamed(bin.X, lhs.Name) {
		switch bin.Op {
		case token.PLUS:
			delta = k
		case token.MINUS:
			delta = -k
		default:
			return
		}
	} else if k, ok := litInt(bin.X); ok && bin.Op == token.PLUS && identNamed(bin.Y, lhs.Name) {
		delta = k
	} else {
		return
	}
	if delta == 0 {
		return
	}
	sl, ok := c.resolve(lhs.Name)
	if !ok || sl.local {
		return
	}
	fb.counter = true
	fb.counterCell = sl.idx
	fb.counterDelta = delta
}

func (c *compiler) fastStmts(stmts []ast.Stmt) ([]fastStmt, bool) {
	out := make([]fastStmt, 0, len(stmts))
	for _, s := range stmts {
		f := c.fastStmt(s)
		if f == nil {
			return nil, false
		}
		out = append(out, f)
	}
	return out, true
}

func (c *compiler) fastStmt(s ast.Stmt) fastStmt {
	switch st := s.(type) {
	case *ast.DeclStmt:
		return c.fastDecl(st.Decl)
	case *ast.AssignStmt:
		return c.fastAssign(st)
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if fun, ok := call.Fun.(*ast.Ident); ok && fun.Name == "print" {
				return c.fastPrint(call)
			}
		}
		return nil
	case *ast.IfStmt:
		cond := c.fastBoolExpr(st.Cond)
		if cond == nil {
			return nil
		}
		c.pushScope()
		then, ok := c.fastStmts(st.Then)
		c.popScope()
		if !ok {
			return nil
		}
		c.pushScope()
		els, ok := c.fastStmts(st.Else)
		c.popScope()
		if !ok {
			return nil
		}
		return func(fr *frame) error {
			b, err := cond(fr)
			if err != nil {
				return err
			}
			branch := then
			if !b {
				branch = els
			}
			for _, f := range branch {
				if err := f(fr); err != nil {
					return err
				}
			}
			return nil
		}
	case *ast.ForStmt:
		// Scope structure mirrors the generic lowering: header scope, one
		// body scope (slots are re-initialized by their declarations).
		c.pushScope()
		defer c.popScope()
		var init fastStmt
		if st.Init != nil {
			if init = c.fastStmt(st.Init); init == nil {
				return nil
			}
		}
		var cond fastBool
		if st.Cond != nil {
			if cond = c.fastBoolExpr(st.Cond); cond == nil {
				return nil
			}
		}
		c.pushScope()
		body, ok := c.fastStmts(st.Body)
		c.popScope()
		if !ok {
			return nil
		}
		var post fastStmt
		if st.Post != nil {
			if post = c.fastStmt(st.Post); post == nil {
				return nil
			}
		}
		pos := st.P
		return func(fr *frame) error {
			if init != nil {
				if err := init(fr); err != nil {
					return err
				}
			}
			for iters := 0; ; iters++ {
				if iters >= interp.MaxLoopIters {
					return errf(pos, "for statement exceeded %d iterations", interp.MaxLoopIters)
				}
				if cond != nil {
					b, err := cond(fr)
					if err != nil {
						return err
					}
					if !b {
						return nil
					}
				}
				for _, f := range body {
					if err := f(fr); err != nil {
						return err
					}
				}
				if post != nil {
					if err := post(fr); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

func (c *compiler) fastDecl(d *ast.VarDecl) fastStmt {
	t := c.info.DeclTypes[d]
	if t == nil || !t.IsNumeric() {
		return nil
	}
	// As in the generic pass, the initializer resolves before the name is
	// defined.
	var ifn intFn
	if d.Init != nil {
		if ifn = c.fastIntExpr(d.Init); ifn == nil {
			return nil
		}
	}
	idx := c.defineLocal(d.Name)
	if ifn == nil {
		return func(fr *frame) error {
			fr.locals[idx] = value.Value{Kind: value.KInt}
			return nil
		}
	}
	return func(fr *frame) error {
		n, err := ifn(fr)
		if err != nil {
			return err
		}
		fr.locals[idx] = value.Value{Kind: value.KInt, Int: n}
		return nil
	}
}

func (c *compiler) fastAssign(st *ast.AssignStmt) fastStmt {
	switch lhs := st.LHS.(type) {
	case *ast.Ident:
		t := c.info.Types[st.LHS]
		if t == nil || !t.IsNumeric() {
			return nil
		}
		sl, ok := c.resolve(lhs.Name)
		if !ok {
			return nil
		}
		ifn := c.fastIntExpr(st.RHS)
		if ifn == nil {
			return nil
		}
		store := loadSlot(sl)
		return func(fr *frame) error {
			n, err := ifn(fr)
			if err != nil {
				return err
			}
			*store(fr) = value.Value{Kind: value.KInt, Int: n}
			return nil
		}
	case *ast.IndexExpr:
		id, ok := lhs.X.(*ast.Ident)
		if !ok {
			return nil
		}
		t := c.info.Types[lhs.X]
		if t == nil || t.Elem == nil || !t.Elem.IsNumeric() {
			return nil
		}
		if t.Kind == types.Dict && (t.Key == nil || !t.Key.IsNumeric()) {
			return nil
		}
		// Generic order: RHS, then base, then index.
		rhsFn := c.fastIntExpr(st.RHS)
		if rhsFn == nil {
			return nil
		}
		sl, ok := c.resolve(id.Name)
		if !ok {
			return nil
		}
		idxFn := c.fastIntExpr(lhs.Index)
		if idxFn == nil {
			return nil
		}
		load := loadSlot(sl)
		pos := lhs.P
		switch t.Kind {
		case types.Dict:
			return func(fr *frame) error {
				n, err := rhsFn(fr)
				if err != nil {
					return err
				}
				bv := load(fr)
				k, err := idxFn(fr)
				if err != nil {
					return err
				}
				if bv.Kind != value.KDict {
					return errf(pos, "value is not indexable")
				}
				bv.Dict.M[value.DictKey{I: k}] = value.Value{Kind: value.KInt, Int: n}
				return nil
			}
		case types.Array:
			return func(fr *frame) error {
				n, err := rhsFn(fr)
				if err != nil {
					return err
				}
				bv := load(fr)
				i, err := idxFn(fr)
				if err != nil {
					return err
				}
				if bv.Kind != value.KArray {
					return errf(pos, "value is not indexable")
				}
				if i < 0 || i >= int64(len(bv.Arr.Elems)) {
					return errf(pos, "array index %d out of range [0,%d)", i, len(bv.Arr.Elems))
				}
				bv.Arr.Elems[i] = value.Value{Kind: value.KInt, Int: n}
				return nil
			}
		case types.Vector:
			return func(fr *frame) error {
				n, err := rhsFn(fr)
				if err != nil {
					return err
				}
				bv := load(fr)
				i, err := idxFn(fr)
				if err != nil {
					return err
				}
				if bv.Kind != value.KVector {
					return errf(pos, "value is not indexable")
				}
				if i < 0 || i >= int64(len(bv.Vec.Elems)) {
					return errf(pos, "vector index %d out of range [0,%d)", i, len(bv.Vec.Elems))
				}
				bv.Vec.Elems[i] = value.Value{Kind: value.KInt, Int: n}
				return nil
			}
		}
		return nil
	}
	return nil
}

func (c *compiler) fastPrint(x *ast.CallExpr) fastStmt {
	args := make([]fastStr, len(x.Args))
	for i, a := range x.Args {
		if args[i] = c.fastStrArg(a); args[i] == nil {
			return nil
		}
	}
	parts := make([]string, len(args))
	return func(fr *frame) error {
		for i, a := range args {
			s, err := a(fr)
			if err != nil {
				return err
			}
			parts[i] = s
		}
		fmt.Fprintln(fr.out, strings.Join(parts, " "))
		return nil
	}
}

// fastStrArg lowers one print() argument. Scalar productions render via
// FormatInt, which matches Value.String on the KInt values they stand
// for; the two NULL-producing shapes (a NULL literal, a vector get that
// may run out of range) are rendered explicitly.
func (c *compiler) fastStrArg(e ast.Expr) fastStr {
	switch x := e.(type) {
	case *ast.StringLit:
		s := x.Val
		return func(*frame) (string, error) { return s, nil }
	case *ast.NullLit:
		return func(*frame) (string, error) { return "NULL", nil }
	case *ast.IndexExpr:
		if t := c.info.Types[x.X]; t != nil && t.Kind == types.Vector {
			return c.fastVecGetStr(x)
		}
	}
	ifn := c.fastIntExpr(e)
	if ifn == nil {
		return nil
	}
	return func(fr *frame) (string, error) {
		n, err := ifn(fr)
		if err != nil {
			return "", err
		}
		return strconv.FormatInt(n, 10), nil
	}
}

// fastVecGetStr renders a direct vector-element read, preserving the
// generic path's NULL result for an out-of-range index.
func (c *compiler) fastVecGetStr(x *ast.IndexExpr) fastStr {
	id, ok := x.X.(*ast.Ident)
	if !ok {
		return nil
	}
	t := c.info.Types[x.X]
	if t == nil || t.Kind != types.Vector || t.Elem == nil || !t.Elem.IsNumeric() {
		return nil
	}
	sl, ok := c.resolve(id.Name)
	if !ok {
		return nil
	}
	idxFn := c.fastIntExpr(x.Index)
	if idxFn == nil {
		return nil
	}
	load := loadSlot(sl)
	pos := x.P
	return func(fr *frame) (string, error) {
		bv := load(fr)
		i, err := idxFn(fr)
		if err != nil {
			return "", err
		}
		if bv.Kind != value.KVector {
			return "", errf(pos, "value is not indexable")
		}
		if i < 0 || i >= int64(len(bv.Vec.Elems)) {
			return "NULL", nil
		}
		return strconv.FormatInt(asIntRef(&bv.Vec.Elems[i]), 10), nil
	}
}

// fastIntExpr lowers e to an unboxed scalar whose generic value is
// guaranteed integer-shaped (KInt or KNull); nil when no such lowering
// exists. It extends compileIntExpr's productions with container reads
// and re-recurses through itself so the extensions compose.
func (c *compiler) fastIntExpr(e ast.Expr) intFn {
	switch x := e.(type) {
	case *ast.IntLit:
		n := x.Val
		return func(*frame) (int64, error) { return n, nil }
	case *ast.CharLit:
		n := int64(x.Val)
		return func(*frame) (int64, error) { return n, nil }
	case *ast.NullLit:
		// NULL coerces to 0 under every integer consumer (AsInt, Equal
		// against integer-shaped values, KeyOf, AsBool).
		return func(*frame) (int64, error) { return 0, nil }
	case *ast.Ident:
		// Numeric-typed slots only: such slots always hold KInt (every
		// store goes through Convert or ZeroValue), keeping the result
		// integer-shaped — unlike lower_int.go's any-type Ident rule.
		t := c.info.Types[e]
		if t == nil || !t.IsNumeric() {
			return nil
		}
		sl, ok := c.resolve(x.Name)
		if !ok {
			return nil
		}
		load := loadSlot(sl)
		return func(fr *frame) (int64, error) { return asIntRef(load(fr)), nil }
	case *ast.FieldExpr:
		// Dynamic attributes materialize as integer words (UintVal).
		if !c.info.DynamicExprs[x] {
			return nil
		}
		return c.compileIntExpr(e)
	case *ast.IndexExpr:
		return c.fastIndexGet(x)
	case *ast.CallExpr:
		return c.fastSize(x)
	case *ast.UnaryExpr:
		if x.Op != token.MINUS {
			return nil
		}
		sub := c.fastIntExpr(x.X)
		if sub == nil {
			return nil
		}
		return func(fr *frame) (int64, error) {
			n, err := sub(fr)
			if err != nil {
				return 0, err
			}
			return -n, nil
		}
	case *ast.BinaryExpr:
		return c.fastIntBinary(x)
	}
	return nil
}

func (c *compiler) fastIntBinary(x *ast.BinaryExpr) intFn {
	var op func(a, b int64) int64
	switch x.Op {
	case token.PLUS:
		op = func(a, b int64) int64 { return a + b }
	case token.MINUS:
		op = func(a, b int64) int64 { return a - b }
	case token.STAR:
		op = func(a, b int64) int64 { return a * b }
	case token.AMP:
		op = func(a, b int64) int64 { return a & b }
	case token.PIPE:
		op = func(a, b int64) int64 { return a | b }
	case token.CARET:
		op = func(a, b int64) int64 { return a ^ b }
	case token.SHL:
		op = func(a, b int64) int64 { return a << (uint64(b) & 63) }
	case token.SHR:
		op = func(a, b int64) int64 { return int64(uint64(a) >> (uint64(b) & 63)) }
	case token.SLASH, token.PERCENT:
		l := c.fastIntExpr(x.X)
		if l == nil {
			return nil
		}
		r := c.fastIntExpr(x.Y)
		if r == nil {
			return nil
		}
		mod := x.Op == token.PERCENT
		pos := x.P
		return func(fr *frame) (int64, error) {
			a, err := l(fr)
			if err != nil {
				return 0, err
			}
			b, err := r(fr)
			if err != nil {
				return 0, err
			}
			if b == 0 {
				return 0, errf(pos, "division by zero")
			}
			if mod {
				return a % b, nil
			}
			return a / b, nil
		}
	default:
		return nil
	}
	l := c.fastIntExpr(x.X)
	if l == nil {
		return nil
	}
	r := c.fastIntExpr(x.Y)
	if r == nil {
		return nil
	}
	return func(fr *frame) (int64, error) {
		a, err := l(fr)
		if err != nil {
			return 0, err
		}
		b, err := r(fr)
		if err != nil {
			return 0, err
		}
		return op(a, b), nil
	}
}

// fastIndexGet lowers a container read on a directly-named base with
// numeric elements (and, for dicts, a numeric key type, so value.KeyOf of
// the generic index value coincides with the unboxed int64 key).
func (c *compiler) fastIndexGet(x *ast.IndexExpr) intFn {
	id, ok := x.X.(*ast.Ident)
	if !ok {
		return nil
	}
	t := c.info.Types[x.X]
	if t == nil || t.Elem == nil || !t.Elem.IsNumeric() {
		return nil
	}
	if t.Kind == types.Dict && (t.Key == nil || !t.Key.IsNumeric()) {
		return nil
	}
	sl, ok := c.resolve(id.Name)
	if !ok {
		return nil
	}
	idxFn := c.fastIntExpr(x.Index)
	if idxFn == nil {
		return nil
	}
	load := loadSlot(sl)
	pos := x.P
	switch t.Kind {
	case types.Dict:
		return func(fr *frame) (int64, error) {
			bv := load(fr)
			k, err := idxFn(fr)
			if err != nil {
				return 0, err
			}
			if bv.Kind != value.KDict {
				return 0, errf(pos, "value is not indexable")
			}
			if e, ok := bv.Dict.M[value.DictKey{I: k}]; ok {
				return asIntRef(&e), nil
			}
			return asIntRef(&bv.Dict.ElemZero), nil
		}
	case types.Vector:
		// Out of range yields NULL generically, which is 0 here.
		return func(fr *frame) (int64, error) {
			bv := load(fr)
			i, err := idxFn(fr)
			if err != nil {
				return 0, err
			}
			if bv.Kind != value.KVector {
				return 0, errf(pos, "value is not indexable")
			}
			if i < 0 || i >= int64(len(bv.Vec.Elems)) {
				return 0, nil
			}
			return asIntRef(&bv.Vec.Elems[i]), nil
		}
	case types.Array:
		return func(fr *frame) (int64, error) {
			bv := load(fr)
			i, err := idxFn(fr)
			if err != nil {
				return 0, err
			}
			if bv.Kind != value.KArray {
				return 0, errf(pos, "value is not indexable")
			}
			if i < 0 || i >= int64(len(bv.Arr.Elems)) {
				return 0, errf(pos, "array index %d out of range [0,%d)", i, len(bv.Arr.Elems))
			}
			return asIntRef(&bv.Arr.Elems[i]), nil
		}
	}
	return nil
}

// fastSize lowers recv.size() on a directly-named vector or dict.
func (c *compiler) fastSize(x *ast.CallExpr) intFn {
	fun, ok := x.Fun.(*ast.FieldExpr)
	if !ok || fun.Name != "size" || len(x.Args) != 0 {
		return nil
	}
	id, ok := fun.X.(*ast.Ident)
	if !ok {
		return nil
	}
	t := c.info.Types[fun.X]
	if t == nil || (t.Kind != types.Vector && t.Kind != types.Dict) {
		return nil
	}
	sl, ok := c.resolve(id.Name)
	if !ok {
		return nil
	}
	load := loadSlot(sl)
	pos, name := x.P, fun.Name
	return func(fr *frame) (int64, error) {
		rv := load(fr)
		switch rv.Kind {
		case value.KVector:
			return int64(len(rv.Vec.Elems)), nil
		case value.KDict:
			return int64(rv.Dict.Len()), nil
		}
		return 0, errf(pos, "invalid method %q", name)
	}
}

// fastBoolExpr lowers e to its truth coercion; nil when no fast path
// preserves the generic result exactly.
func (c *compiler) fastBoolExpr(e ast.Expr) fastBool {
	switch x := e.(type) {
	case *ast.BoolLit:
		b := x.Val
		return func(*frame) (bool, error) { return b, nil }
	case *ast.Ident:
		if t := c.info.Types[e]; t != nil && t.Kind == types.Bool {
			sl, ok := c.resolve(x.Name)
			if !ok {
				return nil
			}
			load := loadSlot(sl)
			return func(fr *frame) (bool, error) { return load(fr).AsBool(), nil }
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			sub := c.fastBoolExpr(x.X)
			if sub == nil {
				return nil
			}
			return func(fr *frame) (bool, error) {
				b, err := sub(fr)
				return !b, err
			}
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND, token.LOR:
			l := c.fastBoolExpr(x.X)
			if l == nil {
				return nil
			}
			r := c.fastBoolExpr(x.Y)
			if r == nil {
				return nil
			}
			if x.Op == token.LAND {
				return func(fr *frame) (bool, error) {
					b, err := l(fr)
					if err != nil || !b {
						return false, err
					}
					return r(fr)
				}
			}
			return func(fr *frame) (bool, error) {
				b, err := l(fr)
				if err != nil || b {
					return b, err
				}
				return r(fr)
			}
		case token.EQ, token.NEQ, token.LT, token.LE, token.GT, token.GE:
			// On integer-shaped operands, value.Equal and the ordered
			// comparison both reduce to plain int64 comparison of the
			// AsInt coercions (neither side can be a string).
			l := c.fastIntExpr(x.X)
			if l == nil {
				return nil
			}
			r := c.fastIntExpr(x.Y)
			if r == nil {
				return nil
			}
			var cmp func(a, b int64) bool
			switch x.Op {
			case token.EQ:
				cmp = func(a, b int64) bool { return a == b }
			case token.NEQ:
				cmp = func(a, b int64) bool { return a != b }
			case token.LT:
				cmp = func(a, b int64) bool { return a < b }
			case token.LE:
				cmp = func(a, b int64) bool { return a <= b }
			case token.GT:
				cmp = func(a, b int64) bool { return a > b }
			case token.GE:
				cmp = func(a, b int64) bool { return a >= b }
			}
			return func(fr *frame) (bool, error) {
				a, err := l(fr)
				if err != nil {
					return false, err
				}
				b, err := r(fr)
				if err != nil {
					return false, err
				}
				return cmp(a, b), nil
			}
		}
	}
	// Any other integer-shaped scalar consumed as a condition: AsBool of
	// KInt n is n != 0, of KNull is false — both are n != 0 here.
	if ifn := c.fastIntExpr(e); ifn != nil {
		return func(fr *frame) (bool, error) {
			n, err := ifn(fr)
			return n != 0, err
		}
	}
	return nil
}
