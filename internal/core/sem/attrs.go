package sem

import (
	"strings"

	"repro/internal/core/ast"
	"repro/internal/core/types"
)

// Attr describes one control-flow-element attribute accessible through
// the dot operator (I.opcode, F.startAddr, ...). Attribute name lookup is
// case-insensitive, so the paper's mixed spellings (startAddr) resolve.
type Attr struct {
	// Name is the canonical (lower-case) attribute name.
	Name string
	// Type is the attribute's value type.
	Type *types.Type
	// Dynamic marks attributes that only exist in the dynamic context
	// (effective addresses, call arguments, return values, resolved
	// indirect targets). Dynamic attributes are legal only inside
	// actions; the backends materialize them per invocation.
	Dynamic bool
	// AfterOnly marks attributes only meaningful in after-trigger
	// actions (the return value of a call).
	AfterOnly bool
}

func attr(name string, k types.Kind) Attr {
	return Attr{Name: name, Type: types.Basic(k)}
}

func dynAttr(name string, k types.Kind) Attr {
	return Attr{Name: name, Type: types.Basic(k), Dynamic: true}
}

var instAttrs = buildAttrMap([]Attr{
	attr("opcode", types.Opcode),
	attr("addr", types.Addr),
	attr("size", types.Int),
	attr("nextaddr", types.Addr),
	attr("id", types.Int),
	attr("numops", types.Int),
	attr("op1", types.Operand),
	attr("op2", types.Operand),
	attr("op3", types.Operand),
	attr("trgname", types.String),
	dynAttr("memaddr", types.Addr),
	dynAttr("srcaddr", types.Addr),
	dynAttr("dstaddr", types.Addr),
	dynAttr("arg1", types.UInt64),
	dynAttr("arg2", types.UInt64),
	dynAttr("arg3", types.UInt64),
	dynAttr("arg4", types.UInt64),
	dynAttr("arg5", types.UInt64),
	dynAttr("arg6", types.UInt64),
	dynAttr("trgaddr", types.Addr),
	{Name: "rtnval", Type: types.Basic(types.UInt64), Dynamic: true, AfterOnly: true},
})

var blockAttrs = buildAttrMap([]Attr{
	attr("id", types.Int),
	attr("startaddr", types.Addr),
	attr("endaddr", types.Addr),
	attr("size", types.Int),
	attr("ninsts", types.Int),
})

var funcAttrs = buildAttrMap([]Attr{
	attr("id", types.Int),
	attr("name", types.String),
	attr("startaddr", types.Addr),
	attr("endaddr", types.Addr),
	attr("ninsts", types.Int),
	attr("nblocks", types.Int),
	attr("nloops", types.Int),
})

var loopAttrs = buildAttrMap([]Attr{
	attr("id", types.Int),
	attr("startaddr", types.Addr),
	attr("depth", types.Int),
	attr("nblocks", types.Int),
})

var moduleAttrs = buildAttrMap([]Attr{
	attr("id", types.Int),
	attr("name", types.String),
	attr("nfuncs", types.Int),
	attr("isexecutable", types.Bool),
})

func buildAttrMap(attrs []Attr) map[string]Attr {
	m := make(map[string]Attr, len(attrs))
	for _, a := range attrs {
		m[a.Name] = a
	}
	return m
}

var attrsByEType = map[ast.EType]map[string]Attr{
	ast.Inst:       instAttrs,
	ast.BasicBlock: blockAttrs,
	ast.Func:       funcAttrs,
	ast.Loop:       loopAttrs,
	ast.Module:     moduleAttrs,
}

// LookupAttr resolves a (case-insensitive) attribute name on a CFE type.
func LookupAttr(e ast.EType, name string) (Attr, bool) {
	a, ok := attrsByEType[e][strings.ToLower(name)]
	return a, ok
}

// Attrs returns the attribute table of a CFE type (for documentation and
// codegen).
func Attrs(e ast.EType) map[string]Attr { return attrsByEType[e] }
