package obj

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Object file serialization
//
// The on-disk format is a simple tagged binary layout:
//
//	magic    "CINO"
//	version  u32 (currently 1)
//	name     string
//	flags    u8  (bit 0: executable)
//	entry    u64
//	code     bytes
//	data     bytes
//	syms     u32 count, then per symbol: name, kind u8, off u64, size u64, global u8
//	relocs   u32 count, then per reloc: kind u8, off u64, sym string, addend u64
//	imports  u32 count, then per import: string
//	jumptabs u32 count, then per table: dataoff u64, count u32, branchoff u64, recoverable u8
//
// Strings and byte sections are length-prefixed with u32. All integers are
// little-endian.

// Magic identifies a serialized module.
var Magic = [4]byte{'C', 'I', 'N', 'O'}

const formatVersion = 1

type writer struct {
	buf bytes.Buffer
}

func (w *writer) u8(v uint8) { w.buf.WriteByte(v) }
func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf.Write(b[:])
}
func (w *writer) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf.Write(b[:])
}
func (w *writer) str(s string) { w.u32(uint32(len(s))); w.buf.WriteString(s) }
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf.Write(b)
}

// Encode serializes the module to the object file format.
func Encode(m *Module) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	var w writer
	w.buf.Write(Magic[:])
	w.u32(formatVersion)
	w.str(m.Name)
	var flags uint8
	if m.Executable {
		flags |= 1
	}
	w.u8(flags)
	w.u64(m.Entry)
	w.bytes(m.Code)
	w.bytes(m.Data)
	w.u32(uint32(len(m.Syms)))
	for _, s := range m.Syms {
		w.str(s.Name)
		w.u8(uint8(s.Kind))
		w.u64(s.Off)
		w.u64(s.Size)
		if s.Global {
			w.u8(1)
		} else {
			w.u8(0)
		}
	}
	w.u32(uint32(len(m.Relocs)))
	for _, r := range m.Relocs {
		w.u8(uint8(r.Kind))
		w.u64(r.Off)
		w.str(r.Sym)
		w.u64(uint64(r.Addend))
	}
	w.u32(uint32(len(m.Imports)))
	for _, imp := range m.Imports {
		w.str(imp)
	}
	w.u32(uint32(len(m.JumpTables)))
	for _, jt := range m.JumpTables {
		w.u64(jt.DataOff)
		w.u32(uint32(jt.Count))
		w.u64(jt.BranchOff)
		if jt.Recoverable {
			w.u8(1)
		} else {
			w.u8(0)
		}
	}
	return w.buf.Bytes(), nil
}

type reader struct {
	b   []byte
	pos int
}

func (r *reader) need(n int) error {
	if r.pos+n > len(r.b) {
		return io.ErrUnexpectedEOF
	}
	return nil
}

func (r *reader) u8() (uint8, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	v := r.b[r.pos]
	r.pos++
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if err := r.need(int(n)); err != nil {
		return nil, err
	}
	b := make([]byte, n)
	copy(b, r.b[r.pos:])
	r.pos += int(n)
	return b, nil
}

// Decode parses a module from its serialized object file form.
func Decode(data []byte) (*Module, error) {
	r := &reader{b: data}
	if err := r.need(4); err != nil {
		return nil, fmt.Errorf("obj: truncated object: %w", err)
	}
	if !bytes.Equal(r.b[:4], Magic[:]) {
		return nil, fmt.Errorf("obj: bad magic %q", r.b[:4])
	}
	r.pos = 4
	ver, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("obj: unsupported format version %d", ver)
	}
	m := &Module{}
	wrap := func(err error) (*Module, error) { return nil, fmt.Errorf("obj: corrupt object: %w", err) }
	if m.Name, err = r.str(); err != nil {
		return wrap(err)
	}
	flags, err := r.u8()
	if err != nil {
		return wrap(err)
	}
	m.Executable = flags&1 != 0
	if m.Entry, err = r.u64(); err != nil {
		return wrap(err)
	}
	if m.Code, err = r.bytes(); err != nil {
		return wrap(err)
	}
	if m.Data, err = r.bytes(); err != nil {
		return wrap(err)
	}
	nsyms, err := r.u32()
	if err != nil {
		return wrap(err)
	}
	for i := uint32(0); i < nsyms; i++ {
		var s Symbol
		if s.Name, err = r.str(); err != nil {
			return wrap(err)
		}
		k, err := r.u8()
		if err != nil {
			return wrap(err)
		}
		s.Kind = SymKind(k)
		if s.Off, err = r.u64(); err != nil {
			return wrap(err)
		}
		if s.Size, err = r.u64(); err != nil {
			return wrap(err)
		}
		g, err := r.u8()
		if err != nil {
			return wrap(err)
		}
		s.Global = g != 0
		m.Syms = append(m.Syms, s)
	}
	nrelocs, err := r.u32()
	if err != nil {
		return wrap(err)
	}
	for i := uint32(0); i < nrelocs; i++ {
		var rel Reloc
		k, err := r.u8()
		if err != nil {
			return wrap(err)
		}
		rel.Kind = RelocKind(k)
		if rel.Off, err = r.u64(); err != nil {
			return wrap(err)
		}
		if rel.Sym, err = r.str(); err != nil {
			return wrap(err)
		}
		add, err := r.u64()
		if err != nil {
			return wrap(err)
		}
		rel.Addend = int64(add)
		m.Relocs = append(m.Relocs, rel)
	}
	nimports, err := r.u32()
	if err != nil {
		return wrap(err)
	}
	for i := uint32(0); i < nimports; i++ {
		imp, err := r.str()
		if err != nil {
			return wrap(err)
		}
		m.Imports = append(m.Imports, imp)
	}
	njt, err := r.u32()
	if err != nil {
		return wrap(err)
	}
	for i := uint32(0); i < njt; i++ {
		var jt JumpTable
		if jt.DataOff, err = r.u64(); err != nil {
			return wrap(err)
		}
		cnt, err := r.u32()
		if err != nil {
			return wrap(err)
		}
		jt.Count = int(cnt)
		if jt.BranchOff, err = r.u64(); err != nil {
			return wrap(err)
		}
		rec, err := r.u8()
		if err != nil {
			return wrap(err)
		}
		jt.Recoverable = rec != 0
		m.JumpTables = append(m.JumpTables, jt)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
