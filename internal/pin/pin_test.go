package pin

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/vm"
)

func build(t *testing.T, srcs ...string) *cfg.Program {
	t.Helper()
	mods := make([]*obj.Module, 0, len(srcs))
	for _, s := range srcs {
		m, err := asm.Assemble(s)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	p, err := obj.Load(mods, vm.RuntimeExterns())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// loadsSrc executes exactly 11 loads: one before the loop, then one per
// 10 loop iterations.
const loadsSrc = `
.module a.out
.executable
.entry main
.func main
  mov  r5, @buf
  load r4, [r5]
  mov  r2, 0
  mov  r3, 10
head:
  load r4, [r5+8]
  add  r2, r2, 1
  blt  r2, r3, head
  halt
.data
buf: .quad 1, 2
`

func TestInstructionCounting(t *testing.T) {
	prog := build(t, loadsSrc)
	p := New(prog, Config{})
	var count uint64
	p.INSAddInstrumentFunction(func(ins INS) {
		if ins.IsMemoryRead() {
			if err := ins.InsertCall(IPointBefore, Routine{Fn: func([]uint64) { count++ }, Cost: 10}); err != nil {
				t.Fatal(err)
			}
		}
	})
	var finiRan bool
	p.AddFiniFunction(func() { finiRan = true })
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 11 {
		t.Errorf("load count = %d, want 11", count)
	}
	if !finiRan {
		t.Error("fini function did not run")
	}
}

func TestTraceModeBlockCounting(t *testing.T) {
	prog := build(t, loadsSrc)
	p := New(prog, Config{})
	var blocks uint64
	p.TraceAddInstrumentFunction(func(tr TRACE) {
		for _, bbl := range tr.BBLs() {
			if bbl.NumIns() == 0 {
				t.Error("empty BBL")
			}
			if err := bbl.InsertCall(Routine{Fn: func([]uint64) { blocks++ }, Cost: 10, Inlinable: true}); err != nil {
				t.Fatal(err)
			}
		}
	})
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	// Blocks executed: entry(1) + body(10) + exit(1).
	if blocks != 12 {
		t.Errorf("block executions = %d, want 12", blocks)
	}
}

const callSrc = `
.module a.out
.executable
.entry main
.extern malloc
.func main
  mov  r1, 48
  call malloc
  call helper
  halt
.func helper
  mov r0, 9
  ret
`

func TestRTNMode(t *testing.T) {
	prog := build(t, callSrc)
	p := New(prog, Config{})
	entries := map[string]int{}
	exits := map[string]int{}
	var helperRet uint64
	p.RTNAddInstrumentFunction(func(r RTN) {
		name := r.Name()
		if err := r.InsertCallEntry(Routine{Fn: func([]uint64) { entries[name]++ }}); err != nil {
			t.Fatal(err)
		}
		if err := r.InsertCallExit(Routine{Fn: func(args []uint64) {
			exits[name]++
			helperRet = args[0]
		}}, RetVal()); err != nil {
			t.Fatal(err)
		}
	})
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if entries["main"] != 1 || entries["helper"] != 1 {
		t.Errorf("entries = %v", entries)
	}
	if exits["helper"] != 1 {
		t.Errorf("exits = %v", exits)
	}
	if helperRet != 9 {
		t.Errorf("helper ret = %d, want 9", helperRet)
	}
}

func TestIMGMode(t *testing.T) {
	lib := `
.module libshared
.global libfn
.func libfn
  ret
`
	main := `
.module a.out
.executable
.entry main
.extern libfn
.func main
  call libfn
  halt
`
	prog := build(t, main, lib)
	p := New(prog, Config{})
	var imgs []string
	var mainExe int
	p.IMGAddInstrumentFunction(func(img IMG) {
		imgs = append(imgs, img.Name())
		if img.IsMainExecutable() {
			mainExe++
		}
		if len(img.RTNs()) == 0 {
			t.Errorf("image %s has no routines", img.Name())
		}
	})
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 2 || imgs[0] != "a.out" || imgs[1] != "libshared" {
		t.Errorf("images = %v", imgs)
	}
	if mainExe != 1 {
		t.Errorf("main executables = %d", mainExe)
	}
}

func TestPinSeesSharedLibraryCode(t *testing.T) {
	lib := `
.module libshared
.global libfn
.func libfn
  mov  r12, @libbuf
  load r13, [r12]
  load r13, [r12+8]
  ret
.data
libbuf: .quad 5, 6
`
	main := `
.module a.out
.executable
.entry main
.extern libfn
.func main
  call libfn
  call libfn
  halt
`
	prog := build(t, main, lib)
	p := New(prog, Config{})
	var loads uint64
	p.INSAddInstrumentFunction(func(ins INS) {
		if ins.IsMemoryRead() {
			if err := ins.InsertCall(IPointBefore, Routine{Fn: func([]uint64) { loads++ }}); err != nil {
				t.Fatal(err)
			}
		}
	})
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	// 2 loads per call, 2 calls — all inside the shared library, which
	// only a dynamic framework observes.
	if loads != 4 {
		t.Errorf("shared-lib loads = %d, want 4", loads)
	}
}

func TestIARGMaterialization(t *testing.T) {
	prog := build(t, callSrc)
	p := New(prog, Config{})
	var got []uint64
	var callInst *isa.Inst
	p.INSAddInstrumentFunction(func(ins INS) {
		if ins.IsCall() && ins.DirectTargetName() == "malloc" {
			callInst = ins.Inst()
			err := ins.InsertCall(IPointBefore, Routine{Fn: func(args []uint64) {
				got = append([]uint64(nil), args...)
			}}, InstPtr(), FuncArg(1), Const(99), BranchTarget(), Fallthrough(), RegValue(isa.R1))
			if err != nil {
				t.Fatal(err)
			}
			if err := ins.InsertCall(IPointAfter, Routine{Fn: func(args []uint64) {
				if args[0] != obj.HeapBase {
					t.Errorf("retval = %#x, want %#x", args[0], obj.HeapBase)
				}
			}}, RetVal()); err != nil {
				t.Fatal(err)
			}
		}
	})
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if callInst == nil || len(got) != 6 {
		t.Fatalf("args = %v", got)
	}
	if got[0] != callInst.Addr {
		t.Errorf("InstPtr = %#x, want %#x", got[0], callInst.Addr)
	}
	if got[1] != 48 || got[5] != 48 {
		t.Errorf("FuncArg/RegValue = %d/%d, want 48", got[1], got[5])
	}
	if got[2] != 99 {
		t.Errorf("Const = %d", got[2])
	}
	if got[3] != vm.RuntimeExterns()["malloc"] {
		t.Errorf("BranchTarget = %#x", got[3])
	}
	if got[4] != callInst.Next() {
		t.Errorf("Fallthrough = %#x, want %#x", got[4], callInst.Next())
	}
}

func TestMemoryEAArg(t *testing.T) {
	prog := build(t, loadsSrc)
	p := New(prog, Config{})
	var eas []uint64
	p.INSAddInstrumentFunction(func(ins INS) {
		if ins.IsMemoryRead() {
			if err := ins.InsertCall(IPointBefore, Routine{Fn: func(args []uint64) {
				eas = append(eas, args[0])
			}}, MemoryEA()); err != nil {
				t.Fatal(err)
			}
		}
	})
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(eas) != 11 {
		t.Fatalf("EAs = %d, want 11", len(eas))
	}
	buf, ok := prog.Modules[0].Loaded.SymAddr("buf")
	if !ok {
		t.Fatal("buf missing")
	}
	if eas[0] != buf {
		t.Errorf("first EA = %#x, want %#x", eas[0], buf)
	}
	for _, ea := range eas[1:] {
		if ea != buf+8 {
			t.Errorf("loop EA = %#x, want %#x", ea, buf+8)
		}
	}
}

func TestCleanCallCostsMoreThanInlined(t *testing.T) {
	costOf := func(inlinable bool) uint64 {
		prog := build(t, loadsSrc)
		p := New(prog, Config{})
		p.INSAddInstrumentFunction(func(ins INS) {
			if ins.IsMemoryRead() {
				if err := ins.InsertCall(IPointBefore, Routine{Fn: func([]uint64) {}, Cost: 10, Inlinable: inlinable}); err != nil {
					t.Fatal(err)
				}
			}
		})
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	clean, inlined := costOf(false), costOf(true)
	if clean <= inlined {
		t.Errorf("clean call (%d) should cost more than inlined (%d)", clean, inlined)
	}
	if clean-inlined != 11*(CleanCallCost-InlinedCallCost) {
		t.Errorf("cost delta = %d, want %d", clean-inlined, 11*(CleanCallCost-InlinedCallCost))
	}
}

func TestInsertErrors(t *testing.T) {
	prog := build(t, loadsSrc)
	p := New(prog, Config{})
	p.INSAddInstrumentFunction(func(ins INS) {
		if ins.IsBranch() {
			if err := ins.InsertCall(IPointAfter, Routine{Fn: func([]uint64) {}}); err == nil {
				t.Error("IPointAfter on branch succeeded")
			}
			if err := ins.InsertCall(IPoint(9), Routine{Fn: func([]uint64) {}}); err == nil {
				t.Error("bogus IPoint succeeded")
			}
		}
	})
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
}
