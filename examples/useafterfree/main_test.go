package main

import (
	"strings"
	"testing"
)

// Documented behaviour: every backend flags the dangling read in the
// buggy program and stays silent on the fixed one.
func TestUseAfterFreeOutput(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, backend := range []string{"pin", "dyninst", "janus"} {
		buggy, fixed := false, false
		for _, line := range strings.Split(out, "\n") {
			if !strings.Contains(line, backend) {
				continue
			}
			if strings.HasPrefix(line, "buggy program") && strings.Contains(line, "ERROR: use after free access") {
				buggy = true
			}
			if strings.HasPrefix(line, "fixed program") && strings.Contains(line, "clean") {
				fixed = true
			}
		}
		if !buggy {
			t.Errorf("%s did not flag the buggy program:\n%s", backend, out)
		}
		if !fixed {
			t.Errorf("%s did not report the fixed program clean:\n%s", backend, out)
		}
	}
}
