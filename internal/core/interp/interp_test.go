package interp

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core/ast"
	"repro/internal/core/parser"
	"repro/internal/core/sem"
	"repro/internal/core/types"
	"repro/internal/core/value"
	"repro/internal/isa"
)

// runProgram compiles a Cinnamon program consisting of globals and
// init/exit blocks and executes those blocks; it returns the print output.
func runProgram(t *testing.T, src string) string {
	t.Helper()
	out, err := tryRunProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func tryRunProgram(src string) (string, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", err
	}
	info, err := sem.Check(prog)
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	in := New(info, &buf, NewFS())
	globals := NewEnv(nil)
	for _, d := range info.Globals {
		if err := in.DeclareGlobal(globals, d); err != nil {
			return buf.String(), err
		}
	}
	for _, b := range info.Inits {
		if err := in.ExecStmts(NewEnv(globals), b.Body); err != nil {
			return buf.String(), err
		}
	}
	for _, b := range info.Exits {
		if err := in.ExecStmts(NewEnv(globals), b.Body); err != nil {
			return buf.String(), err
		}
	}
	return buf.String(), nil
}

func TestArithmeticAndControlFlow(t *testing.T) {
	out := runProgram(t, `
init {
  int sum = 0;
  for (int i = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) {
      sum = sum + i;
    } else {
      sum = sum + 1;
    }
  }
  print(sum);               // 0+1+2+1+4+1+6+1+8+1 = 25
  print(7 / 2, 7 % 2, 3 * 4, 10 - 3);
  print(6 & 3, 6 | 3, 6 ^ 3, 1 << 4, 256 >> 4);
  print(-5, !true, !false);
  print(2 < 3 && 3 <= 3 || false);
  print("a" < "b", "b" < "a");
}
`)
	want := "25\n3 1 12 7\n2 7 5 16 16\n-5 false true\ntrue\ntrue false\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestDictSemantics(t *testing.T) {
	out := runProgram(t, `
dict<addr,int> freed;
dict<addr,addr> base_table;
init {
  freed[4096] = 1;
  base_table[100] = 4096;
  if (base_table[100] != NULL) { print("present"); }
  if (base_table[200] != NULL) { print("bug"); }
  if (base_table[200] == NULL) { print("missing-is-null"); }
  print(freed[4096], freed[5000]);
  print(freed.has(4096), freed.has(5000), freed.size());
}
`)
	want := "present\nmissing-is-null\n1 0\ntrue false 1\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestVectorAndArray(t *testing.T) {
	out := runProgram(t, `
vector<addr> v;
int arr[4];
init {
  v.add(10);
  v.add(20);
  print(v.size(), v.has(10), v.has(30));
  print(v[0], v[1]);
  arr[0] = 5;
  arr[3] = arr[0] * 2;
  print(arr[0], arr[1], arr[3]);
}
`)
	want := "2 true false\n10 20\n5 0 10\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestFileRoundTrip(t *testing.T) {
	out := runProgram(t, `
file f("data.txt");
vector<addr> addrs;
init {
  writeToFile(f, 100);
  writeToFile(f, 200);
  line l = f.getline();
  for (; l != NULL; ) {
    addrs.add(l);
    l = f.getline();
  }
  print(addrs.size(), addrs[0], addrs[1]);
  print(addrs.has(200));
}
`)
	want := "2 100 200\ntrue\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestStringsAndChars(t *testing.T) {
	out := runProgram(t, `
string s = "hello";
init {
  if (s == "hello") { print("eq"); }
  if (s != "world") { print("neq"); }
  char c = 'a';
  print(c);
  print("tab\tnl\n\"q\"");
}
`)
	want := "eq\nneq\n97\ntab\tnl\n\"q\"\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"div zero", "init { int z = 0; print(1 / z); }", "division by zero"},
		{"mod zero", "init { int z = 0; print(1 % z); }", "division by zero"},
		{"array oob read", "int a[2];\ninit { int i = 5; print(a[i]); }", "out of range"},
		{"array oob write", "int a[2];\ninit { int i = 5; a[i] = 1; }", "out of range"},
		{"runaway loop", "init { for (;;) { } }", "iterations"},
	}
	for _, c := range cases {
		_, err := tryRunProgram(c.src)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.wantSub)
		}
	}
}

func TestSnapshotCapturesByValue(t *testing.T) {
	globals := NewEnv(nil)
	globals.Define("g", value.IntVal(1))
	local := NewEnv(globals)
	local.Define("x", value.IntVal(10))
	inner := NewEnv(local)
	inner.Define("y", value.IntVal(20))

	snap := Snapshot(inner, globals)
	// Mutating originals after the snapshot must not affect captures.
	*local.Lookup("x") = value.IntVal(99)
	*inner.Lookup("y") = value.IntVal(99)
	if snap.Lookup("x").Int != 10 || snap.Lookup("y").Int != 20 {
		t.Errorf("snapshot = x:%d y:%d, want 10, 20", snap.Lookup("x").Int, snap.Lookup("y").Int)
	}
	// Globals stay shared.
	*globals.Lookup("g") = value.IntVal(7)
	if snap.Lookup("g").Int != 7 {
		t.Error("globals were copied, want shared")
	}
	// Containers are deep-copied.
	d := value.NewDict(value.IntVal(0))
	d.Set(value.IntVal(1), value.IntVal(2))
	local2 := NewEnv(globals)
	local2.Define("m", value.Value{Kind: value.KDict, Dict: d})
	snap2 := Snapshot(local2, globals)
	d.Set(value.IntVal(1), value.IntVal(42))
	if got := snap2.Lookup("m").Dict.Get(value.IntVal(1)).Int; got != 2 {
		t.Errorf("captured dict entry = %d, want 2", got)
	}
}

func TestDynamicAttrMaterialization(t *testing.T) {
	src := `
uint64 seen = 0;
inst I where (I.opcode == Load) {
  before I {
    seen = I.memaddr;
  }
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	in := New(info, nil, nil)
	globals := NewEnv(nil)
	for _, d := range info.Globals {
		if err := in.DeclareGlobal(globals, d); err != nil {
			t.Fatal(err)
		}
	}
	cmd := info.Commands[0]
	act := cmd.Body[0].(*ast.Action)
	env := NewEnv(globals)
	env.SetDyn(map[string]value.Value{"I.memaddr": value.UintVal(0xbeef)})
	if err := in.ExecStmts(env, act.Body); err != nil {
		t.Fatal(err)
	}
	if got := globals.Lookup("seen").Int; got != 0xbeef {
		t.Errorf("seen = %#x, want 0xbeef", got)
	}
	// Without materialization the access must fail loudly.
	env2 := NewEnv(globals)
	if err := in.ExecStmts(env2, act.Body); err == nil || !strings.Contains(err.Error(), "not materialized") {
		t.Errorf("err = %v, want not-materialized error", err)
	}
}

func TestStaticAttrs(t *testing.T) {
	inst := &isa.Inst{
		Addr: 0x100, Size: 13, Op: isa.Call,
		Ops: []isa.Operand{isa.ImmOp(0x500)},
	}
	ref := &value.CFERef{Kind: ast.Inst, Inst: inst}
	cases := []struct {
		attr string
		want int64
	}{
		{"addr", 0x100}, {"size", 13}, {"nextaddr", 0x10d}, {"numops", 1}, {"id", 0x100},
	}
	for _, c := range cases {
		v, err := StaticAttr(ref, c.attr)
		if err != nil {
			t.Fatalf("%s: %v", c.attr, err)
		}
		if v.AsInt() != c.want {
			t.Errorf("%s = %d, want %d", c.attr, v.AsInt(), c.want)
		}
	}
	if v, _ := StaticAttr(ref, "opcode"); v.Op != isa.Call {
		t.Errorf("opcode = %v", v.Op)
	}
	if v, _ := StaticAttr(ref, "op1"); v.Opnd.Kind != isa.KindImm {
		t.Errorf("op1 = %+v", v.Opnd)
	}
	if v, _ := StaticAttr(ref, "op3"); v.Opnd.Kind != isa.KindNone {
		t.Errorf("op3 = %+v", v.Opnd)
	}
	if _, err := StaticAttr(ref, "nothing"); err == nil {
		t.Error("bogus attr resolved")
	}
}

func TestZeroValues(t *testing.T) {
	if v := ZeroValue(types.Basic(types.Int)); v.Kind != value.KInt || v.Int != 0 {
		t.Errorf("zero int = %+v", v)
	}
	if v := ZeroValue(types.Basic(types.Bool)); v.Kind != value.KBool || v.Bool {
		t.Errorf("zero bool = %+v", v)
	}
	dt := &types.Type{Kind: types.Dict, Key: types.Basic(types.Addr), Elem: types.Basic(types.Addr)}
	dv := ZeroValue(dt)
	if dv.Dict == nil || dv.Dict.ElemZero.AsInt() != 0 {
		t.Errorf("zero dict = %+v", dv)
	}
}

// TestQuickArithmeticMatchesGo checks interpreter arithmetic against Go's
// semantics on random operands.
func TestQuickArithmeticMatchesGo(t *testing.T) {
	prog, err := parser.Parse(`
int a = 0;
int b = 0;
init {
  print(a + b, a - b, a * b, a & b, a | b, a ^ b);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b int64) bool {
		var buf bytes.Buffer
		in := New(info, &buf, nil)
		globals := NewEnv(nil)
		globals.Define("a", value.IntVal(a))
		globals.Define("b", value.IntVal(b))
		if err := in.ExecStmts(NewEnv(globals), info.Inits[0].Body); err != nil {
			return false
		}
		want := []int64{a + b, a - b, a * b, a & b, a | b, a ^ b}
		fields := strings.Fields(strings.TrimSpace(buf.String()))
		if len(fields) != len(want) {
			return false
		}
		for i, f := range fields {
			got := value.StrVal(f).AsInt()
			if got != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
