package native

import (
	"fmt"
	"io"

	"repro/internal/cfg"
	"repro/internal/dyninst"
	"repro/internal/isa"
	"repro/internal/vm"
)

// Shadow-stack backward-edge CFI written directly against the Dyninst
// API: push snippets before every call site (fall-through as a constant
// expression), check snippets before every return (dynamic target
// expression).
func init() { register("dyninst", "shadowstack", dyninstShadowStack) }

func dyninstShadowStack(prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error) {
	be, err := dyninst.OpenBinary(prog, dyninst.Config{Fuel: fuel})
	if err != nil {
		return nil, err
	}
	image := be.Image()
	var shadow []uint64

	push := func(args []uint64) { shadow = append(shadow, args[0]) }
	check := dyninst.FuncCallExpr{
		Fn: func(args []uint64) {
			if len(shadow) > 0 && shadow[len(shadow)-1] == args[0] {
				shadow = shadow[:len(shadow)-1]
			} else {
				fmt.Fprintln(out, "ERROR")
			}
		},
		Args: []dyninst.Snippet{dyninst.BranchTargetExpr{}},
		Cost: 3 * stmtCost,
	}

	for _, fn := range image.Functions() {
		for _, bb := range fn.Blocks() {
			points := bb.InstPoints()
			for n, in := range bb.Instructions() {
				switch in.Op {
				case isa.Call:
					pushSnippet := dyninst.FuncCallExpr{
						Fn:   push,
						Args: []dyninst.Snippet{dyninst.ConstExpr{Val: in.Next()}},
						Cost: 3 * stmtCost,
					}
					if err := be.InsertSnippet(pushSnippet, points[n], dyninst.CallBefore); err != nil {
						return nil, err
					}
				case isa.Return:
					if err := be.InsertSnippet(check, points[n], dyninst.CallBefore); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return be.Run()
}
