package native

import (
	"fmt"
	"io"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/janus"
	"repro/internal/vm"
)

// Use-after-free monitoring written directly against the Janus API: the
// static pass finds malloc/free call sites and all memory accesses by
// symbol and opcode inspection, annotating each with a rule naming the
// right handler; the handlers read call arguments, return values and
// effective addresses from the dynamic context. The check handlers
// branch and probe maps, so their clean calls are not inlinable.
func init() { register("janus", "useafterfree", janusUseAfterFree) }

func janusUseAfterFree(prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error) {
	const (
		hSize janus.HandlerID = iota + 1
		hAlloc
		hFree
		hCheck
	)
	freed := make(map[uint64]bool)
	baseTable := make(map[uint64]uint64)
	var size uint64

	tool := &janus.Tool{
		Name: "useafterfree",
		StaticPass: func(sa *janus.StaticAnalyzer) {
			nameAt := sa.Program().Obj.NameAt
			emit := func(b *cfg.Block, in *isa.Inst, tr janus.Trigger, h janus.HandlerID) {
				sa.EmitRule(janus.Rule{BlockAddr: b.Start, InstAddr: in.Addr, Trigger: tr, Handler: h})
			}
			for _, f := range sa.Executable().Funcs {
				for _, b := range f.Blocks {
					for _, in := range b.Insts {
						switch {
						case in.Op == isa.Call:
							if tgt, ok := in.IsDirectTarget(); ok {
								switch nameAt(tgt) {
								case "malloc":
									emit(b, in, janus.TriggerBefore, hSize)
									emit(b, in, janus.TriggerAfter, hAlloc)
								case "free":
									emit(b, in, janus.TriggerBefore, hFree)
								}
							}
						case in.Op.IsMemAccess():
							emit(b, in, janus.TriggerBefore, hCheck)
						}
					}
				}
			}
		},
		Handlers: map[janus.HandlerID]janus.Handler{
			hSize: {
				Fn:   func(c *vm.Ctx, _ []uint64) { size = c.CallArg(1) },
				Cost: 1 * stmtCost,
			},
			hAlloc: {
				Fn: func(c *vm.Ctx, _ []uint64) {
					base := c.RetVal()
					for a := base; a < base+size; a++ {
						baseTable[a] = base
					}
					freed[base] = false
				},
				Cost: 6 * stmtCost,
			},
			hFree: {
				Fn:   func(c *vm.Ctx, _ []uint64) { freed[c.CallArg(1)] = true },
				Cost: 2 * stmtCost,
			},
			hCheck: {
				Fn: func(c *vm.Ctx, _ []uint64) {
					ea, ok := c.MemAddr()
					if !ok {
						return
					}
					if base, hit := baseTable[ea]; hit && freed[base] {
						fmt.Fprintln(out, "ERROR: use after free access")
					}
				},
				Cost: 6 * stmtCost,
			},
		},
	}
	return janus.Run(prog, tool, janus.Config{Fuel: fuel})
}
