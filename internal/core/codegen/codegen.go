// Package codegen emits the framework-specific C/C++ tool sources that
// the Cinnamon compiler produces in the paper's workflow (Figure 4): the
// front end parses Cinnamon into an AST, and a per-framework code
// generator emits analysis passes, handler passes and the boilerplate
// that plugs into Pin, Dyninst or Janus.
//
// In this repository the same compiled tool is also executed directly by
// the engine/backend packages; the generated C/C++ is the inspectable
// artifact (golden-tested under testdata/) showing what would be handed
// to a C++ compiler in the original toolchain:
//
//   - actions become callback functions, with captured analysis data and
//     materialized dynamic attributes as parameters;
//   - commands become framework iteration code guarded by their
//     constraints;
//   - attribute accesses lower to utility-library accessor calls (the
//     paper's Section IV-A), hiding each framework's low-level code.
package codegen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core/ast"
	"repro/internal/core/engine"
	"repro/internal/core/sem"
	"repro/internal/core/token"
	"repro/internal/core/types"
)

// Generate emits the C/C++ sources of the tool for the named backend
// ("pin", "dyninst" or "janus"), as a map from file name to content.
func Generate(tool *engine.CompiledTool, backendName string) (map[string]string, error) {
	g := &generator{tool: tool, info: tool.Info}
	g.collect()
	var files map[string]string
	var err error
	switch backendName {
	case "pin":
		files, err = g.pin()
	case "dyninst":
		files, err = g.dyninst()
	case "janus":
		files, err = g.janus()
	default:
		return nil, fmt.Errorf("codegen: unknown backend %q", backendName)
	}
	if err != nil {
		return nil, err
	}
	files["cnm_runtime.h"] = runtimeHeader(backendName)
	return files, nil
}

type actionUnit struct {
	id   int
	act  *ast.Action
	info *sem.ActionInfo
	cmd  *ast.Command
}

type generator struct {
	tool    *engine.CompiledTool
	info    *sem.Info
	actions []actionUnit
}

// collect numbers every action in program order.
func (g *generator) collect() {
	id := 1
	var walk func(cmd *ast.Command)
	walk = func(cmd *ast.Command) {
		for _, item := range cmd.Body {
			switch it := item.(type) {
			case *ast.Command:
				walk(it)
			case *ast.Action:
				g.actions = append(g.actions, actionUnit{id: id, act: it, info: g.info.Actions[it], cmd: cmd})
				id++
			}
		}
	}
	for _, cmd := range g.info.Commands {
		walk(cmd)
	}
}

// ---------------------------------------------------------------------------
// Type and expression lowering (framework independent)

func cppType(t *types.Type) string {
	switch t.Kind {
	case types.Int:
		return "int64_t"
	case types.UInt64:
		return "uint64_t"
	case types.Char:
		return "char"
	case types.Bool:
		return "bool"
	case types.Addr:
		return "uintptr_t"
	case types.String, types.Line:
		return "std::string"
	case types.Opcode:
		return "cnm::Opcode"
	case types.Operand:
		return "cnm::Operand"
	case types.Dict:
		return fmt.Sprintf("std::map<%s, %s>", cppType(t.Key), cppType(t.Elem))
	case types.Vector:
		return fmt.Sprintf("std::vector<%s>", cppType(t.Elem))
	case types.Array:
		return cppType(t.Elem) // length carried by the declarator
	case types.File:
		return "cnm::File"
	}
	return "void"
}

var opcodeConst = map[string]string{
	"Call": "CNM_OP_CALL", "Mov": "CNM_OP_MOV", "Load": "CNM_OP_LOAD",
	"Store": "CNM_OP_STORE", "Branch": "CNM_OP_BRANCH", "Return": "CNM_OP_RETURN",
	"Add": "CNM_OP_ADD", "Sub": "CNM_OP_SUB", "Mul": "CNM_OP_MUL",
	"Div": "CNM_OP_DIV", "GetPtr": "CNM_OP_GETPTR", "Nop": "CNM_OP_NOP",
	"Halt": "CNM_OP_HALT",
}

// exprCtx says how CFE attribute accesses lower: in analysis context they
// become utility accessor calls on the handle variable; in an action they
// become the materialized callback parameters.
type exprCtx struct {
	inAction bool
}

func (g *generator) expr(e ast.Expr, ctx exprCtx) string {
	switch x := e.(type) {
	case *ast.IntLit:
		return fmt.Sprintf("%d", x.Val)
	case *ast.StringLit:
		return fmt.Sprintf("%q", x.Val)
	case *ast.CharLit:
		return fmt.Sprintf("'%c'", x.Val)
	case *ast.BoolLit:
		if x.Val {
			return "true"
		}
		return "false"
	case *ast.NullLit:
		return "CNM_NULL"
	case *ast.OpcodeLit:
		return opcodeConst[x.Name]
	case *ast.Ident:
		return x.Name
	case *ast.FieldExpr:
		return g.attrAccess(x, ctx)
	case *ast.IndexExpr:
		return fmt.Sprintf("%s[%s]", g.expr(x.X, ctx), g.expr(x.Index, ctx))
	case *ast.CallExpr:
		return g.call(x, ctx)
	case *ast.IsTypeExpr:
		fn := map[token.Kind]string{token.KMEM: "cnm::is_mem", token.KREG: "cnm::is_reg", token.KCONST: "cnm::is_const"}[x.OpType]
		return fmt.Sprintf("%s(%s)", fn, g.expr(x.X, ctx))
	case *ast.UnaryExpr:
		op := "!"
		if x.Op == token.MINUS {
			op = "-"
		}
		return fmt.Sprintf("%s%s", op, g.parenExpr(x.X, ctx))
	case *ast.BinaryExpr:
		return fmt.Sprintf("%s %s %s", g.parenExpr(x.X, ctx), cppOp(x.Op), g.parenExpr(x.Y, ctx))
	}
	return "/*?*/"
}

func (g *generator) parenExpr(e ast.Expr, ctx exprCtx) string {
	switch e.(type) {
	case *ast.BinaryExpr, *ast.IsTypeExpr:
		return "(" + g.expr(e, ctx) + ")"
	}
	return g.expr(e, ctx)
}

func cppOp(k token.Kind) string { return k.String() }

// attrAccess lowers I.attr. In analysis code, attributes become accessor
// calls from the utility library; in actions, dynamic attributes become
// the callback parameters (var_attr) while static ones were baked in as
// captured constants by the analysis pass.
func (g *generator) attrAccess(x *ast.FieldExpr, ctx exprCtx) string {
	recv, ok := x.X.(*ast.Ident)
	if !ok {
		return "/*?*/"
	}
	name := strings.ToLower(x.Name)
	if g.info.DynamicExprs[x] {
		return fmt.Sprintf("%s_%s", recv.Name, name)
	}
	if ctx.inAction {
		// Static attribute inside an action: passed as a captured
		// argument by the analysis pass.
		return fmt.Sprintf("%s_%s", recv.Name, name)
	}
	return fmt.Sprintf("cnm::%s(%s)", name, recv.Name)
}

func (g *generator) call(x *ast.CallExpr, ctx exprCtx) string {
	args := make([]string, len(x.Args))
	for i, a := range x.Args {
		args[i] = g.expr(a, ctx)
	}
	switch fun := x.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "print":
			return fmt.Sprintf("cnm::print(%s)", strings.Join(args, ", "))
		case "writeToFile":
			return fmt.Sprintf("cnm::write_to_file(%s)", strings.Join(args, ", "))
		}
		return fmt.Sprintf("%s(%s)", fun.Name, strings.Join(args, ", "))
	case *ast.FieldExpr:
		recv := g.expr(fun.X, ctx)
		switch fun.Name {
		case "add":
			return fmt.Sprintf("%s.push_back(%s)", recv, strings.Join(args, ", "))
		case "has":
			return fmt.Sprintf("cnm::contains(%s, %s)", recv, strings.Join(args, ", "))
		case "size":
			return fmt.Sprintf("%s.size()", recv)
		case "getline":
			return fmt.Sprintf("%s.getline()", recv)
		}
		return fmt.Sprintf("%s.%s(%s)", recv, fun.Name, strings.Join(args, ", "))
	}
	return "/*?*/"
}

// ---------------------------------------------------------------------------
// Statement lowering

type writer struct {
	b      strings.Builder
	indent int
}

func (w *writer) line(format string, args ...any) {
	w.b.WriteString(strings.Repeat("    ", w.indent))
	fmt.Fprintf(&w.b, format, args...)
	w.b.WriteByte('\n')
}

func (w *writer) blank() { w.b.WriteByte('\n') }

func (g *generator) stmts(w *writer, stmts []ast.Stmt, ctx exprCtx) {
	for _, s := range stmts {
		g.stmt(w, s, ctx)
	}
}

func (g *generator) stmt(w *writer, s ast.Stmt, ctx exprCtx) {
	switch st := s.(type) {
	case *ast.DeclStmt:
		w.line("%s", g.declString(st.Decl, ctx)+";")
	case *ast.AssignStmt:
		w.line("%s = %s;", g.expr(st.LHS, ctx), g.expr(st.RHS, ctx))
	case *ast.ExprStmt:
		w.line("%s;", g.expr(st.X, ctx))
	case *ast.IfStmt:
		w.line("if (%s) {", g.expr(st.Cond, ctx))
		w.indent++
		g.stmts(w, st.Then, ctx)
		w.indent--
		if len(st.Else) > 0 {
			w.line("} else {")
			w.indent++
			g.stmts(w, st.Else, ctx)
			w.indent--
		}
		w.line("}")
	case *ast.ForStmt:
		init, cond, post := "", "", ""
		if st.Init != nil {
			init = g.simpleStmtString(st.Init, ctx)
		}
		if st.Cond != nil {
			cond = g.expr(st.Cond, ctx)
		}
		if st.Post != nil {
			post = g.simpleStmtString(st.Post, ctx)
		}
		w.line("for (%s; %s; %s) {", init, cond, post)
		w.indent++
		g.stmts(w, st.Body, ctx)
		w.indent--
		w.line("}")
	}
}

func (g *generator) simpleStmtString(s ast.Stmt, ctx exprCtx) string {
	switch st := s.(type) {
	case *ast.DeclStmt:
		return g.declString(st.Decl, ctx)
	case *ast.AssignStmt:
		return fmt.Sprintf("%s = %s", g.expr(st.LHS, ctx), g.expr(st.RHS, ctx))
	case *ast.ExprStmt:
		return g.expr(st.X, ctx)
	}
	return ""
}

func (g *generator) declString(d *ast.VarDecl, ctx exprCtx) string {
	t := g.info.DeclTypes[d]
	out := fmt.Sprintf("%s %s", cppType(t), d.Name)
	if t.Kind == types.Array {
		out += fmt.Sprintf("[%d]", t.Len)
	}
	if t.Kind == types.File && len(d.Args) == 1 {
		return fmt.Sprintf("%s %s(%s)", cppType(t), d.Name, g.expr(d.Args[0], ctx))
	}
	if d.Init != nil {
		out += " = " + g.expr(d.Init, ctx)
	} else if t.IsNumeric() {
		out += " = 0"
	}
	return out
}

// ---------------------------------------------------------------------------
// Shared sections

func (g *generator) header(w *writer, what string, includes []string) {
	w.line("// Generated by the Cinnamon compiler — do not edit.")
	w.line("// %s", what)
	w.blank()
	for _, inc := range includes {
		w.line("#include %s", inc)
	}
	w.line("#include \"cnm_runtime.h\" // Cinnamon utility library (accessors, print, files)")
	w.blank()
}

func (g *generator) globals(w *writer) {
	if len(g.info.Globals) == 0 {
		return
	}
	w.line("// Tool globals (shared between all instrumented code).")
	for _, d := range g.info.Globals {
		w.line("static %s;", g.declString(d, exprCtx{}))
	}
	w.blank()
}

// actionParams lists an action's callback parameters: first the captured
// analysis values (sorted), then the materialized dynamic attributes.
func (g *generator) actionParams(u actionUnit) []string {
	var params []string
	for _, name := range g.capturedVars(u) {
		params = append(params, "uint64_t "+name)
	}
	for _, da := range u.info.DynAttrs {
		params = append(params, fmt.Sprintf("uint64_t %s_%s", da.Var, da.Attr))
	}
	return params
}

// capturedVars approximates the analysis values captured by the action:
// command-scope variables referenced in its body (static CFE attributes
// used inside the action are also captured, spelled var_attr).
func (g *generator) capturedVars(u actionUnit) []string {
	seen := map[string]bool{}
	globals := map[string]bool{}
	for _, d := range g.info.Globals {
		globals[d.Name] = true
	}
	locals := map[string]bool{}
	ast.WalkStmts(u.act.Body, func(s ast.Stmt) {
		if ds, ok := s.(*ast.DeclStmt); ok {
			locals[ds.Decl.Name] = true
		}
	}, nil)
	var names []string
	visit := func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.FieldExpr:
			if g.info.DynamicExprs[x] {
				return
			}
			if id, ok := x.X.(*ast.Ident); ok {
				n := fmt.Sprintf("%s_%s", id.Name, strings.ToLower(x.Name))
				if !seen[n] {
					seen[n] = true
					names = append(names, n)
				}
			}
		case *ast.Ident:
			if globals[x.Name] || locals[x.Name] || seen[x.Name] {
				return
			}
			// CFE handles themselves never appear bare in action code
			// except as attribute receivers, which FieldExpr handles.
			if x.Name == u.cmd.Var {
				return
			}
			if g.isCommandLocal(u, x.Name) {
				seen[x.Name] = true
				names = append(names, x.Name)
			}
		}
	}
	ast.WalkStmts(u.act.Body, nil, visit)
	if u.act.Where != nil {
		ast.Walk(u.act.Where, visit)
	}
	sort.Strings(names)
	return names
}

// isCommandLocal reports whether name is declared as analysis data in the
// action's enclosing command chain.
func (g *generator) isCommandLocal(u actionUnit, name string) bool {
	found := false
	var scan func(cmd *ast.Command) bool
	scan = func(cmd *ast.Command) bool {
		inChain := cmd == u.cmd
		for _, item := range cmd.Body {
			switch it := item.(type) {
			case *ast.DeclStmt:
				if it.Decl.Name == name {
					found = true
				}
			case *ast.Command:
				if scan(it) {
					inChain = true
				}
			}
		}
		return inChain
	}
	for _, cmd := range g.info.Commands {
		scan(cmd)
	}
	return found
}

// actionFunctions emits one callback function per action.
func (g *generator) actionFunctions(w *writer) {
	for _, u := range g.actions {
		params := g.actionParams(u)
		w.line("// Action %d: %s %s of command `%s %s` (%s).",
			u.id, u.info.Canonical, u.act.Target, u.cmd.EType, u.cmd.Var, describeWhere(u))
		w.line("static void cnm_action_%d(%s) {", u.id, strings.Join(params, ", "))
		w.indent++
		if u.act.Where != nil && u.info.WhereDynamic {
			w.line("if (!(%s)) return; // dynamic constraint", g.expr(u.act.Where, exprCtx{inAction: true}))
		}
		g.stmts(w, u.act.Body, exprCtx{inAction: true})
		w.indent--
		w.line("}")
		w.blank()
	}
}

func describeWhere(u actionUnit) string {
	if u.act.Where == nil {
		return "unconditional"
	}
	if u.info.WhereDynamic {
		return "dynamic constraint"
	}
	return "static constraint"
}

// initExitFunctions emits the program init/exit callbacks.
func (g *generator) initExitFunctions(w *writer) {
	for i, b := range g.info.Inits {
		w.line("static void cnm_init_%d() {", i+1)
		w.indent++
		g.stmts(w, b.Body, exprCtx{})
		w.indent--
		w.line("}")
		w.blank()
	}
	for i, b := range g.info.Exits {
		w.line("static void cnm_exit_%d() {", i+1)
		w.indent++
		g.stmts(w, b.Body, exprCtx{})
		w.indent--
		w.line("}")
		w.blank()
	}
}
