package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cliflags"
	"repro/internal/fleet"
)

var updateCLIDoc = flag.Bool("update-cli-doc", false, "rewrite docs/CLI.md from the flag table")

func cliDocPath(t *testing.T) string {
	t.Helper()
	p, err := filepath.Abs(filepath.Join("..", "..", "docs", "CLI.md"))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCLIDocCurrent regenerates docs/CLI.md from the flag registries of
// both binaries (this driver's and cinnamond's, via fleet.CLIFlags) and
// compares it to the committed copy, so the CLI reference cannot drift
// from the flags. Refresh with:
//
//	go test ./cmd/cinnamon -update-cli-doc
func TestCLIDocCurrent(t *testing.T) {
	want := renderCLIMD()
	path := cliDocPath(t)
	if *updateCLIDoc {
		if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("docs/CLI.md unreadable (regenerate with -update-cli-doc): %v", err)
	}
	if string(got) != want {
		t.Fatalf("docs/CLI.md is stale: regenerate with `go test ./cmd/cinnamon -update-cli-doc`")
	}
}

// checkRegistry asserts a flag registry is complete: every flag belongs
// to a declared group, carries help text, is recorded exactly once, and
// the registry agrees with the underlying flag set (a flag declared on
// the set directly would bypass the table and vanish from docs).
func checkRegistry(t *testing.T, name string, s *cliflags.Set) map[string]bool {
	t.Helper()
	groups := map[string]bool{}
	for _, g := range s.Groups {
		groups[g] = true
	}
	seen := map[string]bool{}
	for _, d := range s.Defs {
		if !groups[d.Group] {
			t.Errorf("%s: flag -%s has undeclared group %q", name, d.Name, d.Group)
		}
		if d.Help == "" {
			t.Errorf("%s: flag -%s has no help text", name, d.Name)
		}
		if seen[d.Name] {
			t.Errorf("%s: flag -%s recorded twice", name, d.Name)
		}
		seen[d.Name] = true
	}
	n := 0
	s.FS.VisitAll(func(f *flag.Flag) {
		n++
		if !seen[f.Name] {
			t.Errorf("%s: flag -%s is registered but not in the flag table", name, f.Name)
		}
	})
	if n != len(s.Defs) {
		t.Errorf("%s: flag set has %d flags, table has %d", name, n, len(s.Defs))
	}
	return seen
}

// The cinnamon registry must be complete and its grouped usage must
// mention every flag.
func TestFlagTableComplete(t *testing.T) {
	seen := checkRegistry(t, "cinnamon", reg)
	var b strings.Builder
	usage(&b)
	for name := range seen {
		if !strings.Contains(b.String(), "-"+name) {
			t.Errorf("usage output does not mention -%s", name)
		}
	}
}

// The cinnamond registry (internal/fleet) rides in the same generated
// document, so it is held to the same completeness bar.
func TestDaemonFlagTableComplete(t *testing.T) {
	dreg, _ := fleet.CLIFlags()
	seen := checkRegistry(t, "cinnamond", dreg)
	var b strings.Builder
	dreg.Usage(&b)
	for name := range seen {
		if !strings.Contains(b.String(), "-"+name) {
			t.Errorf("cinnamond usage output does not mention -%s", name)
		}
	}
}
