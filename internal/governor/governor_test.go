package governor_test

import (
	"reflect"
	"testing"

	"repro/cinnamon"
	"repro/internal/core/backend"
	"repro/internal/core/engine"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/progs"
	"repro/internal/workload"
)

// target loads a loop-heavy suite benchmark at a scale long enough for
// many governor windows.
func target(t *testing.T) *cinnamon.Target {
	t.Helper()
	spec, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("no mcf benchmark")
	}
	mods, err := spec.Build(0.5)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := cinnamon.LoadModules(mods)
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

func compile(t *testing.T, name string) *cinnamon.Tool {
	t.Helper()
	tool, err := cinnamon.Compile(progs.MustSource(name))
	if err != nil {
		t.Fatal(err)
	}
	return tool
}

func overhead(s *cinnamon.Stats, cycles uint64) float64 {
	return float64(s.ProbeCycles) / float64(cycles)
}

// TestBudgetEnforcement runs an expensive tool far over budget and
// checks the governor brings steady-state attributed overhead under it.
func TestBudgetEnforcement(t *testing.T) {
	tool := compile(t, progs.InstCountBasic)
	tgt := target(t)

	free, err := tool.Run(tgt, cinnamon.Janus, cinnamon.RunOptions{Stats: true})
	if err != nil {
		t.Fatal(err)
	}
	freeOver := overhead(free.Stats, free.Cycles)
	if freeOver < 0.05 {
		t.Fatalf("ungoverned overhead %.3f not over budget; pick a heavier tool", freeOver)
	}

	gov, err := tool.Run(tgt, cinnamon.Janus, cinnamon.RunOptions{Budget: "5%"})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := gov.Stats.Governor.(governor.State)
	if !ok {
		t.Fatalf("Stats.Governor is %T, want governor.State", gov.Stats.Governor)
	}
	if st.Paces == 0 {
		t.Fatal("governor never paced")
	}
	if len(st.Decisions) == 0 {
		t.Fatalf("overhead %.3f over budget but no decisions taken", freeOver)
	}
	if st.LastOverhead > st.Budget {
		t.Errorf("steady-state window overhead %.4f exceeds budget %.4f (decisions: %d)",
			st.LastOverhead, st.Budget, len(st.Decisions))
	}
	govOver := overhead(gov.Stats, gov.Cycles)
	if govOver >= freeOver {
		t.Errorf("governed overhead %.4f not below ungoverned %.4f", govOver, freeOver)
	}
	for _, d := range st.Decisions {
		if d.Action != "downsample" && d.Action != "eject" {
			t.Errorf("unexpected decision action %q", d.Action)
		}
		if d.Action == "downsample" && d.NewStride != d.OldStride*2 && d.NewStride != st.MaxStride {
			t.Errorf("downsample %d -> %d is not a doubling", d.OldStride, d.NewStride)
		}
	}
}

// TestTierDeterminism checks the governed run — cycle counts, tool
// output and the full decision log — is identical across the machine's
// execution tiers: pace points hit the same machine states everywhere.
func TestTierDeterminism(t *testing.T) {
	tool := compile(t, progs.InstCountBasic)
	tgt := target(t)

	type run struct {
		mode     string
		noInline bool
	}
	runs := []run{{"translated", false}, {"translated", true}, {"interpreted", false}}
	var base *cinnamon.Report
	var baseSt governor.State
	for _, r := range runs {
		rep, err := tool.Run(tgt, cinnamon.Janus, cinnamon.RunOptions{
			Budget: "5%", VMMode: r.mode, VMNoInline: r.noInline,
		})
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		st := rep.Stats.Governor.(governor.State)
		if base == nil {
			base, baseSt = rep, st
			if len(st.Decisions) == 0 {
				t.Fatal("no decisions to compare")
			}
			continue
		}
		if rep.Cycles != base.Cycles {
			t.Errorf("%v: cycles %d != %d", r, rep.Cycles, base.Cycles)
		}
		if rep.ToolOutput != base.ToolOutput {
			t.Errorf("%v: tool output diverges", r)
		}
		if !reflect.DeepEqual(st.Decisions, baseSt.Decisions) {
			t.Errorf("%v: decision log diverges:\n%+v\nvs\n%+v", r, st.Decisions, baseSt.Decisions)
		}
	}
}

// TestMailboxCommands ejects a probe by operator command before the run
// starts; the command is applied at the first pace point and the probe
// stays ejected.
func TestMailboxCommands(t *testing.T) {
	c, err := engine.Compile(progs.MustSource(progs.InstCountBasic))
	if err != nil {
		t.Fatal(err)
	}
	tgt := target(t)
	col := obs.New(obs.Options{})
	g, err := governor.New(governor.Config{Budget: 0.99, Collector: col})
	if err != nil {
		t.Fatal(err)
	}
	g.Enqueue(governor.Command{Probe: 1, Action: "eject"})
	_, err = backend.Run(c, tgt.Prog, backend.Janus, backend.Options{
		Obs: col, Adaptive: true, OnMachine: g.Attach,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := g.State()
	found := false
	for _, d := range st.Decisions {
		if d.Action == "eject" && d.Probe == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("eject command not applied; decisions: %+v", st.Decisions)
	}
	for _, p := range st.Probes {
		if p.Probe == 1 && p.Enabled {
			t.Error("probe 1 still enabled after eject")
		}
	}
}

func TestParseBudget(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		err  bool
	}{
		{"", 0, false},
		{"5%", 0.05, false},
		{"0.05", 0.05, false},
		{" 1% ", 0.01, false},
		{"0", 0, true},
		{"150%", 0, true},
		{"-3%", 0, true},
		{"zap", 0, true},
	}
	for _, c := range cases {
		got, err := governor.ParseBudget(c.in)
		if c.err != (err != nil) {
			t.Errorf("ParseBudget(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("ParseBudget(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
