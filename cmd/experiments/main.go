// Command experiments regenerates the paper's evaluation tables and
// figures from the command line:
//
//	experiments -exp=table1             # Table I: code lengths
//	experiments -exp=fig12 -scale=1.0   # Figure 12: counts per backend
//	experiments -exp=fig13              # Figure 13: overhead vs native
//	experiments -exp=pintools           # Section VI-D: Pin tool overheads
//	experiments -exp=attribution        # overhead decomposition per backend
//	experiments -exp=attribution -json  # ... also write BENCH_attribution.json
//	experiments -exp=dispatch           # VM tier wall-clock comparison
//	experiments -exp=dispatch -json     # ... also write BENCH_dispatch.json
//	experiments -exp=governor           # overhead budgets on action-heavy tools
//	experiments -exp=governor -json     # ... also write BENCH_governor.json
//	experiments -exp=fleet              # fleet daemon load harness
//	experiments -exp=fleet -json        # ... also write BENCH_fleet.json
//	experiments -exp=all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig12, fig13, pintools, attribution, dispatch, governor, fleet, all")
	scale := flag.Float64("scale", 1.0, "workload scale (1.0 = paper-equivalent test input)")
	benchmark := flag.String("benchmark", "leela", "benchmark for -exp=attribution and -exp=dispatch")
	jsonOut := flag.Bool("json", false, "also write machine-readable results (BENCH_attribution.json, BENCH_dispatch.json) next to the table output")
	sessions := flag.Int("sessions", 48, "session count for -exp=fleet")
	workers := flag.Int("workers", 32, "worker pool size for -exp=fleet")
	loop := flag.Int("loop", 20000, "victim loop count per session for -exp=fleet")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("\n===== %s =====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", func() error {
		bench.FormatTable1(os.Stdout, bench.Table1())
		return nil
	})
	run("fig12", func() error {
		rows, err := bench.Fig12(*scale)
		if err != nil {
			return err
		}
		bench.FormatFig12(os.Stdout, rows)
		fmt.Printf("shared-library gap (Pin > static): %v\n", bench.SharedLibGap(rows))
		return nil
	})
	run("fig13", func() error {
		rows, err := bench.Fig13(*scale)
		if err != nil {
			return err
		}
		bench.FormatFig13(os.Stdout, rows)
		return nil
	})
	run("pintools", func() error {
		rows, err := bench.PinToolOverheads(*scale)
		if err != nil {
			return err
		}
		bench.FormatPinTools(os.Stdout, rows)
		return nil
	})
	run("attribution", func() error {
		rows, err := bench.Attribution(*benchmark, *scale)
		if err != nil {
			return err
		}
		bench.FormatAttribution(os.Stdout, rows)
		if *jsonOut {
			f, err := os.Create("BENCH_attribution.json")
			if err != nil {
				return err
			}
			defer f.Close()
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rows); err != nil {
				return err
			}
			fmt.Println("wrote BENCH_attribution.json")
		}
		return nil
	})
	run("dispatch", func() error {
		rows, err := bench.Dispatch(*benchmark, *scale)
		if err != nil {
			return err
		}
		bench.FormatDispatch(os.Stdout, rows)
		if *jsonOut {
			f, err := os.Create("BENCH_dispatch.json")
			if err != nil {
				return err
			}
			defer f.Close()
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rows); err != nil {
				return err
			}
			fmt.Println("wrote BENCH_dispatch.json")
		}
		return nil
	})
	run("governor", func() error {
		rows, err := bench.Governor(*benchmark, *scale)
		if err != nil {
			return err
		}
		bench.FormatGovernor(os.Stdout, rows)
		if *jsonOut {
			f, err := os.Create("BENCH_governor.json")
			if err != nil {
				return err
			}
			defer f.Close()
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rows); err != nil {
				return err
			}
			fmt.Println("wrote BENCH_governor.json")
		}
		return nil
	})
	run("fleet", func() error {
		res, err := bench.Fleet(bench.FleetOptions{Sessions: *sessions, Workers: *workers, Loop: *loop})
		if err != nil {
			return err
		}
		bench.FormatFleet(os.Stdout, res)
		if *jsonOut {
			f, err := os.Create("BENCH_fleet.json")
			if err != nil {
				return err
			}
			defer f.Close()
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				return err
			}
			fmt.Println("wrote BENCH_fleet.json")
		}
		return nil
	})
}
