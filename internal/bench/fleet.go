package bench

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/core/artifacts"
	"repro/internal/core/backend"
	"repro/internal/fleet"
	"repro/internal/monitor"
	"repro/internal/progs"
)

// Fleet load harness: boots a real scheduler and FleetServer on a
// loopback listener, floods the pool with concurrent sessions, and
// scrapes /metrics over actual HTTP in a tight loop while the fleet
// churns. The result records aggregate probe throughput (fires per
// wall-clock second across every session) and the latency distribution
// of a /metrics snapshot under that load — the two numbers the daemon's
// sizing is judged by. The scrape loop also re-checks rollup exactness
// on every single scrape, so the benchmark doubles as a consistency
// soak.

// FleetOptions parameterizes the fleet experiment.
type FleetOptions struct {
	// Sessions is how many victim×tool sessions are submitted (default 48).
	Sessions int
	// Workers is the bounded pool size (default 32).
	Workers int
	// Loop is each session's victim loop count (default 20000).
	Loop int
}

// FleetResult is one harness run. The JSON form is what
// `experiments -exp=fleet -json` writes to BENCH_fleet.json.
type FleetResult struct {
	Sessions int `json:"sessions"`
	Workers  int `json:"workers"`
	Loop     int `json:"loop"`
	// WallSec is submission-to-settled wall time; FiresPerSec is
	// TotalFires normalized by it — the fleet's aggregate probe
	// throughput.
	WallSec     float64 `json:"wall_sec"`
	TotalFires  uint64  `json:"total_fires"`
	TotalCycles uint64  `json:"total_cycles"`
	FiresPerSec float64 `json:"fires_per_sec"`
	// Scrapes counts /metrics requests issued while the fleet churned;
	// the percentiles are over their end-to-end latencies.
	Scrapes     int     `json:"scrapes"`
	ScrapeP50Ms float64 `json:"scrape_p50_ms"`
	ScrapeP99Ms float64 `json:"scrape_p99_ms"`
	// RollupConsistent reports that every scrape satisfied
	// fleet_total == sum(session totals) exactly.
	RollupConsistent bool `json:"rollup_consistent"`
	// Done and Failed count terminal session states.
	Done   int `json:"done"`
	Failed int `json:"failed"`
	// StartupColdUs and StartupWarmUs are median single-session startup
	// times — everything a scheduler does before the session's first
	// instruction (tool compile, victim assemble+build, instrumentation
	// lowering) — against an empty artifact cache vs a primed one;
	// StartupSpeedup is their ratio — the warm-start win a session
	// joining an established fleet sees.
	StartupColdUs  float64 `json:"startup_cold_us"`
	StartupWarmUs  float64 `json:"startup_warm_us"`
	StartupSpeedup float64 `json:"startup_speedup"`
	// ArtifactHits and ArtifactMisses are the scheduler cache's totals
	// over the churn (tool, victim and template lookups combined).
	ArtifactHits   uint64 `json:"artifact_hits"`
	ArtifactMisses uint64 `json:"artifact_misses"`
}

// fleetTools is the tool mix the harness cycles through: all
// action-heavy, so the fire rate reflects instrumentation pressure.
var fleetTools = []string{"instcount_basic", "opcodemix", "loopcoverage"}

// startupIters is how many cold/warm startup samples the harness takes
// (the cells report the median, so a stray scheduling hiccup in one
// iteration cannot skew the speedup).
const startupIters = 15

// startupOnce performs one full session startup against the given
// cache — tool lookup/compile, victim lookup/build, instrumentation
// via backend.Prepare — and returns the elapsed time in microseconds.
// Execution is deliberately excluded: it is the session's payload, not
// its startup, and is byte-identical cold or warm.
func startupOnce(cache *artifacts.Cache, src string) (float64, error) {
	t0 := time.Now()
	tool, _, err := cache.Tool(src)
	if err != nil {
		return 0, err
	}
	v, _, err := cache.Victim("spin", 1)
	if err != nil {
		return 0, err
	}
	if err := backend.Prepare(tool, v.Prog, backend.Janus, backend.Options{
		Out: io.Discard, AppOut: io.Discard, Artifacts: cache,
	}); err != nil {
		return 0, err
	}
	return float64(time.Since(t0).Nanoseconds()) / 1000, nil
}

// startupCells measures the cold and warm session-startup cells: cold
// iterations each get a fresh empty cache (every artifact built from
// scratch), warm iterations share one primed cache (every artifact
// served). Returns the medians.
func startupCells() (coldUs, warmUs float64, err error) {
	src, err := progs.Source(fleetTools[0])
	if err != nil {
		return 0, 0, err
	}
	warm := artifacts.New(artifacts.Options{})
	if _, err := startupOnce(warm, src); err != nil { // prime
		return 0, 0, err
	}
	var colds, warms []float64
	for i := 0; i < startupIters; i++ {
		c, err := startupOnce(artifacts.New(artifacts.Options{}), src)
		if err != nil {
			return 0, 0, err
		}
		colds = append(colds, c)
		w, err := startupOnce(warm, src)
		if err != nil {
			return 0, 0, err
		}
		warms = append(warms, w)
	}
	return percentile(colds, 0.50), percentile(warms, 0.50), nil
}

// Fleet runs the load harness.
func Fleet(o FleetOptions) (FleetResult, error) {
	if o.Sessions <= 0 {
		o.Sessions = 48
	}
	if o.Workers <= 0 {
		o.Workers = 32
	}
	if o.Loop <= 0 {
		o.Loop = 20000
	}

	sched := fleet.NewScheduler(fleet.Config{
		Workers:  o.Workers,
		Queue:    o.Sessions + 8,
		Interval: 50 * time.Millisecond,
	})
	srv := monitor.NewFleetServer(monitor.FleetConfig{
		Fleet: sched.Fleet(),
		Ready: sched.Accepting,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return FleetResult{}, err
	}
	url := "http://" + addr + "/metrics"

	start := time.Now()
	for i := 0; i < o.Sessions; i++ {
		if _, err := sched.Submit(fleet.JobSpec{
			Tool:   fleetTools[i%len(fleetTools)],
			Victim: "spin",
			Loop:   o.Loop,
		}); err != nil {
			return FleetResult{}, err
		}
	}

	// Scrape concurrently with the churn, timing each request and
	// checking rollup exactness on its body.
	scrapeCtx, stopScrapes := context.WithCancel(context.Background())
	type scrapeOut struct {
		latencies []float64
		ok        bool
		err       error
	}
	scrapeCh := make(chan scrapeOut, 1)
	go func() {
		out := scrapeOut{ok: true}
		client := &http.Client{Timeout: 10 * time.Second}
		for scrapeCtx.Err() == nil {
			t0 := time.Now()
			resp, err := client.Get(url)
			if err != nil {
				out.err = err
				break
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				out.err = err
				break
			}
			out.latencies = append(out.latencies, float64(time.Since(t0).Microseconds())/1000)

			series := monitor.ParseSamples(string(body))
			var sum float64
			for _, sess := range sched.Fleet().Sessions() {
				l := sess.Labels()
				sum += series[fmt.Sprintf(`cinnamon_session_fires_total{session="%s",tool="%s",victim="%s",backend="%s"}`,
					l.Session, l.Tool, l.Victim, l.Backend)]
			}
			if series["cinnamon_fleet_fires_total"] != sum {
				out.ok = false
			}
		}
		scrapeCh <- out
	}()

	waitCtx, cancelWait := context.WithTimeout(context.Background(), 10*time.Minute)
	waitErr := sched.Wait(waitCtx)
	cancelWait()
	wall := time.Since(start).Seconds()

	stopScrapes()
	scrapes := <-scrapeCh
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 10*time.Second)
	_ = sched.Drain(drainCtx)
	_ = srv.Shutdown(drainCtx)
	cancelDrain()
	if waitErr != nil {
		return FleetResult{}, fmt.Errorf("bench: fleet sessions did not settle: %w", waitErr)
	}
	if scrapes.err != nil {
		return FleetResult{}, fmt.Errorf("bench: fleet scrape: %w", scrapes.err)
	}

	res := FleetResult{
		Sessions:         o.Sessions,
		Workers:          o.Workers,
		Loop:             o.Loop,
		WallSec:          wall,
		Scrapes:          len(scrapes.latencies),
		RollupConsistent: scrapes.ok,
	}
	for _, sess := range sched.Fleet().Sessions() {
		info := sess.Info()
		res.TotalFires += info.Fires
		res.TotalCycles += info.ProbeCycles
		switch info.State {
		case monitor.SessionDone:
			res.Done++
		case monitor.SessionFailed:
			res.Failed++
		}
	}
	if wall > 0 {
		res.FiresPerSec = float64(res.TotalFires) / wall
	}
	res.ScrapeP50Ms = percentile(scrapes.latencies, 0.50)
	res.ScrapeP99Ms = percentile(scrapes.latencies, 0.99)
	if c := sched.Artifacts(); c != nil {
		st := c.Stats()
		res.ArtifactHits = st.Hits()
		res.ArtifactMisses = st.Misses()
	}

	// Startup cells, after the churn so they never contend with it.
	cold, warmed, err := startupCells()
	if err != nil {
		return FleetResult{}, fmt.Errorf("bench: startup cells: %w", err)
	}
	res.StartupColdUs, res.StartupWarmUs = cold, warmed
	if warmed > 0 {
		res.StartupSpeedup = cold / warmed
	}
	return res, nil
}

// percentile returns the p-th percentile of the samples (nearest-rank;
// 0 when empty).
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

// FormatFleet renders the harness result.
func FormatFleet(w io.Writer, r FleetResult) {
	fmt.Fprintf(w, "%-10s %-8s %-8s %12s %14s %9s %10s %10s %7s %7s\n",
		"sessions", "workers", "loop", "fires", "fires/sec", "scrapes", "p50 ms", "p99 ms", "done", "failed")
	fmt.Fprintf(w, "%-10d %-8d %-8d %12d %14.0f %9d %10.2f %10.2f %7d %7d\n",
		r.Sessions, r.Workers, r.Loop, r.TotalFires, r.FiresPerSec,
		r.Scrapes, r.ScrapeP50Ms, r.ScrapeP99Ms, r.Done, r.Failed)
	fmt.Fprintf(w, "startup: cold %.0fus, warm %.0fus (%.1fx); artifact cache: %d hits, %d misses over the churn\n",
		r.StartupColdUs, r.StartupWarmUs, r.StartupSpeedup, r.ArtifactHits, r.ArtifactMisses)
	if !r.RollupConsistent {
		fmt.Fprintln(w, "WARNING: a mid-churn scrape violated fleet rollup exactness")
	}
}
