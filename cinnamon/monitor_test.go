package cinnamon

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obj"
	"repro/internal/progs"
	"repro/internal/workload"
)

// TestLiveMonitoredSession is the acceptance path of the live-monitoring
// work: a use-after-free monitor instruments a looped victim with the
// monitor server attached, the "operator" scrapes /metrics and /stats
// while the victim is still running, and the scrapes must be monotone
// and bounded by the final report, which must reconcile exactly.
func TestLiveMonitoredSession(t *testing.T) {
	src, err := progs.Source(progs.UseAfterFree)
	if err != nil {
		t.Fatal(err)
	}
	tool, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := workload.LoopedVictim("uaf_bug", 15_000)
	if err != nil {
		t.Fatal(err)
	}
	target, err := LoadModules([]*obj.Module{m})
	if err != nil {
		t.Fatal(err)
	}

	addrCh := make(chan string, 1)
	type result struct {
		rep *Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := tool.Run(target, Pin, RunOptions{
			ToolOut:     io.Discard,
			MonitorAddr: "127.0.0.1:0",
			Interval:    50 * time.Millisecond,
			OnMonitor:   func(addr string) { addrCh <- addr },
		})
		done <- result{rep, err}
	}()

	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case res := <-done:
		t.Fatalf("run finished before the monitor came up: %+v %v", res.rep, res.err)
	}

	httpGet := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return string(b)
	}

	if body := httpGet("/healthz"); body != "ok\n" {
		t.Fatalf("/healthz = %q", body)
	}

	// The monitor comes up before the backend starts placing probes;
	// wait until the run is visibly underway before asserting on scrapes.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var probing Stats
		if err := json.Unmarshal([]byte(httpGet("/stats")), &probing); err != nil {
			t.Fatalf("/stats: %v", err)
		}
		if probing.TotalFires > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never started firing")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Two consecutive mid-run scrapes: every counter monotone.
	parse := func(text string) map[string]float64 {
		out := map[string]float64{}
		for _, line := range strings.Split(text, "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			sp := strings.LastIndex(line, " ")
			v, err := strconv.ParseFloat(line[sp+1:], 64)
			if err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			out[line[:sp]] = v
		}
		return out
	}
	scrape1 := parse(httpGet("/metrics"))
	var live Stats
	if err := json.Unmarshal([]byte(httpGet("/stats")), &live); err != nil {
		t.Fatalf("/stats: %v", err)
	}
	scrape2 := parse(httpGet("/metrics"))
	for key, v1 := range scrape1 {
		if v2, ok := scrape2[key]; !ok || (strings.Contains(key, "_total") && v2 < v1) {
			t.Errorf("series %s went %v -> %v across scrapes", key, v1, v2)
		}
	}
	if live.Backend != Pin || len(live.Probes) == 0 {
		t.Fatalf("mid-run /stats = %+v", live)
	}

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	final := res.rep.Stats
	if final == nil {
		t.Fatal("MonitorAddr did not imply Stats")
	}

	// The run fired constantly after the scrapes, so the final report
	// strictly dominates them; and it reconciles exactly internally.
	fireKeys := 0
	for key, v := range scrape2 {
		if !strings.HasPrefix(key, "cinnamon_probe_fires_total{") {
			continue
		}
		fireKeys++
		if uint64(v) > final.TotalFires {
			t.Errorf("scraped %s=%v exceeds final total %d", key, v, final.TotalFires)
		}
	}
	if fireKeys == 0 {
		t.Error("no per-probe fire series in the mid-run scrape")
	}
	if live.TotalFires > final.TotalFires {
		t.Errorf("mid-run total %d > final %d", live.TotalFires, final.TotalFires)
	}
	var sum uint64
	for _, p := range final.Probes {
		sum += p.Fires
	}
	if sum+final.UntrackedFires != final.TotalFires {
		t.Errorf("final report does not reconcile: %d + %d != %d",
			sum, final.UntrackedFires, final.TotalFires)
	}
	// The victim loops 15k times and mallocs each iteration, so the
	// malloc probe fired at least that often.
	if final.TotalFires < 15_000 {
		t.Errorf("final fires = %d, want >= 15000", final.TotalFires)
	}

	// The monitor shut down with the run.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("monitor still serving after the run ended")
	}
}
