// Command cinnamon is the Cinnamon compiler driver: it compiles a .cin
// program and either runs it on a binary under one of the three backends
// or emits the framework-specific C/C++ sources.
//
//	cinnamon -backend=pin -target=victim:uaf_bug tool.cin
//	cinnamon -backend=janus -target=suite:mcf -scale=0.5 tool.cin
//	cinnamon -backend=dyninst -target=app.s tool.cin
//	cinnamon -emit=janus tool.cin
//	cinnamon -list-programs        # built-in case studies
//	cinnamon -backend=pin -target=victim:uaf_bug @useafterfree
//
// Targets: "victim:<name>" (built-in monitoring victims),
// "suite:<name>" (synthetic SPEC CPU 2017 benchmark), or a path to an
// assembly file. Tool arguments starting with @ name a built-in case
// study instead of a file.
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/cinnamon"
	"repro/internal/governor"
	"repro/internal/obj"
	"repro/internal/progs"
	"repro/internal/workload"
)

func main() {
	cli.Usage = func() { usage(os.Stderr) }
	_ = cli.Parse(os.Args[1:])

	if *loop == 0 && *listen != "" {
		// A single victim run is over in microseconds — far too fast to
		// scrape. A live-monitored session loops by default.
		*loop = 500000
	}

	if *list {
		fmt.Println("built-in case studies (use as @<name>):")
		for _, n := range progs.Names() {
			fmt.Printf("  @%s\n", n)
		}
		fmt.Println("victims (use as -target=victim:<name>):")
		var names []string
		for n := range workload.Victims() {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	if cli.NArg() != 1 {
		usage(os.Stderr)
		os.Exit(1)
	}
	src := readTool(cli.Arg(0))
	tool, err := cinnamon.Compile(src)
	check(err)

	if *emit != "" {
		files, err := tool.GenerateCode(*emit)
		check(err)
		var names []string
		for n := range files {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("// ===== %s =====\n%s\n", n, files[n])
		}
		return
	}

	if *target == "" {
		fail("cinnamon: -target is required to run a tool (or use -emit)")
	}
	tgt := loadTarget(*target, *scale, *loop)
	report, err := tool.Run(tgt, *backendName, cinnamon.RunOptions{
		ToolOut:          os.Stdout,
		PinLoopDetection: *pinLoops,
		Stats:            *stats || *statsJSON,
		Trace:            *trace,
		MonitorAddr:      *listen,
		Interval:         *interval,
		VMMode:           *vmMode,
		VMNoInline:       !*vmInline,
		NoIROpt:          !*irOpt,
		NoArtifactCache:  !*artCache,
		Budget:           *budget,
		GovernorWindow:   *govWindow,
		OnMonitor: func(addr string) {
			fmt.Fprintf(os.Stderr, "cinnamon: monitor listening on http://%s\n", addr)
		},
	})
	check(err)
	if *stats || *trace > 0 {
		fmt.Fprintf(os.Stderr, "backend=%s insts=%d cycles=%d exit=%d\n",
			report.Backend, report.Insts, report.Cycles, report.ExitCode)
		report.Stats.WriteTable(os.Stderr)
		if st, ok := report.Stats.Governor.(governor.State); ok {
			ejected := 0
			for _, p := range st.Probes {
				if !p.Enabled {
					ejected++
				}
			}
			fmt.Fprintf(os.Stderr,
				"governor: budget %.2f%%, %d paces, %d decisions (%d probes ejected), last window overhead %.2f%%\n",
				st.Budget*100, st.Paces, len(st.Decisions), ejected, st.LastOverhead*100)
		}
	}
	if *statsJSON {
		check(report.Stats.WriteJSON(os.Stdout))
	}
}

func readTool(arg string) string {
	if strings.HasPrefix(arg, "@") {
		src, err := progs.Source(strings.TrimPrefix(arg, "@"))
		check(err)
		return src
	}
	b, err := os.ReadFile(arg)
	check(err)
	return string(b)
}

func loadTarget(spec string, scale float64, loop int) *cinnamon.Target {
	switch {
	case strings.HasPrefix(spec, "victim:"):
		name := strings.TrimPrefix(spec, "victim:")
		var m *obj.Module
		var err error
		if loop > 0 {
			m, err = workload.LoopedVictim(name, loop)
		} else {
			m, err = workload.Victim(name)
		}
		check(err)
		t, err := cinnamon.LoadModules([]*obj.Module{m})
		check(err)
		return t
	case strings.HasPrefix(spec, "suite:"):
		s, ok := workload.ByName(strings.TrimPrefix(spec, "suite:"))
		if !ok {
			fail("cinnamon: unknown suite benchmark %q", spec)
		}
		mods, err := s.Build(scale)
		check(err)
		t, err := cinnamon.LoadModules(mods)
		check(err)
		return t
	default:
		b, err := os.ReadFile(spec)
		check(err)
		t, err := cinnamon.LoadAssembly(string(b))
		check(err)
		return t
	}
}

func check(err error) {
	if err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
