package conformance

import (
	"repro/internal/core/ast"
	"repro/internal/core/engine"
	"repro/internal/core/parser"
)

// Shrink minimizes a failing program. fails must be a deterministic
// predicate over program source ("does this still reproduce the
// divergence"); Shrink repeatedly deletes the first removable syntax
// element (top-level item, command-body item, where-clause, statement)
// whose removal keeps the program compiling and failing, restarting
// from the front after every success, until no single deletion
// reproduces. The strategy is greedy and the candidate order is a pure
// function of the AST, so the same failing input always shrinks to the
// byte-identical minimal source.
func Shrink(src string, fails func(src string) bool) string {
	prog, err := parser.Parse(src)
	if err != nil {
		return src
	}
	cur := ast.Print(prog)
	if !fails(cur) {
		// The canonical rendering must reproduce before deletions mean
		// anything; if it doesn't, report the input unshrunk.
		return src
	}
	for {
		prog, err = parser.Parse(cur)
		if err != nil {
			return cur
		}
		slots := countSlots(prog)
		shrunk := false
		for i := 0; i < slots; i++ {
			candidate := ast.Print(deleteSlot(prog, i))
			if candidate == cur {
				continue
			}
			if _, err := engine.Compile(candidate); err != nil {
				continue
			}
			if fails(candidate) {
				cur = candidate
				shrunk = true
				break
			}
		}
		if !shrunk {
			return cur
		}
	}
}

// A slot is one deletable position in the tree. Deletion rebuilds the
// program sharing all unaffected subtrees; the indexing walk and the
// rebuilding walk visit slots in the same order, so slot i always names
// the same element for a given tree.

type slotWalk struct {
	target int // slot to delete; -1 counts only
	count  int
}

// del reports whether the current slot is the deletion target.
func (w *slotWalk) del() bool {
	hit := w.count == w.target
	w.count++
	return hit
}

func countSlots(prog *ast.Program) int {
	w := &slotWalk{target: -1}
	w.program(prog)
	return w.count
}

func deleteSlot(prog *ast.Program, i int) *ast.Program {
	w := &slotWalk{target: i}
	return w.program(prog)
}

func (w *slotWalk) program(prog *ast.Program) *ast.Program {
	out := &ast.Program{}
	for _, item := range prog.Items {
		if w.del() {
			continue
		}
		out.Items = append(out.Items, w.topItem(item))
	}
	return out
}

func (w *slotWalk) topItem(item ast.TopItem) ast.TopItem {
	switch it := item.(type) {
	case *ast.Command:
		return w.command(it)
	case *ast.InitBlock:
		return &ast.InitBlock{P: it.P, Body: w.stmts(it.Body)}
	case *ast.ExitBlock:
		return &ast.ExitBlock{P: it.P, Body: w.stmts(it.Body)}
	}
	return item
}

func (w *slotWalk) command(c *ast.Command) *ast.Command {
	out := &ast.Command{P: c.P, EType: c.EType, Var: c.Var, Where: c.Where}
	if c.Where != nil && w.del() {
		out.Where = nil
	}
	for _, item := range c.Body {
		if w.del() {
			continue
		}
		switch it := item.(type) {
		case *ast.Command:
			out.Body = append(out.Body, w.command(it))
		case *ast.Action:
			out.Body = append(out.Body, w.action(it))
		case ast.Stmt:
			out.Body = append(out.Body, w.stmt(it))
		}
	}
	return out
}

func (w *slotWalk) action(a *ast.Action) *ast.Action {
	out := &ast.Action{P: a.P, Trigger: a.Trigger, Target: a.Target, Where: a.Where}
	if a.Where != nil && w.del() {
		out.Where = nil
	}
	out.Body = w.stmts(a.Body)
	return out
}

func (w *slotWalk) stmts(stmts []ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range stmts {
		if w.del() {
			continue
		}
		out = append(out, w.stmt(s))
	}
	return out
}

func (w *slotWalk) stmt(s ast.Stmt) ast.Stmt {
	switch st := s.(type) {
	case *ast.IfStmt:
		out := &ast.IfStmt{P: st.P, Cond: st.Cond}
		out.Then = w.stmts(st.Then)
		if st.Else != nil {
			out.Else = w.stmts(st.Else)
		}
		return out
	case *ast.ForStmt:
		out := &ast.ForStmt{P: st.P, Init: st.Init, Cond: st.Cond, Post: st.Post}
		out.Body = w.stmts(st.Body)
		return out
	}
	return s
}
