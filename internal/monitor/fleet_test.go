package monitor

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// fleetSession registers one synthetic session with a probe already
// firing, returning its collector for the test to drive.
func fleetSession(t *testing.T, f *Fleet, id, tool, victim, backendName string) (*FleetSession, *obs.Collector, obs.ProbeID) {
	t.Helper()
	col := obs.New(obs.Options{TraceCap: 8})
	series := obs.NewSeries(col, backendName, obs.SeriesOptions{Interval: 10 * time.Millisecond, Cap: 16})
	sess, err := f.Add(SessionLabels{Session: id, Tool: tool, Victim: victim, Backend: backendName}, col, series)
	if err != nil {
		t.Fatal(err)
	}
	probe := col.RegisterProbe(obs.ProbeMeta{Label: "before inst", Trigger: obs.TriggerBefore, Mechanism: obs.MechCleanCall})
	return sess, col, probe
}

// fleetScrape renders the fleet exposition and validates conformance.
func fleetScrape(t *testing.T, f *Fleet) (string, map[string]float64) {
	t.Helper()
	var b strings.Builder
	writeFleetMetrics(&b, f)
	return b.String(), checkExposition(t, b.String())
}

// The fleet exposition carries every session under its full label set,
// and the cinnamon_fleet_* rollups are exactly the sum of the
// per-session series — both computed from the same snapshots.
func TestFleetExpositionMultiLabelRollups(t *testing.T) {
	f := NewFleet()
	_, colA, pA := fleetSession(t, f, "s1", "instcount_basic", "spin", "janus")
	_, colB, pB := fleetSession(t, f, "s2", "opcodemix", "loopy", "pin")
	_, colC, pC := fleetSession(t, f, "s3", "instcount_basic", "spin", "janus")

	for i := 0; i < 5; i++ {
		colA.Fire(pA, 3, 0x10)
	}
	for i := 0; i < 7; i++ {
		colB.Fire(pB, 2, 0x20)
	}
	colC.Fire(pC, 1, 0x30)
	colC.Fire(obs.NoProbe, 4, 0x40) // untracked

	text, series := fleetScrape(t, f)

	probeKeyA := `cinnamon_probe_fires_total{session="s1",tool="instcount_basic",victim="spin",backend="janus",probe="before inst",trigger="before",mechanism="clean-call"}`
	if series[probeKeyA] != 5 {
		t.Fatalf("per-probe series for s1 = %v, want 5\n%s", series[probeKeyA], text)
	}

	var sessSum float64
	for _, id := range []struct{ sess, tool, victim, backend string }{
		{"s1", "instcount_basic", "spin", "janus"},
		{"s2", "opcodemix", "loopy", "pin"},
		{"s3", "instcount_basic", "spin", "janus"},
	} {
		key := fmt.Sprintf(`cinnamon_session_fires_total{session="%s",tool="%s",victim="%s",backend="%s"}`,
			id.sess, id.tool, id.victim, id.backend)
		v, ok := series[key]
		if !ok {
			t.Fatalf("missing per-session total %s\n%s", key, text)
		}
		sessSum += v
	}
	if got := series["cinnamon_fleet_fires_total"]; got != sessSum || got != 14 {
		t.Fatalf("fleet fires rollup = %v, session sum = %v, want both 14\n%s", got, sessSum, text)
	}
	// s3's untracked firing counts in its session total and the rollup.
	if series[`cinnamon_session_fires_total{session="s3",tool="instcount_basic",victim="spin",backend="janus"}`] != 2 {
		t.Fatalf("s3 session total should include the untracked fire\n%s", text)
	}
	if series[`cinnamon_fleet_sessions{state="queued"}`] != 3 {
		t.Fatalf("state gauge wrong\n%s", text)
	}

	// ParseSamples (the harness-side parser) agrees with the test
	// validator on every series.
	parsed := ParseSamples(text)
	if len(parsed) != len(series) {
		t.Fatalf("ParseSamples found %d series, validator %d", len(parsed), len(series))
	}
	for k, v := range series {
		if parsed[k] != v {
			t.Fatalf("ParseSamples[%s] = %v, want %v", k, parsed[k], v)
		}
	}
}

// Session label values are escaped in exposition exactly like probe
// labels, and hostile values never reach the registry unvalidated.
func TestFleetLabelEscapingAndValidation(t *testing.T) {
	f := NewFleet()
	col := obs.New(obs.Options{})
	labels := SessionLabels{Session: `s"1\x`, Tool: "tool", Victim: "victim", Backend: "vm"}
	if _, err := f.Add(labels, col, nil); err != nil {
		t.Fatalf("printable specials must validate: %v", err)
	}
	text, series := fleetScrape(t, f)
	key := `cinnamon_session_fires_total{session="s\"1\\x",tool="tool",victim="victim",backend="vm"}`
	if _, ok := series[key]; !ok {
		t.Fatalf("escaped session label series missing\n%s", text)
	}

	for _, bad := range []SessionLabels{
		{Session: "", Tool: "t", Victim: "v", Backend: "b"},
		{Session: "s", Tool: "a\nb", Victim: "v", Backend: "b"},
		{Session: "s", Tool: "t", Victim: "a\x01b", Backend: "b"},
		{Session: "s", Tool: "t", Victim: "v", Backend: string([]byte{0xff, 0xfe})},
		{Session: strings.Repeat("x", maxLabelLen+1), Tool: "t", Victim: "v", Backend: "b"},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("labels %+v validated, want rejection", bad)
		}
	}

	// Duplicate session IDs are rejected.
	if _, err := f.Add(labels, obs.New(obs.Options{}), nil); err == nil {
		t.Fatal("duplicate session ID admitted")
	}
}

// Rollups stay exact and monotone while every session's collector is
// being hammered concurrently: each scrape is internally consistent
// (fleet total == sum of session totals from the same render) and
// counters never regress between scrapes. Run under -race this is also
// the torn-read check on the snapshot path.
func TestFleetRollupConsistencyUnderChurn(t *testing.T) {
	f := NewFleet()
	const sessions = 8
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		_, col, probe := fleetSession(t, f, fmt.Sprintf("s%d", i+1), "tool", "spin", "vm")
		wg.Add(1)
		go func(col *obs.Collector, probe obs.ProbeID) {
			defer wg.Done()
			for !stop.Load() {
				col.Fire(probe, 2, 0x10)
			}
		}(col, probe)
	}

	var prevFleet float64
	for scrape := 0; scrape < 50; scrape++ {
		text, series := fleetScrape(t, f)
		var sum float64
		for i := 0; i < sessions; i++ {
			sum += series[fmt.Sprintf(`cinnamon_session_fires_total{session="s%d",tool="tool",victim="spin",backend="vm"}`, i+1)]
		}
		got := series["cinnamon_fleet_fires_total"]
		if got != sum {
			t.Fatalf("scrape %d: fleet rollup %v != session sum %v\n%s", scrape, got, sum, text)
		}
		if got < prevFleet {
			t.Fatalf("scrape %d: fleet fires regressed %v -> %v", scrape, prevFleet, got)
		}
		prevFleet = got
	}
	stop.Store(true)
	wg.Wait()
}

// The fleet endpoints: lifecycle JSON, submission delegation, readiness
// flip, and the multiplexed SSE stream with session-tagged events.
func TestFleetServerEndpoints(t *testing.T) {
	f := NewFleet()
	sess, col, probe := fleetSession(t, f, "s1", "tool", "spin", "vm")
	sess.Start()
	col.Fire(probe, 2, 0x10)

	ready := atomic.Bool{}
	ready.Store(true)
	var submitted []byte
	srv := NewFleetServer(FleetConfig{
		Fleet: f,
		Ready: func() bool { return ready.Load() },
		Submit: func(body []byte) (any, error) {
			submitted = body
			return map[string]string{"session": "s2"}, nil
		},
		Heartbeat: 20 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	// /metrics is valid exposition with the session's labels.
	resp, body := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics content-type %q", ct)
	}
	series := checkExposition(t, body)
	if series[`cinnamon_session_fires_total{session="s1",tool="tool",victim="spin",backend="vm"}`] != 1 {
		t.Fatalf("session series missing from /metrics:\n%s", body)
	}

	// /sessions lists, and narrows by ID.
	_, body = get("/sessions")
	var infos []SessionInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil || len(infos) != 1 {
		t.Fatalf("GET /sessions: %v (%s)", err, body)
	}
	if infos[0].Session != "s1" || infos[0].State != SessionRunning || infos[0].Fires != 1 {
		t.Fatalf("session info %+v", infos[0])
	}
	resp, _ = get("/sessions?session=nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session -> %d, want 404", resp.StatusCode)
	}

	// POST delegates to the scheduler hook.
	resp, err := http.Post(ts.URL+"/sessions", "application/json", strings.NewReader(`{"tool":"x","victim":"spin"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || !strings.Contains(string(submitted), `"victim":"spin"`) {
		t.Fatalf("POST /sessions: %d, body %s", resp.StatusCode, submitted)
	}

	// Readiness follows the scheduler; liveness does not.
	resp, _ = get("/healthz/ready")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready -> %d", resp.StatusCode)
	}
	ready.Store(false)
	resp, _ = get("/healthz/ready")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining ready -> %d, want 503", resp.StatusCode)
	}
	resp, _ = get("/healthz/live")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live -> %d", resp.StatusCode)
	}
	resp, _ = get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz -> %d", resp.StatusCode)
	}

	// Draining also rejects submission.
	resp, err = http.Post(ts.URL+"/sessions", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST -> %d, want 503", resp.StatusCode)
	}

	// /series parses and rolls up the last points.
	_, body = get("/series")
	var dump FleetSeriesDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil || len(dump.Sessions) != 1 {
		t.Fatalf("GET /series: %v (%s)", err, body)
	}
}

// The multiplexed /trace stream tags each event with its session and
// reports monotone drop totals on heartbeats; a session registered
// after the stream opened appears at the next tick.
func TestFleetTraceMultiplex(t *testing.T) {
	f := NewFleet()
	_, colA, pA := fleetSession(t, f, "s1", "tool", "spin", "vm")

	srv := NewFleetServer(FleetConfig{Fleet: f, Heartbeat: 15 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)

	// Late-registered session: must be tapped by a heartbeat re-attach.
	_, colB, pB := fleetSession(t, f, "s2", "tool", "loopy", "vm")

	fire := make(chan struct{})
	go func() {
		for {
			select {
			case <-fire:
				return
			case <-time.After(5 * time.Millisecond):
				colA.Fire(pA, 1, 0x10)
				colB.Fire(pB, 1, 0x20)
			}
		}
	}()
	defer close(fire)

	lines := make(chan string, 64)
	go func() {
		defer close(lines)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()

	seen := map[string]bool{}
	deadline := time.After(5 * time.Second)
	for !(seen["s1"] && seen["s2"]) {
		select {
		case <-deadline:
			t.Fatalf("timed out; saw %v", seen)
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("stream closed; saw %v", seen)
			}
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev FleetTraceEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err == nil && ev.Session != "" {
				seen[ev.Session] = true
			}
		}
	}
}
