// Package engine implements Cinnamon's instrumentation stage: it walks
// the control-flow-element hierarchy of a loaded binary, executes each
// command's analysis code and constraints, and emits one shared
// placement rule table (internal/core/placement) that the backend
// Placer lowers into the target framework after the cross-backend
// optimization passes run over it.
//
// This is the executable equivalent of the paper's generated analysis
// passes: for every command, the generated code "traverses the list of
// CFEs based on the constraints specified by the command and executes any
// analysis code", then emits the framework-specific instrumentation for
// each action (rewrite rules for Janus, snippets for Dyninst, analysis
// calls for Pin).
package engine

import (
	"fmt"
	"io"

	"repro/internal/cfg"
	"repro/internal/core/ast"
	"repro/internal/core/compile"
	"repro/internal/core/interp"
	"repro/internal/core/parser"
	"repro/internal/core/placement"
	"repro/internal/core/sem"
	"repro/internal/core/value"
	"repro/internal/isa"
	"repro/internal/obs"
)

// CompiledTool is a parsed, semantically checked and closure-compiled
// Cinnamon program.
type CompiledTool struct {
	Prog *ast.Program
	Info *sem.Info
	// Code holds the closure-compiled action and init/exit bodies (the
	// default execution path; Options.Interpret bypasses it).
	Code *compile.Program
	Src  string
}

// Compile parses, checks and closure-compiles Cinnamon source.
func Compile(src string) (*CompiledTool, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := sem.Check(prog)
	if err != nil {
		return nil, err
	}
	code, err := compile.Compile(prog, info)
	if err != nil {
		return nil, err
	}
	return &CompiledTool{Prog: prog, Info: info, Code: code, Src: src}, nil
}

// Label returns the action's backend-stable observability label:
// canonical trigger, target CFE type and source position, e.g.
// "before inst @7:3". Exported so differential oracles can key
// per-action metadata (sampling strides) against obs report rows.
func Label(ai *sem.ActionInfo, act *ast.Action) string {
	return fmt.Sprintf("%s %s @%s", ai.Canonical, ai.TargetEType, act.Pos())
}

// Placer is the backend interface: it lowers the finished placement
// rule table (see internal/core/placement) onto a target framework.
type Placer interface {
	// Name identifies the backend ("pin", "dyninst", "janus").
	Name() string
	// Modules returns the modules this backend instruments (dynamic
	// frameworks see every module; static ones only the executable).
	Modules() []*cfg.Module
	// SupportsLoops reports whether loop trigger points exist in this
	// framework (false for Pin, which has no notion of loops).
	SupportsLoops() bool
	// Lower realizes the optimized rule table in the framework:
	// probes for the rules in table order, start/end code for
	// Inits/Finis. Called once, after the optimization passes ran.
	Lower(rs *placement.RuleSet) error
}

// Options configures an instrumentation run.
type Options struct {
	// Out receives the tool's print() output.
	Out io.Writer
	// FS is the tool file system (fresh in-memory FS if nil).
	FS *interp.FS
	// Interpret executes action and init/exit bodies with the
	// tree-walking interpreter instead of the closure-compiled code —
	// the reference path the equivalence tests compare against.
	Interpret bool
	// Obs, when non-nil, receives instrumentation-time statistics
	// (actions placed, static-where filtered placements, pass
	// effects).
	Obs *obs.Collector
	// NoIROpt disables the placement-IR optimization passes
	// (where-clause hoisting, counter promotion, probe coalescing);
	// every rule then lowers through the generic mechanism.
	NoIROpt bool
	// Adaptive marks a governed run: probe coalescing is skipped so
	// every placement keeps its own control block.
	Adaptive bool
}

// Instance is the instrumented tool: its shared globals and any runtime
// errors recorded by actions during execution.
type Instance struct {
	interp  *interp.Interp
	globals *interp.Env
	errs    []error
}

// Err returns the first runtime error an action recorded, if any.
func (i *Instance) Err() error {
	if len(i.errs) > 0 {
		return i.errs[0]
	}
	return nil
}

func (i *Instance) record(err error) {
	if err != nil {
		i.errs = append(i.errs, err)
	}
}

type engineRun struct {
	tool      *CompiledTool
	placer    Placer
	prog      *cfg.Program
	in        *interp.Interp
	glob      *interp.Env
	inst      *Instance
	interpret bool
	obs       *obs.Collector
	// bindOut is the writer runtime bodies (actions, init/exit blocks)
	// bind against. It equals the interpreter's analysis-time writer
	// except under template recording, where analysis output is teed
	// into the template but runtime output must not be.
	bindOut io.Writer
	// rec, when non-nil, records the session-independent build products
	// for a reusable Template (see template.go).
	rec *templateRec
	// rs accumulates the placement table the commands emit.
	rs *placement.RuleSet
	// optimize gates where-clause deferral (and, downstream, the
	// rewriting passes).
	optimize bool
}

// Instrument runs the analysis stage of the tool over the program,
// builds the placement rule table, runs the optimization passes, and
// lowers the table via the placer. The placer's framework must be run
// afterwards to execute the instrumented program.
func Instrument(tool *CompiledTool, prog *cfg.Program, placer Placer, opts Options) (*Instance, error) {
	rs, inst, err := BuildRules(tool, prog, placer, opts)
	if err != nil {
		return nil, err
	}
	if err := placer.Lower(rs); err != nil {
		return nil, err
	}
	return inst, nil
}

// BuildRules is Instrument up to (but not including) backend lowering:
// it returns the optimized placement table, ready for Lower. Exposed
// for the rule-IR golden and differential tests.
func BuildRules(tool *CompiledTool, prog *cfg.Program, placer Placer, opts Options) (*placement.RuleSet, *Instance, error) {
	return buildRules(tool, prog, placer, opts, nil)
}

// buildRules is BuildRules with an optional template recorder attached:
// when rec is non-nil the walk additionally captures everything a later
// Instantiate needs (per-action capture snapshots, analysis output,
// build-stat deltas), without changing what the build itself produces.
func buildRules(tool *CompiledTool, prog *cfg.Program, placer Placer, opts Options, rec *templateRec) (*placement.RuleSet, *Instance, error) {
	// Preflight: backends without loop support reject loop commands (the
	// paper's loop-coverage tool "could not be translated to Pin in its
	// original form").
	if !placer.SupportsLoops() {
		var loopErr error
		var scan func(cmds []*ast.Command)
		scan = func(cmds []*ast.Command) {
			for _, c := range cmds {
				if c.EType == ast.Loop && loopErr == nil {
					loopErr = fmt.Errorf("cinnamon: %s: backend %q has no notion of loops; loop commands cannot be mapped",
						c.Pos(), placer.Name())
				}
				var nested []*ast.Command
				for _, item := range c.Body {
					if nc, ok := item.(*ast.Command); ok {
						nested = append(nested, nc)
					}
				}
				scan(nested)
			}
		}
		scan(tool.Info.Commands)
		if loopErr != nil {
			return nil, nil, loopErr
		}
	}

	// Under template recording, analysis-time output (global
	// initializers, command-body prints) is teed into the template so a
	// later Instantiate can replay it; runtime bodies bind against the
	// plain session writer so their output is never recorded.
	analysisOut := opts.Out
	buildObs := opts.Obs
	if rec != nil {
		if analysisOut == nil {
			analysisOut = &rec.analysisOut
		} else {
			analysisOut = io.MultiWriter(analysisOut, &rec.analysisOut)
		}
		buildObs = rec.col
	}
	it := interp.New(tool.Info, analysisOut, opts.FS)
	glob := interp.NewEnv(nil)
	for _, d := range tool.Info.Globals {
		if err := it.DeclareGlobal(glob, d); err != nil {
			return nil, nil, err
		}
	}
	inst := &Instance{interp: it, globals: glob}
	interpret := opts.Interpret || tool.Code == nil
	bindOut := io.Writer(it.Out)
	if rec != nil {
		bindOut = opts.Out
		if bindOut == nil {
			bindOut = io.Discard
		}
	}
	e := &engineRun{
		tool: tool, placer: placer, prog: prog,
		in: it, glob: glob, inst: inst, interpret: interpret,
		obs: buildObs, bindOut: bindOut, rec: rec,
		rs: &placement.RuleSet{}, optimize: !opts.NoIROpt,
	}

	// Commands map in program order; within a command, per-module in
	// load order, per-CFE in address order.
	for _, cmd := range tool.Info.Commands {
		for _, mod := range placer.Modules() {
			if err := e.runCommand(cmd, domain{module: mod}, glob); err != nil {
				return nil, nil, err
			}
		}
	}
	var codeInits, codeExits []*compile.Body
	if tool.Code != nil {
		codeInits, codeExits = tool.Code.Inits, tool.Code.Exits
	}
	for i, b := range tool.Info.Inits {
		fn, err := e.blockExec(b.Body, codeInits, i)
		if err != nil {
			return nil, nil, err
		}
		e.rs.Inits = append(e.rs.Inits, fn)
	}
	for i, b := range tool.Info.Exits {
		fn, err := e.blockExec(b.Body, codeExits, i)
		if err != nil {
			return nil, nil, err
		}
		e.rs.Finis = append(e.rs.Finis, fn)
	}
	if err := placement.Apply(e.rs, placement.Config{
		Optimize: e.optimize,
		Adaptive: opts.Adaptive,
		Obs:      buildObs,
	}); err != nil {
		return nil, nil, err
	}
	return e.rs, inst, nil
}

// blockExec builds the runnable form of one init/exit block: the bound
// compiled body, or the interpreter fallback under Options.Interpret.
func (e *engineRun) blockExec(body []ast.Stmt, compiled []*compile.Body, i int) (func(), error) {
	it, glob, inst := e.in, e.glob, e.inst
	if e.interpret {
		return func() {
			inst.record(it.ExecStmts(interp.NewEnv(glob), body))
		}, nil
	}
	bound, err := compiled[i].Bind(e.resolveGlobal, e.bindOut)
	if err != nil {
		return nil, err
	}
	return func() { inst.record(bound.Exec(nil)) }, nil
}

// resolveGlobal binds a compiled body's global cell to the shared slot the
// interpreter declared for it.
func (e *engineRun) resolveGlobal(ref compile.CellRef) (*value.Value, error) {
	if v := e.glob.Lookup(ref.Name); v != nil {
		return v, nil
	}
	return nil, fmt.Errorf("cinnamon: internal: unresolved global %q", ref.Name)
}

// domain is the iteration space of a command: a whole module for
// top-level commands, or the CFE instance of the enclosing command.
type domain struct {
	module *cfg.Module
	parent *value.CFERef
}

func (e *engineRun) runCommand(cmd *ast.Command, dom domain, env *interp.Env) error {
	refs, err := e.instances(cmd.EType, dom)
	if err != nil {
		return err
	}
	for _, ref := range refs {
		cmdEnv := interp.NewEnv(env)
		cmdEnv.Define(cmd.Var, value.CFEVal(ref))
		if cmd.Where != nil {
			v, err := e.in.Eval(cmdEnv, cmd.Where)
			if err != nil {
				return err
			}
			if !v.AsBool() {
				if e.obs != nil {
					e.obs.MutateBuild(func(b *obs.BuildStats) { b.StaticFiltered++ })
				}
				continue
			}
		}
		for _, item := range cmd.Body {
			switch it := item.(type) {
			case *ast.Command:
				if err := e.runCommand(it, domain{parent: ref}, cmdEnv); err != nil {
					return err
				}
			case *ast.Action:
				if err := e.placeAction(it, cmdEnv); err != nil {
					return err
				}
			case ast.Stmt:
				if err := e.in.ExecStmt(cmdEnv, it); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// instances enumerates the CFE instances of type et within the domain.
func (e *engineRun) instances(et ast.EType, dom domain) ([]*value.CFERef, error) {
	mk := func(r value.CFERef) *value.CFERef {
		r.Prog = e.prog
		return &r
	}
	var out []*value.CFERef
	addFuncChildren := func(f *cfg.Func) {
		switch et {
		case ast.Loop:
			for _, l := range f.Loops {
				out = append(out, mk(value.CFERef{Kind: ast.Loop, Loop: l, Func: f}))
			}
		case ast.BasicBlock:
			for _, b := range f.Blocks {
				out = append(out, mk(value.CFERef{Kind: ast.BasicBlock, Block: b, Func: f}))
			}
		case ast.Inst:
			for _, b := range f.Blocks {
				for _, in := range b.Insts {
					out = append(out, mk(value.CFERef{Kind: ast.Inst, Inst: in, Block: b, Func: f}))
				}
			}
		}
	}
	switch {
	case dom.module != nil:
		if et == ast.Module {
			return []*value.CFERef{mk(value.CFERef{Kind: ast.Module, Module: dom.module})}, nil
		}
		if et == ast.Func {
			for _, f := range dom.module.Funcs {
				out = append(out, mk(value.CFERef{Kind: ast.Func, Func: f}))
			}
			return out, nil
		}
		for _, f := range dom.module.Funcs {
			addFuncChildren(f)
		}
		return out, nil
	case dom.parent != nil:
		p := dom.parent
		switch p.Kind {
		case ast.Module:
			return e.instances(et, domain{module: p.Module})
		case ast.Func:
			addFuncChildren(p.Func)
			return out, nil
		case ast.Loop:
			switch et {
			case ast.Loop:
				for _, l := range p.Func.Loops {
					if l.Parent == p.Loop {
						out = append(out, mk(value.CFERef{Kind: ast.Loop, Loop: l, Func: p.Func}))
					}
				}
			case ast.BasicBlock:
				for _, b := range p.Loop.Blocks {
					out = append(out, mk(value.CFERef{Kind: ast.BasicBlock, Block: b, Func: p.Func}))
				}
			case ast.Inst:
				for _, b := range p.Loop.Blocks {
					for _, in := range b.Insts {
						out = append(out, mk(value.CFERef{Kind: ast.Inst, Inst: in, Block: b, Func: p.Func}))
					}
				}
			}
			return out, nil
		case ast.BasicBlock:
			if et == ast.Inst {
				for _, in := range p.Block.Insts {
					out = append(out, mk(value.CFERef{Kind: ast.Inst, Inst: in, Block: p.Block, Func: p.Func}))
				}
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("cinnamon: internal: invalid command domain for %s", et)
}

func (e *engineRun) placeAction(act *ast.Action, env *interp.Env) error {
	ai := e.tool.Info.Actions[act]
	if ai == nil {
		return fmt.Errorf("cinnamon: internal: unchecked action at %s", act.Pos())
	}
	slot := env.Lookup(act.Target)
	if slot == nil || slot.Kind != value.KCFE {
		return fmt.Errorf("cinnamon: internal: action target %q unbound", act.Target)
	}
	ref := slot.CFE

	// Static constraints filter at instrumentation time; dynamic ones
	// compile into a run-time guard. With the passes enabled, a
	// defer-safe static constraint is hoisted instead: its CFE inputs
	// are snapshotted by value here and the decision moves to the
	// hoisting pass, with an outcome identical to eager evaluation.
	var group *placement.WhereGroup
	var whereExpr ast.Expr
	if act.Where != nil && !ai.WhereDynamic {
		if e.optimize && e.whereDeferSafe(act.Where, env) {
			group = e.deferWhere(act.Where, env)
			whereExpr = act.Where
		} else {
			v, err := e.in.Eval(env, act.Where)
			if err != nil {
				return err
			}
			if !v.AsBool() {
				if e.obs != nil {
					e.obs.MutateBuild(func(b *obs.BuildStats) { b.StaticFiltered++ })
				}
				return nil
			}
		}
	}
	if group == nil && e.obs != nil {
		e.obs.MutateBuild(func(b *obs.BuildStats) { b.ActionsPlaced++ })
	}

	a := &placement.Action{
		Label:       Label(ai, act),
		Cost:        ai.Cost,
		Simple:      ai.Simple,
		Sample:      ai.Sample,
		DynAttrs:    ai.DynAttrs,
		NumCaptured: env.NumVarsUntil(e.glob),
	}
	if e.interpret {
		a.Exec = e.interpExec(act, ai, env)
	} else {
		exec, inline, err := e.compiledExec(act, env, a)
		if err != nil {
			return err
		}
		a.Exec = exec
		a.Inline = inline
	}
	emit := func(r *placement.Rule) {
		r.Action, r.Group, r.Where = a, group, whereExpr
		e.rs.Add(r)
	}

	switch ai.TargetEType {
	case ast.Inst:
		trig := placement.Before
		if ai.Canonical != ast.Before {
			trig = placement.After
		}
		emit(&placement.Rule{Trigger: trig, Inst: ref.Inst, Block: ref.Block})
		return nil
	case ast.BasicBlock:
		if ai.Canonical == ast.Entry {
			emit(&placement.Rule{Trigger: placement.BlockEntry, Block: ref.Block})
			return nil
		}
		// Block exit: immediately before the block's terminating
		// instruction.
		emit(&placement.Rule{Trigger: placement.Before, Inst: ref.Block.Last(), Block: ref.Block})
		return nil
	case ast.Func:
		f := ref.Func
		if len(f.Blocks) == 0 {
			return nil
		}
		if ai.Canonical == ast.Entry {
			emit(&placement.Rule{Trigger: placement.BlockEntry, Block: f.Blocks[0]})
			return nil
		}
		// Function exit: before every return (and halt, for the program
		// entry function).
		for _, b := range f.Blocks {
			last := b.Last()
			if last.Op == isa.Return || last.Op == isa.Halt {
				emit(&placement.Rule{Trigger: placement.Before, Inst: last, Block: b})
			}
		}
		return nil
	case ast.Loop:
		l := ref.Loop
		var edges []cfg.Edge
		switch ai.Canonical {
		case ast.Entry:
			edges = l.Entries
		case ast.Exit:
			edges = l.Exits
		case ast.Iter:
			edges = l.Backs
		}
		for _, ed := range edges {
			emit(&placement.Rule{Trigger: placement.Edge, From: ed.From, Block: ed.To})
		}
		return nil
	}
	return fmt.Errorf("cinnamon: internal: unplaceable action at %s", act.Pos())
}

// whereDeferSafe reports whether a static where clause may be hoisted:
// its value must be fully determined by the by-value snapshot taken at
// emission time. That holds when the expression reads only CFE-typed
// variables (snapshotted), literals, and pure operators over them —
// calls and indexing (which reach mutable analysis state or the tool
// file system) force eager evaluation.
func (e *engineRun) whereDeferSafe(where ast.Expr, env *interp.Env) bool {
	safe := true
	ast.Walk(where, func(x ast.Expr) {
		switch n := x.(type) {
		case *ast.Ident:
			slot := env.Lookup(n.Name)
			if slot == nil || slot.Kind != value.KCFE {
				safe = false
			}
		case *ast.IntLit, *ast.StringLit, *ast.CharLit, *ast.BoolLit,
			*ast.NullLit, *ast.OpcodeLit:
		case *ast.BinaryExpr, *ast.UnaryExpr, *ast.FieldExpr, *ast.IsTypeExpr:
		default:
			safe = false
		}
	})
	return safe
}

// deferWhere packages a defer-safe static where clause as a
// WhereGroup: the referenced CFE variables are copied into an isolated
// scope now, so the predicate evaluates later to exactly what eager
// evaluation would have produced, immune to analysis-time mutation.
func (e *engineRun) deferWhere(where ast.Expr, env *interp.Env) *placement.WhereGroup {
	weEnv := interp.NewEnv(nil)
	ast.Walk(where, func(x ast.Expr) {
		if id, ok := x.(*ast.Ident); ok {
			if slot := env.Lookup(id.Name); slot != nil {
				weEnv.Define(id.Name, value.Copy(*slot))
			}
		}
	})
	in := e.in
	return &placement.WhereGroup{Eval: func() (bool, error) {
		v, err := in.Eval(weEnv, where)
		if err != nil {
			return false, err
		}
		return v.AsBool(), nil
	}}
}

// interpExec builds an action executor on the tree-walking path: the
// enclosing analysis scopes are captured by value into a snapshot
// (globals stay shared), and every firing re-walks the body AST.
func (e *engineRun) interpExec(act *ast.Action, ai *sem.ActionInfo, env *interp.Env) func(dyn []value.Value) {
	snap := interp.Snapshot(env, e.glob)
	in := e.in
	inst := e.inst
	where := act.Where
	dynWhere := ai.WhereDynamic
	body := act.Body
	attrs := ai.DynAttrs
	return func(dyn []value.Value) {
		var m map[string]value.Value
		if len(dyn) > 0 {
			m = make(map[string]value.Value, len(dyn))
			for i, da := range attrs {
				if i < len(dyn) {
					m[da.Var+"."+da.Attr] = dyn[i]
				}
			}
		}
		runEnv := interp.NewEnv(snap)
		runEnv.SetDyn(m)
		if dynWhere && where != nil {
			v, err := in.Eval(runEnv, where)
			if err != nil {
				inst.record(err)
				return
			}
			if !v.AsBool() {
				return
			}
		}
		if err := in.ExecStmts(runEnv, body); err != nil {
			inst.record(err)
		}
	}
}

// compiledExec builds an action executor on the closure-compiled path:
// the pre-lowered body is bound once per placement — captures copied by
// value, globals shared — and every firing runs the closure chain on the
// reused frame. Under template recording, the captured values are
// additionally snapshotted against the placed Action so Instantiate can
// rebind the same body with equal captures for another session.
func (e *engineRun) compiledExec(act *ast.Action, env *interp.Env, a *placement.Action) (func(dyn []value.Value), *placement.InlineInfo, error) {
	body := e.tool.Code.Actions[act]
	if body == nil {
		return nil, nil, fmt.Errorf("cinnamon: internal: uncompiled action at %s", act.Pos())
	}
	var caps map[string]value.Value
	if e.rec != nil {
		caps = make(map[string]value.Value)
	}
	resolve := func(ref compile.CellRef) (*value.Value, error) {
		if ref.Global {
			return e.resolveGlobal(ref)
		}
		slot := env.Lookup(ref.Name)
		if slot == nil {
			return nil, fmt.Errorf("cinnamon: internal: unresolved capture %q at %s", ref.Name, act.Pos())
		}
		cell := new(value.Value)
		*cell = value.Copy(*slot)
		if caps != nil {
			caps[ref.Name] = value.Copy(*slot)
		}
		return cell, nil
	}
	bound, err := body.Bind(resolve, e.bindOut)
	if err != nil {
		return nil, nil, err
	}
	if e.rec != nil {
		e.rec.actions[a] = &actionRec{act: act, caps: caps}
	}
	inst := e.inst
	var inline *placement.InlineInfo
	if fast := bound.FastExec(); fast != nil {
		inline = &placement.InlineInfo{Exec: func(dyn []value.Value) {
			if err := fast(dyn); err != nil {
				inst.record(err)
			}
		}}
		if delta, flush, ok := bound.CounterShape(); ok {
			inline.Counter, inline.Delta, inline.Flush = true, delta, flush
			inline.Cell = bound.CounterCell()
		}
	}
	return func(dyn []value.Value) {
		if err := bound.Exec(dyn); err != nil {
			inst.record(err)
		}
	}, inline, nil
}
