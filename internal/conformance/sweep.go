package conformance

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// CheckSeed generates the (program, victim) pair for one seed and runs
// it through the differential matrix. Program and victim are derived
// from the same seed through decorrelated streams, so one integer
// reproduces the whole pair.
func CheckSeed(seed uint64) (*PairResult, error) {
	return RunPair(GenProgram(seed), GenVictim(seed))
}

// SweepResult summarizes a seed sweep.
type SweepResult struct {
	// Seeds is how many seeds actually ran (the budget may cut the
	// sweep short).
	Seeds int
	// Cells is how many backend x tier runs executed.
	Cells int
	// Legal counts legal divergences by oracle class.
	Legal map[string]int
	// SamplingChecks counts sampled placements verified against their
	// unsampled twins across the sweep.
	SamplingChecks int
	// Failures lists every pair with an illegal divergence.
	Failures []*PairResult
	// Errors lists pairs that could not be set up at all (generator
	// bugs: the tool did not compile or the victim did not assemble).
	Errors []error
	// TimedOut reports whether the budget expired before all seeds ran.
	TimedOut bool
}

// Summary renders a stable one-line-per-class digest.
func (s *SweepResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d seeds, %d cells, %d sampled placements, %d illegal, %d errors\n",
		s.Seeds, s.Cells, s.SamplingChecks, len(s.Failures), len(s.Errors))
	classes := make([]string, 0, len(s.Legal))
	for c := range s.Legal {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Fprintf(&b, "  legal %-16s %d\n", c, s.Legal[c])
	}
	return b.String()
}

// Sweep runs seeds [start, start+n) through the differential matrix,
// stopping early when the deadline passes (zero deadline = no budget).
func Sweep(start, n uint64, deadline time.Time) *SweepResult {
	res := &SweepResult{Legal: map[string]int{}}
	for seed := start; seed < start+n; seed++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.TimedOut = true
			break
		}
		pr, err := CheckSeed(seed)
		if err != nil {
			res.Errors = append(res.Errors, fmt.Errorf("seed %d: %w", seed, err))
			res.Seeds++
			continue
		}
		res.Seeds++
		res.Cells += len(pr.Results)
		res.SamplingChecks += pr.SamplingChecks
		for _, d := range pr.Divergences {
			if d.Legal {
				res.Legal[d.Class]++
			}
		}
		if len(pr.Illegal()) > 0 {
			res.Failures = append(res.Failures, pr)
		}
	}
	return res
}

// ShrinkFailure minimizes the failing pair's tool program while keeping
// the same victim and at least one illegal divergence, returning the
// minimal source. The predicate is deterministic, so the same failure
// always shrinks to the same minimal program.
func ShrinkFailure(pr *PairResult) string {
	return Shrink(pr.Program.Source, func(src string) bool {
		rr, err := RunPair(&Program{Source: src}, pr.Victim)
		if err != nil {
			return false
		}
		return len(rr.Illegal()) > 0
	})
}

// DescribeFailure renders a reproduction report for an illegal
// divergence: the seed, the oracle verdicts, and the (shrunk) sources.
func DescribeFailure(pr *PairResult, shrunk string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CONFORMANCE FAILURE (seed %d)\n", pr.Program.Seed)
	fmt.Fprintf(&b, "traits: multi-module=%v unrecoverable=%v loops=%v\n",
		pr.Traits.MultiModule, pr.Traits.Unrecoverable, pr.Traits.UsesLoops)
	for _, d := range pr.Divergences {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	b.WriteString("--- minimal tool program ---\n")
	b.WriteString(strings.TrimRight(shrunk, "\n") + "\n")
	for i, src := range pr.Victim.Srcs {
		fmt.Fprintf(&b, "--- victim module %d ---\n", i)
		b.WriteString(strings.TrimRight(src, "\n") + "\n")
	}
	fmt.Fprintf(&b, "replay: go run ./cmd/conformance -start %d -seeds 1\n", pr.Program.Seed)
	return b.String()
}
