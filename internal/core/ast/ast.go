// Package ast defines the abstract syntax tree of the Cinnamon language,
// mirroring the grammar in Figure 3 of the paper: a program is a sequence
// of global declarations, command blocks over control-flow elements, and
// init/exit blocks; commands contain analysis statements, nested commands
// and actions; actions contain C-style statements.
package ast

import (
	"repro/internal/core/token"
)

// Node is any syntax-tree node.
type Node interface {
	Pos() token.Pos
}

// EType identifies a control-flow-element type.
type EType int

// Control-flow-element types, outermost to innermost.
const (
	Module EType = iota
	Func
	Loop
	BasicBlock
	Inst
)

var etypeNames = [...]string{"module", "func", "loop", "basicblock", "inst"}

func (e EType) String() string { return etypeNames[e] }

// Level returns the nesting level of the element type (module outermost =
// 0). Commands may only nest strictly downward.
func (e EType) Level() int { return int(e) }

// Trigger identifies an action trigger point.
type Trigger int

// Trigger points. For instructions, Before/After; for blocks, functions
// and loops, Entry/Exit (the paper's examples also spell block entry as
// "before", which the parser accepts and canonicalizes); Iter applies to
// loops only.
const (
	Before Trigger = iota
	After
	Entry
	Exit
	Iter
)

var triggerNames = [...]string{"before", "after", "entry", "exit", "iter"}

func (t Trigger) String() string { return triggerNames[t] }

// TypeSpec is a parsed type specification: a named base type, optionally
// with dict/vector parameters or a static array length.
type TypeSpec struct {
	P token.Pos
	// Kind is the type keyword token (TINT, TDICT, ...).
	Kind token.Kind
	// Key and Elem are the dict key/value or vector element types.
	Key, Elem *TypeSpec
	// ArrayLen is the static array length (0 = not an array). Arrays are
	// declared with a bracket suffix on the declarator: `int hits[16];`.
	ArrayLen int
}

func (t *TypeSpec) Pos() token.Pos { return t.P }

// VarDecl is a variable declaration with an optional initializer.
// File declarations use constructor syntax: `file outfile("name");` —
// the file name lands in Args.
type VarDecl struct {
	P    token.Pos
	Type *TypeSpec
	Name string
	Init Expr   // nil if none
	Args []Expr // constructor arguments (file declarations)
}

func (d *VarDecl) Pos() token.Pos { return d.P }

// Program is a parsed Cinnamon program. Items preserves source order of
// declarations, commands and init/exit blocks (command order is
// semantically significant: mapping happens in program order).
type Program struct {
	Items []TopItem
}

// TopItem is a top-level program item: *VarDecl, *Command, *InitBlock or
// *ExitBlock.
type TopItem interface{ Node }

// InitBlock is the program's init block: code instrumented to run before
// the first application instruction.
type InitBlock struct {
	P    token.Pos
	Body []Stmt
}

func (b *InitBlock) Pos() token.Pos { return b.P }

// ExitBlock is the program's exit block: code instrumented to run after
// the application's last instruction.
type ExitBlock struct {
	P    token.Pos
	Body []Stmt
}

func (b *ExitBlock) Pos() token.Pos { return b.P }

// Command is a command block: it selects instances of a control-flow
// element (optionally filtered by a where-constraint) and contains, in
// source order, analysis statements, nested commands and actions.
type Command struct {
	P     token.Pos
	EType EType
	// Var is the name binding the selected CFE instance.
	Var string
	// Where is the selection constraint (nil if none). It is evaluated
	// at analysis/instrumentation time and must therefore be static.
	Where Expr
	Body  []CmdItem
}

func (c *Command) Pos() token.Pos { return c.P }

// CmdItem is an item inside a command body: a Stmt (analysis code), a
// nested *Command, or an *Action.
type CmdItem interface{ Node }

// Action is instrumentation code attached to a trigger point of a CFE.
type Action struct {
	P       token.Pos
	Trigger Trigger
	// Target names the CFE variable the action is attached to; it must
	// be the variable of an enclosing command.
	Target string
	// Where is the action constraint (nil if none). Static constraints
	// are evaluated at instrumentation time; dynamic constraints compile
	// into a run-time guard around the body.
	Where Expr
	// Sample is the sampling stride (`sample N`): the action body runs on
	// every Nth hit of each placement. 0 (or 1) means every hit.
	Sample int64
	Body   []Stmt
}

func (a *Action) Pos() token.Pos { return a.P }

// Stmt is a statement node.
type Stmt interface{ Node }

// DeclStmt is a declaration statement.
type DeclStmt struct {
	Decl *VarDecl
}

func (s *DeclStmt) Pos() token.Pos { return s.Decl.P }

// AssignStmt is `lvalue = expr;`.
type AssignStmt struct {
	P   token.Pos
	LHS Expr
	RHS Expr
}

func (s *AssignStmt) Pos() token.Pos { return s.P }

// ExprStmt is an expression evaluated for effect (a call).
type ExprStmt struct {
	X Expr
}

func (s *ExprStmt) Pos() token.Pos { return s.X.Pos() }

// IfStmt is `if (cond) { ... } else { ... }`.
type IfStmt struct {
	P    token.Pos
	Cond Expr
	Then []Stmt
	Else []Stmt // nil if no else
}

func (s *IfStmt) Pos() token.Pos { return s.P }

// ForStmt is `for (init?; cond?; post?) { ... }`.
type ForStmt struct {
	P    token.Pos
	Init Stmt // nil, *DeclStmt or *AssignStmt
	Cond Expr // nil means true
	Post Stmt // nil or *AssignStmt
	Body []Stmt
}

func (s *ForStmt) Pos() token.Pos { return s.P }

// Expr is an expression node.
type Expr interface{ Node }

// Ident is a name reference.
type Ident struct {
	P    token.Pos
	Name string
}

func (e *Ident) Pos() token.Pos { return e.P }

// IntLit is an integer literal.
type IntLit struct {
	P   token.Pos
	Val int64
}

func (e *IntLit) Pos() token.Pos { return e.P }

// StringLit is a string literal.
type StringLit struct {
	P   token.Pos
	Val string
}

func (e *StringLit) Pos() token.Pos { return e.P }

// CharLit is a character literal.
type CharLit struct {
	P   token.Pos
	Val byte
}

func (e *CharLit) Pos() token.Pos { return e.P }

// BoolLit is true/false.
type BoolLit struct {
	P   token.Pos
	Val bool
}

func (e *BoolLit) Pos() token.Pos { return e.P }

// NullLit is NULL.
type NullLit struct {
	P token.Pos
}

func (e *NullLit) Pos() token.Pos { return e.P }

// OpcodeLit is an opcode keyword used as a value (Load, Call, ...).
type OpcodeLit struct {
	P    token.Pos
	Name string
}

func (e *OpcodeLit) Pos() token.Pos { return e.P }

// BinaryExpr is `x op y`.
type BinaryExpr struct {
	P    token.Pos
	Op   token.Kind
	X, Y Expr
}

func (e *BinaryExpr) Pos() token.Pos { return e.P }

// UnaryExpr is `!x` or `-x`.
type UnaryExpr struct {
	P  token.Pos
	Op token.Kind
	X  Expr
}

func (e *UnaryExpr) Pos() token.Pos { return e.P }

// IndexExpr is `x[i]` (dict, vector or array indexing).
type IndexExpr struct {
	P     token.Pos
	X     Expr
	Index Expr
}

func (e *IndexExpr) Pos() token.Pos { return e.P }

// FieldExpr is `x.name`: CFE attribute access (I.opcode) or the receiver
// part of a method call (v.add).
type FieldExpr struct {
	P    token.Pos
	X    Expr
	Name string
}

func (e *FieldExpr) Pos() token.Pos { return e.P }

// CallExpr is `f(args)` for builtins (print, writeToFile) or
// `recv.method(args)` for container/file methods.
type CallExpr struct {
	P    token.Pos
	Fun  Expr // *Ident or *FieldExpr
	Args []Expr
}

func (e *CallExpr) Pos() token.Pos { return e.P }

// IsTypeExpr is `x IsType mem|reg|const`: the storage-type test on an
// instruction operand.
type IsTypeExpr struct {
	P token.Pos
	X Expr
	// OpType is the storage keyword token (KMEM, KREG, KCONST).
	OpType token.Kind
}

func (e *IsTypeExpr) Pos() token.Pos { return e.P }

// Walk calls fn for every node in the expression tree rooted at e,
// parents before children. It is used by semantic analysis to classify
// expressions and collect attribute uses.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinaryExpr:
		Walk(x.X, fn)
		Walk(x.Y, fn)
	case *UnaryExpr:
		Walk(x.X, fn)
	case *IndexExpr:
		Walk(x.X, fn)
		Walk(x.Index, fn)
	case *FieldExpr:
		Walk(x.X, fn)
	case *CallExpr:
		Walk(x.Fun, fn)
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *IsTypeExpr:
		Walk(x.X, fn)
	}
}

// WalkStmts calls fn for every statement in the list, recursing into
// nested statement bodies, and visits every expression with exprFn (both
// may be nil).
func WalkStmts(stmts []Stmt, fn func(Stmt), exprFn func(Expr)) {
	walkExpr := func(e Expr) {
		if exprFn != nil {
			Walk(e, exprFn)
		}
	}
	var walk func(s Stmt)
	walk = func(s Stmt) {
		if s == nil {
			return
		}
		if fn != nil {
			fn(s)
		}
		switch x := s.(type) {
		case *DeclStmt:
			walkExpr(x.Decl.Init)
			for _, a := range x.Decl.Args {
				walkExpr(a)
			}
		case *AssignStmt:
			walkExpr(x.LHS)
			walkExpr(x.RHS)
		case *ExprStmt:
			walkExpr(x.X)
		case *IfStmt:
			walkExpr(x.Cond)
			for _, t := range x.Then {
				walk(t)
			}
			for _, t := range x.Else {
				walk(t)
			}
		case *ForStmt:
			walk(x.Init)
			walkExpr(x.Cond)
			walk(x.Post)
			for _, t := range x.Body {
				walk(t)
			}
		}
	}
	for _, s := range stmts {
		walk(s)
	}
}

// CountStmts returns the number of statements in the list, counting
// nested bodies once (a static size measure used for the cost model and
// for Table I line counting cross-checks).
func CountStmts(stmts []Stmt) int {
	n := 0
	WalkStmts(stmts, func(Stmt) { n++ }, nil)
	return n
}
