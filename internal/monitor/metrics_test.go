package monitor

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// checkExposition validates Prometheus text-exposition conformance
// line by line — HELP and TYPE precede a family's samples, counters end
// in _total, no duplicate series, parseable values — and returns the
// series map (metric name + rendered labels → value) for cross-scrape
// assertions.
func checkExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	series := map[string]float64{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Errorf("line %d: HELP without help text: %q", ln+1, line)
			}
			helpSeen[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := f[2], f[3]
			if !helpSeen[name] {
				t.Errorf("line %d: TYPE %s before its HELP", ln+1, name)
			}
			if typ != "counter" && typ != "gauge" {
				t.Errorf("line %d: unexpected type %q", ln+1, typ)
			}
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				t.Errorf("line %d: counter %s lacks _total suffix", ln+1, name)
			}
			if _, dup := typeSeen[name]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			typeSeen[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if typeSeen[name] == "" {
			t.Errorf("line %d: sample for %s before its TYPE", ln+1, name)
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("line %d: malformed sample: %q", ln+1, line)
		}
		key := line[:sp]
		if strings.Contains(key, "{") && !strings.HasSuffix(key, "}") {
			t.Errorf("line %d: unbalanced label braces: %q", ln+1, line)
		}
		val, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Errorf("line %d: unparseable value: %q", ln+1, line)
		}
		if _, dup := series[key]; dup {
			t.Errorf("line %d: duplicate series %s", ln+1, key)
		}
		series[key] = val
	}
	return series
}

func scrape(t *testing.T, snap *obs.Stats, col *obs.Collector) (string, map[string]float64) {
	t.Helper()
	var b strings.Builder
	writeMetrics(&b, snap, col)
	return b.String(), checkExposition(t, b.String())
}

func TestMetricsExpositionConformance(t *testing.T) {
	col := obs.New(obs.Options{TraceCap: 2})
	a := col.RegisterProbe(obs.ProbeMeta{Label: "before inst @7:3", Trigger: obs.TriggerBefore, Mechanism: obs.MechCleanCall})
	b := col.RegisterProbe(obs.ProbeMeta{Label: "before inst @7:3", Trigger: obs.TriggerBefore, Mechanism: obs.MechCleanCall})
	e := col.RegisterProbe(obs.ProbeMeta{Label: "edge check", Trigger: obs.TriggerEdge, Mechanism: obs.MechInlinedCall})
	col.MutateBuild(func(s *obs.BuildStats) { s.ActionsPlaced = 2; s.CleanCalls = 2; s.InlinedCalls = 1 })
	col.Fire(a, 10, 0x100)
	col.Fire(b, 10, 0x104)
	col.Fire(e, 4, 0x200)
	col.Fire(obs.NoProbe, 7, 0x300)

	text, series := scrape(t, col.Snapshot("pin"), col)

	// Same-label placements aggregate into one series.
	key := `cinnamon_probe_fires_total{backend="pin",probe="before inst @7:3",trigger="before",mechanism="clean-call"}`
	if series[key] != 2 {
		t.Fatalf("aggregated fires = %v, want 2\n%s", series[key], text)
	}
	if series[`cinnamon_probe_cycles_total{backend="pin",probe="edge check",trigger="edge",mechanism="inlined-call"}`] != 4 {
		t.Fatalf("edge cycles missing\n%s", text)
	}
	if series[`cinnamon_untracked_fires_total{backend="pin"}`] != 1 ||
		series[`cinnamon_untracked_cycles_total{backend="pin"}`] != 7 {
		t.Fatalf("untracked bucket not exported\n%s", text)
	}
	if series[`cinnamon_build_clean_calls{backend="pin"}`] != 2 {
		t.Fatalf("build stats not exported\n%s", text)
	}
	if _, ok := series[`cinnamon_trace_subscribers{backend="pin"}`]; !ok {
		t.Fatalf("subscriber gauge missing\n%s", text)
	}
}

func TestMetricsLabelEscaping(t *testing.T) {
	col := obs.New(obs.Options{})
	id := col.RegisterProbe(obs.ProbeMeta{
		Label:     "odd\"label\\with\nnewline",
		Trigger:   obs.TriggerBefore,
		Mechanism: obs.MechSnippet,
	})
	col.Fire(id, 1, 0)

	text, series := scrape(t, col.Snapshot("dyninst"), col)

	want := `cinnamon_probe_fires_total{backend="dyninst",probe="odd\"label\\with\nnewline",trigger="before",mechanism="snippet"}`
	if series[want] != 1 {
		t.Fatalf("escaped series not found; exposition:\n%s", text)
	}
	if strings.Contains(text, "odd\"label") || strings.Count(text, "\nnewline") > 0 {
		t.Fatalf("raw unescaped label leaked into exposition:\n%s", text)
	}
}

func TestMetricsMonotoneAcrossScrapes(t *testing.T) {
	col := obs.New(obs.Options{TraceCap: 2})
	id := col.RegisterProbe(obs.ProbeMeta{Label: "hot", Trigger: obs.TriggerBefore, Mechanism: obs.MechCleanCall})

	col.Fire(id, 3, 0x10)
	_, first := scrape(t, col.Snapshot("vm"), col)

	for i := 0; i < 100; i++ {
		col.Fire(id, 3, 0x10)
	}
	col.NoteTranslation(50)
	_, second := scrape(t, col.Snapshot("vm"), col)

	for key, v1 := range first {
		if !strings.Contains(key, "_total") {
			continue
		}
		if v2, ok := second[key]; !ok || v2 < v1 {
			t.Errorf("counter %s went %v -> %v (missing or decreased)", key, v1, v2)
		}
	}
	key := `cinnamon_probe_fires_total{backend="vm",probe="hot",trigger="before",mechanism="clean-call"}`
	if first[key] != 1 || second[key] != 101 {
		t.Fatalf("fires %v -> %v, want 1 -> 101", first[key], second[key])
	}
	if second[`cinnamon_translated_blocks_total{backend="vm"}`] != 1 {
		t.Fatalf("translation counter not exported")
	}
}
