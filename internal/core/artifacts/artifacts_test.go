package artifacts

import (
	"sync"
	"testing"

	"repro/internal/progs"
)

func TestToolCacheKeyedBySource(t *testing.T) {
	c := New(Options{})
	srcA := progs.MustSource(progs.InstCountBasic)
	srcB := progs.MustSource(progs.OpcodeMix)

	a1, lk, err := c.Tool(srcA)
	if err != nil {
		t.Fatalf("Tool(a): %v", err)
	}
	if lk.Hit {
		t.Fatalf("first lookup reported a hit")
	}
	a2, lk2, err := c.Tool(srcA)
	if err != nil {
		t.Fatalf("Tool(a) again: %v", err)
	}
	if !lk2.Hit {
		t.Fatalf("second lookup of same source missed")
	}
	if a1 != a2 {
		t.Fatalf("same source produced distinct tool pointers")
	}
	b, lkb, err := c.Tool(srcB)
	if err != nil {
		t.Fatalf("Tool(b): %v", err)
	}
	if lkb.Hit {
		t.Fatalf("different source reported a hit")
	}
	if b == a1 {
		t.Fatalf("different sources shared a tool entry")
	}

	s := c.Stats()
	if s.ToolHits != 1 || s.ToolMisses != 2 || s.Tools != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses / 2 live", s)
	}
}

func TestToolCacheCompileError(t *testing.T) {
	c := New(Options{})
	if _, _, err := c.Tool("inst I { this is not cinnamon"); err == nil {
		t.Fatalf("expected compile error")
	}
	// Errors are not cached: a later lookup of the same bad source
	// recompiles and fails again rather than serving a nil tool.
	if _, _, err := c.Tool("inst I { this is not cinnamon"); err == nil {
		t.Fatalf("expected compile error on retry")
	}
	if s := c.Stats(); s.Tools != 0 {
		t.Fatalf("failed compile left %d live entries", s.Tools)
	}
}

func TestVictimCacheKeyedByNameAndLoop(t *testing.T) {
	c := New(Options{})
	v1, lk, err := c.Victim("spin", 8)
	if err != nil {
		t.Fatalf("Victim: %v", err)
	}
	if lk.Hit {
		t.Fatalf("first victim lookup reported a hit")
	}
	v2, lk2, err := c.Victim("spin", 8)
	if err != nil {
		t.Fatalf("Victim again: %v", err)
	}
	if !lk2.Hit || v1 != v2 {
		t.Fatalf("same (victim, loop) did not share (hit=%v, same=%v)", lk2.Hit, v1 == v2)
	}

	// A different loop count changes the assembled module; it must get
	// its own entry, never the loop=8 build.
	v3, lk3, err := c.Victim("spin", 9)
	if err != nil {
		t.Fatalf("Victim loop=9: %v", err)
	}
	if lk3.Hit || v3 == v1 || v3.Prog == v1.Prog {
		t.Fatalf("different loop count shared the cached victim")
	}

	v4, _, err := c.Victim("loopy", 8)
	if err != nil {
		t.Fatalf("Victim loopy: %v", err)
	}
	if v4 == v1 {
		t.Fatalf("different victims shared an entry")
	}

	if s := c.Stats(); s.VictimHits != 1 || s.VictimMisses != 3 || s.Victims != 3 {
		t.Fatalf("stats = %+v, want 1 hit / 3 misses / 3 live", s)
	}
}

func TestTemplateKeyOptionsDoNotShare(t *testing.T) {
	c := New(Options{})
	tool, _, err := c.Tool(progs.MustSource(progs.InstCountBasic))
	if err != nil {
		t.Fatalf("Tool: %v", err)
	}
	v, _, err := c.Victim("spin", 4)
	if err != nil {
		t.Fatalf("Victim: %v", err)
	}

	base := TemplateKey{Tool: tool, Prog: v.Prog, Backend: "pin"}
	variants := []TemplateKey{
		base,
		{Tool: tool, Prog: v.Prog, Backend: "dyninst"},
		{Tool: tool, Prog: v.Prog, Backend: "pin", NoIROpt: true},
		{Tool: tool, Prog: v.Prog, Backend: "pin", Adaptive: true},
		{Tool: tool, Prog: v.Prog, Backend: "pin", PinLoopDetection: true},
	}
	// Distinct option tuples must resolve to distinct slots: storing a
	// sentinel under one key must not make any other key hit.
	for i, k := range variants {
		if _, ok := c.Template(k); ok {
			t.Fatalf("variant %d hit an empty cache", i)
		}
	}
	if ev := c.PutTemplate(base, nil); ev != 0 {
		t.Fatalf("nil template insert evicted %d", ev)
	}
	if _, ok := c.Template(base); ok {
		t.Fatalf("nil template was stored")
	}
}

func TestEvictionBoundsAndCounters(t *testing.T) {
	c := New(Options{VictimCap: 2})
	loops := []int{1, 2, 3, 4}
	for _, n := range loops {
		if _, _, err := c.Victim("spin", n); err != nil {
			t.Fatalf("Victim loop=%d: %v", n, err)
		}
	}
	s := c.Stats()
	if s.Victims != 2 {
		t.Fatalf("live victims = %d, want 2 (cap)", s.Victims)
	}
	if s.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", s.Evictions)
	}
	// LRU: loop=3 and loop=4 survive; loop=1 was evicted first.
	if _, lk, err := c.Victim("spin", 4); err != nil || !lk.Hit {
		t.Fatalf("most recent entry evicted (hit=%v err=%v)", lk.Hit, err)
	}
	if _, lk, err := c.Victim("spin", 1); err != nil || lk.Hit {
		t.Fatalf("oldest entry survived past cap (hit=%v err=%v)", lk.Hit, err)
	}
}

func TestConcurrentLookupsConverge(t *testing.T) {
	c := New(Options{})
	src := progs.MustSource(progs.LoopCoverage)
	const workers = 8
	tools := make([]any, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tool, _, err := c.Tool(src)
			if err != nil {
				t.Errorf("Tool: %v", err)
				return
			}
			v, _, err := c.Victim("spin", 16)
			if err != nil {
				t.Errorf("Victim: %v", err)
				return
			}
			tools[i] = [2]any{tool, v}
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if tools[i] != tools[0] {
			t.Fatalf("worker %d bound different artifacts than worker 0", i)
		}
	}
	if s := c.Stats(); s.Tools != 1 || s.Victims != 1 {
		t.Fatalf("racing lookups left %d tools / %d victims, want 1/1", s.Tools, s.Victims)
	}
}
