package native

import (
	"fmt"
	"io"

	"repro/internal/cfg"
	"repro/internal/pin"
	"repro/internal/vm"
)

// Use-after-free monitoring written directly against the Pin API (the
// native equivalent of Figure 7): track malloc'd ranges, mark them freed,
// and check every load/store effective address. The analysis routines
// contain branches and map lookups, so Pin cannot inline them: they run
// as clean calls, just like the generated tool's callbacks.
func init() { register("pin", "useafterfree", pinUseAfterFree) }

func pinUseAfterFree(prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error) {
	p := pin.New(prog, pin.Config{Fuel: fuel})
	freed := make(map[uint64]bool)
	baseTable := make(map[uint64]uint64)
	var size uint64

	recordSize := pin.Routine{
		Fn:   func(args []uint64) { size = args[0] },
		Cost: 1 * stmtCost,
	}
	recordAlloc := pin.Routine{
		Fn: func(args []uint64) {
			base := args[0]
			for a := base; a < base+size; a++ {
				baseTable[a] = base
			}
			freed[base] = false
		},
		Cost: 6 * stmtCost,
	}
	recordFree := pin.Routine{
		Fn:   func(args []uint64) { freed[args[0]] = true },
		Cost: 2 * stmtCost,
	}
	checkAccess := pin.Routine{
		Fn: func(args []uint64) {
			if base, ok := baseTable[args[0]]; ok {
				if freed[base] {
					fmt.Fprintln(out, "ERROR: use after free access")
				}
			}
		},
		Cost: 6 * stmtCost,
	}

	p.INSAddInstrumentFunction(func(ins pin.INS) {
		switch {
		case ins.IsCall() && ins.DirectTargetName() == "malloc":
			must(ins.InsertCall(pin.IPointBefore, recordSize, pin.FuncArg(1)))
			must(ins.InsertCall(pin.IPointAfter, recordAlloc, pin.RetVal()))
		case ins.IsCall() && ins.DirectTargetName() == "free":
			must(ins.InsertCall(pin.IPointBefore, recordFree, pin.FuncArg(1)))
		case ins.IsMemoryRead() || ins.IsMemoryWrite():
			must(ins.InsertCall(pin.IPointBefore, checkAccess, pin.MemoryEA()))
		}
	})
	return p.Run()
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
