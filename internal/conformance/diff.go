package conformance

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/core/artifacts"
	"repro/internal/core/ast"
	"repro/internal/core/backend"
	"repro/internal/core/engine"
	"repro/internal/obj"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Cell identifies one run configuration in the differential matrix:
// a backend crossed with an action execution tier (compiled closures vs
// the tree-walking interpreter) and a machine execution tier (translated
// block programs vs the per-instruction reference loop), plus the Pin
// loop-detection extension.
type Cell struct {
	Backend       string
	Interpret     bool
	LoopDetection bool
	// VMInterp runs the machine's interpreted tier instead of the
	// translated default (vm.ExecInterpreted).
	VMInterp bool
	// NoInline runs the translated tier with the action-inlining layer
	// (specialized thunks, promoted counters, probe+op fusion) disabled.
	NoInline bool
	// NoIROpt runs with the placement-IR optimization passes
	// (where-clause hoisting, counter promotion, probe coalescing)
	// disabled.
	NoIROpt bool
}

func (c Cell) String() string {
	tier := "compiled"
	if c.Interpret {
		tier = "interp"
	}
	s := fmt.Sprintf("%s/%s", c.Backend, tier)
	if c.LoopDetection {
		s = fmt.Sprintf("%s+loopdet/%s", c.Backend, tier)
	}
	if c.VMInterp {
		s += "/vm-interp"
	}
	if c.NoInline {
		s += "/no-inline"
	}
	if c.NoIROpt {
		s += "/no-ir-opt"
	}
	return s
}

// RunResult is everything observable about one cell's run: the error (if
// the backend refused or failed), the tool's print output, the machine
// counters, and per-probe fire counts keyed by the backend-stable action
// label from the obs layer.
type RunResult struct {
	Cell       Cell
	Err        string
	Output     string
	Cycles     uint64
	Insts      uint64
	ExitCode   uint64
	Fires      map[string]uint64
	TotalFires uint64
}

// Traits are the structural properties of a (program, victim) pair the
// oracle conditions its legal-divergence rules on. They are derived from
// the compiled tool and the loaded binary, never trusted from metadata,
// so corpus replays classify exactly like fresh generations.
type Traits struct {
	// MultiModule: the victim loads more than one module, so Pin (which
	// instruments shared libraries) legally observes more events than
	// the executable-only backends.
	MultiModule bool
	// Unrecoverable: control-flow recovery of the executable is
	// incomplete, so Dyninst legally refuses the binary.
	Unrecoverable bool
	// UsesLoops: the tool has a loop command, so plain Pin legally
	// refuses the program (no notion of loops).
	UsesLoops bool
}

// Divergence classes. The legal ones encode the paper's Figure 12
// footnotes; everything else is a conformance failure.
const (
	// ClassTier: compiled and interpreted tiers of the same backend
	// disagree. Never legal — the tiers must be indistinguishable.
	ClassTier = "tier-mismatch"
	// ClassInline: the translated tier with and without the
	// action-inlining layer disagree. Never legal — inlining must be
	// invisible in every observable.
	ClassInline = "inline-mismatch"
	// ClassIROpt: runs with and without the placement-IR optimization
	// passes disagree. Never legal — hoisting, counter promotion and
	// probe coalescing must be invisible in every observable.
	ClassIROpt = "ir-opt-mismatch"
	// ClassRef: the reference backend (Janus) itself failed.
	ClassRef = "reference-failed"
	// ClassPinLoops: plain Pin refused a loop command. Legal.
	ClassPinLoops = "pin-loop-skip"
	// ClassPinLibs: Pin observed more than the executable-only backends
	// on a multi-module victim. Legal while fire counts dominate the
	// reference and the machine counters agree.
	ClassPinLibs = "pin-shared-libs"
	// ClassDyninstCFG: Dyninst refused a binary with unrecoverable
	// control flow. Legal.
	ClassDyninstCFG = "dyninst-cfg-skip"
	// ClassBackend: backends disagree outside every legal rule.
	ClassBackend = "backend-mismatch"
	// ClassSampling: a sampled action violates the every-Nth arithmetic
	// against the program's unsampled twin — per placement, observed
	// fires must equal floor(unsampled fires / N) and skips must account
	// for every swallowed hit. Never legal.
	ClassSampling = "sampling-mismatch"
)

// Divergence is one classified disagreement between two cells.
type Divergence struct {
	Class  string
	Legal  bool
	Cells  [2]Cell
	Detail string
}

func (d Divergence) String() string {
	tag := "ILLEGAL"
	if d.Legal {
		tag = "legal"
	}
	return fmt.Sprintf("[%s] %s: %s vs %s: %s", tag, d.Class, d.Cells[0], d.Cells[1], d.Detail)
}

// PairResult is the outcome of running one (program, victim) pair
// through the full differential matrix.
type PairResult struct {
	Program     *Program
	Victim      *Victim
	Traits      Traits
	Results     []RunResult
	Divergences []Divergence
	// SamplingChecks counts the sampled placements whose every-Nth
	// arithmetic was verified against the unsampled twin (0 when the
	// program has no sample clauses).
	SamplingChecks int
}

// Illegal returns the divergences the oracle could not classify as one
// of the paper's documented legal divergences.
func (p *PairResult) Illegal() []Divergence {
	var out []Divergence
	for _, d := range p.Divergences {
		if !d.Legal {
			out = append(out, d)
		}
	}
	return out
}

// LoadVictim assembles and loads victim sources into a CFG program.
func LoadVictim(srcs []string) (*cfg.Program, error) {
	mods := make([]*obj.Module, 0, len(srcs))
	for _, s := range srcs {
		m, err := asm.Assemble(s)
		if err != nil {
			return nil, err
		}
		mods = append(mods, m)
	}
	p, err := obj.Load(mods, vm.RuntimeExterns())
	if err != nil {
		return nil, err
	}
	return cfg.Build(p)
}

// DeriveTraits computes the oracle-relevant properties from the
// compiled tool and loaded victim.
func DeriveTraits(tool *engine.CompiledTool, prog *cfg.Program) Traits {
	t := Traits{MultiModule: len(prog.Modules) > 1}
	exe := prog.Modules[0]
	if exe.Loaded.HasUnrecoverableControlFlow() {
		t.Unrecoverable = true
	}
	for _, f := range exe.Funcs {
		if f.Imprecise {
			t.Unrecoverable = true
		}
	}
	t.UsesLoops = usesLoops(tool.Prog.Items)
	return t
}

func usesLoops(items []ast.TopItem) bool {
	var cmdHasLoop func(c *ast.Command) bool
	cmdHasLoop = func(c *ast.Command) bool {
		if c.EType == ast.Loop {
			return true
		}
		for _, it := range c.Body {
			if nc, ok := it.(*ast.Command); ok && cmdHasLoop(nc) {
				return true
			}
		}
		return false
	}
	for _, it := range items {
		if c, ok := it.(*ast.Command); ok && cmdHasLoop(c) {
			return true
		}
	}
	return false
}

// Cells returns the differential matrix for the traits: every backend in
// both action tiers plus the machine's interpreted tier and the
// translated tier with action inlining disabled, and Pin with the
// loop-detection extension when the tool has loop commands (so Pin
// still participates in the cross-check instead of only being skipped).
func Cells(t Traits) []Cell {
	cells := []Cell{
		{Backend: backend.Janus},
		{Backend: backend.Janus, Interpret: true},
		{Backend: backend.Janus, VMInterp: true},
		{Backend: backend.Janus, NoInline: true},
		{Backend: backend.Janus, NoIROpt: true},
		{Backend: backend.Dyninst},
		{Backend: backend.Dyninst, Interpret: true},
		{Backend: backend.Dyninst, VMInterp: true},
		{Backend: backend.Dyninst, NoInline: true},
		{Backend: backend.Dyninst, NoIROpt: true},
		{Backend: backend.Pin},
		{Backend: backend.Pin, Interpret: true},
		{Backend: backend.Pin, VMInterp: true},
		{Backend: backend.Pin, NoInline: true},
		{Backend: backend.Pin, NoIROpt: true},
	}
	if t.UsesLoops {
		cells = append(cells,
			Cell{Backend: backend.Pin, LoopDetection: true},
			Cell{Backend: backend.Pin, Interpret: true, LoopDetection: true},
			Cell{Backend: backend.Pin, LoopDetection: true, VMInterp: true},
			Cell{Backend: backend.Pin, LoopDetection: true, NoInline: true},
			Cell{Backend: backend.Pin, LoopDetection: true, NoIROpt: true},
		)
	}
	return cells
}

// RunPair executes the pair through the full matrix and classifies
// every disagreement. It returns an error only when the pair cannot be
// set up at all (tool fails to compile, victim fails to assemble) —
// generator invariants, not conformance findings. The cells share one
// artifact cache, the production default, so cells that differ only in
// execution tier replay a cached instrumentation-build template — any
// state the template failed to rebind would surface as a divergence.
func RunPair(p *Program, v *Victim) (*PairResult, error) {
	tool, err := engine.Compile(p.Source)
	if err != nil {
		return nil, fmt.Errorf("tool does not compile: %w", err)
	}
	prog, err := LoadVictim(v.Srcs)
	if err != nil {
		return nil, fmt.Errorf("victim does not load: %w", err)
	}
	traits := DeriveTraits(tool, prog)
	pr := &PairResult{Program: p, Victim: v, Traits: traits}
	cache := artifacts.New(artifacts.Options{})
	for _, cell := range Cells(traits) {
		pr.Results = append(pr.Results, runCell(tool, prog, cell, cache))
	}
	pr.Divergences = Compare(pr.Results, traits)
	sdivs, checks := CompareSampling(tool, prog)
	pr.SamplingChecks = checks
	pr.Divergences = append(pr.Divergences, sdivs...)
	return pr, nil
}

func runCell(tool *engine.CompiledTool, prog *cfg.Program, cell Cell, cache *artifacts.Cache) RunResult {
	var out bytes.Buffer
	col := obs.New(obs.Options{})
	mode := vm.ExecTranslated
	if cell.VMInterp {
		mode = vm.ExecInterpreted
	}
	res, err := backend.Run(tool, prog, cell.Backend, backend.Options{
		Out:              &out,
		Interpret:        cell.Interpret,
		PinLoopDetection: cell.LoopDetection,
		Obs:              col,
		VMMode:           mode,
		VMNoInline:       cell.NoInline,
		NoIROpt:          cell.NoIROpt,
		Artifacts:        cache,
	})
	rr := RunResult{Cell: cell, Output: out.String(), Fires: map[string]uint64{}}
	if err != nil {
		rr.Err = err.Error()
		return rr
	}
	rr.Cycles, rr.Insts, rr.ExitCode = res.Cycles, res.Insts, res.ExitCode
	stats := col.Snapshot(cell.Backend)
	for _, ps := range stats.Probes {
		rr.Fires[ps.Label] += ps.Fires
	}
	rr.TotalFires = stats.TotalFires
	return rr
}

// Compare classifies every disagreement in the result matrix against
// the structured oracle. The reference cell is Janus/compiled: Janus
// instruments only the executable (like Dyninst) and supports every
// trigger kind, so the legal rules radiate from it.
func Compare(results []RunResult, traits Traits) []Divergence {
	var divs []Divergence
	byCell := map[Cell]RunResult{}
	for _, r := range results {
		byCell[r.Cell] = r
	}

	// Rule 1: execution tiers are indistinguishable — the action tier
	// (compiled closures vs tree-walking interpreter), the machine tier
	// (translated block programs vs the per-instruction loop), the
	// translated tier's action-inlining layer, and the placement-IR
	// optimization passes. For every backend configuration, every tier
	// variant present must match its base cell exactly: error text,
	// cycle totals and per-probe fires byte-identical.
	seen := map[Cell]bool{}
	for _, r := range results {
		base := r.Cell
		base.Interpret = false
		base.VMInterp = false
		base.NoInline = false
		base.NoIROpt = false
		if seen[base] {
			continue
		}
		seen[base] = true
		a, okA := byCell[base]
		if !okA {
			continue
		}
		for _, variant := range []Cell{
			{Backend: base.Backend, LoopDetection: base.LoopDetection, Interpret: true},
			{Backend: base.Backend, LoopDetection: base.LoopDetection, VMInterp: true},
			{Backend: base.Backend, LoopDetection: base.LoopDetection, Interpret: true, VMInterp: true},
			{Backend: base.Backend, LoopDetection: base.LoopDetection, NoInline: true},
			{Backend: base.Backend, LoopDetection: base.LoopDetection, NoIROpt: true},
		} {
			b, okB := byCell[variant]
			if !okB {
				continue
			}
			if d := diffExact(a, b, true); d != "" {
				class := ClassTier
				switch {
				case variant.NoInline:
					class = ClassInline
				case variant.NoIROpt:
					class = ClassIROpt
				}
				divs = append(divs, Divergence{
					Class: class, Cells: [2]Cell{base, variant}, Detail: d,
				})
			}
		}
	}

	ref, ok := byCell[Cell{Backend: backend.Janus}]
	if !ok {
		return divs
	}
	if ref.Err != "" {
		divs = append(divs, Divergence{
			Class: ClassRef, Cells: [2]Cell{ref.Cell, ref.Cell},
			Detail: "janus (reference) failed: " + ref.Err,
		})
		return divs
	}

	// Rule 2: Dyninst agrees with Janus exactly (both instrument only
	// the executable) — except that it may refuse a binary whose
	// control flow could not be recovered, which is the paper's
	// documented Dyninst gap.
	dy := byCell[Cell{Backend: backend.Dyninst}]
	if dy.Err != "" {
		legal := traits.Unrecoverable &&
			(strings.Contains(dy.Err, "control-flow recovery failed") ||
				strings.Contains(dy.Err, "imprecise control flow"))
		class := ClassBackend
		if legal {
			class = ClassDyninstCFG
		}
		divs = append(divs, Divergence{
			Class: class, Legal: legal,
			Cells:  [2]Cell{dy.Cell, ref.Cell},
			Detail: "dyninst refused: " + dy.Err,
		})
	} else if d := diffExact(ref, dy, false); d != "" {
		divs = append(divs, Divergence{
			Class: ClassBackend, Cells: [2]Cell{ref.Cell, dy.Cell}, Detail: d,
		})
	}

	// Rule 3: Pin. Loop commands: plain Pin must refuse (legal); with
	// the loop-detection extension it must then agree like any dynamic
	// backend. Multi-module victims: Pin sees shared libraries, so its
	// event counts dominate the reference — fires per probe must be >=
	// the reference and the machine counters (application instructions,
	// exit code) must still agree. Single-module: exact agreement.
	pinCells := []Cell{{Backend: backend.Pin}}
	if traits.UsesLoops {
		pinCells = append(pinCells, Cell{Backend: backend.Pin, LoopDetection: true})
	}
	for _, pc := range pinCells {
		pin, ok := byCell[pc]
		if !ok {
			continue
		}
		if pin.Err != "" {
			if traits.UsesLoops && !pc.LoopDetection && strings.Contains(pin.Err, "no notion of loops") {
				divs = append(divs, Divergence{
					Class: ClassPinLoops, Legal: true,
					Cells:  [2]Cell{pc, ref.Cell},
					Detail: "pin refused loop command: " + pin.Err,
				})
				continue
			}
			divs = append(divs, Divergence{
				Class: ClassBackend, Cells: [2]Cell{pc, ref.Cell},
				Detail: "pin failed: " + pin.Err,
			})
			continue
		}
		if !traits.MultiModule {
			if d := diffExact(ref, pin, false); d != "" {
				divs = append(divs, Divergence{
					Class: ClassBackend, Cells: [2]Cell{ref.Cell, pc}, Detail: d,
				})
			}
			continue
		}
		// Multi-module: dominance check.
		var bad, extra []string
		for _, label := range sortedLabels(ref.Fires, pin.Fires) {
			rf, pf := ref.Fires[label], pin.Fires[label]
			if pf < rf {
				bad = append(bad, fmt.Sprintf("%s: pin %d < ref %d", label, pf, rf))
			} else if pf > rf {
				extra = append(extra, fmt.Sprintf("%s: pin %d > ref %d", label, pf, rf))
			}
		}
		if pin.Insts < ref.Insts {
			bad = append(bad, fmt.Sprintf("insts: pin %d < ref %d", pin.Insts, ref.Insts))
		}
		if pin.ExitCode != ref.ExitCode {
			bad = append(bad, fmt.Sprintf("exit code: pin %d != ref %d", pin.ExitCode, ref.ExitCode))
		}
		if len(bad) > 0 {
			divs = append(divs, Divergence{
				Class: ClassBackend, Cells: [2]Cell{pc, ref.Cell},
				Detail: "pin undercounts reference: " + strings.Join(bad, "; "),
			})
			continue
		}
		if len(extra) > 0 || pin.Output != ref.Output || pin.Insts > ref.Insts {
			detail := "pin sees shared libraries"
			if len(extra) > 0 {
				detail += ": " + strings.Join(extra, "; ")
			}
			divs = append(divs, Divergence{
				Class: ClassPinLibs, Legal: true,
				Cells: [2]Cell{pc, ref.Cell}, Detail: detail,
			})
		}
	}
	return divs
}

// diffExact compares two results field by field and describes the first
// few differences (empty string when identical). Cycles are compared
// only across tiers (withCycles): different backends price dispatch
// differently by design, so cross-backend cycle totals never match.
func diffExact(a, b RunResult, withCycles bool) string {
	var out []string
	if a.Err != b.Err {
		out = append(out, fmt.Sprintf("error %q vs %q", a.Err, b.Err))
	}
	if a.Output != b.Output {
		out = append(out, fmt.Sprintf("output differs (%d vs %d bytes): %q vs %q",
			len(a.Output), len(b.Output), clip(a.Output), clip(b.Output)))
	}
	if a.Insts != b.Insts {
		out = append(out, fmt.Sprintf("insts %d vs %d", a.Insts, b.Insts))
	}
	if a.ExitCode != b.ExitCode {
		out = append(out, fmt.Sprintf("exit code %d vs %d", a.ExitCode, b.ExitCode))
	}
	if withCycles && a.Cycles != b.Cycles {
		out = append(out, fmt.Sprintf("cycles %d vs %d", a.Cycles, b.Cycles))
	}
	for _, label := range sortedLabels(a.Fires, b.Fires) {
		if a.Fires[label] != b.Fires[label] {
			out = append(out, fmt.Sprintf("fires[%s] %d vs %d", label, a.Fires[label], b.Fires[label]))
		}
	}
	return strings.Join(out, "; ")
}

func sortedLabels(ms ...map[string]uint64) []string {
	set := map[string]bool{}
	for _, m := range ms {
		for k := range m {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func clip(s string) string {
	if len(s) > 160 {
		return s[:160] + "..."
	}
	return s
}

// --- Sampling-legality oracle ---
//
// A program with `sample N` clauses is compared against its *unsampled
// twin*: the same source with every sample clause stripped, run through
// the reference backend on the same victim. Sampling is a pure firing
// filter — it must not move, add or remove placements — so per
// placement the sampled run's fires must equal floor(twin fires / N)
// (the countdown arms at N: hits N, 2N, ...) and its skips must account
// for every swallowed hit. The check is per obs report row, never
// label-aggregated: a multi-site action counts down per placement, and
// a sum of floors is not the floor of the sum.

// forEachAction visits every action in the program, including actions
// of nested commands.
func forEachAction(items []ast.TopItem, fn func(*ast.Action)) {
	var walk func(c *ast.Command)
	walk = func(c *ast.Command) {
		for _, it := range c.Body {
			switch x := it.(type) {
			case *ast.Action:
				fn(x)
			case *ast.Command:
				walk(x)
			}
		}
	}
	for _, it := range items {
		if c, ok := it.(*ast.Command); ok {
			walk(c)
		}
	}
}

// sampleStrides maps observability labels of sampled actions to their
// strides.
func sampleStrides(tool *engine.CompiledTool) map[string]uint64 {
	out := map[string]uint64{}
	forEachAction(tool.Prog.Items, func(a *ast.Action) {
		if ai := tool.Info.Actions[a]; ai != nil && ai.Sample > 1 {
			out[engine.Label(ai, a)] = ai.Sample
		}
	})
	return out
}

// stripSampling prints the program with every sample clause removed,
// restoring the AST before returning. The clause trails the action
// header, so removing it shifts no action position — the twin's
// pos-derived labels line up with the sampled program's.
func stripSampling(prog *ast.Program) string {
	type saved struct {
		act    *ast.Action
		stride int64
	}
	var restore []saved
	forEachAction(prog.Items, func(a *ast.Action) {
		if a.Sample > 0 {
			restore = append(restore, saved{a, a.Sample})
			a.Sample = 0
		}
	})
	src := ast.Print(prog)
	for _, s := range restore {
		s.act.Sample = s.stride
	}
	return src
}

// placementKey identifies one obs report row across the twin runs. n
// disambiguates rows sharing (label, trigger, addr) — e.g. two edges
// into the same block head — by registration order, which is
// deterministic and identical across twins.
type placementKey struct {
	label, trigger string
	addr           uint64
	n              int
}

func keyRows(rows []obs.ProbeStats) map[placementKey]obs.ProbeStats {
	seen := map[placementKey]int{}
	out := map[placementKey]obs.ProbeStats{}
	for _, r := range rows {
		k := placementKey{label: r.Label, trigger: r.Trigger, addr: r.Addr}
		k.n = seen[k]
		seen[placementKey{label: r.Label, trigger: r.Trigger, addr: r.Addr}]++
		out[k] = r
	}
	return out
}

// runRows executes the tool on the reference backend and returns the
// per-placement report rows.
func runRows(tool *engine.CompiledTool, prog *cfg.Program) ([]obs.ProbeStats, error) {
	col := obs.New(obs.Options{})
	_, err := backend.Run(tool, prog, backend.Janus, backend.Options{Out: io.Discard, Obs: col})
	if err != nil {
		return nil, err
	}
	return col.Snapshot(backend.Janus).Probes, nil
}

// CompareSampling checks the sampling-legality oracle for the pair and
// returns the divergences plus the number of sampled placements
// verified. Programs without sample clauses are skipped (0 checks).
func CompareSampling(tool *engine.CompiledTool, prog *cfg.Program) ([]Divergence, int) {
	if len(sampleStrides(tool)) == 0 {
		return nil, 0
	}
	refCell := Cell{Backend: backend.Janus}
	div := func(detail string) Divergence {
		return Divergence{Class: ClassSampling, Cells: [2]Cell{refCell, refCell}, Detail: detail}
	}
	// Both twins are compiled from canonically printed sources, so their
	// pos-derived labels line up even when the original source was not a
	// print fixed point.
	canon, err := engine.Compile(ast.Print(tool.Prog))
	if err != nil {
		return []Divergence{div("canonical reprint does not compile: " + err.Error())}, 0
	}
	strides := sampleStrides(canon)
	twin, err := engine.Compile(stripSampling(canon.Prog))
	if err != nil {
		return []Divergence{div("unsampled twin does not compile: " + err.Error())}, 0
	}
	sampled, serr := runRows(canon, prog)
	unsampled, uerr := runRows(twin, prog)
	if serr != nil {
		// The reference cell failing on the sampled program is already
		// classified (ClassRef) by Compare; nothing to check here.
		return nil, 0
	}
	if uerr != nil {
		return []Divergence{div("unsampled twin failed: " + uerr.Error())}, 0
	}
	divs, checks := compareSamplingRows(strides, sampled, unsampled)
	out := make([]Divergence, len(divs))
	for i, d := range divs {
		out[i] = div(d)
	}
	return out, checks
}

// compareSamplingRows verifies the per-placement arithmetic and returns
// the violation details (sorted, for deterministic reports) and the
// number of sampled rows checked.
func compareSamplingRows(strides map[string]uint64, sampled, unsampled []obs.ProbeStats) ([]string, int) {
	var out []string
	checks := 0
	sm, um := keyRows(sampled), keyRows(unsampled)
	for k, sr := range sm {
		ur, ok := um[k]
		if !ok {
			out = append(out, fmt.Sprintf("placement %q %s @%#x[%d] missing from unsampled twin",
				k.label, k.trigger, k.addr, k.n))
			continue
		}
		n := strides[k.label]
		if n <= 1 {
			if sr.Fires != ur.Fires || sr.Skips != 0 {
				out = append(out, fmt.Sprintf("unsampled action %q @%#x: fires %d (skips %d) vs twin %d",
					k.label, k.addr, sr.Fires, sr.Skips, ur.Fires))
			}
			continue
		}
		checks++
		wantFires := ur.Fires / n
		wantSkips := ur.Fires - wantFires
		if sr.Fires != wantFires || sr.Skips != wantSkips {
			out = append(out, fmt.Sprintf(
				"%q %s @%#x stride %d: fires/skips %d/%d, want %d/%d (twin hits %d)",
				k.label, k.trigger, k.addr, n, sr.Fires, sr.Skips, wantFires, wantSkips, ur.Fires))
		}
	}
	for k := range um {
		if _, ok := sm[k]; !ok {
			out = append(out, fmt.Sprintf("placement %q %s @%#x[%d] only in unsampled twin",
				k.label, k.trigger, k.addr, k.n))
		}
	}
	sort.Strings(out)
	return out, checks
}
