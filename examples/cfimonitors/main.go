// Control-flow-integrity monitoring (the paper's Figures 8 and 9): a
// shadow stack protects backward edges (returns), and a valid-target
// check protects forward edges (calls). Both catch their respective
// attacks — a stack smash that overwrites a return address, and a
// corrupted function pointer aimed into the middle of a function.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/cinnamon"
)

const shadowStackSrc = `
dict<int,addr> sstack;
int top = 0;

inst I where (I.opcode == Call) {
  before I {
    addr fall_addr = I.nextaddr;
    sstack[top] = fall_addr;
    top = top + 1;
  }
}
inst I where (I.opcode == Return) {
  before I {
    if (top > 0 && sstack[top-1] == I.trgaddr) {
      top = top - 1;
    } else {
      print("ERROR");
    }
  }
}
`

const forwardCFISrc = `
vector<addr> vtable;
file outfile("fAddr.txt");

func F {
  writeToFile(outfile, F.startAddr);
}
inst I where (I.opcode == Call) {
  before I {
    if (!vtable.has(I.trgaddr)) {
      print("ERROR");
    }
  }
}
init {
  line l = outfile.getline();
  for (; l != NULL; ) {
    vtable.add(l);
    l = outfile.getline();
  }
}
`

// A buffer overflow overwrites the saved return address on the real
// in-memory stack, diverting victim's return into evil().
const smashSrc = `
.module smash
.executable
.entry main
.func main
  call  victim
  halt
.func victim
  sub   sp, sp, 32
  mov   r9, @evil
  mov   r10, 0
  mov   r11, 5          ; writes 5 words into a 4-word buffer
loop:
  mul   r12, r10, 8
  add   r13, sp, r12
  store r9, [r13]
  add   r10, r10, 1
  blt   r10, r11, loop
  add   sp, sp, 32
  ret                   ; returns into evil
.func evil
  mov   r1, 666
  halt                  ; the attacker's payload ends the program
`

// A corrupted function pointer aims an indirect call into the middle of
// a function — not a valid entry point.
const corruptSrc = `
.module corrupt
.executable
.entry main
.func main
  mov   r9, @fptr
  load  r10, [r9]
  call  r10             ; fine: worker is a real function entry
  mov   r11, @gadget+2
  store r11, [r9]
  load  r10, [r9]
  call  r10             ; CFI violation: mid-function target
  halt
.func worker
  mov   r4, 2
  ret
.func gadget
  nop
  mov   r1, 999
  ret
.data
fptr: .addr worker
`

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	check := func(toolSrc, appSrc, label string) error {
		tool, err := cinnamon.Compile(toolSrc)
		if err != nil {
			return err
		}
		target, err := cinnamon.LoadAssembly(appSrc)
		if err != nil {
			return err
		}
		report, err := tool.Run(target, cinnamon.Dyninst, cinnamon.RunOptions{})
		if err != nil {
			return err
		}
		violations := strings.Count(report.ToolOutput, "ERROR")
		fmt.Fprintf(w, "%-28s -> %d violation(s) detected\n", label, violations)
		return nil
	}
	if err := check(shadowStackSrc, smashSrc, "shadow stack vs stack smash"); err != nil {
		return err
	}
	return check(forwardCFISrc, corruptSrc, "forward CFI vs bad pointer")
}
