package compile_test

// BenchmarkActionExec isolates what the compile package exists to speed
// up: executing one action body, with the placement machinery factored
// out. A capturing placer grabs the basic-block counting action
// (Figure 5b) as the engine places it, and the benchmark fires that
// action directly — once per op — under the tree-walking interpreter and
// under the compiled closures. TestCompiledActionExecSpeedup holds the
// compiled path to the advertised bar: at least 3x fewer ns/op and
// allocations per firing.

import (
	"io"
	"testing"

	"repro/internal/cfg"
	"repro/internal/core/engine"
	"repro/internal/core/placement"
	"repro/internal/progs"
)

// capturePlacer records every action the engine places and accepts all
// trigger points.
type capturePlacer struct {
	prog    *cfg.Program
	actions []*placement.Action
}

func (p *capturePlacer) Name() string           { return "capture" }
func (p *capturePlacer) Modules() []*cfg.Module { return p.prog.Modules }
func (p *capturePlacer) SupportsLoops() bool    { return true }

func (p *capturePlacer) Lower(rs *placement.RuleSet) error {
	for _, r := range rs.Rules() {
		if len(r.Merged) > 0 {
			for _, c := range r.Merged {
				p.actions = append(p.actions, c.Action)
			}
			continue
		}
		p.actions = append(p.actions, r.Action)
	}
	return nil
}

// placeBBAction instruments the loads target with the basic-block
// counting tool and returns the first placed action plus the instance
// (to check for recorded runtime errors afterwards).
func placeBBAction(tb testing.TB, interpret bool) (*placement.Action, *engine.Instance) {
	tb.Helper()
	tool, err := engine.Compile(progs.MustSource(progs.InstCountBB))
	if err != nil {
		tb.Fatal(err)
	}
	prog := buildTargetTB(tb, "src:loads")
	pl := &capturePlacer{prog: prog}
	inst, err := engine.Instrument(tool, prog, pl, engine.Options{Out: io.Discard, Interpret: interpret})
	if err != nil {
		tb.Fatal(err)
	}
	if len(pl.actions) == 0 {
		tb.Fatal("no actions placed")
	}
	return pl.actions[0], inst
}

func benchActionExec(interpret bool) func(b *testing.B) {
	return func(b *testing.B) {
		a, inst := placeBBAction(b, interpret)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.Exec(nil)
		}
		b.StopTimer()
		if err := inst.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkActionExec(b *testing.B) {
	b.Run("interp", benchActionExec(true))
	b.Run("compiled", benchActionExec(false))
}

// TestCompiledActionExecSpeedup enforces the perf contract of the
// closure-compilation stage: per firing, the compiled path must be at
// least 3x cheaper than the interpreter in both time and allocations.
func TestCompiledActionExecSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping measurement in -short mode")
	}
	ir := testing.Benchmark(benchActionExec(true))
	cr := testing.Benchmark(benchActionExec(false))
	t.Logf("interp:   %v, %d allocs/op", ir, ir.AllocsPerOp())
	t.Logf("compiled: %v, %d allocs/op", cr, cr.AllocsPerOp())
	if 3*cr.NsPerOp() > ir.NsPerOp() {
		t.Errorf("compiled %d ns/op is not 3x faster than interp %d ns/op", cr.NsPerOp(), ir.NsPerOp())
	}
	if 3*cr.AllocsPerOp() > ir.AllocsPerOp() {
		t.Errorf("compiled %d allocs/op is not 3x fewer than interp %d allocs/op", cr.AllocsPerOp(), ir.AllocsPerOp())
	}
}
