// Command cinnamond is the fleet-scale monitoring daemon: a long-lived
// process that schedules concurrent victim×tool sessions over a bounded
// worker pool and serves the aggregated fleet view over HTTP.
//
//	cinnamond -listen 127.0.0.1:9137 -workers 8
//	cinnamond -manifest fleet.json -workers 32 -drain-timeout 10s
//	curl -s -X POST localhost:9137/sessions \
//	     -d '{"tool":"instcount_basic","victim":"spin","backend":"janus","loop":200000}'
//	curl -s localhost:9137/metrics | grep cinnamon_fleet_fires_total
//
// Every session gets its own sharded collector, interval series and
// (optionally) overhead governor; /metrics exposes every session under
// session/tool/victim/backend labels plus cinnamon_fleet_* rollups that
// are exactly the sum of the per-session series. SIGTERM and SIGINT
// drain gracefully: admission stops (/healthz/ready turns 503), queued
// sessions are canceled, running sessions finish or are cooperatively
// cancelled at the -drain-timeout deadline, then the listener closes.
// See docs/FLEET.md.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/monitor"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func main() {
	reg, opts := fleet.CLIFlags()
	reg.FS.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cinnamond [flags]")
		reg.Usage(os.Stderr)
	}
	_ = reg.FS.Parse(os.Args[1:])
	if reg.FS.NArg() != 0 {
		reg.FS.Usage()
		os.Exit(1)
	}

	sched := fleet.NewScheduler(fleet.Config{
		Workers:         *opts.Workers,
		Queue:           *opts.Queue,
		Interval:        *opts.Interval,
		DefaultLoop:     *opts.Loop,
		NoArtifactCache: !*opts.ArtifactCache,
	})
	fcfg := monitor.FleetConfig{
		Fleet:    sched.Fleet(),
		Ready:    sched.Accepting,
		Submit:   sched.SubmitJSON,
		TraceBuf: *opts.TraceBuf,
	}
	if sched.Artifacts() != nil {
		fcfg.Artifacts = sched.ArtifactStats
	}
	srv := monitor.NewFleetServer(fcfg)
	addr, err := srv.Start(*opts.Listen)
	if err != nil {
		fail("cinnamond: %v", err)
	}
	// The announce line is the smoke-test handshake (scripts/fleetsmoke
	// scans stderr for it); keep its shape stable.
	fmt.Fprintf(os.Stderr, "cinnamond: fleet monitor listening on http://%s\n", addr)

	if *opts.Manifest != "" {
		data, err := os.ReadFile(*opts.Manifest)
		if err != nil {
			fail("cinnamond: %v", err)
		}
		specs, err := fleet.ParseManifest(data)
		if err != nil {
			fail("cinnamond: %v", err)
		}
		for i, spec := range specs {
			sess, err := sched.Submit(spec)
			if err != nil {
				fail("cinnamond: manifest job %d: %v", i, err)
			}
			fmt.Fprintf(os.Stderr, "cinnamond: queued %s: %s on %s (%s)\n",
				sess.Labels().Session, sess.Labels().Tool, sess.Labels().Victim, sess.Labels().Backend)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Fprintf(os.Stderr, "cinnamond: draining (deadline %s)\n", *opts.DrainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *opts.DrainTimeout)
	drainErr := sched.Drain(ctx)
	cancel()

	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = srv.Shutdown(shutCtx)
	shutCancel()

	counts := sched.Fleet().StateCounts()
	fmt.Fprintf(os.Stderr, "cinnamond: drained: %d done, %d failed, %d canceled\n",
		counts[monitor.SessionDone], counts[monitor.SessionFailed], counts[monitor.SessionCanceled])
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "cinnamond: drain deadline hit: %v\n", drainErr)
	}
}
