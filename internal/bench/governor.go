package bench

import (
	"fmt"
	"io"

	"repro/internal/cfg"
	"repro/internal/core/backend"
	"repro/internal/core/engine"
	"repro/internal/governor"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Governor experiment: what a live overhead budget does to action-heavy
// tools. Each use case runs ungoverned and under a 5% and a 1% budget;
// the rows report the run-wide attributed probe overhead, the
// steady-state (last governor window) overhead, and what the governor
// did to get there — paces, downsample/eject decisions, surviving
// strides. Cycle counters are deterministic, so the rows are exactly
// reproducible.

// GovernorRow is one (use case, budget) cell. The JSON form is what
// `experiments -exp=governor -json` writes to BENCH_governor.json.
type GovernorRow struct {
	UseCase string `json:"use_case"`
	// Budget is the configured overhead budget ("off", "5%", "1%").
	Budget string `json:"budget"`
	// Cycles and Insts are the deterministic run counters.
	Cycles uint64 `json:"cycles"`
	Insts  uint64 `json:"insts"`
	// ProbeCycles is the instrumentation cost attributed to probes
	// (fires plus sampling-gate skips).
	ProbeCycles uint64 `json:"probe_cycles"`
	// Fires and Skips total probe firings and sampling-gate skips.
	Fires uint64 `json:"fires"`
	Skips uint64 `json:"skips,omitempty"`
	// Overhead is ProbeCycles / Cycles over the whole run (including the
	// ungoverned warm-up before the governor converges).
	Overhead float64 `json:"overhead"`
	// LastWindow is the attributed overhead of the final governor window
	// — the steady state the budget is judged against (0 when off).
	LastWindow float64 `json:"last_window_overhead,omitempty"`
	// Paces, Decisions and Ejected summarize governor activity.
	Paces     uint64 `json:"paces,omitempty"`
	Decisions int    `json:"decisions,omitempty"`
	Ejected   int    `json:"ejected,omitempty"`
}

// governorCases are the action-heavy tools worth governing: the
// per-instruction counters fire on every matched instruction, the
// opcode-mix profiler on every instruction of four opcode classes.
var governorCases = []struct{ label, prog string }{
	{"Inst count", "instcount_basic"},
	{"Loop coverage", "loopcoverage"},
	{"Opcode mix", "opcodemix"},
}

var governorBudgets = []string{"off", "5%", "1%"}

// Governor measures each case under each budget on the named benchmark.
func Governor(benchmark string, scale float64) ([]GovernorRow, error) {
	spec, ok := workload.ByName(benchmark)
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchmark)
	}
	prog, err := BuildBenchmark(spec, scale)
	if err != nil {
		return nil, err
	}
	var rows []GovernorRow
	for _, c := range governorCases {
		tool, err := compileTool(c.prog)
		if err != nil {
			return nil, err
		}
		for _, budget := range governorBudgets {
			row, err := governorCell(tool, prog, c.label, budget)
			if err != nil {
				return nil, fmt.Errorf("bench: %s (%s): %w", c.label, budget, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func governorCell(tool *engine.CompiledTool, prog *cfg.Program, label, budget string) (GovernorRow, error) {
	col := obs.New(obs.Options{})
	opts := backend.Options{Out: io.Discard, Obs: col}
	var gov *governor.Governor
	if budget != "off" {
		frac, err := governor.ParseBudget(budget)
		if err != nil {
			return GovernorRow{}, err
		}
		gov, err = governor.New(governor.Config{Budget: frac, Collector: col})
		if err != nil {
			return GovernorRow{}, err
		}
		opts.Adaptive = true
		opts.OnMachine = gov.Attach
	}
	res, err := backend.Run(tool, prog, backend.Janus, opts)
	if err != nil {
		return GovernorRow{}, err
	}
	s := col.Snapshot(backend.Janus)
	row := GovernorRow{
		UseCase:     label,
		Budget:      budget,
		Cycles:      res.Cycles,
		Insts:       res.Insts,
		ProbeCycles: s.ProbeCycles,
		Fires:       s.TotalFires,
		Skips:       s.TotalSkips,
	}
	if res.Cycles > 0 {
		row.Overhead = float64(s.ProbeCycles) / float64(res.Cycles)
	}
	if gov != nil {
		st := gov.State()
		row.LastWindow = st.LastOverhead
		row.Paces = st.Paces
		row.Decisions = len(st.Decisions)
		for _, p := range st.Probes {
			if !p.Enabled {
				row.Ejected++
			}
		}
	}
	return row, nil
}

// FormatGovernor renders the budget comparison.
func FormatGovernor(w io.Writer, rows []GovernorRow) {
	fmt.Fprintf(w, "%-16s %-8s %12s %12s %12s %10s %10s %7s %10s %8s\n",
		"Use case", "budget", "cycles", "fires", "skips", "overhead", "lastwin", "paces", "decisions", "ejected")
	for _, r := range rows {
		last := "-"
		if r.Budget != "off" {
			last = fmt.Sprintf("%.2f%%", r.LastWindow*100)
		}
		fmt.Fprintf(w, "%-16s %-8s %12d %12d %12d %9.2f%% %10s %7d %10d %8d\n",
			r.UseCase, r.Budget, r.Cycles, r.Fires, r.Skips, r.Overhead*100, last,
			r.Paces, r.Decisions, r.Ejected)
	}
}
