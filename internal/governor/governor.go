// Package governor implements the live overhead governor: a feedback
// controller that watches the observability layer's cycle attribution
// while the instrumented program runs and keeps total probe overhead
// under a user-declared budget ("-budget 5%") by downsampling — and
// ultimately ejecting — the most expensive probes.
//
// The governor is the consumer of two adaptive mechanisms the machine
// exposes (see internal/vm's adaptive layer):
//
//   - per-probe control blocks, which let it raise a probe's sampling
//     stride or disable the probe entirely, mid-run, with the same
//     block-invalidation machinery mid-run installation uses;
//   - the cycle-paced hook (vm.SetPacer), which runs the governor at
//     block-start dispatch on a fixed cycle cadence — the identical
//     machine state on both execution tiers, so every decision the
//     governor makes is a deterministic function of the instrumented
//     run, reproducible across tiers and replayable from its decision
//     log.
//
// # Policy
//
// Each pace window the governor computes the window's attributed
// overhead: the delta of collector probe cycles over the delta of
// machine cycles. While that ratio exceeds the budget it downsamples
// the probe that spent the most cycles in the window — doubling its
// sampling stride — and once a probe reaches MaxStride it is ejected
// (disabled) instead. Decisions are taken until the window's projected
// cost fits the budget (doubling a stride is modelled as halving the
// probe's next-window cost, ejecting as zeroing it), so a tool with
// hundreds of placements converges in a handful of windows rather than
// one placement per window; every decision is appended to a replayable
// log.
//
// Ejected probes are not gone: re-arm commands (from the monitor
// server's /governor endpoint, or Enqueue directly) are mailboxed and
// applied at the next pace point, on the run goroutine, where control
// mutations are legal.
package governor

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/vm"
)

// Defaults for Config fields left zero.
const (
	// DefaultWindow is the pace cadence in machine cost units
	// (vm.UnitsPerCycle units = one nominal cycle).
	DefaultWindow = 20000
	// DefaultMaxStride is the sampling stride past which a probe is
	// ejected rather than downsampled further.
	DefaultMaxStride = 1024
)

// Config parameterizes a Governor.
type Config struct {
	// Budget is the maximum fraction of machine cycles the governed run
	// may spend in probes (0.05 = 5%). Must be > 0.
	Budget float64
	// Collector is the attribution source. Required: the governor
	// steers by attributed cycles, not wall-clock guesses.
	Collector *obs.Collector
	// Window is the evaluation cadence in machine cost units (0 =
	// DefaultWindow).
	Window uint64
	// MaxStride caps downsampling; a probe at the cap is ejected
	// instead (0 = DefaultMaxStride).
	MaxStride uint64
}

// Decision is one control action the governor took, in a form that can
// be replayed: applying the logged actions in order to an identical run
// reproduces the governed run exactly.
type Decision struct {
	// Seq numbers decisions from 0 in the order they were taken.
	Seq int `json:"seq"`
	// Cycles is the machine cycle-unit count at the pace point that
	// took the decision.
	Cycles uint64 `json:"cycles"`
	// Overhead is the window's attributed probe overhead (fraction of
	// machine cycles) that triggered the decision; 0 for mailbox
	// commands.
	Overhead float64 `json:"overhead"`
	// Probe is the probe's report slot index (Stats.Probes[Probe-1]).
	Probe int `json:"probe"`
	// Label is the probe's report label.
	Label string `json:"label"`
	// Action is "downsample", "eject", "rearm" or "stride".
	Action string `json:"action"`
	// OldStride and NewStride are the sampling stride before and after
	// ("eject" and "rearm" keep the stride).
	OldStride uint64 `json:"old_stride"`
	NewStride uint64 `json:"new_stride"`
}

// ProbeState is the governed state of one adaptive probe.
type ProbeState struct {
	// Probe is the probe's report slot index.
	Probe int `json:"probe"`
	// Label is the probe's report label.
	Label string `json:"label"`
	// Stride and BaseStride are the current and installation-time
	// sampling strides.
	Stride     uint64 `json:"stride"`
	BaseStride uint64 `json:"base_stride"`
	// Enabled is false while the probe is ejected.
	Enabled bool `json:"enabled"`
}

// State is a snapshot of the governor, JSON-shaped for the monitor
// server (/stats embeds it, /governor serves it).
type State struct {
	// Budget and Window echo the configuration.
	Budget    float64 `json:"budget"`
	Window    uint64  `json:"window"`
	MaxStride uint64  `json:"max_stride"`
	// Paces counts evaluation points so far.
	Paces uint64 `json:"paces"`
	// LastOverhead is the attributed overhead of the most recent
	// window; CumOverhead the run-so-far ratio.
	LastOverhead float64 `json:"last_overhead"`
	CumOverhead  float64 `json:"cum_overhead"`
	// Probes lists the governed probes.
	Probes []ProbeState `json:"probes"`
	// Decisions is the replayable decision log.
	Decisions []Decision `json:"decisions"`
}

// Command is a mailboxed control request, applied at the next pace
// point on the run goroutine.
type Command struct {
	// Probe is the report slot index of the target probe.
	Probe int `json:"probe"`
	// Action is "rearm" (re-enable an ejected probe and restore its
	// installation-time stride), "eject" (disable) or "stride" (set the
	// sampling stride to Stride; 0 restores the installation-time one).
	Action string `json:"action"`
	Stride uint64 `json:"stride,omitempty"`
}

// Governor is the live overhead controller. Create with New, wire with
// Attach (or backend.Options.OnMachine), observe with State.
type Governor struct {
	budget    float64
	window    uint64
	maxStride uint64
	col       *obs.Collector
	m         *vm.VM

	// mu guards everything below: step mutates on the run goroutine,
	// State/Enqueue run on observer goroutines.
	mu         sync.Mutex
	paces      uint64
	lastOver   float64
	prevProbe  uint64 // collector probe cycles at previous pace
	prevTotal  uint64 // machine cycles at previous pace
	prevCycles []uint64
	decisions  []Decision
	mailbox    []Command
	// probes caches the governed probe states as of the last pace
	// point, so State never touches the machine from an observer
	// goroutine (the machine's adaptive state is run-goroutine only).
	probes []ProbeState
}

// New creates a Governor. Budget must be positive and Collector
// non-nil.
func New(c Config) (*Governor, error) {
	if c.Budget <= 0 {
		return nil, fmt.Errorf("governor: budget must be positive, got %v", c.Budget)
	}
	if c.Collector == nil {
		return nil, fmt.Errorf("governor: a collector is required")
	}
	g := &Governor{budget: c.Budget, window: c.Window, maxStride: c.MaxStride, col: c.Collector}
	if g.window == 0 {
		g.window = DefaultWindow
	}
	if g.maxStride == 0 {
		g.maxStride = DefaultMaxStride
	}
	return g, nil
}

// Attach wires the governor to a machine: the machine must be created
// with Adaptive probes enabled, and Attach must run before the machine
// does (backend.Options.OnMachine arranges both).
func (g *Governor) Attach(m *vm.VM) {
	g.m = m
	m.SetPacer(g.window, g.step)
}

// step is the pace hook: runs on the run goroutine at block-start
// dispatch, every window cycles.
func (g *Governor) step() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.paces++
	s := g.col.Snapshot("")
	total := g.m.Cycles()

	// Mailboxed commands first: operator intent precedes policy.
	for _, cmd := range g.mailbox {
		g.apply(cmd, s)
	}
	g.mailbox = g.mailbox[:0]

	dProbe := s.ProbeCycles - g.prevProbe
	dTotal := total - g.prevTotal
	if dTotal > 0 {
		g.lastOver = float64(dProbe) / float64(dTotal)
		if g.lastOver > g.budget {
			g.govern(s, dTotal)
		}
	}
	if g.prevCycles == nil {
		g.prevCycles = make([]uint64, 0, len(s.Probes))
	}
	g.prevCycles = g.prevCycles[:0]
	for _, p := range s.Probes {
		g.prevCycles = append(g.prevCycles, p.Cycles)
	}
	g.prevProbe, g.prevTotal = s.ProbeCycles, total

	// Refresh the observer-facing probe cache with post-decision state.
	g.probes = g.probes[:0]
	for _, info := range g.m.AdaptiveProbes() {
		idx := info.ID.Index()
		if idx == 0 {
			continue
		}
		ps := ProbeState{
			Probe:      idx,
			Stride:     info.Stride,
			BaseStride: info.BaseStride,
			Enabled:    info.Enabled,
		}
		if idx >= 1 && idx <= len(s.Probes) {
			ps.Label = s.Probes[idx-1].Label
		}
		g.probes = append(g.probes, ps)
	}
}

// govern enforces the budget for one over-budget window. It repeatedly
// downsamples (or, at MaxStride, ejects) the probe with the highest
// projected next-window cost until the projection fits the budget. The
// projection is first-order: doubling a sampling stride halves the
// probe's cost, ejecting zeroes it. Starting from the window's measured
// per-probe cycle deltas this converges in O(log overshoot) decisions,
// so a tool with hundreds of hot placements is brought under budget in
// a handful of windows instead of one placement per window.
func (g *Governor) govern(s *obs.Stats, dTotal uint64) {
	byID := g.ctlIndex()
	type cand struct {
		idx   int
		info  vm.ProbeInfo
		delta uint64 // projected next-window cost
	}
	var cands []cand
	var projected uint64
	for i, p := range s.Probes {
		info, ok := byID[i+1]
		if !ok || !info.Enabled {
			continue
		}
		var prev uint64
		if i < len(g.prevCycles) {
			prev = g.prevCycles[i]
		}
		if d := p.Cycles - prev; d > 0 {
			projected += d
			cands = append(cands, cand{idx: i, info: info, delta: d})
		}
	}
	limit := uint64(float64(dTotal) * g.budget)
	for projected > limit {
		worst := -1
		for j := range cands {
			if cands[j].delta == 0 {
				continue
			}
			if worst < 0 || cands[j].delta > cands[worst].delta {
				worst = j
			}
		}
		if worst < 0 {
			return
		}
		c := &cands[worst]
		d := Decision{
			Seq:       len(g.decisions),
			Cycles:    g.m.Cycles(),
			Overhead:  g.lastOver,
			Probe:     c.idx + 1,
			Label:     s.Probes[c.idx].Label,
			OldStride: c.info.Stride,
		}
		if c.info.Stride >= g.maxStride {
			g.m.SetProbeEnabled(c.info.ID, false)
			d.Action, d.NewStride = "eject", c.info.Stride
			projected -= c.delta
			c.delta = 0
		} else {
			ns := c.info.Stride * 2
			if ns > g.maxStride {
				ns = g.maxStride
			}
			g.m.SetProbeStride(c.info.ID, ns)
			d.Action, d.NewStride = "downsample", ns
			c.info.Stride = ns
			projected -= c.delta / 2
			c.delta -= c.delta / 2
		}
		g.decisions = append(g.decisions, d)
	}
}

// apply executes one mailboxed command.
func (g *Governor) apply(cmd Command, s *obs.Stats) {
	byID := g.ctlIndex()
	info, ok := byID[cmd.Probe]
	if !ok {
		return
	}
	d := Decision{
		Seq:       len(g.decisions),
		Cycles:    g.m.Cycles(),
		Probe:     cmd.Probe,
		OldStride: info.Stride,
		NewStride: info.Stride,
	}
	if cmd.Probe >= 1 && cmd.Probe <= len(s.Probes) {
		d.Label = s.Probes[cmd.Probe-1].Label
	}
	switch cmd.Action {
	case "rearm":
		g.m.SetProbeEnabled(info.ID, true)
		g.m.SetProbeStride(info.ID, 0) // restore installation-time stride
		d.Action, d.NewStride = "rearm", info.BaseStride
	case "eject":
		g.m.SetProbeEnabled(info.ID, false)
		d.Action = "eject"
	case "stride":
		g.m.SetProbeStride(info.ID, cmd.Stride)
		ns := cmd.Stride
		if ns == 0 {
			ns = info.BaseStride
		}
		d.Action, d.NewStride = "stride", ns
	default:
		return
	}
	g.decisions = append(g.decisions, d)
}

// ctlIndex maps report slot indexes to the machine's adaptive probe
// state (probes installed without registration are not governable).
func (g *Governor) ctlIndex() map[int]vm.ProbeInfo {
	infos := g.m.AdaptiveProbes()
	byID := make(map[int]vm.ProbeInfo, len(infos))
	for _, info := range infos {
		if idx := info.ID.Index(); idx != 0 {
			byID[idx] = info
		}
	}
	return byID
}

// Enqueue mailboxes a control command; it is applied at the next pace
// point, on the run goroutine. Safe from any goroutine.
func (g *Governor) Enqueue(cmd Command) {
	g.mu.Lock()
	g.mailbox = append(g.mailbox, cmd)
	g.mu.Unlock()
}

// State snapshots the governor. Safe from any goroutine; the probe list
// reflects the machine state as of the last pace point (including the
// decisions taken there).
func (g *Governor) State() State {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := State{
		Budget:       g.budget,
		Window:       g.window,
		MaxStride:    g.maxStride,
		Paces:        g.paces,
		LastOverhead: g.lastOver,
		Probes:       append([]ProbeState(nil), g.probes...),
		Decisions:    append([]Decision(nil), g.decisions...),
	}
	if g.prevTotal > 0 {
		st.CumOverhead = float64(g.prevProbe) / float64(g.prevTotal)
	}
	return st
}

// Decisions returns a copy of the replayable decision log. Safe from
// any goroutine.
func (g *Governor) Decisions() []Decision {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]Decision(nil), g.decisions...)
}

// ParseBudget parses a budget flag value: "5%" or "0.05" both mean
// five percent. The empty string means no budget (returns 0, nil).
func ParseBudget(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("governor: bad budget %q (want e.g. \"5%%\" or \"0.05\")", s)
	}
	if pct {
		v /= 100
	}
	if v <= 0 || v >= 1 {
		return 0, fmt.Errorf("governor: budget %q out of range (need 0 < budget < 1)", s)
	}
	return v, nil
}
