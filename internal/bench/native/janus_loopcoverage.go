package native

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/cfg"
	"repro/internal/janus"
	"repro/internal/vm"
)

// Loop-coverage profiling written directly against the Janus API (the
// native equivalent of Figure 6): the static pass annotates every loop's
// entry, exit and back edges plus every basic block; the handlers
// maintain the live-loop set and per-loop block counters, and the fini
// handler reports coverage percentages.
func init() { register("janus", "loopcoverage", janusLoopCoverage) }

func janusLoopCoverage(prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error) {
	const (
		hEnter janus.HandlerID = iota + 1
		hLeave
		hBlock
		hFini
	)
	live := make(map[uint64]bool)
	blocks := make(map[uint64]uint64)
	var order []uint64
	seen := make(map[uint64]bool)
	var totalBlocks uint64

	tool := &janus.Tool{
		Name: "loopcoverage",
		StaticPass: func(sa *janus.StaticAnalyzer) {
			emitEdges := func(edges []cfg.Edge, h janus.HandlerID, id uint64) {
				for _, e := range edges {
					sa.EmitRule(janus.Rule{
						BlockAddr: e.To.Start, Aux: e.From.Start,
						Trigger: janus.TriggerEdge, Handler: h, Data: []uint64{id},
					})
				}
			}
			for _, f := range sa.Executable().Funcs {
				for _, l := range f.Loops {
					emitEdges(l.Entries, hEnter, uint64(l.ID))
					emitEdges(l.Exits, hLeave, uint64(l.ID))
				}
				for _, b := range f.Blocks {
					sa.EmitRule(janus.Rule{
						BlockAddr: b.Start, Trigger: janus.TriggerBlockEntry, Handler: hBlock,
					})
				}
			}
			sa.EmitRule(janus.Rule{Trigger: janus.TriggerFini, Handler: hFini})
		},
		Handlers: map[janus.HandlerID]janus.Handler{
			hEnter: {
				Fn: func(_ *vm.Ctx, data []uint64) {
					id := data[0]
					if !seen[id] {
						seen[id] = true
						order = append(order, id)
					}
					live[id] = true
				},
				Cost: 4 * stmtCost,
			},
			hLeave: {
				Fn:   func(_ *vm.Ctx, data []uint64) { live[data[0]] = false },
				Cost: 1 * stmtCost,
			},
			hBlock: {
				Fn: func(*vm.Ctx, []uint64) {
					totalBlocks++
					for id, on := range live {
						if on {
							blocks[id]++
						}
					}
				},
				Cost: 7 * stmtCost,
			},
			hFini: {
				Fn: func(*vm.Ctx, []uint64) {
					ids := append([]uint64(nil), order...)
					sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
					for _, id := range ids {
						fmt.Fprintf(out, "%d\n%d\n", id, blocks[id]*100/totalBlocks)
					}
				},
			},
		},
	}
	return janus.Run(prog, tool, janus.Config{Fuel: fuel})
}
