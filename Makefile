# Tier-1 gate and day-to-day targets. `make ci` is the gate every
# change must pass (see README.md); the other targets are its stages.

GO ?= go

.PHONY: ci vet build test race bench-smoke bench docs-gate

ci:
	sh scripts/ci.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every table/figure benchmark at a reduced workload
# scale — catches harness regressions without the full-scale runtime.
bench-smoke:
	CINNAMON_SCALE=0.1 $(GO) test -run '^$$' -bench . -benchtime 1x .

# Full-scale regeneration of every table and figure.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Documentation gate: every package has a godoc comment and the docs
# suite (README, LANGUAGE, BACKENDS, OBSERVABILITY) is present.
docs-gate:
	$(GO) run ./scripts/pkgdoc .
