package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSeriesDeltasAndRates(t *testing.T) {
	c := New(Options{})
	a := c.RegisterProbe(ProbeMeta{Label: "count_mallocs", Trigger: "opcode", Mechanism: "clean-call"})
	b := c.RegisterProbe(ProbeMeta{Label: "check_heap", Trigger: "memory", Mechanism: "inlined-call"})

	s := NewSeries(c, "vm", SeriesOptions{Interval: time.Second, Cap: 8})

	for i := 0; i < 10; i++ {
		c.Fire(a, 5, 0x100)
	}
	s.Sample(1 * time.Second)

	for i := 0; i < 4; i++ {
		c.Fire(a, 5, 0x100)
	}
	for i := 0; i < 6; i++ {
		c.Fire(b, 2, 0x200)
	}
	c.Fire(ProbeID(99<<probeIndexBits|1), 7, 0x300) // foreign → untracked
	s.Sample(3 * time.Second)

	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}

	p0 := pts[0]
	if p0.Seq != 0 || p0.Total.Fires != 10 || p0.Total.Cycles != 50 {
		t.Fatalf("point 0 = %+v", p0)
	}
	if p0.Total.FiresPerSec != 10 || p0.Total.CyclesPerSec != 50 {
		t.Fatalf("point 0 rates = %+v", p0.Total)
	}
	if len(p0.ByProbe) != 1 || p0.ByProbe[0].Label != "count_mallocs" || p0.ByProbe[0].Fires != 10 {
		t.Fatalf("point 0 by_probe = %+v", p0.ByProbe)
	}

	p1 := pts[1]
	// Interval 1s→3s: dt = 2s. Deltas: a +4 fires/20 cycles, b +6/12,
	// untracked +1/7 → total 11 fires, 39 cycles.
	if p1.Seq != 1 || p1.Total.Fires != 11 || p1.Total.Cycles != 39 {
		t.Fatalf("point 1 = %+v", p1)
	}
	if p1.IntervalSec != 2 || p1.Total.FiresPerSec != 5.5 || p1.Total.CyclesPerSec != 19.5 {
		t.Fatalf("point 1 rates = %+v interval=%v", p1.Total, p1.IntervalSec)
	}
	if got := p1.ByMechanism["clean-call"]; got.Fires != 4 || got.Cycles != 20 {
		t.Fatalf("clean-call rate = %+v", got)
	}
	if got := p1.ByMechanism["inlined-call"]; got.Fires != 6 || got.FiresPerSec != 3 {
		t.Fatalf("inlined-call rate = %+v", got)
	}
	if got := p1.ByMechanism["untracked"]; got.Fires != 1 || got.Cycles != 7 {
		t.Fatalf("untracked rate = %+v", got)
	}
	if len(p1.ByProbe) != 2 || p1.ByProbe[0].ID != 1 || p1.ByProbe[1].ID != 2 {
		t.Fatalf("point 1 by_probe = %+v", p1.ByProbe)
	}
}

func TestSeriesHandlesMidRunRegistration(t *testing.T) {
	c := New(Options{})
	a := c.RegisterProbe(ProbeMeta{Label: "early", Mechanism: "clean-call"})
	s := NewSeries(c, "vm", SeriesOptions{Interval: time.Second, Cap: 8})

	c.Fire(a, 1, 0)
	s.Sample(1 * time.Second)

	// A probe registered after the first sample must get a zero baseline.
	b := c.RegisterProbe(ProbeMeta{Label: "late", Mechanism: "snippet"})
	c.Fire(b, 3, 0)
	c.Fire(b, 3, 0)
	s.Sample(2 * time.Second)

	pts := s.Points()
	p := pts[1]
	if p.Total.Fires != 2 || p.Total.Cycles != 6 {
		t.Fatalf("point after late registration = %+v", p.Total)
	}
	if len(p.ByProbe) != 1 || p.ByProbe[0].Label != "late" || p.ByProbe[0].Fires != 2 {
		t.Fatalf("by_probe = %+v", p.ByProbe)
	}
}

func TestSeriesBoundedWindow(t *testing.T) {
	c := New(Options{})
	a := c.RegisterProbe(ProbeMeta{Label: "p", Mechanism: "clean-call"})
	s := NewSeries(c, "vm", SeriesOptions{Interval: time.Second, Cap: 3})

	for i := 1; i <= 5; i++ {
		c.Fire(a, 1, 0)
		s.Sample(time.Duration(i) * time.Second)
	}

	d := s.Dump()
	if d.Dropped != 2 || len(d.Points) != 3 {
		t.Fatalf("dropped=%d points=%d, want 2/3", d.Dropped, len(d.Points))
	}
	if d.Points[0].Seq != 2 || d.Points[2].Seq != 4 {
		t.Fatalf("retained seqs %d..%d, want 2..4", d.Points[0].Seq, d.Points[2].Seq)
	}
	if d.Points[0].Seq != d.Dropped {
		t.Fatalf("Points[0].Seq=%d != Dropped=%d", d.Points[0].Seq, d.Dropped)
	}
}

func TestSeriesQuietIntervalHasNoBreakdown(t *testing.T) {
	c := New(Options{})
	c.RegisterProbe(ProbeMeta{Label: "p", Mechanism: "clean-call"})
	s := NewSeries(c, "vm", SeriesOptions{})

	s.Sample(1 * time.Second)
	p := s.Points()[0]
	if p.Total.Fires != 0 || p.ByMechanism != nil || p.ByProbe != nil {
		t.Fatalf("quiet point = %+v", p)
	}
}

func TestSeriesDumpJSONRoundTrip(t *testing.T) {
	c := New(Options{})
	a := c.RegisterProbe(ProbeMeta{Label: "p", Trigger: "opcode", Mechanism: "clean-call"})
	s := NewSeries(c, "pin", SeriesOptions{Interval: 100 * time.Millisecond, Cap: 4})
	c.Fire(a, 2, 0x10)
	s.Sample(100 * time.Millisecond)

	var buf bytes.Buffer
	if err := s.Dump().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back SeriesDump
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Backend != "pin" || back.Cap != 4 || len(back.Points) != 1 {
		t.Fatalf("round trip = %+v", back)
	}
	if back.Points[0].Total.Fires != 1 || back.Points[0].ByProbe[0].Label != "p" {
		t.Fatalf("round trip point = %+v", back.Points[0])
	}
}

func TestSeriesStartStopConcurrentWithFires(t *testing.T) {
	c := New(Options{})
	a := c.RegisterProbe(ProbeMeta{Label: "hot", Mechanism: "inlined-call"})
	s := NewSeries(c, "vm", SeriesOptions{Interval: 2 * time.Millisecond, Cap: 1000})

	s.Start()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50000; i++ {
			c.Fire(a, 1, uint64(i))
		}
	}()
	wg.Wait()
	time.Sleep(5 * time.Millisecond)
	s.Stop()

	// Stop takes a final sample, so the series must account for every
	// fire exactly once across its deltas.
	var total uint64
	for _, p := range s.Points() {
		total += p.Total.Fires
	}
	if total != 50000 {
		t.Fatalf("series accounted %d fires, want 50000", total)
	}
}
