// Package parser builds the Cinnamon AST from source text, implementing
// the grammar of Figure 3 of the paper with a recursive-descent parser.
package parser

import (
	"fmt"
	"strconv"

	"repro/internal/core/ast"
	"repro/internal/core/lexer"
	"repro/internal/core/token"
)

// Error is a parse error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("cinnamon: %s: %s", e.Pos, e.Msg) }

// Parse parses a complete Cinnamon program.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []token.Token
	pos  int
}

func (p *parser) cur() token.Token  { return p.toks[p.pos] }
func (p *parser) peek() token.Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, p.errorf(t.Pos, "expected %s, found %s", k, t)
	}
	return p.next(), nil
}

// splitShr turns a SHR token into two GT tokens; needed when closing
// nested type parameters such as dict<addr,vector<int>>.
func (p *parser) splitShr() {
	t := p.cur()
	p.toks[p.pos] = token.Token{Kind: token.GT, Pos: t.Pos}
	rest := append([]token.Token{{Kind: token.GT, Pos: token.Pos{Line: t.Pos.Line, Col: t.Pos.Col + 1}}}, p.toks[p.pos+1:]...)
	p.toks = append(p.toks[:p.pos+1], rest...)
}

func (p *parser) program() (*ast.Program, error) {
	prog := &ast.Program{}
	for p.cur().Kind != token.EOF {
		item, err := p.topItem()
		if err != nil {
			return nil, err
		}
		prog.Items = append(prog.Items, item)
	}
	return prog, nil
}

func (p *parser) topItem() (ast.TopItem, error) {
	t := p.cur()
	switch {
	case t.Kind == token.INIT:
		p.next()
		body, err := p.stmtBlock()
		if err != nil {
			return nil, err
		}
		return &ast.InitBlock{P: t.Pos, Body: body}, nil
	case t.Kind == token.EXIT && p.peek().Kind == token.LBRACE:
		p.next()
		body, err := p.stmtBlock()
		if err != nil {
			return nil, err
		}
		return &ast.ExitBlock{P: t.Pos, Body: body}, nil
	case t.Kind.IsCFEKeyword():
		return p.command()
	case t.Kind.IsTypeKeyword():
		d, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		return d, nil
	}
	return nil, p.errorf(t.Pos, "expected declaration, command, init or exit block; found %s", t)
}

var cfeByToken = map[token.Kind]ast.EType{
	token.INST:       ast.Inst,
	token.BASICBLOCK: ast.BasicBlock,
	token.FUNC:       ast.Func,
	token.LOOP:       ast.Loop,
	token.MODULE:     ast.Module,
}

func (p *parser) command() (*ast.Command, error) {
	t := p.next() // CFE keyword
	cmd := &ast.Command{P: t.Pos, EType: cfeByToken[t.Kind]}
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	cmd.Var = name.Lit
	if p.cur().Kind == token.WHERE {
		cmd.Where, err = p.whereClause()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(token.LBRACE); err != nil {
		return nil, err
	}
	for p.cur().Kind != token.RBRACE {
		if p.cur().Kind == token.EOF {
			return nil, p.errorf(p.cur().Pos, "unterminated command body")
		}
		item, err := p.cmdItem()
		if err != nil {
			return nil, err
		}
		cmd.Body = append(cmd.Body, item)
	}
	p.next() // }
	return cmd, nil
}

func (p *parser) whereClause() (ast.Expr, error) {
	p.next() // where
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) cmdItem() (ast.CmdItem, error) {
	t := p.cur()
	switch {
	case t.Kind.IsCFEKeyword():
		return p.command()
	case t.Kind.IsTriggerKeyword():
		return p.action()
	default:
		return p.stmt()
	}
}

var triggerByToken = map[token.Kind]ast.Trigger{
	token.BEFORE: ast.Before,
	token.AFTER:  ast.After,
	token.ENTRY:  ast.Entry,
	token.EXIT:   ast.Exit,
	token.ITER:   ast.Iter,
}

func (p *parser) action() (*ast.Action, error) {
	t := p.next() // trigger keyword
	act := &ast.Action{P: t.Pos, Trigger: triggerByToken[t.Kind]}
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	act.Target = name.Lit
	if p.cur().Kind == token.WHERE {
		act.Where, err = p.whereClause()
		if err != nil {
			return nil, err
		}
	}
	if p.cur().Kind == token.SAMPLE {
		sp := p.next() // sample
		lit, err := p.expect(token.INT)
		if err != nil {
			return nil, err
		}
		n, perr := strconv.ParseInt(lit.Lit, 0, 64)
		if perr != nil || n < 1 {
			return nil, p.errorf(sp.Pos, "sample stride must be a positive integer, got %q", lit.Lit)
		}
		act.Sample = n
	}
	act.Body, err = p.stmtBlock()
	if err != nil {
		return nil, err
	}
	return act, nil
}

func (p *parser) stmtBlock() ([]ast.Stmt, error) {
	if _, err := p.expect(token.LBRACE); err != nil {
		return nil, err
	}
	var stmts []ast.Stmt
	for p.cur().Kind != token.RBRACE {
		if p.cur().Kind == token.EOF {
			return nil, p.errorf(p.cur().Pos, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // }
	return stmts, nil
}

func (p *parser) stmt() (ast.Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind.IsTypeKeyword():
		d, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		return &ast.DeclStmt{Decl: d}, nil
	case t.Kind == token.IF:
		return p.ifStmt()
	case t.Kind == token.FOR:
		return p.forStmt()
	}
	s, err := p.simpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	return s, nil
}

// simpleStmt parses an assignment or expression statement (without the
// trailing semicolon).
func (p *parser) simpleStmt() (ast.Stmt, error) {
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == token.ASSIGN {
		pos := p.next().Pos
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		switch e.(type) {
		case *ast.Ident, *ast.IndexExpr, *ast.FieldExpr:
		default:
			return nil, p.errorf(pos, "invalid assignment target")
		}
		return &ast.AssignStmt{P: pos, LHS: e, RHS: rhs}, nil
	}
	return &ast.ExprStmt{X: e}, nil
}

func (p *parser) ifStmt() (ast.Stmt, error) {
	t := p.next() // if
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	then, err := p.stmtBlock()
	if err != nil {
		return nil, err
	}
	s := &ast.IfStmt{P: t.Pos, Cond: cond, Then: then}
	if p.cur().Kind == token.ELSE {
		p.next()
		if p.cur().Kind == token.IF {
			nested, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			s.Else = []ast.Stmt{nested}
		} else {
			s.Else, err = p.stmtBlock()
			if err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

func (p *parser) forStmt() (ast.Stmt, error) {
	t := p.next() // for
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	s := &ast.ForStmt{P: t.Pos}
	// Init clause.
	if p.cur().Kind != token.SEMICOLON {
		if p.cur().Kind.IsTypeKeyword() {
			d, err := p.varDeclNoSemi()
			if err != nil {
				return nil, err
			}
			s.Init = &ast.DeclStmt{Decl: d}
		} else {
			st, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			s.Init = st
		}
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	// Condition.
	if p.cur().Kind != token.SEMICOLON {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	// Post clause.
	if p.cur().Kind != token.RPAREN {
		st, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		s.Post = st
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	body, err := p.stmtBlock()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

func (p *parser) varDecl() (*ast.VarDecl, error) {
	d, err := p.varDeclNoSemi()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.SEMICOLON); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) varDeclNoSemi() (*ast.VarDecl, error) {
	ts, err := p.typeSpec()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	d := &ast.VarDecl{P: ts.P, Type: ts, Name: name.Lit}
	// Static array suffix: `int hits[16]`.
	if p.cur().Kind == token.LBRACKET {
		p.next()
		n, err := p.expect(token.INT)
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseInt(n.Lit, 0, 32)
		if err != nil || v <= 0 {
			return nil, p.errorf(n.Pos, "invalid array length %q", n.Lit)
		}
		ts.ArrayLen = int(v)
		if _, err := p.expect(token.RBRACKET); err != nil {
			return nil, err
		}
	}
	switch p.cur().Kind {
	case token.ASSIGN:
		p.next()
		d.Init, err = p.expr()
		if err != nil {
			return nil, err
		}
	case token.LPAREN:
		// Constructor syntax, e.g. file outfile("fAddr.txt").
		p.next()
		for p.cur().Kind != token.RPAREN {
			arg, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Args = append(d.Args, arg)
			if p.cur().Kind == token.COMMA {
				p.next()
			}
		}
		p.next() // )
	}
	return d, nil
}

func (p *parser) typeSpec() (*ast.TypeSpec, error) {
	t := p.cur()
	if !t.Kind.IsTypeKeyword() {
		return nil, p.errorf(t.Pos, "expected type, found %s", t)
	}
	p.next()
	ts := &ast.TypeSpec{P: t.Pos, Kind: t.Kind}
	switch t.Kind {
	case token.TDICT:
		if _, err := p.expect(token.LT); err != nil {
			return nil, err
		}
		key, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.COMMA); err != nil {
			return nil, err
		}
		elem, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		if err := p.closeTypeParams(); err != nil {
			return nil, err
		}
		ts.Key, ts.Elem = key, elem
	case token.TVECTOR:
		if _, err := p.expect(token.LT); err != nil {
			return nil, err
		}
		elem, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		if err := p.closeTypeParams(); err != nil {
			return nil, err
		}
		ts.Elem = elem
	}
	return ts, nil
}

func (p *parser) closeTypeParams() error {
	if p.cur().Kind == token.SHR {
		p.splitShr()
	}
	_, err := p.expect(token.GT)
	return err
}

// expr parses an expression with precedence climbing.
func (p *parser) expr() (ast.Expr, error) {
	return p.binaryExpr(1)
}

func (p *parser) binaryExpr(minPrec int) (ast.Expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur()
		prec := op.Kind.Precedence()
		if prec < minPrec {
			return lhs, nil
		}
		p.next()
		if op.Kind == token.ISTYPE {
			st := p.cur()
			switch st.Kind {
			case token.KMEM, token.KREG, token.KCONST:
				p.next()
				lhs = &ast.IsTypeExpr{P: op.Pos, X: lhs, OpType: st.Kind}
				continue
			}
			return nil, p.errorf(st.Pos, "expected mem, reg or const after IsType, found %s", st)
		}
		rhs, err := p.binaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &ast.BinaryExpr{P: op.Pos, Op: op.Kind, X: lhs, Y: rhs}
	}
}

func (p *parser) unaryExpr() (ast.Expr, error) {
	t := p.cur()
	if t.Kind == token.NOT || t.Kind == token.MINUS {
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{P: t.Pos, Op: t.Kind, X: x}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (ast.Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case token.DOT:
			pos := p.next().Pos
			// Attribute names may collide with keywords (I.addr, B.size),
			// so any word token is accepted after the dot.
			name := p.cur()
			if name.Kind != token.IDENT && name.Lit == "" {
				return nil, p.errorf(name.Pos, "expected attribute name, found %s", name)
			}
			p.next()
			e = &ast.FieldExpr{P: pos, X: e, Name: name.Lit}
		case token.LBRACKET:
			pos := p.next().Pos
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RBRACKET); err != nil {
				return nil, err
			}
			e = &ast.IndexExpr{P: pos, X: e, Index: idx}
		case token.LPAREN:
			switch e.(type) {
			case *ast.Ident, *ast.FieldExpr:
			default:
				return nil, p.errorf(p.cur().Pos, "cannot call this expression")
			}
			pos := p.next().Pos
			call := &ast.CallExpr{P: pos, Fun: e}
			for p.cur().Kind != token.RPAREN {
				if p.cur().Kind == token.EOF {
					return nil, p.errorf(p.cur().Pos, "unterminated argument list")
				}
				arg, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.cur().Kind == token.COMMA {
					p.next()
				} else if p.cur().Kind != token.RPAREN {
					return nil, p.errorf(p.cur().Pos, "expected , or ) in argument list")
				}
			}
			p.next() // )
			e = call
		default:
			return e, nil
		}
	}
}

func (p *parser) primaryExpr() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case token.IDENT:
		p.next()
		return &ast.Ident{P: t.Pos, Name: t.Lit}, nil
	case token.INT:
		p.next()
		v, err := strconv.ParseUint(t.Lit, 0, 64)
		if err != nil {
			return nil, p.errorf(t.Pos, "invalid integer literal %q", t.Lit)
		}
		return &ast.IntLit{P: t.Pos, Val: int64(v)}, nil
	case token.STRING:
		p.next()
		return &ast.StringLit{P: t.Pos, Val: t.Lit}, nil
	case token.CHAR:
		p.next()
		return &ast.CharLit{P: t.Pos, Val: t.Lit[0]}, nil
	case token.TRUE, token.FALSE:
		p.next()
		return &ast.BoolLit{P: t.Pos, Val: t.Kind == token.TRUE}, nil
	case token.NULL:
		p.next()
		return &ast.NullLit{P: t.Pos}, nil
	case token.OPCODE:
		p.next()
		return &ast.OpcodeLit{P: t.Pos, Name: t.Lit}, nil
	case token.LPAREN:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errorf(t.Pos, "unexpected %s in expression", t)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
