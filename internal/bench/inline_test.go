package bench

import (
	"io"
	"os"
	"testing"

	"repro/internal/core/backend"
	"repro/internal/obs"
	"repro/internal/progs"
	"repro/internal/vm"
	"repro/internal/workload"
)

// TestInlinedActionSpeedup is the perf regression gate for the
// action-inlining layer: on an action-heavy workload (the opcode-mix
// profiler — four counter probes firing on every instruction) the
// translated tier with inlining must beat the same tier with inlining
// disabled by at least 1.5x (measured headroom is ~3-5x; the margin
// absorbs CI noise). Like the other perf gates it only runs when
// CINNAMON_PERF_GATE is set.
func TestInlinedActionSpeedup(t *testing.T) {
	if os.Getenv("CINNAMON_PERF_GATE") == "" {
		t.Skip("set CINNAMON_PERF_GATE=1 to run the action-inlining perf gate")
	}
	tool, err := compileTool(progs.OpcodeMix)
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := workload.ByName("leela")
	if !ok {
		t.Fatal("no leela benchmark")
	}
	prog, err := BuildBenchmark(spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	bench := func(noInline bool) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := backend.Run(tool, prog, backend.Janus, backend.Options{
					Out:        io.Discard,
					VMMode:     vm.ExecTranslated,
					VMNoInline: noInline,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	measure := func(f func(*testing.B)) float64 {
		best := 0.0
		for i := 0; i < 5; i++ {
			r := testing.Benchmark(f)
			nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
			if best == 0 || nsPerOp < best {
				best = nsPerOp
			}
		}
		return best
	}
	const want = 1.5
	var speedup float64
	for attempt := 0; attempt < 3; attempt++ {
		plain := measure(bench(true))
		inlined := measure(bench(false))
		speedup = plain / inlined
		t.Logf("attempt %d: no-inline %.0f ns/op, inlined %.0f ns/op, speedup %.2fx",
			attempt, plain, inlined, speedup)
		if speedup >= want {
			return
		}
	}
	t.Errorf("inlined actions are only %.2fx faster than no-inline (want >= %.1fx)", speedup, want)
}

// TestAttributionResidualZeroNoInline pins the attribution invariant on
// the escape-hatch path too: with inlining disabled the decomposition
// into app, probe and translation cycles must still leave residual
// exactly zero. (The inline-on case is TestAttributionResidualZero.)
func TestAttributionResidualZeroNoInline(t *testing.T) {
	spec, ok := workload.ByName("leela")
	if !ok {
		t.Fatal("no leela benchmark")
	}
	prog, err := BuildBenchmark(spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	base, err := vm.New(prog, vm.Config{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	tool, err := compileTool(progs.InstCountBB)
	if err != nil {
		t.Fatal(err)
	}
	for _, noInline := range []bool{false, true} {
		col := obs.New(obs.Options{})
		res, err := backend.Run(tool, prog, backend.Janus, backend.Options{
			Out:        io.Discard,
			Obs:        col,
			VMNoInline: noInline,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := col.Snapshot(backend.Janus)
		residual := int64(res.Cycles-base.Cycles) - int64(s.ProbeCycles) - int64(s.Build.TranslationCycles)
		if residual != 0 {
			t.Errorf("noInline=%v: residual = %d cycles unattributed (total=%d app=%d probes=%d translation=%d)",
				noInline, residual, res.Cycles, base.Cycles, s.ProbeCycles, s.Build.TranslationCycles)
		}
	}
}
