package bench

import (
	"strings"
	"testing"
)

// TestAttributionResidualZero checks the attribution completeness
// invariant: every instrumentation cycle a framework charges is captured
// either as probe dispatch or as translation cost, so the decomposition
// has no residual on any backend.
func TestAttributionResidualZero(t *testing.T) {
	rows, err := Attribution("leela", testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Frameworks) {
		t.Fatalf("got %d rows, want one per framework (%d)", len(rows), len(Frameworks))
	}
	for _, r := range rows {
		if r.TotalCycles == 0 {
			t.Errorf("%s: framework rejected the benchmark", r.Backend)
			continue
		}
		if r.Residual != 0 {
			t.Errorf("%s: residual = %d cycles unattributed (total=%d app=%d probes=%d translation=%d)",
				r.Backend, r.Residual, r.TotalCycles, r.AppCycles, r.ProbeCycles, r.TranslationCycles)
		}
		if r.ProbeCycles == 0 {
			t.Errorf("%s: no probe cycles attributed", r.Backend)
		}
		if r.OverheadPct <= 0 {
			t.Errorf("%s: overhead = %.2f%%, want > 0", r.Backend, r.OverheadPct)
		}
	}
	var sb strings.Builder
	FormatAttribution(&sb, rows)
	for _, fw := range Frameworks {
		if !strings.Contains(sb.String(), fw) {
			t.Errorf("formatted table missing %s row:\n%s", fw, sb.String())
		}
	}
}
