package backend

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/core/engine"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/progs"
	"repro/internal/vm"
	"repro/internal/workload"
)

func loadSrc(t *testing.T, srcs ...string) *cfg.Program {
	t.Helper()
	mods := make([]*obj.Module, 0, len(srcs))
	for _, s := range srcs {
		m, err := asm.Assemble(s)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, m)
	}
	return loadMods(t, mods)
}

func loadMods(t *testing.T, mods []*obj.Module) *cfg.Program {
	t.Helper()
	p, err := obj.Load(mods, vm.RuntimeExterns())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func loadVictim(t *testing.T, name string) *cfg.Program {
	t.Helper()
	m, err := workload.Victim(name)
	if err != nil {
		t.Fatal(err)
	}
	return loadMods(t, []*obj.Module{m})
}

func compile(t *testing.T, name string) *engine.CompiledTool {
	t.Helper()
	tool, err := engine.Compile(progs.MustSource(name))
	if err != nil {
		t.Fatal(err)
	}
	return tool
}

// runTool runs a case-study tool on a program under a backend and
// returns the tool output.
func runTool(t *testing.T, toolName string, prog *cfg.Program, backendName string) (string, *vm.Result) {
	t.Helper()
	var out bytes.Buffer
	res, err := Run(compile(t, toolName), prog, backendName, Options{Out: &out})
	if err != nil {
		t.Fatalf("%s on %s: %v", toolName, backendName, err)
	}
	return out.String(), res
}

const loadsSrc = `
.module a.out
.executable
.entry main
.func main
  mov  r5, @buf
  load r4, [r5]
  mov  r2, 0
  mov  r3, 10
head:
  load r4, [r5+8]
  add  r2, r2, 1
  blt  r2, r3, head
  halt
.data
buf: .quad 1, 2
`

func TestInstCountConsistencyAcrossBackends(t *testing.T) {
	// Figure 12's headline property: the same Cinnamon program reports
	// the same counts on every backend (absent shared libraries).
	for _, toolName := range []string{progs.InstCountBasic, progs.InstCountBB} {
		for _, b := range Backends() {
			prog := loadSrc(t, loadsSrc)
			out, _ := runTool(t, toolName, prog, b)
			if out != "11\n" {
				t.Errorf("%s on %s: output %q, want 11", toolName, b, out)
			}
		}
	}
}

func TestPinSeesSharedLibraries(t *testing.T) {
	lib := `
.module libshared
.global libfn
.func libfn
  mov  r12, @lbuf
  load r13, [r12]
  load r13, [r12+8]
  ret
.data
lbuf: .quad 5, 6
`
	main := `
.module a.out
.executable
.entry main
.extern libfn
.func main
  mov  r5, @buf
  load r4, [r5]
  call libfn
  call libfn
  halt
.data
buf: .quad 1
`
	counts := map[string]string{}
	for _, b := range Backends() {
		prog := loadSrc(t, main, lib)
		out, _ := runTool(t, progs.InstCountBasic, prog, b)
		counts[b] = strings.TrimSpace(out)
	}
	// Pin (dynamic) sees the 4 shared-library loads; the static-analysis
	// backends only instrument the executable.
	if counts[Pin] != "5" {
		t.Errorf("pin count = %s, want 5", counts[Pin])
	}
	if counts[Janus] != "1" || counts[Dyninst] != "1" {
		t.Errorf("static counts = janus:%s dyninst:%s, want 1", counts[Janus], counts[Dyninst])
	}
}

func TestLoopCoverage(t *testing.T) {
	for _, b := range []string{Janus, Dyninst} {
		prog := loadVictim(t, "loopy")
		out, _ := runTool(t, progs.LoopCoverage, prog, b)
		lines := strings.Split(strings.TrimSpace(out), "\n")
		// Two loops: id, coverage%, id, coverage%.
		if len(lines) != 4 {
			t.Fatalf("%s: output = %q", b, out)
		}
		hot := lines[1]
		cold := lines[3]
		// The hot loop runs 200 iterations of 1 block; the cold one 3.
		// Coverage percentages must reflect that dominance.
		if hot < "90" || len(hot) < 2 {
			t.Errorf("%s: hot loop coverage = %s%%, want >=90", b, hot)
		}
		if len(cold) > 2 {
			t.Errorf("%s: cold loop coverage = %s%%, want small", b, cold)
		}
	}
}

func TestLoopCoverageRejectedByPin(t *testing.T) {
	// The paper: "the loop coverage example ... could not be translated
	// to Pin in its original form as Pin does not have a notion of
	// loops."
	prog := loadVictim(t, "loopy")
	_, err := Run(compile(t, progs.LoopCoverage), prog, Pin, Options{})
	if err == nil || !strings.Contains(err.Error(), "no notion of loops") {
		t.Fatalf("err = %v, want loop-rejection", err)
	}
}

func TestUseAfterFreeDetection(t *testing.T) {
	for _, b := range Backends() {
		out, _ := runTool(t, progs.UseAfterFree, loadVictim(t, "uaf_bug"), b)
		if !strings.Contains(out, "ERROR: use after free access") {
			t.Errorf("%s: UAF not detected: %q", b, out)
		}
		if n := strings.Count(out, "ERROR"); n != 1 {
			t.Errorf("%s: %d errors, want exactly 1", b, n)
		}
		out, _ = runTool(t, progs.UseAfterFree, loadVictim(t, "uaf_clean"), b)
		if out != "" {
			t.Errorf("%s: false positive on clean program: %q", b, out)
		}
	}
}

func TestShadowStackDetection(t *testing.T) {
	for _, b := range Backends() {
		out, _ := runTool(t, progs.ShadowStack, loadVictim(t, "stack_smash"), b)
		if !strings.Contains(out, "ERROR") {
			t.Errorf("%s: smashed return not detected: %q", b, out)
		}
		out, _ = runTool(t, progs.ShadowStack, loadVictim(t, "stack_clean"), b)
		if out != "" {
			t.Errorf("%s: false positive on clean program: %q", b, out)
		}
	}
}

func TestForwardCFIDetection(t *testing.T) {
	for _, b := range Backends() {
		out, _ := runTool(t, progs.ForwardCFI, loadVictim(t, "indirect_attack"), b)
		if n := strings.Count(out, "ERROR"); n != 1 {
			t.Errorf("%s: corrupted indirect call: %d errors, want 1 (%q)", b, n, out)
		}
		out, _ = runTool(t, progs.ForwardCFI, loadVictim(t, "indirect_clean"), b)
		if out != "" {
			t.Errorf("%s: false positive on clean program: %q", b, out)
		}
	}
}

func TestDyninstRefusesImpreciseBinaries(t *testing.T) {
	s, _ := workload.ByName("gcc") // unrecoverable jump tables
	mods, err := s.Build(0.05)
	if err != nil {
		t.Fatal(err)
	}
	prog := loadMods(t, mods)
	_, err = Run(compile(t, progs.InstCountBB), prog, Dyninst, Options{})
	if err == nil || !strings.Contains(err.Error(), "control-flow recovery failed") {
		t.Fatalf("err = %v, want recovery failure", err)
	}
	// Pin and Janus handle the same binary fine.
	for _, b := range []string{Pin, Janus} {
		prog := loadMods(t, mods)
		if _, err := Run(compile(t, progs.InstCountBB), prog, b, Options{}); err != nil {
			t.Errorf("%s: %v", b, err)
		}
	}
}

func TestBenchmarkCountsAgreeOnSuite(t *testing.T) {
	// Spot-check two benchmarks: per-load and per-block counting agree
	// with each other and with ground truth, on every backend that can
	// process the binary.
	for _, name := range []string{"mcf", "deepsjeng"} {
		s, _ := workload.ByName(name)
		mods, err := s.Build(0.05)
		if err != nil {
			t.Fatal(err)
		}
		// Ground truth: count loads with a raw VM probe.
		prog := loadMods(t, mods)
		machine := vm.New(prog, vm.Config{})
		var truth uint64
		for _, m := range prog.Modules {
			for _, f := range m.Funcs {
				for _, blk := range f.Blocks {
					for _, in := range blk.Insts {
						if in.Op == isa.Load {
							if err := machine.AddBefore(in.Addr, 0, func(*vm.Ctx) { truth++ }); err != nil {
								t.Fatal(err)
							}
						}
					}
				}
			}
		}
		if _, err := machine.Run(); err != nil {
			t.Fatal(err)
		}
		for _, b := range Backends() {
			for _, toolName := range []string{progs.InstCountBasic, progs.InstCountBB} {
				prog := loadMods(t, mods)
				out, _ := runTool(t, toolName, prog, b)
				got := strings.TrimSpace(out)
				want := strconv.FormatUint(truth, 10)
				if got != want {
					t.Errorf("%s/%s/%s: count = %s, want %s", name, b, toolName, got, want)
				}
			}
		}
	}
}

func TestCinnamonOverheadOrdering(t *testing.T) {
	// The Figure 13 premise: running the same Cinnamon bb-count tool
	// costs more cycles than running the program uninstrumented, and the
	// per-framework base costs differ.
	s, _ := workload.ByName("mcf")
	mods, err := s.Build(0.05)
	if err != nil {
		t.Fatal(err)
	}
	base := loadMods(t, mods)
	bare := vm.New(base, vm.Config{})
	bres, err := bare.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range Backends() {
		prog := loadMods(t, mods)
		_, res := runTool(t, progs.InstCountBB, prog, b)
		if res.Cycles <= bres.Cycles {
			t.Errorf("%s: instrumented cycles %d <= bare %d", b, res.Cycles, bres.Cycles)
		}
		if res.Insts != bres.Insts {
			t.Errorf("%s: instruction count changed: %d vs %d", b, res.Insts, bres.Insts)
		}
	}
}
