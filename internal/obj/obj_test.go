package obj

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// buildModule assembles a tiny module by hand: one function that calls an
// imported symbol, plus a data word relocated to the function.
func buildModule(t *testing.T, name string, exec bool) *Module {
	t.Helper()
	var code []byte
	var err error
	call := &isa.Inst{Op: isa.Call, Ops: []isa.Operand{isa.ImmOp(0)}}
	code, err = isa.Encode(code, call)
	if err != nil {
		t.Fatal(err)
	}
	callSite, err := isa.ImmOffset(call, 0)
	if err != nil {
		t.Fatal(err)
	}
	code, err = isa.Encode(code, &isa.Inst{Op: isa.Halt})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 16)
	return &Module{
		Name:       name,
		Executable: exec,
		Code:       code,
		Data:       data,
		Syms: []Symbol{
			{Name: "main", Kind: SymFunc, Off: 0, Size: uint64(len(code)), Global: true},
			{Name: "tab", Kind: SymData, Off: 0, Size: 16},
		},
		Relocs: []Reloc{
			{Kind: RelocCode, Off: uint64(callSite), Sym: "helper"},
			{Kind: RelocData, Off: 8, Sym: "main", Addend: 4},
		},
		Imports: []string{"helper"},
	}
}

func helperModule(t *testing.T) *Module {
	t.Helper()
	code, err := isa.Encode(nil, &isa.Inst{Op: isa.Return})
	if err != nil {
		t.Fatal(err)
	}
	return &Module{
		Name: "libhelper",
		Code: code,
		Syms: []Symbol{{Name: "helper", Kind: SymFunc, Off: 0, Size: uint64(len(code)), Global: true}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := buildModule(t, "a.out", true)
	m.JumpTables = []JumpTable{{DataOff: 0, Count: 2, BranchOff: 0, Recoverable: true}}
	b, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || got.Executable != m.Executable || got.Entry != m.Entry {
		t.Errorf("header mismatch: %+v", got)
	}
	if string(got.Code) != string(m.Code) || string(got.Data) != string(m.Data) {
		t.Error("section mismatch")
	}
	if len(got.Syms) != len(m.Syms) || got.Syms[0] != m.Syms[0] || got.Syms[1] != m.Syms[1] {
		t.Errorf("symbols mismatch: %+v", got.Syms)
	}
	if len(got.Relocs) != 2 || got.Relocs[0] != m.Relocs[0] || got.Relocs[1] != m.Relocs[1] {
		t.Errorf("relocs mismatch: %+v", got.Relocs)
	}
	if len(got.Imports) != 1 || got.Imports[0] != "helper" {
		t.Errorf("imports mismatch: %v", got.Imports)
	}
	if len(got.JumpTables) != 1 || got.JumpTables[0] != m.JumpTables[0] {
		t.Errorf("jump tables mismatch: %+v", got.JumpTables)
	}
}

func TestDecodeErrors(t *testing.T) {
	m := buildModule(t, "a.out", true)
	good, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("NOPE0000")},
		{"truncated", good[:len(good)/2]},
		{"bad version", append(append([]byte{}, Magic[:]...), 0xff, 0, 0, 0)},
	}
	for _, c := range cases {
		if _, err := Decode(c.data); err == nil {
			t.Errorf("%s: Decode succeeded, want error", c.name)
		}
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	// Corrupt object files must produce errors, never panics.
	m := buildModule(t, "a.out", true)
	good, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos int, b byte) bool {
		if len(good) == 0 {
			return true
		}
		mut := make([]byte, len(good))
		copy(mut, good)
		if pos < 0 {
			pos = -pos
		}
		mut[pos%len(mut)] ^= b
		_, _ = Decode(mut) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mod  *Module
	}{
		{"no name", &Module{}},
		{"dup symbol", &Module{Name: "m", Code: make([]byte, 8), Syms: []Symbol{
			{Name: "f", Kind: SymFunc}, {Name: "f", Kind: SymFunc},
		}}},
		{"unnamed symbol", &Module{Name: "m", Syms: []Symbol{{}}}},
		{"symbol out of range", &Module{Name: "m", Code: make([]byte, 4), Syms: []Symbol{
			{Name: "f", Kind: SymFunc, Off: 2, Size: 10},
		}}},
		{"reloc out of range", &Module{Name: "m", Code: make([]byte, 4), Relocs: []Reloc{
			{Kind: RelocCode, Off: 0, Sym: "x"},
		}}},
		{"reloc no symbol", &Module{Name: "m", Code: make([]byte, 16), Relocs: []Reloc{
			{Kind: RelocCode, Off: 0},
		}}},
		{"jump table out of range", &Module{Name: "m", Data: make([]byte, 8), JumpTables: []JumpTable{
			{DataOff: 0, Count: 4},
		}}},
	}
	for _, c := range cases {
		if err := c.mod.Validate(); err == nil {
			t.Errorf("%s: Validate = nil, want error", c.name)
		}
	}
}

func TestLoad(t *testing.T) {
	main := buildModule(t, "a.out", true)
	lib := helperModule(t)
	externs := map[string]uint64{"print": IntrinsicBase + 8}
	p, err := Load([]*Module{lib, main}, externs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Executable().Name != "a.out" {
		t.Errorf("executable = %s, want a.out (reordered first)", p.Executable().Name)
	}
	if p.Modules[0].Base != BaseAddr {
		t.Errorf("exe base = %#x, want %#x", p.Modules[0].Base, BaseAddr)
	}
	if p.Entry() != BaseAddr {
		t.Errorf("entry = %#x, want %#x", p.Entry(), BaseAddr)
	}
	// The code relocation must point at the helper in the library module.
	libMod := p.Modules[1]
	helperAddr, ok := libMod.SymAddr("helper")
	if !ok {
		t.Fatal("helper symbol missing")
	}
	insts, err := isa.DecodeAll(p.Modules[0].Image, p.Modules[0].Base)
	if err != nil {
		t.Fatal(err)
	}
	tgt, ok := insts[0].IsDirectTarget()
	if !ok || tgt != helperAddr {
		t.Errorf("call target = %#x, want %#x", tgt, helperAddr)
	}
	// The data relocation must hold main+4.
	word := binary.LittleEndian.Uint64(p.Modules[0].DataImage[8:])
	if word != BaseAddr+4 {
		t.Errorf("data reloc = %#x, want %#x", word, BaseAddr+4)
	}
	// Reverse lookups.
	if mod, ok := p.ModuleAt(BaseAddr + 1); !ok || mod.Name != "a.out" {
		t.Errorf("ModuleAt = %v, %v", mod, ok)
	}
	if _, ok := p.ModuleAt(0x2); ok {
		t.Error("ModuleAt(0x2) succeeded")
	}
	name, entry, ok := p.FuncAt(BaseAddr + 2)
	if !ok || name != "main" || entry != BaseAddr {
		t.Errorf("FuncAt = %q, %#x, %v", name, entry, ok)
	}
	if got := p.NameAt(helperAddr); got != "helper" {
		t.Errorf("NameAt(helper) = %q", got)
	}
	if got := p.NameAt(IntrinsicBase + 8); got != "print" {
		t.Errorf("NameAt(intrinsic) = %q", got)
	}
	if got := p.NameAt(helperAddr + 1); got != "" {
		t.Errorf("NameAt(mid-func) = %q, want empty", got)
	}
	if !IsIntrinsic(IntrinsicBase) || IsIntrinsic(BaseAddr) {
		t.Error("IsIntrinsic misclassifies")
	}
}

func TestLoadErrors(t *testing.T) {
	main := buildModule(t, "a.out", true)
	main2 := buildModule(t, "b.out", true)
	lib := helperModule(t)

	if _, err := Load(nil, nil); err == nil {
		t.Error("Load(nil) succeeded")
	}
	if _, err := Load([]*Module{lib}, nil); err == nil {
		t.Error("Load without executable succeeded")
	}
	if _, err := Load([]*Module{main, main2, lib}, nil); err == nil {
		t.Error("Load with two executables succeeded")
	}
	// Unresolved import.
	if _, err := Load([]*Module{main}, nil); err == nil {
		t.Error("Load with unresolved symbol succeeded")
	}
	// Duplicate global.
	lib2 := helperModule(t)
	lib2.Name = "libhelper2"
	if _, err := Load([]*Module{main, lib, lib2}, nil); err == nil {
		t.Error("Load with duplicate global succeeded")
	}
}

func TestModuleHelpers(t *testing.T) {
	m := buildModule(t, "a.out", true)
	fns := m.Funcs()
	if len(fns) != 1 || fns[0].Name != "main" {
		t.Errorf("Funcs = %+v", fns)
	}
	if _, ok := m.Sym("nope"); ok {
		t.Error("Sym(nope) succeeded")
	}
	if m.HasUnrecoverableControlFlow() {
		t.Error("module reported unrecoverable control flow")
	}
	m.JumpTables = append(m.JumpTables, JumpTable{Recoverable: false})
	if !m.HasUnrecoverableControlFlow() {
		t.Error("unrecoverable jump table not detected")
	}
	if SymFunc.String() != "func" || SymData.String() != "data" {
		t.Error("SymKind strings wrong")
	}
	if RelocCode.String() != "code" || RelocData.String() != "data" {
		t.Error("RelocKind strings wrong")
	}
}
