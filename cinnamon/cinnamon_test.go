package cinnamon

import (
	"bytes"
	"strings"
	"testing"
)

const countTool = `
uint64 inst_count = 0;
inst I where (I.opcode == Load) {
  before I {
    inst_count = inst_count + 1;
  }
}
exit {
  print(inst_count);
}
`

const app = `
.module app
.executable
.entry main
.extern print
.func main
  mov  r5, @buf
  mov  r2, 0
  mov  r3, 5
head:
  load r4, [r5]
  add  r2, r2, 1
  blt  r2, r3, head
  mov  r1, r2
  call print
  halt
.data
buf: .quad 42
`

func TestCompileAndRunAllBackends(t *testing.T) {
	tool, err := Compile(countTool)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tool.Source(), "inst_count") {
		t.Error("Source lost")
	}
	target, err := LoadAssembly(app)
	if err != nil {
		t.Fatal(err)
	}
	if len(Backends()) != 3 {
		t.Fatalf("backends = %v", Backends())
	}
	for _, b := range Backends() {
		rep, err := tool.Run(target, b, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.ToolOutput != "5\n" {
			t.Errorf("%s: output = %q, want 5", b, rep.ToolOutput)
		}
		if rep.Backend != b || rep.Insts == 0 || rep.Cycles == 0 {
			t.Errorf("%s: report = %+v", b, rep)
		}
	}
}

func TestToolOutStreaming(t *testing.T) {
	tool, err := Compile(countTool)
	if err != nil {
		t.Fatal(err)
	}
	target, err := LoadAssembly(app)
	if err != nil {
		t.Fatal(err)
	}
	var toolOut, appOut bytes.Buffer
	rep, err := tool.Run(target, Pin, RunOptions{ToolOut: &toolOut, AppOut: &appOut})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ToolOutput != "" {
		t.Error("captured output should be empty when streaming")
	}
	if toolOut.String() != "5\n" {
		t.Errorf("streamed tool output = %q", toolOut.String())
	}
	if appOut.String() != "5\n" { // the app prints its own loop count
		t.Errorf("app output = %q", appOut.String())
	}
}

func TestBaselineRun(t *testing.T) {
	target, err := LoadAssembly(app)
	if err != nil {
		t.Fatal(err)
	}
	base, err := BaselineRun(target, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tool, err := Compile(countTool)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tool.Run(target, Dyninst, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles <= base.Cycles {
		t.Errorf("instrumented (%d) not costlier than baseline (%d)", rep.Cycles, base.Cycles)
	}
	if rep.Insts != base.Insts {
		t.Errorf("instruction counts differ: %d vs %d", rep.Insts, base.Insts)
	}
}

func TestGenerateCode(t *testing.T) {
	tool, err := Compile(countTool)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range Backends() {
		files, err := tool.GenerateCode(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Errorf("%s: no files", b)
		}
	}
	if _, err := tool.GenerateCode("valgrind"); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestErrors(t *testing.T) {
	if _, err := Compile("int x = ;"); err == nil {
		t.Error("bad program compiled")
	}
	if _, err := LoadAssembly("garbage"); err == nil {
		t.Error("bad assembly loaded")
	}
	tool, err := Compile(countTool)
	if err != nil {
		t.Fatal(err)
	}
	target, err := LoadAssembly(app)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tool.Run(target, "valgrind", RunOptions{}); err == nil {
		t.Error("unknown backend ran")
	}
}

func TestTargetReusableAcrossRuns(t *testing.T) {
	tool, err := Compile(countTool)
	if err != nil {
		t.Fatal(err)
	}
	target, err := LoadAssembly(app)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := tool.Run(target, Janus, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tool.Run(target, Janus, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.ToolOutput != r2.ToolOutput {
		t.Error("target reuse is not deterministic")
	}
}
