package main

import (
	"strings"
	"testing"
)

// Documented behaviour: each monitor detects exactly one violation in
// its attack scenario — the shadow stack catches the smashed return,
// the forward-CFI check catches the mid-function call target.
func TestCFIMonitorsOutput(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"shadow stack vs stack smash",
		"forward CFI vs bad pointer",
	} {
		found := false
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, want) && strings.Contains(line, "1 violation(s) detected") {
				found = true
			}
		}
		if !found {
			t.Errorf("%q did not report exactly one violation:\n%s", want, out)
		}
	}
}
