package native

import (
	"fmt"
	"io"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/janus"
	"repro/internal/vm"
)

// Forward-edge CFI written directly against the Janus API: the static
// pass collects every function entry in the executable into the valid-
// target set and annotates every call; the handler checks the resolved
// target against the set.
func init() { register("janus", "forwardcfi", janusForwardCFI) }

func janusForwardCFI(prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error) {
	const hCheck janus.HandlerID = 1
	valid := make(map[uint64]bool)
	tool := &janus.Tool{
		Name: "forwardcfi",
		StaticPass: func(sa *janus.StaticAnalyzer) {
			for _, f := range sa.Executable().Funcs {
				valid[f.Entry] = true
				for _, b := range f.Blocks {
					for _, in := range b.Insts {
						if in.Op == isa.Call {
							sa.EmitRule(janus.Rule{
								BlockAddr: b.Start, InstAddr: in.Addr,
								Trigger: janus.TriggerBefore, Handler: hCheck,
							})
						}
					}
				}
			}
		},
		Handlers: map[janus.HandlerID]janus.Handler{
			hCheck: {
				Fn: func(c *vm.Ctx, _ []uint64) {
					tgt, _ := c.Target()
					if !valid[tgt] {
						fmt.Fprintln(out, "ERROR")
					}
				},
				Cost: 2 * stmtCost,
			},
		},
	}
	return janus.Run(prog, tool, janus.Config{Fuel: fuel})
}
