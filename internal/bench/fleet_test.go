package bench

import (
	"os"
	"runtime"
	"testing"
)

// A small harness run settles every session, reports activity, and
// never sees an inconsistent rollup.
func TestFleetHarnessSmall(t *testing.T) {
	res, err := Fleet(FleetOptions{Sessions: 6, Workers: 3, Loop: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 6 || res.Failed != 0 {
		t.Fatalf("done=%d failed=%d, want 6/0", res.Done, res.Failed)
	}
	if res.TotalFires == 0 || res.FiresPerSec == 0 {
		t.Fatalf("no activity recorded: %+v", res)
	}
	if !res.RollupConsistent {
		t.Fatal("a scrape violated rollup exactness")
	}
	if res.Scrapes == 0 {
		t.Fatal("no scrapes issued")
	}
}

// The fleet perf gate (scripts/ci.sh): with 32 live sessions over a
// CPU-proportional worker pool the fleet must sustain millions of probe
// fires per second, every mid-churn scrape must stay rollup-exact, and
// a /metrics snapshot must stay cheap at the tail. The pool is sized to
// 2× the machine's cores (capped at 32): worker goroutines are pure
// CPU, so a pool far beyond the core count measures run-queue depth,
// not the snapshot path — a daemon is deployed with headroom for its
// observers. Timing-dependent, so it only runs when CINNAMON_PERF_GATE
// is set.
func TestFleetSnapshotLatencyGate(t *testing.T) {
	if os.Getenv("CINNAMON_PERF_GATE") == "" {
		t.Skip("set CINNAMON_PERF_GATE=1 to run the fleet perf gate")
	}
	workers := 2 * runtime.NumCPU()
	if workers > 32 {
		workers = 32
	}
	if workers < 2 {
		workers = 2
	}
	res, err := Fleet(FleetOptions{Sessions: 32, Workers: workers, Loop: 20000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fleet gate: %.0f fires/sec over %d sessions (%d workers), %d scrapes, p50 %.2fms p99 %.2fms",
		res.FiresPerSec, res.Sessions, workers, res.Scrapes, res.ScrapeP50Ms, res.ScrapeP99Ms)
	if res.Done != 32 {
		t.Fatalf("done=%d failed=%d, want all 32 done", res.Done, res.Failed)
	}
	if !res.RollupConsistent {
		t.Fatal("a scrape under load violated rollup exactness")
	}
	const minFiresPerSec = 1_000_000
	if res.FiresPerSec < minFiresPerSec {
		t.Fatalf("aggregate throughput %.0f fires/sec, gate %d", res.FiresPerSec, minFiresPerSec)
	}
	const maxP99Ms = 250.0
	if res.ScrapeP99Ms > maxP99Ms {
		t.Fatalf("/metrics p99 %.2fms exceeds the %.0fms budget", res.ScrapeP99Ms, maxP99Ms)
	}
	if res.Scrapes < 3 {
		t.Fatalf("only %d scrapes completed under load; the latency sample is meaningless", res.Scrapes)
	}
}

// The warm-startup perf gate: a session joining an established fleet
// (primed artifact cache) must start at least 5x faster than one
// against an empty cache, and the churn itself must actually exercise
// the cache (hits recorded — 48 identical-victim sessions over 3 tools
// should rebuild almost nothing). Startup here is everything before
// the session's first instruction: tool compile, victim assemble+build
// and instrumentation lowering (backend.Prepare). Timing-dependent, so
// it only runs when CINNAMON_PERF_GATE is set.
func TestFleetWarmStartupGate(t *testing.T) {
	if os.Getenv("CINNAMON_PERF_GATE") == "" {
		t.Skip("set CINNAMON_PERF_GATE=1 to run the fleet perf gate")
	}
	res, err := Fleet(FleetOptions{Sessions: 12, Workers: 4, Loop: 2000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("startup: cold %.1fus warm %.1fus (%.1fx); churn cache: %d hits, %d misses",
		res.StartupColdUs, res.StartupWarmUs, res.StartupSpeedup, res.ArtifactHits, res.ArtifactMisses)
	const minSpeedup = 5.0
	if res.StartupSpeedup < minSpeedup {
		t.Fatalf("warm startup only %.1fx faster than cold (cold %.1fus, warm %.1fus); gate is %.0fx",
			res.StartupSpeedup, res.StartupColdUs, res.StartupWarmUs, minSpeedup)
	}
	if res.ArtifactHits == 0 {
		t.Fatal("churn recorded zero artifact-cache hits; the shared cache is not being exercised")
	}
	if res.ArtifactMisses == 0 {
		t.Fatal("churn recorded zero artifact-cache misses; the cold path never ran")
	}
}
