// Package compile implements Cinnamon's closure-compilation stage: the
// pipeline step between semantic analysis and instrumentation that turns
// action and init/exit bodies into pre-bound Go closures over slot-resolved
// frames.
//
// The tree-walking interpreter (internal/core/interp) re-dispatches on AST
// node types and chases map-backed scope chains on every probe firing —
// fine for the instrumentation stage, where each command body runs once per
// control-flow element, but a real dispatch tax in the execution stage,
// where action bodies run once per probe firing (billions of times on the
// Figure 13 workloads). Closure compilation pays the translation cost once,
// at tool-compile time, the same philosophy as the trace caches of the
// dynamic frameworks Cinnamon targets:
//
//   - a resolver pass walks each body once and assigns every identifier a
//     slot: body-locals become indices into a flat []value.Value frame,
//     free variables become cells (captured analysis data, copied by value
//     at placement time, or shared tool globals), and dynamic attributes
//     become indices into the probe's materialized attribute slots;
//   - a lowering pass turns every statement and expression node into a
//     pre-bound closure, so executing a body is a chain of direct calls
//     with no AST dispatch, no map lookups, and no per-firing allocation.
//
// Compiled bodies must be observationally identical to the interpreter —
// same output, same runtime errors (message and position), same cost-model
// numbers; the equivalence tests in internal/core/backend enforce this.
package compile

import (
	"fmt"
	"io"

	"repro/internal/core/ast"
	"repro/internal/core/sem"
	"repro/internal/core/value"
)

// CellRef names one free variable of a compiled body and how to bind it:
// globals resolve to the tool's shared cells, captures are copied by value
// from the instrumentation-time scope at placement time.
type CellRef struct {
	Name   string
	Global bool
}

// Body is one compiled action or init/exit body: closure chains plus the
// frame layout they were resolved against.
type Body struct {
	// Cells lists the body's free variables in bind order.
	Cells []CellRef
	// DynAttrs is the dynamic-attribute slot layout (the action's
	// sem.ActionInfo.DynAttrs, in the same order the backends materialize).
	DynAttrs []sem.DynAttr
	// NumLocals is the body-local frame size.
	NumLocals int

	// guard is the compiled dynamic constraint (nil if none); it runs
	// before the body on every firing.
	guard exprFn
	stmts []stmtFn

	// fast is the whole-body fast lowering (nil when some construct has
	// no fast path); see fast.go. It has its own frame layout, aliased
	// onto the same cells at Bind time.
	fast *fastBody
}

// frame is the execution state of one body invocation: bound cells, the
// local slot frame, the probe's materialized dynamic attributes, and the
// tool output writer.
type frame struct {
	cells  []*value.Value
	locals []value.Value
	dyn    []value.Value
	out    io.Writer
}

// stmtFn executes one compiled statement.
type stmtFn func(fr *frame) error

// exprFn evaluates one compiled expression.
type exprFn func(fr *frame) (value.Value, error)

// CellResolver binds one free variable at placement time.
type CellResolver func(ref CellRef) (*value.Value, error)

// Bound is a placed body: cells resolved, local frame allocated. Exec may
// be called many times (once per probe firing); the local frame is reused
// across firings — every local is (re)declared before use, so no stale
// state is observable — which makes steady-state execution allocation-free.
// A Bound is not safe for concurrent use; probes of one VM fire
// sequentially, which is the only way the engine calls it.
type Bound struct {
	body   *Body
	fr     frame
	fastFr *frame
}

// Bind resolves the body's cells against a placement scope and allocates
// its local frame. out receives print() output.
func (b *Body) Bind(resolve CellResolver, out io.Writer) (*Bound, error) {
	bd := &Bound{body: b, fr: frame{out: out}}
	if n := len(b.Cells); n > 0 {
		bd.fr.cells = make([]*value.Value, n)
		for i, c := range b.Cells {
			cell, err := resolve(c)
			if err != nil {
				return nil, err
			}
			bd.fr.cells[i] = cell
		}
	}
	if b.NumLocals > 0 {
		bd.fr.locals = make([]value.Value, b.NumLocals)
	}
	if fb := b.fast; fb != nil {
		// The fast frame aliases the cells the generic frame resolved —
		// captures must not be copied twice — so both lowerings observe
		// identical state. The fast pass only resolves names the generic
		// pass also resolved, so every ref is found by name; the resolver
		// fallback covers cells shared by reference (globals) anyway.
		ff := &frame{out: out}
		if n := len(fb.cells); n > 0 {
			byRef := make(map[CellRef]*value.Value, len(b.Cells))
			for i, c := range b.Cells {
				byRef[c] = bd.fr.cells[i]
			}
			ff.cells = make([]*value.Value, n)
			for i, ref := range fb.cells {
				if cell := byRef[ref]; cell != nil {
					ff.cells[i] = cell
					continue
				}
				cell, err := resolve(ref)
				if err != nil {
					return nil, err
				}
				ff.cells[i] = cell
			}
		}
		if fb.nLocals > 0 {
			ff.locals = make([]value.Value, fb.nLocals)
		}
		bd.fastFr = ff
	}
	return bd, nil
}

// Exec runs the bound body with the probe's materialized dynamic attribute
// values (indexed per Body.DynAttrs). The first runtime error aborts the
// invocation and is returned.
func (b *Bound) Exec(dyn []value.Value) error {
	b.fr.dyn = dyn
	if b.body.guard != nil {
		v, err := b.body.guard(&b.fr)
		if err != nil {
			return err
		}
		if !v.AsBool() {
			return nil
		}
	}
	for _, st := range b.body.stmts {
		if err := st(&b.fr); err != nil {
			return err
		}
	}
	return nil
}

// FastExec returns the bound whole-body fast lowering, or nil when the
// body has none. The returned closure is observationally identical to
// Exec — same stores, same output, same errors in the same order — and
// subject to the same sequential-use contract.
func (b *Bound) FastExec() func(dyn []value.Value) error {
	fb := b.body.fast
	if fb == nil {
		return nil
	}
	fr := b.fastFr
	guard := fb.guard
	stmts := fb.stmts
	return func(dyn []value.Value) error {
		fr.dyn = dyn
		if guard != nil {
			ok, err := guard(fr)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		for _, st := range stmts {
			if err := st(fr); err != nil {
				return err
			}
		}
		return nil
	}
}

// CounterShape reports whether the bound body is a pure counter bump —
// no guard, exactly `x = x ± k` on a captured or global cell — and, if
// so, returns the per-firing delta and a flush function such that n
// consecutive firings leave every observable equal to one flush(n*delta)
// call: each generic firing rewrites the cell to KInt(AsInt(cell)+delta),
// so the composition is exactly additive.
func (b *Bound) CounterShape() (delta int64, flush func(n int64), ok bool) {
	fb := b.body.fast
	if fb == nil || !fb.counter {
		return 0, nil, false
	}
	cell := b.fastFr.cells[fb.counterCell]
	return fb.counterDelta, func(n int64) {
		*cell = value.Value{Kind: value.KInt, Int: asIntRef(cell) + n}
	}, true
}

// CounterCell returns the storage cell a counter-shaped body bumps
// (nil when CounterShape is false). Global counters resolve to the
// shared interpreter slot, so two bodies bumping the same global
// return the same pointer — the identity the placement coalescing
// pass merges on. Captured locals bind fresh per-placement cells and
// therefore never alias.
func (b *Bound) CounterCell() *value.Value {
	fb := b.body.fast
	if fb == nil || !fb.counter {
		return nil
	}
	return b.fastFr.cells[fb.counterCell]
}

// Program is the compiled form of a whole tool: one Body per action and per
// init/exit block. It is immutable after Compile and safe for concurrent
// Bind calls from parallel instrumentation runs.
type Program struct {
	// Actions maps each action node to its compiled body.
	Actions map[*ast.Action]*Body
	// Inits and Exits parallel sem.Info.Inits / Info.Exits.
	Inits, Exits []*Body
}

// Compile lowers every action and init/exit body of a checked program.
// prog must have passed sem.Check with the given info.
func Compile(prog *ast.Program, info *sem.Info) (*Program, error) {
	cp := &Program{Actions: make(map[*ast.Action]*Body)}
	// All globals are visible to every body: the engine declares them
	// before anything executes, so even a body placed earlier in source
	// order resolves a later global. Command-scope names, by contrast,
	// become visible in source order (see compileCommand).
	globals := &outerScope{global: true, names: make(map[string]bool)}
	for _, item := range prog.Items {
		if d, ok := item.(*ast.VarDecl); ok {
			globals.names[d.Name] = true
		}
	}
	for _, item := range prog.Items {
		switch it := item.(type) {
		case *ast.InitBlock:
			b, err := compileBody(info, nil, it.Body, nil, globals)
			if err != nil {
				return nil, err
			}
			cp.Inits = append(cp.Inits, b)
		case *ast.ExitBlock:
			b, err := compileBody(info, nil, it.Body, nil, globals)
			if err != nil {
				return nil, err
			}
			cp.Exits = append(cp.Exits, b)
		case *ast.Command:
			if err := cp.compileCommand(info, it, globals); err != nil {
				return nil, err
			}
		}
	}
	return cp, nil
}

// outerScope is a compile-time scope outside the body being compiled: the
// global scope or one enclosing command's scope.
type outerScope struct {
	parent *outerScope
	names  map[string]bool
	global bool
}

func (s *outerScope) resolve(name string) (CellRef, bool) {
	for o := s; o != nil; o = o.parent {
		if o.names[name] {
			return CellRef{Name: name, Global: o.global}, true
		}
	}
	return CellRef{}, false
}

func (cp *Program) compileCommand(info *sem.Info, cmd *ast.Command, parent *outerScope) error {
	scope := &outerScope{parent: parent, names: map[string]bool{cmd.Var: true}}
	for _, item := range cmd.Body {
		switch it := item.(type) {
		case *ast.Command:
			if err := cp.compileCommand(info, it, scope); err != nil {
				return err
			}
		case *ast.Action:
			ai := info.Actions[it]
			if ai == nil {
				return fmt.Errorf("cinnamon: internal: unchecked action at %s", it.Pos())
			}
			var guard ast.Expr
			if ai.WhereDynamic {
				guard = it.Where
			}
			b, err := compileBody(info, ai.DynAttrs, it.Body, guard, scope)
			if err != nil {
				return err
			}
			cp.Actions[it] = b
		case *ast.DeclStmt:
			// Top-level analysis declarations join the command scope and
			// are visible to (and captured by) later actions; declarations
			// nested inside analysis if/for bodies do not escape, exactly
			// as the interpreter scopes them.
			scope.names[it.Decl.Name] = true
		}
	}
	return nil
}

// compiler carries the per-body lowering state.
type compiler struct {
	info  *sem.Info
	outer *outerScope

	cells   []CellRef
	cellIdx map[string]int
	dyn     []sem.DynAttr

	nLocals int
	scope   *localScope
}

// localScope is a body-local lexical scope (if/for bodies open new ones).
type localScope struct {
	parent *localScope
	names  map[string]int
}

func compileBody(info *sem.Info, dyn []sem.DynAttr, body []ast.Stmt, guard ast.Expr, outer *outerScope) (*Body, error) {
	c := &compiler{info: info, outer: outer, cellIdx: make(map[string]int), dyn: dyn}
	c.pushScope()
	b := &Body{DynAttrs: dyn}
	if guard != nil {
		// The guard runs in the placement scope before any body locals
		// exist; compiling it first keeps its resolution body-independent.
		b.guard = c.compileExpr(guard)
	}
	b.stmts = c.compileStmts(body)
	b.Cells = c.cells
	b.NumLocals = c.nLocals
	b.fast = compileFastBody(info, dyn, body, guard, outer)
	return b, nil
}

func (c *compiler) pushScope() {
	c.scope = &localScope{parent: c.scope, names: make(map[string]int)}
}

func (c *compiler) popScope() { c.scope = c.scope.parent }

// defineLocal assigns a fresh slot for a body-local declaration; shadowed
// names get distinct slots, matching the interpreter's nested frames.
func (c *compiler) defineLocal(name string) int {
	idx := c.nLocals
	c.nLocals++
	c.scope.names[name] = idx
	return idx
}

// slot is a resolved identifier: a body-local index or a cell index.
type slot struct {
	local bool
	idx   int
}

func (c *compiler) resolve(name string) (slot, bool) {
	for s := c.scope; s != nil; s = s.parent {
		if i, ok := s.names[name]; ok {
			return slot{local: true, idx: i}, true
		}
	}
	if ref, ok := c.outer.resolve(name); ok {
		if i, ok := c.cellIdx[name]; ok {
			return slot{idx: i}, true
		}
		i := len(c.cells)
		c.cells = append(c.cells, ref)
		c.cellIdx[name] = i
		return slot{idx: i}, true
	}
	return slot{}, false
}

// dynSlot resolves a dynamic attribute use to its materialized-value slot.
func (c *compiler) dynSlot(varName, attr string) (int, bool) {
	for i, da := range c.dyn {
		if da.Var == varName && da.Attr == attr {
			return i, true
		}
	}
	return 0, false
}
