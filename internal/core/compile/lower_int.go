package compile

// The scalar fast path. value.Value is a wide struct, and the generic
// exprFn chain copies one across every closure boundary — for the
// all-integer arithmetic that dominates real action bodies (counters,
// address compares), that copying is most of the firing cost. This file
// lowers expressions whose value the surrounding context consumes as an
// integer into intFn closures that pass a bare int64 in registers,
// boxing a Value only where one is actually stored.
//
// The contract, relied on by the hook-in points in lower.go: an intFn
// produced for expression e returns exactly AsInt() of the value the
// generic lowering of e would produce, with the same evaluation order,
// side effects, runtime error messages and positions. compileIntExpr
// returns nil whenever it cannot guarantee that, and the caller falls
// back to the generic path.

import (
	"strings"

	"repro/internal/core/ast"
	"repro/internal/core/token"
	"repro/internal/core/value"
)

// intFn evaluates an expression to its integer coercion.
type intFn func(fr *frame) (int64, error)

// asIntRef is value.Value.AsInt without copying the struct in the common
// already-an-integer case.
func asIntRef(v *value.Value) int64 {
	if v.Kind == value.KInt {
		return v.Int
	}
	return v.AsInt()
}

// compileIntExpr lowers e to the scalar tier, or returns nil when e has
// no integer fast path.
func (c *compiler) compileIntExpr(e ast.Expr) intFn {
	switch x := e.(type) {
	case *ast.IntLit:
		n := x.Val
		return func(*frame) (int64, error) { return n, nil }
	case *ast.CharLit:
		n := int64(x.Val)
		return func(*frame) (int64, error) { return n, nil }
	case *ast.Ident:
		sl, ok := c.resolve(x.Name)
		if !ok {
			return nil
		}
		idx := sl.idx
		if sl.local {
			return func(fr *frame) (int64, error) { return asIntRef(&fr.locals[idx]), nil }
		}
		return func(fr *frame) (int64, error) { return asIntRef(fr.cells[idx]), nil }
	case *ast.FieldExpr:
		// Dynamic attributes are materialized as integer words; static
		// attributes can be any kind and stay on the generic path.
		if !c.info.DynamicExprs[x] {
			return nil
		}
		id, ok := x.X.(*ast.Ident)
		if !ok {
			return nil
		}
		attr := strings.ToLower(x.Name)
		key := id.Name + "." + attr
		idx, ok := c.dynSlot(id.Name, attr)
		if !ok {
			return nil
		}
		pos := x.P
		return func(fr *frame) (int64, error) {
			if idx >= len(fr.dyn) {
				return 0, errf(pos, "dynamic attribute %s not materialized (is this running outside a probe?)", key)
			}
			return asIntRef(&fr.dyn[idx]), nil
		}
	case *ast.UnaryExpr:
		if x.Op != token.MINUS {
			return nil
		}
		sub := c.compileIntExpr(x.X)
		if sub == nil {
			return nil
		}
		return func(fr *frame) (int64, error) {
			n, err := sub(fr)
			if err != nil {
				return 0, err
			}
			return -n, nil
		}
	case *ast.BinaryExpr:
		return c.compileIntBinary(x)
	}
	return nil
}

// compileIntBinary lowers the arithmetic operators, whose generic result
// is always IntVal(f(l.AsInt(), r.AsInt())).
func (c *compiler) compileIntBinary(x *ast.BinaryExpr) intFn {
	var op func(a, b int64) int64
	switch x.Op {
	case token.PLUS:
		op = func(a, b int64) int64 { return a + b }
	case token.MINUS:
		op = func(a, b int64) int64 { return a - b }
	case token.STAR:
		op = func(a, b int64) int64 { return a * b }
	case token.AMP:
		op = func(a, b int64) int64 { return a & b }
	case token.PIPE:
		op = func(a, b int64) int64 { return a | b }
	case token.CARET:
		op = func(a, b int64) int64 { return a ^ b }
	case token.SHL:
		op = func(a, b int64) int64 { return a << (uint64(b) & 63) }
	case token.SHR:
		op = func(a, b int64) int64 { return int64(uint64(a) >> (uint64(b) & 63)) }
	case token.SLASH, token.PERCENT:
		l := c.compileIntExpr(x.X)
		if l == nil {
			return nil
		}
		r := c.compileIntExpr(x.Y)
		if r == nil {
			return nil
		}
		mod := x.Op == token.PERCENT
		pos := x.P
		return func(fr *frame) (int64, error) {
			a, err := l(fr)
			if err != nil {
				return 0, err
			}
			b, err := r(fr)
			if err != nil {
				return 0, err
			}
			if b == 0 {
				return 0, errf(pos, "division by zero")
			}
			if mod {
				return a % b, nil
			}
			return a / b, nil
		}
	default:
		return nil
	}
	l := c.compileIntExpr(x.X)
	if l == nil {
		return nil
	}
	r := c.compileIntExpr(x.Y)
	if r == nil {
		return nil
	}
	return func(fr *frame) (int64, error) {
		a, err := l(fr)
		if err != nil {
			return 0, err
		}
		b, err := r(fr)
		if err != nil {
			return 0, err
		}
		return op(a, b), nil
	}
}
