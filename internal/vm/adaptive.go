package vm

// Adaptive instrumentation: per-probe control blocks for sampling
// (fire every Nth hit), mid-run disable (probe ejection) and re-arming,
// plus the cycle-paced hook the overhead governor runs from.
//
// Design constraints, inherited from the tier-equivalence contract:
//
//   - Sampling is a fire-time countdown on a control block shared by
//     every representation of the probe (interpreter lists, translated
//     fused thunks, pending call-after batches), so both tiers see the
//     identical hit sequence and make identical fire/skip decisions.
//   - A skipped hit charges SampleGateCost and is attributed to the
//     probe's obs slot as a skip, preserving the residual-zero
//     attribution invariant: probe cycles = fires x dispatch cost +
//     skips x gate cost.
//   - Disabling is logical removal: the enable bit is checked at fire
//     time (zero cost when disabled), so an already-pending call-after
//     fire is suppressed if and only if the probe is disabled at the
//     fall-through — identically in both tiers. Disable/re-enable also
//     invalidates the translated blocks the probe was fused into (the
//     dual of mid-run install), so steady-state ejected probes vanish
//     from the code cache entirely.
//   - Control mutations are only legal on the run goroutine: from a
//     probe body, a start hook, or the pace hook. The governor's HTTP
//     re-arm commands are mailboxed and drained at pace points.

import "repro/internal/obs"

// SampleGateCost is charged for each hit a sampling countdown swallows:
// the inlined decrement-and-branch guarding a sampled probe (units;
// sub-cycle, far below any dispatch mechanism).
const SampleGateCost = 2

// ctlSite records one before/after installation point of a probe, so
// control changes can invalidate the translated blocks the probe was
// fused into. Entry and edge lists are read live at dispatch and need no
// invalidation.
type ctlSite struct {
	m   *modExec
	off uint64
}

// probeCtl is the shared adaptive control block of one installed probe.
type probeCtl struct {
	enabled bool
	// stride fires the probe on every stride-th hit; count is the
	// countdown to the next fire. stride <= 1 fires on every hit.
	stride uint64
	count  uint64
	// baseStride is the installation-time stride (the language-level
	// `sample N`); re-arming restores it.
	baseStride uint64
	id         obs.ProbeID
	sites      []ctlSite
}

// gate decides one hit of an adaptive probe: true means fire. Disabled
// probes skip at zero cost; swallowed sample hits charge SampleGateCost
// and are attributed as skips.
func (ct *probeCtl) gate(v *VM) bool {
	if !ct.enabled {
		return false
	}
	if ct.stride <= 1 {
		return true
	}
	ct.count--
	if ct.count == 0 {
		ct.count = ct.stride
		return true
	}
	v.cycles += SampleGateCost
	if v.obsC != nil {
		v.obsC.Skip(ct.id, SampleGateCost)
	}
	return false
}

// newCtl allocates a control block for one probe installation, or nil
// when the probe needs none (always-on, non-adaptive machine). The
// countdown starts at the stride, so the probe first fires on hit N,
// then 2N, ... — exactly floor(hits/N) fires.
func (v *VM) newCtl(id obs.ProbeID, stride uint64) *probeCtl {
	if stride <= 1 && !v.adaptive {
		return nil
	}
	if stride == 0 {
		stride = 1
	}
	ct := &probeCtl{enabled: true, stride: stride, count: stride, baseStride: stride, id: id}
	v.anyCtl = true
	v.ctls = append(v.ctls, ct)
	if id != obs.NoProbe {
		if v.ctlByID == nil {
			v.ctlByID = make(map[obs.ProbeID]*probeCtl)
		}
		v.ctlByID[id] = ct
	}
	return ct
}

// invalidateSites drops the cached translated blocks the probe was fused
// into, forcing retranslation with the new control state.
func (ct *probeCtl) invalidateSites() {
	for _, s := range ct.sites {
		s.m.invalidate(s.off)
	}
}

// ProbeInfo is the adaptive state of one installed probe.
type ProbeInfo struct {
	// ID is the probe's observability ID (obs.NoProbe when the machine
	// runs without a collector; such probes are not addressable by ID).
	ID obs.ProbeID
	// Stride is the current sampling stride; BaseStride the
	// installation-time one.
	Stride, BaseStride uint64
	// Enabled is false while the probe is ejected.
	Enabled bool
}

// AdaptiveProbes lists every probe carrying a control block, in
// installation order. Run-goroutine only (probe bodies, hooks, the pace
// hook).
func (v *VM) AdaptiveProbes() []ProbeInfo {
	out := make([]ProbeInfo, len(v.ctls))
	for i, ct := range v.ctls {
		out[i] = ProbeInfo{ID: ct.id, Stride: ct.stride, BaseStride: ct.baseStride, Enabled: ct.enabled}
	}
	return out
}

// SetProbeStride sets the sampling stride of the adaptive probe with the
// given observability ID and resets its countdown; reports whether the
// probe was found. A stride of 0 restores the installation-time stride.
// Run-goroutine only.
func (v *VM) SetProbeStride(id obs.ProbeID, stride uint64) bool {
	ct := v.ctlByID[id]
	if ct == nil {
		return false
	}
	if stride == 0 {
		stride = ct.baseStride
	}
	ct.stride = stride
	ct.count = stride
	return true
}

// SetProbeEnabled ejects (false) or re-arms (true) the adaptive probe
// with the given observability ID; reports whether the probe was found.
// The change takes effect at the probe's next hit — a pending call-after
// fire is suppressed iff the probe is disabled when the fall-through is
// reached — and invalidates the translated blocks the probe is fused
// into. Re-arming resets the sampling countdown. Run-goroutine only.
func (v *VM) SetProbeEnabled(id obs.ProbeID, enabled bool) bool {
	ct := v.ctlByID[id]
	if ct == nil {
		return false
	}
	if ct.enabled != enabled {
		ct.enabled = enabled
		ct.count = ct.stride
		ct.invalidateSites()
	}
	return true
}

// SetPacer installs a hook called at block-start dispatch whenever at
// least `every` cycle units have elapsed since the previous call. The
// hook runs at the identical machine state on both execution tiers
// (after the pending call-after drain, before the translator hook and
// code-cache resolution, with promoted counters flushed), so decisions
// it makes are deterministic and tier-independent. The overhead governor
// is its intended user. Must be installed before Run.
func (v *VM) SetPacer(every uint64, fn func()) {
	if every == 0 {
		every = 1
	}
	v.paceEvery = every
	v.nextPace = every
	v.pacer = fn
}

// pace runs the pacer at an observation point and schedules the next
// one.
func (v *VM) pace() {
	if len(v.dirty) > 0 {
		v.flushCounters()
	}
	v.pacer()
	v.nextPace = v.cycles + v.paceEvery
}
