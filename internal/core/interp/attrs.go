package interp

import (
	"fmt"
	"strings"

	"repro/internal/core/ast"
	"repro/internal/core/value"
	"repro/internal/isa"
)

// StaticAttr computes a static control-flow-element attribute from the
// recovered CFG structures. Dynamic attributes never reach here: semantic
// analysis routes them through the probe's materialized values.
func StaticAttr(ref *value.CFERef, name string) (value.Value, error) {
	name = strings.ToLower(name)
	bad := func() (value.Value, error) {
		return value.Null, fmt.Errorf("cinnamon: %s has no static attribute %q", ref, name)
	}
	switch ref.Kind {
	case ast.Inst:
		in := ref.Inst
		switch name {
		case "opcode":
			return value.OpcodeVal(in.Op), nil
		case "addr", "id":
			return value.UintVal(in.Addr), nil
		case "size":
			return value.IntVal(int64(in.Size)), nil
		case "nextaddr":
			return value.UintVal(in.Next()), nil
		case "numops":
			return value.IntVal(int64(in.NumOps())), nil
		case "op1":
			return value.OperandVal(in.Operand(0)), nil
		case "op2":
			return value.OperandVal(in.Operand(1)), nil
		case "op3":
			return value.OperandVal(in.Operand(2)), nil
		case "trgname":
			if tgt, ok := in.IsDirectTarget(); ok && in.Op == isa.Call {
				return value.StrVal(ref.Prog.Obj.NameAt(tgt)), nil
			}
			return value.StrVal(""), nil
		}
		return bad()
	case ast.BasicBlock:
		b := ref.Block
		switch name {
		case "id":
			return value.IntVal(int64(b.ID)), nil
		case "startaddr":
			return value.UintVal(b.Start), nil
		case "endaddr":
			return value.UintVal(b.End), nil
		case "size", "ninsts":
			return value.IntVal(int64(len(b.Insts))), nil
		}
		return bad()
	case ast.Func:
		f := ref.Func
		switch name {
		case "id":
			return value.IntVal(int64(f.ID)), nil
		case "name":
			return value.StrVal(f.Name), nil
		case "startaddr":
			return value.UintVal(f.Entry), nil
		case "endaddr":
			return value.UintVal(f.End), nil
		case "ninsts":
			return value.IntVal(int64(f.NumInsts())), nil
		case "nblocks":
			return value.IntVal(int64(len(f.Blocks))), nil
		case "nloops":
			return value.IntVal(int64(len(f.Loops))), nil
		}
		return bad()
	case ast.Loop:
		l := ref.Loop
		switch name {
		case "id":
			return value.IntVal(int64(l.ID)), nil
		case "startaddr":
			return value.UintVal(l.Header.Start), nil
		case "depth":
			return value.IntVal(int64(l.Depth)), nil
		case "nblocks":
			return value.IntVal(int64(len(l.Blocks))), nil
		}
		return bad()
	case ast.Module:
		m := ref.Module
		switch name {
		case "id":
			return value.IntVal(int64(m.ID)), nil
		case "name":
			return value.StrVal(m.Name()), nil
		case "nfuncs":
			return value.IntVal(int64(len(m.Funcs))), nil
		case "isexecutable":
			return value.BoolVal(m.ID == 0), nil
		}
		return bad()
	}
	return bad()
}
