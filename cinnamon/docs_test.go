package cinnamon_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/cinnamon"
)

// docsWithExamples are the documents whose fenced ```cin blocks must
// compile — the executable half of the docs gate: an example that rots
// out of the language fails the build, not a reader.
var docsWithExamples = []string{"ADAPTIVE.md", "CLI.md", "LANGUAGE.md"}

// cinBlocks extracts the contents of fenced code blocks tagged `cin`.
func cinBlocks(markdown string) []struct {
	Line int
	Src  string
} {
	var out []struct {
		Line int
		Src  string
	}
	lines := strings.Split(markdown, "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```cin" {
			continue
		}
		start := i + 1
		var body []string
		for i++; i < len(lines) && strings.TrimSpace(lines[i]) != "```"; i++ {
			body = append(body, lines[i])
		}
		out = append(out, struct {
			Line int
			Src  string
		}{Line: start + 1, Src: strings.Join(body, "\n")})
	}
	return out
}

// TestDocExamplesCompile feeds every fenced ```cin block in the
// documentation suite through the real frontend.
func TestDocExamplesCompile(t *testing.T) {
	total := 0
	for _, name := range docsWithExamples {
		path := filepath.Join("..", "docs", name)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		for _, blk := range cinBlocks(string(b)) {
			total++
			t.Run(fmt.Sprintf("%s:%d", name, blk.Line), func(t *testing.T) {
				if _, err := cinnamon.Compile(blk.Src); err != nil {
					t.Errorf("docs/%s: example at line %d does not compile: %v", name, blk.Line, err)
				}
			})
		}
	}
	if total == 0 {
		t.Fatal("no ```cin examples found in the docs suite; the extraction gate is checking nothing")
	}
}
