// Package cinnamon is the public API of this reproduction of
// "Cinnamon: A Domain-Specific Language for Binary Profiling and
// Monitoring" (CGO 2021).
//
// A Cinnamon program is compiled once and can then be run against a
// loaded binary under any of the three instrumentation-framework
// backends, or lowered to the framework-specific C/C++ sources the
// original compiler emits:
//
//	tool, err := cinnamon.Compile(src)
//	target, err := cinnamon.LoadAssembly(appSource)
//	report, err := tool.Run(target, cinnamon.Pin, cinnamon.RunOptions{})
//	fmt.Print(report.ToolOutput)
//
// The backends are clean-room Go substrates mirroring the programming
// models of the frameworks the paper targets:
//
//	cinnamon.Pin      — dynamic JIT instrumentation (sees shared libraries;
//	                    no notion of loops)
//	cinnamon.Dyninst  — static binary rewriting (refuses binaries with
//	                    unrecoverable control flow)
//	cinnamon.Janus    — hybrid: static analyzer emitting rewrite rules,
//	                    consumed by a dynamic instrumenter
package cinnamon

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/core/artifacts"
	"repro/internal/core/backend"
	"repro/internal/core/codegen"
	"repro/internal/core/engine"
	"repro/internal/governor"
	"repro/internal/monitor"
	"repro/internal/obj"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Backend names.
const (
	Pin     = backend.Pin
	Dyninst = backend.Dyninst
	Janus   = backend.Janus
)

// Backends returns the supported backend names.
func Backends() []string { return backend.Backends() }

// Tool is a compiled Cinnamon program.
type Tool struct {
	compiled *engine.CompiledTool
}

// Compile parses and type-checks Cinnamon source. Byte-identical
// sources share one compiled form through the process-wide artifact
// cache (compiled tools are immutable), which in turn lets their runs
// share instrumentation-build templates.
func Compile(src string) (*Tool, error) {
	c, _, err := artifacts.Shared().Tool(src)
	if err != nil {
		return nil, err
	}
	return &Tool{compiled: c}, nil
}

// Source returns the tool's Cinnamon source.
func (t *Tool) Source() string { return t.compiled.Src }

// GenerateCode emits the framework-specific C/C++ sources the Cinnamon
// compiler produces for the named backend, as file name → content.
func (t *Tool) GenerateCode(backendName string) (map[string]string, error) {
	return codegen.Generate(t.compiled, backendName)
}

// Target is a loaded binary (executable plus shared libraries) with its
// recovered control flow. A Target may be instrumented and run any number
// of times.
type Target struct {
	// Prog is the control-flow view of the loaded program.
	Prog *cfg.Program
}

// LoadModules loads assembled modules into an address space with the
// standard runtime (malloc/free/print/exit) and recovers control flow.
func LoadModules(mods []*obj.Module) (*Target, error) {
	p, err := obj.Load(mods, vm.RuntimeExterns())
	if err != nil {
		return nil, err
	}
	prog, err := cfg.Build(p)
	if err != nil {
		return nil, err
	}
	return &Target{Prog: prog}, nil
}

// LoadAssembly assembles one or more assembly sources (the first or the
// one marked .executable is the main program) and loads them.
func LoadAssembly(srcs ...string) (*Target, error) {
	mods := make([]*obj.Module, 0, len(srcs))
	for _, s := range srcs {
		m, err := asm.Assemble(s)
		if err != nil {
			return nil, err
		}
		mods = append(mods, m)
	}
	return LoadModules(mods)
}

// RunOptions configures a tool run.
type RunOptions struct {
	// ToolOut receives the tool's print() output as it is produced; if
	// nil the output is captured in Report.ToolOutput instead.
	ToolOut io.Writer
	// AppOut receives the application's own output (discarded if nil).
	AppOut io.Writer
	// Fuel bounds the number of application instructions (0 = default).
	Fuel uint64
	// PinLoopDetection enables the extension the paper's Section VI-E
	// suggests: loop detection integrated into the Pin backend, making
	// loop commands mappable to Pin transparently.
	PinLoopDetection bool
	// Stats enables the observability layer for the run: Report.Stats is
	// populated with per-probe firing counters, cycle attribution and
	// instrumentation-time statistics. Collection never perturbs the
	// deterministic cost model — Cycles/Insts/ToolOutput are identical
	// with Stats on or off.
	Stats bool
	// Trace, when positive, additionally records the last Trace probe
	// firings in a bounded ring buffer (Report.Stats.Trace). Trace > 0
	// implies Stats.
	Trace int
	// MonitorAddr, when non-empty, serves live monitoring for the run on
	// this TCP address (host:port; port 0 picks a free one): /metrics
	// Prometheus scrapes, /stats and /series JSON, an SSE /trace stream
	// and /healthz. Implies Stats; the server starts before the run and
	// shuts down after the final snapshot is taken, so a last scrape
	// reconciles exactly with Report.Stats. See internal/monitor and
	// docs/OBSERVABILITY.md.
	MonitorAddr string
	// Interval is the monitor's time-series sampling period (default 1s;
	// only meaningful with MonitorAddr).
	Interval time.Duration
	// OnMonitor, if set, is called with the monitor's bound address once
	// it is serving (before the run starts). Useful with port 0.
	OnMonitor func(addr string)
	// VMMode selects the machine's execution tier: "translated" (or
	// empty, the default) runs cached block programs with fused probe
	// schedules; "interpreted" runs the reference per-instruction loop.
	// The tiers are bit-identical in every observable — cycles, output,
	// attribution — so this only affects wall-clock speed.
	VMMode string
	// VMNoInline disables the translated tier's action-inlining layer
	// (specialized probe thunks, register-promoted counters, probe+op
	// superinstructions). Bit-identical either way; escape hatch only.
	VMNoInline bool
	// NoIROpt disables the placement-IR optimization passes
	// (where-clause hoisting, counter promotion, redundant-probe
	// coalescing) that run over the shared rule table before backend
	// lowering. Bit-identical either way; escape hatch only.
	NoIROpt bool
	// Budget, when non-empty, attaches the live overhead governor: a
	// maximum fraction of machine cycles the run may spend in probes,
	// as "5%" or "0.05". The governor watches live cycle attribution
	// and downsamples — ultimately ejects — the most expensive probes
	// to keep attributed overhead under the budget; its replayable
	// decision log lands in Report.Stats.Governor (and on the monitor's
	// /governor endpoint when MonitorAddr is set). Implies Stats. See
	// docs/ADAPTIVE.md.
	Budget string
	// GovernorWindow overrides the governor's evaluation cadence in
	// machine cycle units (0 = governor.DefaultWindow; only meaningful
	// with Budget).
	GovernorWindow uint64
	// NoArtifactCache disables the process-wide artifact cache for this
	// run. By default repeated runs of the same tool against the same
	// target reuse the recorded instrumentation build (rebinding all
	// per-run state), which is observably identical to rebuilding —
	// cycles, output and attribution are bit-equal. Escape hatch only.
	NoArtifactCache bool
}

// Stats is the observability report of a run: per-probe firing counters
// and cycle attribution, instrumentation-time build statistics, and the
// optional firing trace. See internal/obs for the schema and
// docs/OBSERVABILITY.md for how to read it.
type Stats = obs.Stats

// Report summarizes an instrumented run.
type Report struct {
	// Backend is the backend the tool ran under.
	Backend string
	// ToolOutput is the tool's captured print() output (empty when
	// RunOptions.ToolOut was set).
	ToolOutput string
	// Cycles is the deterministic cost of the run in cycle units
	// (application work plus instrumentation overhead).
	Cycles uint64
	// Insts is the number of application instructions executed.
	Insts uint64
	// ExitCode is the application's exit code.
	ExitCode uint64
	// Stats holds the observability report (nil unless RunOptions.Stats,
	// RunOptions.Trace or RunOptions.MonitorAddr enabled collection).
	Stats *Stats
}

// Run instruments the target with the tool under the named backend and
// executes it.
func (t *Tool) Run(target *Target, backendName string, opts RunOptions) (*Report, error) {
	var buf bytes.Buffer
	out := opts.ToolOut
	captured := false
	if out == nil {
		out, captured = &buf, true
	}
	mode, err := vm.ParseExecMode(opts.VMMode)
	if err != nil {
		return nil, fmt.Errorf("cinnamon: %w", err)
	}
	frac, err := governor.ParseBudget(opts.Budget)
	if err != nil {
		return nil, fmt.Errorf("cinnamon: %w", err)
	}
	var col *obs.Collector
	if opts.Stats || opts.Trace > 0 || opts.MonitorAddr != "" || frac > 0 {
		col = obs.New(obs.Options{TraceCap: opts.Trace})
	}
	var gov *governor.Governor
	if frac > 0 {
		gov, err = governor.New(governor.Config{Budget: frac, Collector: col, Window: opts.GovernorWindow})
		if err != nil {
			return nil, fmt.Errorf("cinnamon: %w", err)
		}
	}
	if opts.MonitorAddr != "" {
		mon := monitor.NewServer(monitor.Config{
			Collector: col,
			Backend:   backendName,
			Interval:  opts.Interval,
			Governor:  gov,
		})
		addr, err := mon.Start(opts.MonitorAddr)
		if err != nil {
			return nil, fmt.Errorf("cinnamon: %w", err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = mon.Shutdown(ctx)
		}()
		if opts.OnMonitor != nil {
			opts.OnMonitor(addr)
		}
	}
	bopts := backend.Options{
		Out:              out,
		Fuel:             opts.Fuel,
		AppOut:           opts.AppOut,
		PinLoopDetection: opts.PinLoopDetection,
		Obs:              col,
		VMMode:           mode,
		VMNoInline:       opts.VMNoInline,
		NoIROpt:          opts.NoIROpt,
	}
	if !opts.NoArtifactCache {
		bopts.Artifacts = artifacts.Shared()
	}
	if gov != nil {
		bopts.Adaptive = true
		bopts.OnMachine = gov.Attach
	}
	res, err := backend.Run(t.compiled, target.Prog, backendName, bopts)
	if err != nil {
		return nil, fmt.Errorf("cinnamon: run on %s: %w", backendName, err)
	}
	rep := &Report{
		Backend:  backendName,
		Cycles:   res.Cycles,
		Insts:    res.Insts,
		ExitCode: res.ExitCode,
	}
	if col != nil {
		rep.Stats = col.Snapshot(backendName)
		if gov != nil {
			rep.Stats.Governor = gov.State()
		}
	}
	if captured {
		rep.ToolOutput = buf.String()
	}
	return rep, nil
}

// BaselineRun executes the target without any instrumentation and reports
// its cost — the uninstrumented baseline for overhead measurements.
func BaselineRun(target *Target, opts RunOptions) (*Report, error) {
	mode, err := vm.ParseExecMode(opts.VMMode)
	if err != nil {
		return nil, fmt.Errorf("cinnamon: %w", err)
	}
	machine := vm.New(target.Prog, vm.Config{Fuel: opts.Fuel, AppOut: opts.AppOut, ExecMode: mode})
	res, err := machine.Run()
	if err != nil {
		return nil, err
	}
	return &Report{Backend: "none", Cycles: res.Cycles, Insts: res.Insts, ExitCode: res.ExitCode}, nil
}
