package monitor

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/governor"
	"repro/internal/obs"
)

// Fleet exposition: the per-probe, untracked, trace and governor
// families of the single-run writer, re-rendered with session/tool/
// victim/backend labels for every registered session, plus the
// cinnamon_fleet_* rollups. The rollups are computed from the very same
// per-session snapshots the labelled series are rendered from — one
// snapshot per session per scrape — so the fleet totals are exactly the
// sum of the per-session series, never an approximation from a second
// read.
//
// The scrape path is built for fleets of dozens of sessions at
// sub-second scrape intervals: per-session snapshot+aggregation work
// runs concurrently over a bounded worker pool, and all per-scrape
// allocations (snapshot probe tables, aggregation rows, rendered label
// strings, the output buffer) are pooled and reused across scrapes, so
// a steady-state scrape allocates almost nothing.

// sessionBase renders the identifying label set of a session.
func sessionBase(l SessionLabels) string {
	return fmt.Sprintf(`session="%s",tool="%s",victim="%s",backend="%s"`,
		escapeLabel(l.Session), escapeLabel(l.Tool), escapeLabel(l.Victim), escapeLabel(l.Backend))
}

// scrapeRow is one aggregated probe series of one session: the fully
// rendered label set plus the summed counters.
type scrapeRow struct {
	key    probeKey
	labels string
	fires  uint64
	skips  uint64
	cycles uint64
}

// sessScrape is the per-session slot of a scrape: the snapshot (its
// allocations reused across scrapes via SnapshotInto), the aggregated
// probe rows, and everything else a scrape reads from the session, all
// gathered in the parallel prep phase so rendering is a straight
// sequential walk.
type sessScrape struct {
	s    *FleetSession
	base string
	snap *obs.Stats
	rows []scrapeRow
	// rowLabels caches rendered per-probe label sets. Probe sets only
	// grow, so entries stay valid for the session's lifetime; the cache
	// resets when the slot is reused for a different session.
	rowLabels map[probeKey]string
	// aggIdx is the scratch aggregation index, cleared and reused every
	// scrape.
	aggIdx map[probeKey]int

	attempts   int
	state      SessionState
	trDropped  uint64
	subs       int
	subDropped uint64
	gov        *governor.Governor
	govState   governor.State
	govEjected int
}

// scrapeState is the pooled state of one whole scrape: the per-session
// slots plus the output buffer.
type scrapeState struct {
	slots []sessScrape
	buf   []byte
}

var scrapePool = sync.Pool{New: func() any { return &scrapeState{} }}

// scrapeWorkers bounds the snapshot/aggregation fan-out of one scrape.
func scrapeWorkers(sessions int) int {
	n := runtime.GOMAXPROCS(0)
	if n > sessions {
		n = sessions
	}
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// prep fills one session slot: snapshot, probe aggregation, lifecycle
// and trace counters. Runs concurrently across slots.
func (ss *sessScrape) prep(s *FleetSession) {
	if ss.s != s {
		// Slot reused for a different session: drop the cached labels.
		ss.s = s
		ss.rowLabels = nil
	}
	l := s.Labels()
	ss.base = s.base
	ss.snap = s.Collector().SnapshotInto(l.Backend, ss.snap)
	if ss.rowLabels == nil {
		ss.rowLabels = make(map[probeKey]string)
	}

	// Aggregate per-probe rows the same way Stats.WriteTable groups
	// them: one series per (label, trigger, mechanism).
	rows := ss.rows[:0]
	if ss.aggIdx == nil {
		ss.aggIdx = make(map[probeKey]int)
	} else {
		clear(ss.aggIdx)
	}
	idx := ss.aggIdx
	for _, p := range ss.snap.Probes {
		k := probeKey{p.Label, p.Trigger, p.Mechanism}
		i, ok := idx[k]
		if !ok {
			i = len(rows)
			idx[k] = i
			rows = append(rows, scrapeRow{key: k})
		}
		rows[i].fires += p.Fires
		rows[i].skips += p.Skips
		rows[i].cycles += p.Cycles
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i].key, rows[j].key
		if a.label != b.label {
			return a.label < b.label
		}
		if a.trigger != b.trigger {
			return a.trigger < b.trigger
		}
		return a.mech < b.mech
	})
	for i := range rows {
		k := rows[i].key
		lbl, ok := ss.rowLabels[k]
		if !ok {
			lbl = fmt.Sprintf(`%s,probe="%s",trigger="%s",mechanism="%s"`,
				ss.base, escapeLabel(k.label), escapeLabel(k.trigger), escapeLabel(k.mech))
			ss.rowLabels[k] = lbl
		}
		rows[i].labels = lbl
	}
	ss.rows = rows

	ss.attempts = s.Attempts()
	ss.state = s.State()
	col := s.Collector()
	ss.trDropped = col.TraceDropped()
	ss.subs = col.Subscribers()
	ss.subDropped = col.SubscriberDrops()
	if ss.gov = s.Governor(); ss.gov != nil {
		ss.govState = ss.gov.State()
		ss.govEjected = 0
		for _, p := range ss.govState.Probes {
			if !p.Enabled {
				ss.govEjected++
			}
		}
	}
}

// Exposition rendering helpers over the pooled byte buffer. They keep
// the output byte-identical to the previous fmt-based writer while
// avoiding per-sample formatting allocations.

func appendHeader(b []byte, name, help, typ string) []byte {
	b = append(b, "# HELP "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, help...)
	b = append(b, "\n# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	b = append(b, '\n')
	return b
}

func appendSample(b []byte, name, labels string, v uint64) []byte {
	b = append(b, name...)
	if labels != "" {
		b = append(b, '{')
		b = append(b, labels...)
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = strconv.AppendUint(b, v, 10)
	b = append(b, '\n')
	return b
}

func appendSampleFloat(b []byte, name, labels string, v float64) []byte {
	b = append(b, name...)
	if labels != "" {
		b = append(b, '{')
		b = append(b, labels...)
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = strconv.AppendFloat(b, v, 'g', -1, 64)
	b = append(b, '\n')
	return b
}

// WriteFleetMetrics renders the whole fleet as one exposition document
// — the body of the fleet /metrics endpoint, exported so the scheduler's
// soak tests and the load harness can render scrapes without a listener.
func WriteFleetMetrics(w io.Writer, f *Fleet) { writeFleetMetrics(w, f) }

// writeFleetMetrics renders the whole fleet as one exposition document.
func writeFleetMetrics(w io.Writer, f *Fleet) {
	sessions := f.Sessions()

	st := scrapePool.Get().(*scrapeState)
	defer scrapePool.Put(st)
	if cap(st.slots) < len(sessions) {
		slots := make([]sessScrape, len(sessions))
		copy(slots, st.slots)
		st.slots = slots
	}
	st.slots = st.slots[:len(sessions)]

	// Prep phase: one snapshot + aggregation per session, fanned out
	// over a bounded worker pool. Each worker owns disjoint slots, so
	// the phase shares nothing but the work counter.
	if workers := scrapeWorkers(len(sessions)); workers <= 1 {
		for i := range st.slots {
			st.slots[i].prep(sessions[i])
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(st.slots); i += workers {
					st.slots[i].prep(sessions[i])
				}
			}(w)
		}
		wg.Wait()
	}

	// Render phase: a straight sequential walk over the prepped slots,
	// in the fixed family order. Families with no samples are skipped
	// entirely (no HELP/TYPE), matching the single-run writer.
	b := st.buf[:0]
	anyRows := false
	for i := range st.slots {
		if len(st.slots[i].rows) > 0 {
			anyRows = true
			break
		}
	}
	perProbe := []struct {
		name, help string
		get        func(*scrapeRow) uint64
	}{
		{"cinnamon_probe_fires_total", "Probe firings, by session, probe label, trigger and dispatch mechanism.", func(r *scrapeRow) uint64 { return r.fires }},
		{"cinnamon_probe_skips_total", "Sampled-probe hits swallowed by the sampling gate.", func(r *scrapeRow) uint64 { return r.skips }},
		{"cinnamon_probe_cycles_total", "Instrumentation cycle units attributed to probe firings.", func(r *scrapeRow) uint64 { return r.cycles }},
	}
	if anyRows {
		for _, fam := range perProbe {
			b = appendHeader(b, fam.name, fam.help, "counter")
			for i := range st.slots {
				for j := range st.slots[i].rows {
					r := &st.slots[i].rows[j]
					b = appendSample(b, fam.name, r.labels, fam.get(r))
				}
			}
		}
	}

	perSession := []struct {
		name, help, typ string
		get             func(*sessScrape) uint64
	}{
		{"cinnamon_untracked_fires_total", "Firings of probes not registered with the session's collector.", "counter", func(s *sessScrape) uint64 { return s.snap.UntrackedFires }},
		{"cinnamon_untracked_cycles_total", "Cycle units of untracked firings.", "counter", func(s *sessScrape) uint64 { return s.snap.UntrackedCycles }},
		{"cinnamon_untracked_skips_total", "Sampling-gate skips of untracked probes.", "counter", func(s *sessScrape) uint64 { return s.snap.UntrackedSkips }},
		{"cinnamon_session_fires_total", "All probe firings of the session, untracked included.", "counter", func(s *sessScrape) uint64 { return s.snap.TotalFires }},
		{"cinnamon_session_skips_total", "All sampling-gate skips of the session, untracked included.", "counter", func(s *sessScrape) uint64 { return s.snap.TotalSkips }},
		{"cinnamon_session_cycles_total", "All instrumentation cycle units of the session, untracked included.", "counter", func(s *sessScrape) uint64 { return s.snap.ProbeCycles }},
		{"cinnamon_session_attempts_total", "Scheduler attempts of the session (restarts count).", "counter", func(s *sessScrape) uint64 { return uint64(s.attempts) }},
		{"cinnamon_trace_dropped_total", "Trace-ring events overwritten by wraparound.", "counter", func(s *sessScrape) uint64 { return s.trDropped }},
		{"cinnamon_trace_subscribers", "Live SSE/trace subscriptions on the session's collector.", "gauge", func(s *sessScrape) uint64 { return uint64(s.subs) }},
		{"cinnamon_trace_subscriber_dropped_total", "Events dropped across the session's trace subscriptions (live and retired).", "counter", func(s *sessScrape) uint64 { return s.subDropped }},
	}
	if len(st.slots) > 0 {
		for _, fam := range perSession {
			b = appendHeader(b, fam.name, fam.help, fam.typ)
			for i := range st.slots {
				b = appendSample(b, fam.name, st.slots[i].base, fam.get(&st.slots[i]))
			}
		}
	}

	// Rollups, from the same snapshots the labelled series rendered
	// from. Emitted even for an empty fleet (zero-valued), so a scraper
	// always sees the fleet families.
	var fleetFires, fleetSkips, fleetCycles uint64
	var fleetProbes int
	for i := range st.slots {
		snap := st.slots[i].snap
		fleetFires += snap.TotalFires
		fleetSkips += snap.TotalSkips
		fleetCycles += snap.ProbeCycles
		fleetProbes += len(snap.Probes)
	}
	for _, g := range []struct {
		name, help, typ string
		value           uint64
	}{
		{"cinnamon_fleet_fires_total", "All probe firings across the fleet (sum of cinnamon_session_fires_total).", "counter", fleetFires},
		{"cinnamon_fleet_skips_total", "All sampling-gate skips across the fleet (sum of cinnamon_session_skips_total).", "counter", fleetSkips},
		{"cinnamon_fleet_cycles_total", "All instrumentation cycle units across the fleet (sum of cinnamon_session_cycles_total).", "counter", fleetCycles},
		{"cinnamon_fleet_probes", "Registered probes across the fleet.", "gauge", uint64(fleetProbes)},
	} {
		b = appendHeader(b, g.name, g.help, g.typ)
		b = appendSample(b, g.name, "", g.value)
	}

	var counts [5]uint64
	for i := range st.slots {
		switch st.slots[i].state {
		case SessionQueued:
			counts[0]++
		case SessionRunning:
			counts[1]++
		case SessionDone:
			counts[2]++
		case SessionFailed:
			counts[3]++
		case SessionCanceled:
			counts[4]++
		}
	}
	b = appendHeader(b, "cinnamon_fleet_sessions", "Sessions by lifecycle state.", "gauge")
	for i, state := range SessionStates() {
		b = append(b, `cinnamon_fleet_sessions{state="`...)
		b = append(b, string(state)...)
		b = append(b, `"} `...)
		b = strconv.AppendUint(b, counts[i], 10)
		b = append(b, '\n')
	}

	// Governor families, for governed sessions. The per-session subset
	// of writeGovernorMetrics: budget, cumulative overhead, ejections
	// (full decision history stays on the per-run /governor endpoint).
	anyGov := false
	for i := range st.slots {
		if st.slots[i].gov != nil {
			anyGov = true
			break
		}
	}
	if anyGov {
		govFams := []struct {
			name, help string
			float      bool
			getF       func(*sessScrape) float64
			getU       func(*sessScrape) uint64
		}{
			{"cinnamon_governor_budget", "Configured probe-overhead budget (fraction of machine cycles).", true, func(s *sessScrape) float64 { return s.govState.Budget }, nil},
			{"cinnamon_governor_cum_overhead", "Attributed probe overhead of the run so far.", true, func(s *sessScrape) float64 { return s.govState.CumOverhead }, nil},
			{"cinnamon_governor_ejected_probes", "Probes currently ejected by the governor.", false, nil, func(s *sessScrape) uint64 { return uint64(s.govEjected) }},
		}
		for _, fam := range govFams {
			b = appendHeader(b, fam.name, fam.help, "gauge")
			for i := range st.slots {
				ss := &st.slots[i]
				if ss.gov == nil {
					continue
				}
				if fam.float {
					b = appendSampleFloat(b, fam.name, ss.base, fam.getF(ss))
				} else {
					b = appendSample(b, fam.name, ss.base, fam.getU(ss))
				}
			}
		}
	}

	st.buf = b
	_, _ = w.Write(b)
}

// ArtifactKindStats is one artifact kind's cache counters in the fleet
// /metrics artifact families.
type ArtifactKindStats struct {
	// Kind names the artifact kind ("tool", "victim", "template").
	Kind string
	// Hits and Misses count cache consultations, Entries live entries.
	Hits, Misses uint64
	Entries      int
}

// ArtifactStats is the scheduler-supplied artifact-cache view for fleet
// exposition (monitor stays decoupled from the cache implementation).
type ArtifactStats struct {
	Kinds     []ArtifactKindStats
	Evictions uint64
}

// writeArtifactMetrics appends the cinnamon_artifact_* families.
func writeArtifactMetrics(w io.Writer, st ArtifactStats) {
	var b []byte
	b = appendHeader(b, "cinnamon_artifact_hits_total", "Artifact-cache hits, by artifact kind.", "counter")
	for _, k := range st.Kinds {
		b = appendSample(b, "cinnamon_artifact_hits_total", `kind="`+escapeLabel(k.Kind)+`"`, k.Hits)
	}
	b = appendHeader(b, "cinnamon_artifact_misses_total", "Artifact-cache misses, by artifact kind.", "counter")
	for _, k := range st.Kinds {
		b = appendSample(b, "cinnamon_artifact_misses_total", `kind="`+escapeLabel(k.Kind)+`"`, k.Misses)
	}
	b = appendHeader(b, "cinnamon_artifact_entries", "Live artifact-cache entries, by artifact kind.", "gauge")
	for _, k := range st.Kinds {
		b = appendSample(b, "cinnamon_artifact_entries", `kind="`+escapeLabel(k.Kind)+`"`, uint64(k.Entries))
	}
	b = appendHeader(b, "cinnamon_artifact_evictions_total", "Artifact-cache entries evicted by capacity bounds.", "counter")
	b = appendSample(b, "cinnamon_artifact_evictions_total", "", st.Evictions)
	_, _ = w.Write(b)
}

// ParseSamples parses a text-exposition document into a series→value
// map, keyed by the full sample line head ("name{labels}"). Comment and
// blank lines are skipped. The load harness (internal/bench) and the
// fleet smoke script use it to assert rollup consistency against a live
// /metrics scrape.
func ParseSamples(text string) map[string]float64 {
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value follows the last space outside braces; label values
		// may themselves contain spaces.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}
