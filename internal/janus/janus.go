// Package janus is a clean-room, Go reimplementation of the programming
// model of Janus, the hybrid static/dynamic binary modification framework
// built on DynamoRIO. It is one of the three backend substrates the
// Cinnamon compiler targets.
//
// Janus splits a tool into two halves:
//
//   - a *static analyzer* that walks the executable's recovered control
//     flow ahead of time and annotates instructions and basic blocks with
//     *rewrite rules* — compact records naming a dynamic handler and
//     carrying payload words of static analysis data;
//   - a *dynamic instrumenter* (DynamoRIO underneath) that translates the
//     binary one basic block at a time and, before a block first executes,
//     decodes its rewrite rules and inserts clean calls to the registered
//     handlers, passing the payload words as arguments.
//
// Fidelity notes, matching the paper:
//
//   - the static analyzer only sees the main executable, so rules (and
//     therefore instrumentation) never cover shared-library code — Janus's
//     counts match Dyninst's, not Pin's, in Figure 12;
//   - clean calls whose handler is simple enough are inlined by the
//     dynamic translator (as DynamoRIO does), which is why Janus sits
//     between Pin and Dyninst in the Figure 13 overhead ordering;
//   - static analysis data reaches handlers as rule payload words, the
//     exact mechanism Cinnamon uses to pass analysis results to actions.
package janus

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/cfg"
	"repro/internal/core/placement"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Dispatch cost model (cycle units).
const (
	// CleanCallCost is charged per non-inlined handler invocation
	// (DynamoRIO clean call: full context switch into the tool).
	CleanCallCost = 30
	// InlinedCallCost is charged when the dynamic translator can inline
	// the clean call (simple, branch-free handler).
	InlinedCallCost = 10
	// ArgCost is charged per payload word materialized for a handler.
	ArgCost = 2
	// BlockTranslationCost is the one-time cost of translating a basic
	// block and scanning its rewrite rules.
	BlockTranslationCost = 300
)

// Trigger says where, relative to the annotated location, the handler is
// invoked.
type Trigger uint8

// Rule triggers.
const (
	// TriggerBefore / TriggerAfter bracket a single instruction. After a
	// call instruction, TriggerAfter fires at the fall-through once the
	// callee returns.
	TriggerBefore Trigger = iota
	TriggerAfter
	// TriggerBlockEntry fires when the annotated basic block is entered.
	TriggerBlockEntry
	// TriggerEdge fires when the intraprocedural edge (Aux -> block) is
	// traversed; Aux holds the source block address.
	TriggerEdge
	// TriggerInit / TriggerFini fire before the first and after the last
	// application instruction.
	TriggerInit
	TriggerFini
)

// Rule is a rewrite rule: the static analyzer's annotation on a location
// in the binary, consumed by the dynamic instrumenter.
type Rule struct {
	// BlockAddr is the start address of the annotated basic block.
	BlockAddr uint64
	// InstAddr is the annotated instruction (for before/after triggers).
	InstAddr uint64
	// Aux is trigger-specific (source block address for TriggerEdge).
	Aux uint64
	// Trigger selects the invocation point.
	Trigger Trigger
	// Handler names the dynamic handler to invoke.
	Handler HandlerID
	// Data is the static-analysis payload passed to the handler.
	Data []uint64
}

// HandlerID names a registered dynamic handler.
type HandlerID uint16

// HandlerFn is a dynamic handler. It receives the machine context and the
// rule's payload words.
type HandlerFn func(c *vm.Ctx, data []uint64)

// Handler couples a handler function with its cost properties. Cost is
// the body's work in cycle units; Inlinable marks handlers simple enough
// for DynamoRIO's clean-call inlining.
type Handler struct {
	Fn        HandlerFn
	Cost      uint64
	Inlinable bool
	// Label identifies the handler in observability reports (optional;
	// the Cinnamon backend sets it to the originating action).
	Label string
	// FastFn, when non-nil, is a specialized variant of Fn with
	// identical observable behavior (same stores, same output, same
	// failures) that satisfies the vm.ProbeSpec purity contract: it
	// never installs rules or probes and never reads cycle counts. The
	// dynamic instrumenter hands it to the VM's action-inlining layer.
	FastFn HandlerFn
	// CounterFlush, when non-nil, asserts that every invocation of the
	// handler — for any rule payload — is equivalent in all observables
	// to CounterFlush(CounterDelta). Such handlers are promoted to
	// block-local accumulators by the inline tier.
	CounterDelta int64
	CounterFlush func(n int64)
	// Sample, when > 1, arms each rule applying the handler with a
	// sampling countdown: the handler fires on every Sample-th hit of
	// that placement; swallowed hits cost only the inlined gate (see
	// vm.SampleGateCost).
	Sample uint64
}

// StaticAnalyzer is the ahead-of-time half of a Janus run. Tools walk the
// executable's control flow through it and emit rewrite rules.
type StaticAnalyzer struct {
	prog  *cfg.Program
	rules []Rule
}

// Executable returns the main executable module — the only code the
// static analyzer can see.
func (sa *StaticAnalyzer) Executable() *cfg.Module { return sa.prog.Modules[0] }

// Program exposes the loaded program for address lookups.
func (sa *StaticAnalyzer) Program() *cfg.Program { return sa.prog }

// EmitRule appends a rewrite rule.
func (sa *StaticAnalyzer) EmitRule(r Rule) { sa.rules = append(sa.rules, r) }

// convert resolves native rewrite rules into the shared placement
// table, keyed by the executable module's recovered blocks. Addresses
// are resolved against the executable ONLY — the static analyzer
// never sees other modules, so a same-address block in a shared
// library must not pick the rule up (the former bare-address
// RuleTable keyed exactly that collision). Rules naming unknown
// handlers or unresolvable addresses are skipped, as the dynamic side
// of real Janus does with stale rules; init/fini rules are returned
// separately for the machine's start/end hooks.
func convert(prog *cfg.Program, rules []Rule, handlers map[HandlerID]Handler) (*placement.RuleSet, []globalRule) {
	exe := prog.Modules[0]
	blocks := make(map[uint64]*cfg.Block)
	instBlock := make(map[uint64]*cfg.Block)
	insts := make(map[uint64]*isa.Inst)
	for _, f := range exe.Funcs {
		for _, b := range f.Blocks {
			blocks[b.Start] = b
			for _, in := range b.Insts {
				insts[in.Addr] = in
				instBlock[in.Addr] = b
			}
		}
	}

	rs := &placement.RuleSet{}
	var global []globalRule
	for _, r := range rules {
		h, ok := handlers[r.Handler]
		if !ok {
			continue
		}
		if r.Trigger == TriggerInit || r.Trigger == TriggerFini {
			global = append(global, globalRule{h: h, data: r.Data, fini: r.Trigger == TriggerFini})
			continue
		}
		a, mech := h.action(r.Data)
		pr := &placement.Rule{Action: a, Mechanism: mech}
		switch r.Trigger {
		case TriggerBefore, TriggerAfter:
			pr.Inst, pr.Block = insts[r.InstAddr], instBlock[r.InstAddr]
			if r.Trigger == TriggerAfter {
				pr.Trigger = placement.After
			}
		case TriggerBlockEntry:
			pr.Trigger, pr.Block = placement.BlockEntry, blocks[r.BlockAddr]
		case TriggerEdge:
			pr.Trigger, pr.From, pr.Block = placement.Edge, blocks[r.Aux], blocks[r.BlockAddr]
		}
		if pr.Block == nil || ((pr.Trigger == placement.Before || pr.Trigger == placement.After) && pr.Inst == nil) ||
			(pr.Trigger == placement.Edge && pr.From == nil) {
			continue
		}
		rs.Add(pr)
	}
	return rs, global
}

// globalRule is a resolved init/fini rule awaiting its machine hook.
type globalRule struct {
	h    Handler
	data []uint64
	fini bool
}

// action adapts a handler application to the shared placement Action,
// pre-binding the rule payload. The native fast surfaces map directly
// onto the IR's mechanism tiers, so the one translator path below
// serves native and Cinnamon tools alike.
func (h Handler) action(data []uint64) (*placement.Action, placement.Mechanism) {
	fn := h.Fn
	a := &placement.Action{
		Label:       h.Label,
		Cost:        h.Cost,
		Simple:      h.Inlinable,
		Sample:      h.Sample,
		NumCaptured: len(data),
		Raw:         func(c *vm.Ctx) { fn(c, data) },
	}
	mech := placement.MechGeneric
	if h.CounterFlush != nil {
		a.Inline = &placement.InlineInfo{Counter: true, Delta: h.CounterDelta, Flush: h.CounterFlush}
		mech = placement.MechCounter
	} else if h.FastFn != nil {
		fast := h.FastFn
		a.Inline = &placement.InlineInfo{RawFast: func(c *vm.Ctx) { fast(c, data) }}
		mech = placement.MechFast
	}
	return a, mech
}

// Tool is a complete Janus tool: a static pass plus dynamic handlers,
// or (for the Cinnamon backend) a pre-lowered placement table.
type Tool struct {
	// Name identifies the tool.
	Name string
	// StaticPass walks the binary and emits rewrite rules.
	StaticPass func(sa *StaticAnalyzer)
	// Handlers maps handler IDs to dynamic handlers.
	Handlers map[HandlerID]Handler
	// Rules, when non-nil, is a pre-built placement table consumed
	// directly instead of running StaticPass (the Cinnamon engine
	// produces it; init/fini code rides in its Inits/Finis).
	Rules *placement.RuleSet
}

// Config parameterizes a Janus run.
type Config struct {
	// Fuel bounds application instructions (0 = default).
	Fuel uint64
	// AppOut receives the application's output (discarded if nil).
	AppOut io.Writer
	// Obs, when non-nil, collects per-probe attribution, rule counts and
	// translation statistics for the run.
	Obs *obs.Collector
	// ExecMode selects the underlying VM execution tier (see vm.Config).
	ExecMode vm.ExecMode
	// NoInline disables the VM's action-inlining layer (see vm.Config).
	NoInline bool
	// Adaptive allocates a control block for every applied rule so
	// probes can be sampled, ejected and re-armed mid-run (see
	// vm.Config.Adaptive).
	Adaptive bool
	// OnMachine, when non-nil, is called with the run's machine before
	// execution starts — the hook adaptive controllers (the overhead
	// governor) attach through.
	OnMachine func(*vm.VM)
	// Stop, when non-nil, is the cooperative cancellation flag handed to
	// the machine (see vm.Config.Stop).
	Stop *atomic.Bool
	// Glue is the per-dispatch marshalling surcharge added on top of
	// the clean-call/inlined base and the handler body cost. Native
	// tools leave it 0 (their Handler.Cost already prices the whole
	// body); the Cinnamon backend passes its Janus glue constant.
	Glue uint64
}

// dispatchCost prices one dispatch of an action: clean-call or
// inlined base, one ArgCost per payload word, the body cost, plus the
// configured glue.
func dispatchCost(a *placement.Action, glue uint64) uint64 {
	base := uint64(CleanCallCost)
	if a.Simple {
		base = InlinedCallCost
	}
	return base + uint64(a.NumCaptured)*ArgCost + a.Cost + glue
}

func mechanism(a *placement.Action) string {
	if a.Simple {
		return obs.MechInlinedCall
	}
	return obs.MechCleanCall
}

func triggerName(t placement.Trigger) string {
	switch t {
	case placement.After:
		return obs.TriggerAfter
	case placement.BlockEntry:
		return obs.TriggerBlockEntry
	case placement.Edge:
		return obs.TriggerEdge
	}
	return obs.TriggerBefore
}

// Run executes the program under Janus: the tool's static pass runs
// first (unless a pre-built placement table is supplied), producing
// the shared rule table; then the dynamic instrumenter executes the
// program, translating blocks on first execution and instrumenting
// them according to their rules.
func Run(prog *cfg.Program, tool *Tool, c Config) (*vm.Result, error) {
	rs := tool.Rules
	var global []globalRule
	emitted := 0
	if rs == nil {
		sa := &StaticAnalyzer{prog: prog}
		if tool.StaticPass != nil {
			tool.StaticPass(sa)
		}
		rs, global = convert(prog, sa.rules, tool.Handlers)
		emitted = len(sa.rules)
	} else {
		emitted = rs.NumPlacements()
		if len(rs.Inits) > 0 {
			emitted++
		}
		if len(rs.Finis) > 0 {
			emitted++
		}
	}
	if c.Obs != nil {
		c.Obs.MutateBuild(func(b *obs.BuildStats) { b.RulesEmitted = emitted })
	}

	machine := vm.New(prog, vm.Config{Fuel: c.Fuel, AppOut: c.AppOut, Obs: c.Obs, ExecMode: c.ExecMode, NoInline: c.NoInline, Adaptive: c.Adaptive, Stop: c.Stop})
	if c.OnMachine != nil {
		c.OnMachine(machine)
	}
	// register records one applied placement with the attached collector
	// (cold path: block-translation time only).
	register := func(a *placement.Action, trigger string, addr, cost uint64) obs.ProbeID {
		if c.Obs == nil {
			return obs.NoProbe
		}
		c.Obs.MutateBuild(func(b *obs.BuildStats) {
			if a.Simple {
				b.InlinedCalls++
			} else {
				b.CleanCalls++
			}
		})
		return c.Obs.RegisterProbe(obs.ProbeMeta{
			Label:        a.Label,
			Trigger:      trigger,
			Mechanism:    mechanism(a),
			Addr:         addr,
			DispatchCost: cost,
		})
	}
	// The dynamic instrumenter: translate one block at a time, decode the
	// block's rewrite rules, insert clean calls. The per-block lookup is
	// keyed by the block itself — module-qualified by construction — so
	// a same-address shared-library block never picks up the
	// executable's rules.
	err := machine.SetTranslator(func(b *cfg.Block) {
		machine.Charge(BlockTranslationCost)
		if c.Obs != nil {
			c.Obs.NoteTranslation(BlockTranslationCost)
		}
		for _, r := range rs.ByBlock(b) {
			addr := r.SiteAddr()
			trig := triggerName(r.Trigger)
			fn := r.Action.CtxExec()
			spec := r.Spec()
			var ierr error
			if parts := r.Merged; len(parts) > 0 {
				// One merged probe, one attribution share per
				// constituent — the report stays row-for-row identical
				// to separate installation.
				shares := make([]vm.Share, len(parts))
				for i, p := range parts {
					pc := dispatchCost(p.Action, c.Glue)
					shares[i] = vm.Share{ID: register(p.Action, trig, addr, pc), Cost: pc}
				}
				switch r.Trigger {
				case placement.Before:
					ierr = machine.AddBeforeCoalesced(r.Inst.Addr, shares, fn, spec)
				case placement.After:
					ierr = machine.AddAfterCoalesced(r.Inst.Addr, shares, fn, spec)
				case placement.BlockEntry:
					ierr = machine.AddBlockEntryCoalesced(r.Block.Start, shares, fn, spec)
				case placement.Edge:
					ierr = machine.AddEdgeCoalesced(r.From.Start, r.Block.Start, shares, fn, spec)
				}
			} else {
				cost := dispatchCost(r.Action, c.Glue)
				id := register(r.Action, trig, addr, cost)
				switch r.Trigger {
				case placement.Before:
					ierr = machine.AddBeforeSampled(r.Inst.Addr, cost, id, fn, spec, r.Action.Sample)
				case placement.After:
					ierr = machine.AddAfterSampled(r.Inst.Addr, cost, id, fn, spec, r.Action.Sample)
				case placement.BlockEntry:
					ierr = machine.AddBlockEntrySampled(r.Block.Start, cost, id, fn, spec, r.Action.Sample)
				case placement.Edge:
					ierr = machine.AddEdgeSampled(r.From.Start, r.Block.Start, cost, id, fn, spec, r.Action.Sample)
				}
			}
			if ierr != nil {
				// Rules that cannot be applied are skipped, as the
				// dynamic side of real Janus does with stale rules.
				continue
			}
		}
	})
	if err != nil {
		return nil, err
	}
	for _, g := range global {
		g := g
		if g.fini {
			machine.OnEnd(func(ctx *vm.Ctx) { g.h.Fn(ctx, g.data) })
		} else {
			machine.OnStart(func(ctx *vm.Ctx) { g.h.Fn(ctx, g.data) })
		}
	}
	if tool.Rules != nil {
		if inits := tool.Rules.Inits; len(inits) > 0 {
			machine.OnStart(func(ctx *vm.Ctx) {
				for _, fn := range inits {
					fn()
				}
			})
		}
		if finis := tool.Rules.Finis; len(finis) > 0 {
			machine.OnEnd(func(ctx *vm.Ctx) {
				for _, fn := range finis {
					fn()
				}
			})
		}
	}
	res, err := machine.Run()
	if err != nil {
		return nil, fmt.Errorf("janus: %s: %w", tool.Name, err)
	}
	return res, nil
}

// AnalyzeOnly runs just the static pass and returns the resolved
// placement table (useful for tests and for inspecting what a tool
// annotates).
func AnalyzeOnly(prog *cfg.Program, tool *Tool) *placement.RuleSet {
	sa := &StaticAnalyzer{prog: prog}
	if tool.StaticPass != nil {
		tool.StaticPass(sa)
	}
	rs, _ := convert(prog, sa.rules, tool.Handlers)
	return rs
}
