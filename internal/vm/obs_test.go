package vm

import (
	"os"
	"testing"

	"repro/internal/isa"
	"repro/internal/obs"
)

// TestObsAttribution installs tagged and untagged probes on the same VM
// and checks that firings and cycle costs land on the right collector
// slots: registered probes by ID, legacy Add* probes in the untracked
// bucket, with totals reconciling against the extra cycles charged.
func TestObsAttribution(t *testing.T) {
	prog := build(t, sumSrc)
	f := prog.FuncByName("main")
	var addInst *isa.Inst
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if in.Op == isa.Add && addInst == nil {
				addInst = in
			}
		}
	}

	col := obs.New(obs.Options{TraceCap: 3})
	before := col.RegisterProbe(obs.ProbeMeta{Label: "test before", Trigger: obs.TriggerBefore, Mechanism: obs.MechCleanCall, Addr: addInst.Addr})
	after := col.RegisterProbe(obs.ProbeMeta{Label: "test after", Trigger: obs.TriggerAfter, Mechanism: obs.MechInlinedCall, Addr: addInst.Addr})

	v := New(prog, Config{Obs: col})
	if err := v.AddBeforeObs(addInst.Addr, 5, before, func(c *Ctx) {}); err != nil {
		t.Fatal(err)
	}
	if err := v.AddAfterObs(addInst.Addr, 7, after, func(c *Ctx) {}); err != nil {
		t.Fatal(err)
	}
	// Untagged legacy API: counted, but in the untracked bucket.
	if err := v.AddBefore(addInst.Addr, 2, func(c *Ctx) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}

	s := col.Snapshot("test")
	// The sum loop executes its add 10 times.
	if got := s.FiresWhere(func(p obs.ProbeStats) bool { return p.Label == "test before" }); got != 10 {
		t.Errorf("before fires = %d, want 10", got)
	}
	if got := s.CyclesWhere(func(p obs.ProbeStats) bool { return p.Label == "test after" }); got != 70 {
		t.Errorf("after cycles = %d, want 70", got)
	}
	if s.UntrackedFires != 10 || s.UntrackedCycles != 20 {
		t.Errorf("untracked fires=%d cycles=%d, want 10/20", s.UntrackedFires, s.UntrackedCycles)
	}
	if s.TotalFires != 30 {
		t.Errorf("total fires = %d, want 30", s.TotalFires)
	}
	if s.ProbeCycles != 10*5+10*7+10*2 {
		t.Errorf("probe cycles = %d, want %d", s.ProbeCycles, 10*5+10*7+10*2)
	}
	// Trace ring holds the last 3 of 30 firings.
	if s.Trace == nil || len(s.Trace.Events) != 3 || s.Trace.Dropped != 27 {
		t.Errorf("trace = %+v, want 3 events with 27 dropped", s.Trace)
	}
}

// TestObsDisabledIdenticalRun checks that a VM without a collector and a
// VM with one produce identical results — collection observes but never
// charges cycles.
func TestObsDisabledIdenticalRun(t *testing.T) {
	prog := build(t, sumSrc)
	plain := New(prog, Config{})
	resPlain, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	prog2 := build(t, sumSrc)
	observed := New(prog2, Config{Obs: obs.New(obs.Options{})})
	resObs, err := observed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resPlain.Cycles != resObs.Cycles || resPlain.Insts != resObs.Insts {
		t.Errorf("collector changed run: cycles %d vs %d, insts %d vs %d",
			resPlain.Cycles, resObs.Cycles, resPlain.Insts, resObs.Insts)
	}
}

// TestObsDisabledDispatchOverhead is the perf regression gate for the
// tentpole's zero-cost-when-disabled promise: with no collector attached,
// probe dispatch must stay within 3% of the pre-observability loop.
// Benchmark comparisons are noisy under -race and on loaded CI machines,
// so the gate only runs when CINNAMON_PERF_GATE is set (scripts/ci.sh
// sets it for the dedicated non-race invocation).
func TestObsDisabledDispatchOverhead(t *testing.T) {
	if os.Getenv("CINNAMON_PERF_GATE") == "" {
		t.Skip("set CINNAMON_PERF_GATE=1 to run the disabled-path perf gate")
	}

	prog := build(t, sumSrc)
	v := New(prog, Config{})
	var sink uint64
	ps := make([]probe, 4)
	for i := range ps {
		ps[i] = probe{fn: func(c *Ctx) { sink++ }, cost: 3}
	}
	in := &isa.Inst{}

	// Replica of the dispatch loop as it was before the observability
	// branch was added: the baseline the current disabled path is held to.
	baseline := func(b *testing.B) {
		c := &v.ctx
		for i := 0; i < b.N; i++ {
			saveInst, saveWhen := c.inst, c.when
			c.inst, c.when = in, BeforeInst
			for _, p := range ps {
				v.cycles += p.cost
				p.fn(c)
			}
			c.inst, c.when = saveInst, saveWhen
		}
	}
	current := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v.fire(ps, in, BeforeInst)
		}
	}

	measure := func(f func(*testing.B)) float64 {
		best := 0.0
		for i := 0; i < 5; i++ {
			r := testing.Benchmark(f)
			nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
			if best == 0 || nsPerOp < best {
				best = nsPerOp
			}
		}
		return best
	}

	const limit = 1.03
	// Noise tolerance: accept the first of three attempts under the limit.
	var ratio float64
	for attempt := 0; attempt < 3; attempt++ {
		base := measure(baseline)
		cur := measure(current)
		ratio = cur / base
		t.Logf("attempt %d: baseline %.2f ns/op, current %.2f ns/op, ratio %.4f", attempt, base, cur, ratio)
		if ratio <= limit {
			return
		}
	}
	t.Errorf("disabled-path dispatch is %.2f%% slower than the pre-observability loop (limit 3%%)",
		(ratio-1)*100)
	_ = sink
}

// hotLoopSrc is a 2000-iteration loop whose body is ~18 instructions
// with a single probed site (the lone mul): the probe density of a
// realistic monitoring tool, and enough whole-run work that VM
// dispatch, not setup, dominates the measurement.
const hotLoopSrc = `
.module hot
.executable
.entry main
.func main
  mov r1, 0
  mov r2, 0
  mov r3, 2000
head:
  add  r1, r1, r2
  mul  r5, r1, 3
  add  r5, r5, 1
  add  r6, r5, r1
  add  r6, r6, 2
  add  r7, r6, r5
  add  r7, r7, 1
  add  r8, r7, r6
  add  r8, r8, 3
  add  r9, r8, r7
  add  r9, r9, 1
  add  r10, r9, r8
  add  r10, r10, 2
  add  r11, r10, r9
  add  r11, r11, 1
  add  r2, r2, 1
  blt  r2, r3, head
  halt
`

// TestObsEnabledDispatchOverhead is the perf gate for the live-monitoring
// rework of the *enabled* path: moving the per-probe counters from plain
// uint64 adds to atomics (so a /metrics scrape can read them mid-run)
// must cost no more than 5% of whole-run throughput with a probe on the
// hottest instruction. The baseline is a collector-less VM whose probe
// body does the same tool work plus a plain-counter replica of the
// pre-atomic accounting; the current side runs the real enabled path
// (collector attached, atomic Fire). Gated like the disabled-path test:
// only runs when CINNAMON_PERF_GATE is set.
func TestObsEnabledDispatchOverhead(t *testing.T) {
	if os.Getenv("CINNAMON_PERF_GATE") == "" {
		t.Skip("set CINNAMON_PERF_GATE=1 to run the enabled-path perf gate")
	}

	prog := build(t, hotLoopSrc)
	var addAddr uint64
	for _, b := range prog.FuncByName("main").Blocks {
		for _, in := range b.Insts {
			if in.Op == isa.Mul {
				addAddr = in.Addr
			}
		}
	}
	if addAddr == 0 {
		t.Fatal("no mul instruction found")
	}

	var sink uint64
	toolWork := func(c *Ctx) { sink++ }

	// Pre-atomic accounting replica: what the enabled path cost before
	// counters became scrapeable.
	var plainFires, plainCycles uint64
	baseline := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := New(prog, Config{})
			if err := v.AddBefore(addAddr, 3, func(c *Ctx) {
				toolWork(c)
				plainFires++
				plainCycles += 3
			}); err != nil {
				b.Fatal(err)
			}
			if _, err := v.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	current := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			col := obs.New(obs.Options{})
			id := col.RegisterProbe(obs.ProbeMeta{Label: "gate", Trigger: obs.TriggerBefore, Mechanism: obs.MechCleanCall, Addr: addAddr, DispatchCost: 3})
			v := New(prog, Config{Obs: col})
			if err := v.AddBeforeObs(addAddr, 3, id, toolWork); err != nil {
				b.Fatal(err)
			}
			if _, err := v.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}

	measure := func(f func(*testing.B)) float64 {
		best := 0.0
		for i := 0; i < 5; i++ {
			r := testing.Benchmark(f)
			nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
			if best == 0 || nsPerOp < best {
				best = nsPerOp
			}
		}
		return best
	}

	const limit = 1.05
	var ratio float64
	for attempt := 0; attempt < 3; attempt++ {
		base := measure(baseline)
		cur := measure(current)
		ratio = cur / base
		t.Logf("attempt %d: baseline %.0f ns/run, current %.0f ns/run, ratio %.4f", attempt, base, cur, ratio)
		if ratio <= limit {
			return
		}
	}
	t.Errorf("enabled-path run is %.2f%% slower than plain-counter accounting (limit 5%%)",
		(ratio-1)*100)
	_ = sink
	_, _ = plainFires, plainCycles
}
