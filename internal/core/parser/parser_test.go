package parser

import (
	"strings"
	"testing"

	"repro/internal/core/ast"
	"repro/internal/core/token"
	"repro/internal/progs"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestParseAllCaseStudies(t *testing.T) {
	for _, name := range progs.Names() {
		src := progs.MustSource(name)
		if _, err := Parse(src); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestParseInstCountBasic(t *testing.T) {
	prog := parse(t, progs.MustSource(progs.InstCountBasic))
	if len(prog.Items) != 3 {
		t.Fatalf("items = %d, want 3", len(prog.Items))
	}
	decl, ok := prog.Items[0].(*ast.VarDecl)
	if !ok || decl.Name != "inst_count" || decl.Type.Kind != token.TUINT64 {
		t.Fatalf("item 0 = %#v", prog.Items[0])
	}
	if _, ok := decl.Init.(*ast.IntLit); !ok {
		t.Errorf("initializer = %#v", decl.Init)
	}
	cmd, ok := prog.Items[1].(*ast.Command)
	if !ok || cmd.EType != ast.Inst || cmd.Var != "I" {
		t.Fatalf("item 1 = %#v", prog.Items[1])
	}
	where, ok := cmd.Where.(*ast.BinaryExpr)
	if !ok || where.Op != token.EQ {
		t.Fatalf("where = %#v", cmd.Where)
	}
	if f, ok := where.X.(*ast.FieldExpr); !ok || f.Name != "opcode" {
		t.Errorf("where lhs = %#v", where.X)
	}
	if o, ok := where.Y.(*ast.OpcodeLit); !ok || o.Name != "Load" {
		t.Errorf("where rhs = %#v", where.Y)
	}
	if len(cmd.Body) != 1 {
		t.Fatalf("command body = %d items", len(cmd.Body))
	}
	act, ok := cmd.Body[0].(*ast.Action)
	if !ok || act.Trigger != ast.Before || act.Target != "I" || len(act.Body) != 1 {
		t.Fatalf("action = %#v", cmd.Body[0])
	}
	if _, ok := prog.Items[2].(*ast.ExitBlock); !ok {
		t.Fatalf("item 2 = %#v", prog.Items[2])
	}
}

func TestParseNestedCommandAndActionConstraint(t *testing.T) {
	prog := parse(t, progs.MustSource(progs.InstCountBB))
	cmd := prog.Items[1].(*ast.Command)
	if cmd.EType != ast.BasicBlock {
		t.Fatalf("etype = %v", cmd.EType)
	}
	if len(cmd.Body) != 3 {
		t.Fatalf("body = %d items", len(cmd.Body))
	}
	if _, ok := cmd.Body[0].(*ast.DeclStmt); !ok {
		t.Errorf("body[0] = %#v", cmd.Body[0])
	}
	nested, ok := cmd.Body[1].(*ast.Command)
	if !ok || nested.EType != ast.Inst {
		t.Fatalf("body[1] = %#v", cmd.Body[1])
	}
	act, ok := cmd.Body[2].(*ast.Action)
	if !ok || act.Where == nil {
		t.Fatalf("body[2] = %#v", cmd.Body[2])
	}
}

func TestParseTypesAndFiles(t *testing.T) {
	prog := parse(t, `
dict<addr,int> freed;
dict<addr,vector<int>> nested;
vector<addr> vtable;
file outfile("fAddr.txt");
int hits[16];
`)
	if len(prog.Items) != 5 {
		t.Fatalf("items = %d", len(prog.Items))
	}
	d0 := prog.Items[0].(*ast.VarDecl)
	if d0.Type.Kind != token.TDICT || d0.Type.Key.Kind != token.TADDR || d0.Type.Elem.Kind != token.TINT {
		t.Errorf("dict type = %#v", d0.Type)
	}
	d1 := prog.Items[1].(*ast.VarDecl)
	if d1.Type.Elem.Kind != token.TVECTOR || d1.Type.Elem.Elem.Kind != token.TINT {
		t.Errorf("nested type = %#v (>> splitting failed?)", d1.Type)
	}
	d3 := prog.Items[3].(*ast.VarDecl)
	if d3.Type.Kind != token.TFILE || len(d3.Args) != 1 {
		t.Errorf("file decl = %#v", d3)
	}
	if s, ok := d3.Args[0].(*ast.StringLit); !ok || s.Val != "fAddr.txt" {
		t.Errorf("file arg = %#v", d3.Args[0])
	}
	d4 := prog.Items[4].(*ast.VarDecl)
	if d4.Type.ArrayLen != 16 {
		t.Errorf("array len = %d", d4.Type.ArrayLen)
	}
}

func TestParseStatements(t *testing.T) {
	src := `
inst I {
  before I {
    int x = 1;
    x = x + 2;
    if (x > 2) {
      print(x);
    } else if (x == 1) {
      print(0);
    } else {
      print(1);
    }
    for (int i = 0; i < 10; i = i + 1) {
      x = x * 2;
    }
    for (; x > 0; ) {
      x = x - 1;
    }
  }
}
`
	prog := parse(t, src)
	act := prog.Items[0].(*ast.Command).Body[0].(*ast.Action)
	if len(act.Body) != 5 {
		t.Fatalf("stmts = %d, want 5", len(act.Body))
	}
	ifs, ok := act.Body[2].(*ast.IfStmt)
	if !ok || len(ifs.Else) != 1 {
		t.Fatalf("if stmt = %#v", act.Body[2])
	}
	if _, ok := ifs.Else[0].(*ast.IfStmt); !ok {
		t.Errorf("else-if = %#v", ifs.Else[0])
	}
	forس, ok := act.Body[3].(*ast.ForStmt)
	if !ok || forس.Init == nil || forس.Cond == nil || forس.Post == nil {
		t.Fatalf("for stmt = %#v", act.Body[3])
	}
	for2 := act.Body[4].(*ast.ForStmt)
	if for2.Init != nil || for2.Post != nil || for2.Cond == nil {
		t.Errorf("for2 = %#v", for2)
	}
}

func TestParseExpressions(t *testing.T) {
	src := `
inst I where (I.opcode == Call && I.trgname == "malloc" || !done) {
  before I {
    x = a + b * c - d / e % f;
    y = (a + b) * c;
    z = tab[i+1];
    w = v.has(I.trgaddr);
    t = I.op1 IsType mem;
    u = -a < b << 2;
    s = NULL;
  }
}
`
	prog := parse(t, src)
	cmd := prog.Items[0].(*ast.Command)
	or, ok := cmd.Where.(*ast.BinaryExpr)
	if !ok || or.Op != token.LOR {
		t.Fatalf("where = %#v", cmd.Where)
	}
	and, ok := or.X.(*ast.BinaryExpr)
	if !ok || and.Op != token.LAND {
		t.Fatalf("where lhs = %#v", or.X)
	}
	if u, ok := or.Y.(*ast.UnaryExpr); !ok || u.Op != token.NOT {
		t.Errorf("where rhs = %#v", or.Y)
	}
	body := cmd.Body[0].(*ast.Action).Body
	// x = a + b*c - d/e%f: top is (a + b*c) - (d/e%f)
	x := body[0].(*ast.AssignStmt).RHS.(*ast.BinaryExpr)
	if x.Op != token.MINUS {
		t.Errorf("precedence wrong: %#v", x)
	}
	// z = tab[i+1]
	z := body[2].(*ast.AssignStmt).RHS.(*ast.IndexExpr)
	if _, ok := z.Index.(*ast.BinaryExpr); !ok {
		t.Errorf("index = %#v", z.Index)
	}
	// w = v.has(...)
	w := body[3].(*ast.AssignStmt).RHS.(*ast.CallExpr)
	if f, ok := w.Fun.(*ast.FieldExpr); !ok || f.Name != "has" {
		t.Errorf("method call = %#v", w.Fun)
	}
	// t = I.op1 IsType mem
	ti := body[4].(*ast.AssignStmt).RHS.(*ast.IsTypeExpr)
	if ti.OpType != token.KMEM {
		t.Errorf("IsType = %#v", ti)
	}
	// u = (-a) < (b << 2)
	ue := body[5].(*ast.AssignStmt).RHS.(*ast.BinaryExpr)
	if ue.Op != token.LT {
		t.Errorf("shift precedence wrong: %#v", ue)
	}
	if _, ok := body[6].(*ast.AssignStmt).RHS.(*ast.NullLit); !ok {
		t.Errorf("NULL literal = %#v", body[6])
	}
}

func TestParseInitVsExitAmbiguity(t *testing.T) {
	src := `
loop L {
  entry L { x = 1; }
  exit L { x = 0; }
}
exit {
  print(x);
}
`
	prog := parse(t, src)
	cmd := prog.Items[0].(*ast.Command)
	if len(cmd.Body) != 2 {
		t.Fatalf("command body = %d", len(cmd.Body))
	}
	if a := cmd.Body[1].(*ast.Action); a.Trigger != ast.Exit || a.Target != "L" {
		t.Errorf("loop exit action = %#v", a)
	}
	if _, ok := prog.Items[1].(*ast.ExitBlock); !ok {
		t.Errorf("top-level exit = %#v", prog.Items[1])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"garbage", "@@", "unexpected character"},
		{"top junk", "xyzzy;", "expected declaration"},
		{"missing var", "inst { }", "expected identifier"},
		{"unterminated command", "inst I {", "unterminated"},
		{"bad istype", "inst I { before I { x = y IsType frob; } }", "expected mem, reg or const"},
		{"bad assignment", "inst I { before I { 3 = x; } }", "invalid assignment target"},
		{"call non-callable", "inst I { before I { 3(); } }", "cannot call"},
		{"missing semicolon", "int x = 1", "expected ;"},
		{"bad array len", "int x[0];", "invalid array length"},
		{"bad dict", "dict<int> d;", "expected ,"},
		{"unterminated args", "inst I { before I { print(1; } }", "expected , or )"},
		{"unterminated string", `int x = 1; inst I { before I { print("abc); } }`, "unterminated string"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: parse succeeded, want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.wantSub)
		}
	}
}

func TestWalkAndCount(t *testing.T) {
	prog := parse(t, progs.MustSource(progs.UseAfterFree))
	var cmds int
	for _, item := range prog.Items {
		if _, ok := item.(*ast.Command); ok {
			cmds++
		}
	}
	if cmds != 3 {
		t.Errorf("commands = %d, want 3", cmds)
	}
	// Statement counting over the malloc command's after action.
	cmd := prog.Items[3].(*ast.Command) // first command after 3 decls
	var after *ast.Action
	for _, it := range cmd.Body {
		if a, ok := it.(*ast.Action); ok && a.Trigger == ast.After {
			after = a
		}
	}
	if after == nil {
		t.Fatal("no after action")
	}
	// addr base_addr = ...; for(init; cond; post) { assign } ; freed[...] = 0
	// counts: decl, for, for-init, for-post, assign-in-body, assign = 6
	if got := ast.CountStmts(after.Body); got != 6 {
		t.Errorf("CountStmts = %d, want 6", got)
	}
}

func TestProgsLineCounts(t *testing.T) {
	// Sanity-check the Table I metric: the case studies should be within
	// the same order of magnitude as the paper's Cinnamon column
	// (10, 40, 39, 20, 17 lines).
	wants := map[string]struct{ lo, hi int }{
		progs.InstCountBasic: {8, 12},
		progs.InstCountBB:    {12, 18},
		progs.LoopCoverage:   {30, 45},
		progs.UseAfterFree:   {30, 45},
		progs.ShadowStack:    {15, 25},
		progs.ForwardCFI:     {15, 25},
	}
	for name, want := range wants {
		n := progs.CountLines(progs.MustSource(name))
		if n < want.lo || n > want.hi {
			t.Errorf("%s: %d lines, want %d..%d", name, n, want.lo, want.hi)
		}
	}
}
