package vm

import (
	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/obj"
)

// When identifies the trigger point at which a probe fires.
type When uint8

// Trigger points.
const (
	BeforeInst When = iota
	AfterInst
	AtBlockEntry
	AtEdge
	AtStart
	AtEnd
)

// Ctx is the machine context handed to probes. It exposes the dynamic
// state that instrumentation callbacks may inspect: registers, memory,
// effective addresses, call arguments and return values, and resolved
// control-transfer targets. It corresponds to the dynamic context of a
// control-flow element in Cinnamon terms.
//
// A Ctx is only valid for the duration of the probe invocation.
type Ctx struct {
	vm    *VM
	inst  *isa.Inst
	block *cfg.Block
	when  When
}

// VM returns the machine (frameworks use it to install further probes
// during just-in-time translation).
func (c *Ctx) VM() *VM { return c.vm }

// Inst returns the instruction the probe is attached to (nil for start/end
// hooks).
func (c *Ctx) Inst() *isa.Inst { return c.inst }

// Block returns the basic block currently executing (nil in start/end
// hooks before any block runs).
func (c *Ctx) Block() *cfg.Block { return c.block }

// When returns the trigger point of this invocation.
func (c *Ctx) When() When { return c.when }

// Reg returns the current value of a register.
func (c *Ctx) Reg(r isa.Reg) uint64 { return c.vm.regs[r] }

// Mem64 reads a 64-bit word of application memory.
func (c *Ctx) Mem64(addr uint64) uint64 { return c.vm.mem.Read64(addr) }

// EffAddr computes the effective address of a memory operand under the
// current register state.
func (c *Ctx) EffAddr(op isa.Operand) uint64 {
	return c.vm.regs[op.Base] + uint64(op.Off)
}

// MemAddr returns the effective address of the instruction's first memory
// operand (the address a Load reads or a Store writes). ok is false if the
// instruction has no memory operand.
func (c *Ctx) MemAddr() (addr uint64, ok bool) {
	if c.inst == nil {
		return 0, false
	}
	op, ok := c.inst.MemOperand()
	if !ok {
		return 0, false
	}
	return c.EffAddr(op), true
}

// CallArg returns the i-th call argument (1-based), read from the argument
// registers.
func (c *Ctx) CallArg(i int) uint64 { return c.vm.regs[isa.ArgReg(i)] }

// RetVal returns the function return value register.
func (c *Ctx) RetVal() uint64 { return c.vm.regs[isa.RetReg] }

// Target resolves the control-transfer target of the current instruction:
// the immediate of a direct branch/call, the register value of an indirect
// one, or — for a return — the address on top of the stack. ok is false
// for non-control-flow instructions.
func (c *Ctx) Target() (uint64, bool) {
	in := c.inst
	if in == nil {
		return 0, false
	}
	switch in.Op {
	case isa.Branch, isa.Call:
		if tgt, ok := in.IsDirectTarget(); ok {
			return tgt, true
		}
		if in.IsIndirect() {
			return c.vm.regs[in.Ops[0].Reg], true
		}
	case isa.Return:
		return c.vm.mem.Read64(c.vm.regs[isa.SP]), true
	}
	return 0, false
}

// TargetName returns the symbolic name of the instruction's
// control-transfer target: a function name or a runtime intrinsic name
// ("malloc", "free", ...). It returns "" when the target is unnamed or the
// instruction transfers no control.
func (c *Ctx) TargetName() string {
	tgt, ok := c.Target()
	if !ok {
		return ""
	}
	return c.vm.Prog.Obj.NameAt(tgt)
}

// FallAddr returns the address of the instruction following the current
// one (a call's return address).
func (c *Ctx) FallAddr() uint64 {
	if c.inst == nil {
		return 0
	}
	return c.inst.Next()
}

// PrevBlock returns the start address of the previously executing block
// (used by edge-conditioned instrumentation).
func (c *Ctx) PrevBlock() uint64 { return c.vm.curBlock }

// Depth returns the current call depth.
func (c *Ctx) Depth() int { return c.vm.depth }

// Charge adds instrumentation cost in cycle units.
func (c *Ctx) Charge(units uint64) { c.vm.cycles += units }

// Func returns the function containing the current instruction, or nil.
func (c *Ctx) Func() *cfg.Func {
	if c.block != nil {
		return c.block.Func
	}
	if c.inst != nil {
		return c.vm.Prog.FuncContaining(c.inst.Addr)
	}
	return nil
}

// Module returns the module containing the current instruction, or nil.
func (c *Ctx) Module() *cfg.Module {
	if f := c.Func(); f != nil {
		return f.Module
	}
	return nil
}

// StackTop returns the current stack pointer.
func (c *Ctx) StackTop() uint64 { return c.vm.regs[isa.SP] }

// HeapRange returns the bounds of the runtime heap arena.
func (c *Ctx) HeapRange() (lo, hi uint64) { return obj.HeapBase, obj.HeapLimit }
