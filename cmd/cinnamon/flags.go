package main

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/fleet"
)

// The flag registry (see internal/cliflags): every flag is declared
// through the typed helpers, which record (group, name, argument,
// default, help) in declaration order. The grouped -help output and
// docs/CLI.md are both rendered from the table; the document also
// carries the cinnamond daemon's flag group (fleet.CLIFlags), so one
// gate covers both commands.

const (
	groupExecution     = "Execution"
	groupObservability = "Observability"
	groupMonitoring    = "Monitoring"
	groupGovernor      = "Governor"
)

// reg is the driver's flag registry. Flags live on a dedicated set (not
// flag.CommandLine) and are declared as package variables, so the
// registry is populated for tests without parsing anything.
var reg = cliflags.New("cinnamon", groupExecution, groupObservability, groupMonitoring, groupGovernor)

// cli is the driver's flag set.
var cli = reg.FS

// The flags, grouped. Declaration order is presentation order within
// each group (in -help and docs/CLI.md).
var (
	backendName = reg.String(groupExecution, "backend", "pin", "<name>", "backend: pin, dyninst, janus")
	target      = reg.String(groupExecution, "target", "", "<spec>", "victim:<name>, suite:<name>, or an assembly file path")
	emit        = reg.String(groupExecution, "emit", "", "<name>", "emit generated C/C++ for this backend instead of running")
	scale       = reg.Float64(groupExecution, "scale", 0.2, "<f>", "workload scale for suite targets")
	loop        = reg.Int(groupExecution, "loop", 0, "<n>", "loop a victim target this many times (long-running session; default 500000 with -listen)")
	list        = reg.Bool(groupExecution, "list-programs", false, "list built-in case-study programs and exit")
	pinLoops    = reg.Bool(groupExecution, "pin-loops", false, "enable the Pin loop-detection extension (paper section VI-E)")
	vmMode      = reg.String(groupExecution, "vm-mode", "", "<tier>", "VM execution tier: translated (default) or interpreted; both are bit-identical")
	vmInline    = reg.Bool(groupExecution, "vm-inline", true, "inline compiled actions into translated blocks (bit-identical; disable to measure or bisect)")
	irOpt       = reg.Bool(groupExecution, "ir-opt", true, "run the placement-IR optimization passes (hoisting, counter promotion, probe coalescing; bit-identical; disable to measure or bisect)")
	artCache    = reg.Bool(groupExecution, "artifact-cache", true, "reuse compiled tools and instrumentation-build templates across runs in this process (bit-identical; disable to measure or bisect)")

	stats     = reg.Bool(groupObservability, "stats", false, "print the observability report (per-probe firing and cycle attribution) to stderr")
	statsJSON = reg.Bool(groupObservability, "stats-json", false, "print the observability report as JSON to stdout")
	trace     = reg.Int(groupObservability, "trace", 0, "<n>", "record the last N probe firings in the report's trace ring (implies -stats)")

	listen   = reg.String(groupMonitoring, "listen", "", "<addr>", "serve live monitoring on this address (host:port; :0 picks a port): /metrics, /stats, /series, /trace (SSE), /governor, /healthz")
	interval = reg.Duration(groupMonitoring, "interval", time.Second, "<dur>", "monitor time-series sampling period (with -listen)")

	budget    = reg.String(groupGovernor, "budget", "", "<frac>", "attach the overhead governor with this probe-overhead budget (\"5%\" or \"0.05\"); it downsamples and ejects the most expensive probes to stay under it (implies -stats; see docs/ADAPTIVE.md)")
	govWindow = reg.Uint64(groupGovernor, "governor-window", 0, "<cycles>", "governor evaluation cadence in machine cycle units (default: the governor's built-in window; with -budget)")
)

// usage prints the grouped flag reference (the custom flag.Usage).
func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: cinnamon [flags] <tool.cin | @case-study>")
	reg.Usage(w)
}

// renderCLIMD renders docs/CLI.md from the flag registries of both
// commands — this driver's groups and the cinnamond daemon's (declared
// in internal/fleet so both binaries and this generator see one table).
// The committed document must match byte for byte (TestCLIDocCurrent).
func renderCLIMD() string {
	var b strings.Builder
	b.WriteString(`<!-- Generated from the flag tables in cmd/cinnamon/flags.go and
     internal/fleet/flags.go. Do not edit by hand: run
     go test ./cmd/cinnamon -update-cli-doc. -->

# cinnamon CLI reference

` + "```" + `
cinnamon [flags] <tool.cin | @case-study>
` + "```" + `

Compiles a Cinnamon program and runs it on a binary under one of the
three backends, or emits the framework-specific C/C++ sources
(` + "`-emit`" + `). Tool arguments starting with ` + "`@`" + ` name a built-in case
study (` + "`-list-programs`" + ` enumerates them).

Targets (` + "`-target`" + `): ` + "`victim:<name>`" + ` (built-in monitoring victims),
` + "`suite:<name>`" + ` (synthetic SPEC CPU 2017 benchmark), or a path to an
assembly file.
`)
	reg.Markdown(&b)
	b.WriteString(`
## Examples

` + "```sh" + `
cinnamon -backend=pin -target=victim:uaf_bug @useafterfree
cinnamon -backend=janus -target=suite:mcf -scale=0.5 tool.cin
cinnamon -emit=dyninst tool.cin
cinnamon -backend=janus -target=suite:mcf -stats -budget 5% @instcount_basic
cinnamon -backend=pin -target=victim:uaf_bug -listen :9090 @useafterfree
` + "```" + `

# cinnamond daemon reference

` + "```" + `
cinnamond [flags]
` + "```" + `

Long-lived fleet-monitoring daemon: schedules concurrent victim×tool
sessions over a bounded worker pool and serves the aggregated fleet
view — per-session-labelled ` + "`/metrics`" + `, merged ` + "`/series`" + `, lifecycle
` + "`/sessions`" + ` (GET lists, POST submits a job), a multiplexed SSE
` + "`/trace`" + `, and split ` + "`/healthz/live`" + ` + ` + "`/healthz/ready`" + ` probes.
SIGTERM drains gracefully: admission stops, running sessions finish or
are cancelled at the drain deadline, then the listener closes. See
[FLEET.md](FLEET.md).
`)
	dreg, _ := fleet.CLIFlags()
	dreg.Markdown(&b)
	b.WriteString(`
## Examples

` + "```sh" + `
cinnamond -listen 127.0.0.1:9137 -workers 8
cinnamond -manifest fleet.json -workers 32 -drain-timeout 10s
curl -s -X POST localhost:9137/sessions -d '{"tool":"instcount_basic","victim":"spin","backend":"janus","loop":200000}'
curl -s localhost:9137/metrics | grep cinnamon_fleet_fires_total
` + "```" + `

See [ADAPTIVE.md](ADAPTIVE.md) for sampling probes and the overhead
governor, [OBSERVABILITY.md](OBSERVABILITY.md) for the stats/monitoring
endpoints, [FLEET.md](FLEET.md) for the fleet daemon, and
[LANGUAGE.md](LANGUAGE.md) for the Cinnamon language.
`)
	return b.String()
}
