package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/obj"
)

const helloSrc = `
; A small program exercising most assembler features.
.module a.out
.executable
.entry main
.extern malloc
.extern print
.global main

.func main
  mov   r1, 64
  call  malloc
  mov   r5, r0
  mov   r2, 0
  mov   r3, 4
loop:
  store r2, [r5+8]
  add   r2, r2, 1
  blt   r2, r3, loop
  mov   r1, @table
  load  r4, [r1]
  call  helper
  b     done
done:
  halt

.func helper
  mov r1, r2
  call print
  ret

.data
table: .quad 7, 0x10, -3
funcs: .addr main, helper, loop
buf:   .space 32
.jumptable funcs, 3, main, recoverable
`

func TestAssembleHello(t *testing.T) {
	m, err := Assemble(helloSrc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "a.out" || !m.Executable {
		t.Errorf("header: name=%q exec=%v", m.Name, m.Executable)
	}
	if m.Entry != 0 {
		t.Errorf("entry = %#x, want 0", m.Entry)
	}
	main, ok := m.Sym("main")
	if !ok || main.Kind != obj.SymFunc || !main.Global || main.Off != 0 {
		t.Errorf("main symbol: %+v, ok=%v", main, ok)
	}
	helper, ok := m.Sym("helper")
	if !ok || helper.Global {
		t.Errorf("helper symbol: %+v (should not be global)", helper)
	}
	if main.Size == 0 || helper.Size == 0 {
		t.Error("function sizes not set")
	}
	if main.Off+main.Size != helper.Off {
		t.Errorf("main [0,%d) does not abut helper at %d", main.Size, helper.Off)
	}
	if len(m.Imports) != 2 || m.Imports[0] != "malloc" || m.Imports[1] != "print" {
		t.Errorf("imports = %v", m.Imports)
	}
	if len(m.JumpTables) != 1 || m.JumpTables[0].Count != 3 || !m.JumpTables[0].Recoverable {
		t.Errorf("jump tables = %+v", m.JumpTables)
	}
	// Data section: 3 quads + 3 addrs + 32 bytes.
	if len(m.Data) != 3*8+3*8+32 {
		t.Errorf("data size = %d", len(m.Data))
	}
	// Code decodes cleanly.
	insts, err := isa.DecodeAll(m.Code, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 16 {
		t.Errorf("decoded %d instructions, want 16", len(insts))
	}
}

func TestAssembleLoadRun(t *testing.T) {
	m := MustAssemble(helloSrc)
	externs := map[string]uint64{
		"malloc": obj.IntrinsicBase,
		"print":  obj.IntrinsicBase + 8,
	}
	p, err := obj.Load([]*obj.Module{m}, externs)
	if err != nil {
		t.Fatal(err)
	}
	l := p.Modules[0]
	insts, err := isa.DecodeAll(l.Image, l.Base)
	if err != nil {
		t.Fatal(err)
	}
	// call malloc is the second instruction.
	tgt, ok := insts[1].IsDirectTarget()
	if !ok || tgt != obj.IntrinsicBase {
		t.Errorf("call malloc target = %#x, want %#x", tgt, obj.IntrinsicBase)
	}
	// blt targets the loop label (the store instruction).
	var blt, store *isa.Inst
	for _, in := range insts {
		if in.Op == isa.Store && store == nil {
			store = in
		}
		if in.IsConditional() {
			blt = in
		}
	}
	if blt == nil || store == nil {
		t.Fatal("missing blt/store")
	}
	if tgt, ok := blt.IsDirectTarget(); !ok || tgt != store.Addr {
		t.Errorf("blt target = %#x, want loop at %#x", tgt, store.Addr)
	}
	// mov r1, @table resolves to the data symbol.
	tableAddr, ok := l.SymAddr("table")
	if !ok {
		t.Fatal("table symbol missing")
	}
	var movTable *isa.Inst
	for _, in := range insts {
		if in.Op == isa.Mov && len(in.Ops) == 2 && in.Ops[1].Kind == isa.KindImm && uint64(in.Ops[1].Imm) == tableAddr {
			movTable = in
		}
	}
	if movTable == nil {
		t.Errorf("no mov with @table address %#x", tableAddr)
	}
	// .addr entries: funcs[0]=main, funcs[1]=helper, funcs[2]=loop label.
	funcsAddr, _ := l.SymAddr("funcs")
	word := func(addr uint64) uint64 {
		off := addr - l.DataBase
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(l.DataImage[off+uint64(i)]) << (8 * i)
		}
		return v
	}
	mainAddr, _ := l.SymAddr("main")
	helperAddr, _ := l.SymAddr("helper")
	if word(funcsAddr) != mainAddr {
		t.Errorf("funcs[0] = %#x, want main %#x", word(funcsAddr), mainAddr)
	}
	if word(funcsAddr+8) != helperAddr {
		t.Errorf("funcs[1] = %#x, want helper %#x", word(funcsAddr+8), helperAddr)
	}
	if word(funcsAddr+16) != store.Addr {
		t.Errorf("funcs[2] = %#x, want loop label %#x", word(funcsAddr+16), store.Addr)
	}
}

func TestRoundTripThroughObjectFile(t *testing.T) {
	m := MustAssemble(helloSrc)
	b, err := obj.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := obj.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Name != m.Name || len(m2.Code) != len(m.Code) || len(m2.Relocs) != len(m.Relocs) {
		t.Error("object round trip lost information")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", ".func f\n frob r1\n", "unknown mnemonic"},
		{"unknown directive", ".bogus x\n", "unknown directive"},
		{"inst outside func", "mov r1, 2\n", "outside function"},
		{"label outside func", "x:\n mov r1, 2\n", "outside function"},
		{"dup label", ".func f\na:\na:\n ret\n", "duplicate label"},
		{"dup func", ".func f\n ret\n.func f\n ret\n", "duplicate symbol"},
		{"undefined target", ".func f\n b nowhere\n", "undefined symbol"},
		{"bad register", ".func f\n beq rq, r1, f\n", "bad register"},
		{"bad operand count", ".func f\n mov r1\n", "invalid mov"},
		{"bad mem operand", ".func f\n load r1, [zz+8]\n", "bad base register"},
		{"bad entry", ".entry nope\n.func f\n ret\n", "no such function"},
		{"bad global", ".global nope\n.func f\n ret\n", "no such symbol"},
		{"data instruction", ".data\n mov r1, 2\n", "data section"},
		{"quad outside data", ".func f\n ret\n.quad 1\n", "outside data"},
		{"bad quad", ".data\n.quad zork\n", "bad .quad"},
		{"bad space", ".data\n.space -4\n", "bad .space"},
		{"bad jumptable args", ".jumptable a, b\n", "wants table"},
		{"jumptable bad table", ".func f\n ret\n.jumptable f, 1, f, recoverable\n", "not a data label"},
		{"jumptable bad branch", ".data\nt: .quad 0\n.jumptable t, 1, t, recoverable\n", "not a code label"},
		{"jumptable bad flag", ".func f\n ret\n.data\nt: .quad 0\n.jumptable t, 1, f, maybe\n", "recoverable|unrecoverable"},
		{"bad call target", ".func f\n call 1+2\n", "bad call target"},
		{"bad branch target", ".func f\n b 1+2\n", "bad branch target"},
		{"module no name", ".module\n", ".module requires"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("%s: Assemble succeeded, want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.wantSub)
		}
	}
}

func TestSymRefWithAddend(t *testing.T) {
	src := `
.func f
  mov r1, @tab+16
  ret
.data
tab: .space 32
`
	m := MustAssemble(src)
	found := false
	for _, r := range m.Relocs {
		if r.Sym == "tab" && r.Addend == 16 {
			found = true
		}
	}
	if !found {
		t.Errorf("no reloc tab+16 in %+v", m.Relocs)
	}
}

func TestLocalLabelRelocUsesFunctionAddend(t *testing.T) {
	src := `
.func f
  nop
top:
  b top
`
	m := MustAssemble(src)
	if len(m.Relocs) != 1 {
		t.Fatalf("relocs = %+v", m.Relocs)
	}
	r := m.Relocs[0]
	if r.Sym != "f" || r.Addend != 2 { // nop encodes to 2 bytes
		t.Errorf("reloc = %+v, want sym f addend 2", r)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("junk\n")
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "; leading comment\n\n.func f # trailing\n  ret ; done\n"
	m := MustAssemble(src)
	if _, ok := m.Sym("f"); !ok {
		t.Error("function f missing")
	}
}
