package native

import (
	"fmt"
	"io"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/janus"
	"repro/internal/vm"
)

// Instruction counting written directly against the Janus API: the static
// pass annotates every load in the executable with a rewrite rule; the
// dynamic handler increments a counter. The handler is a single add, so
// the dynamic translator inlines its clean call.
func init() { register("janus", "instcount", janusInstCount) }

func janusInstCount(prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error) {
	const hCount janus.HandlerID = 1
	var instCount uint64
	tool := &janus.Tool{
		Name: "instcount",
		StaticPass: func(sa *janus.StaticAnalyzer) {
			for _, f := range sa.Executable().Funcs {
				for _, b := range f.Blocks {
					for _, in := range b.Insts {
						if in.Op == isa.Load {
							sa.EmitRule(janus.Rule{
								BlockAddr: b.Start,
								InstAddr:  in.Addr,
								Trigger:   janus.TriggerBefore,
								Handler:   hCount,
							})
						}
					}
				}
			}
			sa.EmitRule(janus.Rule{Trigger: janus.TriggerFini, Handler: hCount + 1})
		},
		Handlers: map[janus.HandlerID]janus.Handler{
			hCount: {
				Fn:        func(*vm.Ctx, []uint64) { instCount++ },
				Cost:      1 * stmtCost,
				Inlinable: true,
			},
			hCount + 1: {
				Fn: func(*vm.Ctx, []uint64) { fmt.Fprintf(out, "%d\n", instCount) },
			},
		},
	}
	return janus.Run(prog, tool, janus.Config{Fuel: fuel})
}
