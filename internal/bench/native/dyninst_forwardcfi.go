package native

import (
	"fmt"
	"io"

	"repro/internal/cfg"
	"repro/internal/dyninst"
	"repro/internal/isa"
	"repro/internal/vm"
)

// Forward-edge CFI written directly against the Dyninst API: collect
// every function entry from the image, then insert a target check before
// every call site.
func init() { register("dyninst", "forwardcfi", dyninstForwardCFI) }

func dyninstForwardCFI(prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error) {
	be, err := dyninst.OpenBinary(prog, dyninst.Config{Fuel: fuel})
	if err != nil {
		return nil, err
	}
	image := be.Image()
	valid := make(map[uint64]bool)
	for _, fn := range image.Functions() {
		valid[fn.Address()] = true
	}
	check := dyninst.FuncCallExpr{
		Fn: func(args []uint64) {
			if !valid[args[0]] {
				fmt.Fprintln(out, "ERROR")
			}
		},
		Args: []dyninst.Snippet{dyninst.BranchTargetExpr{}},
		Cost: 2 * stmtCost,
	}
	for _, fn := range image.Functions() {
		for _, bb := range fn.Blocks() {
			points := bb.InstPoints()
			for n, in := range bb.Instructions() {
				if in.Op != isa.Call {
					continue
				}
				if err := be.InsertSnippet(check, points[n], dyninst.CallBefore); err != nil {
					return nil, err
				}
			}
		}
	}
	return be.Run()
}
