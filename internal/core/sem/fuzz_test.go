package sem_test

import (
	"testing"

	"repro/internal/core/parser"
	"repro/internal/core/sem"
	"repro/internal/progs"
)

// FuzzSem drives the whole front end: any input that parses must then
// either check cleanly or fail with a positioned *sem.Error — semantic
// analysis may reject, never panic. Seeded with the case studies and
// with inputs aimed at the trickier rules (nesting, attribute scoping,
// dynamic attributes outside actions, container typing).
func FuzzSem(f *testing.F) {
	for _, name := range progs.Names() {
		f.Add(progs.MustSource(name))
	}
	for _, s := range []string{
		"inst I { func F { } }",                    // upward nesting
		"uint64 n = 0; init { n = I.addr; }",       // CFE attr outside command
		"inst I { n = I.memaddr; }",                // dynamic attr in analysis code
		"inst I { after I { x = I.rtnval; } }",     // rtnval is after-only
		"loop L { iter L { } } basicblock B { iter B { } }", // iter off loops
		"dict<int,int> d; exit { d = 1; }",         // container assignment
		"int a[4]; exit { a[9] = 1; }",             // array indexing
		"file f(\"x\"); exit { print(f.getline()); }",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Parse(src)
		if err != nil {
			return
		}
		info, err := sem.Check(prog)
		if err == nil && info == nil {
			t.Fatal("nil info and nil error")
		}
	})
}
