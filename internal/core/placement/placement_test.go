// Differential and golden tests for the placement rule IR.
//
// The optimization passes (where-clause hoisting, counter promotion,
// redundant-probe coalescing) claim to be bit-identical in every
// observable. TestIROptEquivalence holds them to it: every case-study
// tool crossed with generated victims, all three backends and both VM
// tiers, -ir-opt on vs off, comparing output, cycles, instruction
// counts, exit codes and the per-row attribution table. TestRuleIRGolden
// pins the optimized and unoptimized tables for the case-study tools as
// checked-in goldens, FuzzRuleIR fuzzes pass idempotence and placement
// preservation over generated tools, and TestIROptDispatchSpeedup is
// the perf gate that proves the passes actually buy wall-clock time.
package placement_test

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/conformance"
	"repro/internal/core/backend"
	"repro/internal/core/engine"
	"repro/internal/core/placement"
	"repro/internal/obs"
	"repro/internal/progs"
	"repro/internal/vm"
)

var update = flag.Bool("update", false, "rewrite golden rule-IR dumps")

// tablePlacer accepts every trigger point and sees every module — the
// most permissive placer, used where only the rule table matters.
type tablePlacer struct {
	prog *cfg.Program
}

func (p *tablePlacer) Name() string                      { return "table" }
func (p *tablePlacer) Modules() []*cfg.Module            { return p.prog.Modules }
func (p *tablePlacer) SupportsLoops() bool               { return true }
func (p *tablePlacer) Lower(rs *placement.RuleSet) error { return nil }

func compileTool(tb testing.TB, src string) *engine.CompiledTool {
	tb.Helper()
	tool, err := engine.Compile(src)
	if err != nil {
		tb.Fatal(err)
	}
	return tool
}

func loadVictim(tb testing.TB, srcs []string) *cfg.Program {
	tb.Helper()
	prog, err := conformance.LoadVictim(srcs)
	if err != nil {
		tb.Fatal(err)
	}
	return prog
}

// --- Satellite: differential placement equivalence -------------------

// rowKey aggregates attribution rows order-independently: coalescing
// legitimately reorders probe registration (a merged probe registers
// at its first constituent's table position), but every (label,
// trigger, addr) row must carry identical counters either way.
type rowKey struct {
	label, trigger string
	addr           uint64
}

type rowVal struct {
	fires, skips, cycles uint64
}

type outcome struct {
	err                 string
	out                 string
	cycles, insts, exit uint64
	total               rowVal
	build               obs.BuildStats
	rows                map[rowKey]rowVal
}

// runOnce executes one (tool, victim, backend, tier, ir-opt) cell with
// a fresh collector and reduces it to comparable facts.
func runOnce(tool *engine.CompiledTool, prog *cfg.Program, backendName string, mode vm.ExecMode, loopDetect, noIROpt bool) outcome {
	col := obs.New(obs.Options{})
	var buf strings.Builder
	res, err := backend.Run(tool, prog, backendName, backend.Options{
		Out:              &buf,
		PinLoopDetection: loopDetect,
		Obs:              col,
		VMMode:           mode,
		NoIROpt:          noIROpt,
	})
	if err != nil {
		return outcome{err: err.Error()}
	}
	st := col.Snapshot(backendName)
	o := outcome{
		out:    buf.String(),
		cycles: res.Cycles,
		insts:  res.Insts,
		exit:   res.ExitCode,
		total:  rowVal{st.TotalFires, st.TotalSkips, st.ProbeCycles},
		build:  st.Build,
		rows:   make(map[rowKey]rowVal),
	}
	// The pass-effect counters are the one legitimate difference
	// between the two settings; everything else must match.
	o.build.WheresHoisted = 0
	o.build.CountersPromoted = 0
	o.build.ProbesCoalesced = 0
	for _, p := range st.Probes {
		k := rowKey{p.Label, p.Trigger, p.Addr}
		v := o.rows[k]
		v.fires += p.Fires
		v.skips += p.Skips
		v.cycles += p.Cycles
		o.rows[k] = v
	}
	return o
}

func diffOutcomes(a, b outcome) string {
	if a.err != "" || b.err != "" {
		if a.err != b.err {
			return fmt.Sprintf("error mismatch: ir-opt=%q no-ir-opt=%q", a.err, b.err)
		}
		return "" // both refused identically: a legal, equivalent outcome
	}
	if a.out != b.out {
		return fmt.Sprintf("tool output:\n  ir-opt:    %q\n  no-ir-opt: %q", a.out, b.out)
	}
	if a.cycles != b.cycles || a.insts != b.insts || a.exit != b.exit {
		return fmt.Sprintf("machine result: ir-opt (cycles=%d insts=%d exit=%d) vs no-ir-opt (cycles=%d insts=%d exit=%d)",
			a.cycles, a.insts, a.exit, b.cycles, b.insts, b.exit)
	}
	if a.total != b.total {
		return fmt.Sprintf("attribution totals: ir-opt %+v vs no-ir-opt %+v", a.total, b.total)
	}
	if a.build != b.build {
		return fmt.Sprintf("build stats: ir-opt %+v vs no-ir-opt %+v", a.build, b.build)
	}
	keys := make(map[rowKey]bool)
	for k := range a.rows {
		keys[k] = true
	}
	for k := range b.rows {
		keys[k] = true
	}
	for k := range keys {
		av, aok := a.rows[k]
		bv, bok := b.rows[k]
		switch {
		case !aok:
			return fmt.Sprintf("row %v only present with ir-opt off (%+v)", k, bv)
		case !bok:
			return fmt.Sprintf("row %v only present with ir-opt on (%+v)", k, av)
		case av != bv:
			return fmt.Sprintf("row %v: ir-opt %+v vs no-ir-opt %+v", k, av, bv)
		}
	}
	return ""
}

// TestIROptEquivalence is the differential gate for the IR passes:
// same tool, same victim, same backend, same tier — the optimized and
// unoptimized tables must produce the same run, row for row.
func TestIROptEquivalence(t *testing.T) {
	seeds := []uint64{11, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	type cell struct {
		name       string
		backend    string
		loopDetect bool
	}
	cells := []cell{
		{"janus", backend.Janus, false},
		{"dyninst", backend.Dyninst, false},
		{"pin", backend.Pin, false},
		{"pin+loops", backend.Pin, true},
	}
	modes := []struct {
		name string
		mode vm.ExecMode
	}{
		{"translated", vm.ExecTranslated},
		{"interpreted", vm.ExecInterpreted},
	}
	for _, name := range progs.Names() {
		tool := compileTool(t, progs.MustSource(name))
		for _, seed := range seeds {
			prog := loadVictim(t, conformance.GenVictim(seed).Srcs)
			for _, c := range cells {
				for _, m := range modes {
					t.Run(fmt.Sprintf("%s/v%d/%s/%s", name, seed, c.name, m.name), func(t *testing.T) {
						opt := runOnce(tool, prog, c.backend, m.mode, c.loopDetect, false)
						raw := runOnce(tool, prog, c.backend, m.mode, c.loopDetect, true)
						if d := diffOutcomes(opt, raw); d != "" {
							t.Error(d)
						}
					})
				}
			}
		}
	}
}

// --- Satellite: golden rule-IR dumps ---------------------------------

// goldenVictim exercises every placement surface the case-study tools
// instrument: loads and stores in a counted loop, malloc/free traffic,
// direct and indirect calls, and returns. Fixed source means fixed
// addresses, so the dumps are stable.
const goldenVictim = `
.module golden
.executable
.entry main
.extern malloc
.extern free
.func main
  add r8, r8, 3
  mov r8, 0
loop0:
  mov r9, @scratch
  mul r10, r8, 8
  add r9, r9, r10
  load r11, [r9]
  add r11, r11, r8
  store r11, [r9]
  add r8, r8, 1
  mov r12, 3
  blt r8, r12, loop0
  mov r1, 64
  call malloc
  mov r8, r0
  mov r9, 7
  store r9, [r8]
  load r10, [r8]
  mov r1, r8
  call free
  call f0
  mov r8, @fptrs
  load r9, [r8]
  call r9
  halt
.func f0
  sub sp, sp, 56
  store r8, [sp+0]
  add r8, r8, 3
  load r8, [sp+0]
  add sp, sp, 56
  ret
.func f1
  add r10, r10, 1
  ret
.data
scratch: .space 128
fptrs: .addr f1
`

func buildRules(tb testing.TB, tool *engine.CompiledTool, prog *cfg.Program, noIROpt bool) *placement.RuleSet {
	tb.Helper()
	rs, _, err := engine.BuildRules(tool, prog, &tablePlacer{prog: prog}, engine.Options{
		Out:     io.Discard,
		NoIROpt: noIROpt,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return rs
}

// TestRuleIRGolden pins the canonical RuleSet printout for every
// case-study tool against the fixed golden victim, in both pass
// settings, so placement changes are visible in review. Regenerate
// with `go test ./internal/core/placement -run TestRuleIRGolden -update`.
func TestRuleIRGolden(t *testing.T) {
	prog := loadVictim(t, []string{goldenVictim})
	cases := make(map[string]string)
	for _, name := range progs.Names() {
		cases[name] = progs.MustSource(name)
	}
	// The case-study tools are single-command, so their tables never
	// merge; the redundant-counter tool pins what a coalesced probe
	// looks like in the dump.
	cases["redundant_counters"] = redundantTool
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			tool := compileTool(t, cases[name])
			var b strings.Builder
			b.WriteString("== ir-opt=on ==\n")
			b.WriteString(buildRules(t, tool, prog, false).String())
			b.WriteString("== ir-opt=off ==\n")
			b.WriteString(buildRules(t, tool, prog, true).String())
			got := b.String()

			path := filepath.Join("testdata", "golden", name+".ir")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("rule IR drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

// --- Satellite: module-qualified rule lookup -------------------------

// TestRulesAtModuleKeying is the regression test for the shared-library
// collision: two blocks at the same address in different modules must
// never answer each other's lookups. (The old janus-private rule table
// was keyed by bare block address and did exactly that.)
func TestRulesAtModuleKeying(t *testing.T) {
	mkBlock := func(m *cfg.Module, addr uint64) *cfg.Block {
		f := &cfg.Func{Module: m, Entry: addr}
		b := &cfg.Block{Start: addr, End: addr + 8, Func: f}
		f.Blocks = []*cfg.Block{b}
		return b
	}
	exe := &cfg.Module{ID: 0}
	lib := &cfg.Module{ID: 1}
	const addr = 0x40
	eb, lb := mkBlock(exe, addr), mkBlock(lib, addr)

	rs := &placement.RuleSet{}
	re := &placement.Rule{Trigger: placement.BlockEntry, Block: eb, Action: &placement.Action{Label: "exe rule"}}
	rl := &placement.Rule{Trigger: placement.BlockEntry, Block: lb, Action: &placement.Action{Label: "lib rule"}}
	rs.Add(re)
	rs.Add(rl)

	if got := rs.RulesAt(exe, addr); len(got) != 1 || got[0] != re {
		t.Errorf("RulesAt(exe, %#x) = %v rules, want exactly the exe rule", addr, len(got))
	}
	if got := rs.RulesAt(lib, addr); len(got) != 1 || got[0] != rl {
		t.Errorf("RulesAt(lib, %#x) = %v rules, want exactly the lib rule", addr, len(got))
	}
	if got := rs.ByBlock(eb); len(got) != 1 || got[0] != re {
		t.Errorf("ByBlock(exe block) = %v rules, want exactly the exe rule", len(got))
	}
	if got := rs.ByBlock(lb); len(got) != 1 || got[0] != rl {
		t.Errorf("ByBlock(lib block) = %v rules, want exactly the lib rule", len(got))
	}
}

// TestRulesAtSharedLibVictim checks the same property end-to-end on a
// generated victim that loads a shared library: every placed rule is
// found under its own module and leaks into no other.
func TestRulesAtSharedLibVictim(t *testing.T) {
	var v *conformance.Victim
	for seed := uint64(0); seed < 200; seed++ {
		if c := conformance.GenVictim(seed); len(c.Srcs) > 1 {
			v = c
			break
		}
	}
	if v == nil {
		t.Fatal("no shared-library victim in the first 200 seeds")
	}
	prog := loadVictim(t, v.Srcs)
	tool := compileTool(t, progs.MustSource(progs.InstCountBasic))
	rs := buildRules(t, tool, prog, false)

	perModule := make(map[*cfg.Module]int)
	for _, r := range rs.Rules() {
		mod := r.Block.Func.Module
		perModule[mod]++
		found := false
		for _, got := range rs.RulesAt(mod, r.Block.Start) {
			if got == r {
				found = true
			}
			if got.Block.Func.Module != mod {
				t.Fatalf("RulesAt(%s, %#x) returned a rule from module %s",
					mod.Name(), r.Block.Start, got.Block.Func.Module.Name())
			}
		}
		if !found {
			t.Fatalf("rule at %#x in %s not found by RulesAt", r.Block.Start, mod.Name())
		}
	}
	if len(prog.Modules) < 2 {
		t.Fatal("victim lost its library module")
	}
	if perModule[prog.Modules[1]] == 0 {
		t.Error("no rules placed in the library module; the cross-module case is untested")
	}
}

// --- Satellite: fuzzing the pass pipeline ----------------------------

// placementKeys flattens the table to a multiset of concrete
// placements. Coalescing moves rules into Merged lists and promotion
// changes mechanisms, but the multiset of (trigger, site, instruction,
// label) placements must survive the passes untouched.
func placementKeys(rs *placement.RuleSet) map[string]int {
	keys := make(map[string]int)
	var add func(r *placement.Rule)
	add = func(r *placement.Rule) {
		if len(r.Merged) > 0 {
			for _, c := range r.Merged {
				add(c)
			}
			return
		}
		label := ""
		if r.Action != nil {
			label = r.Action.Label
		}
		from := uint64(0)
		if r.From != nil {
			from = r.From.Start
		}
		keys[fmt.Sprintf("%s|%#x|%#x|%#x|%s", r.Trigger, r.SiteAddr(), r.InstAddr(), from, label)]++
	}
	for _, r := range rs.Rules() {
		add(r)
	}
	return keys
}

// FuzzRuleIR drives generated tools and victims through the rule-IR
// build and asserts the pass pipeline's two structural contracts:
// Apply is idempotent (a second run is a fixpoint), and the passes
// preserve the placement multiset — coalescing must never drop a
// distinct (trigger, site, action) placement.
func FuzzRuleIR(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		p := conformance.GenProgram(seed)
		tool, err := engine.Compile(p.Source)
		if err != nil {
			t.Fatalf("seed %d: generated tool does not compile: %v\n%s", seed, err, p.Source)
		}
		prog, err := conformance.LoadVictim(conformance.GenVictim(seed).Srcs)
		if err != nil {
			t.Fatalf("seed %d: generated victim does not load: %v", seed, err)
		}
		opt := buildRules(t, tool, prog, false)
		raw := buildRules(t, tool, prog, true)

		before := opt.String()
		if err := placement.Apply(opt, placement.Config{Optimize: true}); err != nil {
			t.Fatalf("seed %d: second Apply: %v", seed, err)
		}
		if after := opt.String(); after != before {
			t.Fatalf("seed %d: Apply is not idempotent:\n--- first ---\n%s--- second ---\n%s", seed, before, after)
		}

		if o, r := opt.NumPlacements(), raw.NumPlacements(); o != r {
			t.Fatalf("seed %d: optimized table has %d placements, unoptimized %d", seed, o, r)
		}
		if o, r := placementKeys(opt), placementKeys(raw); !reflect.DeepEqual(o, r) {
			t.Fatalf("seed %d: placement multiset changed under the passes:\noptimized:   %v\nunoptimized: %v", seed, o, r)
		}
	})
}

// --- Satellite: perf gate and bench-rot coverage ---------------------

// redundantTool is the coalescing perf workload: four separate counter
// commands all firing before every add instruction — four probes per
// site that the passes fuse into one dispatch.
const redundantTool = `
uint64 a = 0;
uint64 b = 0;
uint64 c = 0;
uint64 d = 0;
inst I where (I.opcode == Add) {
  before I {
    a = a + 1;
  }
}
inst I where (I.opcode == Add) {
  before I {
    b = b + 1;
  }
}
inst I where (I.opcode == Add) {
  before I {
    c = c + 1;
  }
}
inst I where (I.opcode == Add) {
  before I {
    d = d + 1;
  }
}
exit {
  print(a + b + c + d);
}
`

// hotVictim is an add-dense nested loop (~600k application
// instructions) so probe dispatch dominates the run.
const hotVictim = `
.module hot
.executable
.entry main
.func main
  mov r1, 0
  mov r2, 400
outer:
  mov r3, 0
  mov r4, 250
inner:
  add r5, r5, 1
  add r6, r6, 2
  add r7, r7, 3
  add r3, r3, 1
  blt r3, r4, inner
  add r1, r1, 1
  blt r1, r2, outer
  halt
`

func benchRedundantRun(tb testing.TB, noIROpt bool) func(b *testing.B) {
	tool := compileTool(tb, redundantTool)
	prog := loadVictim(tb, []string{hotVictim})
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := backend.Run(tool, prog, backend.Janus, backend.Options{
				Out:     io.Discard,
				NoIROpt: noIROpt,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TestIROptDispatchSpeedup is the perf regression gate for the IR
// passes: on the redundant-probe workload the optimized table
// (coalesced dispatch, hoisted wheres, promoted counters) must beat
// the unoptimized one by at least 1.1x wall-clock. Like the other
// perf gates it only runs when CINNAMON_PERF_GATE is set.
func TestIROptDispatchSpeedup(t *testing.T) {
	if os.Getenv("CINNAMON_PERF_GATE") == "" {
		t.Skip("set CINNAMON_PERF_GATE=1 to run the placement-IR perf gate")
	}
	measure := func(f func(*testing.B)) float64 {
		best := 0.0
		for i := 0; i < 5; i++ {
			r := testing.Benchmark(f)
			nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
			if best == 0 || nsPerOp < best {
				best = nsPerOp
			}
		}
		return best
	}
	on := measure(benchRedundantRun(t, false))
	off := measure(benchRedundantRun(t, true))
	speedup := off / on
	t.Logf("ir-opt on: %.0f ns/op, off: %.0f ns/op, speedup %.2fx", on, off, speedup)
	if speedup < 1.1 {
		t.Errorf("ir-opt speedup %.2fx below the 1.1x bar", speedup)
	}
}

// BenchmarkIROptRun measures the whole instrumented run in both pass
// settings — the number TestIROptDispatchSpeedup gates on.
func BenchmarkIROptRun(b *testing.B) {
	b.Run("opt", benchRedundantRun(b, false))
	b.Run("noopt", benchRedundantRun(b, true))
}

// BenchmarkApplyPasses isolates the pass pipeline itself: table build
// is excluded from the timed section, so this tracks the cost of
// hoisting, promotion and coalescing over a realistic rule table.
func BenchmarkApplyPasses(b *testing.B) {
	tool := compileTool(b, redundantTool)
	prog := loadVictim(b, []string{hotVictim})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rs := buildRules(b, tool, prog, true)
		b.StartTimer()
		if err := placement.Apply(rs, placement.Config{Optimize: true}); err != nil {
			b.Fatal(err)
		}
	}
}
