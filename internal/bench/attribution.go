package bench

import (
	"fmt"
	"io"

	"repro/internal/core/backend"
	"repro/internal/obs"
	"repro/internal/progs"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Overhead attribution: the observability layer's answer to "where does
// the instrumentation overhead of Figure 13 actually go?". For each
// framework the total cycle overhead over the uninstrumented baseline is
// decomposed into probe dispatch (attributed per probe by internal/obs)
// and just-in-time translation, with the residual as a consistency
// check: the cost model charges every instrumentation cycle through one
// of those two channels, so Residual is zero on all backends.

// AttributionRow decomposes one (framework, benchmark) cell's overhead.
// The JSON form is what `experiments -json` writes to
// BENCH_attribution.json for downstream tooling.
type AttributionRow struct {
	Backend   string `json:"backend"`
	Benchmark string `json:"benchmark"`
	// TotalCycles and AppCycles are the instrumented and uninstrumented
	// run costs.
	TotalCycles uint64 `json:"total_cycles"`
	AppCycles   uint64 `json:"app_cycles"`
	// ProbeCycles is the cost attributed to probe firings (dispatch +
	// argument materialization + action bodies), TranslationCycles the
	// JIT translation cost (0 for the static rewriter).
	ProbeCycles       uint64 `json:"probe_cycles"`
	TranslationCycles uint64 `json:"translation_cycles"`
	// Residual is overhead not attributed to either channel; non-zero
	// residual means the cost model leaks cycles past the collector.
	Residual int64 `json:"residual"`
	// OverheadPct is the total overhead relative to the baseline.
	OverheadPct float64 `json:"overhead_pct"`
}

// Attribution runs the basic-block counting tool (Figure 5b) on every
// framework over the named benchmark with observability enabled and
// decomposes each framework's overhead. Frameworks that cannot process
// the binary are skipped.
func Attribution(benchmark string, scale float64) ([]AttributionRow, error) {
	tool, err := compileTool(progs.InstCountBB)
	if err != nil {
		return nil, err
	}
	spec, ok := workload.ByName(benchmark)
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchmark)
	}
	return parMap(Frameworks, func(fw string) (AttributionRow, error) {
		prog, err := BuildBenchmark(spec, scale)
		if err != nil {
			return AttributionRow{}, err
		}
		base, err := vm.New(prog, vm.Config{}).Run()
		if err != nil {
			return AttributionRow{}, err
		}
		col := obs.New(obs.Options{})
		res, err := backend.Run(tool, prog, fw, backend.Options{Out: io.Discard, Obs: col})
		if err != nil {
			// Framework rejected the binary (Dyninst CFG recovery):
			// report the row with zero cycles so callers can skip it.
			return AttributionRow{Backend: fw, Benchmark: benchmark}, nil
		}
		s := col.Snapshot(fw)
		overhead := res.Cycles - base.Cycles
		return AttributionRow{
			Backend:           fw,
			Benchmark:         benchmark,
			TotalCycles:       res.Cycles,
			AppCycles:         base.Cycles,
			ProbeCycles:       s.ProbeCycles,
			TranslationCycles: s.Build.TranslationCycles,
			Residual:          int64(overhead) - int64(s.ProbeCycles) - int64(s.Build.TranslationCycles),
			OverheadPct:       overheadPct(res.Cycles, base.Cycles),
		}, nil
	})
}

// FormatAttribution renders the decomposition table.
func FormatAttribution(w io.Writer, rows []AttributionRow) {
	fmt.Fprintf(w, "%-10s %-12s %14s %14s %14s %14s %10s %10s\n",
		"Backend", "Benchmark", "total", "app", "probes", "translation", "residual", "overhead")
	for _, r := range rows {
		if r.TotalCycles == 0 {
			fmt.Fprintf(w, "%-10s %-12s %14s\n", r.Backend, r.Benchmark, "FAIL")
			continue
		}
		fmt.Fprintf(w, "%-10s %-12s %14d %14d %14d %14d %10d %9.2f%%\n",
			r.Backend, r.Benchmark, r.TotalCycles, r.AppCycles,
			r.ProbeCycles, r.TranslationCycles, r.Residual, r.OverheadPct)
	}
}
