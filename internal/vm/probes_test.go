package vm

import (
	"testing"

	"repro/internal/isa"
)

// Tests for the subtler probe semantics: after-call probes across nested
// calls, edge probes around call/return boundaries, and probe ordering.

func TestNestedAfterCallProbes(t *testing.T) {
	// outer calls mid, mid calls inner; after-probes on both calls must
	// fire in inner-then-outer order, each seeing its own callee's
	// return value.
	src := `
.module a.out
.executable
.entry main
.func main
  call mid
  halt
.func mid
  call inner
  add r0, r0, 1     ; r0 = 11 after inner returns
  ret
.func inner
  mov r0, 10
  ret
`
	prog := build(t, src)
	var callMid, callInner *isa.Inst
	for _, f := range prog.Modules[0].Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				if in.Op == isa.Call {
					if f.Name == "main" {
						callMid = in
					} else {
						callInner = in
					}
				}
			}
		}
	}
	v := New(prog, Config{})
	var order []string
	if err := v.AddAfter(callMid.Addr, 0, func(c *Ctx) {
		order = append(order, "mid")
		if c.RetVal() != 11 {
			t.Errorf("after mid: retval = %d, want 11", c.RetVal())
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := v.AddAfter(callInner.Addr, 0, func(c *Ctx) {
		order = append(order, "inner")
		if c.RetVal() != 10 {
			t.Errorf("after inner: retval = %d, want 10", c.RetVal())
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "inner" || order[1] != "mid" {
		t.Errorf("order = %v, want [inner mid]", order)
	}
}

func TestAfterCallOnRecursion(t *testing.T) {
	// A recursive call's after-probe must fire once per call, at the
	// matching depth.
	src := `
.module a.out
.executable
.entry main
.func main
  mov  r1, 3
  call down
  halt
.func down
  mov  r7, 1
  blt  r1, r7, base
  sub  r1, r1, 1
  call down
  ret
base:
  mov r0, 99
  ret
`
	prog := build(t, src)
	var rec *isa.Inst
	for _, b := range prog.FuncByName("down").Blocks {
		for _, in := range b.Insts {
			if in.Op == isa.Call {
				rec = in
			}
		}
	}
	v := New(prog, Config{})
	fires := 0
	if err := v.AddAfter(rec.Addr, 0, func(c *Ctx) { fires++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	// r1=3 -> recursive calls with r1=2,1,0: three recursive invocations.
	if fires != 3 {
		t.Errorf("after-probe fired %d times, want 3", fires)
	}
}

func TestEdgeProbeAcrossCallBoundary(t *testing.T) {
	// A loop whose body ends with a call followed (at a block boundary)
	// by the loop header: the back edge must still be observed even
	// though control passes through the callee in between.
	src := `
.module a.out
.executable
.entry main
.func main
  mov r8, 0
head:
  add r8, r8, 1
  call helper
  mov r7, 4
  blt r8, r7, head
  halt
.func helper
  mov r12, 1
  ret
`
	prog := build(t, src)
	main := prog.FuncByName("main")
	if len(main.Loops) != 1 {
		t.Fatalf("loops = %d", len(main.Loops))
	}
	loop := main.Loops[0]
	v := New(prog, Config{})
	iters := 0
	for _, e := range loop.Backs {
		if err := v.AddEdge(e.From.Start, e.To.Start, 0, func(*Ctx) { iters++ }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if iters != 3 {
		t.Errorf("back edges = %d, want 3", iters)
	}
}

func TestEdgeProbeWhenReturnLandsOnBlockStart(t *testing.T) {
	// If a call is the last instruction of a block (because the next
	// instruction is a branch target), the fall-through edge is
	// traversed by the return; the edge probe must attribute it to the
	// caller's block, not the callee's.
	src := `
.module a.out
.executable
.entry main
.func main
  mov r8, 0
  call helper
join:
  add r8, r8, 1
  mov r7, 2
  blt r8, r7, join
  halt
.func helper
  mov r12, 1
  ret
`
	prog := build(t, src)
	main := prog.FuncByName("main")
	entry := main.Blocks[0]
	if entry.Last().Op != isa.Call {
		t.Fatalf("test setup: entry block should end with the call, ends with %s", entry.Last())
	}
	join := main.Blocks[1]
	v := New(prog, Config{})
	crossings := 0
	if err := v.AddEdge(entry.Start, join.Start, 0, func(*Ctx) { crossings++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if crossings != 1 {
		t.Errorf("entry->join crossings = %d, want 1", crossings)
	}
}

func TestProbeOrderingAtSamePoint(t *testing.T) {
	// Probes at the same point fire in registration order — the
	// guarantee behind Cinnamon's "actions are instrumented in program
	// order" (Section III-B7).
	prog := build(t, sumSrc)
	var addInst *isa.Inst
	for _, b := range prog.FuncByName("main").Blocks {
		for _, in := range b.Insts {
			if in.Op == isa.Add && addInst == nil {
				addInst = in
			}
		}
	}
	v := New(prog, Config{})
	var order []int
	for i := 1; i <= 3; i++ {
		i := i
		if err := v.AddBefore(addInst.Addr, 0, func(*Ctx) {
			if len(order) < 3 {
				order = append(order, i)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func TestAfterProbeOnIntrinsicCall(t *testing.T) {
	src := `
.module a.out
.executable
.entry main
.extern malloc
.func main
  mov  r1, 16
  call malloc
  mov  r5, r0
  halt
`
	prog := build(t, src)
	var call *isa.Inst
	for _, b := range prog.FuncByName("main").Blocks {
		for _, in := range b.Insts {
			if in.Op == isa.Call {
				call = in
			}
		}
	}
	v := New(prog, Config{})
	var got uint64
	if err := v.AddAfter(call.Addr, 0, func(c *Ctx) { got = c.RetVal() }); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Error("after-probe on intrinsic call did not observe the return value")
	}
}

func TestCtxContextFields(t *testing.T) {
	prog := build(t, sumSrc)
	main := prog.FuncByName("main")
	v := New(prog, Config{})
	checked := false
	if err := v.AddBlockEntry(main.Blocks[1].Start, 0, func(c *Ctx) {
		if checked {
			return
		}
		checked = true
		if c.Func() != main {
			t.Errorf("Func = %v", c.Func())
		}
		if c.Module() == nil || c.Module().Name() != "a.out" {
			t.Errorf("Module = %v", c.Module())
		}
		if c.Depth() != 0 {
			t.Errorf("Depth = %d", c.Depth())
		}
		if c.StackTop() == 0 {
			t.Error("StackTop = 0")
		}
		lo, hi := c.HeapRange()
		if lo >= hi {
			t.Error("HeapRange inverted")
		}
		if c.When() != AtBlockEntry {
			t.Errorf("When = %v", c.When())
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("probe never fired")
	}
}
