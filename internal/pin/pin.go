// Package pin is a clean-room, Go reimplementation of the programming
// model of Intel Pin: a purely dynamic, just-in-time binary
// instrumentation framework. It is one of the three backend substrates the
// Cinnamon compiler targets.
//
// The API mirrors Pin's C++ surface closely enough that tools written
// against it have the same shape (and verbosity) as real Pin tools:
// instrumentation callbacks are registered per granularity
// (INS/TRACE/RTN/IMG), run at JIT time when code is first executed, and
// insert calls to analysis routines with IARG-style argument descriptors.
//
// Fidelity notes, matching the paper's description of Pin:
//
//   - Instrumentation is dynamic: Pin sees *all* executed code, including
//     shared-library modules (this is why Pin's instruction counts exceed
//     the static backends' in Figure 12).
//   - Routine and image modes work ahead of time from symbol information.
//   - Pin has no notion of loops; there is deliberately no loop API.
//   - Analysis calls are priced with Pin's cost model: short, simple
//     routines registered as inlinable get the cheap dispatch that Pin's
//     automatic inlining provides; everything else pays the clean-call
//     (context-switch) price.
package pin

import (
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Dispatch cost model (cycle units; see internal/vm/cost.go for the
// scale). A clean call spills and restores machine context around the
// analysis routine; an inlined analysis routine costs a fraction of that.
const (
	// CleanCallCost is charged per analysis-routine invocation inserted
	// as a clean call.
	CleanCallCost = 26
	// InlinedCallCost is charged when Pin can inline the analysis
	// routine into the code cache.
	InlinedCallCost = 14
	// ArgCost is charged per IARG materialized for an analysis call.
	ArgCost = 3
	// TraceCost is the one-time JIT cost of translating a trace (basic
	// block), charged on first execution whether or not a tool is
	// attached.
	TraceCost = 400
)

// IPoint selects where an analysis call is inserted relative to the
// instrumented object.
type IPoint int

// Insertion points.
const (
	IPointBefore IPoint = iota
	// IPointAfter fires after the instruction; on calls it fires at the
	// fall-through, once the callee has returned.
	IPointAfter
)

// ArgKind enumerates IARG-style analysis-call argument descriptors.
type ArgKind int

// Argument kinds.
const (
	// ArgInstPtr passes the instrumented instruction's address
	// (IARG_INST_PTR).
	ArgInstPtr ArgKind = iota
	// ArgMemoryEA passes the effective address of the instruction's
	// memory operand (IARG_MEMORYREAD_EA / IARG_MEMORYWRITE_EA).
	ArgMemoryEA
	// ArgRegValue passes the current value of a register
	// (IARG_REG_VALUE).
	ArgRegValue
	// ArgFuncArg passes the n-th function-call argument
	// (IARG_FUNCARG_ENTRYPOINT_VALUE).
	ArgFuncArg
	// ArgRetVal passes the function return value
	// (IARG_FUNCRET_EXITPOINT_VALUE); only meaningful at IPointAfter of
	// a call or at routine exit.
	ArgRetVal
	// ArgBranchTarget passes the resolved control-transfer target
	// (IARG_BRANCH_TARGET_ADDR); for returns this is the address about
	// to be popped.
	ArgBranchTarget
	// ArgFallthrough passes the address following the instruction
	// (IARG_FALLTHROUGH_ADDR).
	ArgFallthrough
	// ArgConst passes a fixed value (IARG_ADDRINT / IARG_UINT64).
	ArgConst
)

// Arg is an analysis-call argument descriptor.
type Arg struct {
	Kind ArgKind
	Reg  isa.Reg // ArgRegValue
	N    int     // ArgFuncArg (1-based)
	Val  uint64  // ArgConst
}

// InstPtr returns an IARG_INST_PTR descriptor.
func InstPtr() Arg { return Arg{Kind: ArgInstPtr} }

// MemoryEA returns an IARG_MEMORY*_EA descriptor.
func MemoryEA() Arg { return Arg{Kind: ArgMemoryEA} }

// RegValue returns an IARG_REG_VALUE descriptor.
func RegValue(r isa.Reg) Arg { return Arg{Kind: ArgRegValue, Reg: r} }

// FuncArg returns an IARG_FUNCARG_ENTRYPOINT_VALUE descriptor for the
// n-th (1-based) call argument.
func FuncArg(n int) Arg { return Arg{Kind: ArgFuncArg, N: n} }

// RetVal returns an IARG_FUNCRET_EXITPOINT_VALUE descriptor.
func RetVal() Arg { return Arg{Kind: ArgRetVal} }

// BranchTarget returns an IARG_BRANCH_TARGET_ADDR descriptor.
func BranchTarget() Arg { return Arg{Kind: ArgBranchTarget} }

// Fallthrough returns an IARG_FALLTHROUGH_ADDR descriptor.
func Fallthrough() Arg { return Arg{Kind: ArgFallthrough} }

// Const returns an IARG_UINT64 descriptor with a fixed value.
func Const(v uint64) Arg { return Arg{Kind: ArgConst, Val: v} }

// AnalysisFn is an analysis routine; it receives the materialized argument
// values in descriptor order.
type AnalysisFn func(args []uint64)

// Routine bundles an analysis function with its cost properties. Cost is
// the routine body's work in cycle units; Inlinable marks routines simple
// enough for Pin's automatic inlining (no calls, short, branch-free) —
// hand-written native analysis routines typically qualify, while generated
// callback encapsulations do not, which is the root of the Cinnamon
// overhead measured in Figure 13.
type Routine struct {
	Fn        AnalysisFn
	Cost      uint64
	Inlinable bool
	// Label identifies the routine in observability reports (optional;
	// the Cinnamon backend sets it to the originating action).
	Label string
	// FastFn, when non-nil, is a specialized variant of Fn with
	// identical observable behavior that satisfies the vm.ProbeSpec
	// purity contract (never inserts calls, never reads cycle counts).
	// Pin hands it to the VM's action-inlining layer.
	FastFn AnalysisFn
	// CounterFlush, when non-nil, asserts that every invocation of the
	// routine — for any argument values — is equivalent in all
	// observables to CounterFlush(CounterDelta). Such routines are
	// promoted to block-local accumulators by the inline tier.
	CounterDelta int64
	CounterFlush func(n int64)
	// Sample, when > 1, arms each insertion of the routine with a
	// sampling countdown: the call fires on every Sample-th hit of that
	// placement; swallowed hits cost only the inlined gate (see
	// vm.SampleGateCost).
	Sample uint64
	// Merged, when non-nil, marks a coalesced routine: Fn (and the
	// fast surfaces) describe the fused execution of the constituent
	// analysis calls, while each Part is registered and attributed
	// separately — one report row per constituent, dispatch priced
	// per part. Merged routines take no argument descriptors and are
	// never sampled.
	Merged []Part
}

// Part is one constituent of a merged analysis routine.
type Part struct {
	// Label identifies the constituent in observability reports.
	Label string
	// Cost is the constituent's body cost; its dispatch price is the
	// routine's clean-call/inlined base plus this.
	Cost uint64
}

func (r Routine) mechanism() string {
	if r.Inlinable {
		return obs.MechInlinedCall
	}
	return obs.MechCleanCall
}

func (r Routine) dispatchCost() uint64 {
	if r.Inlinable {
		return InlinedCallCost + r.Cost
	}
	return CleanCallCost + r.Cost
}

// INS is an instruction handle passed to instruction-mode instrumentation
// callbacks.
type INS struct {
	pin  *Pin
	inst *isa.Inst
}

// Address returns the instruction address.
func (i INS) Address() uint64 { return i.inst.Addr }

// Inst exposes the decoded instruction.
func (i INS) Inst() *isa.Inst { return i.inst }

// Opcode returns the instruction opcode.
func (i INS) Opcode() isa.Op { return i.inst.Op }

// IsMemoryRead reports whether the instruction reads memory.
func (i INS) IsMemoryRead() bool { return i.inst.Op == isa.Load }

// IsMemoryWrite reports whether the instruction writes memory.
func (i INS) IsMemoryWrite() bool { return i.inst.Op == isa.Store }

// IsCall reports whether the instruction is a call.
func (i INS) IsCall() bool { return i.inst.Op == isa.Call }

// IsRet reports whether the instruction is a return.
func (i INS) IsRet() bool { return i.inst.Op == isa.Return }

// IsBranch reports whether the instruction is a branch.
func (i INS) IsBranch() bool { return i.inst.Op == isa.Branch }

// IsIndirect reports whether the instruction is an indirect control
// transfer.
func (i INS) IsIndirect() bool { return i.inst.IsIndirect() }

// DirectTargetName returns the symbol name of a direct call/branch target
// ("" if indirect or unnamed). Symbolic information is available to Pin at
// instrumentation time.
func (i INS) DirectTargetName() string {
	if tgt, ok := i.inst.IsDirectTarget(); ok {
		return i.pin.prog.Obj.NameAt(tgt)
	}
	return ""
}

// InsertCall inserts an analysis call at the given point of this
// instruction. Args are materialized per invocation. An error is returned
// for placements the framework cannot honour (e.g. IPointAfter on a
// branch).
func (i INS) InsertCall(point IPoint, r Routine, args ...Arg) error {
	return i.pin.insertCall(i.inst, point, r, args)
}

// BBL is a basic-block handle within a trace.
type BBL struct {
	pin   *Pin
	block *cfg.Block
}

// Address returns the block's start address.
func (b BBL) Address() uint64 { return b.block.Start }

// NumIns returns the number of instructions in the block.
func (b BBL) NumIns() int { return len(b.block.Insts) }

// Ins returns the block's instructions as INS handles.
func (b BBL) Ins() []INS {
	out := make([]INS, len(b.block.Insts))
	for n, in := range b.block.Insts {
		out[n] = INS{pin: b.pin, inst: in}
	}
	return out
}

// InsertCall inserts an analysis call at the entry of this block
// (BBL_InsertCall with IPOINT_BEFORE).
func (b BBL) InsertCall(r Routine, args ...Arg) error {
	return b.pin.insertBlockCall(b.block, r, args)
}

// TRACE is a single-entry code region presented to trace-mode
// instrumentation; in this implementation a trace is one basic block.
type TRACE struct {
	pin   *Pin
	block *cfg.Block
}

// BBLs returns the trace's basic blocks.
func (t TRACE) BBLs() []BBL { return []BBL{{pin: t.pin, block: t.block}} }

// Address returns the trace's start address.
func (t TRACE) Address() uint64 { return t.block.Start }

// RTN is a routine (function) handle, available ahead of time from
// symbolic information.
type RTN struct {
	pin *Pin
	fn  *cfg.Func
}

// Name returns the routine name.
func (r RTN) Name() string { return r.fn.Name }

// Address returns the routine entry address.
func (r RTN) Address() uint64 { return r.fn.Entry }

// InsertCallEntry inserts an analysis call at routine entry.
func (r RTN) InsertCallEntry(routine Routine, args ...Arg) error {
	return r.pin.insertBlockCall(r.fn.Blocks[0], routine, args)
}

// InsertCallExit inserts an analysis call before every return of the
// routine.
func (r RTN) InsertCallExit(routine Routine, args ...Arg) error {
	for _, b := range r.fn.Blocks {
		if last := b.Last(); last.Op == isa.Return {
			if err := r.pin.insertCall(last, IPointBefore, routine, args); err != nil {
				return err
			}
		}
	}
	return nil
}

// IMG is an image (module) handle.
type IMG struct {
	pin *Pin
	mod *cfg.Module
}

// Name returns the image name.
func (i IMG) Name() string { return i.mod.Name() }

// IsMainExecutable reports whether this is the main program image.
func (i IMG) IsMainExecutable() bool { return i.mod.ID == 0 }

// RTNs returns the image's routines.
func (i IMG) RTNs() []RTN {
	out := make([]RTN, 0, len(i.mod.Funcs))
	for _, f := range i.mod.Funcs {
		out = append(out, RTN{pin: i.pin, fn: f})
	}
	return out
}

// Pin is one instrumentation session: a program plus an attached tool.
// Mirroring real Pin, the lifecycle is: create, register instrumentation
// and fini callbacks, then Run.
type Pin struct {
	prog *cfg.Program
	vm   *vm.VM
	obs  *obs.Collector

	insCbs   []func(INS)
	traceCbs []func(TRACE)
	rtnCbs   []func(RTN)
	imgCbs   []func(IMG)
	finiCbs  []func()

	runErr error
}

// Config parameterizes a Pin session.
type Config struct {
	// Fuel bounds application instructions (0 = default).
	Fuel uint64
	// AppOut receives the application's output (discarded if nil).
	AppOut io.Writer
	// Obs, when non-nil, collects per-probe attribution and
	// instrumentation-time statistics for the session.
	Obs *obs.Collector
	// ExecMode selects the underlying VM execution tier (see vm.Config).
	ExecMode vm.ExecMode
	// NoInline disables the VM's action-inlining layer (see vm.Config).
	NoInline bool
	// Adaptive allocates a control block for every inserted call so
	// probes can be sampled, ejected and re-armed mid-run (see
	// vm.Config.Adaptive).
	Adaptive bool
	// OnMachine, when non-nil, is called with the session's machine
	// before any instrumentation is installed — the hook adaptive
	// controllers (the overhead governor) attach through.
	OnMachine func(*vm.VM)
	// Stop, when non-nil, is the cooperative cancellation flag handed to
	// the machine (see vm.Config.Stop).
	Stop *atomic.Bool
}

// New creates a Pin session for the program.
func New(prog *cfg.Program, c Config) *Pin {
	p := &Pin{prog: prog, obs: c.Obs}
	p.vm = vm.New(prog, vm.Config{Fuel: c.Fuel, AppOut: c.AppOut, Obs: c.Obs, ExecMode: c.ExecMode, NoInline: c.NoInline, Adaptive: c.Adaptive, Stop: c.Stop})
	if c.OnMachine != nil {
		c.OnMachine(p.vm)
	}
	return p
}

// VM exposes the underlying machine (for tools that need raw memory
// access, e.g. taint or allocation tracking).
func (p *Pin) VM() *vm.VM { return p.vm }

// INSAddInstrumentFunction registers an instruction-mode instrumentation
// callback (INS_AddInstrumentFunction).
func (p *Pin) INSAddInstrumentFunction(fn func(INS)) { p.insCbs = append(p.insCbs, fn) }

// TraceAddInstrumentFunction registers a trace-mode instrumentation
// callback (TRACE_AddInstrumentFunction).
func (p *Pin) TraceAddInstrumentFunction(fn func(TRACE)) { p.traceCbs = append(p.traceCbs, fn) }

// RTNAddInstrumentFunction registers a routine-mode instrumentation
// callback (RTN_AddInstrumentFunction). Routine mode works ahead of time
// from symbols.
func (p *Pin) RTNAddInstrumentFunction(fn func(RTN)) { p.rtnCbs = append(p.rtnCbs, fn) }

// IMGAddInstrumentFunction registers an image-load callback
// (IMG_AddInstrumentFunction).
func (p *Pin) IMGAddInstrumentFunction(fn func(IMG)) { p.imgCbs = append(p.imgCbs, fn) }

// AddFiniFunction registers a callback run when the application exits
// (PIN_AddFiniFunction).
func (p *Pin) AddFiniFunction(fn func()) { p.finiCbs = append(p.finiCbs, fn) }

func (p *Pin) materialize(c *vm.Ctx, args []Arg, buf []uint64) []uint64 {
	for _, a := range args {
		var v uint64
		switch a.Kind {
		case ArgInstPtr:
			if in := c.Inst(); in != nil {
				v = in.Addr
			}
		case ArgMemoryEA:
			v, _ = c.MemAddr()
		case ArgRegValue:
			v = c.Reg(a.Reg)
		case ArgFuncArg:
			v = c.CallArg(a.N)
		case ArgRetVal:
			v = c.RetVal()
		case ArgBranchTarget:
			v, _ = c.Target()
		case ArgFallthrough:
			v = c.FallAddr()
		case ArgConst:
			v = a.Val
		}
		buf = append(buf, v)
	}
	return buf
}

// register records one inserted analysis call with the attached
// collector (cold path: instrumentation time only) and returns the probe
// ID the VM should attribute firings to.
func (p *Pin) register(r Routine, trigger string, addr, cost uint64) obs.ProbeID {
	if p.obs == nil {
		return obs.NoProbe
	}
	p.obs.MutateBuild(func(b *obs.BuildStats) {
		if r.Inlinable {
			b.InlinedCalls++
		} else {
			b.CleanCalls++
		}
	})
	return p.obs.RegisterProbe(obs.ProbeMeta{
		Label:        r.Label,
		Trigger:      trigger,
		Mechanism:    r.mechanism(),
		Addr:         addr,
		DispatchCost: cost,
	})
}

// analysisCall wraps one inserted analysis call: the argument buffer is
// allocated once per insertion and reused across firings (probes of one
// machine fire sequentially), so steady-state dispatch allocates nothing.
func (p *Pin) analysisCall(fn AnalysisFn, args []Arg) vm.ProbeFn {
	buf := make([]uint64, 0, 4)
	return func(c *vm.Ctx) {
		buf = p.materialize(c, args, buf[:0])
		fn(buf)
	}
}

// routineSpec builds the vm.ProbeSpec for one insertion of the routine
// (one spec per insertion: the VM owns accumulator state). Returns nil
// when the routine has no inline surface.
func (p *Pin) routineSpec(r Routine, args []Arg) *vm.ProbeSpec {
	if r.CounterFlush != nil {
		return &vm.ProbeSpec{Counter: true, Delta: r.CounterDelta, Flush: r.CounterFlush}
	}
	if r.FastFn == nil {
		return nil
	}
	return &vm.ProbeSpec{Fn: p.analysisCall(r.FastFn, args)}
}

// mergedShares registers each constituent of a merged routine and
// returns the attribution shares for the one fused probe.
func (p *Pin) mergedShares(r Routine, trigger string, addr uint64) []vm.Share {
	base := uint64(CleanCallCost)
	if r.Inlinable {
		base = InlinedCallCost
	}
	shares := make([]vm.Share, len(r.Merged))
	for i, part := range r.Merged {
		pc := base + part.Cost
		pr := Routine{Label: part.Label, Cost: part.Cost, Inlinable: r.Inlinable}
		shares[i] = vm.Share{ID: p.register(pr, trigger, addr, pc), Cost: pc}
	}
	return shares
}

func (p *Pin) insertCall(inst *isa.Inst, point IPoint, r Routine, args []Arg) error {
	if len(r.Merged) > 0 {
		fn := p.analysisCall(r.Fn, args)
		spec := p.routineSpec(r, args)
		switch point {
		case IPointBefore:
			return p.vm.AddBeforeCoalesced(inst.Addr, p.mergedShares(r, obs.TriggerBefore, inst.Addr), fn, spec)
		case IPointAfter:
			return p.vm.AddAfterCoalesced(inst.Addr, p.mergedShares(r, obs.TriggerAfter, inst.Addr), fn, spec)
		}
		return fmt.Errorf("pin: invalid insertion point %d", point)
	}
	cost := r.dispatchCost() + uint64(len(args))*ArgCost
	fn := p.analysisCall(r.Fn, args)
	spec := p.routineSpec(r, args)
	switch point {
	case IPointBefore:
		return p.vm.AddBeforeSampled(inst.Addr, cost, p.register(r, obs.TriggerBefore, inst.Addr, cost), fn, spec, r.Sample)
	case IPointAfter:
		return p.vm.AddAfterSampled(inst.Addr, cost, p.register(r, obs.TriggerAfter, inst.Addr, cost), fn, spec, r.Sample)
	}
	return fmt.Errorf("pin: invalid insertion point %d", point)
}

func (p *Pin) insertBlockCall(block *cfg.Block, r Routine, args []Arg) error {
	if len(r.Merged) > 0 {
		shares := p.mergedShares(r, obs.TriggerBlockEntry, block.Start)
		return p.vm.AddBlockEntryCoalesced(block.Start, shares, p.analysisCall(r.Fn, args), p.routineSpec(r, args))
	}
	cost := r.dispatchCost() + uint64(len(args))*ArgCost
	id := p.register(r, obs.TriggerBlockEntry, block.Start, cost)
	return p.vm.AddBlockEntrySampled(block.Start, cost, id, p.analysisCall(r.Fn, args), p.routineSpec(r, args), r.Sample)
}

// Run starts the application under Pin. Image and routine callbacks fire
// first (ahead of time, from symbols); instruction and trace callbacks
// fire just in time as each block is first executed; fini callbacks fire
// at exit.
func (p *Pin) Run() (*vm.Result, error) {
	// Ahead-of-time modes: image and routine instrumentation across all
	// loaded images.
	for _, m := range p.prog.Modules {
		img := IMG{pin: p, mod: m}
		for _, cb := range p.imgCbs {
			cb(img)
		}
		for _, f := range m.Funcs {
			if len(f.Blocks) == 0 {
				continue
			}
			for _, cb := range p.rtnCbs {
				cb(RTN{pin: p, fn: f})
			}
		}
	}
	// Just-in-time modes: instruction and trace instrumentation on first
	// execution. Pin observes *every* executed block, shared libraries
	// included, and pays the JIT translation cost whether or not a tool
	// is attached.
	err := p.vm.SetTranslator(func(b *cfg.Block) {
		p.vm.Charge(TraceCost)
		if p.obs != nil {
			p.obs.NoteTranslation(TraceCost)
		}
		for _, cb := range p.traceCbs {
			cb(TRACE{pin: p, block: b})
		}
		if len(p.insCbs) > 0 {
			for _, in := range b.Insts {
				for _, cb := range p.insCbs {
					cb(INS{pin: p, inst: in})
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	for _, fn := range p.finiCbs {
		fn := fn
		p.vm.OnEnd(func(*vm.Ctx) { fn() })
	}
	return p.vm.Run()
}
