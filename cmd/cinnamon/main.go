// Command cinnamon is the Cinnamon compiler driver: it compiles a .cin
// program and either runs it on a binary under one of the three backends
// or emits the framework-specific C/C++ sources.
//
//	cinnamon -backend=pin -target=victim:uaf_bug tool.cin
//	cinnamon -backend=janus -target=suite:mcf -scale=0.5 tool.cin
//	cinnamon -backend=dyninst -target=app.s tool.cin
//	cinnamon -emit=janus tool.cin
//	cinnamon -list-programs        # built-in case studies
//	cinnamon -backend=pin -target=victim:uaf_bug @useafterfree
//
// Targets: "victim:<name>" (built-in monitoring victims),
// "suite:<name>" (synthetic SPEC CPU 2017 benchmark), or a path to an
// assembly file. Tool arguments starting with @ name a built-in case
// study instead of a file.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/cinnamon"
	"repro/internal/obj"
	"repro/internal/progs"
	"repro/internal/workload"
)

func main() {
	backendName := flag.String("backend", "pin", "backend: pin, dyninst, janus")
	target := flag.String("target", "", "victim:<name>, suite:<name>, or an assembly file path")
	emit := flag.String("emit", "", "emit generated C/C++ for this backend instead of running")
	scale := flag.Float64("scale", 0.2, "workload scale for suite targets")
	list := flag.Bool("list-programs", false, "list built-in case-study programs and exit")
	stats := flag.Bool("stats", false, "print the observability report (per-probe firing and cycle attribution) to stderr")
	statsJSON := flag.Bool("stats-json", false, "print the observability report as JSON to stdout")
	trace := flag.Int("trace", 0, "record the last N probe firings in the report's trace ring (implies -stats)")
	pinLoops := flag.Bool("pin-loops", false, "enable the Pin loop-detection extension (paper §VI-E)")
	listen := flag.String("listen", "", "serve live monitoring on this address (host:port; :0 picks a port): /metrics, /stats, /series, /trace (SSE), /healthz")
	interval := flag.Duration("interval", time.Second, "monitor time-series sampling period (with -listen)")
	loop := flag.Int("loop", 0, "loop a victim target this many times (long-running session; default 500000 with -listen)")
	vmMode := flag.String("vm-mode", "", "VM execution tier: translated (default) or interpreted; both are bit-identical")
	vmInline := flag.Bool("vm-inline", true, "inline compiled actions into translated blocks (bit-identical; disable to measure or bisect)")
	flag.Parse()

	if *loop == 0 && *listen != "" {
		// A single victim run is over in microseconds — far too fast to
		// scrape. A live-monitored session loops by default.
		*loop = 500000
	}

	if *list {
		fmt.Println("built-in case studies (use as @<name>):")
		for _, n := range progs.Names() {
			fmt.Printf("  @%s\n", n)
		}
		fmt.Println("victims (use as -target=victim:<name>):")
		var names []string
		for n := range workload.Victims() {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	if flag.NArg() != 1 {
		fail("usage: cinnamon [flags] <tool.cin | @case-study>")
	}
	src := readTool(flag.Arg(0))
	tool, err := cinnamon.Compile(src)
	check(err)

	if *emit != "" {
		files, err := tool.GenerateCode(*emit)
		check(err)
		var names []string
		for n := range files {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("// ===== %s =====\n%s\n", n, files[n])
		}
		return
	}

	if *target == "" {
		fail("cinnamon: -target is required to run a tool (or use -emit)")
	}
	tgt := loadTarget(*target, *scale, *loop)
	report, err := tool.Run(tgt, *backendName, cinnamon.RunOptions{
		ToolOut:          os.Stdout,
		PinLoopDetection: *pinLoops,
		Stats:            *stats || *statsJSON,
		Trace:            *trace,
		MonitorAddr:      *listen,
		Interval:         *interval,
		VMMode:           *vmMode,
		VMNoInline:       !*vmInline,
		OnMonitor: func(addr string) {
			fmt.Fprintf(os.Stderr, "cinnamon: monitor listening on http://%s\n", addr)
		},
	})
	check(err)
	if *stats || *trace > 0 {
		fmt.Fprintf(os.Stderr, "backend=%s insts=%d cycles=%d exit=%d\n",
			report.Backend, report.Insts, report.Cycles, report.ExitCode)
		report.Stats.WriteTable(os.Stderr)
	}
	if *statsJSON {
		check(report.Stats.WriteJSON(os.Stdout))
	}
}

func readTool(arg string) string {
	if strings.HasPrefix(arg, "@") {
		src, err := progs.Source(strings.TrimPrefix(arg, "@"))
		check(err)
		return src
	}
	b, err := os.ReadFile(arg)
	check(err)
	return string(b)
}

func loadTarget(spec string, scale float64, loop int) *cinnamon.Target {
	switch {
	case strings.HasPrefix(spec, "victim:"):
		name := strings.TrimPrefix(spec, "victim:")
		var m *obj.Module
		var err error
		if loop > 0 {
			m, err = workload.LoopedVictim(name, loop)
		} else {
			m, err = workload.Victim(name)
		}
		check(err)
		t, err := cinnamon.LoadModules([]*obj.Module{m})
		check(err)
		return t
	case strings.HasPrefix(spec, "suite:"):
		s, ok := workload.ByName(strings.TrimPrefix(spec, "suite:"))
		if !ok {
			fail("cinnamon: unknown suite benchmark %q", spec)
		}
		mods, err := s.Build(scale)
		check(err)
		t, err := cinnamon.LoadModules(mods)
		check(err)
		return t
	default:
		b, err := os.ReadFile(spec)
		check(err)
		t, err := cinnamon.LoadAssembly(string(b))
		check(err)
		return t
	}
}

func check(err error) {
	if err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
