// Package interp evaluates Cinnamon statements and expressions. The same
// evaluator serves both stages of a tool's life:
//
//   - the analysis/instrumentation stage, where command bodies and static
//     constraints run over control-flow elements and may read static CFE
//     attributes; and
//   - the execution stage, where instrumented action bodies run inside
//     probes, reading captured analysis data, shared globals, and the
//     dynamic attribute values the backend materialized.
//
// Tool I/O goes through an in-memory file system (FS) shared between
// stages — this is how Figure 9's analysis pass hands function addresses
// to its init block — and a tool output writer for print().
package interp

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core/ast"
	"repro/internal/core/sem"
	"repro/internal/core/token"
	"repro/internal/core/types"
	"repro/internal/core/value"
	"repro/internal/isa"
)

// MaxLoopIters bounds a single for-statement's iterations; exceeding it
// is a runtime error (runaway tool loops would otherwise hang the
// instrumentation stage).
const MaxLoopIters = 50_000_000

// RuntimeError is a tool runtime error with its source position.
type RuntimeError struct {
	Pos token.Pos
	Msg string
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("cinnamon: %s: %s", e.Pos, e.Msg) }

// FS is the tool's in-memory file system.
type FS struct {
	files map[string]*value.FileVal
}

// NewFS returns an empty file system.
func NewFS() *FS { return &FS{files: make(map[string]*value.FileVal)} }

// Open returns the named file handle, creating it if needed. Handles are
// shared: all opens of one name see the same contents and read cursor.
func (fs *FS) Open(name string) *value.FileVal {
	f, ok := fs.files[name]
	if !ok {
		f = &value.FileVal{Name: name}
		fs.files[name] = f
	}
	return f
}

// Names returns the names of all files, sorted.
func (fs *FS) Names() []string {
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Env is a lexical scope: a chain of frames mapping names to mutable
// values.
type Env struct {
	parent *Env
	vars   map[string]*value.Value
	// dyn holds materialized dynamic attribute values for the current
	// probe invocation, keyed "I.memaddr".
	dyn map[string]value.Value
}

// NewEnv returns a fresh scope under parent (nil for the root).
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent, vars: make(map[string]*value.Value)}
}

// Define binds a new variable in this scope.
func (e *Env) Define(name string, v value.Value) {
	vv := v
	e.vars[name] = &vv
}

// Lookup finds the innermost binding of name.
func (e *Env) Lookup(name string) *value.Value {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v
		}
	}
	return nil
}

// SetDyn installs the dynamic attribute map for a probe invocation.
func (e *Env) SetDyn(dyn map[string]value.Value) { e.dyn = dyn }

// VarNames returns the names bound directly in this frame (not parents).
func (e *Env) VarNames() map[string]struct{} {
	out := make(map[string]struct{}, len(e.vars))
	for n := range e.vars {
		out[n] = struct{}{}
	}
	return out
}

// NumVarsUntil counts the distinct variable names bound in the scopes from
// e up to (excluding) stop — the number of values Snapshot would capture,
// without paying for the copies.
func (e *Env) NumVarsUntil(stop *Env) int {
	n := 0
	var seen map[string]bool
	for s := e; s != nil && s != stop; s = s.parent {
		if s.parent == stop && seen == nil {
			// Single frame: every name is distinct.
			return n + len(s.vars)
		}
		if seen == nil {
			seen = make(map[string]bool)
		}
		for name := range s.vars {
			if !seen[name] {
				seen[name] = true
				n++
			}
		}
	}
	return n
}

func (e *Env) lookupDyn(key string) (value.Value, bool) {
	for s := e; s != nil; s = s.parent {
		if s.dyn != nil {
			if v, ok := s.dyn[key]; ok {
				return v, true
			}
		}
	}
	return value.Value{}, false
}

// Snapshot copies the scope chain from env up to (excluding) stop into a
// single new frame whose parent is stop: the by-value capture of analysis
// data into an action closure. Inner bindings shadow outer ones; globals
// (at and above stop) stay shared.
func Snapshot(env, stop *Env) *Env {
	snap := NewEnv(stop)
	seen := make(map[string]bool)
	for s := env; s != nil && s != stop; s = s.parent {
		for name, v := range s.vars {
			if !seen[name] {
				seen[name] = true
				snap.Define(name, value.Copy(*v))
			}
		}
	}
	return snap
}

// Interp evaluates statements and expressions against an Env.
type Interp struct {
	// Info is the semantic analysis result (declaration types).
	Info *sem.Info
	// Out receives print() output.
	Out io.Writer
	// FS is the tool file system.
	FS *FS
}

// New returns an interpreter.
func New(info *sem.Info, out io.Writer, fs *FS) *Interp {
	if out == nil {
		out = io.Discard
	}
	if fs == nil {
		fs = NewFS()
	}
	return &Interp{Info: info, Out: out, FS: fs}
}

func (in *Interp) errf(pos token.Pos, format string, args ...any) error {
	return &RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// ZeroValue returns the zero value of a type (dicts and vectors are
// allocated empty; arrays are zero-filled).
func ZeroValue(t *types.Type) value.Value {
	switch t.Kind {
	case types.Bool:
		return value.BoolVal(false)
	case types.String, types.Line:
		return value.StrVal("")
	case types.Dict:
		return value.Value{Kind: value.KDict, Dict: value.NewDict(ZeroValue(t.Elem))}
	case types.Vector:
		return value.Value{Kind: value.KVector, Vec: &value.VectorVal{}}
	case types.Array:
		elems := make([]value.Value, t.Len)
		for i := range elems {
			elems[i] = ZeroValue(t.Elem)
		}
		return value.Value{Kind: value.KArray, Arr: &value.ArrayVal{Elems: elems}}
	case types.Opcode:
		return value.OpcodeVal(isa.Nop)
	default:
		return value.IntVal(0)
	}
}

// DeclareGlobal evaluates a global declaration into env.
func (in *Interp) DeclareGlobal(env *Env, d *ast.VarDecl) error {
	t := in.Info.DeclTypes[d]
	if t == nil {
		return in.errf(d.P, "internal: declaration %s has no type", d.Name)
	}
	if t.Kind == types.File {
		nameV, err := in.Eval(env, d.Args[0])
		if err != nil {
			return err
		}
		f := in.FS.Open(nameV.Str)
		env.Define(d.Name, value.Value{Kind: value.KFile, File: f})
		return nil
	}
	return in.declare(env, d, t)
}

func (in *Interp) declare(env *Env, d *ast.VarDecl, t *types.Type) error {
	v := ZeroValue(t)
	if d.Init != nil {
		iv, err := in.Eval(env, d.Init)
		if err != nil {
			return err
		}
		v = convert(iv, t)
	}
	env.Define(d.Name, v)
	return nil
}

// Convert adapts a value to a declared type; it is exported for the
// closure compiler, which must apply exactly the interpreter's coercions.
func Convert(v value.Value, t *types.Type) value.Value { return convert(v, t) }

// convert adapts a value to a declared type (numeric coercions, line
// parsing).
func convert(v value.Value, t *types.Type) value.Value {
	switch {
	case t.IsNumeric():
		return value.IntVal(v.AsInt())
	case t.Kind == types.Bool:
		return value.BoolVal(v.AsBool())
	case t.IsStringy():
		if v.Kind == value.KString {
			return v
		}
		if v.Kind == value.KNull {
			return value.Null
		}
		return value.StrVal(v.String())
	default:
		return v
	}
}

// ExecStmts executes a statement list in env.
func (in *Interp) ExecStmts(env *Env, stmts []ast.Stmt) error {
	for _, s := range stmts {
		if err := in.ExecStmt(env, s); err != nil {
			return err
		}
	}
	return nil
}

// ExecStmt executes one statement.
func (in *Interp) ExecStmt(env *Env, s ast.Stmt) error {
	switch st := s.(type) {
	case *ast.DeclStmt:
		t := in.Info.DeclTypes[st.Decl]
		if t == nil {
			return in.errf(st.Decl.P, "internal: declaration %s has no type", st.Decl.Name)
		}
		return in.declare(env, st.Decl, t)
	case *ast.AssignStmt:
		return in.assign(env, st)
	case *ast.ExprStmt:
		_, err := in.Eval(env, st.X)
		return err
	case *ast.IfStmt:
		cond, err := in.Eval(env, st.Cond)
		if err != nil {
			return err
		}
		if cond.AsBool() {
			return in.ExecStmts(NewEnv(env), st.Then)
		}
		return in.ExecStmts(NewEnv(env), st.Else)
	case *ast.ForStmt:
		scope := NewEnv(env)
		if st.Init != nil {
			if err := in.ExecStmt(scope, st.Init); err != nil {
				return err
			}
		}
		for iters := 0; ; iters++ {
			if iters >= MaxLoopIters {
				return in.errf(st.P, "for statement exceeded %d iterations", MaxLoopIters)
			}
			if st.Cond != nil {
				cond, err := in.Eval(scope, st.Cond)
				if err != nil {
					return err
				}
				if !cond.AsBool() {
					return nil
				}
			}
			if len(st.Body) > 0 {
				if err := in.ExecStmts(NewEnv(scope), st.Body); err != nil {
					return err
				}
			}
			if st.Post != nil {
				if err := in.ExecStmt(scope, st.Post); err != nil {
					return err
				}
			}
		}
	}
	return in.errf(s.Pos(), "invalid statement")
}

func (in *Interp) assign(env *Env, st *ast.AssignStmt) error {
	rhs, err := in.Eval(env, st.RHS)
	if err != nil {
		return err
	}
	switch lhs := st.LHS.(type) {
	case *ast.Ident:
		slot := env.Lookup(lhs.Name)
		if slot == nil {
			return in.errf(lhs.P, "undefined: %s", lhs.Name)
		}
		if t := in.Info.Types[st.LHS]; t != nil {
			*slot = convert(rhs, t)
		} else {
			*slot = rhs
		}
		return nil
	case *ast.IndexExpr:
		base, err := in.Eval(env, lhs.X)
		if err != nil {
			return err
		}
		idx, err := in.Eval(env, lhs.Index)
		if err != nil {
			return err
		}
		switch base.Kind {
		case value.KDict:
			base.Dict.Set(idx, convert(rhs, elemTypeOf(in, lhs.X)))
			return nil
		case value.KArray:
			i := idx.AsInt()
			if i < 0 || i >= int64(len(base.Arr.Elems)) {
				return in.errf(lhs.P, "array index %d out of range [0,%d)", i, len(base.Arr.Elems))
			}
			base.Arr.Elems[i] = convert(rhs, elemTypeOf(in, lhs.X))
			return nil
		case value.KVector:
			i := idx.AsInt()
			if i < 0 || i >= int64(len(base.Vec.Elems)) {
				return in.errf(lhs.P, "vector index %d out of range [0,%d)", i, len(base.Vec.Elems))
			}
			base.Vec.Elems[i] = convert(rhs, elemTypeOf(in, lhs.X))
			return nil
		}
		return in.errf(lhs.P, "value is not indexable")
	}
	return in.errf(st.P, "invalid assignment target")
}

func elemTypeOf(in *Interp, base ast.Expr) *types.Type {
	if t := in.Info.Types[base]; t != nil && t.Elem != nil {
		return t.Elem
	}
	return types.Basic(types.Int)
}

// Eval evaluates an expression.
func (in *Interp) Eval(env *Env, e ast.Expr) (value.Value, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return value.IntVal(x.Val), nil
	case *ast.StringLit:
		return value.StrVal(x.Val), nil
	case *ast.CharLit:
		return value.IntVal(int64(x.Val)), nil
	case *ast.BoolLit:
		return value.BoolVal(x.Val), nil
	case *ast.NullLit:
		return value.Null, nil
	case *ast.OpcodeLit:
		op, ok := opcodeByName[x.Name]
		if !ok {
			return value.Null, in.errf(x.P, "unknown opcode %s", x.Name)
		}
		return value.OpcodeVal(op), nil
	case *ast.Ident:
		slot := env.Lookup(x.Name)
		if slot == nil {
			return value.Null, in.errf(x.P, "undefined: %s", x.Name)
		}
		return *slot, nil
	case *ast.FieldExpr:
		return in.evalField(env, x)
	case *ast.IndexExpr:
		base, err := in.Eval(env, x.X)
		if err != nil {
			return value.Null, err
		}
		idx, err := in.Eval(env, x.Index)
		if err != nil {
			return value.Null, err
		}
		switch base.Kind {
		case value.KDict:
			return base.Dict.Get(idx), nil
		case value.KVector:
			return base.Vec.Get(idx.AsInt()), nil
		case value.KArray:
			i := idx.AsInt()
			if i < 0 || i >= int64(len(base.Arr.Elems)) {
				return value.Null, in.errf(x.P, "array index %d out of range [0,%d)", i, len(base.Arr.Elems))
			}
			return base.Arr.Elems[i], nil
		}
		return value.Null, in.errf(x.P, "value is not indexable")
	case *ast.CallExpr:
		return in.evalCall(env, x)
	case *ast.IsTypeExpr:
		v, err := in.Eval(env, x.X)
		if err != nil {
			return value.Null, err
		}
		if v.Kind != value.KOperand {
			return value.Null, in.errf(x.P, "IsType requires an operand")
		}
		var want isa.OperandKind
		switch x.OpType {
		case token.KMEM:
			want = isa.KindMem
		case token.KREG:
			want = isa.KindReg
		case token.KCONST:
			want = isa.KindImm
		}
		return value.BoolVal(v.Opnd.Kind == want), nil
	case *ast.UnaryExpr:
		v, err := in.Eval(env, x.X)
		if err != nil {
			return value.Null, err
		}
		switch x.Op {
		case token.NOT:
			return value.BoolVal(!v.AsBool()), nil
		case token.MINUS:
			return value.IntVal(-v.AsInt()), nil
		}
		return value.Null, in.errf(x.P, "invalid unary operator")
	case *ast.BinaryExpr:
		return in.evalBinary(env, x)
	}
	return value.Null, in.errf(e.Pos(), "invalid expression")
}

// OpcodeFromName resolves a Cinnamon opcode keyword to a machine opcode.
func OpcodeFromName(name string) (isa.Op, bool) {
	op, ok := opcodeByName[name]
	return op, ok
}

// opcodeByName maps Cinnamon opcode keywords to machine opcodes.
var opcodeByName = map[string]isa.Op{
	"Call": isa.Call, "Mov": isa.Mov, "Load": isa.Load, "Store": isa.Store,
	"Branch": isa.Branch, "Return": isa.Return, "Add": isa.Add, "Sub": isa.Sub,
	"Mul": isa.Mul, "Div": isa.Div, "GetPtr": isa.GetPtr, "Nop": isa.Nop,
	"Halt": isa.Halt,
}

func (in *Interp) evalField(env *Env, x *ast.FieldExpr) (value.Value, error) {
	// Dynamic attributes resolve from the probe's materialized values.
	if in.Info.DynamicExprs[x] {
		id, ok := x.X.(*ast.Ident)
		if !ok {
			return value.Null, in.errf(x.P, "internal: dynamic attribute on non-identifier")
		}
		key := id.Name + "." + strings.ToLower(x.Name)
		if v, ok := env.lookupDyn(key); ok {
			return v, nil
		}
		return value.Null, in.errf(x.P, "dynamic attribute %s not materialized (is this running outside a probe?)", key)
	}
	base, err := in.Eval(env, x.X)
	if err != nil {
		return value.Null, err
	}
	if base.Kind != value.KCFE {
		return value.Null, in.errf(x.P, "value has no attributes")
	}
	return StaticAttr(base.CFE, x.Name)
}

func (in *Interp) evalCall(env *Env, x *ast.CallExpr) (value.Value, error) {
	switch fun := x.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "print":
			parts := make([]string, 0, len(x.Args))
			for _, a := range x.Args {
				v, err := in.Eval(env, a)
				if err != nil {
					return value.Null, err
				}
				parts = append(parts, v.String())
			}
			fmt.Fprintln(in.Out, strings.Join(parts, " "))
			return value.Value{}, nil
		case "writeToFile":
			fv, err := in.Eval(env, x.Args[0])
			if err != nil {
				return value.Null, err
			}
			v, err := in.Eval(env, x.Args[1])
			if err != nil {
				return value.Null, err
			}
			if fv.Kind != value.KFile {
				return value.Null, in.errf(x.P, "writeToFile requires a file")
			}
			fv.File.WriteLine(v.String())
			return value.Value{}, nil
		}
		return value.Null, in.errf(x.P, "unknown function %q", fun.Name)
	case *ast.FieldExpr:
		recv, err := in.Eval(env, fun.X)
		if err != nil {
			return value.Null, err
		}
		return in.evalMethod(env, x, recv, fun.Name)
	}
	return value.Null, in.errf(x.P, "invalid call")
}

func (in *Interp) evalMethod(env *Env, x *ast.CallExpr, recv value.Value, name string) (value.Value, error) {
	arg := func(i int) (value.Value, error) { return in.Eval(env, x.Args[i]) }
	switch recv.Kind {
	case value.KVector:
		switch name {
		case "add":
			v, err := arg(0)
			if err != nil {
				return value.Null, err
			}
			recv.Vec.Add(convert(v, elemTypeOf(in, funReceiver(x))))
			return value.Value{}, nil
		case "has":
			v, err := arg(0)
			if err != nil {
				return value.Null, err
			}
			return value.BoolVal(recv.Vec.Has(convert(v, elemTypeOf(in, funReceiver(x))))), nil
		case "size":
			return value.IntVal(int64(len(recv.Vec.Elems))), nil
		}
	case value.KDict:
		switch name {
		case "has":
			v, err := arg(0)
			if err != nil {
				return value.Null, err
			}
			return value.BoolVal(recv.Dict.Has(v)), nil
		case "size":
			return value.IntVal(int64(recv.Dict.Len())), nil
		}
	case value.KFile:
		switch name {
		case "getline":
			return recv.File.GetLine(), nil
		}
	}
	return value.Null, in.errf(x.P, "invalid method %q", name)
}

func funReceiver(x *ast.CallExpr) ast.Expr {
	return x.Fun.(*ast.FieldExpr).X
}

func (in *Interp) evalBinary(env *Env, x *ast.BinaryExpr) (value.Value, error) {
	// Short-circuit logical operators.
	if x.Op == token.LAND || x.Op == token.LOR {
		l, err := in.Eval(env, x.X)
		if err != nil {
			return value.Null, err
		}
		if x.Op == token.LAND && !l.AsBool() {
			return value.BoolVal(false), nil
		}
		if x.Op == token.LOR && l.AsBool() {
			return value.BoolVal(true), nil
		}
		r, err := in.Eval(env, x.Y)
		if err != nil {
			return value.Null, err
		}
		return value.BoolVal(r.AsBool()), nil
	}
	l, err := in.Eval(env, x.X)
	if err != nil {
		return value.Null, err
	}
	r, err := in.Eval(env, x.Y)
	if err != nil {
		return value.Null, err
	}
	switch x.Op {
	case token.EQ:
		return value.BoolVal(value.Equal(l, r)), nil
	case token.NEQ:
		return value.BoolVal(!value.Equal(l, r)), nil
	case token.LT, token.LE, token.GT, token.GE:
		if l.Kind == value.KString && r.Kind == value.KString {
			return value.BoolVal(compareOrdered(x.Op, strings.Compare(l.Str, r.Str))), nil
		}
		a, b := l.AsInt(), r.AsInt()
		switch {
		case a < b:
			return value.BoolVal(compareOrdered(x.Op, -1)), nil
		case a > b:
			return value.BoolVal(compareOrdered(x.Op, 1)), nil
		default:
			return value.BoolVal(compareOrdered(x.Op, 0)), nil
		}
	case token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
		token.AMP, token.PIPE, token.CARET, token.SHL, token.SHR:
		a, b := l.AsInt(), r.AsInt()
		switch x.Op {
		case token.PLUS:
			return value.IntVal(a + b), nil
		case token.MINUS:
			return value.IntVal(a - b), nil
		case token.STAR:
			return value.IntVal(a * b), nil
		case token.SLASH:
			if b == 0 {
				return value.Null, in.errf(x.P, "division by zero")
			}
			return value.IntVal(a / b), nil
		case token.PERCENT:
			if b == 0 {
				return value.Null, in.errf(x.P, "division by zero")
			}
			return value.IntVal(a % b), nil
		case token.AMP:
			return value.IntVal(a & b), nil
		case token.PIPE:
			return value.IntVal(a | b), nil
		case token.CARET:
			return value.IntVal(a ^ b), nil
		case token.SHL:
			return value.IntVal(a << (uint64(b) & 63)), nil
		case token.SHR:
			return value.IntVal(int64(uint64(a) >> (uint64(b) & 63))), nil
		}
	}
	return value.Null, in.errf(x.P, "invalid operator")
}

func compareOrdered(op token.Kind, cmp int) bool {
	switch op {
	case token.LT:
		return cmp < 0
	case token.LE:
		return cmp <= 0
	case token.GT:
		return cmp > 0
	case token.GE:
		return cmp >= 0
	}
	return false
}
