// Package progs embeds the canonical Cinnamon case-study programs — the
// five tools of the paper's Section V (Figures 5–9) — as .cin sources.
// They are used by the examples, the end-to-end tests, and the Table I
// code-length experiment.
package progs

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

//go:embed cin/*.cin
var fs embed.FS

// Names of the case-study programs.
const (
	// InstCountBasic is Figure 5a: per-load global counter.
	InstCountBasic = "instcount_basic"
	// InstCountBB is Figure 5b: per-basic-block precomputed counter (the
	// tool measured in Figure 13).
	InstCountBB = "instcount_bb"
	// LoopCoverage is Figure 6: loop-coverage profiler.
	LoopCoverage = "loopcoverage"
	// UseAfterFree is Figure 7: use-after-free monitor.
	UseAfterFree = "useafterfree"
	// ShadowStack is Figure 8: backward-edge CFI.
	ShadowStack = "shadowstack"
	// ForwardCFI is Figure 9: forward-edge CFI.
	ForwardCFI = "forwardcfi"
	// OpcodeMix is an extra tool beyond the paper: an opcode-class
	// histogram demonstrating static arrays.
	OpcodeMix = "opcodemix"
)

// Names returns all case-study program names in a stable order.
func Names() []string {
	entries, err := fs.ReadDir("cin")
	if err != nil {
		panic(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".cin"))
	}
	sort.Strings(names)
	return names
}

// Source returns the Cinnamon source of the named program.
func Source(name string) (string, error) {
	b, err := fs.ReadFile("cin/" + name + ".cin")
	if err != nil {
		return "", fmt.Errorf("progs: unknown program %q", name)
	}
	return string(b), nil
}

// MustSource is Source for known-good names; it panics on error.
func MustSource(name string) string {
	s, err := Source(name)
	if err != nil {
		panic(err)
	}
	return s
}

// CountLines returns the number of non-blank, non-comment source lines —
// the metric of the paper's Table I.
func CountLines(src string) int {
	n := 0
	inBlockComment := false
	for _, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if inBlockComment {
			if idx := strings.Index(line, "*/"); idx >= 0 {
				line = strings.TrimSpace(line[idx+2:])
				inBlockComment = false
			} else {
				continue
			}
		}
		if idx := strings.Index(line, "//"); idx >= 0 {
			line = strings.TrimSpace(line[:idx])
		}
		if idx := strings.Index(line, "/*"); idx >= 0 {
			rest := line[idx+2:]
			if end := strings.Index(rest, "*/"); end >= 0 {
				line = strings.TrimSpace(line[:idx] + rest[end+2:])
			} else {
				line = strings.TrimSpace(line[:idx])
				inBlockComment = true
			}
		}
		if line != "" {
			n++
		}
	}
	return n
}
