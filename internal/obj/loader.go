package obj

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Address-space layout of a loaded program.
const (
	// BaseAddr is where the first (executable) module is mapped.
	BaseAddr uint64 = 0x10000
	// ModuleAlign is the alignment between consecutive modules.
	ModuleAlign uint64 = 0x10000
	// HeapBase and HeapLimit bound the runtime heap (malloc arena).
	HeapBase  uint64 = 0x4000_0000
	HeapLimit uint64 = 0x5000_0000
	// StackTop is the initial stack pointer; the stack grows down.
	StackTop uint64 = 0x7fff_ff00
	// StackLimit is the lowest legal stack address.
	StackLimit uint64 = 0x7fe0_0000
	// IntrinsicBase is the start of the pseudo-address region where
	// runtime intrinsics (malloc, free, print, ...) live. A Call whose
	// target falls in this region is handled by the VM runtime rather
	// than executed as code.
	IntrinsicBase uint64 = 0xffff_0000
)

// Loaded is a module mapped at its load address with relocations applied.
type Loaded struct {
	*Module
	// Base is the absolute address of the code section.
	Base uint64
	// DataBase is the absolute address of the data section.
	DataBase uint64
	// Image is the relocated copy of the code section.
	Image []byte
	// DataImage is the relocated copy of the data section.
	DataImage []byte
}

// CodeEnd returns the first address past the code section.
func (l *Loaded) CodeEnd() uint64 { return l.Base + uint64(len(l.Image)) }

// DataEnd returns the first address past the data section.
func (l *Loaded) DataEnd() uint64 { return l.DataBase + uint64(len(l.DataImage)) }

// ContainsCode reports whether addr falls inside the module's code section.
func (l *Loaded) ContainsCode(addr uint64) bool { return addr >= l.Base && addr < l.CodeEnd() }

// SymAddr returns the absolute address of the named symbol in this module.
func (l *Loaded) SymAddr(name string) (uint64, bool) {
	s, ok := l.Sym(name)
	if !ok {
		return 0, false
	}
	return l.symAbs(s), true
}

func (l *Loaded) symAbs(s Symbol) uint64 {
	if s.Kind == SymData {
		return l.DataBase + s.Off
	}
	return l.Base + s.Off
}

// Program is a fully loaded address space: the executable module plus the
// shared-library modules it links against.
type Program struct {
	// Modules lists the loaded modules; Modules[0] is the executable.
	Modules []*Loaded
	// Externs maps runtime-provided symbol names (e.g. "malloc") to their
	// intrinsic pseudo-addresses.
	Externs map[string]uint64

	funcIndex []funcEntry // sorted by address, for reverse lookup
}

type funcEntry struct {
	addr, end uint64
	name      string
	mod       *Loaded
}

// Load maps the given modules into a fresh address space and applies all
// relocations. Exactly one module must be executable; it becomes
// Modules[0]. externs provides runtime symbols (each assigned an address in
// the intrinsic region by the caller).
func Load(mods []*Module, externs map[string]uint64) (*Program, error) {
	if len(mods) == 0 {
		return nil, fmt.Errorf("obj: no modules to load")
	}
	ordered := make([]*Module, 0, len(mods))
	var exe *Module
	for _, m := range mods {
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if m.Executable {
			if exe != nil {
				return nil, fmt.Errorf("obj: multiple executable modules (%s, %s)", exe.Name, m.Name)
			}
			exe = m
		}
	}
	if exe == nil {
		return nil, fmt.Errorf("obj: no executable module")
	}
	ordered = append(ordered, exe)
	for _, m := range mods {
		if m != exe {
			ordered = append(ordered, m)
		}
	}

	p := &Program{Externs: externs}
	next := BaseAddr
	for _, m := range ordered {
		l := &Loaded{Module: m, Base: next}
		l.Image = make([]byte, len(m.Code))
		copy(l.Image, m.Code)
		l.DataBase = align(next+uint64(len(m.Code)), 16)
		l.DataImage = make([]byte, len(m.Data))
		copy(l.DataImage, m.Data)
		next = align(l.DataBase+uint64(len(m.Data))+1, ModuleAlign)
		p.Modules = append(p.Modules, l)
	}

	// Build the global (exported) symbol table.
	globals := make(map[string]uint64)
	for _, l := range p.Modules {
		for _, s := range l.Syms {
			if s.Global {
				if _, dup := globals[s.Name]; dup {
					return nil, fmt.Errorf("obj: duplicate global symbol %q", s.Name)
				}
				globals[s.Name] = l.symAbs(s)
			}
		}
	}

	// Apply relocations.
	for _, l := range p.Modules {
		for _, r := range l.Relocs {
			target, err := p.resolve(l, r.Sym, globals)
			if err != nil {
				return nil, fmt.Errorf("obj: %s: %w", l.Name, err)
			}
			word := uint64(int64(target) + r.Addend)
			switch r.Kind {
			case RelocCode:
				binary.LittleEndian.PutUint64(l.Image[r.Off:], word)
			case RelocData:
				binary.LittleEndian.PutUint64(l.DataImage[r.Off:], word)
			default:
				return nil, fmt.Errorf("obj: %s: unknown relocation kind %d", l.Name, r.Kind)
			}
		}
	}

	// Build the reverse function index.
	for _, l := range p.Modules {
		for _, s := range l.Syms {
			if s.Kind != SymFunc {
				continue
			}
			p.funcIndex = append(p.funcIndex, funcEntry{
				addr: l.Base + s.Off,
				end:  l.Base + s.Off + s.Size,
				name: s.Name,
				mod:  l,
			})
		}
	}
	sort.Slice(p.funcIndex, func(i, j int) bool { return p.funcIndex[i].addr < p.funcIndex[j].addr })
	return p, nil
}

func (p *Program) resolve(l *Loaded, sym string, globals map[string]uint64) (uint64, error) {
	if s, ok := l.Sym(sym); ok {
		return l.symAbs(s), nil
	}
	if addr, ok := globals[sym]; ok {
		return addr, nil
	}
	if addr, ok := p.Externs[sym]; ok {
		return addr, nil
	}
	return 0, fmt.Errorf("unresolved symbol %q", sym)
}

func align(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

// Executable returns the main module.
func (p *Program) Executable() *Loaded { return p.Modules[0] }

// Entry returns the absolute address of the program entry point.
func (p *Program) Entry() uint64 {
	exe := p.Executable()
	return exe.Base + exe.Entry
}

// ModuleAt returns the module whose code section contains addr.
func (p *Program) ModuleAt(addr uint64) (*Loaded, bool) {
	for _, l := range p.Modules {
		if l.ContainsCode(addr) {
			return l, true
		}
	}
	return nil, false
}

// FuncAt returns the name and entry address of the function containing
// addr, using the symbol-table extents.
func (p *Program) FuncAt(addr uint64) (name string, entry uint64, ok bool) {
	i := sort.Search(len(p.funcIndex), func(i int) bool { return p.funcIndex[i].addr > addr })
	if i == 0 {
		return "", 0, false
	}
	fe := p.funcIndex[i-1]
	if addr >= fe.addr && addr < fe.end {
		return fe.name, fe.addr, true
	}
	return "", 0, false
}

// NameAt returns the symbolic name of a call target address: a function
// entry, or a runtime intrinsic. It returns "" if the address names
// nothing.
func (p *Program) NameAt(addr uint64) string {
	for name, a := range p.Externs {
		if a == addr {
			return name
		}
	}
	if name, entry, ok := p.FuncAt(addr); ok && entry == addr {
		return name
	}
	return ""
}

// IsIntrinsic reports whether addr falls in the runtime intrinsic region.
func IsIntrinsic(addr uint64) bool { return addr >= IntrinsicBase }
