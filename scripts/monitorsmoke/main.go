// Command monitorsmoke is the CI smoke test for the live-monitoring
// stack: it builds the cinnamon CLI, starts a live-monitored session
// (looping victim, -listen on an ephemeral port), scrapes /healthz and
// /metrics, reads one event off the SSE /trace stream, then kills the
// session and verifies it dies cleanly. It exercises the same path an
// operator uses — the real binary, real flags, real HTTP — not the Go
// API, so a wiring regression in cmd/cinnamon fails CI even if every
// package test passes.
//
// Run from the repository root (scripts/ci.sh does):
//
//	go run ./scripts/monitorsmoke
package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "monitorsmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("monitorsmoke: OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "monitorsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "cinnamon")

	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/cinnamon").CombinedOutput(); err != nil {
		return fmt.Errorf("build cinnamon: %v\n%s", err, out)
	}

	// A long-looping victim so the session outlives the smoke checks.
	cmd := exec.Command(bin,
		"-backend=pin", "-target=victim:uaf_bug",
		"-listen=127.0.0.1:0", "-interval=100ms", "-loop=2000000",
		"@useafterfree")
	cmd.Stdout = io.Discard
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	defer cmd.Process.Kill()

	// The CLI announces the bound address on stderr.
	addr, err := scanAddr(stderr)
	if err != nil {
		return err
	}
	base := "http://" + addr

	if err := expectGet(base+"/healthz", "ok"); err != nil {
		return err
	}
	// The monitor comes up before the instrumented run starts, so the
	// first scrapes may predate probe registration; poll until the run
	// is visibly firing.
	deadline := time.Now().Add(30 * time.Second)
	var metrics string
	for {
		metrics, err = get(base + "/metrics")
		if err != nil {
			return err
		}
		if strings.Contains(metrics, "# TYPE cinnamon_probe_fires_total counter") {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("/metrics never showed probe fires:\n%s", metrics)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !strings.Contains(metrics, `backend="pin"`) {
		return fmt.Errorf("/metrics missing backend label:\n%s", metrics)
	}

	if err := readOneSSEEvent(base + "/trace"); err != nil {
		return err
	}

	// Clean shutdown: the process must die on signal, not hang on the
	// monitor server.
	if err := cmd.Process.Kill(); err != nil {
		return err
	}
	done := make(chan struct{})
	go func() { cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("session did not exit within 10s of kill")
	}
	return nil
}

// scanAddr reads the session's stderr until the monitor announces its
// bound address.
func scanAddr(stderr io.Reader) (string, error) {
	const marker = "monitor listening on http://"
	type res struct {
		addr string
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, marker); i >= 0 {
				ch <- res{addr: strings.TrimSpace(line[i+len(marker):])}
				// Keep draining so the session never blocks on stderr.
				for sc.Scan() {
				}
				return
			}
		}
		ch <- res{err: fmt.Errorf("monitor address never announced (stderr closed)")}
	}()
	select {
	case r := <-ch:
		return r.addr, r.err
	case <-time.After(30 * time.Second):
		return "", fmt.Errorf("timed out waiting for the monitor address")
	}
}

func get(url string) (string, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("GET %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(b), nil
}

func expectGet(url, want string) error {
	body, err := get(url)
	if err != nil {
		return err
	}
	if !strings.Contains(body, want) {
		return fmt.Errorf("%s: got %q, want %q", url, body, want)
	}
	return nil
}

// readOneSSEEvent connects to the SSE stream and waits for one complete
// event (a probe firing or a heartbeat — either proves the stream is
// alive and framed correctly).
func readOneSSEEvent(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return fmt.Errorf("%s: Content-Type %q, want text/event-stream", url, ct)
	}
	type res struct {
		name string
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		name := ""
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				name = strings.TrimPrefix(line, "event: ")
			case line == "" && name != "":
				ch <- res{name: name}
				return
			}
		}
		ch <- res{err: fmt.Errorf("SSE stream closed without an event")}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			return r.err
		}
		if r.name != "fire" && r.name != "heartbeat" {
			return fmt.Errorf("unexpected SSE event %q", r.name)
		}
		return nil
	case <-time.After(15 * time.Second):
		return fmt.Errorf("no SSE event within 15s")
	}
}
