package obs

import "sync/atomic"

// TraceEvent is one probe firing in the event trace.
type TraceEvent struct {
	// Seq is the global firing sequence number (0-based, counting every
	// Fire on the collector, including untracked ones).
	Seq uint64 `json:"seq"`
	// Probe is the fired probe's 1-based slot index within its
	// collector (NoProbe for untracked firings); Stats.Probes[Probe-1]
	// is its report row.
	Probe ProbeID `json:"probe"`
	// PC is the program counter at the firing.
	PC uint64 `json:"pc"`
	// Cost is the cycle units the firing was charged.
	Cost uint64 `json:"cost"`
}

// traceSlot is one seqlock-style ring cell. The writer invalidates seq,
// stores the payload, then stores seq = event sequence + 1; a reader
// validates seq before and after loading the payload, so a torn read —
// the writer lapping the ring mid-load — is detected and the event
// skipped rather than returned corrupt. All fields are atomics: the
// scheme is race-free, not merely statistically safe.
type traceSlot struct {
	seq   atomic.Uint64 // event Seq+1; 0 = empty or write in progress
	probe atomic.Uint64
	pc    atomic.Uint64
	cost  atomic.Uint64
}

// ring is a bounded event buffer: pushes never allocate after creation,
// and once full each push overwrites the oldest event (wraparound), so a
// long run keeps the most recent window. Single writer (push), any
// number of concurrent readers (events/droppedAt).
type ring struct {
	buf  []traceSlot
	next atomic.Uint64 // total events ever pushed
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]traceSlot, capacity)}
}

// push appends one event and returns its sequence number. Writer only.
func (r *ring) push(id ProbeID, pc, cost uint64) uint64 {
	n := r.next.Load()
	s := &r.buf[n%uint64(len(r.buf))]
	s.seq.Store(0) // invalidate while the payload is inconsistent
	s.probe.Store(uint64(uint32(id)))
	s.pc.Store(pc)
	s.cost.Store(cost)
	s.seq.Store(n + 1)
	r.next.Store(n + 1)
	return n
}

// events returns the retained window in sequence order (oldest first).
// Safe to call mid-run: events the writer is overwriting concurrently
// fail seq validation and are skipped, so the result may have gaps but
// never a torn event.
func (r *ring) events() []TraceEvent {
	n := uint64(len(r.buf))
	next := r.next.Load()
	start := uint64(0)
	if next > n {
		start = next - n
	}
	out := make([]TraceEvent, 0, next-start)
	for seq := start; seq < next; seq++ {
		s := &r.buf[seq%n]
		if s.seq.Load() != seq+1 {
			continue // overwritten or mid-write
		}
		ev := TraceEvent{
			Seq:   seq,
			Probe: ProbeID(uint32(s.probe.Load())),
			PC:    s.pc.Load(),
			Cost:  s.cost.Load(),
		}
		if s.seq.Load() != seq+1 {
			continue // writer lapped us while loading the payload
		}
		out = append(out, ev)
	}
	return out
}

// droppedAt returns how many events had been overwritten once `next`
// events were pushed.
func (r *ring) droppedAt(next uint64) uint64 {
	if n := uint64(len(r.buf)); next > n {
		return next - n
	}
	return 0
}

// Trace is the exported form of the firing-event ring buffer.
type Trace struct {
	// Cap is the ring capacity the run was configured with.
	Cap int `json:"cap"`
	// Dropped counts events overwritten by wraparound: the trace holds
	// the *last* Cap firings of a run with Dropped+len(Events) total.
	Dropped uint64 `json:"dropped"`
	// Events is the retained window, oldest first, with contiguous Seq
	// (a mid-run snapshot may have gaps where the writer overtook the
	// reader; see ring.events).
	Events []TraceEvent `json:"events"`
}
