package native

import (
	"fmt"
	"io"

	"repro/internal/cfg"
	"repro/internal/dyninst"
	"repro/internal/isa"
	"repro/internal/vm"
)

// Use-after-free monitoring written directly against the Dyninst API: the
// mutator walks every call site, resolves the called function through the
// image's symbol information, and inserts snippets that pass the malloc
// size (BPatch_paramExpr), the returned base (BPatch_retExpr) and each
// access's effective address (BPatch_effectiveAddressExpr) to the
// tracking callbacks.
func init() { register("dyninst", "useafterfree", dyninstUseAfterFree) }

func dyninstUseAfterFree(prog *cfg.Program, out io.Writer, fuel uint64) (*vm.Result, error) {
	be, err := dyninst.OpenBinary(prog, dyninst.Config{Fuel: fuel})
	if err != nil {
		return nil, err
	}
	image := be.Image()
	freed := make(map[uint64]bool)
	baseTable := make(map[uint64]uint64)
	var size uint64

	recordSize := dyninst.FuncCallExpr{
		Fn:   func(args []uint64) { size = args[0] },
		Args: []dyninst.Snippet{dyninst.ParamExpr{N: 1}},
		Cost: 1 * stmtCost,
	}
	recordAlloc := dyninst.FuncCallExpr{
		Fn: func(args []uint64) {
			base := args[0]
			for a := base; a < base+size; a++ {
				baseTable[a] = base
			}
			freed[base] = false
		},
		Args: []dyninst.Snippet{dyninst.RetExpr{}},
		Cost: 6 * stmtCost,
	}
	recordFree := dyninst.FuncCallExpr{
		Fn:   func(args []uint64) { freed[args[0]] = true },
		Args: []dyninst.Snippet{dyninst.ParamExpr{N: 1}},
		Cost: 2 * stmtCost,
	}
	checkAccess := dyninst.FuncCallExpr{
		Fn: func(args []uint64) {
			if base, ok := baseTable[args[0]]; ok && freed[base] {
				fmt.Fprintln(out, "ERROR: use after free access")
			}
		},
		Args: []dyninst.Snippet{dyninst.EffectiveAddressExpr{}},
		Cost: 6 * stmtCost,
	}

	for _, fn := range image.Functions() {
		for _, bb := range fn.Blocks() {
			points := bb.InstPoints()
			for n, in := range bb.Instructions() {
				switch {
				case in.Op == isa.Call:
					switch image.CalledFunctionName(in.Addr) {
					case "malloc":
						if err := be.InsertSnippet(recordSize, points[n], dyninst.CallBefore); err != nil {
							return nil, err
						}
						if err := be.InsertSnippet(recordAlloc, points[n], dyninst.CallAfter); err != nil {
							return nil, err
						}
					case "free":
						if err := be.InsertSnippet(recordFree, points[n], dyninst.CallBefore); err != nil {
							return nil, err
						}
					}
				case in.Op.IsMemAccess():
					if err := be.InsertSnippet(checkAccess, points[n], dyninst.CallBefore); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return be.Run()
}
