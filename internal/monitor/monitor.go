// Package monitor serves live observability for a running instrumented
// session over HTTP: Prometheus-style /metrics scrapes, JSON /stats and
// /series snapshots, and a Server-Sent-Events /trace stream of probe
// firings — all backed by the concurrent-safe read path of
// internal/obs, so the instrumented run never blocks on an observer.
//
// Endpoints:
//
//	GET /metrics   Prometheus text exposition (see metrics.go)
//	GET /stats     the full obs.Stats snapshot as JSON (with the
//	               overhead governor's state embedded when one is
//	               attached)
//	GET /series    the bounded interval time-series as JSON
//	GET /trace     SSE stream of firing events, with heartbeats that
//	               carry the stream's drop count (slow clients lose
//	               events, never stall the run)
//	GET /governor  the overhead governor's state: budget, per-window
//	               overhead, per-probe strides, the decision log
//	POST /governor a control command ({"probe":N,"action":"rearm"});
//	               mailboxed and applied at the governor's next pace
//	               point on the run goroutine
//	GET /healthz   liveness probe (alias of /healthz/live)
//	GET /healthz/live   liveness: the process serves HTTP
//	GET /healthz/ready  readiness: 200 while serving, 503 once
//	               shutdown has begun (the drain window)
//
// A fleet of such sessions is aggregated by FleetServer (fleet.go,
// fleetserver.go): per-session-labelled exposition with exact rollups,
// merged series, session lifecycle, and a multiplexed trace stream.
package monitor

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/governor"
	"repro/internal/obs"
)

// Config parameterizes a monitor Server.
type Config struct {
	// Collector is the live collector being observed. Required.
	Collector *obs.Collector
	// Backend names the framework of the monitored run; it becomes the
	// `backend` label on every metric.
	Backend string
	// Interval is the time-series sampling period (default 1s).
	Interval time.Duration
	// SeriesCap bounds the retained time-series window (default 600).
	SeriesCap int
	// Heartbeat is the SSE keep-alive period (default 1s): how often an
	// idle /trace stream emits a heartbeat event carrying its drop
	// count.
	Heartbeat time.Duration
	// TraceBuf is the per-client SSE channel depth (default 256).
	// Events beyond a slow client's buffer are dropped and accounted,
	// never queued unboundedly.
	TraceBuf int
	// Governor, when non-nil, is the run's overhead governor: its state
	// is embedded in /stats snapshots and served (and steered) on
	// /governor.
	Governor *governor.Governor
}

// Server is the live-monitoring HTTP server of one instrumented run.
type Server struct {
	cfg    Config
	series *obs.Series
	srv    *http.Server
	ln     net.Listener
	// quit is closed at shutdown so streaming handlers (/trace) return
	// and let http.Server.Shutdown drain.
	quit chan struct{}
}

// NewServer creates a monitor over the collector. Call Start to bind
// and serve, or Handler to mount the endpoints elsewhere (tests use
// httptest.Server).
func NewServer(cfg Config) *Server {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.TraceBuf <= 0 {
		cfg.TraceBuf = 256
	}
	return &Server{
		cfg: cfg,
		series: obs.NewSeries(cfg.Collector, cfg.Backend, obs.SeriesOptions{
			Interval: cfg.Interval,
			Cap:      cfg.SeriesCap,
		}),
		quit: make(chan struct{}),
	}
}

// Series returns the server's interval aggregator (started and stopped
// with the server).
func (s *Server) Series() *obs.Series { return s.series }

// Handler returns the monitor's endpoint mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/series", s.handleSeries)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/governor", s.handleGovernor)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/healthz/live", s.handleHealthz)
	mux.HandleFunc("/healthz/ready", s.handleReady)
	return mux
}

// Start binds addr (host:port; port 0 picks a free one), starts the
// interval sampler, and serves in a background goroutine. It returns
// the bound address. Shutdown must be called to stop.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("monitor: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.series.Start()
	s.srv = &http.Server{Handler: s.Handler()}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown stops the server: streaming handlers are released, in-flight
// requests drain (bounded by ctx), and the sampler takes a final point
// and stops. Only valid after Start.
func (s *Server) Shutdown(ctx context.Context) error {
	close(s.quit)
	err := s.srv.Shutdown(ctx)
	s.series.Stop()
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := s.cfg.Collector.Snapshot(s.cfg.Backend)
	writeMetrics(w, snap, s.cfg.Collector)
	if s.cfg.Governor != nil {
		writeGovernorMetrics(w, snap.Backend, s.cfg.Governor.State())
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	snap := s.cfg.Collector.Snapshot(s.cfg.Backend)
	if s.cfg.Governor != nil {
		snap.Governor = s.cfg.Governor.State()
	}
	_ = snap.WriteJSON(w)
}

// handleGovernor serves the overhead governor: GET returns its state
// (budget, window overheads, per-probe strides and the replayable
// decision log), POST mailboxes a control command — the mutation itself
// happens at the governor's next pace point, on the run goroutine,
// where adaptive-probe control is legal.
func (s *Server) handleGovernor(w http.ResponseWriter, r *http.Request) {
	g := s.cfg.Governor
	if g == nil {
		http.Error(w, "no governor attached (run with a -budget)", http.StatusNotFound)
		return
	}
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(g.State())
	case http.MethodPost:
		var cmd governor.Command
		if err := json.NewDecoder(r.Body).Decode(&cmd); err != nil {
			http.Error(w, fmt.Sprintf("bad command: %v", err), http.StatusBadRequest)
			return
		}
		switch cmd.Action {
		case "rearm", "eject", "stride":
		default:
			http.Error(w, fmt.Sprintf("bad action %q (want rearm, eject or stride)", cmd.Action), http.StatusBadRequest)
			return
		}
		g.Enqueue(cmd)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"queued"}`)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.series.Dump().WriteJSON(w)
}

// handleHealthz answers liveness (/healthz and /healthz/live): the
// process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReady answers readiness: 200 while the server accepts work, 503
// once shutdown has begun — in-flight requests still drain, but a load
// balancer should route new ones elsewhere.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	select {
	case <-s.quit:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	default:
		fmt.Fprintln(w, "ready")
	}
}

// heartbeat is the SSE keep-alive payload: how many events this client
// has missed (its channel was full when the machine fired) and how many
// taps are currently live.
type heartbeat struct {
	Dropped     uint64 `json:"dropped"`
	Subscribers int    `json:"subscribers"`
}

// handleTrace streams firing events as Server-Sent Events. Each client
// gets a bounded tap on the collector (obs.Subscribe); the run never
// blocks on a slow client — overflow events are dropped and the running
// drop count rides on every heartbeat so the client can tell how lossy
// its view is.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch := make(chan obs.TraceEvent, s.cfg.TraceBuf)
	sub := s.cfg.Collector.Subscribe(ch)
	defer s.cfg.Collector.Unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	tick := time.NewTicker(s.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-r.Context().Done():
			return
		case ev := <-ch:
			data, _ := json.Marshal(ev)
			fmt.Fprintf(w, "event: fire\ndata: %s\n\n", data)
			flusher.Flush()
		case <-tick.C:
			data, _ := json.Marshal(heartbeat{
				Dropped:     sub.Dropped(),
				Subscribers: s.cfg.Collector.Subscribers(),
			})
			fmt.Fprintf(w, "event: heartbeat\ndata: %s\n\n", data)
			flusher.Flush()
		}
	}
}
