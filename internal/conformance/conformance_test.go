package conformance

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core/ast"
	"repro/internal/core/backend"
	"repro/internal/core/engine"
	"repro/internal/core/parser"
	"repro/internal/obs"
)

// Every generated program must compile, and must be a fixed point of
// the canonical printer (the generator emits via ast.Print, so parsing
// and reprinting its output has to be byte-identical — otherwise the
// shrinker's candidate comparison would be meaningless).
func TestGeneratedProgramsCompileAndAreCanonical(t *testing.T) {
	for seed := uint64(0); seed < 150; seed++ {
		p := GenProgram(seed)
		if _, err := engine.Compile(p.Source); err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v\n%s", seed, err, p.Source)
		}
		prog, err := parser.Parse(p.Source)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		if got := ast.Print(prog); got != p.Source {
			t.Fatalf("seed %d: print/parse is not a fixed point:\n--- generated ---\n%s\n--- reprinted ---\n%s",
				seed, p.Source, got)
		}
	}
}

func TestGeneratedVictimsLoad(t *testing.T) {
	for seed := uint64(0); seed < 150; seed++ {
		v := GenVictim(seed)
		if _, err := LoadVictim(v.Srcs); err != nil {
			t.Fatalf("seed %d: generated victim does not load: %v\n%s", seed, err, strings.Join(v.Srcs, "\n---\n"))
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a, b := GenProgram(seed), GenProgram(seed)
		if a.Source != b.Source || a.UsesLoops != b.UsesLoops {
			t.Fatalf("seed %d: GenProgram is not deterministic", seed)
		}
		va, vb := GenVictim(seed), GenVictim(seed)
		if strings.Join(va.Srcs, "\x00") != strings.Join(vb.Srcs, "\x00") {
			t.Fatalf("seed %d: GenVictim is not deterministic", seed)
		}
	}
}

// The tentpole assertion: a bounded differential sweep finds zero
// illegal divergences, and the oracle exercises (not masks) every
// documented legal divergence class.
func TestDifferentialSweep(t *testing.T) {
	res := Sweep(0, 60, time.Time{})
	for _, err := range res.Errors {
		t.Errorf("generator error: %v", err)
	}
	for _, pr := range res.Failures {
		t.Errorf("seed %d: illegal divergence:\n%s", pr.Program.Seed,
			DescribeFailure(pr, pr.Program.Source))
	}
	for _, class := range []string{ClassPinLoops, ClassPinLibs, ClassDyninstCFG} {
		if res.Legal[class] == 0 {
			t.Errorf("sweep never exercised legal divergence class %s", class)
		}
	}
	if res.SamplingChecks == 0 {
		t.Error("sweep never exercised the sampling-legality oracle")
	}
}

// The sampling oracle's arithmetic checker must flag every violation
// shape: lost fires, duplicated fires, unaccounted skips, and moved
// placements. Fabricated rows, no run.
func TestSamplingOracleFlagsViolations(t *testing.T) {
	row := func(label, trigger string, addr, fires, skips uint64) obs.ProbeStats {
		return obs.ProbeStats{
			ProbeMeta: obs.ProbeMeta{Label: label, Trigger: trigger, Addr: addr},
			Fires:     fires, Skips: skips,
		}
	}
	strides := map[string]uint64{"before inst @3:3": 4}
	twin := []obs.ProbeStats{
		row("before inst @3:3", "before", 0x10, 10, 0),
		row("entry basicblock @5:3", "block-entry", 0x20, 7, 0),
	}
	good := []obs.ProbeStats{
		row("before inst @3:3", "before", 0x10, 2, 8), // floor(10/4)=2, skips 8
		row("entry basicblock @5:3", "block-entry", 0x20, 7, 0),
	}
	if divs, checks := compareSamplingRows(strides, good, twin); len(divs) != 0 || checks != 1 {
		t.Fatalf("legal rows flagged (checks=%d): %v", checks, divs)
	}
	cases := map[string][]obs.ProbeStats{
		"lost fire": {row("before inst @3:3", "before", 0x10, 1, 9), good[1]},
		"dup fire":  {row("before inst @3:3", "before", 0x10, 3, 7), good[1]},
		"bad skips": {row("before inst @3:3", "before", 0x10, 2, 7), good[1]},
		"unsampled action diverged": {good[0],
			row("entry basicblock @5:3", "block-entry", 0x20, 6, 0)},
		"placement moved": {row("before inst @3:3", "before", 0x18, 2, 8), good[1]},
	}
	for name, rows := range cases {
		if divs, _ := compareSamplingRows(strides, rows, twin); len(divs) == 0 {
			t.Errorf("%s: violation not flagged", name)
		}
	}
}

// Per-placement countdowns are independent: a multi-site sampled action
// whose sites see co-prime hit counts must satisfy the floor relation
// at every site (the label-aggregated sum would not).
func TestSamplingPerPlacementIndependence(t *testing.T) {
	src := `uint64 c0 = 0;
inst I where (I.opcode == Add) {
  before I sample 4 {
    c0 = c0 + 1;
  }
}
exit {
  print("c0", c0);
}
`
	tool, err := engine.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// Two Add sites with different hit counts (loop body vs straight
	// line): 10 hits and 1 hit. floor(10/4)+floor(1/4) = 2, while
	// floor(11/4) = 2 as well — so also check the per-row skips, which
	// do differ (8+1 vs 9 distributed differently across rows).
	prog, err := LoadVictim([]string{`
.module a.out
.executable
.entry main
.func main
  mov r1, 0
  mov r2, 0
  mov r3, 10
head:
  add r1, r1, 1
  blt r1, r3, head
  add r2, r2, 5
  halt
`})
	if err != nil {
		t.Fatal(err)
	}
	divs, checks := CompareSampling(tool, prog)
	if checks != 2 {
		t.Fatalf("checked %d placements, want 2", checks)
	}
	if len(divs) != 0 {
		t.Fatalf("sampling divergences: %v", divs)
	}
}

// Sweeping the same range twice must classify identically: the whole
// harness (generator, runner, oracle) is deterministic end to end.
func TestSweepDeterministic(t *testing.T) {
	a := Sweep(100, 25, time.Time{})
	b := Sweep(100, 25, time.Time{})
	if a.Summary() != b.Summary() {
		t.Fatalf("sweep is not deterministic:\n%s\nvs\n%s", a.Summary(), b.Summary())
	}
}

// Oracle classification on fabricated results: a tampered output in one
// tier must be an illegal tier-mismatch, and a Pin undercount on a
// multi-module victim must be illegal (dominance is required, not just
// "any difference is Pin being Pin").
func TestOracleFlagsTamperedResults(t *testing.T) {
	mk := func(cell Cell) RunResult {
		return RunResult{
			Cell: cell, Output: "c0 7\n", Insts: 100, Cycles: 500,
			Fires: map[string]uint64{"before inst @3:3": 40},
		}
	}
	cells := Cells(Traits{})
	results := make([]RunResult, len(cells))
	for i, c := range cells {
		results[i] = mk(c)
	}

	if divs := Compare(results, Traits{}); len(divs) != 0 {
		t.Fatalf("identical results produced divergences: %v", divs)
	}

	// Tamper the interpreted Janus tier.
	tampered := make([]RunResult, len(results))
	copy(tampered, results)
	for i := range tampered {
		if tampered[i].Cell == (Cell{Backend: backend.Janus, Interpret: true}) {
			tampered[i].Output = "c0 8\n"
		}
	}
	divs := Compare(tampered, Traits{})
	if len(divs) != 1 || divs[0].Class != ClassTier || divs[0].Legal {
		t.Fatalf("tampered tier not flagged as illegal tier-mismatch: %v", divs)
	}

	// Pin undercounting on a multi-module victim is illegal even though
	// overcounting would be the legal pin-shared-libs divergence.
	under := make([]RunResult, len(results))
	copy(under, results)
	for i := range under {
		if under[i].Cell.Backend == backend.Pin {
			under[i].Fires = map[string]uint64{"before inst @3:3": 30}
		}
	}
	divs = Compare(under, Traits{MultiModule: true})
	found := false
	for _, d := range divs {
		if d.Class == ClassBackend && !d.Legal && strings.Contains(d.Detail, "undercounts") {
			found = true
		}
	}
	if !found {
		t.Fatalf("pin undercount not flagged: %v", divs)
	}

	// Pin overcounting on a multi-module victim is the legal class.
	over := make([]RunResult, len(results))
	copy(over, results)
	for i := range over {
		if over[i].Cell.Backend == backend.Pin {
			over[i].Fires = map[string]uint64{"before inst @3:3": 55}
			over[i].Output = "c0 9\n"
		}
	}
	divs = Compare(over, Traits{MultiModule: true})
	if len(divs) != 1 || divs[0].Class != ClassPinLibs || !divs[0].Legal {
		t.Fatalf("pin overcount not classified as legal pin-shared-libs: %v", divs)
	}

	// The same overcount on a single-module victim is illegal.
	divs = Compare(over, Traits{})
	if len(divs) == 0 || divs[0].Legal {
		t.Fatalf("single-module pin mismatch not flagged: %v", divs)
	}
}

// Known-divergence classification on real runs, not fabricated data:
// each corpus seed entry is built to trigger one oracle class.
func TestOracleClassifiesKnownDivergences(t *testing.T) {
	pairs, err := CorpusPairs()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"seed_agree":       "",
		"seed_pin_loops":   ClassPinLoops,
		"seed_pin_libs":    ClassPinLibs,
		"seed_dyninst_cfg": ClassDyninstCFG,
	}
	for _, p := range pairs {
		class, ok := want[p.Name]
		if !ok {
			continue
		}
		pr, err := ReplayPair(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if ill := pr.Illegal(); len(ill) > 0 {
			t.Errorf("%s: illegal divergences: %v", p.Name, ill)
		}
		if class == "" {
			if len(pr.Divergences) != 0 {
				t.Errorf("%s: want full agreement, got %v", p.Name, pr.Divergences)
			}
			continue
		}
		found := false
		for _, d := range pr.Divergences {
			if d.Class == class && d.Legal {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: oracle did not classify the %s divergence: %v", p.Name, class, pr.Divergences)
		}
	}
}

// With the loop-detection extension, Pin must rejoin the cross-check:
// its loop-trigger fire counts and output agree with Janus exactly on
// single-module victims.
func TestPinLoopDetectionRejoinsMatrix(t *testing.T) {
	pairs, err := CorpusPairs()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if p.Name != "seed_pin_loops" {
			continue
		}
		pr, err := ReplayPair(p)
		if err != nil {
			t.Fatal(err)
		}
		var ref, pinLD *RunResult
		for i := range pr.Results {
			r := &pr.Results[i]
			if r.Cell == (Cell{Backend: backend.Janus}) {
				ref = r
			}
			if r.Cell == (Cell{Backend: backend.Pin, LoopDetection: true}) {
				pinLD = r
			}
		}
		if ref == nil || pinLD == nil {
			t.Fatal("matrix missing janus reference or pin+loopdet cell")
		}
		if pinLD.Err != "" {
			t.Fatalf("pin+loopdet failed: %s", pinLD.Err)
		}
		if pinLD.Output != ref.Output {
			t.Errorf("pin+loopdet output %q != janus %q", pinLD.Output, ref.Output)
		}
		return
	}
	t.Fatal("seed_pin_loops corpus entry missing")
}

func TestShrinkerDeterministicAndMinimal(t *testing.T) {
	// A predicate standing in for "reproduces the divergence": the
	// program still contains a basicblock command and an assignment
	// incrementing c0. Everything else should shrink away.
	fails := func(src string) bool {
		return strings.Contains(src, "basicblock") && strings.Contains(src, "c0 = c0 + 1;")
	}
	seed := findSeed(t, func(p *Program) bool { return fails(p.Source) })
	src := GenProgram(seed).Source
	a := Shrink(src, fails)
	b := Shrink(src, fails)
	if a != b {
		t.Fatalf("shrinker is not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if !fails(a) {
		t.Fatalf("shrunk program no longer fails:\n%s", a)
	}
	if len(a) >= len(src) {
		t.Fatalf("shrinker made no progress: %d -> %d bytes", len(src), len(a))
	}
	if _, err := engine.Compile(a); err != nil {
		t.Fatalf("shrunk program does not compile: %v\n%s", err, a)
	}
	// Minimality: removing any single remaining element must break the
	// predicate or the program (that is the shrinker's fixpoint).
	prog, err := parser.Parse(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < countSlots(prog); i++ {
		c := ast.Print(deleteSlot(prog, i))
		if c == a {
			continue
		}
		if _, err := engine.Compile(c); err == nil && fails(c) {
			t.Fatalf("shrunk program is not 1-minimal: slot %d still removable:\n%s", i, c)
		}
	}
}

// ShrinkFailure on a synthetic oracle failure: force a divergence by
// treating dyninst's legal CFG-skip as illegal via a victim trait lie
// is not possible (traits are derived), so instead shrink against a
// predicate that reruns the real matrix and requires the legal
// dyninst-cfg-skip class to survive. This exercises the full
// shrink-with-rerun path deterministically.
func TestShrinkAgainstRealMatrix(t *testing.T) {
	seed := findSeed(t, func(p *Program) bool {
		pr, err := RunPair(p, GenVictim(p.Seed))
		if err != nil {
			return false
		}
		for _, d := range pr.Divergences {
			if d.Class == ClassDyninstCFG {
				return true
			}
		}
		return false
	})
	p := GenProgram(seed)
	v := GenVictim(seed)
	keep := func(src string) bool {
		pr, err := RunPair(&Program{Source: src}, v)
		if err != nil {
			return false
		}
		for _, d := range pr.Divergences {
			if d.Class == ClassDyninstCFG {
				return true
			}
		}
		return false
	}
	a := Shrink(p.Source, keep)
	b := Shrink(p.Source, keep)
	if a != b {
		t.Fatalf("matrix-predicate shrink not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !keep(a) {
		t.Fatalf("shrunk program lost the divergence:\n%s", a)
	}
}

// findSeed scans forward from 0 for a generated program satisfying the
// predicate (deterministic, so tests always pick the same seed).
func findSeed(t *testing.T, ok func(*Program) bool) uint64 {
	t.Helper()
	for seed := uint64(0); seed < 500; seed++ {
		if ok(GenProgram(seed)) {
			return seed
		}
	}
	t.Fatal("no seed in [0,500) satisfies the predicate")
	return 0
}

func TestCorpusFormatRoundTrip(t *testing.T) {
	tool := "uint64 c0 = 0;\nexit {\n  print(\"c0\", c0);\n}\n"
	victims := []string{".module a\n.executable\n.entry main\n.func main\n  halt\n", ".module b\n.global x\n.func x\n  ret\n"}
	text := FormatPair(tool, victims)
	p, err := ParsePair("rt", text)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tool != tool {
		t.Errorf("tool round-trip:\n%q\nvs\n%q", p.Tool, tool)
	}
	if len(p.Victim) != 2 || p.Victim[0] != victims[0] || p.Victim[1] != victims[1] {
		t.Errorf("victims round-trip: %q", p.Victim)
	}
	if _, err := ParsePair("bad", "no markers at all\n"); err == nil {
		t.Error("content before marker not rejected")
	}
	if _, err := ParsePair("bad", "-- victim --\nx\n"); err == nil {
		t.Error("victim before tool not rejected")
	}
}
