package workload

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/obj"
)

// Victim programs: small hand-written binaries that exhibit (or pointedly
// do not exhibit) the behaviours the monitoring case studies detect. Each
// is the this-repository analogue of the buggy/attacked C programs the
// paper's Section V tools are aimed at.

// UAFBug allocates a buffer, frees it, and then reads through the stale
// pointer — a use-after-free the Figure 7 monitor must flag.
const UAFBug = `
.module uaf_bug
.executable
.entry main
.extern malloc
.extern free
.extern print
.func main
  mov   r1, 64
  call  malloc
  mov   r5, r0          ; keep the pointer
  mov   r2, 7
  store r2, [r5+8]      ; legitimate use
  load  r3, [r5+8]
  mov   r1, r5
  call  free            ; ... freed ...
  load  r4, [r5+8]      ; use after free!
  mov   r1, r4
  call  print
  halt
`

// UAFClean is the same program without the stale access; the monitor must
// stay silent.
const UAFClean = `
.module uaf_clean
.executable
.entry main
.extern malloc
.extern free
.extern print
.func main
  mov   r1, 64
  call  malloc
  mov   r5, r0
  mov   r2, 7
  store r2, [r5+8]
  load  r4, [r5+8]
  mov   r1, r4
  call  print
  mov   r1, r5
  call  free
  halt
`

// StackSmash simulates a buffer overflow that overwrites the saved return
// address on the stack, diverting the victim's return into evil(). The
// shadow-stack monitor (Figure 8) must flag the corrupted return.
const StackSmash = `
.module stack_smash
.executable
.entry main
.extern print
.func main
  call  victim
  mov   r1, 1           ; unreachable if the attack succeeds
  call  print
  halt
.func victim
  sub   sp, sp, 32      ; local buffer of 4 words; saved ret is at [sp+32]
  mov   r9, @evil
  mov   r10, 0
  mov   r11, 5          ; overflow: writes 5 words into a 4-word buffer
smash:
  mul   r12, r10, 8
  add   r13, sp, r12
  store r9, [r13]       ; the 5th write clobbers the return address
  add   r10, r10, 1
  blt   r10, r11, smash
  add   sp, sp, 32
  ret                   ; returns into evil
.func evil
  mov   r1, 666
  call  print
  halt
`

// StackClean is a well-behaved callee; the shadow-stack monitor must stay
// silent.
const StackClean = `
.module stack_clean
.executable
.entry main
.extern print
.func main
  call  victim
  call  victim
  mov   r1, 1
  call  print
  halt
.func victim
  call  inner
  ret
.func inner
  mov   r4, 5
  ret
`

// IndirectAttack corrupts a function pointer so that an indirect call
// lands in the middle of a function rather than at any valid entry point.
// The forward-CFI monitor (Figure 9) must flag the call.
const IndirectAttack = `
.module indirect_attack
.executable
.entry main
.func main
  mov   r9, @fptr
  load  r10, [r9]       ; legitimate pointer to worker
  call  r10
  mov   r11, @gadget+2  ; "corrupt" the pointer: mid-function address
  store r11, [r9]
  load  r10, [r9]
  call  r10             ; CFI violation
  halt
.func worker
  mov   r4, 2
  ret
.func gadget
  nop
  mov   r1, 999
  ret
.data
fptr: .addr worker
`

// IndirectClean only ever calls through valid function entries.
const IndirectClean = `
.module indirect_clean
.executable
.entry main
.func main
  mov   r9, @fptr
  load  r10, [r9]
  call  r10
  load  r10, [r9+8]
  call  r10
  halt
.func worker
  mov   r4, 2
  ret
.func helper
  mov   r4, 3
  ret
.data
fptr: .addr worker, helper
`

// Loopy is a small program with a clearly dominant hot loop plus cold
// loops, for the loop-coverage profiler (Figure 6).
const Loopy = `
.module loopy
.executable
.entry main
.func main
  mov  r8, 0
hot:
  mov  r12, @cells
  load r13, [r12+8]
  add  r13, r13, 1
  store r13, [r12+8]
  add  r8, r8, 1
  mov  r7, 200
  blt  r8, r7, hot
  call coldfn
  halt
.func coldfn
  sub  sp, sp, 8
  store r8, [sp]
  mov  r8, 0
cold:
  add  r14, r14, 1
  add  r8, r8, 1
  mov  r7, 3
  blt  r8, r7, cold
  load r8, [sp]
  add  sp, sp, 8
  ret
.data
cells: .space 64
`

// Spin is the load-harness victim (internal/bench's fleet experiment,
// cmd/cinnamond soak runs): a bare arithmetic loop with no calls and no
// memory traffic, so nearly every retired instruction is probe-eligible
// and a per-instruction tool fires at the victim's full speed. The halt
// lives in main, so the victim is loopable (LoopedVictim).
const Spin = `
.module spin
.executable
.entry main
.func main
  mov  r1, 0
  mov  r2, 32
spin_hot:
  add  r3, r3, 1
  add  r4, r4, r3
  add  r1, r1, 1
  blt  r1, r2, spin_hot
  halt
`

// Victims maps victim names to their assembly sources.
func Victims() map[string]string {
	return map[string]string{
		"uaf_bug":         UAFBug,
		"uaf_clean":       UAFClean,
		"stack_smash":     StackSmash,
		"stack_clean":     StackClean,
		"indirect_attack": IndirectAttack,
		"indirect_clean":  IndirectClean,
		"loopy":           Loopy,
		"spin":            Spin,
	}
}

// Victim assembles the named victim program.
func Victim(name string) (*obj.Module, error) {
	src, ok := Victims()[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown victim %q", name)
	}
	m, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("workload: victim %s: %w", name, err)
	}
	return m, nil
}
